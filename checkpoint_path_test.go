// Regression tests for the checkpoint request path: the dispatcher nudge
// (Checkpoint must not ride a fake vertex query), the Checkpoint/Close race
// (an error, never a panic), and the wal.Reset failure path (a failed reset
// must leave the directory with a consistent (checkpoint, log) pair).
package conn

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// checkpointFiles returns the checkpoint file names in dir, sorted.
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "checkpoint-") && strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestCheckpointTinyUniverse: a checkpoint on a single-vertex, edgeless
// graph with no operations ever submitted. The request must ride a
// dispatcher nudge, not a vertex operation — there is no edge and no work
// to hang it on — and the resulting state must restore.
func TestCheckpointTinyUniverse(t *testing.T) {
	dir := t.TempDir()
	g := New(1)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir))
	path, err := b.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint on edgeless n=1 graph: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("returned checkpoint path not on disk: %v", err)
	}
	if got := b.Stats().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints stat = %d, want 1", got)
	}
	b.Close()
	r, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.N() != 1 || r.NumEdges() != 0 {
		t.Fatalf("restored n=%d edges=%d, want n=1 edges=0", r.N(), r.NumEdges())
	}
}

// TestEmptyUniverseUnconstructible pins the invariant the checkpoint path
// relies on: a zero- or negative-vertex graph cannot exist, so every live
// Batcher has a well-defined (possibly edgeless) universe to snapshot.
func TestEmptyUniverseUnconstructible(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

// TestCheckpointAfterCloseReturnsError: once Close has begun, Checkpoint
// must fail with ErrClosed instead of panicking (the old implementation
// panicked inside the smuggled query's Submit).
func TestCheckpointAfterCloseReturnsError(t *testing.T) {
	dir := t.TempDir()
	b := NewBatcher(New(16), WithMaxDelay(0), WithDurability(dir))
	b.Insert(0, 1)
	b.Close()
	if _, err := b.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: err = %v, want ErrClosed", err)
	}
}

// TestCheckpointCloseRace races concurrent Checkpoint callers against
// Close. Every call must return — either a successful path or ErrClosed —
// and never panic or deadlock.
func TestCheckpointCloseRace(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 8
	}
	for iter := 0; iter < iters; iter++ {
		dir := t.TempDir()
		b := NewBatcher(New(64), WithMaxDelay(0), WithDurability(dir))
		b.Insert(1, 2)

		const callers = 4
		var wg sync.WaitGroup
		start := make(chan struct{})
		errCh := make(chan error, callers*3)
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 3; j++ {
					if _, err := b.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
						errCh <- err
					}
					runtime.Gosched()
				}
			}()
		}
		close(start)
		runtime.Gosched()
		b.Close()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("iter %d: Checkpoint racing Close: %v", iter, err)
		}
	}
}

// TestCheckpointResetFailureKeepsFallback injects a wal.Reset failure (a
// directory squatting on the log's temp path) and asserts the failed
// checkpoint neither prunes the prior checkpoint, nor counts itself, nor
// damages the WAL — the directory must still restore the full acked state
// even if the newest snapshot file is lost.
func TestCheckpointResetFailureKeepsFallback(t *testing.T) {
	dir := t.TempDir()
	g := New(128)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir))

	expect := make(map[[2]int32]bool)
	ins := func(es ...Edge) {
		b.InsertEdges(es)
		for _, e := range es {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			expect[[2]int32{u, v}] = true
		}
	}

	ins(Edge{U: 0, V: 1}, Edge{U: 1, V: 2}, Edge{U: 2, V: 3})
	if _, err := b.Checkpoint(); err != nil {
		t.Fatalf("first Checkpoint: %v", err)
	}
	first := checkpointFiles(t, dir)
	if len(first) != 1 {
		t.Fatalf("after first checkpoint: files %v, want exactly one", first)
	}

	ins(Edge{U: 10, V: 11}, Edge{U: 11, V: 12}, Edge{U: 3, V: 10})

	// Injection: wal.Reset writes wal.log.tmp then renames it over the log;
	// a directory at that path makes the reset fail after the new snapshot
	// file is already written.
	tmp := filepath.Join(dir, walFileName+".tmp")
	if err := os.Mkdir(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	path, err := b.Checkpoint()
	if err == nil {
		t.Fatal("Checkpoint with failing wal.Reset reported success")
	}
	if path != "" {
		t.Fatalf("failed Checkpoint returned path %q, want empty", path)
	}
	if got := b.Stats().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints stat = %d after failed reset, want 1 (failure must not count)", got)
	}
	files := checkpointFiles(t, dir)
	found := false
	for _, f := range files {
		if f == first[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("prior checkpoint %s was pruned on the failed path; files now %v", first[0], files)
	}

	// The batcher stays usable: the WAL was never truncated, so appends
	// continue and later state is still acked-durable.
	ins(Edge{U: 20, V: 21})
	b.Close()

	check := func(g *Graph) {
		t.Helper()
		if g.NumEdges() != len(expect) {
			t.Fatalf("restored %d edges, want %d", g.NumEdges(), len(expect))
		}
		for e := range expect {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("restored graph missing edge {%d,%d}", e[0], e[1])
			}
		}
	}

	r, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore after failed reset: %v", err)
	}
	check(r)

	// Harsher: lose every snapshot the failed attempt produced, keeping only
	// the pre-failure checkpoint. Because the WAL was left intact, the old
	// (checkpoint, log) pair must still cover the full history.
	for _, f := range checkpointFiles(t, dir) {
		if f != first[0] {
			if err := os.Remove(filepath.Join(dir, f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	r2, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore from fallback checkpoint + WAL tail: %v", err)
	}
	check(r2)

	// With the injection cleared, a fresh durable session checkpoints
	// normally again and prunes down to the new floor.
	if err := os.Remove(tmp); err != nil {
		t.Fatal(err)
	}
	b2 := NewBatcher(r2, WithDurability(dir))
	if _, err := b2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after clearing injection: %v", err)
	}
	if got := b2.Stats().Checkpoints; got != 1 {
		t.Fatalf("recovered session Checkpoints stat = %d, want 1", got)
	}
	b2.Close()
	if files := checkpointFiles(t, dir); len(files) != 1 {
		t.Fatalf("after recovered checkpoint: files %v, want exactly the new floor", files)
	}
}
