// Live connectivity events over the wire: the client-side face of
// CmdSubscribeEvents.
//
// A subscription owns a dedicated connection (the stream owns the write
// side for its lifetime, exactly like replication subscriptions), delivers
// events in the order the server's epoch pipeline committed them, and never
// blocks the server: a subscriber that falls behind has events dropped
// server-side and receives one EventGap marker when it catches up — see
// internal/pubsub for the delivery contract.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	conn "repro"
	"repro/internal/wire"
)

// EventKind labels one connectivity event. Values match internal/pubsub's
// Kind enum, which is what the server speaks on the wire.
type EventKind uint8

const (
	// EventHello acknowledges the subscription; always the first event.
	EventHello EventKind = iota
	// EventMerge: components merged into the component labelled Label;
	// Others holds the labels of the components absorbed into it.
	EventMerge
	// EventSplit: the component labelled Label split; Others holds the
	// labels of all resulting fragments, Label's own surviving fragment
	// included when it persists.
	EventSplit
	// EventPairConnected: watched pair {U, V} became connected.
	EventPairConnected
	// EventPairDisconnected: watched pair {U, V} became disconnected.
	EventPairDisconnected
	// EventGap: the subscriber's buffer overflowed and at least one event
	// was dropped; component/pair state should be re-read, not inferred.
	EventGap
)

func (k EventKind) String() string {
	switch k {
	case EventHello:
		return "hello"
	case EventMerge:
		return "merge"
	case EventSplit:
		return "split"
	case EventPairConnected:
		return "pair-connected"
	case EventPairDisconnected:
		return "pair-disconnected"
	case EventGap:
		return "gap"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one connectivity event. Epoch is the hub's transition counter
// and Seq the durable WAL position of the transition's epoch (zero on
// memory-only and sharded namespaces); Label/U/V/Others are populated per
// kind as documented on the EventKind constants.
type Event struct {
	Kind   EventKind
	Epoch  uint64
	Seq    uint64
	Label  int32
	U, V   int32
	Others []int32
}

// EventSub is a live event subscription. Receive from C until it closes,
// then consult Err: nil means Close was called, anything else is why the
// stream ended. Close is idempotent and safe to call concurrently with
// receives.
type EventSub struct {
	nc     net.Conn
	events chan Event

	mu     sync.Mutex
	err    error
	closed bool
}

// C returns the event channel. It closes when the subscription ends.
func (s *EventSub) C() <-chan Event { return s.events }

// Err reports why the stream ended; call after C closes. nil after a local
// Close, the transport or server error otherwise.
func (s *EventSub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.err
}

// Close terminates the subscription and its connection.
func (s *EventSub) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.nc.Close()
}

func (s *EventSub) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// SubscribeEvents opens a live connectivity-event subscription against the
// namespace. comps subscribes to component merge/split events; each watch
// pair subscribes to that pair's connected/disconnected transitions (at
// least one of the two must be requested). The stream begins with an
// EventHello acknowledging the subscription — consumed here, so when
// SubscribeEvents returns, every event on C reflects a transition that
// committed after the subscription was live.
func (ns *Namespace) SubscribeEvents(comps bool, watch []conn.Edge) (*EventSub, error) {
	if ns.c.closed.Load() {
		return nil, ErrClosed
	}
	pairs := make([]wire.Pair, len(watch))
	for i, w := range watch {
		pairs[i] = wire.Pair{U: w.U, V: w.V}
	}
	req := &wire.Request{ID: 1, Cmd: wire.CmdSubscribeEvents, NS: ns.name,
		Comps: comps, Pairs: pairs}
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	nc, err := net.DialTimeout("tcp", ns.c.addr, ns.c.opts.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", ns.c.addr, err)
	}
	bw := bufio.NewWriterSize(nc, 1<<12)
	if err := wire.WriteFrame(bw, payload); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: subscribe: %w", err)
	}
	br := bufio.NewReaderSize(nc, 1<<16)
	resp, err := readEventFrame(br)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if resp.Event.Kind != uint8(EventHello) {
		nc.Close()
		return nil, fmt.Errorf("client: subscription opened with %s, want hello",
			EventKind(resp.Event.Kind))
	}
	s := &EventSub{nc: nc, events: make(chan Event)}
	go s.readLoop(br)
	return s, nil
}

// readEventFrame reads one stream frame and requires an OK event body.
func readEventFrame(br *bufio.Reader) (*wire.Response, error) {
	payload, err := wire.ReadFrame(br)
	if err != nil {
		return nil, fmt.Errorf("client: event stream: %w", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, statusErr(resp)
	}
	if resp.Event == nil {
		return nil, fmt.Errorf("client: event stream carried a non-event body")
	}
	return resp, nil
}

// readLoop pumps stream frames into the event channel. The send blocks when
// the consumer is slow — backpressure lands on the TCP window, and overflow
// is handled server-side (drop + gap), never here.
func (s *EventSub) readLoop(br *bufio.Reader) {
	defer close(s.events)
	for {
		resp, err := readEventFrame(br)
		if err != nil {
			s.setErr(err)
			return
		}
		e := resp.Event
		s.events <- Event{Kind: EventKind(e.Kind), Epoch: e.Epoch, Seq: e.Seq,
			Label: e.Label, U: e.U, V: e.V, Others: e.Others}
	}
}
