package client_test

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/server"
	"repro/internal/wire"
)

// stubReplica is a hand-rolled wire endpoint that answers read-tier
// requests with a fixed bit and a configurable replication seq — the knob
// the fencing tests turn. Everything else gets StatusNotFound.
type stubReplica struct {
	ln       net.Listener
	seq      atomic.Uint64
	bit      atomic.Bool
	requests atomic.Int64
}

func newStubReplica(t *testing.T) *stubReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubReplica{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *stubReplica) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			return
		}
		var resp *wire.Response
		switch req.Cmd {
		case wire.CmdReadRecent, wire.CmdReadNow:
			s.requests.Add(1)
			bits := make([]bool, len(req.Pairs))
			for i := range bits {
				bits[i] = s.bit.Load()
			}
			resp = &wire.Response{ID: req.ID, Bits: bits, Seq: s.seq.Load()}
		default:
			resp = &wire.Response{ID: req.ID, Status: wire.StatusNotFound, Msg: "stub"}
		}
		out, err := wire.EncodeResponse(resp)
		if err != nil {
			return
		}
		if wire.WriteFrame(bw, out) != nil || bw.Flush() != nil {
			return
		}
	}
}

func startPrimary(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// TestReadRoutingPrefersFreshReplica: a replica whose answer carries a seq
// at or past the client's observed-seq fence serves the bounded-stale read
// — the primary is not consulted.
func TestReadRoutingPrefersFreshReplica(t *testing.T) {
	_, addr := startPrimary(t, server.Options{DataDir: t.TempDir()})
	stub := newStubReplica(t)
	stub.seq.Store(1 << 30) // "arbitrarily fresh"
	stub.bit.Store(true)    // deliberately wrong vs the primary's state

	cl, err := client.Dial(addr, client.WithReplicas(stub.ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 16, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Namespace("g").Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	// The stub answers true for everything; the primary would answer false
	// for {4,5}. Seeing true proves the replica served the read.
	ok, err := cl.Namespace("g").ReadRecent(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fresh replica did not serve the ReadRecent")
	}
	if stub.requests.Load() == 0 {
		t.Fatal("stub replica saw no requests")
	}
	// ReadNow must NOT be replica-routed: it promises all committed epochs.
	ok, err = cl.Namespace("g").ReadNow(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ReadNow was served by the replica (got the stub's answer)")
	}
}

// TestReadRoutingFencesStaleReplica: once the client's own write observed a
// primary seq, a replica answering from an older seq is discarded and the
// read falls back to the primary (read-your-writes).
func TestReadRoutingFencesStaleReplica(t *testing.T) {
	_, addr := startPrimary(t, server.Options{DataDir: t.TempDir()})
	stub := newStubReplica(t)
	stub.seq.Store(0) // permanently stale
	stub.bit.Store(false)

	cl, err := client.Dial(addr, client.WithReplicas(stub.ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 16, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Namespace("g").Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if cl.ObservedSeq("g") == 0 {
		t.Fatal("write did not raise the observed-seq fence")
	}
	// The stale stub answers false; the primary knows {1,2} are connected.
	ok, err := cl.Namespace("g").ReadRecent(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stale replica answer was not fenced; read-your-writes violated")
	}
	if stub.requests.Load() == 0 {
		t.Fatal("stub replica was never consulted")
	}
}

// TestReadRoutingFailsOverDeadReplica: an unreachable replica is skipped
// (and backed off) — reads still succeed via the primary.
func TestReadRoutingFailsOverDeadReplica(t *testing.T) {
	_, addr := startPrimary(t, server.Options{DataDir: t.TempDir()})
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens here any more

	cl, err := client.Dial(addr, client.WithReplicas(deadAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 16, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Namespace("g").Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ok, err := cl.Namespace("g").ReadRecent(1, 2)
		if err != nil {
			t.Fatalf("read %d with dead replica: %v", i, err)
		}
		if !ok {
			t.Fatalf("read %d returned wrong answer", i)
		}
	}
}

// dyingReplica accepts wire connections, reads exactly one request per
// connection, then writes a deliberately torn response — a frame header
// promising more payload bytes than it sends — and slams the connection
// shut. It models a replica crashing mid-response: the client has already
// committed the request to that replica and must recover without surfacing
// a short answer.
type dyingReplica struct {
	ln       net.Listener
	requests atomic.Int64
}

func newDyingReplica(t *testing.T) *dyingReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &dyingReplica{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := wire.ReadFrame(bufio.NewReader(c)); err != nil {
					return
				}
				d.requests.Add(1)
				// Header claims a 64-byte payload; deliver 3 bytes and die.
				// The client's frame reader must see ErrUnexpectedEOF, not a
				// truncated bit vector.
				hdr := []byte{64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}
				c.Write(append(hdr, 0x01, 0x02, 0x03))
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return d
}

// TestReadBatchFailsOverMidResponse: a replica that dies after sending a
// partial ReadRecentBatch response must not contribute any bits. The client
// marks it down, keeps fencing the remaining (stale) replica on observed
// seq, and serves the full batch from the primary — every query answered
// exactly once, none double-counted from the aborted attempt.
func TestReadBatchFailsOverMidResponse(t *testing.T) {
	_, addr := startPrimary(t, server.Options{DataDir: t.TempDir()})
	dying := newDyingReplica(t)
	stale := newStubReplica(t)
	stale.seq.Store(0)    // permanently behind the fence
	stale.bit.Store(true) // wrong for every disconnected pair

	cl, err := client.Dial(addr,
		client.WithReplicas(dying.ln.Addr().String(), stale.ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 16, true); err != nil {
		t.Fatal(err)
	}
	ns := cl.Namespace("g")
	if _, err := ns.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Insert(3, 4); err != nil {
		t.Fatal(err)
	}
	if cl.ObservedSeq("g") == 0 {
		t.Fatal("writes did not raise the observed-seq fence")
	}

	qs := []conn.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}
	want := []bool{true, false, true}
	check := func(round int) {
		t.Helper()
		bits, err := ns.ReadRecentBatch(qs)
		if err != nil {
			t.Fatalf("round %d: batch read did not fail over: %v", round, err)
		}
		if len(bits) != len(qs) {
			t.Fatalf("round %d: got %d bits for %d queries", round, len(bits), len(qs))
		}
		for i := range want {
			if bits[i] != want[i] {
				t.Fatalf("round %d: query %d = %v, want %v (answer not from the primary)",
					round, i, bits[i], want[i])
			}
		}
	}

	check(0)
	// The dying replica was consulted exactly once within the read: the
	// mid-response death must fail the attempt over, not retry it against
	// the same dead endpoint.
	if n := dying.requests.Load(); n != 1 {
		t.Fatalf("dying replica saw %d requests during one batch read, want exactly 1", n)
	}

	// A second read still answers correctly while the dead replica sits in
	// backoff and the stale one keeps getting fenced.
	check(1)
	// The stale replica stayed up — its answers were fenced, not errors —
	// so both rounds consulted it and both times the fence rejected it.
	if n := stale.requests.Load(); n < 2 {
		t.Fatalf("stale replica saw %d requests, want >= 2 (fence path not exercised)", n)
	}
}

// TestRedialUnderConcurrentUse hammers one client from many goroutines
// while the server restarts underneath it: requests may fail with transport
// errors, but the client must never deadlock, never panic, and must be
// fully usable once the server is back (the redial path is exercised under
// genuine concurrency — run with -race).
func TestRedialUnderConcurrentUse(t *testing.T) {
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	cl, err := client.Dial(addr, client.WithConns(3), client.WithDialTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 64, false); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var successes atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ns := cl.Namespace("g")
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				var err error
				switch i % 3 {
				case 0:
					_, err = ns.Insert(int32((w*7+i)%64), int32((w*13+2*i)%64))
				case 1:
					_, err = ns.ReadRecent(int32(i%64), int32((i+1)%64))
				default:
					_, err = ns.Do([]conn.Op{
						{Kind: conn.OpQuery, U: int32(i % 64), V: int32((i + 3) % 64)},
						{Kind: conn.OpDelete, U: int32(i % 64), V: int32((i + 5) % 64)},
					})
				}
				if err == nil {
					successes.Add(1)
				}
				// Errors are expected while the server is down; the loop
				// must keep driving the redial path regardless.
			}
		}(w)
	}

	for round := 0; round < 3; round++ {
		time.Sleep(30 * time.Millisecond)
		srv.Shutdown()
		srv, err = server.New(server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("relisten round %d: %v", round, err)
		}
		go srv.Serve(ln)
		// The namespace is memory-only: recreate it on the fresh server.
		// Workers racing the recreate just see NotFound errors meanwhile.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if err := cl.Create("g", 64, false); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	srv.Shutdown()

	if successes.Load() == 0 {
		t.Fatal("no request ever succeeded across the restarts")
	}
}
