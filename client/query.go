// Structural queries over the wire: the client-side face of CmdQuery.
//
// Recent-mode queries are bounded-staleness reads and route like ReadRecent:
// round-robin across configured replicas with the read-your-writes fence (a
// replica answer must reflect at least the highest primary seq this client's
// own writes observed), falling back to the primary. Linearized queries
// always go to the primary — only its epoch pipeline can order the answer
// after every acknowledged write.
package client

import (
	"fmt"

	conn "repro"
	"repro/internal/wire"
)

// Query executes one structural query against the namespace. The request
// and result types are the conn package's (conn.QueryRequest selects the
// kind, operands and consistency tier; conn.QueryResult is the uniform
// answer). Result.Seq is the replication position the answer reflects —
// zero on sharded namespaces.
func (ns *Namespace) Query(req conn.QueryRequest) (conn.QueryResult, error) {
	wreq := &wire.Request{Cmd: wire.CmdQuery, NS: ns.name,
		QKind: uint8(req.Kind), Linearized: req.Linearized,
		U: req.U, V: req.V, K: req.K}
	var resp *wire.Response
	var err error
	if req.Linearized {
		resp, err = ns.c.do(wreq)
	} else {
		resp, err = ns.c.doRead(wreq)
	}
	if err != nil {
		return conn.QueryResult{}, err
	}
	q := resp.Query
	if q == nil {
		return conn.QueryResult{}, fmt.Errorf("client: server returned no query body")
	}
	return conn.QueryResult{Seq: q.Seq, Found: q.Found, Size: q.Size,
		Count: q.Count, Verts: q.Verts, Hist: q.Hist}, nil
}

// KHop returns every vertex within k edges of u (including u), ascending.
// Served read-committed; bounded-staleness routing does not apply to
// traversals, but the call is still replica-eligible.
func (ns *Namespace) KHop(u int32, k uint32) ([]int32, error) {
	res, err := ns.Query(conn.QueryRequest{Kind: conn.QueryKHop, U: u, K: k})
	return res.Verts, err
}

// ComponentMembers returns the vertices of u's connected component,
// ascending, from the server's last published labelling.
func (ns *Namespace) ComponentMembers(u int32) ([]int32, error) {
	res, err := ns.Query(conn.QueryRequest{Kind: conn.QueryMembers, U: u})
	return res.Verts, err
}

// ComponentSize returns the size of u's connected component (at least 1)
// from the server's last published labelling.
func (ns *Namespace) ComponentSize(u int32) (uint64, error) {
	res, err := ns.Query(conn.QueryRequest{Kind: conn.QuerySize, U: u})
	return res.Size, err
}

// TreePath returns a spanning-forest path from u to v (endpoints included),
// or found=false when they are not connected. The path is simple and lies
// entirely in the server's current spanning forest; it is not necessarily a
// shortest path in the graph.
func (ns *Namespace) TreePath(u, v int32) (path []int32, found bool, err error) {
	res, err := ns.Query(conn.QueryRequest{Kind: conn.QueryPath, U: u, V: v})
	return res.Verts, res.Found, err
}

// ComponentAggregate returns the component count and a log2-bucketed
// component-size histogram (hist[i] counts components of size in
// [2^i, 2^(i+1))) from the server's last published labelling.
func (ns *Namespace) ComponentAggregate() (count uint64, hist []uint64, err error) {
	res, err := ns.Query(conn.QueryRequest{Kind: conn.QueryAggregate})
	return res.Count, res.Hist, err
}
