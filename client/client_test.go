package client_test

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/client"
	"repro/internal/server"
)

// TestClientSurvivesServerRestart: a pooled client whose server goes away
// and comes back on the same address must redial on use and keep working.
func TestClientSurvivesServerRestart(t *testing.T) {
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Create("g", 32, false); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if ok, err := cl.Namespace("g").Insert(1, 2); err != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, err)
	}

	srv.Shutdown()

	// The server is gone; requests must fail with transport errors, never
	// hang or panic.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := cl.Ping(); err != nil {
			break
		}
		runtime.Gosched()
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping kept succeeding after server shutdown")
	}

	// Restart on the same address (memory-only server: fresh state).
	srv2, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("loopback port %s not immediately rebindable: %v", addr, err)
	}
	go srv2.Serve(ln2)
	defer srv2.Shutdown()

	// The pool redials lazily; every slot recovers within a few attempts.
	var lastErr error
	ok := false
	for i := 0; i < 50 && !ok; i++ {
		if lastErr = cl.Ping(); lastErr == nil {
			ok = true
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatalf("client never recovered after restart: %v", lastErr)
	}
	// Both pool slots must be functional, not just one: issue more requests
	// than slots.
	if err := cl.Create("h", 16, false); err != nil {
		t.Fatalf("Create after restart: %v", err)
	}
	nsH := cl.Namespace("h")
	for i := 0; i < 6; i++ {
		if _, err := nsH.Insert(int32(i%4), int32((i+1)%4)); err != nil {
			t.Fatalf("Insert %d after restart: %v", i, err)
		}
	}
}

// TestClientErrorMapping: wire statuses surface as the package's sentinel
// errors, and a closed client refuses work.
func TestClientErrorMapping(t *testing.T) {
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Namespace("missing").Connected(0, 1); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Connected on missing namespace: %v", err)
	}
	if err := cl.Create("dup", 8, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("dup", 8, false); !errors.Is(err, client.ErrExists) {
		t.Fatalf("duplicate Create: %v", err)
	}
	if _, err := cl.Namespace("dup").Do(nil); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
	cl.Close()
	if err := cl.Ping(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Ping on closed client: %v", err)
	}
	if err := cl.Create("x", 4, false); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Create on closed client: %v", err)
	}
}
