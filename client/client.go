// Package client is the Go client for cmd/connserver: a connection-pooled,
// pipelined front-end that mirrors the conn.Batcher API over the
// internal/wire protocol.
//
// A Client owns a small pool of TCP connections. Any number of goroutines
// may issue requests concurrently; each request is written as one frame on
// a pooled connection and matched to its response by id, so many requests
// ride one connection simultaneously (pipelining). On the server side every
// in-flight frame blocks in the namespace's Batcher — concurrent frames
// from any mix of clients coalesce into one large epoch, which is the whole
// reason the server exists: Theorem 1's per-operation cost falls as batches
// grow, and the network layer's job is to deliver big batches.
//
//	c, err := client.Dial("localhost:7421", client.WithConns(4))
//	defer c.Close()
//	c.Create("social", 1<<20, true) // durable namespace
//	ns := c.Namespace("social")
//	ns.Insert(1, 2)
//	ok, _ := ns.Connected(1, 2)    // linearized, rides the epoch pipeline
//	ok, _ = ns.ReadRecent(1, 2)    // wait-free snapshot tier
//
// Batching amplifies throughput further: InsertEdges / Do send one frame
// for the whole group, and the group commits in a single epoch.
//
// Replication-aware reads: WithReplicas(addrs...) fans bounded-staleness
// reads (ReadRecent / ReadRecentBatch) out across read-only replica
// servers, round-robin, with failover back to the primary. Each replica
// answer carries the replica's applied epoch seq, and the client fences it
// against the highest primary seq its own writes observed — read-your-
// writes without coordination. Writes always go to the primary; a mutation
// that reaches a replica comes back as a *RedirectError carrying the
// primary's address.
//
// Error model: methods return an error when the server rejects the request
// (wire.Status* mapped to ErrNotFound, ErrExists, ...) or when the
// connection fails. A failed connection is redialed on the next use, so a
// client survives a server restart; requests in flight during the failure
// return the transport error and were possibly not applied — idempotent
// connectivity updates make blind retry safe, but that choice is the
// caller's.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
	"repro/internal/backoff"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Partition returns the shard owning vertex u in a namespace created with
// the given shard count — the same hash the server routes by, so callers
// can pre-partition their traffic (see Namespace.DoSharded).
func Partition(u int32, shards int) int { return shard.Partition(u, shards) }

// Errors mapped from wire status codes.
var (
	ErrNotFound = errors.New("client: namespace not found")
	ErrExists   = errors.New("client: namespace already exists")
	ErrDraining = errors.New("client: server is draining")
	ErrClosed   = errors.New("client: client is closed")
)

// RedirectError is returned when a mutating request reached a read-only
// replica: Primary is the address the replica follows — retarget writes
// there. The client never follows the redirect itself; connectivity updates
// are idempotent, but the retry decision belongs to the caller.
type RedirectError struct {
	Primary string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("client: read-only replica; writes go to the primary at %s", e.Primary)
}

// Option configures a Client.
type Option func(*options)

type options struct {
	conns       int
	dialTimeout time.Duration
	replicas    []string
}

// WithConns sets the connection-pool size (default 1). More connections let
// more requests ride the network concurrently; requests within one
// connection already pipeline.
func WithConns(k int) Option {
	return func(o *options) {
		if k > 0 {
			o.conns = k
		}
	}
}

// WithDialTimeout bounds each dial attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// WithReplicas enables failover-aware read routing: bounded-staleness reads
// (ReadRecent / ReadRecentBatch) fan out round-robin across the given
// replica addresses instead of loading the primary. Every replica answer
// carries the replica's applied epoch seq, and the client fences it against
// the highest primary seq its own writes have observed (read-your-writes):
// an answer that is too stale is discarded and the next replica — and
// finally the primary — is tried. An unreachable replica is put in
// exponential-backoff timeout and retried later; writes, linearized reads
// and ReadNow always go to the primary.
func WithReplicas(addrs ...string) Option {
	return func(o *options) {
		o.replicas = append(o.replicas, addrs...)
	}
}

// Client is a pooled, pipelined connserver client. Safe for concurrent use.
type Client struct {
	addr   string
	opts   options
	nextID atomic.Uint64
	rr     atomic.Uint32
	rrRep  atomic.Uint32
	closed atomic.Bool

	mu   sync.Mutex // guards pool slots during (re)dial
	pool []*poolConn

	replicas []*replicaSlot

	// observed tracks, per namespace, the highest primary seq this client's
	// own writes have been acknowledged at — the read-your-writes fence for
	// replica-routed reads. Values are *atomic.Uint64.
	observed sync.Map
}

// Dial connects to a connserver. The first pool connection is established
// eagerly so configuration errors surface here; the rest dial on first use.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{conns: 1, dialTimeout: 5 * time.Second}
	for _, f := range opts {
		f(&o)
	}
	c := &Client{addr: addr, opts: o, pool: make([]*poolConn, o.conns)}
	for _, ra := range o.replicas {
		c.replicas = append(c.replicas, &replicaSlot{
			addr: ra, bo: *backoff.New(50*time.Millisecond, 2*time.Second),
		})
	}
	pc, err := c.dialSlot()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.pool[0] = pc
	c.mu.Unlock()
	return c, nil
}

// Close closes every pooled connection. In-flight requests fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	for _, pc := range c.pool {
		if pc != nil {
			pc.fail(ErrClosed)
		}
	}
	c.mu.Unlock()
	for _, r := range c.replicas {
		r.mu.Lock()
		if r.pc != nil {
			r.pc.fail(ErrClosed)
			r.pc = nil
		}
		r.mu.Unlock()
	}
	return nil
}

// ObservedSeq returns the read-your-writes fence for a namespace: the
// highest primary epoch seq this client's own acknowledged writes reached.
// Replica-routed reads must reflect at least this seq to be accepted.
func (c *Client) ObservedSeq(ns string) uint64 {
	if v, ok := c.observed.Load(ns); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// bumpObserved raises the namespace's fence to seq (monotonically).
func (c *Client) bumpObserved(ns string, seq uint64) {
	v, _ := c.observed.LoadOrStore(ns, new(atomic.Uint64))
	a := v.(*atomic.Uint64)
	for {
		cur := a.Load()
		if seq <= cur || a.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// ---------------------------------------------------------------- pool

// poolConn is one pooled connection: a writer guarded by wmu, and a reader
// goroutine that fans responses back to waiting requests by id.
type poolConn struct {
	c  net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan result
	dead    error // non-nil once the connection has failed
}

type result struct {
	resp *wire.Response
	err  error
}

func (c *Client) dialSlot() (*poolConn, error) { return c.dialAddr(c.addr) }

func (c *Client) dialAddr(addr string) (*poolConn, error) {
	nc, err := net.DialTimeout("tcp", addr, c.opts.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	pc := &poolConn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, 1<<16),
		pending: make(map[uint64]chan result),
	}
	go pc.readLoop()
	return pc, nil
}

// readLoop owns the connection's read half: every arriving frame resolves
// the pending request with its id. Any read or decode error kills the
// connection and fails everything still pending.
func (pc *poolConn) readLoop() {
	br := bufio.NewReaderSize(pc.c, 1<<16)
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			pc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			pc.fail(err)
			return
		}
		pc.pmu.Lock()
		ch, ok := pc.pending[resp.ID]
		if ok {
			delete(pc.pending, resp.ID)
		}
		pc.pmu.Unlock()
		if ok {
			ch <- result{resp: resp}
		}
	}
}

// fail marks the connection dead and resolves every pending request with
// err. Idempotent; the first error wins.
func (pc *poolConn) fail(err error) {
	pc.pmu.Lock()
	if pc.dead == nil {
		pc.dead = err
	}
	pending := pc.pending
	pc.pending = make(map[uint64]chan result)
	pc.pmu.Unlock()
	pc.c.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// conn returns a live pooled connection, redialing the slot if its previous
// occupant died. Slots are picked round-robin.
func (c *Client) conn() (*poolConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	slot := int(c.rr.Add(1)) % len(c.pool)
	c.mu.Lock()
	pc := c.pool[slot]
	if pc != nil {
		pc.pmu.Lock()
		dead := pc.dead != nil
		pc.pmu.Unlock()
		if !dead {
			c.mu.Unlock()
			return pc, nil
		}
	}
	c.mu.Unlock()
	// Dial outside c.mu so a slow dial does not block other slots.
	fresh, err := c.dialSlot()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Another goroutine may have refilled the slot meanwhile; prefer the
	// winner and fold the loser.
	if cur := c.pool[slot]; cur != nil && cur != pc {
		cur.pmu.Lock()
		curDead := cur.dead != nil
		cur.pmu.Unlock()
		if !curDead {
			c.mu.Unlock()
			fresh.fail(ErrClosed)
			return cur, nil
		}
	}
	c.pool[slot] = fresh
	closed := c.closed.Load()
	c.mu.Unlock()
	if closed {
		fresh.fail(ErrClosed)
		return nil, ErrClosed
	}
	return fresh, nil
}

// roundTrip performs one request/response exchange on a specific pooled
// connection: assign an id, register the waiter, write the frame, block for
// the response. It returns transport failures only; the response may carry
// a non-OK status for the caller to interpret.
func (c *Client) roundTrip(pc *poolConn, req *wire.Request) (*wire.Response, error) {
	req.ID = c.nextID.Add(1)
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	ch := make(chan result, 1)
	pc.pmu.Lock()
	if pc.dead != nil {
		err := pc.dead
		pc.pmu.Unlock()
		return nil, err
	}
	pc.pending[req.ID] = ch
	pc.pmu.Unlock()

	pc.wmu.Lock()
	err = wire.WriteFrame(pc.bw, payload)
	if err == nil {
		err = pc.bw.Flush()
	}
	pc.wmu.Unlock()
	if err != nil {
		pc.fail(fmt.Errorf("client: write: %w", err))
		// fail resolved our waiter (or we race its resolution); drain it so
		// the channel cannot leak a stale result.
		<-ch
		return nil, err
	}

	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	return res.resp, nil
}

// do performs one round trip against the primary, mapping non-OK statuses
// to errors and maintaining the read-your-writes fence on mutating batches.
func (c *Client) do(req *wire.Request) (*wire.Response, error) {
	pc, err := c.conn()
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(pc, req)
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, statusErr(resp)
	}
	if req.Cmd == wire.CmdBatch && resp.Seq > 0 && hasMutation(req.Ops) {
		c.bumpObserved(req.NS, resp.Seq)
	}
	return resp, nil
}

func hasMutation(ops []wire.Op) bool {
	for _, op := range ops {
		if op.Kind != wire.KindQuery {
			return true
		}
	}
	return false
}

// statusErr maps a non-OK response onto the package's sentinel errors.
func statusErr(r *wire.Response) error {
	switch r.Status {
	case wire.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, r.Msg)
	case wire.StatusExists:
		return fmt.Errorf("%w: %s", ErrExists, r.Msg)
	case wire.StatusDraining:
		return fmt.Errorf("%w: %s", ErrDraining, r.Msg)
	case wire.StatusReadOnly:
		return &RedirectError{Primary: r.Msg}
	default:
		return wire.StatusError(r)
	}
}

// ---------------------------------------------------------------- replicas

// replicaSlot is one configured replica: a single lazily-dialed connection
// plus failure backoff state.
type replicaSlot struct {
	addr string

	mu        sync.Mutex
	pc        *poolConn
	downUntil time.Time
	bo        backoff.B
}

// get returns a live connection to the replica, dialing if needed, or nil
// while the replica is in failure backoff.
func (r *replicaSlot) get(c *Client) *poolConn {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pc != nil {
		r.pc.pmu.Lock()
		dead := r.pc.dead != nil
		r.pc.pmu.Unlock()
		if !dead {
			return r.pc
		}
		r.pc = nil
	}
	if time.Now().Before(r.downUntil) {
		return nil
	}
	pc, err := c.dialAddr(r.addr)
	if err != nil {
		r.markDownLocked()
		return nil
	}
	// Close may have swept this slot between doRead's entry check and the
	// dial (Close sets the flag before taking r.mu): a connection installed
	// now would never be failed, leaking it and its readLoop. Mirrors the
	// primary pool's post-dial closed re-check in conn().
	if c.closed.Load() {
		pc.fail(ErrClosed)
		return nil
	}
	r.pc = pc
	return pc
}

// markDown records a failure: close the connection and back off
// exponentially (50ms doubling to 2s) before the next dial attempt.
func (r *replicaSlot) markDown() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pc != nil {
		r.pc.fail(errors.New("client: replica marked down"))
		r.pc = nil
	}
	r.markDownLocked()
}

func (r *replicaSlot) markDownLocked() {
	r.downUntil = time.Now().Add(r.bo.Next())
}

// markUp clears the backoff after a successful exchange.
func (r *replicaSlot) markUp() {
	r.mu.Lock()
	r.bo.Reset()
	r.downUntil = time.Time{}
	r.mu.Unlock()
}

// doRead routes one bounded-staleness read: try each configured replica
// once, round-robin, accepting the first answer that is fresh enough
// (resp.Seq >= the namespace's observed-seq fence); fall back to the
// primary when every replica is down, stale, erroring, or not yet serving
// the namespace. The primary's answer always passes the fence.
func (c *Client) doRead(req *wire.Request) (*wire.Response, error) {
	if len(c.replicas) == 0 || c.closed.Load() {
		return c.do(req)
	}
	fence := c.ObservedSeq(req.NS)
	start := int(c.rrRep.Add(1))
	for i := 0; i < len(c.replicas); i++ {
		r := c.replicas[(start+i)%len(c.replicas)]
		pc := r.get(c)
		if pc == nil {
			continue
		}
		resp, err := c.roundTrip(pc, req)
		if err != nil {
			r.markDown()
			continue
		}
		if resp.Status != wire.StatusOK {
			// Replica-side refusal (namespace not replicated yet, draining):
			// not a connection failure — leave the replica up, use the
			// primary for this read.
			continue
		}
		seq := resp.Seq
		if resp.Query != nil {
			seq = resp.Query.Seq // a query answer's position rides in its body
		}
		if seq < fence {
			continue // too stale: fails read-your-writes
		}
		r.markUp()
		return resp, nil
	}
	return c.do(req)
}

// ---------------------------------------------------------------- admin API

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdPing})
	return err
}

// Create makes a new namespace over n vertices. A durable namespace
// write-ahead-logs every epoch under the server's data directory and
// survives server restarts.
func (c *Client) Create(ns string, n int, durable bool) error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdCreate, NS: ns, N: uint32(n), Durable: durable})
	return err
}

// CreateSharded makes a namespace hash-partitioned across shards engines:
// the server routes each operation to its partition's epoch pipeline, so
// writes to different partitions commit — and fsync — in parallel. A shard
// count of 0 or 1 creates an ordinary unsharded namespace.
func (c *Client) CreateSharded(ns string, n int, durable bool, shards int) error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdCreate, NS: ns, N: uint32(n),
		Durable: durable, Shards: uint32(shards)})
	return err
}

// Drop quiesces and removes a namespace; a durable namespace's on-disk
// state is deleted.
func (c *Client) Drop(ns string) error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdDrop, NS: ns})
	return err
}

// NamespaceInfo describes one served namespace. Shards is the hash
// partition count for sharded namespaces (0 = unsharded).
type NamespaceInfo struct {
	Name    string
	N       int
	Durable bool
	Shards  int
}

// List returns the served namespaces, sorted by name.
func (c *Client) List() ([]NamespaceInfo, error) {
	resp, err := c.do(&wire.Request{Cmd: wire.CmdList})
	if err != nil {
		return nil, err
	}
	out := make([]NamespaceInfo, len(resp.Namespaces))
	for i, ns := range resp.Namespaces {
		out[i] = NamespaceInfo{Name: ns.Name, N: ns.N, Durable: ns.Durable, Shards: ns.Shards}
	}
	return out, nil
}

// Namespace returns a handle for issuing operations against one namespace.
// The handle is cheap and safe to share between goroutines.
func (c *Client) Namespace(name string) *Namespace {
	return &Namespace{c: c, name: name}
}

// ---------------------------------------------------------------- namespace API

// Namespace mirrors the conn.Batcher surface over the wire: single ops,
// atomic batches, the three read tiers, stats and checkpoint.
type Namespace struct {
	c    *Client
	name string
}

// Name returns the namespace's name.
func (ns *Namespace) Name() string { return ns.name }

// Do sends a mixed batch of operations as one frame; the server stages it
// as one atomic group, so the whole batch lands in a single epoch. Results
// are index-aligned with ops.
func (ns *Namespace) Do(ops []conn.Op) ([]bool, error) {
	wops := make([]wire.Op, len(ops))
	for i, op := range ops {
		wops[i] = wire.Op{Kind: wire.Kind(op.Kind), U: op.U, V: op.V}
	}
	resp, err := ns.c.do(&wire.Request{Cmd: wire.CmdBatch, NS: ns.name, Ops: wops})
	if err != nil {
		return nil, err
	}
	return resp.Bits, nil
}

// DoSharded routes a batch by partition against a namespace created with
// the given shard count: intra-shard mutations are grouped into one frame
// per shard and the frames fly concurrently, each landing directly in its
// partition's epoch pipeline — k coalescing windows and k fsync streams run
// in parallel. Cross-shard mutations and all queries form a final frame sent
// after every shard frame commits, so queries still observe this call's own
// mutations. Results are index-aligned with ops; atomicity is per frame, not
// whole-batch. With shards < 2 it is exactly Do.
func (ns *Namespace) DoSharded(shards int, ops []conn.Op) ([]bool, error) {
	if shards < 2 {
		return ns.Do(ops)
	}
	groups := make([][]conn.Op, shards)
	gidx := make([][]int, shards)
	var rest []conn.Op
	var restIdx []int
	for i, op := range ops {
		if op.Kind != conn.OpQuery {
			if su, sv := shard.Partition(op.U, shards), shard.Partition(op.V, shards); su == sv {
				groups[su] = append(groups[su], op)
				gidx[su] = append(gidx[su], i)
				continue
			}
		}
		rest = append(rest, op)
		restIdx = append(restIdx, i)
	}
	out := make([]bool, len(ops))
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		if len(groups[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			bits, err := ns.Do(groups[s])
			if err == nil && len(bits) != len(groups[s]) {
				err = fmt.Errorf("client: server returned %d results for %d ops", len(bits), len(groups[s]))
			}
			if err != nil {
				errs[s] = err
				return
			}
			for j, b := range bits {
				out[gidx[s][j]] = b
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(rest) > 0 {
		bits, err := ns.Do(rest)
		if err != nil {
			return nil, err
		}
		if len(bits) != len(rest) {
			return nil, fmt.Errorf("client: server returned %d results for %d ops", len(bits), len(rest))
		}
		for j, b := range bits {
			out[restIdx[j]] = b
		}
	}
	return out, nil
}

func (ns *Namespace) one(kind conn.OpKind, u, v int32) (bool, error) {
	return oneBit(ns.Do([]conn.Op{{Kind: kind, U: u, V: v}}))
}

// Insert adds edge {u, v}; reports whether it was newly added.
func (ns *Namespace) Insert(u, v int32) (bool, error) { return ns.one(conn.OpInsert, u, v) }

// Delete removes edge {u, v}; reports whether it was removed.
func (ns *Namespace) Delete(u, v int32) (bool, error) { return ns.one(conn.OpDelete, u, v) }

// Connected answers a linearized connectivity query: it joins the epoch
// pipeline and observes its epoch's post-update state.
func (ns *Namespace) Connected(u, v int32) (bool, error) { return ns.one(conn.OpQuery, u, v) }

func edgesToOps(kind conn.OpKind, es []conn.Edge) []conn.Op {
	ops := make([]conn.Op, len(es))
	for i, e := range es {
		ops[i] = conn.Op{Kind: kind, U: e.U, V: e.V}
	}
	return ops
}

// InsertEdges stages a batch of insertions as one atomic group and returns
// the number credited to this call.
func (ns *Namespace) InsertEdges(es []conn.Edge) (int, error) {
	bits, err := ns.Do(edgesToOps(conn.OpInsert, es))
	return countTrue(bits), err
}

// DeleteEdges stages a batch of deletions as one atomic group and returns
// the number credited to this call.
func (ns *Namespace) DeleteEdges(es []conn.Edge) (int, error) {
	bits, err := ns.Do(edgesToOps(conn.OpDelete, es))
	return countTrue(bits), err
}

// ConnectedBatch answers k linearized queries against one post-epoch state.
func (ns *Namespace) ConnectedBatch(qs []conn.Edge) ([]bool, error) {
	return ns.Do(edgesToOps(conn.OpQuery, qs))
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func (ns *Namespace) read(cmd wire.Cmd, qs []conn.Edge) ([]bool, error) {
	pairs := make([]wire.Pair, len(qs))
	for i, q := range qs {
		pairs[i] = wire.Pair{U: q.U, V: q.V}
	}
	req := &wire.Request{Cmd: cmd, NS: ns.name, Pairs: pairs}
	// Only the bounded-staleness tier may be served by a replica; ReadNow
	// promises "all committed epochs", which only the primary can keep.
	if cmd == wire.CmdReadRecent {
		resp, err := ns.c.doRead(req)
		if err != nil {
			return nil, err
		}
		return resp.Bits, nil
	}
	resp, err := ns.c.do(req)
	if err != nil {
		return nil, err
	}
	return resp.Bits, nil
}

func oneBit(bits []bool, err error) (bool, error) {
	if err != nil {
		return false, err
	}
	if len(bits) != 1 {
		return false, fmt.Errorf("client: server returned %d results for 1 query", len(bits))
	}
	return bits[0], nil
}

// ReadNow answers a read-committed query against the live structure: no
// coalescing window, excluded only by the mutating phase of each epoch.
func (ns *Namespace) ReadNow(u, v int32) (bool, error) {
	return oneBit(ns.read(wire.CmdReadNow, []conn.Edge{{U: u, V: v}}))
}

// ReadNowBatch answers k read-committed queries against one live state.
func (ns *Namespace) ReadNowBatch(qs []conn.Edge) ([]bool, error) {
	return ns.read(wire.CmdReadNow, qs)
}

// ReadRecent answers a wait-free bounded-staleness query from the server's
// last published component snapshot.
func (ns *Namespace) ReadRecent(u, v int32) (bool, error) {
	return oneBit(ns.read(wire.CmdReadRecent, []conn.Edge{{U: u, V: v}}))
}

// ReadRecentBatch answers k wait-free queries from one published snapshot.
func (ns *Namespace) ReadRecentBatch(qs []conn.Edge) ([]bool, error) {
	return ns.read(wire.CmdReadRecent, qs)
}

// Stats returns the namespace's Batcher counters.
func (ns *Namespace) Stats() (wire.Stats, error) {
	resp, err := ns.c.do(&wire.Request{Cmd: wire.CmdStats, NS: ns.name})
	if err != nil {
		return wire.Stats{}, err
	}
	return resp.Stats, nil
}

// Checkpoint durably snapshots a durable namespace and truncates its WAL,
// returning the snapshot's server-side path.
func (ns *Namespace) Checkpoint() (string, error) {
	resp, err := ns.c.do(&wire.Request{Cmd: wire.CmdCheckpoint, NS: ns.name})
	if err != nil {
		return "", err
	}
	return resp.Path, nil
}
