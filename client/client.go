// Package client is the Go client for cmd/connserver: a connection-pooled,
// pipelined front-end that mirrors the conn.Batcher API over the
// internal/wire protocol.
//
// A Client owns a small pool of TCP connections. Any number of goroutines
// may issue requests concurrently; each request is written as one frame on
// a pooled connection and matched to its response by id, so many requests
// ride one connection simultaneously (pipelining). On the server side every
// in-flight frame blocks in the namespace's Batcher — concurrent frames
// from any mix of clients coalesce into one large epoch, which is the whole
// reason the server exists: Theorem 1's per-operation cost falls as batches
// grow, and the network layer's job is to deliver big batches.
//
//	c, err := client.Dial("localhost:7421", client.WithConns(4))
//	defer c.Close()
//	c.Create("social", 1<<20, true) // durable namespace
//	ns := c.Namespace("social")
//	ns.Insert(1, 2)
//	ok, _ := ns.Connected(1, 2)    // linearized, rides the epoch pipeline
//	ok, _ = ns.ReadRecent(1, 2)    // wait-free snapshot tier
//
// Batching amplifies throughput further: InsertEdges / Do send one frame
// for the whole group, and the group commits in a single epoch.
//
// Error model: methods return an error when the server rejects the request
// (wire.Status* mapped to ErrNotFound, ErrExists, ...) or when the
// connection fails. A failed connection is redialed on the next use, so a
// client survives a server restart; requests in flight during the failure
// return the transport error and were possibly not applied — idempotent
// connectivity updates make blind retry safe, but that choice is the
// caller's.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
	"repro/internal/wire"
)

// Errors mapped from wire status codes.
var (
	ErrNotFound = errors.New("client: namespace not found")
	ErrExists   = errors.New("client: namespace already exists")
	ErrDraining = errors.New("client: server is draining")
	ErrClosed   = errors.New("client: client is closed")
)

// Option configures a Client.
type Option func(*options)

type options struct {
	conns       int
	dialTimeout time.Duration
}

// WithConns sets the connection-pool size (default 1). More connections let
// more requests ride the network concurrently; requests within one
// connection already pipeline.
func WithConns(k int) Option {
	return func(o *options) {
		if k > 0 {
			o.conns = k
		}
	}
}

// WithDialTimeout bounds each dial attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.dialTimeout = d
		}
	}
}

// Client is a pooled, pipelined connserver client. Safe for concurrent use.
type Client struct {
	addr   string
	opts   options
	nextID atomic.Uint64
	rr     atomic.Uint32
	closed atomic.Bool

	mu   sync.Mutex // guards pool slots during (re)dial
	pool []*poolConn
}

// Dial connects to a connserver. The first pool connection is established
// eagerly so configuration errors surface here; the rest dial on first use.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{conns: 1, dialTimeout: 5 * time.Second}
	for _, f := range opts {
		f(&o)
	}
	c := &Client{addr: addr, opts: o, pool: make([]*poolConn, o.conns)}
	pc, err := c.dialSlot()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.pool[0] = pc
	c.mu.Unlock()
	return c, nil
}

// Close closes every pooled connection. In-flight requests fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pc := range c.pool {
		if pc != nil {
			pc.fail(ErrClosed)
		}
	}
	return nil
}

// ---------------------------------------------------------------- pool

// poolConn is one pooled connection: a writer guarded by wmu, and a reader
// goroutine that fans responses back to waiting requests by id.
type poolConn struct {
	c  net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan result
	dead    error // non-nil once the connection has failed
}

type result struct {
	resp *wire.Response
	err  error
}

func (c *Client) dialSlot() (*poolConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	pc := &poolConn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, 1<<16),
		pending: make(map[uint64]chan result),
	}
	go pc.readLoop()
	return pc, nil
}

// readLoop owns the connection's read half: every arriving frame resolves
// the pending request with its id. Any read or decode error kills the
// connection and fails everything still pending.
func (pc *poolConn) readLoop() {
	br := bufio.NewReaderSize(pc.c, 1<<16)
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			pc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			pc.fail(err)
			return
		}
		pc.pmu.Lock()
		ch, ok := pc.pending[resp.ID]
		if ok {
			delete(pc.pending, resp.ID)
		}
		pc.pmu.Unlock()
		if ok {
			ch <- result{resp: resp}
		}
	}
}

// fail marks the connection dead and resolves every pending request with
// err. Idempotent; the first error wins.
func (pc *poolConn) fail(err error) {
	pc.pmu.Lock()
	if pc.dead == nil {
		pc.dead = err
	}
	pending := pc.pending
	pc.pending = make(map[uint64]chan result)
	pc.pmu.Unlock()
	pc.c.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// conn returns a live pooled connection, redialing the slot if its previous
// occupant died. Slots are picked round-robin.
func (c *Client) conn() (*poolConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	slot := int(c.rr.Add(1)) % len(c.pool)
	c.mu.Lock()
	pc := c.pool[slot]
	if pc != nil {
		pc.pmu.Lock()
		dead := pc.dead != nil
		pc.pmu.Unlock()
		if !dead {
			c.mu.Unlock()
			return pc, nil
		}
	}
	c.mu.Unlock()
	// Dial outside c.mu so a slow dial does not block other slots.
	fresh, err := c.dialSlot()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Another goroutine may have refilled the slot meanwhile; prefer the
	// winner and fold the loser.
	if cur := c.pool[slot]; cur != nil && cur != pc {
		cur.pmu.Lock()
		curDead := cur.dead != nil
		cur.pmu.Unlock()
		if !curDead {
			c.mu.Unlock()
			fresh.fail(ErrClosed)
			return cur, nil
		}
	}
	c.pool[slot] = fresh
	closed := c.closed.Load()
	c.mu.Unlock()
	if closed {
		fresh.fail(ErrClosed)
		return nil, ErrClosed
	}
	return fresh, nil
}

// do performs one round trip: assign an id, register the waiter, write the
// frame, block for the response.
func (c *Client) do(req *wire.Request) (*wire.Response, error) {
	pc, err := c.conn()
	if err != nil {
		return nil, err
	}
	req.ID = c.nextID.Add(1)
	payload, err := wire.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	ch := make(chan result, 1)
	pc.pmu.Lock()
	if pc.dead != nil {
		err := pc.dead
		pc.pmu.Unlock()
		return nil, err
	}
	pc.pending[req.ID] = ch
	pc.pmu.Unlock()

	pc.wmu.Lock()
	err = wire.WriteFrame(pc.bw, payload)
	if err == nil {
		err = pc.bw.Flush()
	}
	pc.wmu.Unlock()
	if err != nil {
		pc.fail(fmt.Errorf("client: write: %w", err))
		// fail resolved our waiter (or we race its resolution); drain it so
		// the channel cannot leak a stale result.
		<-ch
		return nil, err
	}

	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	if res.resp.Status != wire.StatusOK {
		return nil, statusErr(res.resp)
	}
	return res.resp, nil
}

// statusErr maps a non-OK response onto the package's sentinel errors.
func statusErr(r *wire.Response) error {
	switch r.Status {
	case wire.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, r.Msg)
	case wire.StatusExists:
		return fmt.Errorf("%w: %s", ErrExists, r.Msg)
	case wire.StatusDraining:
		return fmt.Errorf("%w: %s", ErrDraining, r.Msg)
	default:
		return wire.StatusError(r)
	}
}

// ---------------------------------------------------------------- admin API

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdPing})
	return err
}

// Create makes a new namespace over n vertices. A durable namespace
// write-ahead-logs every epoch under the server's data directory and
// survives server restarts.
func (c *Client) Create(ns string, n int, durable bool) error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdCreate, NS: ns, N: uint32(n), Durable: durable})
	return err
}

// Drop quiesces and removes a namespace; a durable namespace's on-disk
// state is deleted.
func (c *Client) Drop(ns string) error {
	_, err := c.do(&wire.Request{Cmd: wire.CmdDrop, NS: ns})
	return err
}

// NamespaceInfo describes one served namespace.
type NamespaceInfo struct {
	Name    string
	N       int
	Durable bool
}

// List returns the served namespaces, sorted by name.
func (c *Client) List() ([]NamespaceInfo, error) {
	resp, err := c.do(&wire.Request{Cmd: wire.CmdList})
	if err != nil {
		return nil, err
	}
	out := make([]NamespaceInfo, len(resp.Namespaces))
	for i, ns := range resp.Namespaces {
		out[i] = NamespaceInfo{Name: ns.Name, N: ns.N, Durable: ns.Durable}
	}
	return out, nil
}

// Namespace returns a handle for issuing operations against one namespace.
// The handle is cheap and safe to share between goroutines.
func (c *Client) Namespace(name string) *Namespace {
	return &Namespace{c: c, name: name}
}

// ---------------------------------------------------------------- namespace API

// Namespace mirrors the conn.Batcher surface over the wire: single ops,
// atomic batches, the three read tiers, stats and checkpoint.
type Namespace struct {
	c    *Client
	name string
}

// Name returns the namespace's name.
func (ns *Namespace) Name() string { return ns.name }

// Do sends a mixed batch of operations as one frame; the server stages it
// as one atomic group, so the whole batch lands in a single epoch. Results
// are index-aligned with ops.
func (ns *Namespace) Do(ops []conn.Op) ([]bool, error) {
	wops := make([]wire.Op, len(ops))
	for i, op := range ops {
		wops[i] = wire.Op{Kind: wire.Kind(op.Kind), U: op.U, V: op.V}
	}
	resp, err := ns.c.do(&wire.Request{Cmd: wire.CmdBatch, NS: ns.name, Ops: wops})
	if err != nil {
		return nil, err
	}
	return resp.Bits, nil
}

func (ns *Namespace) one(kind conn.OpKind, u, v int32) (bool, error) {
	return oneBit(ns.Do([]conn.Op{{Kind: kind, U: u, V: v}}))
}

// Insert adds edge {u, v}; reports whether it was newly added.
func (ns *Namespace) Insert(u, v int32) (bool, error) { return ns.one(conn.OpInsert, u, v) }

// Delete removes edge {u, v}; reports whether it was removed.
func (ns *Namespace) Delete(u, v int32) (bool, error) { return ns.one(conn.OpDelete, u, v) }

// Connected answers a linearized connectivity query: it joins the epoch
// pipeline and observes its epoch's post-update state.
func (ns *Namespace) Connected(u, v int32) (bool, error) { return ns.one(conn.OpQuery, u, v) }

func edgesToOps(kind conn.OpKind, es []conn.Edge) []conn.Op {
	ops := make([]conn.Op, len(es))
	for i, e := range es {
		ops[i] = conn.Op{Kind: kind, U: e.U, V: e.V}
	}
	return ops
}

// InsertEdges stages a batch of insertions as one atomic group and returns
// the number credited to this call.
func (ns *Namespace) InsertEdges(es []conn.Edge) (int, error) {
	bits, err := ns.Do(edgesToOps(conn.OpInsert, es))
	return countTrue(bits), err
}

// DeleteEdges stages a batch of deletions as one atomic group and returns
// the number credited to this call.
func (ns *Namespace) DeleteEdges(es []conn.Edge) (int, error) {
	bits, err := ns.Do(edgesToOps(conn.OpDelete, es))
	return countTrue(bits), err
}

// ConnectedBatch answers k linearized queries against one post-epoch state.
func (ns *Namespace) ConnectedBatch(qs []conn.Edge) ([]bool, error) {
	return ns.Do(edgesToOps(conn.OpQuery, qs))
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func (ns *Namespace) read(cmd wire.Cmd, qs []conn.Edge) ([]bool, error) {
	pairs := make([]wire.Pair, len(qs))
	for i, q := range qs {
		pairs[i] = wire.Pair{U: q.U, V: q.V}
	}
	resp, err := ns.c.do(&wire.Request{Cmd: cmd, NS: ns.name, Pairs: pairs})
	if err != nil {
		return nil, err
	}
	return resp.Bits, nil
}

func oneBit(bits []bool, err error) (bool, error) {
	if err != nil {
		return false, err
	}
	if len(bits) != 1 {
		return false, fmt.Errorf("client: server returned %d results for 1 query", len(bits))
	}
	return bits[0], nil
}

// ReadNow answers a read-committed query against the live structure: no
// coalescing window, excluded only by the mutating phase of each epoch.
func (ns *Namespace) ReadNow(u, v int32) (bool, error) {
	return oneBit(ns.read(wire.CmdReadNow, []conn.Edge{{U: u, V: v}}))
}

// ReadNowBatch answers k read-committed queries against one live state.
func (ns *Namespace) ReadNowBatch(qs []conn.Edge) ([]bool, error) {
	return ns.read(wire.CmdReadNow, qs)
}

// ReadRecent answers a wait-free bounded-staleness query from the server's
// last published component snapshot.
func (ns *Namespace) ReadRecent(u, v int32) (bool, error) {
	return oneBit(ns.read(wire.CmdReadRecent, []conn.Edge{{U: u, V: v}}))
}

// ReadRecentBatch answers k wait-free queries from one published snapshot.
func (ns *Namespace) ReadRecentBatch(qs []conn.Edge) ([]bool, error) {
	return ns.read(wire.CmdReadRecent, qs)
}

// Stats returns the namespace's Batcher counters.
func (ns *Namespace) Stats() (wire.Stats, error) {
	resp, err := ns.c.do(&wire.Request{Cmd: wire.CmdStats, NS: ns.name})
	if err != nil {
		return wire.Stats{}, err
	}
	return resp.Stats, nil
}

// Checkpoint durably snapshots a durable namespace and truncates its WAL,
// returning the snapshot's server-side path.
func (ns *Namespace) Checkpoint() (string, error) {
	resp, err := ns.c.do(&wire.Request{Cmd: wire.CmdCheckpoint, NS: ns.name})
	if err != nil {
		return "", err
	}
	return resp.Path, nil
}
