package conn

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/coalesce"
	"repro/internal/graph"
	"repro/internal/unionfind"
	"repro/internal/wal"
)

// ackedEpoch is one committed epoch as the durability layer sees it: the
// raw insert/delete batches (self-loops dropped, queries ignored) plus the
// WAL sequence number it was logged under (0 if it carried no updates).
type ackedEpoch struct {
	seq      uint64
	ins, del []graph.Edge
}

// collectDurableStream runs a concurrent mixed workload through a durable
// Batcher rooted at dir, optionally checkpointing between two waves, and
// returns the acked epoch stream in commit order.
func collectDurableStream(t *testing.T, dir string, n int, withCkpt bool, extra ...BatcherOption) []ackedEpoch {
	t.Helper()
	g := New(n)
	opts := append([]BatcherOption{
		WithMaxBatch(48), WithMaxDelay(100 * time.Microsecond), WithDurability(dir),
	}, extra...)
	b := NewBatcher(g, opts...)
	var epochs []ackedEpoch
	var seq uint64
	b.testHook = func(ops []coalesce.Op, res []bool) {
		var e ackedEpoch
		for _, op := range ops {
			if op.U == op.V {
				continue
			}
			switch op.Kind {
			case coalesce.OpInsert:
				e.ins = append(e.ins, graph.Edge{U: op.U, V: op.V})
			case coalesce.OpDelete:
				e.del = append(e.del, graph.Edge{U: op.U, V: op.V})
			}
		}
		if len(e.ins)+len(e.del) > 0 {
			seq++
			e.seq = seq
		}
		epochs = append(epochs, e) // dispatcher goroutine only
	}

	perG := 600
	if testing.Short() {
		perG = 150
	}
	wave := func(waveID int) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(31*waveID + w)))
				for i := 0; i < perG; i++ {
					u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
					switch r := rng.Intn(100); {
					case r < 45:
						b.Insert(u, v)
					case r < 75:
						b.Delete(u, v)
					case r < 90:
						b.Connected(u, v)
					default:
						b.InsertEdges([]Edge{{U: u, V: v}, {U: v, V: u}})
					}
				}
			}(w)
		}
		wg.Wait()
	}
	wave(1)
	if withCkpt {
		if _, err := b.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		wave(2)
	}
	b.Close()

	// Sanity: the WAL's final seq matches the hook's accounting.
	s := b.Stats()
	if s.WALRecords != int64(seq) {
		t.Fatalf("WALRecords = %d, hook assigned %d seqs", s.WALRecords, seq)
	}
	return epochs
}

// oracleState replays the acked epochs with seq in (0, upTo] through a
// sequential edge-set oracle and returns the surviving edge keys.
func oracleState(epochs []ackedEpoch, upTo uint64) map[uint64]bool {
	edges := map[uint64]bool{}
	for _, e := range epochs {
		if e.seq == 0 || e.seq > upTo {
			continue
		}
		for _, in := range e.ins {
			edges[in.Key()] = true
		}
		for _, d := range e.del {
			delete(edges, d.Key())
		}
	}
	return edges
}

// verifyRecovered checks that a restored graph is exactly the oracle state:
// same edge set, and the same connectivity partition as a union-find built
// from it.
func verifyRecovered(t *testing.T, g *Graph, n int, edges map[uint64]bool, tag string) {
	t.Helper()
	if g.NumEdges() != len(edges) {
		t.Fatalf("%s: NumEdges = %d, oracle has %d", tag, g.NumEdges(), len(edges))
	}
	for k := range edges {
		e := graph.FromKey(k)
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("%s: acked edge {%d,%d} lost", tag, e.U, e.V)
		}
	}
	uf := unionfind.New(n)
	for k := range edges {
		e := graph.FromKey(k)
		uf.Union(e.U, e.V)
	}
	lbl := make([]int32, n)
	g.ComponentLabels(lbl)
	fwd := map[int32]int32{} // uf root -> recovered label
	rev := map[int32]int32{}
	for u := 0; u < n; u++ {
		r := uf.Find(int32(u))
		if want, ok := fwd[r]; ok && want != lbl[u] {
			t.Fatalf("%s: vertex %d split from its oracle component", tag, u)
		}
		fwd[r] = lbl[u]
		if want, ok := rev[lbl[u]]; ok && want != r {
			t.Fatalf("%s: vertex %d merged into a foreign oracle component", tag, u)
		}
		rev[lbl[u]] = r
	}
}

// cloneDurableDir copies dir's checkpoints into a fresh directory and
// installs walBytes as its WAL — one simulated crash image.
func cloneDurableDir(t *testing.T, dir string, walBytes []byte) string {
	t.Helper()
	crash := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() == "wal.log" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(crash, "wal.log"), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	return crash
}

// TestDurableCrashRecovery is the crash-recovery differential harness: a
// random concurrent update stream runs through a durable Batcher, then
// crashes are simulated at randomized WAL offsets — including torn
// mid-record tails and bit corruption — by truncating/corrupting a copy of
// the on-disk state. Each crash image is Restored and verified against a
// union-find oracle replay of exactly the epoch prefix that survived: no
// acked-and-surviving write may be lost, no discarded write may resurrect.
// Run with -race.
func TestDurableCrashRecovery(t *testing.T) {
	const n = 96
	for _, tc := range []struct {
		name     string
		withCkpt bool
		opts     []BatcherOption
	}{
		{"wal-only", false, nil},
		{"checkpoint-plus-tail", true, nil},
		// Group-commit fsync scheduling plus the v2 delta codec: crashes now
		// land mid-group (several epochs appended, the fsync shared), and the
		// WAL records are compressed. The differential contract is identical:
		// restore must equal the oracle replay of exactly the record prefix
		// that survived the cut.
		{"group-sync-codec-v2", true, []BatcherOption{
			WithGroupSync(4, 300*time.Microsecond), WithWALCodec("v2"),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			epochs := collectDurableStream(t, dir, n, tc.withCkpt, tc.opts...)
			walBytes, err := os.ReadFile(filepath.Join(dir, "wal.log"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wal.Scan(bytes.NewReader(walBytes), nil); err != nil {
				t.Fatal(err)
			}
			headerEnd := int64(wal.HeaderLen)

			trials := 18
			if testing.Short() {
				trials = 8
			}
			rng := rand.New(rand.NewSource(9))
			cuts := []int64{int64(len(walBytes)), headerEnd, int64(len(walBytes)) - 3}
			for i := 0; i < trials; i++ {
				cuts = append(cuts, headerEnd+rng.Int63n(int64(len(walBytes))-headerEnd+1))
			}
			for i, cut := range cuts {
				img := append([]byte{}, walBytes[:cut]...)
				crash := cloneDurableDir(t, dir, img)
				res, err := wal.Scan(bytes.NewReader(img), nil)
				if err != nil {
					t.Fatalf("cut %d: scan: %v", cut, err)
				}
				g2, err := Restore(crash)
				if err != nil {
					t.Fatalf("cut %d: Restore: %v", cut, err)
				}
				verifyRecovered(t, g2, n, oracleState(epochs, res.LastSeq), "cut")
				if i < 3 {
					if err := g2.CheckInvariants(); err != nil {
						t.Fatalf("cut %d: invariants: %v", cut, err)
					}
				}
			}

			// Bit-corruption crashes: flip one byte somewhere in the record
			// region; the scan must stop before the flipped record and the
			// restore must match that shorter prefix.
			for i := 0; i < trials/2; i++ {
				img := append([]byte{}, walBytes...)
				img[headerEnd+rng.Int63n(int64(len(img))-headerEnd)] ^= byte(1 + rng.Intn(255))
				crash := cloneDurableDir(t, dir, img)
				res, err := wal.Scan(bytes.NewReader(img), nil)
				if err != nil {
					t.Fatalf("corrupt trial %d: scan: %v", i, err)
				}
				g2, err := Restore(crash)
				if err != nil {
					t.Fatalf("corrupt trial %d: Restore: %v", i, err)
				}
				verifyRecovered(t, g2, n, oracleState(epochs, res.LastSeq), "corrupt")
			}

			// The uncut image recovers the complete acked history.
			g2, err := Restore(dir)
			if err != nil {
				t.Fatal(err)
			}
			verifyRecovered(t, g2, n, oracleState(epochs, ^uint64(0)), "full")
			if err := g2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableRestartContinuesHistory exercises the full lifecycle: durable
// writes, clean close, Restore, more durable writes on the same directory,
// a checkpoint, crash, Restore again — the log seq and state must thread
// through every step.
func TestDurableRestartContinuesHistory(t *testing.T) {
	dir := t.TempDir()
	g := New(32)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir))
	b.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	b.Delete(3, 4)
	b.Close()

	g2, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 || !g2.Connected(0, 2) || g2.Connected(3, 4) {
		t.Fatalf("restored state wrong: edges=%d", g2.NumEdges())
	}

	b2 := NewBatcher(g2, WithMaxDelay(0), WithDurability(dir))
	b2.Insert(2, 3)
	if _, err := b2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	b2.Insert(4, 5)
	b2.Close()
	if s := b2.Stats(); s.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d", s.Checkpoints)
	}

	g3, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != 4 || !g3.Connected(0, 3) || !g3.Connected(4, 5) || g3.Connected(0, 4) {
		t.Fatalf("post-checkpoint restore wrong: edges=%d", g3.NumEdges())
	}
	if err := g3.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreNoState(t *testing.T) {
	if _, err := Restore(t.TempDir()); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("Restore of empty dir: %v", err)
	}
}

// TestRestoreStubWALIsNoState: a crash during the very first WAL creation
// leaves a sub-header stub; that is "nothing durable yet", not corruption —
// the documented first-boot pattern must keep working.
func TestRestoreStubWALIsNoState(t *testing.T) {
	for _, stub := range [][]byte{{}, []byte("conn")} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), stub, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Restore(dir); !errors.Is(err, ErrNoDurableState) {
			t.Fatalf("Restore over %d-byte stub: %v", len(stub), err)
		}
		// And a durable Batcher must boot over the stub, not panic.
		b := NewBatcher(New(8), WithMaxDelay(0), WithDurability(dir))
		b.Insert(0, 1)
		b.Close()
		g, err := Restore(dir)
		if err != nil || !g.Connected(0, 1) {
			t.Fatalf("after reboot over stub: %v", err)
		}
	}
}

// TestRestoreRefusesLostCheckpoint: once the WAL has been truncated at a
// checkpoint, losing or corrupting that checkpoint must surface as a
// Restore error — never as a silently shrunken graph.
func TestRestoreRefusesLostCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := New(16)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir))
	b.Insert(0, 1)
	b.Insert(1, 2)
	ckptPath, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(2, 3)
	b.Close()

	// Corrupt the checkpoint: acked edges {0,1},{1,2} now exist nowhere.
	if err := os.WriteFile(ckptPath, []byte("scribble"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir); err == nil {
		t.Fatal("Restore silently dropped the checkpointed prefix")
	}
	// Removing it entirely must fail the same way.
	if err := os.Remove(ckptPath); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir); err == nil {
		t.Fatal("Restore silently dropped the checkpointed prefix (file removed)")
	}
}

// TestRestoreRejectsUniverseMismatch: a checkpoint and WAL from different
// universes must produce an error before any replay, not a panic.
func TestRestoreRejectsUniverseMismatch(t *testing.T) {
	dir := t.TempDir()
	b := NewBatcher(New(64), WithMaxDelay(0), WithDurability(dir))
	b.Insert(20, 21)
	b.Close()
	if _, err := checkpoint.Write(dir, checkpoint.Snapshot{Seq: 0, N: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir); err == nil {
		t.Fatal("mismatched universes restored")
	}
}

func TestCheckpointWithoutDurabilityErrors(t *testing.T) {
	b := NewBatcher(New(4))
	defer b.Close()
	if _, err := b.Checkpoint(); err == nil {
		t.Fatal("Checkpoint without WithDurability succeeded")
	}
}

// TestDurableAckImpliesDurable pins the fsync ordering at the API level:
// after every single acked Insert, an immediate Restore from a copy of the
// directory must already contain the edge.
func TestDurableAckImpliesDurable(t *testing.T) {
	dir := t.TempDir()
	g := New(16)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir))
	defer b.Close()
	for i := int32(0); i < 6; i++ {
		b.Insert(i, i+1)
		walBytes, err := os.ReadFile(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		g2, err := Restore(cloneDurableDir(t, dir, walBytes))
		if err != nil {
			t.Fatal(err)
		}
		if !g2.Connected(0, i+1) {
			t.Fatalf("acked insert {%d,%d} not durable", i, i+1)
		}
	}
}

// TestDoSeqIsExact: the seq DoSeq returns is the caller's own epoch — the
// WAL record that committed its ops (or, for a query-only group, the last
// mutating seq its answer reflects) — never a later writer's position. A
// fence built from it therefore demands exactly the caller's writes from a
// replica, which is what keeps read-your-writes routing from degrading to
// primary-only reads under concurrent write load.
func TestDoSeqIsExact(t *testing.T) {
	dir := t.TempDir()
	g := New(64)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir))
	defer b.Close()

	_, s1, err := b.DoSeq([]Op{{Kind: OpInsert, U: 0, V: 1}})
	if err != nil || s1 != 1 {
		t.Fatalf("first mutating DoSeq = seq %d, %v; want 1", s1, err)
	}
	_, s2, err := b.DoSeq([]Op{{Kind: OpInsert, U: 1, V: 2}})
	if err != nil || s2 != 2 {
		t.Fatalf("second mutating DoSeq = seq %d, %v; want 2", s2, err)
	}
	// Query-only group: no record is logged; the reported position is the
	// last mutating seq the post-epoch state reflects.
	bits, s3, err := b.DoSeq([]Op{{Kind: OpQuery, U: 0, V: 2}})
	if err != nil || s3 != 2 || !bits[0] {
		t.Fatalf("query-only DoSeq = %v, seq %d, %v; want true, 2", bits, s3, err)
	}

	// Concurrent writers: every caller's seq must cover its own write —
	// replaying the WAL prefix up to that seq must contain the edge.
	const writers = 8
	var wg sync.WaitGroup
	seqs := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, s, err := b.DoSeq([]Op{{Kind: OpInsert, U: int32(10 + w), V: int32(20 + w)}})
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			seqs[w] = s
		}(w)
	}
	wg.Wait()
	b.Flush()

	f, err := os.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	firstSeq := make(map[uint64]uint64) // edge key -> seq of the record holding it
	if _, err := wal.Scan(f, func(r wal.Record) error {
		for _, e := range r.Ins {
			k := graph.Edge{U: e.U, V: e.V}.Key()
			if _, ok := firstSeq[k]; !ok {
				firstSeq[k] = r.Seq
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		k := graph.Edge{U: int32(10 + w), V: int32(20 + w)}.Key()
		logged, ok := firstSeq[k]
		if !ok {
			t.Fatalf("writer %d's edge missing from the WAL", w)
		}
		if seqs[w] != logged {
			t.Fatalf("writer %d: DoSeq reported %d but its edge committed at %d", w, seqs[w], logged)
		}
	}
}
