package conn

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ett"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/hdt"
	"repro/internal/parallel"
	"repro/internal/static"
	"repro/internal/unionfind"
)

// The benchmarks mirror the experiments of cmd/benchconn (E1..E10, see
// DESIGN.md §4): one bench family per claim of the paper's analysis, sized
// for the Go benchmark harness. Run with
//
//	go test -bench=. -benchmem
//
// ReportMetric publishes the per-item cost (ns/query, ns/edge) that the
// paper's bounds speak about; wall-clock comparisons live in cmd/benchconn.

func buildCore(n int, es []graph.Edge, alg core.Algorithm) *core.Conn {
	c := core.New(n, core.WithAlgorithm(alg))
	for _, b := range graphgen.Batches(es, 1<<16) {
		c.BatchInsert(b)
	}
	return c
}

// E1 — Theorem 3: batch connectivity queries, k sweep.
func BenchmarkE1BatchQuery(b *testing.B) {
	n := 1 << 16
	c := buildCore(n, graphgen.RandomSpanningTree(n, 1), core.SearchInterleaved)
	for _, k := range []int{1, 64, 4096, 65536} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			qs := graphgen.QueryBatch(n, k, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.BatchConnected(qs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/query")
		})
	}
}

// E2 — Theorem 4: batch insertion, k sweep.
func BenchmarkE2BatchInsert(b *testing.B) {
	n := 1 << 16
	for _, k := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			es := graphgen.RandomGraph(n, n, 3)
			batches := graphgen.Batches(es, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := core.New(n)
				b.StartTimer()
				for _, batch := range batches {
					c.BatchInsert(batch)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(es)), "ns/edge")
		})
	}
}

// E3 — Theorem 9 (headline): deletion cost vs batch size Δ.
func BenchmarkE3DeleteBatchSweep(b *testing.B) {
	n := 1 << 13
	m := 4 * n
	for _, delta := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				es := graphgen.RandomGraph(n, m, 5)
				c := buildCore(n, es, core.SearchInterleaved)
				graphgen.Shuffle(es, int64(delta))
				batches := graphgen.Batches(es, delta)
				b.StartTimer()
				for _, batch := range batches {
					c.BatchDelete(batch)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*m), "ns/edge")
		})
	}
}

// E4 — Theorem 6: total deletion work vs the sequential HDT baseline.
func BenchmarkE4VsHDT(b *testing.B) {
	n := 1 << 12
	m := 4 * n
	b.Run("hdt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			es := graphgen.RandomGraph(n, m, 7)
			h := hdt.New(n)
			for _, e := range es {
				h.Insert(e.U, e.V)
			}
			graphgen.Shuffle(es, 7)
			b.StartTimer()
			for _, e := range es {
				h.Delete(e.U, e.V)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*m), "ns/edge")
	})
	for _, delta := range []int{1, 1024} {
		b.Run(fmt.Sprintf("batch/delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				es := graphgen.RandomGraph(n, m, 7)
				c := buildCore(n, es, core.SearchInterleaved)
				graphgen.Shuffle(es, 7)
				batches := graphgen.Batches(es, delta)
				b.StartTimer()
				for _, batch := range batches {
					c.BatchDelete(batch)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*m), "ns/edge")
		})
	}
}

// E5 — depth bounds: deletion throughput vs worker count.
func BenchmarkE5Scalability(b *testing.B) {
	n := 1 << 13
	m := 4 * n
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			old := parallel.SetWorkers(p)
			defer parallel.SetWorkers(old)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				es := graphgen.RandomGraph(n, m, 9)
				c := buildCore(n, es, core.SearchInterleaved)
				graphgen.Shuffle(es, 9)
				batches := graphgen.Batches(es, 8192)
				b.StartTimer()
				for _, batch := range batches {
					c.BatchDelete(batch)
				}
			}
		})
	}
}

// E6 — Theorem 2: ETT substrate batch operations.
func BenchmarkE6ETT(b *testing.B) {
	n := 1 << 16
	tree := graphgen.RandomSpanningTree(n, 11)
	k := 16384
	b.Run("link", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := ett.New(n)
			f.BatchLink(tree[:n-1-k])
			b.StartTimer()
			f.BatchLink(tree[n-1-k:])
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/link")
	})
	b.Run("cut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := ett.New(n)
			f.BatchLink(tree)
			b.StartTimer()
			f.BatchCut(tree[n-1-k:])
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/cut")
	})
	b.Run("query", func(b *testing.B) {
		f := ett.New(n)
		f.BatchLink(tree)
		qs := graphgen.QueryBatch(n, k, 11)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.BatchConnected(qs)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/query")
	})
}

// E7 — §3 vs §4 ablation on a shatter-heavy workload.
func BenchmarkE7Ablation(b *testing.B) {
	n := 1 << 12
	spokes := graphgen.Star(n)
	backbone := graphgen.RandomGraph(n, 2*n, 13)
	for _, alg := range []struct {
		name string
		a    core.Algorithm
	}{{"simple", core.SearchSimple}, {"interleaved", core.SearchInterleaved}} {
		b.Run(alg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := core.New(n, core.WithAlgorithm(alg.a))
				c.BatchInsert(spokes)
				c.BatchInsert(backbone)
				b.StartTimer()
				c.BatchDelete(spokes)
			}
		})
	}
}

// E8 — §1 motivation: per-batch delete+query versus static recompute.
func BenchmarkE8VsStatic(b *testing.B) {
	n := 1 << 14
	m := 4 * n
	for _, delta := range []int{16, 1024} {
		b.Run(fmt.Sprintf("dynamic/delta=%d", delta), func(b *testing.B) {
			es := graphgen.RandomGraph(n, m, 15)
			c := buildCore(n, es, core.SearchInterleaved)
			qs := graphgen.QueryBatch(n, 256, 15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := es[(i*delta)%(m-delta) : (i*delta)%(m-delta)+delta]
				c.BatchDelete(batch)
				c.BatchConnected(qs)
				b.StopTimer()
				c.BatchInsert(batch)
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("static/delta=%d", delta), func(b *testing.B) {
			es := graphgen.RandomGraph(n, m, 15)
			st := static.New(n)
			st.BatchInsert(es)
			qs := graphgen.QueryBatch(n, 256, 15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := es[(i*delta)%(m-delta) : (i*delta)%(m-delta)+delta]
				st.BatchDelete(batch)
				st.BatchConnected(qs)
				b.StopTimer()
				st.BatchInsert(batch)
				b.StartTimer()
			}
		})
	}
}

// E9 — context: insertion-only stream against plain union-find.
func BenchmarkE9InsertOnly(b *testing.B) {
	n := 1 << 16
	es := graphgen.RandomGraph(n, 2*n, 17)
	b.Run("batch-dynamic", func(b *testing.B) {
		batches := graphgen.Batches(es, 8192)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := core.New(n)
			b.StartTimer()
			for _, batch := range batches {
				c.BatchInsert(batch)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(es)), "ns/edge")
	})
	b.Run("union-find", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			u := unionfind.New(n)
			b.StartTimer()
			for _, e := range es {
				u.Union(e.U, e.V)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(es)), "ns/edge")
	})
}

// E10 — amortization: pushdown totals against the m·lg n budget.
func BenchmarkE10LevelDynamics(b *testing.B) {
	n := 1 << 12
	m := 4 * n
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		es := graphgen.RandomGraph(n, m, 19)
		c := buildCore(n, es, core.SearchInterleaved)
		graphgen.Shuffle(es, 19)
		b.StartTimer()
		for _, batch := range graphgen.Batches(es[:m/2], 32) {
			c.BatchDelete(batch)
		}
		b.StopTimer()
		s := c.Stats()
		lgn := 12
		b.ReportMetric(float64(s.Pushdowns+s.TreePushes)/float64(int64(m)*int64(lgn)), "pushdown-budget-frac")
		b.StartTimer()
	}
}
