package conn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coalesce"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestBatcherSequentialSemantics(t *testing.T) {
	g := New(8)
	b := NewBatcher(g, WithMaxDelay(0))
	if !b.Insert(0, 1) {
		t.Fatal("Insert(0,1) = false on empty graph")
	}
	if b.Insert(1, 0) {
		t.Fatal("Insert(1,0) = true for a present edge")
	}
	if b.Insert(2, 2) {
		t.Fatal("Insert(2,2) = true for a self-loop")
	}
	if got := b.InsertEdges([]Edge{{1, 2}, {2, 3}, {1, 2}}); got != 2 {
		t.Fatalf("InsertEdges = %d, want 2 (duplicate in batch)", got)
	}
	if !b.Connected(0, 3) || b.Connected(0, 4) {
		t.Fatal("Connected wrong")
	}
	ans := b.ConnectedBatch([]Edge{{0, 2}, {4, 5}})
	if !ans[0] || ans[1] {
		t.Fatalf("ConnectedBatch = %v", ans)
	}
	if !b.Delete(2, 1) {
		t.Fatal("Delete(2,1) = false for a present edge")
	}
	if b.Delete(1, 2) {
		t.Fatal("Delete(1,2) = true for an absent edge")
	}
	if got := b.DeleteEdges([]Edge{{0, 1}, {6, 7}}); got != 1 {
		t.Fatalf("DeleteEdges = %d, want 1", got)
	}
	b.Flush()
	b.Close()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after Close, want 1 ({2,3})", g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherEpochComposition pins the documented within-epoch order:
// inserts apply before deletes, and queries see the post-update state. Two
// goroutines land an insert and a delete of the same absent edge in one
// epoch (maxBatch 2, effectively infinite window): both must be credited
// and the edge must end absent.
func TestBatcherEpochComposition(t *testing.T) {
	g := New(4)
	b := NewBatcher(g, WithMaxBatch(2), WithMaxDelay(time.Hour))
	var insOK, delOK bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); insOK = b.Insert(0, 1) }()
	go func() { defer wg.Done(); delOK = b.Delete(0, 1) }()
	wg.Wait()
	b.Close()
	if !insOK || !delOK {
		t.Fatalf("insert=%v delete=%v, want both credited", insOK, delOK)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edge survived an insert+delete epoch: NumEdges = %d", g.NumEdges())
	}
}

func TestBatcherPanicsAfterClose(t *testing.T) {
	b := NewBatcher(New(4))
	b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert after Close did not panic")
		}
	}()
	b.Insert(0, 1)
}

func TestBatcherRejectsOutOfRange(t *testing.T) {
	b := NewBatcher(New(4))
	defer b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	b.Insert(0, 4)
}

// epochRecord is one committed epoch as observed by the test hook.
type epochRecord struct {
	ops []coalesce.Op
	res []bool
}

// TestBatcherConcurrentOracle is the workhorse race test: G goroutines
// issue mixed single-op and batch traffic through a Batcher, the test hook
// records every committed epoch, and afterwards the epoch stream is
// replayed against a sequential oracle — an edge-set map for update credit
// and a fresh union-find per epoch for connectivity — checking every
// result the callers saw. Run with -race.
func TestBatcherConcurrentOracle(t *testing.T) {
	const n = 192
	goroutines := 8
	perG := 2500
	if testing.Short() {
		perG = 400
	}

	g := New(n)
	b := NewBatcher(g, WithMaxBatch(256), WithMaxDelay(200*time.Microsecond))
	var epochs []epochRecord
	b.testHook = func(ops []coalesce.Op, res []bool) {
		r := epochRecord{
			ops: append([]coalesce.Op(nil), ops...),
			res: append([]bool(nil), res...),
		}
		epochs = append(epochs, r) // dispatcher goroutine only; no lock needed
	}

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			pair := func() (int32, int32) {
				return int32(rng.Intn(n)), int32(rng.Intn(n))
			}
			for i := 0; i < perG; i++ {
				u, v := pair()
				switch r := rng.Intn(100); {
				case r < 40:
					b.Insert(u, v)
				case r < 65:
					b.Delete(u, v)
				case r < 90:
					b.Connected(u, v)
				case r < 95:
					es := make([]Edge, 4)
					for j := range es {
						es[j].U, es[j].V = pair()
					}
					b.InsertEdges(es)
				default:
					es := make([]Edge, 4)
					for j := range es {
						es[j].U, es[j].V = pair()
					}
					b.DeleteEdges(es)
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close() // quiesce: epochs is safe to read from here on

	// Replay the epoch stream sequentially and re-derive every result.
	edges := map[uint64]bool{}
	total := 0
	for ei, ep := range epochs {
		total += len(ep.ops)
		// Phase 1: inserts, first staging of an absent edge gets credit.
		for i, op := range ep.ops {
			if op.Kind != coalesce.OpInsert {
				continue
			}
			want := false
			if op.U != op.V {
				k := graph.Edge{U: op.U, V: op.V}.Key()
				if !edges[k] {
					edges[k] = true
					want = true
				}
			}
			if ep.res[i] != want {
				t.Fatalf("epoch %d op %d: insert {%d,%d} = %v, oracle says %v",
					ei, i, op.U, op.V, ep.res[i], want)
			}
		}
		// Phase 2: deletes, against the post-insert edge set.
		for i, op := range ep.ops {
			if op.Kind != coalesce.OpDelete {
				continue
			}
			want := false
			if op.U != op.V {
				k := graph.Edge{U: op.U, V: op.V}.Key()
				if edges[k] {
					delete(edges, k)
					want = true
				}
			}
			if ep.res[i] != want {
				t.Fatalf("epoch %d op %d: delete {%d,%d} = %v, oracle says %v",
					ei, i, op.U, op.V, ep.res[i], want)
			}
		}
		// Phase 3: queries see the post-update snapshot.
		uf := unionfind.New(n)
		for k := range edges {
			e := graph.FromKey(k)
			uf.Union(e.U, e.V)
		}
		for i, op := range ep.ops {
			if op.Kind != coalesce.OpQuery {
				continue
			}
			if want := uf.Connected(op.U, op.V); ep.res[i] != want {
				t.Fatalf("epoch %d op %d: connected {%d,%d} = %v, oracle says %v",
					ei, i, op.U, op.V, ep.res[i], want)
			}
		}
	}

	// Quiesced structure agrees with the oracle's final state.
	if g.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, oracle has %d", g.NumEdges(), len(edges))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after quiesce: %v", err)
	}
	s := b.Stats()
	if s.Ops != int64(total) {
		t.Fatalf("Stats.Ops = %d, epochs carried %d", s.Ops, total)
	}
	if s.Epochs > 0 && s.AvgEpoch() <= 1 && total > 1000 {
		t.Logf("warning: coalescing ineffective, avg epoch %.1f", s.AvgEpoch())
	}
	t.Logf("epochs=%d ops=%d avg=%.1f max=%d final edges=%d",
		s.Epochs, s.Ops, s.AvgEpoch(), s.MaxEpoch, len(edges))
}

// TestBatcherFlushCommitsStagedOps verifies Flush releases an op parked
// behind an effectively infinite window.
func TestBatcherFlushCommitsStagedOps(t *testing.T) {
	g := New(4)
	b := NewBatcher(g, WithMaxBatch(1<<30), WithMaxDelay(time.Hour))
	defer b.Close()
	done := make(chan bool, 1)
	go func() { done <- b.Insert(0, 1) }()
	for i := 0; ; i++ {
		if b.bufPending() > 0 {
			break
		}
		if i > 10000 {
			t.Fatal("insert never staged")
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Flush()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Insert = false")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush did not release the staged insert")
	}
}

func (b *Batcher) bufPending() int64 { return b.buf.Pending() }
