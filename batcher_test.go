package conn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coalesce"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestBatcherSequentialSemantics(t *testing.T) {
	g := New(8)
	b := NewBatcher(g, WithMaxDelay(0))
	if !b.Insert(0, 1) {
		t.Fatal("Insert(0,1) = false on empty graph")
	}
	if b.Insert(1, 0) {
		t.Fatal("Insert(1,0) = true for a present edge")
	}
	if b.Insert(2, 2) {
		t.Fatal("Insert(2,2) = true for a self-loop")
	}
	if got := b.InsertEdges([]Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 2}}); got != 2 {
		t.Fatalf("InsertEdges = %d, want 2 (duplicate in batch)", got)
	}
	if !b.Connected(0, 3) || b.Connected(0, 4) {
		t.Fatal("Connected wrong")
	}
	ans := b.ConnectedBatch([]Edge{{U: 0, V: 2}, {U: 4, V: 5}})
	if !ans[0] || ans[1] {
		t.Fatalf("ConnectedBatch = %v", ans)
	}
	if !b.Delete(2, 1) {
		t.Fatal("Delete(2,1) = false for a present edge")
	}
	if b.Delete(1, 2) {
		t.Fatal("Delete(1,2) = true for an absent edge")
	}
	if got := b.DeleteEdges([]Edge{{U: 0, V: 1}, {U: 6, V: 7}}); got != 1 {
		t.Fatalf("DeleteEdges = %d, want 1", got)
	}
	b.Flush()
	b.Close()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after Close, want 1 ({2,3})", g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherEpochComposition pins the documented within-epoch order:
// inserts apply before deletes, and queries see the post-update state. Two
// goroutines land an insert and a delete of the same absent edge in one
// epoch (maxBatch 2, effectively infinite window): both must be credited
// and the edge must end absent.
func TestBatcherEpochComposition(t *testing.T) {
	g := New(4)
	b := NewBatcher(g, WithMaxBatch(2), WithMaxDelay(time.Hour))
	var insOK, delOK bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); insOK = b.Insert(0, 1) }()
	go func() { defer wg.Done(); delOK = b.Delete(0, 1) }()
	wg.Wait()
	b.Close()
	if !insOK || !delOK {
		t.Fatalf("insert=%v delete=%v, want both credited", insOK, delOK)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edge survived an insert+delete epoch: NumEdges = %d", g.NumEdges())
	}
}

func TestBatcherPanicsAfterClose(t *testing.T) {
	b := NewBatcher(New(4))
	b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert after Close did not panic")
		}
	}()
	b.Insert(0, 1)
}

func TestBatcherRejectsOutOfRange(t *testing.T) {
	b := NewBatcher(New(4))
	defer b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex did not panic")
		}
	}()
	b.Insert(0, 4)
}

// epochRecord is one committed epoch as observed by the test hook.
type epochRecord struct {
	ops []coalesce.Op
	res []bool
}

// TestBatcherConcurrentOracle is the workhorse race test: G goroutines
// issue mixed single-op and batch traffic through a Batcher, the test hook
// records every committed epoch, and afterwards the epoch stream is
// replayed against a sequential oracle — an edge-set map for update credit
// and a fresh union-find per epoch for connectivity — checking every
// result the callers saw. Run with -race.
func TestBatcherConcurrentOracle(t *testing.T) {
	const n = 192
	goroutines := 8
	perG := 2500
	if testing.Short() {
		perG = 400
	}

	g := New(n)
	b := NewBatcher(g, WithMaxBatch(256), WithMaxDelay(200*time.Microsecond))
	var epochs []epochRecord
	b.testHook = func(ops []coalesce.Op, res []bool) {
		r := epochRecord{
			ops: append([]coalesce.Op(nil), ops...),
			res: append([]bool(nil), res...),
		}
		epochs = append(epochs, r) // dispatcher goroutine only; no lock needed
	}

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			pair := func() (int32, int32) {
				return int32(rng.Intn(n)), int32(rng.Intn(n))
			}
			for i := 0; i < perG; i++ {
				u, v := pair()
				switch r := rng.Intn(100); {
				case r < 40:
					b.Insert(u, v)
				case r < 65:
					b.Delete(u, v)
				case r < 90:
					b.Connected(u, v)
				case r < 95:
					es := make([]Edge, 4)
					for j := range es {
						es[j].U, es[j].V = pair()
					}
					b.InsertEdges(es)
				default:
					es := make([]Edge, 4)
					for j := range es {
						es[j].U, es[j].V = pair()
					}
					b.DeleteEdges(es)
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close() // quiesce: epochs is safe to read from here on

	// Replay the epoch stream sequentially and re-derive every result.
	edges := map[uint64]bool{}
	total := 0
	for ei, ep := range epochs {
		total += len(ep.ops)
		// Phase 1: inserts, first staging of an absent edge gets credit.
		for i, op := range ep.ops {
			if op.Kind != coalesce.OpInsert {
				continue
			}
			want := false
			if op.U != op.V {
				k := graph.Edge{U: op.U, V: op.V}.Key()
				if !edges[k] {
					edges[k] = true
					want = true
				}
			}
			if ep.res[i] != want {
				t.Fatalf("epoch %d op %d: insert {%d,%d} = %v, oracle says %v",
					ei, i, op.U, op.V, ep.res[i], want)
			}
		}
		// Phase 2: deletes, against the post-insert edge set.
		for i, op := range ep.ops {
			if op.Kind != coalesce.OpDelete {
				continue
			}
			want := false
			if op.U != op.V {
				k := graph.Edge{U: op.U, V: op.V}.Key()
				if edges[k] {
					delete(edges, k)
					want = true
				}
			}
			if ep.res[i] != want {
				t.Fatalf("epoch %d op %d: delete {%d,%d} = %v, oracle says %v",
					ei, i, op.U, op.V, ep.res[i], want)
			}
		}
		// Phase 3: queries see the post-update snapshot.
		uf := unionfind.New(n)
		for k := range edges {
			e := graph.FromKey(k)
			uf.Union(e.U, e.V)
		}
		for i, op := range ep.ops {
			if op.Kind != coalesce.OpQuery {
				continue
			}
			if want := uf.Connected(op.U, op.V); ep.res[i] != want {
				t.Fatalf("epoch %d op %d: connected {%d,%d} = %v, oracle says %v",
					ei, i, op.U, op.V, ep.res[i], want)
			}
		}
	}

	// Quiesced structure agrees with the oracle's final state.
	if g.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, oracle has %d", g.NumEdges(), len(edges))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after quiesce: %v", err)
	}
	s := b.Stats()
	if s.Ops != int64(total) {
		t.Fatalf("Stats.Ops = %d, epochs carried %d", s.Ops, total)
	}
	if s.Epochs > 0 && s.AvgEpoch() <= 1 && total > 1000 {
		t.Logf("warning: coalescing ineffective, avg epoch %.1f", s.AvgEpoch())
	}
	t.Logf("epochs=%d ops=%d avg=%.1f max=%d final edges=%d",
		s.Epochs, s.Ops, s.AvgEpoch(), s.MaxEpoch, len(edges))
}

// TestBatcherFlushCommitsStagedOps verifies Flush releases an op parked
// behind an effectively infinite window.
func TestBatcherFlushCommitsStagedOps(t *testing.T) {
	g := New(4)
	b := NewBatcher(g, WithMaxBatch(1<<30), WithMaxDelay(time.Hour))
	defer b.Close()
	done := make(chan bool, 1)
	go func() { done <- b.Insert(0, 1) }()
	for i := 0; ; i++ {
		if b.bufPending() > 0 {
			break
		}
		if i > 10000 {
			t.Fatal("insert never staged")
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Flush()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Insert = false")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush did not release the staged insert")
	}
}

func (b *Batcher) bufPending() int64 { return b.e.Pending() }

// TestBatcherFlushCloseRace pins the repaired Flush/Close interaction: a
// Flush racing Close must be a graceful no-op, not a panic — Close's final
// sweep already commits everything that Flush could have flushed. Run with
// -race.
func TestBatcherFlushCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		g := New(64)
		b := NewBatcher(g, WithMaxDelay(time.Hour), WithMaxBatch(1<<30))
		var staged sync.WaitGroup
		for i := 0; i < 4; i++ {
			staged.Add(1)
			go func(i int) {
				staged.Done()
				// May observe the post-Close panic from Insert — that is
				// the documented contract; only Flush must stay graceful.
				defer func() { _ = recover() }()
				b.Insert(int32(i), int32(i+1))
			}(i)
		}
		staged.Wait()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			b.Flush() // must not panic, before, during or after Close
		}()
		go func() {
			defer wg.Done()
			b.Close()
		}()
		wg.Wait()
		b.Flush() // definitely after Close: still a no-op
	}
}

// TestBatcherFlushAfterCloseIsNoOp is the deterministic half of the race
// test above.
func TestBatcherFlushAfterCloseIsNoOp(t *testing.T) {
	b := NewBatcher(New(4))
	b.Close()
	b.Flush() // must not panic
}

func TestBatcherReadNowPanicsAfterClose(t *testing.T) {
	b := NewBatcher(New(4))
	b.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("ReadNow after Close did not panic")
		}
	}()
	b.ReadNow(0, 1)
}

// TestBatcherReadRecentSurvivesClose: the wait-free tier keeps serving the
// final snapshot after Close.
func TestBatcherReadRecentSurvivesClose(t *testing.T) {
	g := New(8)
	b := NewBatcher(g, WithMaxDelay(0))
	b.Insert(1, 2)
	b.Close()
	if !b.ReadRecent(1, 2) || b.ReadRecent(0, 1) {
		t.Fatal("ReadRecent wrong after Close")
	}
}

// TestReadTiersQuiescentAgree drives rounds of mixed updates, flushes, and
// then — with the pipeline drained and no writer in flight — checks all
// three read tiers against a union-find oracle on every sampled pair. After
// a Flush the tiers must coincide exactly: Connected by linearization,
// ReadNow because every epoch has committed, ReadRecent because the
// snapshot is published before the flush's epoch resolves.
func TestReadTiersQuiescentAgree(t *testing.T) {
	const n = 128
	g := New(n)
	b := NewBatcher(g, WithMaxBatch(64), WithMaxDelay(100*time.Microsecond))
	defer b.Close()
	rng := rand.New(rand.NewSource(7))
	edges := map[uint64]bool{}
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		// Submissions are sequential on purpose: the oracle's edge map must
		// stay exact; concurrency is exercised by the companion test below.
		for w := 0; w < 4; w++ {
			ops := make([]Edge, 8)
			ins := rng.Intn(2) == 0
			for i := range ops {
				ops[i] = Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
				k := graph.Edge{U: ops[i].U, V: ops[i].V}.Key()
				if ops[i].U != ops[i].V {
					edges[k] = ins
				}
			}
			if ins {
				b.InsertEdges(ops)
			} else {
				b.DeleteEdges(ops)
			}
		}
		b.Flush()

		uf := unionfind.New(n)
		for k, present := range edges {
			if present {
				e := graph.FromKey(k)
				uf.Union(e.U, e.V)
			}
		}
		for s := 0; s < 200; s++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			want := uf.Connected(u, v)
			if got := b.Connected(u, v); got != want {
				t.Fatalf("round %d: Connected(%d,%d) = %v, oracle %v", round, u, v, got, want)
			}
			if got := b.ReadNow(u, v); got != want {
				t.Fatalf("round %d: ReadNow(%d,%d) = %v, oracle %v", round, u, v, got, want)
			}
			if got := b.ReadRecent(u, v); got != want {
				t.Fatalf("round %d: ReadRecent(%d,%d) = %v, oracle %v", round, u, v, got, want)
			}
		}
		qs := make([]Edge, 32)
		for i := range qs {
			qs[i] = Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
		}
		now := b.ReadNowBatch(qs)
		recent := b.ReadRecentBatch(qs)
		lin := b.ConnectedBatch(qs)
		for i := range qs {
			want := uf.Connected(qs[i].U, qs[i].V)
			if now[i] != want || recent[i] != want || lin[i] != want {
				t.Fatalf("round %d: batch tiers disagree at %d: now=%v recent=%v lin=%v oracle=%v",
					round, i, now[i], recent[i], lin[i], want)
			}
		}
	}
}

// TestReadTiersConcurrentConsistency exercises all three tiers while
// writers are actively mutating — run with -race. The workload keeps
// connectivity monotone and class-stable so exact answers are checkable
// under full concurrency without stopping the world:
//
//   - the lower half of the vertices is pre-connected by a spanning path
//     (before any reader starts), so every tier must always answer true
//     for lower-half pairs;
//   - writers insert random edges only within the lower half, so the
//     isolated upper half stays isolated and every tier must always answer
//     false for distinct upper-half pairs.
//
// Staleness is checked too: the snapshot epoch observed by ReadRecent
// callers must be monotone per goroutine.
func TestReadTiersConcurrentConsistency(t *testing.T) {
	const n = 512
	const half = n / 2
	g := New(n)
	b := NewBatcher(g, WithMaxBatch(128), WithMaxDelay(100*time.Microsecond))

	base := make([]Edge, half-1)
	for i := range base {
		base[i] = Edge{U: int32(i), V: int32(i + 1)}
	}
	if got := b.InsertEdges(base); got != half-1 {
		t.Fatalf("base insert credited %d, want %d", got, half-1)
	}
	b.Flush()

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u, v := int32(rng.Intn(half)), int32(rng.Intn(half))
				if rng.Intn(3) == 0 {
					b.Insert(u, v)
				} else {
					b.InsertEdges([]Edge{{U: u, V: v}, {U: v, V: u}})
				}
			}
		}(w)
	}
	perReader := 4000
	if testing.Short() {
		perReader = 800
	}
	for r := 0; r < 6; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			var lastEpoch uint64
			for i := 0; i < perReader; i++ {
				lo1, lo2 := int32(rng.Intn(half)), int32(rng.Intn(half))
				hi1, hi2 := int32(half+rng.Intn(half)), int32(half+rng.Intn(half))
				var gotLo, gotHi bool
				switch i % 3 {
				case 0:
					gotLo, gotHi = b.Connected(lo1, lo2), b.Connected(hi1, hi2)
				case 1:
					gotLo, gotHi = b.ReadNow(lo1, lo2), b.ReadNow(hi1, hi2)
				default:
					ans := b.ReadRecentBatch([]Edge{{U: lo1, V: lo2}, {U: hi1, V: hi2}})
					gotLo, gotHi = ans[0], ans[1]
					if ep := b.RecentEpoch(); ep < lastEpoch {
						t.Errorf("reader %d: snapshot epoch went backwards %d -> %d", r, lastEpoch, ep)
						return
					} else {
						lastEpoch = ep
					}
				}
				if !gotLo {
					t.Errorf("reader %d op %d: lower-half pair (%d,%d) read disconnected", r, i, lo1, lo2)
					return
				}
				if gotHi && hi1 != hi2 {
					t.Errorf("reader %d op %d: isolated pair (%d,%d) read connected", r, i, hi1, hi2)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	b.Close()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	t.Logf("epochs=%d ops=%d avg=%.1f publishes=%d rebuilds=%d",
		s.Epochs, s.Ops, s.AvgEpoch(), s.SnapshotPublishes, s.SnapshotRebuilds)
}

// TestReadRecentReflectsFlushedEpoch pins the publish ordering: the
// snapshot is published before an epoch's futures resolve, so once any
// update call returns, ReadRecent reflects it.
func TestReadRecentReflectsFlushedEpoch(t *testing.T) {
	g := New(16)
	b := NewBatcher(g, WithMaxDelay(0))
	defer b.Close()
	for i := int32(0); i < 15; i++ {
		if b.Insert(i, i+1) { // blocks until the epoch committed
			if !b.ReadRecent(0, i+1) {
				t.Fatalf("ReadRecent(0,%d) stale after Insert returned", i+1)
			}
		}
	}
	b.Delete(7, 8)
	if b.ReadRecent(0, 15) {
		t.Fatal("ReadRecent did not observe the committed delete")
	}
	if !b.ReadRecent(0, 7) || !b.ReadRecent(8, 15) {
		t.Fatal("ReadRecent split sides wrong")
	}
}

// TestSnapshotSkipsNoChangeEpochs pins the publish pre-filter: epochs whose
// applied updates provably preserve the partition (intra-component inserts,
// non-tree deletes) must not advance the snapshot epoch, while genuine
// merges and splits must.
func TestSnapshotSkipsNoChangeEpochs(t *testing.T) {
	g := New(8)
	b := NewBatcher(g, WithMaxDelay(0))
	defer b.Close()

	b.Insert(0, 1)
	b.Insert(1, 2)
	ep := b.RecentEpoch()
	if ep == 0 {
		t.Fatal("merging inserts did not publish")
	}

	b.Insert(0, 2) // intra-component: closes a cycle, partition unchanged
	b.Flush()
	if got := b.RecentEpoch(); got != ep {
		t.Fatalf("intra-component insert advanced snapshot epoch %d -> %d", ep, got)
	}

	b.Delete(0, 2) // non-tree delete: partition unchanged
	b.Flush()
	if got := b.RecentEpoch(); got != ep {
		t.Fatalf("non-tree delete advanced snapshot epoch %d -> %d", ep, got)
	}

	b.Delete(0, 1) // tree delete with no replacement: splits {0} from {1,2}
	b.Flush()
	if got := b.RecentEpoch(); got <= ep {
		t.Fatalf("splitting delete did not publish (epoch still %d)", got)
	}
	if b.ReadRecent(0, 1) || !b.ReadRecent(1, 2) {
		t.Fatal("ReadRecent wrong after split")
	}
}

// TestBatcherSnapshotThresholdPaths drives the same workload through a
// snapshot that always rebuilds (threshold 1) and one that always repairs
// incrementally (huge threshold) and checks both end at the same labelling.
func TestBatcherSnapshotThresholdPaths(t *testing.T) {
	const n = 256
	finals := make([][]bool, 0, 2)
	for _, threshold := range []int{1, 1 << 30} {
		g := New(n)
		b := NewBatcher(g, WithMaxDelay(0), WithSnapshotThreshold(threshold))
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 400; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Intn(3) == 0 {
				b.Delete(u, v)
			} else {
				b.Insert(u, v)
			}
		}
		b.Flush()
		ans := make([]bool, 0, n)
		for u := int32(0); u < n; u++ {
			ans = append(ans, b.ReadRecent(0, u))
		}
		s := b.Stats()
		if threshold == 1 && s.SnapshotPublishes > 0 && s.SnapshotRebuilds == 0 {
			t.Error("threshold=1 never rebuilt")
		}
		if threshold == 1<<30 && s.SnapshotRebuilds != 0 {
			t.Errorf("huge threshold rebuilt %d times", s.SnapshotRebuilds)
		}
		b.Close()
		finals = append(finals, ans)
	}
	for i := range finals[0] {
		if finals[0][i] != finals[1][i] {
			t.Fatalf("threshold paths disagree at vertex %d", i)
		}
	}
}
