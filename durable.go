// Durable epochs: crash recovery for the Batcher's write pipeline.
//
// WithDurability(dir) (batcher.go) turns the group-commit dispatcher into a
// write-ahead logger: each mutating epoch is appended to dir/wal.log and
// fsynced before the epoch touches the Graph and before any caller's future
// resolves. Checkpoint snapshots the live edge set (spanning forest + non-
// tree edges) with a write-temp-then-rename protocol and truncates the log
// behind it. Restore, below, is the read side — a thin wrapper over
// internal/engine's Restore, which owns the checkpoint-load + WAL-replay
// protocol (the shard coordinator reuses it per shard).
//
// The recovery invariant, proven by TestDurableCrashRecovery: after a crash
// at ANY instant, Restore yields exactly the state of some prefix of the
// committed epoch sequence that includes every epoch whose caller was
// unblocked — acked ⇒ replayed. Epochs that were logged but not yet
// acknowledged may or may not survive (both outcomes are correct: the
// caller never saw a commit); torn partial records are detected by CRC and
// discarded.
//
//conn:durable-files
package conn

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// ErrNoDurableState is returned by Restore when the directory holds neither
// a checkpoint nor a write-ahead log. It aliases the engine-level sentinel
// so both layers' errors match with errors.Is.
var ErrNoDurableState = engine.ErrNoDurableState

// Restore rebuilds a Graph from a durability directory previously written
// by a Batcher with WithDurability(dir): it loads the newest checkpoint
// that validates (skipping damaged files), then replays the write-ahead
// log's tail — records with sequence numbers past the checkpoint — in
// commit order. A torn WAL tail from a crash mid-append is detected by CRC
// and ignored, exactly as the durability contract allows: the torn epoch
// never acknowledged.
//
// The returned Graph is ready for direct use, or to be wrapped in
// NewBatcher(g, WithDurability(dir)) to continue the same durable history.
// opts configure the rebuilt Graph (e.g. WithAlgorithm); the vertex count
// always comes from the durable state itself.
func Restore(dir string, opts ...Option) (*Graph, error) {
	o := options{alg: Interleaved}
	for _, f := range opts {
		f(&o)
	}
	c, err := engine.Restore(dir, func(n int) *core.Conn {
		return core.New(n, core.WithAlgorithm(o.alg))
	})
	if err != nil {
		if errors.Is(err, ErrNoDurableState) {
			return nil, err
		}
		return nil, fmt.Errorf("conn: Restore(%q): %w", dir, err)
	}
	return &Graph{c: c}, nil
}
