// Durable epochs: crash recovery for the Batcher's write pipeline.
//
// WithDurability(dir) (batcher.go) turns the group-commit dispatcher into a
// write-ahead logger: each mutating epoch is appended to dir/wal.log and
// fsynced before the epoch touches the Graph and before any caller's future
// resolves. Checkpoint snapshots the live edge set (spanning forest + non-
// tree edges) with a write-temp-then-rename protocol and truncates the log
// behind it. Restore, below, is the read side: newest valid checkpoint plus
// a replay of the WAL tail.
//
// The recovery invariant, proven by TestDurableCrashRecovery: after a crash
// at ANY instant, Restore yields exactly the state of some prefix of the
// committed epoch sequence that includes every epoch whose caller was
// unblocked — acked ⇒ replayed. Epochs that were logged but not yet
// acknowledged may or may not survive (both outcomes are correct: the
// caller never saw a commit); torn partial records are detected by CRC and
// discarded.
//
//conn:durable-files
package conn

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/wal"
)

// ErrNoDurableState is returned by Restore when the directory holds neither
// a checkpoint nor a write-ahead log.
var ErrNoDurableState = errors.New("conn: no durable state in directory")

// Restore rebuilds a Graph from a durability directory previously written
// by a Batcher with WithDurability(dir): it loads the newest checkpoint
// that validates (skipping damaged files), then replays the write-ahead
// log's tail — records with sequence numbers past the checkpoint — in
// commit order. A torn WAL tail from a crash mid-append is detected by CRC
// and ignored, exactly as the durability contract allows: the torn epoch
// never acknowledged.
//
// The returned Graph is ready for direct use, or to be wrapped in
// NewBatcher(g, WithDurability(dir)) to continue the same durable history.
// opts configure the rebuilt Graph (e.g. WithAlgorithm); the vertex count
// always comes from the durable state itself.
func Restore(dir string, opts ...Option) (*Graph, error) {
	fail := func(err error) (*Graph, error) {
		return nil, fmt.Errorf("conn: Restore(%q): %w", dir, err)
	}
	snap, haveSnap, err := checkpoint.Load(dir)
	if err != nil {
		return fail(err)
	}
	f, err := os.Open(filepath.Join(dir, walFileName))
	haveWAL := err == nil
	if haveWAL {
		// Read-only handle: a close failure cannot lose data, but the
		// drop is acknowledged rather than silent.
		defer func() { _ = f.Close() }()
		// A file shorter than the header (crash during initial creation)
		// can hold no record; treat it as absent rather than corrupt.
		if st, err := f.Stat(); err != nil {
			return fail(err)
		} else if st.Size() < wal.HeaderLen {
			haveWAL = false
		}
	} else if !os.IsNotExist(err) {
		return fail(err)
	}
	if !haveSnap && !haveWAL {
		return nil, fmt.Errorf("%w: %s", ErrNoDurableState, dir)
	}

	// Cross-check the WAL header against the checkpoint BEFORE building or
	// replaying anything: the universes must agree, and the log's
	// checkpoint floor must be covered by the snapshot we managed to load —
	// a floor above it means the records proving the gap were truncated
	// away after a checkpoint we can no longer read, i.e. data loss that
	// must surface as an error, not as a silently shrunken graph.
	n := snap.N
	if haveWAL {
		walN, baseSeq, err := wal.ReadHeader(f)
		if err != nil {
			return fail(err)
		}
		if haveSnap && walN != snap.N {
			return fail(fmt.Errorf("checkpoint has n=%d but WAL has n=%d", snap.N, walN))
		}
		if !haveSnap && baseSeq > 0 {
			return fail(fmt.Errorf("WAL was truncated at a checkpoint (seq %d) but no readable checkpoint remains", baseSeq))
		}
		if haveSnap && baseSeq > snap.Seq {
			return fail(fmt.Errorf("WAL floor is seq %d but the newest readable checkpoint is seq %d", baseSeq, snap.Seq))
		}
		n = walN
		if _, err := f.Seek(0, 0); err != nil {
			return fail(err)
		}
	}

	g := New(n, opts...)
	if haveSnap {
		g.InsertEdges(fromInternal(snap.Edges))
	}
	if haveWAL {
		replay := func(r wal.Record) error {
			if haveSnap && r.Seq <= snap.Seq {
				// Already captured by the checkpoint: the crash happened
				// after the snapshot was durable but before the log was
				// truncated.
				return nil
			}
			g.InsertEdges(fromInternal(r.Ins))
			g.DeleteEdges(fromInternal(r.Del))
			return nil
		}
		if _, err := wal.Scan(f, replay); err != nil {
			return fail(err)
		}
	}
	return g, nil
}

func fromInternal(es []graph.Edge) []Edge {
	out := make([]Edge, len(es))
	for i, e := range es {
		out[i] = Edge{U: e.U, V: e.V}
	}
	return out
}
