package conn

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGroupSyncAckImpliesFsynced is the group-commit ack contract: whenever
// a mutating call returns, the fsynced frontier already covers the epoch it
// committed in — grouping batches the fsync, never weakens it.
func TestGroupSyncAckImpliesFsynced(t *testing.T) {
	dir := t.TempDir()
	g := New(64)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir),
		WithGroupSync(8, time.Millisecond), WithWALCodec("v2"))
	defer b.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				u := int32((w*50 + i) % 63)
				_, seq, err := b.DoSeq([]Op{{Kind: OpInsert, U: u, V: u + 1}})
				if err != nil {
					t.Error(err)
					return
				}
				if synced := b.SyncedSeq(); synced < seq {
					t.Errorf("acked epoch %d but synced frontier is %d", seq, synced)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := b.Stats()
	if s.WALFsyncs >= s.WALRecords {
		t.Fatalf("group sync never grouped: %d fsyncs for %d records", s.WALFsyncs, s.WALRecords)
	}
	if s.WALFsyncsSaved != s.WALRecords-s.WALFsyncs {
		t.Fatalf("WALFsyncsSaved = %d, want records-fsyncs = %d", s.WALFsyncsSaved, s.WALRecords-s.WALFsyncs)
	}
	if s.WALRawBytes <= s.WALBytes {
		t.Fatalf("v2 codec did not compress: %d encoded vs %d raw", s.WALBytes, s.WALRawBytes)
	}
}

// TestGroupSyncMaxWaitBoundsLatency: a lone epoch that never fills the group
// must still be acknowledged within (roughly) the configured window.
func TestGroupSyncMaxWaitBoundsLatency(t *testing.T) {
	dir := t.TempDir()
	g := New(16)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir),
		WithGroupSync(64, 2*time.Millisecond))
	defer b.Close()

	t0 := time.Now()
	b.Insert(1, 2)
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("single insert under K=64 grouping took %v — maxWait timer never fired", d)
	}
	if b.SyncedSeq() != 1 {
		t.Fatalf("synced frontier = %d after ack, want 1", b.SyncedSeq())
	}
}

// TestCheckpointChainIncremental drives the full-every-M policy end to end:
// full, delta, delta, full again — and proves the fallback: corrupting a
// delta file costs nothing, because deltas never truncate the WAL.
func TestCheckpointChainIncremental(t *testing.T) {
	dir := t.TempDir()
	g := New(64)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir), WithCheckpointEvery(3))

	b.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	p1, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(p1, ".ckpt") {
		t.Fatalf("first checkpoint should be full, got %s", p1)
	}

	b.Insert(10, 11)
	b.Delete(2, 3)
	p2, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(p2, ".dckpt") {
		t.Fatalf("second checkpoint should be a delta, got %s", p2)
	}
	if floor := b.WALFloor(); floor != 1 {
		t.Fatalf("delta checkpoint moved the WAL floor to %d — deltas must not truncate", floor)
	}

	b.Insert(11, 12)
	p3, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(p3, ".dckpt") {
		t.Fatalf("third checkpoint should be a delta, got %s", p3)
	}
	b.Insert(12, 13)
	p4, err := b.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(p4, ".ckpt") {
		t.Fatalf("fourth checkpoint should roll over to full, got %s", p4)
	}
	s := b.Stats()
	if s.Checkpoints != 2 || s.CheckpointsDelta != 2 {
		t.Fatalf("checkpoint counters: full=%d delta=%d, want 2/2", s.Checkpoints, s.CheckpointsDelta)
	}
	// The full at p4 subsumed the deltas: they should be pruned.
	for _, p := range []string{p2, p3} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("delta %s survived the next full checkpoint", p)
		}
	}
	b.Insert(13, 14)
	b.Close()

	check := func(g2 *Graph, tag string) {
		t.Helper()
		if g2.NumEdges() != 6 || !g2.Connected(10, 14) || g2.Connected(2, 3) || !g2.Connected(0, 2) {
			t.Fatalf("%s: restored wrong state: edges=%d", tag, g2.NumEdges())
		}
	}
	g2, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(g2, "clean")
}

// TestCheckpointChainCorruptDeltaFallsBack: with a delta as the newest
// checkpoint, damaging it must degrade restore to the previous full snapshot
// plus WAL replay — same final state, nothing acked lost.
func TestCheckpointChainCorruptDeltaFallsBack(t *testing.T) {
	dir := t.TempDir()
	g := New(64)
	b := NewBatcher(g, WithMaxDelay(0), WithDurability(dir), WithCheckpointEvery(4))
	b.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if _, err := b.Checkpoint(); err != nil { // full
		t.Fatal(err)
	}
	b.Insert(5, 6)
	b.Delete(1, 2)
	dpath, err := b.Checkpoint() // delta
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(dpath, ".dckpt") {
		t.Fatalf("expected a delta checkpoint, got %s", dpath)
	}
	b.Insert(6, 7)
	b.Close()

	verify := func(tag string) {
		t.Helper()
		g2, err := Restore(dir)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if g2.NumEdges() != 3 || !g2.Connected(5, 7) || g2.Connected(1, 2) || !g2.Connected(0, 1) {
			t.Fatalf("%s: wrong state: edges=%d", tag, g2.NumEdges())
		}
	}
	verify("intact chain")

	// Flip a byte in the delta: the chain validation must reject it and the
	// fallback (full + complete WAL) must reproduce the identical state.
	data, err := os.ReadFile(dpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(dpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	verify("corrupt delta")

	// Even deleting it entirely changes nothing.
	if err := os.Remove(dpath); err != nil {
		t.Fatal(err)
	}
	verify("missing delta")
}
