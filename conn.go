// Package conn is a parallel batch-dynamic graph connectivity library — a Go
// implementation of "Parallel Batch-Dynamic Graph Connectivity" (Acar,
// Anderson, Blelloch, Dhulipala; SPAA 2019).
//
// A Graph over n vertices supports batches of edge insertions, edge
// deletions, and connectivity queries:
//
//	g := conn.New(1 << 20)
//	g.InsertEdges([]conn.Edge{{0, 1}, {1, 2}})
//	ok := g.Connected(0, 2)             // true
//	g.DeleteEdges([]conn.Edge{{1, 2}})
//	ans := g.ConnectedBatch([]conn.Edge{{0, 2}, {0, 1}}) // false, true
//
// Guarantees (Theorem 1 of the paper): across a workload whose deletion
// batches average Δ edges, updates cost O(lg n · lg(1+n/Δ)) expected
// amortized work per edge; a batch of k queries costs O(k lg(1+n/k))
// expected work and O(lg n) depth; deletion batches run in O(lg^3 n) depth.
// Internally the structure keeps ceil(lg n) nested spanning forests in
// batch-parallel Euler-tour trees; see internal/core for the algorithms and
// DESIGN.md for the system inventory.
//
// Graph is single-caller for updates: mutating methods must not be called
// concurrently with anything else. Query methods (Connected,
// ConnectedBatch, Components, ComponentSize, ComponentID,
// ComponentVertices, ComponentLabels, NumComponents, HasEdge, NumEdges) are
// read-only and may run concurrently with each other as long as no update
// is in flight — see the read-only query contract in internal/core. To
// serve operations from many goroutines, wrap the graph in a Batcher, which
// coalesces concurrent single operations into the large batches the cost
// bounds above reward and adds three query consistency tiers:
//
//	b := conn.NewBatcher(g)
//	b.Insert(0, 1)      // safe from any goroutine
//	b.Connected(0, 1)   // linearized: joins the epoch pipeline
//	b.ReadNow(0, 1)     // read-committed: walks the live structure
//	b.ReadRecent(0, 1)  // bounded-stale: two loads of the last snapshot
package conn

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Edge is an undirected edge between two vertex ids in [0, n). Orientation
// is irrelevant: {U, V} and {V, U} denote the same edge. It is an alias for
// the shared internal edge type, so public batches flow through the engine
// and shard layers without conversion.
type Edge = graph.Edge

// Algorithm selects the deletion search strategy.
type Algorithm = core.Algorithm

const (
	// Interleaved is Algorithm 5 of the paper (default): O(lg^3 n)-depth
	// deletions and the improved work bound.
	Interleaved = core.SearchInterleaved
	// Simple is Algorithm 4: the first, O(lg^4 n)-depth variant. Exposed
	// for benchmarking the paper's ablation.
	Simple = core.SearchSimple
)

// Graph is a dynamic undirected graph with batch-parallel connectivity.
// Methods must not be called concurrently with one another; each batch call
// is internally parallel. For concurrent callers, see Batcher.
type Graph struct {
	c *core.Conn
}

// Option configures a Graph.
type Option func(*options)

type options struct {
	alg Algorithm
}

// WithAlgorithm selects the deletion search algorithm (default Interleaved).
func WithAlgorithm(a Algorithm) Option {
	return func(o *options) { o.alg = a }
}

// New creates an empty graph on n vertices (ids 0..n-1). Panics if n <= 0.
func New(n int, opts ...Option) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("conn: New(%d): vertex count must be positive", n))
	}
	o := options{alg: Interleaved}
	for _, f := range opts {
		f(&o)
	}
	return &Graph{c: core.New(n, core.WithAlgorithm(o.alg))}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.c.N() }

// NumEdges returns the number of edges currently present.
func (g *Graph) NumEdges() int { return g.c.NumEdges() }

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int32) bool { return g.c.HasEdge(u, v) }

// EdgeInfo reports whether {u, v} is present and, if present, whether it is
// currently a spanning-forest (tree) edge, in one lookup; deleting a
// non-tree edge never changes connectivity.
func (g *Graph) EdgeInfo(u, v int32) (present, tree bool) { return g.c.EdgeInfo(u, v) }

// InsertEdges adds a batch of edges in parallel. Self-loops, duplicate
// batch entries and already-present edges are ignored. Returns the number
// of edges actually added.
func (g *Graph) InsertEdges(es []Edge) int {
	return g.c.BatchInsert(es)
}

// DeleteEdges removes a batch of edges in parallel; absent edges are
// ignored. Returns the number of edges actually removed.
func (g *Graph) DeleteEdges(es []Edge) int {
	return g.c.BatchDelete(es)
}

// Connected reports whether u and v are in the same connected component.
func (g *Graph) Connected(u, v int32) bool { return g.c.Connected(u, v) }

// ConnectedBatch answers k connectivity queries in parallel; result i
// corresponds to query pair i.
func (g *Graph) ConnectedBatch(qs []Edge) []bool {
	return g.c.BatchConnected(qs)
}

// Components returns a dense component labelling: lbl[u] == lbl[v] iff u and
// v are connected. O(n) plus a representative walk per vertex.
func (g *Graph) Components() []int32 { return g.c.Components() }

// NumComponents returns the number of connected components (isolated
// vertices count as components).
func (g *Graph) NumComponents() int { return g.c.NumComponents() }

// ComponentSize returns the number of vertices in u's connected component
// (at least 1). O(lg n) expected.
func (g *Graph) ComponentSize(u int32) int64 { return g.c.ComponentSize(u) }

// ComponentID returns a hashable component identifier: equal for two
// vertices iff they are connected, unique per component, invalidated by any
// update touching the component. O(lg n) expected.
func (g *Graph) ComponentID(u int32) uint64 { return g.c.ComponentID(u) }

// ComponentVertices returns the vertices of u's connected component
// (including u), in Euler-tour order. O(component size).
func (g *Graph) ComponentVertices(u int32) []int32 { return g.c.ComponentVertices(u) }

// ComponentLabels fills dst (length N) with the canonical min-vertex
// labelling: dst[u] is the smallest vertex id in u's component, so
// dst[u] == dst[v] iff connected. Unlike Components' dense numbering, a
// component keeps its label across updates that do not change its
// membership. Together with ComponentID, ComponentSize and
// ComponentVertices this makes Graph an internal/snapshot.Source — the feed
// for Batcher's wait-free ReadRecent tier.
func (g *Graph) ComponentLabels(dst []int32) { g.c.ComponentLabels(dst) }

// Neighbors appends to dst the vertices currently adjacent to u (tree and
// non-tree edges). Each live edge contributes exactly one entry, so the
// result is duplicate-free; order is unspecified. O(degree(u)). The query
// layer's k-hop traversal bottoms out here.
func (g *Graph) Neighbors(u int32, dst []int32) []int32 { return g.c.Neighbors(u, dst) }

// TreeNeighbors appends to dst the vertices adjacent to u through
// spanning-forest edges — u's neighborhood in the forest SpanningForest
// enumerates. Walking it from any vertex reaches exactly that vertex's
// component; the query layer's tree-path extraction BFSes over it.
func (g *Graph) TreeNeighbors(u int32, dst []int32) []int32 { return g.c.TreeNeighbors(u, dst) }

// SpanningForest returns the edges of a spanning forest of the current
// graph (the structure's top-level forest). Useful for exporting a
// connectivity certificate; order is unspecified.
func (g *Graph) SpanningForest() []Edge { return g.c.SpanningForest() }

// NonTreeEdges returns the edges not in the structure's spanning forest;
// SpanningForest and NonTreeEdges together enumerate the complete live edge
// set. Used by durable checkpoints; order is unspecified.
func (g *Graph) NonTreeEdges() []Edge { return g.c.NonTreeEdges() }

// Stats exposes internal work counters (level decreases, replacement edges,
// search rounds); useful for experiments and tuning.
type Stats = core.Stats

// Stats returns accumulated internal counters.
func (g *Graph) Stats() Stats { return g.c.Stats() }

// CheckInvariants validates the complete internal level structure (the two
// HDT invariants, forest nesting, counter/list agreement, and connectivity
// versus a union-find oracle). Intended for tests; O(n lg n + m).
func (g *Graph) CheckInvariants() error { return g.c.CheckInvariants() }
