// Replica example: WAL-shipping read replicas under real process kills.
//
// The parent re-executes itself as three child servers — one durable
// primary and two read-only replicas following it — then drives traffic
// through a routing client (client.WithReplicas) while a writer extends a
// path graph on the primary one acknowledged insert at a time. Mid-traffic
// it SIGKILLs one replica and shows reads failing over without a single
// user-visible error; restarts the replica and shows it catching up from
// the primary's checkpoint + WAL tail (the primary checkpointed meanwhile,
// so the dead replica's resume point is below the WAL floor — the snapshot
// path, not just a tail replay); and finally SIGKILLs the primary itself
// and shows the replicas still answering bounded-stale reads from their
// last applied state.
//
//	go run ./examples/replica
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"time"

	"repro/client"
	"repro/internal/server"
)

const (
	roleEnv    = "CONN_REPLICA_ROLE"
	addrEnv    = "CONN_REPLICA_ADDR"
	dataEnv    = "CONN_REPLICA_DATA"
	primaryEnv = "CONN_REPLICA_PRIMARY"

	universe = 1 << 13
	ns       = "social"
)

func main() {
	if role := os.Getenv(roleEnv); role != "" {
		child(role)
		return
	}
	parent()
}

// child runs one server process until killed.
func child(role string) {
	logger := log.New(os.Stderr, role+": ", 0)
	opts := server.Options{Logf: logger.Printf}
	switch role {
	case "primary":
		opts.DataDir = os.Getenv(dataEnv)
		opts.MaxDelay = 200 * time.Microsecond
	case "replica":
		opts.ReplicaOf = os.Getenv(primaryEnv)
	default:
		logger.Fatalf("unknown role %q", role)
	}
	srv, err := server.New(opts)
	if err != nil {
		logger.Fatal(err)
	}
	if err := srv.ListenAndServe(os.Getenv(addrEnv)); err != nil {
		logger.Fatal(err)
	}
}

// pickAddr reserves a loopback port by listening and immediately closing.
func pickAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, v...)
	os.Exit(1)
}

// spawn starts one child server process.
func spawn(role, addr, data, primary string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		roleEnv+"="+role, addrEnv+"="+addr, dataEnv+"="+data, primaryEnv+"="+primary)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	return cmd
}

// waitPing polls until a server answers on addr.
func waitPing(addr string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cl, err := client.Dial(addr, client.WithDialTimeout(time.Second))
		if err == nil {
			err = cl.Ping()
			cl.Close()
			if err == nil {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatal("server at " + addr + " never came up")
}

// appliedSeq reads a replica's applied seq for the namespace (0 on error).
func appliedSeq(addr string) uint64 {
	cl, err := client.Dial(addr, client.WithDialTimeout(time.Second))
	if err != nil {
		return 0
	}
	defer cl.Close()
	st, err := cl.Namespace(ns).Stats()
	if err != nil {
		return 0
	}
	return st.AppliedSeq
}

// waitApplied polls until the replica has applied at least seq.
func waitApplied(addr string, seq uint64) time.Duration {
	t0 := time.Now()
	deadline := t0.Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if appliedSeq(addr) >= seq {
			return time.Since(t0)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fatal("replica at " + addr + " never caught up")
	return 0
}

func parent() {
	dir, err := os.MkdirTemp("", "conn-replica-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	primaryAddr, r1Addr, r2Addr := pickAddr(), pickAddr(), pickAddr()
	primary := spawn("primary", primaryAddr, dir, "")
	defer func() { primary.Process.Kill(); primary.Wait() }()
	waitPing(primaryAddr)

	wcl, err := client.Dial(primaryAddr)
	if err != nil {
		fatal(err)
	}
	defer wcl.Close()
	if err := wcl.Create(ns, universe, true); err != nil {
		fatal(err)
	}
	wns := wcl.Namespace(ns)

	// Writer: extend a path graph one acknowledged insert at a time, so
	// "state at seq s" is trivially checkable (0 connects to the frontier).
	frontier := 0
	extend := func(k int) {
		for i := 0; i < k; i++ {
			if _, err := wns.Insert(int32(frontier), int32(frontier+1)); err != nil {
				fatal("writer:", err)
			}
			frontier++
		}
	}
	extend(500)

	r1 := spawn("replica", r1Addr, "", primaryAddr)
	defer func() {
		if r1 != nil && r1.Process != nil {
			r1.Process.Kill()
			r1.Wait()
		}
	}()
	r2 := spawn("replica", r2Addr, "", primaryAddr)
	defer func() { r2.Process.Kill(); r2.Wait() }()
	waitPing(r1Addr)
	waitPing(r2Addr)
	seq := wcl.ObservedSeq(ns)
	waitApplied(r1Addr, seq)
	waitApplied(r2Addr, seq)
	fmt.Printf("primary %s + replicas %s, %s — all caught up at seq %d (path frontier %d)\n",
		primaryAddr, r1Addr, r2Addr, seq, frontier)

	// Routing client: bounded-stale reads fan out over the replicas.
	rcl, err := client.Dial(primaryAddr, client.WithReplicas(r1Addr, r2Addr))
	if err != nil {
		fatal(err)
	}
	defer rcl.Close()
	rns := rcl.Namespace(ns)
	read := func(rounds int) (okCount, errCount int) {
		for i := 0; i < rounds; i++ {
			ok, err := rns.ReadRecent(0, int32(frontier))
			if err != nil {
				errCount++
			} else if ok {
				okCount++
			}
		}
		return
	}
	if ok, errs := read(200); errs > 0 || ok == 0 {
		fatal(fmt.Sprintf("baseline reads: %d ok, %d errors", ok, errs))
	}
	fmt.Println("routing client serving ReadRecent from the replica set ✓")

	// --- Kill one replica mid-traffic: routing must fail over.
	r1.Process.Kill()
	r1.Wait()
	extend(200)
	ok, errs := read(200)
	fmt.Printf("SIGKILL replica 1 mid-traffic: %d/%d reads served, %d errors (failover to replica 2 / primary) %s\n",
		ok, ok, errs, checkmark(errs == 0))
	if errs > 0 {
		fatal("reads failed after replica kill")
	}

	// --- Checkpoint so the dead replica's resume point falls below the WAL
	// floor, then restart it: catch-up must go through the snapshot path.
	if _, err := wns.Checkpoint(); err != nil {
		fatal(err)
	}
	extend(200)
	r1 = spawn("replica", r1Addr, "", primaryAddr)
	waitPing(r1Addr)
	d := waitApplied(r1Addr, wcl.ObservedSeq(ns))
	direct, err := client.Dial(r1Addr)
	if err != nil {
		fatal(err)
	}
	okFront, err1 := direct.Namespace(ns).ReadNow(0, int32(frontier))
	okPast, err2 := direct.Namespace(ns).ReadNow(0, int32(frontier+1))
	direct.Close()
	if err1 != nil || err2 != nil || !okFront || okPast {
		fatal("restarted replica state is wrong")
	}
	fmt.Printf("replica 1 restarted: checkpoint+tail catch-up in %v, state matches the primary ✓\n",
		d.Round(time.Millisecond))

	// --- Kill the primary: replicas keep serving bounded-stale reads.
	primaryFrontier := frontier
	primary.Process.Kill()
	primary.Wait()
	ok, errs = read(200)
	fmt.Printf("SIGKILL primary: %d reads still served from replicas, %d errors %s\n",
		ok, errs, checkmark(ok > 0 && errs == 0))
	if ok == 0 || errs > 0 {
		fatal("replicas stopped serving after primary death")
	}
	// Writes now fail with a transport error (the primary is simply gone);
	// against a live replica they fail with a typed redirect instead.
	if _, err := wns.Insert(int32(frontier), int32(frontier+1)); err == nil {
		fatal("write succeeded with no primary")
	}
	fmt.Printf("replicas answer exactly the last replicated state (path of %d edges), writes refused — bounded staleness, not silent divergence\n",
		primaryFrontier)
}

func checkmark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
