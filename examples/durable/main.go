// Durable example: kill the process mid-stream, resurrect it, lose nothing.
//
// The parent re-executes itself as a child worker three times. Each child
// restores the durability directory (empty on the first round), wraps the
// graph in a durable Batcher, and extends a path graph one acknowledged
// insert at a time, printing "ack u v" after each Insert returns. The
// parent reads a quota of acks and then SIGKILLs the child — no shutdown
// hook, no Close, the process just dies, possibly mid-fsync. It then
// Restores the directory and checks the durability contract: every insert
// that was acknowledged before the kill is present in the recovered graph.
//
// The last round also takes a checkpoint and shows the WAL shrinking: the
// snapshot now carries the history and a restart replays only the tail.
//
//	go run ./examples/durable
package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"time"

	conn "repro"
)

const (
	childEnv = "CONN_DURABLE_CHILD_DIR"
	universe = 1 << 14
)

func main() {
	if dir := os.Getenv(childEnv); dir != "" {
		child(dir)
		return
	}
	parent()
}

// child is the worker process: restore, then stream acknowledged inserts
// until killed. It never exits cleanly on its own.
func child(dir string) {
	g, err := conn.Restore(dir)
	if errors.Is(err, conn.ErrNoDurableState) {
		g = conn.New(universe) // first boot: nothing to recover
	} else if err != nil {
		// Any other failure means durable state exists but cannot be read;
		// starting empty would overwrite real history. Fail loudly.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := int32(g.NumEdges()) // path edges {i, i+1} were inserted in order
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	for i := start; i < universe-1; i++ {
		b.Insert(i, i+1) // returns only after the epoch is fsynced
		fmt.Printf("ack %d %d\n", i, i+1)
	}
}

// spawnAndKill runs one child round, reads quota acks, then SIGKILLs it.
// Returns the edges the child acknowledged.
func spawnAndKill(dir string, quota int) ([]conn.Edge, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var acked []conn.Edge
	sc := bufio.NewScanner(out)
	for len(acked) < quota && sc.Scan() {
		var u, v int32
		if _, err := fmt.Sscanf(sc.Text(), "ack %d %d", &u, &v); err == nil {
			acked = append(acked, conn.Edge{U: u, V: v})
		}
	}
	cmd.Process.Kill() // no shutdown handshake: simulate a crash
	cmd.Wait()
	return acked, nil
}

func parent() {
	dir, err := os.MkdirTemp("", "conn-durable-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("durability dir: %s (universe n=%d, path workload)\n\n", dir, universe)

	totalAcked := 0
	for round := 1; round <= 3; round++ {
		t0 := time.Now()
		acked, err := spawnAndKill(dir, 150)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		totalAcked += len(acked)

		g, err := conn.Restore(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restore after kill: %v\n", err)
			os.Exit(1)
		}
		lost := 0
		for _, e := range acked {
			if !g.HasEdge(e.U, e.V) {
				lost++
			}
		}
		fmt.Printf("round %d: child acked %d inserts, then SIGKILL (%v)\n",
			round, len(acked), time.Since(t0).Round(time.Millisecond))
		fmt.Printf("         restore: %d edges recovered, %d acked writes lost",
			g.NumEdges(), lost)
		if lost == 0 {
			fmt.Printf(" — acked ⇒ durable ✓")
		}
		fmt.Println()
		// The child runs ahead of the parent's pipe reads, so inserts beyond
		// the quota may also have become durable before the kill landed —
		// allowed (they were just never observed). What must hold: nothing
		// acked is missing, and the recovered edges form a contiguous path
		// prefix — exactly the state of some epoch boundary.
		m := g.NumEdges()
		if m < totalAcked {
			fmt.Println("         BUG: recovered fewer inserts than were acknowledged")
			os.Exit(1)
		}
		if !g.Connected(0, int32(m)) || g.HasEdge(int32(m), int32(m+1)) {
			fmt.Println("         BUG: recovered state is not an epoch-boundary prefix")
			os.Exit(1)
		}
		totalAcked = m // the child resumes from the recovered frontier
	}

	// Checkpoint: fold the WAL into a snapshot and show the log shrinking.
	walSize := func() int64 {
		st, err := os.Stat(dir + "/wal.log")
		if err != nil {
			return 0
		}
		return st.Size()
	}
	before := walSize()
	g, _ := conn.Restore(dir)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	path, err := b.Checkpoint()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b.Close()
	fmt.Printf("\ncheckpoint → %s\n", path)
	fmt.Printf("WAL: %d bytes of replay before, %d after (snapshot carries the history)\n",
		before, walSize())
	g2, err := conn.Restore(dir)
	if err != nil || g2.NumEdges() != g.NumEdges() {
		fmt.Fprintf(os.Stderr, "post-checkpoint restore mismatch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("restore from checkpoint alone: %d edges, path still connected: %v\n",
		g2.NumEdges(), g2.Connected(0, int32(totalAcked)))
}
