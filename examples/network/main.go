// Network: the full client/server stack on a loopback socket. An in-process
// connserver hosts two namespaces — a memory-only scratch graph and a
// durable one — while pooled client connections drive pipelined, batched
// traffic at it. The run then checkpoints, drains the server the way
// SIGTERM would, restarts it from the data directory, and shows every
// acknowledged write still answering over the wire.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/server"
)

const (
	nVerts  = 1 << 14
	workers = 8
	rounds  = 64
	batch   = 64
)

func main() {
	data, err := os.MkdirTemp("", "connserver-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(data)

	addr, srv := serve(data)
	fmt.Printf("server on %s, durable namespaces under %s\n", addr, data)

	cl, err := client.Dial(addr, client.WithConns(4))
	if err != nil {
		log.Fatal(err)
	}
	must(cl.Create("scratch", nVerts, false))
	must(cl.Create("social", nVerts, true))

	// Pipelined batched traffic: each worker sends whole frames of mixed
	// operations; frames in flight across 4 connections coalesce into large
	// epochs server-side.
	var ops, yes atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			social := cl.Namespace("social")
			scratch := cl.Namespace("scratch")
			for r := 0; r < rounds; r++ {
				group := make([]conn.Op, batch)
				for i := range group {
					kind := conn.OpInsert
					switch x := rng.Intn(10); {
					case x < 2:
						kind = conn.OpDelete
					case x < 4:
						kind = conn.OpQuery
					}
					group[i] = conn.Op{Kind: kind,
						U: int32(rng.Intn(nVerts)), V: int32(rng.Intn(nVerts))}
				}
				ns := social
				if r%4 == 3 {
					ns = scratch
				}
				bits, err := ns.Do(group)
				if err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
				ops.Add(int64(len(bits)))
				for _, b := range bits {
					if b {
						yes.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(t0)

	st, err := cl.Namespace("social").Stats()
	must(err)
	fmt.Printf("%d wire ops in %v (%.0f ops/s); social: %d epochs, avg Δ=%.0f, %d WAL records\n",
		ops.Load(), el.Round(time.Millisecond), float64(ops.Load())/el.Seconds(),
		st.Epochs, float64(st.Ops)/float64(st.Epochs), st.WALRecords)

	// A reference pair we expect to survive the restart.
	must3(cl.Namespace("social").Insert(1, 2))
	must3(cl.Namespace("social").Insert(2, 3))
	path, err := cl.Namespace("social").Checkpoint()
	must(err)
	fmt.Printf("checkpointed: %s\n", path)
	must3(cl.Namespace("social").Insert(3, 4)) // WAL tail past the checkpoint

	// Graceful drain — exactly what SIGTERM triggers in cmd/connserver.
	srv.Shutdown()
	cl.Close()
	fmt.Println("server drained (flush + checkpoint of every durable namespace)")

	// Restart from the same directory: the durable namespace comes back,
	// the memory-only one is gone.
	addr2, srv2 := serve(data)
	defer srv2.Shutdown()
	cl2, err := client.Dial(addr2)
	must(err)
	defer cl2.Close()
	infos, err := cl2.List()
	must(err)
	for _, info := range infos {
		fmt.Printf("restored namespace %q (n=%d, durable=%v)\n", info.Name, info.N, info.Durable)
	}
	for _, q := range [][2]int32{{1, 3}, {1, 4}} {
		ok, err := cl2.Namespace("social").Connected(q[0], q[1])
		must(err)
		fmt.Printf("after restart: connected(%d,%d) = %v\n", q[0], q[1], ok)
	}
}

func serve(data string) (string, *server.Server) {
	srv, err := server.New(server.Options{DataDir: data, MaxDelay: time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must3(_ bool, err error) { must(err) }
