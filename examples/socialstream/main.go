// Socialstream simulates the workload from the paper's introduction: a large
// social network whose friendship graph changes in bursts — thousands of
// users connect or disconnect "at the same time" — while an analytics layer
// continuously asks whether pairs of users belong to the same community
// (connected component).
//
// The stream is processed in batches: each tick applies one batch of edge
// insertions (new friendships), one batch of deletions (unfriend/deactivate
// events), and a batch of connectivity probes. Batch-dynamic processing
// turns each tick into three parallel bulk operations instead of thousands
// of serialized pointer updates.
//
//	go run ./examples/socialstream [-n 100000] [-ticks 20]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	conn "repro"
	"repro/internal/graphgen"
)

func main() {
	n := flag.Int("n", 100_000, "number of users")
	ticks := flag.Int("ticks", 20, "stream ticks to simulate")
	batch := flag.Int("batch", 4096, "friendship events per tick")
	probes := flag.Int("probes", 8192, "connectivity probes per tick")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("building base social graph: %d users, power-law degree…\n", *n)
	base := graphgen.PowerLaw(*n, 4, *seed)
	g := conn.New(*n)
	start := time.Now()
	baseEdges := make([]conn.Edge, len(base))
	for i, e := range base {
		baseEdges[i] = conn.Edge{U: e.U, V: e.V}
	}
	g.InsertEdges(baseEdges)
	fmt.Printf("base graph: %d friendships in %v, %d communities\n",
		g.NumEdges(), time.Since(start).Round(time.Millisecond), g.NumComponents())

	rng := rand.New(rand.NewSource(*seed + 1))
	var totalOps, totalProbes int
	tickStart := time.Now()
	for tick := 0; tick < *ticks; tick++ {
		// New friendships: bursty random attachments.
		var ins []conn.Edge
		for len(ins) < *batch {
			u := int32(rng.Intn(*n))
			v := int32(rng.Intn(*n))
			if u != v {
				ins = append(ins, conn.Edge{U: u, V: v})
			}
		}
		// Unfriend events: sample from the base edge set.
		var del []conn.Edge
		for len(del) < *batch/2 {
			e := base[rng.Intn(len(base))]
			del = append(del, conn.Edge{U: e.U, V: e.V})
		}
		gained := g.InsertEdges(ins)
		lost := g.DeleteEdges(del)
		// Community probes.
		var qs []conn.Edge
		for len(qs) < *probes {
			qs = append(qs, conn.Edge{U: int32(rng.Intn(*n)), V: int32(rng.Intn(*n))})
		}
		ans := g.ConnectedBatch(qs)
		same := 0
		for _, a := range ans {
			if a {
				same++
			}
		}
		totalOps += gained + lost
		totalProbes += len(qs)
		if tick%5 == 0 || tick == *ticks-1 {
			fmt.Printf("tick %2d: +%4d / -%4d edges, %5.1f%% probe pairs in same community, %d communities\n",
				tick, gained, lost, 100*float64(same)/float64(len(qs)), g.NumComponents())
		}
	}
	elapsed := time.Since(tickStart)
	fmt.Printf("\nprocessed %d updates and %d probes in %v (%.0f ops/ms)\n",
		totalOps, totalProbes, elapsed.Round(time.Millisecond),
		float64(totalOps+totalProbes)/float64(elapsed.Milliseconds()+1))
	s := g.Stats()
	fmt.Printf("internals: %d replacements, %d non-tree pushdowns, %d tree pushdowns, %d search rounds\n",
		s.Replaced, s.Pushdowns, s.TreePushes, s.Rounds)
}
