// Concurrent: many goroutines share one graph through conn.Batcher, the
// group-commit front-end. Each worker plays a "user" of a social service:
// it befriends random pairs, severs some, and asks reachability questions.
// The Batcher coalesces this trickle of per-user operations into the large
// batches the paper's cost bounds reward, so nobody takes a lock on the
// whole graph and nobody pays single-edge update prices.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
)

func main() {
	const (
		n       = 1 << 15
		workers = 32
		opsPer  = 4096
	)
	g := conn.New(n)
	b := conn.NewBatcher(g,
		conn.WithMaxBatch(4096),
		conn.WithMaxDelay(time.Millisecond),
	)

	var inserted, deleted, connectedYes atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var friends []conn.Edge // edges this worker inserted
			for i := 0; i < opsPer; i++ {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				switch r := rng.Intn(10); {
				case r < 5: // befriend
					if b.Insert(u, v) {
						inserted.Add(1)
						friends = append(friends, conn.Edge{U: u, V: v})
					}
				case r < 7 && len(friends) > 0: // sever an old friendship
					j := rng.Intn(len(friends))
					e := friends[j]
					friends[j] = friends[len(friends)-1]
					friends = friends[:len(friends)-1]
					if b.Delete(e.U, e.V) {
						deleted.Add(1)
					}
				default: // can u reach v?
					if b.Connected(u, v) {
						connectedYes.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	elapsed := time.Since(t0)

	s := b.Stats()
	total := s.Ops
	fmt.Printf("%d workers × %d ops in %v (%.0f ops/sec)\n",
		workers, opsPer, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("coalesced into %d epochs: avg batch %.1f ops, largest %d\n",
		s.Epochs, s.AvgEpoch(), s.MaxEpoch)
	fmt.Printf("inserted %d, deleted %d, %d queries answered yes\n",
		inserted.Load(), deleted.Load(), connectedYes.Load())

	// After Close the graph is quiesced: use it directly.
	fmt.Printf("final graph: %d edges, %d components\n",
		g.NumEdges(), g.NumComponents())
	if err := g.CheckInvariants(); err != nil {
		fmt.Printf("INVARIANT VIOLATION: %v\n", err)
		return
	}
	fmt.Println("invariants hold after quiesce")
}
