// Netmon simulates a datacenter-style network monitor: a grid backbone with
// redundant shortcut links, hit by correlated link-failure storms (a whole
// batch of links drops at once — a switch dies, a cable bundle is cut).
//
// Unlike a poll-loop monitor that re-asks "are these pairs still connected?"
// after every change, this monitor never polls: it opens one live event
// subscription against a connserver and lets the server push connectivity
// transitions at it. Pair alerts ("u,v disconnected") and component
// merge/split events arrive in commit order on a single stream; the monitor
// reacts to an alert by running one diagnostic query (how big is the island
// the endpoint is stranded on?) — queries triggered by events, never by a
// timer.
//
// Event ordering does the synchronization too. After each storm the
// simulator toggles a beacon edge between two sentinel switches the monitor
// also watches: because a subscriber sees events in the order the epoch
// pipeline committed them, the beacon's transition arriving means every
// alert from the storm has already been delivered.
//
//	go run ./examples/netmon [-rows 32 -cols 32] [-storms 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"

	conn "repro"
	"repro/client"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/server"
)

func main() {
	rows := flag.Int("rows", 32, "grid rows")
	cols := flag.Int("cols", 32, "grid columns")
	storms := flag.Int("storms", 6, "failure storms to simulate")
	stormSize := flag.Int("storm-size", 120, "links failing per storm")
	shortcuts := flag.Int("shortcuts", 500, "random redundant links")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	// The fabric occupies vertices [0, n); two sentinel switches above it
	// carry the beacon edge that marks end-of-storm on the event stream.
	// Sentinels never touch the fabric, so every component event with a
	// label >= n is the beacon's own and is excluded from fabric accounting.
	n := *rows * *cols
	s0, s1 := int32(n), int32(n+1)

	srv, err := server.New(server.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("fabric", n+2, false); err != nil {
		log.Fatal(err)
	}
	ns := cl.Namespace("fabric")

	backbone := graphgen.Grid(*rows, *cols)
	extra := graphgen.RandomGraph(n, *shortcuts, *seed)
	topology := append(toConn(backbone), toConn(extra)...)
	if _, err := ns.InsertEdges(topology); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d switches, %d backbone links, %d shortcuts\n",
		n, len(backbone), len(extra))

	// Monitor pairs: far corners plus random probes, and the beacon pair.
	rng := rand.New(rand.NewSource(*seed + 1))
	monitors := []conn.Edge{
		{U: 0, V: int32(n - 1)},
		{U: int32(*cols - 1), V: int32(n - *cols)},
	}
	for len(monitors) < 16 {
		monitors = append(monitors, conn.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	watch := append(append([]conn.Edge{}, monitors...), conn.Edge{U: s0, V: s1})

	// One subscription carries everything: pair transitions for the watched
	// pairs and merge/split events for partition accounting. Opened after
	// the topology is loaded, so the stream starts quiet.
	sub, err := ns.SubscribeEvents(true, watch)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	// Partition accounting starts from one aggregate query; every later
	// update comes from pushed merge/split events. The sentinels are their
	// own singleton components and are excluded from the fabric count.
	total, _, err := ns.ComponentAggregate()
	if err != nil {
		log.Fatal(err)
	}
	m := &monitor{sub: sub, ns: ns, fence: s0, partitions: int(total) - 2}

	alive := topology
	beacon := []conn.Edge{{U: s0, V: s1}}
	for storm := 0; storm < *storms; storm++ {
		lo := rng.Intn(max(1, len(alive)-*stormSize))
		dead := alive[lo : lo+*stormSize]
		if _, err := ns.DeleteEdges(dead); err != nil {
			log.Fatal(err)
		}
		if _, err := ns.InsertEdges(beacon); err != nil { // beacon on
			log.Fatal(err)
		}
		lost := m.drain(true)
		fmt.Printf("storm %2d: %4d links down, %2d/%d monitor pairs unreachable, %d partitions\n",
			storm, len(dead), lost, len(monitors), m.partitions)

		// Repair crews restore the links; the stream reports the healing.
		if _, err := ns.InsertEdges(dead); err != nil {
			log.Fatal(err)
		}
		if _, err := ns.DeleteEdges(beacon); err != nil { // beacon off
			log.Fatal(err)
		}
		m.drain(false)
		if m.partitions != 1 {
			log.Fatalf("storm %d: fabric did not heal: %d partitions", storm, m.partitions)
		}
	}

	st, err := ns.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevent stream: %d events pushed, %d dropped, %d subscriber(s)\n",
		st.EventsDelivered, st.EventsDropped, st.EventSubscribers)
}

// monitor consumes the pushed event stream. partitions is the fabric's
// component count, seeded by one startup query and maintained purely from
// merge/split events after that.
type monitor struct {
	sub        *client.EventSub
	ns         *client.Namespace
	fence      int32 // labels >= fence belong to the sentinels
	partitions int
}

// drain consumes pushed events until the beacon pair reaches the wanted
// state (connected after a storm, disconnected after repair) and returns
// how many watched pairs changed state along the way. On each storm alert
// it asks the server how big the stranded island is — the only queries the
// monitor runs are the ones an event triggered.
func (m *monitor) drain(beaconUp bool) (pairs int) {
	for ev := range m.sub.C() {
		switch ev.Kind {
		case client.EventSplit:
			// Others lists every fragment (the survivor included), so one
			// component became len(Others) of them.
			if ev.Label < m.fence {
				m.partitions += len(ev.Others) - 1
			}
		case client.EventMerge:
			// Others lists the absorbed components, survivor excluded.
			if ev.Label < m.fence {
				m.partitions -= len(ev.Others)
			}
		case client.EventPairDisconnected:
			if ev.U >= m.fence {
				if !beaconUp {
					return pairs
				}
				continue
			}
			pairs++
			su, err := m.ns.ComponentSize(ev.U)
			if err != nil {
				log.Fatal(err)
			}
			sv, err := m.ns.ComponentSize(ev.V)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  alert: pair {%d,%d} unreachable — islands of %d and %d switches\n",
				ev.U, ev.V, su, sv)
		case client.EventPairConnected:
			if ev.U >= m.fence {
				if beaconUp {
					return pairs
				}
				continue
			}
			pairs++
		case client.EventGap:
			log.Fatal("event stream overflowed; monitor fell too far behind")
		}
	}
	log.Fatalf("event stream closed: %v", m.sub.Err())
	return pairs
}

func toConn(es []graph.Edge) []conn.Edge {
	out := make([]conn.Edge, len(es))
	for i, e := range es {
		out[i] = conn.Edge{U: e.U, V: e.V}
	}
	return out
}
