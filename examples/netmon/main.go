// Netmon simulates a datacenter-style network monitor: a grid backbone with
// redundant shortcut links, hit by correlated link-failure storms (a whole
// batch of links drops at once — a switch dies, a cable bundle is cut). The
// monitor must answer, immediately after each storm, which monitor pairs
// lost reachability and how many partitions the network split into.
//
// Because failures arrive in batches, the batch-dynamic structure repairs
// its spanning forests once per storm instead of once per link, and finds
// replacement paths (the redundant shortcuts) automatically. The same
// queries are answered by a recompute-from-scratch baseline for
// cross-checking and cost comparison.
//
//	go run ./examples/netmon [-rows 128 -cols 128] [-storms 12]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	conn "repro"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/static"
)

func main() {
	rows := flag.Int("rows", 128, "grid rows")
	cols := flag.Int("cols", 128, "grid columns")
	storms := flag.Int("storms", 12, "failure storms to simulate")
	stormSize := flag.Int("storm-size", 800, "links failing per storm")
	shortcuts := flag.Int("shortcuts", 4000, "random redundant links")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	n := *rows * *cols
	backbone := graphgen.Grid(*rows, *cols)
	extra := graphgen.RandomGraph(n, *shortcuts, *seed)
	fmt.Printf("topology: %d switches, %d backbone links, %d shortcuts\n",
		n, len(backbone), len(extra))

	g := conn.New(n)
	baseline := static.New(n)
	insert := func(es []graph.Edge) {
		batch := make([]conn.Edge, len(es))
		for i, e := range es {
			batch[i] = conn.Edge{U: e.U, V: e.V}
		}
		g.InsertEdges(batch)
		baseline.BatchInsert(es)
	}
	insert(backbone)
	insert(extra)

	// Monitor pairs: corners and random pairs.
	rng := rand.New(rand.NewSource(*seed + 1))
	monitors := []conn.Edge{
		{U: 0, V: int32(n - 1)},
		{U: int32(*cols - 1), V: int32(n - *cols)},
	}
	for len(monitors) < 64 {
		monitors = append(monitors, conn.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}

	alive := append(append([]graph.Edge{}, backbone...), extra...)
	var dynTime, statTime time.Duration
	for storm := 0; storm < *storms; storm++ {
		// A storm kills a contiguous run of links (correlated failure).
		lo := rng.Intn(max(1, len(alive)-*stormSize))
		dead := alive[lo : lo+*stormSize]
		batch := make([]conn.Edge, len(dead))
		for i, e := range dead {
			batch[i] = conn.Edge{U: e.U, V: e.V}
		}

		t0 := time.Now()
		g.DeleteEdges(batch)
		dynAns := g.ConnectedBatch(monitors)
		dynTime += time.Since(t0)

		t0 = time.Now()
		baseline.BatchDelete(dead)
		statAns := baseline.BatchConnected(dead[:0])
		_ = statAns
		statAns = baseline.BatchConnected(toGraph(monitors))
		statTime += time.Since(t0)

		lostPairs := 0
		for i := range monitors {
			if dynAns[i] != statAns[i] {
				panic(fmt.Sprintf("storm %d: dynamic and static disagree on pair %d", storm, i))
			}
			if !dynAns[i] {
				lostPairs++
			}
		}
		fmt.Printf("storm %2d: %4d links down, %2d/%d monitor pairs unreachable, %d partitions\n",
			storm, len(dead), lostPairs, len(monitors), g.NumComponents())

		// Repair crews restore the links before the next storm.
		t0 = time.Now()
		g.InsertEdges(batch)
		dynTime += time.Since(t0)
		t0 = time.Now()
		baseline.BatchInsert(dead)
		baseline.BatchConnected(toGraph(monitors[:1])) // force recompute
		statTime += time.Since(t0)
	}
	fmt.Printf("\nper-storm handling (delete + queries + repair):\n")
	fmt.Printf("  batch-dynamic:     %v total\n", dynTime.Round(time.Millisecond))
	fmt.Printf("  static recompute:  %v total\n", statTime.Round(time.Millisecond))
	s := g.Stats()
	fmt.Printf("dynamic internals: %d replacements found across %d search rounds\n",
		s.Replaced, s.Rounds)
}

func toGraph(es []conn.Edge) []graph.Edge {
	out := make([]graph.Edge, len(es))
	for i, e := range es {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out
}
