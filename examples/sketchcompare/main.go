// Sketchcompare contrasts the paper's deterministic-amortized approach with
// the Monte-Carlo direction its discussion (§6) points at: linear graph
// sketches in the style of Kapron–King–Mountjoy. Both structures process
// the same dynamic edge stream; the exact batch-dynamic structure answers
// every query deterministically, while the sketch structure recomputes
// components from O(polylog) bits per vertex — and the demo cross-checks
// the sketch answers against the exact ones.
//
// The interesting contrast is the cost profile: sketch updates are O(reps)
// XORs regardless of graph structure (worst-case, not amortized), but
// extracting connectivity costs a Borůvka pass; the exact structure pays
// more per update and answers queries instantly.
//
//	go run ./examples/sketchcompare [-n 2000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	conn "repro"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/sketch"
)

func main() {
	n := flag.Int("n", 2000, "vertices")
	rounds := flag.Int("rounds", 6, "update/query rounds")
	seed := flag.Int64("seed", 11, "random seed")
	flag.Parse()

	exact := conn.New(*n)
	sk := sketch.NewGraph(*n, 12)
	es := graphgen.RandomGraph(*n, 3**n, *seed)
	rng := rand.New(rand.NewSource(*seed))

	// Load the base graph into both structures.
	var batch []conn.Edge
	for _, e := range es {
		batch = append(batch, conn.Edge{U: e.U, V: e.V})
		sk.Insert(e.U, e.V)
	}
	t0 := time.Now()
	exact.InsertEdges(batch)
	fmt.Printf("base graph: %d edges; exact load %v\n", exact.NumEdges(), time.Since(t0).Round(time.Millisecond))

	var exactUpd, sketchUpd, sketchQuery time.Duration
	for r := 0; r < *rounds; r++ {
		// Random deletions and insertions.
		lo := rng.Intn(len(es) - 500)
		dead := es[lo : lo+500]
		delBatch := make([]conn.Edge, len(dead))
		for i, e := range dead {
			delBatch[i] = conn.Edge{U: e.U, V: e.V}
		}
		t := time.Now()
		exact.DeleteEdges(delBatch)
		exactUpd += time.Since(t)
		t = time.Now()
		for _, e := range dead {
			sk.Delete(e.U, e.V)
		}
		sketchUpd += time.Since(t)

		// Components from sketches, cross-checked against exact labels.
		t = time.Now()
		lbl, spanning := sk.Components()
		sketchQuery += time.Since(t)
		exactLbl := exact.Components()
		mismatch := 0
		for q := 0; q < 20000; q++ {
			a := graph.Vertex(rng.Intn(*n))
			b := graph.Vertex(rng.Intn(*n))
			if (lbl[a] == lbl[b]) != (exactLbl[a] == exactLbl[b]) {
				mismatch++
			}
		}
		fmt.Printf("round %d: sketch recovered %4d spanning edges, %d/20000 query mismatches\n",
			r, len(spanning), mismatch)
		if mismatch > 0 {
			fmt.Println("  (Monte-Carlo miss: a cut went unrecovered this round)")
		}

		// Restore for the next round.
		t = time.Now()
		exact.InsertEdges(delBatch)
		exactUpd += time.Since(t)
		t = time.Now()
		for _, e := range dead {
			sk.Insert(e.U, e.V)
		}
		sketchUpd += time.Since(t)
	}
	fmt.Printf("\nupdates:  exact %v   sketch %v (worst-case XORs, no search)\n",
		exactUpd.Round(time.Millisecond), sketchUpd.Round(time.Millisecond))
	fmt.Printf("queries:  exact O(lg n) each   sketch %v per full component extraction\n",
		(sketchQuery / time.Duration(*rounds)).Round(time.Millisecond))
}
