// Quickstart: the smallest end-to-end tour of the conn API — batch inserts,
// batch connectivity queries, batch deletes, and component counting.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	conn "repro"
)

func main() {
	// A graph over 10 vertices (ids 0..9).
	g := conn.New(10)

	// Insert a batch of edges: two triangles plus a bridge.
	//   0-1-2-0        5-6-7-5
	//        \___ 4 ___/
	added := g.InsertEdges([]conn.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 5},
		{U: 2, V: 4}, {U: 4, V: 5},
	})
	fmt.Printf("inserted %d edges, %d components\n", added, g.NumComponents())

	// Batch connectivity queries run in parallel.
	answers := g.ConnectedBatch([]conn.Edge{
		{U: 0, V: 7}, // connected through the bridge
		{U: 0, V: 9}, // 9 is isolated
	})
	fmt.Printf("0~7: %v   0~9: %v\n", answers[0], answers[1])

	// Delete the bridge: the triangles separate.
	g.DeleteEdges([]conn.Edge{{U: 2, V: 4}})
	fmt.Printf("after cutting 2-4: 0~7: %v, components: %d\n",
		g.Connected(0, 7), g.NumComponents())

	// Deleting a triangle edge does NOT disconnect: the structure finds a
	// replacement path automatically.
	g.DeleteEdges([]conn.Edge{{U: 0, V: 1}})
	fmt.Printf("after cutting 0-1: 0~1: %v (replacement via 2)\n", g.Connected(0, 1))

	// Internal counters show the replacement machinery at work.
	s := g.Stats()
	fmt.Printf("stats: %d inserted, %d deleted, %d replacements found\n",
		s.Inserts, s.Deletes, s.Replaced)
}
