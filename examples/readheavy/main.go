// Readheavy: the serving pattern the read tiers exist for — a social graph
// where a handful of writers mutate friendships while a crowd of readers
// asks "are we connected?" far more often than anyone writes.
//
// Run with: go run ./examples/readheavy
//
// Every reader picks the consistency it needs:
//
//   - Connected: linearized against all updates — joins the write
//     pipeline's epochs and pays the coalescing window. Right for reads
//     that gate a write ("merge these accounts only if still separate").
//   - ReadNow: read-committed — walks the live structure under a read
//     lock, no window. Right for fresh-but-unordered checks.
//   - ReadRecent: bounded staleness — two array loads against the labelling
//     published at the last connectivity-changing epoch. Right for the
//     overwhelming bulk of display traffic ("show the connected badge").
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
)

func main() {
	const (
		n       = 1 << 14
		writers = 2
		readers = 4
		runFor  = 500 * time.Millisecond
	)
	g := conn.New(n)
	// Seed a base social graph.
	rng := rand.New(rand.NewSource(1))
	base := make([]conn.Edge, n/2)
	for i := range base {
		base[i] = conn.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	g.InsertEdges(base)

	b := conn.NewBatcher(g, conn.WithMaxDelay(500*time.Microsecond))

	var wrote atomic.Int64
	var read [3]atomic.Int64 // per-tier query counts
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if rng.Intn(3) == 0 {
					b.Delete(u, v)
				} else {
					b.Insert(u, v)
				}
				wrote.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			tier := r % 3 // reader 0 linearized, 1 read-committed, 2+ wait-free
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				switch tier {
				case 0:
					b.Connected(u, v)
				case 1:
					b.ReadNow(u, v)
				default:
					b.ReadRecent(u, v)
				}
				read[tier].Add(1)
				if i&1023 == 0 {
					runtime.Gosched() // be fair to the dispatcher on small boxes
				}
			}
		}(r)
	}

	time.Sleep(runFor)
	close(stop)
	wg.Wait()

	secs := runFor.Seconds()
	fmt.Printf("%d writers, %d readers over %v on n=%d:\n", writers, readers, runFor, n)
	fmt.Printf("  writes                 %10.0f ops/sec\n", float64(wrote.Load())/secs)
	fmt.Printf("  Connected  (linearized)%10.0f reads/sec\n", float64(read[0].Load())/secs)
	fmt.Printf("  ReadNow    (committed) %10.0f reads/sec\n", float64(read[1].Load())/secs)
	fmt.Printf("  ReadRecent (recent)    %10.0f reads/sec\n", float64(read[2].Load())/secs)
	s := b.Stats()
	fmt.Printf("epochs %d (avg Δ %.1f); snapshot publishes %d, full rebuilds %d\n",
		s.Epochs, s.AvgEpoch(), s.SnapshotPublishes, s.SnapshotRebuilds)

	// Quiesce the pipeline: with nothing in flight the three tiers agree.
	b.Flush()
	u, v := int32(1), int32(2)
	lin, now, recent := b.Connected(u, v), b.ReadNow(u, v), b.ReadRecent(u, v)
	fmt.Printf("after Flush, tiers agree on {%d,%d}: %v/%v/%v\n", u, v, lin, now, recent)
	if lin != now || now != recent {
		panic("tiers disagree on a quiescent structure")
	}
	b.Close()
	if err := g.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("invariants hold after quiesce")
}
