// Batcher: the concurrent front-end over Graph. A Graph's methods must not
// be called concurrently, and the paper's cost bounds reward large batches —
// Theorem 1 charges O(lg n · lg(1+n/Δ)) amortized work per deleted edge for
// deletion batches averaging Δ, so many small operations are strictly more
// expensive than one large batch. Batcher resolves the tension with group
// commit: any number of goroutines submit single operations (or small
// batches), a staging buffer coalesces them, and a dispatcher executes one
// InsertEdges / DeleteEdges / ConnectedBatch per drained epoch against the
// single-writer Graph, fanning results back to the blocked callers.

package conn

import (
	"fmt"
	"time"

	"repro/internal/coalesce"
	"repro/internal/graph"
)

// Default coalescing parameters: commit an epoch once 8192 operations have
// accumulated, or 500µs after work first arrives, whichever is first.
const (
	DefaultMaxBatch = 8192
	DefaultMaxDelay = 500 * time.Microsecond
)

// Batcher is a goroutine-safe connectivity front-end over a Graph. All
// methods may be called from any number of goroutines; each call blocks
// until the epoch containing the operation has committed, so a caller's own
// operations are always applied in its program order.
//
// Epoch semantics: within one epoch, insertions are applied first, then
// deletions, then queries — queries observe the epoch's post-update state.
// Operations from different goroutines that land in the same epoch were
// concurrent, and the epoch order is the order they linearize in.
//
// The coalescing window trades latency for throughput: a longer window
// (WithMaxDelay) grows the average batch size Δ, and per-operation cost
// shrinks as O(lg(1+n/Δ)) amortized. See cmd/benchconn experiment e12.
//
// While a Batcher is open, its underlying Graph must not be used directly;
// after Close the Graph is quiesced and may be used again.
type Batcher struct {
	g   *Graph
	buf *coalesce.Buffer

	// testHook, when set before any operation is submitted, observes each
	// committed epoch (concatenated ops and their results) from the
	// dispatcher goroutine. Tests use it to replay epochs against an oracle.
	testHook func(ops []coalesce.Op, res []bool)
}

// BatcherOption configures a Batcher.
type BatcherOption func(*batcherOptions)

type batcherOptions struct {
	maxBatch int
	maxDelay time.Duration
	shards   int
}

// WithMaxBatch sets the epoch size target: the dispatcher commits as soon
// as k operations are staged. k <= 0 selects DefaultMaxBatch.
func WithMaxBatch(k int) BatcherOption {
	return func(o *batcherOptions) { o.maxBatch = k }
}

// WithMaxDelay bounds how long an operation may wait for its epoch: the
// dispatcher commits at most d after it first notices pending work, even if
// the batch target has not been reached. d == 0 disables the window and
// commits eagerly (lowest latency, smallest batches).
func WithMaxDelay(d time.Duration) BatcherOption {
	return func(o *batcherOptions) { o.maxDelay = d }
}

// WithShards sets the number of staging-buffer stripes (contention control;
// default GOMAXPROCS).
func WithShards(s int) BatcherOption {
	return func(o *batcherOptions) { o.shards = s }
}

// NewBatcher wraps g in a group-commit front-end and starts its dispatcher.
// Callers own g's lifecycle; the Batcher only requires that nothing else
// touches g until Close returns.
func NewBatcher(g *Graph, opts ...BatcherOption) *Batcher {
	o := batcherOptions{maxBatch: DefaultMaxBatch, maxDelay: DefaultMaxDelay}
	for _, f := range opts {
		f(&o)
	}
	if o.maxBatch <= 0 {
		o.maxBatch = DefaultMaxBatch
	}
	b := &Batcher{g: g}
	b.buf = coalesce.NewBuffer(o.shards, o.maxBatch, o.maxDelay, b.execEpoch)
	return b
}

// execEpoch applies one drained epoch to the underlying graph. It runs on
// the dispatcher goroutine only, so the single-writer contract of Graph
// holds. Insert and delete credit goes to the first staging of each edge in
// epoch order; queries run against the post-update state.
func (b *Batcher) execEpoch(ops []coalesce.Op) []bool {
	res := make([]bool, len(ops))
	var insIdx, delIdx, qIdx []int
	for i, op := range ops {
		switch op.Kind {
		case coalesce.OpInsert:
			insIdx = append(insIdx, i)
		case coalesce.OpDelete:
			delIdx = append(delIdx, i)
		default:
			qIdx = append(qIdx, i)
		}
	}

	if len(insIdx) > 0 {
		seen := make(map[uint64]struct{}, len(insIdx))
		batch := make([]Edge, 0, len(insIdx))
		for _, i := range insIdx {
			u, v := ops[i].U, ops[i].V
			if u == v {
				continue
			}
			k := graph.Edge{U: u, V: v}.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if !b.g.HasEdge(u, v) {
				res[i] = true
				batch = append(batch, Edge{U: u, V: v})
			}
		}
		b.g.InsertEdges(batch)
	}

	if len(delIdx) > 0 {
		seen := make(map[uint64]struct{}, len(delIdx))
		batch := make([]Edge, 0, len(delIdx))
		for _, i := range delIdx {
			u, v := ops[i].U, ops[i].V
			if u == v {
				continue
			}
			k := graph.Edge{U: u, V: v}.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			// Presence is checked after this epoch's inserts landed, so
			// an insert and delete of the same edge in one epoch compose.
			if b.g.HasEdge(u, v) {
				res[i] = true
				batch = append(batch, Edge{U: u, V: v})
			}
		}
		b.g.DeleteEdges(batch)
	}

	if len(qIdx) > 0 {
		qs := make([]Edge, len(qIdx))
		for j, i := range qIdx {
			qs[j] = Edge{U: ops[i].U, V: ops[i].V}
		}
		for j, ok := range b.g.ConnectedBatch(qs) {
			res[qIdx[j]] = ok
		}
	}

	if b.testHook != nil {
		b.testHook(ops, res)
	}
	return res
}

func (b *Batcher) check(u, v int32) {
	if n := int32(b.g.N()); u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("conn: Batcher: vertex pair {%d, %d} out of range [0, %d)", u, v, n))
	}
}

func (b *Batcher) one(k coalesce.Kind, u, v int32) bool {
	b.check(u, v)
	f, err := b.buf.Submit([]coalesce.Op{{Kind: k, U: u, V: v}})
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return f.Wait()[0]
}

func (b *Batcher) many(k coalesce.Kind, es []Edge) []bool {
	if len(es) == 0 {
		return nil
	}
	ops := make([]coalesce.Op, len(es))
	for i, e := range es {
		b.check(e.U, e.V)
		ops[i] = coalesce.Op{Kind: k, U: e.U, V: e.V}
	}
	f, err := b.buf.Submit(ops)
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return f.Wait()
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Insert adds the edge {u, v}, blocking until its epoch commits. Reports
// whether the edge was newly added (false if already present, a self-loop,
// or another operation in the same epoch added it first).
func (b *Batcher) Insert(u, v int32) bool { return b.one(coalesce.OpInsert, u, v) }

// Delete removes the edge {u, v}, blocking until its epoch commits. Reports
// whether the edge was removed (false if absent or another operation in the
// same epoch removed it first).
func (b *Batcher) Delete(u, v int32) bool { return b.one(coalesce.OpDelete, u, v) }

// Connected reports whether u and v are in the same component as of the end
// of the operation's epoch.
func (b *Batcher) Connected(u, v int32) bool { return b.one(coalesce.OpQuery, u, v) }

// InsertEdges stages a batch of insertions as one atomic group — all land
// in the same epoch — and returns the number credited to this call.
func (b *Batcher) InsertEdges(es []Edge) int {
	return countTrue(b.many(coalesce.OpInsert, es))
}

// DeleteEdges stages a batch of deletions as one atomic group and returns
// the number credited to this call.
func (b *Batcher) DeleteEdges(es []Edge) int {
	return countTrue(b.many(coalesce.OpDelete, es))
}

// ConnectedBatch answers k connectivity queries, all against the same
// post-epoch snapshot; result i corresponds to query pair i.
func (b *Batcher) ConnectedBatch(qs []Edge) []bool {
	return b.many(coalesce.OpQuery, qs)
}

// Flush forces an immediate epoch and blocks until every operation staged
// before the call has committed.
func (b *Batcher) Flush() {
	if err := b.buf.Flush(); err != nil {
		panic("conn: Batcher used after Close")
	}
}

// Close commits everything still staged and stops the dispatcher. After
// Close returns the underlying Graph is quiesced and may be used directly.
// Close is idempotent; other methods panic once Close has begun.
func (b *Batcher) Close() { b.buf.Close() }

// BatcherStats are dispatcher counters: how much traffic was coalesced and
// how large the epochs got. AvgEpoch is the realized average batch size —
// the Δ of Theorem 1 under the observed traffic.
type BatcherStats struct {
	Epochs   int64
	Ops      int64
	MaxEpoch int64
}

// AvgEpoch returns the mean operations per committed epoch.
func (s BatcherStats) AvgEpoch() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Epochs)
}

// Stats returns coalescing counters accumulated since NewBatcher.
func (b *Batcher) Stats() BatcherStats {
	s := b.buf.Stats()
	return BatcherStats{Epochs: s.Epochs, Ops: s.Ops, MaxEpoch: s.MaxEpoch}
}
