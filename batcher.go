// Batcher: the concurrent front-end over Graph. A Graph must have a single
// writer, and the paper's cost bounds reward large batches — Theorem 1
// charges O(lg n · lg(1+n/Δ)) amortized work per deleted edge for deletion
// batches averaging Δ, so many small operations are strictly more expensive
// than one large batch. Batcher resolves the tension with group commit: any
// number of goroutines submit single operations (or small batches), a
// staging buffer coalesces them, and a dispatcher executes one InsertEdges /
// DeleteEdges / ConnectedBatch per drained epoch against the single-writer
// Graph, fanning results back to the blocked callers.
//
// The pipeline itself — coalesce drain → WAL append+fsync → epoch execution
// → snapshot publish → subscriber tee → checkpoint service — lives in
// internal/engine; a Batcher is a thin facade over exactly one Engine.
// (internal/shard hosts several engines behind the same operation surface
// for partitioned writes; the network server exposes both.)
//
// Queries need not pay the write pipeline. Connectivity queries are pure
// root walks (see the read-only query contracts in internal/treap,
// internal/ett, internal/core), so Batcher serves them at three consistency
// tiers:
//
//   - Connected / ConnectedBatch — linearized. The query joins the epoch
//     pipeline and observes its epoch's post-update state, totally ordered
//     with all updates. Pays the coalescing window.
//   - ReadNow / ReadNowBatch — read-committed. Takes a read lock that
//     excludes only the mutating phase of epoch execution and walks the
//     live structure. No staging, no futures, no window; sees every
//     committed epoch and never a partial one, but is not ordered against
//     in-flight submissions.
//   - ReadRecent / ReadRecentBatch — bounded staleness, wait-free. Two
//     array loads against an immutable component labelling republished
//     after every epoch that changes connectivity (internal/snapshot);
//     answers are exact as of the last committed epoch.
//
// cmd/benchconn experiment e13 measures the three tiers' read throughput
// under writer load.

package conn

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/coalesce"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Default coalescing parameters: commit an epoch once 8192 operations have
// accumulated, or 500µs after work first arrives, whichever is first.
const (
	DefaultMaxBatch = engine.DefaultMaxBatch
	DefaultMaxDelay = engine.DefaultMaxDelay
)

// ErrClosed is returned by the Batcher's error-returning methods (Do,
// Checkpoint) once Close has begun.
var ErrClosed = errors.New("conn: Batcher is closed")

// walFileName is the WAL's file name inside a durability directory (owned
// by internal/engine; mirrored here for the crash-recovery tests).
const walFileName = engine.WALFileName

// OpKind labels one operation of a mixed batch passed to Batcher.Do.
type OpKind uint8

const (
	// OpInsert stages an edge insertion; its result reports whether the
	// edge was newly added.
	OpInsert OpKind = iota
	// OpDelete stages an edge deletion; its result reports whether the
	// edge was removed.
	OpDelete
	// OpQuery stages a connectivity query against the epoch's post-update
	// state.
	OpQuery
)

// Op is one operation of a mixed batch passed to Batcher.Do.
type Op struct {
	Kind OpKind
	U, V int32
}

// Batcher is a goroutine-safe connectivity front-end over a Graph. All
// methods may be called from any number of goroutines; each call blocks
// until the epoch containing the operation has committed, so a caller's own
// operations are always applied in its program order.
//
// Epoch semantics: within one epoch, insertions are applied first, then
// deletions, then queries — queries observe the epoch's post-update state.
// Operations from different goroutines that land in the same epoch were
// concurrent, and the epoch order is the order they linearize in.
//
// The coalescing window trades latency for throughput: a longer window
// (WithMaxDelay) grows the average batch size Δ, and per-operation cost
// shrinks as O(lg(1+n/Δ)) amortized. See cmd/benchconn experiment e12.
//
// While a Batcher is open, its underlying Graph must not be used directly;
// after Close the Graph is quiesced and may be used again.
type Batcher struct {
	g *Graph
	e *engine.Engine

	// testHook, when set before any operation is submitted, observes each
	// committed epoch (concatenated ops and their results) from the
	// dispatcher goroutine. Tests use it to replay epochs against an oracle.
	testHook func(ops []coalesce.Op, res []bool)
}

// EpochRecord is one durable mutating epoch as observed by an epoch
// subscriber: the WAL sequence number and the raw coalesced insert and
// delete batches, in application order. Replaying Ins then Del through the
// batch operations reproduces the epoch exactly (duplicates, present
// inserts and absent deletes are ignored at every layer). The slices are
// shared across subscribers and must not be mutated.
type EpochRecord = engine.EpochRecord

// BatcherOption configures a Batcher.
type BatcherOption func(*batcherOptions)

type batcherOptions struct {
	maxBatch      int
	maxDelay      time.Duration
	shards        int
	snapThreshold int
	durDir        string
	walCodec      wal.Codec
	groupSyncK    int
	groupSyncWait time.Duration
	groupSyncAuto bool
	ckptEvery     int
}

// WithMaxBatch sets the epoch size target: the dispatcher commits as soon
// as k operations are staged. k <= 0 selects DefaultMaxBatch.
func WithMaxBatch(k int) BatcherOption {
	return func(o *batcherOptions) { o.maxBatch = k }
}

// WithMaxDelay bounds how long an operation may wait for its epoch: the
// dispatcher commits at most d after it first notices pending work, even if
// the batch target has not been reached. d == 0 disables the window and
// commits eagerly (lowest latency, smallest batches).
func WithMaxDelay(d time.Duration) BatcherOption {
	return func(o *batcherOptions) { o.maxDelay = d }
}

// WithShards sets the number of staging-buffer stripes (contention control;
// default GOMAXPROCS).
func WithShards(s int) BatcherOption {
	return func(o *batcherOptions) { o.shards = s }
}

// WithDurability makes every acknowledged write durable: the dispatcher
// appends each epoch's coalesced update batch to a write-ahead log in dir
// and fsyncs it *before* the epoch mutates the Graph and before any caller
// unblocks — one fsync amortized over the whole epoch (group commit). Use
// Restore(dir) to recover the graph after a crash, then wrap it in a new
// durable Batcher on the same directory; the log continues where it left
// off. Checkpoint bounds the log's replay length.
//
// The wrapped Graph must reflect the durable state already in dir — either
// dir is fresh/empty, or the graph came from Restore(dir). NewBatcher
// panics if the directory cannot be initialized (unwritable, or holding a
// log for a different vertex universe), and the Batcher panics if a WAL
// append fails mid-flight: a durability guarantee that can no longer be
// honored is fail-stop, never silently degraded.
func WithDurability(dir string) BatcherOption {
	return func(o *batcherOptions) { o.durDir = dir }
}

// WithWALCodec selects the write-ahead log's record encoding by codec name
// ("v1" fixed-width, "v2" delta+varint — several times smaller on sorted or
// clustered edge batches). The codec takes effect when the log file is
// created or next reset by a checkpoint; an existing file keeps its header's
// codec until then, so old logs stay readable and replicas keep receiving
// whatever encoding the log actually holds. Unknown names panic (a
// configuration error, caught at construction). No-op without
// WithDurability.
func WithWALCodec(name string) BatcherOption {
	c, ok := wal.CodecByName(name)
	if !ok {
		panic(fmt.Sprintf("conn: WithWALCodec(%q): unknown codec", name))
	}
	return func(o *batcherOptions) { o.walCodec = c }
}

// WithGroupSync enables group-commit fsync scheduling on a durable Batcher:
// up to k mutating epochs share one fsync, and their callers stay blocked
// until the shared sync point — acknowledged still means fsynced, the
// scheduler only batches the barrier. maxWait bounds the added
// acknowledgement latency: the sync fires at most that long after the first
// unsynced epoch even if the group never fills (<= 0 selects the engine
// default).
//
// k == 0 selects the adaptive width: instead of a static knob, the
// scheduler tracks an EWMA of observed fsync latency and picks k so that
// one fsync amortized over the group costs each epoch at most maxWait/8 —
// a fast volume converges to per-epoch fsyncs, a slow one widens the group,
// and nothing needs tuning per deployment (benchconn e18 records the
// curve). k < 0 or k == 1 keeps the classic fsync-per-epoch pipeline.
// No-op without WithDurability.
func WithGroupSync(k int, maxWait time.Duration) BatcherOption {
	return func(o *batcherOptions) {
		o.groupSyncK = k
		o.groupSyncWait = maxWait
		o.groupSyncAuto = k == 0
	}
}

// WithCheckpointEvery makes every m-th Checkpoint call write a full snapshot
// and the m-1 between write incremental deltas against the last full — a
// checkpoint chain. Deltas cost O(changes) instead of O(graph) and never
// truncate the WAL, so a damaged delta degrades restore to the full
// snapshot plus a longer replay, never to data loss. m <= 1 keeps every
// checkpoint full. No-op without WithDurability.
func WithCheckpointEvery(m int) BatcherOption {
	return func(o *batcherOptions) { o.ckptEvery = m }
}

// WithSnapshotThreshold tunes the ReadRecent labelling's incremental-repair
// budget: an epoch whose dirty components hold more than k vertices in
// total triggers one full relabelling instead of per-component walks.
// k <= 0 selects max(1024, n/4).
func WithSnapshotThreshold(k int) BatcherOption {
	return func(o *batcherOptions) { o.snapThreshold = k }
}

// NewBatcher wraps g in a group-commit front-end and starts its dispatcher.
// Callers own g's lifecycle; the Batcher only requires that nothing else
// touches g until Close returns.
func NewBatcher(g *Graph, opts ...BatcherOption) *Batcher {
	o := batcherOptions{maxBatch: DefaultMaxBatch, maxDelay: DefaultMaxDelay}
	for _, f := range opts {
		f(&o)
	}
	b := &Batcher{g: g}
	e, err := engine.New(g.c, engine.Options{
		MaxBatch:          o.maxBatch,
		MaxDelay:          o.maxDelay,
		Shards:            o.shards,
		SnapshotThreshold: o.snapThreshold,
		DurDir:            o.durDir,
		WALCodec:          o.walCodec,
		GroupSyncK:        o.groupSyncK,
		GroupSyncMaxWait:  o.groupSyncWait,
		GroupSyncAdaptive: o.groupSyncAuto,
		CheckpointEvery:   o.ckptEvery,
		// The hook indirects through the Batcher field so tests can install
		// it after construction (but before the first submission), exactly
		// as they always have.
		Hook: func(ops []coalesce.Op, res []bool) {
			if b.testHook != nil {
				b.testHook(ops, res)
			}
		},
	})
	if err != nil {
		panic(fmt.Sprintf("conn: WithDurability(%q): %v", o.durDir, err))
	}
	b.e = e
	return b
}

// SubscribeEpochs registers fn as an epoch subscriber: the dispatcher calls
// it for every mutating epoch, on the dispatcher goroutine, after the
// epoch's WAL record is fsynced and before the epoch is applied or any
// caller's future resolves. fn must not block — a slow consumer must buffer
// or drop on its own side of the hand-off, never stall the write pipeline.
// Only durable Batchers (WithDurability) emit epochs; on a memory-only
// Batcher the subscription is registered but never fires. The returned
// cancel function removes the subscription and is idempotent.
func (b *Batcher) SubscribeEpochs(fn func(EpochRecord)) (cancel func()) {
	return b.e.SubscribeEpochs(fn)
}

// SnapshotDiff is one published labelling transition as observed by a diff
// subscriber: the labelling before, the one published in its place, and
// the vertices whose label changed — exactly the partition-changing epochs.
// internal/pubsub's Hub.Feed is the intended consumer.
type SnapshotDiff = snapshot.Diff

// SubscribeDiffs registers fn as a snapshot-diff subscriber: the dispatcher
// calls it for every epoch that changed the connectivity partition, on the
// dispatcher goroutine, after the new labelling is published and before the
// epoch's callers unblock. seq is the epoch's durable WAL position (zero
// without WithDurability). fn must not block; it fires on memory-only
// Batchers too. The returned cancel removes the subscription and is
// idempotent.
func (b *Batcher) SubscribeDiffs(fn func(seq uint64, d *SnapshotDiff)) (cancel func()) {
	return b.e.SubscribeDiffs(fn)
}

// QueryRequest selects a structural query (k-hop neighborhood, component
// members/size, spanning-forest path, or component aggregates) and its
// consistency tier; QueryResult is the uniform answer. See internal/query
// for the kind-by-kind contract.
type (
	QueryRequest = query.Request
	QueryResult  = query.Result
)

// QueryKind selects the structural query inside a QueryRequest.
type QueryKind = query.Kind

const (
	// QueryKHop enumerates every vertex within K edges of U.
	QueryKHop = query.KindKHop
	// QueryMembers enumerates U's connected component.
	QueryMembers = query.KindMembers
	// QuerySize counts U's connected component.
	QuerySize = query.KindSize
	// QueryPath extracts the spanning-forest path from U to V.
	QueryPath = query.KindPath
	// QueryAggregate counts components and buckets their sizes.
	QueryAggregate = query.KindAggregate
)

// Query executes one structural query. Recent mode (the default) answers
// label-shaped queries wait-free from the published snapshot and runs
// traversals read-committed; Linearized mode rides the dispatcher first
// (a full epoch barrier), ordering the answer after all previously
// acknowledged writes. Returns ErrClosed once Close has begun.
func (b *Batcher) Query(req QueryRequest) (QueryResult, error) {
	if b.e.Closed() {
		return QueryResult{}, ErrClosed
	}
	res, err := query.Run(b.e, req)
	if err != nil && b.e.Closed() {
		return QueryResult{}, ErrClosed
	}
	return res, err
}

// WALSeq returns the sequence number of the last durable epoch (zero for a
// Batcher without WithDurability, or before the first mutating epoch when
// the log has never been checkpointed). Safe from any goroutine.
func (b *Batcher) WALSeq() uint64 { return b.e.WALSeq() }

// AppliedSeq returns the durable seq of the last epoch whose mutations are
// fully applied and visible to every read tier. It trails WALSeq by at most
// the in-flight epoch (logged-but-not-yet-applied), which makes it the seq
// a read response may claim: sampled before a read, it never exceeds the
// state the read reflects. Safe from any goroutine.
func (b *Batcher) AppliedSeq() uint64 { return b.e.AppliedSeq() }

// SyncedSeq returns the WAL's synced frontier: the highest sequence number
// covered by a completed fsync. Equal to WALSeq except inside an open
// group-commit window (WithGroupSync), where appended-but-unsynced records
// sit above it; zero without durability. An acknowledged epoch's seq is
// always at or below SyncedSeq — acked means fsynced, grouped or not.
func (b *Batcher) SyncedSeq() uint64 { return b.e.SyncedSeq() }

// WALFloor returns the WAL's checkpoint floor: the sequence number already
// captured by the checkpoint the log was last reset behind (zero if never
// reset, or without WithDurability). Records in the live log cover exactly
// (WALFloor, WALSeq]. Safe from any goroutine.
func (b *Batcher) WALFloor() uint64 { return b.e.WALFloor() }

// Checkpoint durably snapshots the current edge set into the durability
// directory and truncates the WAL behind it, bounding restart replay time.
// It blocks until the snapshot is on disk and returns its file path. The
// snapshot is taken at an epoch boundary by the dispatcher itself, so it is
// transactionally consistent with the log: every operation acknowledged
// before Checkpoint returns is either in the snapshot or in the remaining
// WAL tail. Returns an error if the Batcher has no durability configured,
// and ErrClosed (never a panic) once Close has begun. Safe on any graph,
// including an edgeless one — the request rides a dispatcher nudge, not a
// vertex operation.
func (b *Batcher) Checkpoint() (string, error) {
	if !b.e.Durable() {
		return "", errors.New("conn: Checkpoint on a Batcher without WithDurability")
	}
	path, err := b.e.Checkpoint()
	if errors.Is(err, engine.ErrClosed) {
		return "", ErrClosed
	}
	return path, err
}

func (b *Batcher) check(u, v int32) {
	if err := b.checkRange(u, v); err != nil {
		panic(err.Error())
	}
}

func (b *Batcher) checkRange(u, v int32) error {
	if n := int32(b.g.N()); u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("conn: Batcher: vertex pair {%d, %d} out of range [0, %d)", u, v, n)
	}
	return nil
}

func (b *Batcher) one(k coalesce.Kind, u, v int32) bool {
	b.check(u, v)
	f, err := b.e.Submit([]coalesce.Op{{Kind: k, U: u, V: v}})
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return f.Wait()[0]
}

func (b *Batcher) many(k coalesce.Kind, es []Edge) []bool {
	if len(es) == 0 {
		return nil
	}
	ops := make([]coalesce.Op, len(es))
	for i, e := range es {
		b.check(e.U, e.V)
		ops[i] = coalesce.Op{Kind: k, U: e.U, V: e.V}
	}
	f, err := b.e.Submit(ops)
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return f.Wait()
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Insert adds the edge {u, v}, blocking until its epoch commits. Reports
// whether the edge was newly added (false if already present, a self-loop,
// or another operation in the same epoch added it first).
func (b *Batcher) Insert(u, v int32) bool { return b.one(coalesce.OpInsert, u, v) }

// Delete removes the edge {u, v}, blocking until its epoch commits. Reports
// whether the edge was removed (false if absent or another operation in the
// same epoch removed it first).
func (b *Batcher) Delete(u, v int32) bool { return b.one(coalesce.OpDelete, u, v) }

// Connected reports whether u and v are in the same component as of the end
// of the operation's epoch.
func (b *Batcher) Connected(u, v int32) bool { return b.one(coalesce.OpQuery, u, v) }

// InsertEdges stages a batch of insertions as one atomic group — all land
// in the same epoch — and returns the number credited to this call.
func (b *Batcher) InsertEdges(es []Edge) int {
	return countTrue(b.many(coalesce.OpInsert, es))
}

// DeleteEdges stages a batch of deletions as one atomic group and returns
// the number credited to this call.
func (b *Batcher) DeleteEdges(es []Edge) int {
	return countTrue(b.many(coalesce.OpDelete, es))
}

// ConnectedBatch answers k connectivity queries, all against the same
// post-epoch snapshot; result i corresponds to query pair i.
func (b *Batcher) ConnectedBatch(qs []Edge) []bool {
	return b.many(coalesce.OpQuery, qs)
}

// Do stages a mixed batch of insertions, deletions and queries as one
// atomic group — all land in the same epoch, applied in the epoch's usual
// order (inserts, then deletes, then queries) — and returns one result per
// operation, index-aligned. Unlike the single-kind methods it reports
// failure instead of panicking: an out-of-range vertex or unknown kind
// yields a descriptive error with nothing staged, and ErrClosed is returned
// once Close has begun. It is the entry point remote front-ends use: a
// network frame maps to one Do call, so a malformed or late frame can never
// crash the process hosting the Batcher.
func (b *Batcher) Do(ops []Op) ([]bool, error) {
	bits, _, err := b.DoSeq(ops)
	return bits, err
}

// DoSeq is Do plus the committed epoch's durable position: the WAL sequence
// number the post-epoch state reflects (the epoch's own record for a
// mutating group, the last logged seq for a query-only one, zero without
// WithDurability). It is exact — never a later writer's seq — which makes
// it the correct read-your-writes fence for replica-routed reads.
func (b *Batcher) DoSeq(ops []Op) ([]bool, uint64, error) {
	if b.e.Closed() {
		return nil, 0, ErrClosed
	}
	cops, err := coalesceOps(ops, b.checkRange)
	if err != nil {
		return nil, 0, err
	}
	bits, seq, err := b.e.Apply(cops)
	if err != nil {
		return nil, 0, ErrClosed
	}
	return bits, seq, nil
}

// coalesceOps validates and converts a public mixed batch into the staging
// representation. check validates one vertex pair (nil skips validation).
func coalesceOps(ops []Op, check func(u, v int32) error) ([]coalesce.Op, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	cops := make([]coalesce.Op, len(ops))
	for i, op := range ops {
		if check != nil {
			if err := check(op.U, op.V); err != nil {
				return nil, err
			}
		}
		switch op.Kind {
		case OpInsert:
			cops[i] = coalesce.Op{Kind: coalesce.OpInsert, U: op.U, V: op.V}
		case OpDelete:
			cops[i] = coalesce.Op{Kind: coalesce.OpDelete, U: op.U, V: op.V}
		case OpQuery:
			cops[i] = coalesce.Op{Kind: coalesce.OpQuery, U: op.U, V: op.V}
		default:
			return nil, fmt.Errorf("conn: Batcher.Do: unknown op kind %d", op.Kind)
		}
	}
	return cops, nil
}

// ReadNow reports whether u and v are currently connected — read-committed.
// It walks the live structure under a read lock that excludes only the
// mutating phase of epoch execution: no staging, no future, no coalescing
// window. The answer reflects every committed epoch and never a partially
// applied one, but is not ordered against operations still staged; a caller
// that needs its own prior writes visible should Flush first or use
// Connected. Panics once Close has begun.
func (b *Batcher) ReadNow(u, v int32) bool {
	b.check(u, v)
	ok, err := b.e.ReadNow(u, v)
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return ok
}

// ReadNowBatch answers k read-committed connectivity queries against one
// consistent live state (the read lock is held across the whole batch).
func (b *Batcher) ReadNowBatch(qs []Edge) []bool {
	if len(qs) == 0 {
		return nil
	}
	for _, q := range qs {
		b.check(q.U, q.V)
	}
	out, err := b.e.ReadNowBatch(qs)
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return out
}

// ReadRecent reports whether u and v were connected as of the last committed
// epoch that changed connectivity — bounded staleness, wait-free: two array
// loads against an immutable published labelling, never blocking on writers
// or other readers. Unlike other methods it remains usable after Close,
// answering from the final snapshot.
func (b *Batcher) ReadRecent(u, v int32) bool {
	b.check(u, v)
	return b.e.Recent().Connected(u, v)
}

// ReadRecentBatch answers k wait-free queries, all against the same
// published snapshot (a single labelling is loaded for the whole batch).
func (b *Batcher) ReadRecentBatch(qs []Edge) []bool {
	if len(qs) == 0 {
		return nil
	}
	l := b.e.Recent()
	out := make([]bool, len(qs))
	for i, q := range qs {
		b.check(q.U, q.V)
		out[i] = l.Connected(q.U, q.V)
	}
	return out
}

// RecentEpoch returns the publish counter of the snapshot ReadRecent is
// answering from; it increases by one per committed epoch that changed
// connectivity. Callers can use it to bound observed staleness.
func (b *Batcher) RecentEpoch() uint64 { return b.e.Recent().Epoch() }

// Flush forces an immediate epoch and blocks until every operation staged
// before the call has committed. Flush on a closed (or closing) Batcher is
// graceful — never a panic: Close's final sweep commits everything a racing
// Flush could have flushed, and Flush waits for that sweep before
// returning, so the barrier guarantee holds on both sides of the race.
func (b *Batcher) Flush() { b.e.Flush() }

// Close commits everything still staged and stops the dispatcher. After
// Close returns the underlying Graph is quiesced and may be used directly.
// Close is idempotent. Once Close has begun, update methods, Connected and
// ReadNow panic; Do and Checkpoint return ErrClosed; Flush is a no-op;
// ReadRecent keeps answering from the final snapshot.
//
// The returned error reports a failure to close the WAL file handle; the
// durable state itself is unaffected (every acknowledged epoch was fsynced
// before its future resolved), so callers that only care about data safety
// may ignore it, but it is no longer silently discarded.
func (b *Batcher) Close() error {
	if err := b.e.Close(); err != nil {
		return fmt.Errorf("conn: closing WAL: %w", err)
	}
	return nil
}

// BatcherStats are dispatcher counters: how much traffic was coalesced and
// how large the epochs got; see engine.Stats for the field-by-field story.
// AvgEpoch is the realized average batch size — the Δ of Theorem 1 under
// the observed traffic.
type BatcherStats = engine.Stats

// Stats returns coalescing counters accumulated since NewBatcher.
func (b *Batcher) Stats() BatcherStats { return b.e.Stats() }
