// Batcher: the concurrent front-end over Graph. A Graph must have a single
// writer, and the paper's cost bounds reward large batches — Theorem 1
// charges O(lg n · lg(1+n/Δ)) amortized work per deleted edge for deletion
// batches averaging Δ, so many small operations are strictly more expensive
// than one large batch. Batcher resolves the tension with group commit: any
// number of goroutines submit single operations (or small batches), a
// staging buffer coalesces them, and a dispatcher executes one InsertEdges /
// DeleteEdges / ConnectedBatch per drained epoch against the single-writer
// Graph, fanning results back to the blocked callers.
//
// Queries need not pay the write pipeline. Connectivity queries are pure
// root walks (see the read-only query contracts in internal/treap,
// internal/ett, internal/core), so Batcher serves them at three consistency
// tiers:
//
//   - Connected / ConnectedBatch — linearized. The query joins the epoch
//     pipeline and observes its epoch's post-update state, totally ordered
//     with all updates. Pays the coalescing window.
//   - ReadNow / ReadNowBatch — read-committed. Takes a read lock that
//     excludes only the mutating phase of epoch execution and walks the
//     live structure. No staging, no futures, no window; sees every
//     committed epoch and never a partial one, but is not ordered against
//     in-flight submissions.
//   - ReadRecent / ReadRecentBatch — bounded staleness, wait-free. Two
//     array loads against an immutable component labelling republished
//     after every epoch that changes connectivity (internal/snapshot);
//     answers are exact as of the last committed epoch.
//
// cmd/benchconn experiment e13 measures the three tiers' read throughput
// under writer load.

package conn

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/coalesce"
	"repro/internal/graph"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Default coalescing parameters: commit an epoch once 8192 operations have
// accumulated, or 500µs after work first arrives, whichever is first.
const (
	DefaultMaxBatch = 8192
	DefaultMaxDelay = 500 * time.Microsecond
)

// ErrClosed is returned by the Batcher's error-returning methods (Do,
// Checkpoint) once Close has begun.
var ErrClosed = errors.New("conn: Batcher is closed")

// OpKind labels one operation of a mixed batch passed to Batcher.Do.
type OpKind uint8

const (
	// OpInsert stages an edge insertion; its result reports whether the
	// edge was newly added.
	OpInsert OpKind = iota
	// OpDelete stages an edge deletion; its result reports whether the
	// edge was removed.
	OpDelete
	// OpQuery stages a connectivity query against the epoch's post-update
	// state.
	OpQuery
)

// Op is one operation of a mixed batch passed to Batcher.Do.
type Op struct {
	Kind OpKind
	U, V int32
}

// Batcher is a goroutine-safe connectivity front-end over a Graph. All
// methods may be called from any number of goroutines; each call blocks
// until the epoch containing the operation has committed, so a caller's own
// operations are always applied in its program order.
//
// Epoch semantics: within one epoch, insertions are applied first, then
// deletions, then queries — queries observe the epoch's post-update state.
// Operations from different goroutines that land in the same epoch were
// concurrent, and the epoch order is the order they linearize in.
//
// The coalescing window trades latency for throughput: a longer window
// (WithMaxDelay) grows the average batch size Δ, and per-operation cost
// shrinks as O(lg(1+n/Δ)) amortized. See cmd/benchconn experiment e12.
//
// While a Batcher is open, its underlying Graph must not be used directly;
// after Close the Graph is quiesced and may be used again.
type Batcher struct {
	g   *Graph
	buf *coalesce.Buffer

	// mu orders the dispatcher's structure mutations against ReadNow
	// readers: execEpoch write-holds it around the insert/delete phase,
	// ReadNow read-holds it around live-structure walks. Queries never
	// block queries — the read-only contract makes concurrent readers safe
	// — so the lock only serializes readers against the mutating slice of
	// each epoch.
	mu sync.RWMutex

	// snap is the epoch-published component labelling behind ReadRecent.
	snap *snapshot.Store

	// dur, when non-nil, is the durability pipeline (WithDurability): the
	// dispatcher appends each mutating epoch to the WAL and fsyncs before
	// touching the Graph, so an acknowledged write is a durable write.
	dur *durability

	// ckptReq hands a checkpoint request to the dispatcher, which services
	// it at the end of an epoch — the one point where the graph is stable
	// and every appended WAL record has been applied.
	ckptReq atomic.Pointer[ckptRequest]
	ckptMu  sync.Mutex // serializes Checkpoint callers

	closed atomic.Bool

	// applied is the durable seq of the last fully applied (and snapshot-
	// published) epoch — what AppliedSeq reports. It trails WALSeq by the
	// width of one epoch's apply phase: a record is logged first, applied
	// after.
	applied atomic.Uint64

	// subs is the copy-on-write list of epoch subscribers (SubscribeEpochs):
	// the durable dispatcher path tees each fsynced epoch to every entry.
	subsMu sync.Mutex
	subs   atomic.Pointer[[]*epochSub]

	// testHook, when set before any operation is submitted, observes each
	// committed epoch (concatenated ops and their results) from the
	// dispatcher goroutine. Tests use it to replay epochs against an oracle.
	testHook func(ops []coalesce.Op, res []bool)
}

// EpochRecord is one durable mutating epoch as observed by an epoch
// subscriber: the WAL sequence number and the raw coalesced insert and
// delete batches, in application order. Replaying Ins then Del through the
// batch operations reproduces the epoch exactly (duplicates, present
// inserts and absent deletes are ignored at every layer). The slices are
// shared across subscribers and must not be mutated.
type EpochRecord struct {
	Seq uint64
	Ins []Edge
	Del []Edge
}

// epochSub is one registered epoch subscriber.
type epochSub struct {
	// fn observes a durable epoch; calling it exposes the epoch to the
	// outside world, so it counts as an acknowledgement.
	//
	//conn:ack
	fn func(EpochRecord)
}

// BatcherOption configures a Batcher.
type BatcherOption func(*batcherOptions)

type batcherOptions struct {
	maxBatch      int
	maxDelay      time.Duration
	shards        int
	snapThreshold int
	durDir        string
}

// durability is the dispatcher-owned durable-write state.
type durability struct {
	dir string
	log *wal.Log

	// Counters are written by the dispatcher only but read by Stats from
	// any goroutine.
	records     atomic.Int64
	bytes       atomic.Int64
	appendNanos atomic.Int64
	checkpoints atomic.Int64
}

// ckptRequest is one pending Checkpoint call.
type ckptRequest struct {
	done chan struct{}
	path string
	err  error
}

// WithMaxBatch sets the epoch size target: the dispatcher commits as soon
// as k operations are staged. k <= 0 selects DefaultMaxBatch.
func WithMaxBatch(k int) BatcherOption {
	return func(o *batcherOptions) { o.maxBatch = k }
}

// WithMaxDelay bounds how long an operation may wait for its epoch: the
// dispatcher commits at most d after it first notices pending work, even if
// the batch target has not been reached. d == 0 disables the window and
// commits eagerly (lowest latency, smallest batches).
func WithMaxDelay(d time.Duration) BatcherOption {
	return func(o *batcherOptions) { o.maxDelay = d }
}

// WithShards sets the number of staging-buffer stripes (contention control;
// default GOMAXPROCS).
func WithShards(s int) BatcherOption {
	return func(o *batcherOptions) { o.shards = s }
}

// WithDurability makes every acknowledged write durable: the dispatcher
// appends each epoch's coalesced update batch to a write-ahead log in dir
// and fsyncs it *before* the epoch mutates the Graph and before any caller
// unblocks — one fsync amortized over the whole epoch (group commit). Use
// Restore(dir) to recover the graph after a crash, then wrap it in a new
// durable Batcher on the same directory; the log continues where it left
// off. Checkpoint bounds the log's replay length.
//
// The wrapped Graph must reflect the durable state already in dir — either
// dir is fresh/empty, or the graph came from Restore(dir). NewBatcher
// panics if the directory cannot be initialized (unwritable, or holding a
// log for a different vertex universe), and the Batcher panics if a WAL
// append fails mid-flight: a durability guarantee that can no longer be
// honored is fail-stop, never silently degraded.
func WithDurability(dir string) BatcherOption {
	return func(o *batcherOptions) { o.durDir = dir }
}

// WithSnapshotThreshold tunes the ReadRecent labelling's incremental-repair
// budget: an epoch whose dirty components hold more than k vertices in
// total triggers one full relabelling instead of per-component walks.
// k <= 0 selects max(1024, n/4).
func WithSnapshotThreshold(k int) BatcherOption {
	return func(o *batcherOptions) { o.snapThreshold = k }
}

// NewBatcher wraps g in a group-commit front-end and starts its dispatcher.
// Callers own g's lifecycle; the Batcher only requires that nothing else
// touches g until Close returns.
func NewBatcher(g *Graph, opts ...BatcherOption) *Batcher {
	o := batcherOptions{maxBatch: DefaultMaxBatch, maxDelay: DefaultMaxDelay}
	for _, f := range opts {
		f(&o)
	}
	if o.maxBatch <= 0 {
		o.maxBatch = DefaultMaxBatch
	}
	b := &Batcher{g: g}
	if o.durDir != "" {
		if err := os.MkdirAll(o.durDir, 0o755); err != nil {
			panic(fmt.Sprintf("conn: WithDurability(%q): %v", o.durDir, err))
		}
		log, err := wal.Open(filepath.Join(o.durDir, walFileName), g.N())
		if err != nil {
			panic(fmt.Sprintf("conn: WithDurability(%q): %v", o.durDir, err))
		}
		b.dur = &durability{dir: o.durDir, log: log}
		// The WithDurability contract says g already reflects the durable
		// state in dir (fresh, or from Restore, which replays the full log),
		// so the applied position starts at the log's end, not at zero.
		b.applied.Store(log.LastSeq())
	}
	// Graph implements snapshot.Source (ComponentID / ComponentSize /
	// ComponentVertices / ComponentLabels are read-only queries); the store
	// computes the initial labelling from the graph's current state.
	b.snap = snapshot.NewStore(g.N(), o.snapThreshold, g)
	b.buf = coalesce.NewBuffer(o.shards, o.maxBatch, o.maxDelay, b.execEpoch) //conn:dispatcher-entry — hands execEpoch to the dispatcher goroutine
	return b
}

// walFileName is the WAL's file name inside a durability directory.
const walFileName = "wal.log"

// logEpoch makes an epoch's updates durable before any of them is applied
// or acknowledged: it collects the raw coalesced insert and delete batches
// (self-loops dropped — they are no-ops at every layer) and appends them as
// one fsynced WAL record. Replaying the raw batches through InsertEdges /
// DeleteEdges reproduces the epoch exactly, because those batch operations
// ignore duplicates, already-present inserts and absent deletes — the same
// filtering execEpoch's credit pre-scans perform.
//
// The epoch-subscriber tee at the end is an acknowledgement path (the Hub
// ships the record to followers), so it must stay behind the WAL append.
//
//conn:dispatcher-only
//conn:ack-after-fsync
func (b *Batcher) logEpoch(ops []coalesce.Op) {
	var ins, del []graph.Edge
	for _, op := range ops {
		if op.U == op.V {
			continue
		}
		switch op.Kind {
		case coalesce.OpInsert:
			ins = append(ins, graph.Edge{U: op.U, V: op.V})
		case coalesce.OpDelete:
			del = append(del, graph.Edge{U: op.U, V: op.V})
		}
	}
	if len(ins) == 0 && len(del) == 0 {
		return // query-only epoch: nothing to make durable
	}
	rec := wal.Record{Seq: b.dur.log.LastSeq() + 1, Ins: ins, Del: del}
	t0 := time.Now()
	nbytes, err := b.dur.log.Append(rec)
	if err != nil {
		panic(fmt.Sprintf("conn: durable Batcher cannot append to WAL: %v", err))
	}
	b.dur.appendNanos.Add(time.Since(t0).Nanoseconds())
	b.dur.records.Add(1)
	b.dur.bytes.Add(int64(nbytes))
	// Replication tee: the record is durable, so subscribers (the Hub
	// shipping epochs to followers) may see it now — before the epoch is
	// applied or acknowledged, exactly the ordering the WAL itself gets.
	if subs := b.subs.Load(); subs != nil && len(*subs) > 0 {
		er := EpochRecord{Seq: rec.Seq, Ins: fromInternal(ins), Del: fromInternal(del)}
		for _, s := range *subs {
			s.fn(er)
		}
	}
}

// SubscribeEpochs registers fn as an epoch subscriber: the dispatcher calls
// it for every mutating epoch, on the dispatcher goroutine, after the
// epoch's WAL record is fsynced and before the epoch is applied or any
// caller's future resolves. fn must not block — a slow consumer must buffer
// or drop on its own side of the hand-off, never stall the write pipeline.
// Only durable Batchers (WithDurability) emit epochs; on a memory-only
// Batcher the subscription is registered but never fires. The returned
// cancel function removes the subscription and is idempotent.
func (b *Batcher) SubscribeEpochs(fn func(EpochRecord)) (cancel func()) {
	sub := &epochSub{fn: fn}
	b.subsMu.Lock()
	var cur []*epochSub
	if p := b.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*epochSub, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sub
	b.subs.Store(&next)
	b.subsMu.Unlock()
	return func() {
		b.subsMu.Lock()
		defer b.subsMu.Unlock()
		p := b.subs.Load()
		if p == nil {
			return
		}
		out := make([]*epochSub, 0, len(*p))
		for _, s := range *p {
			if s != sub {
				out = append(out, s)
			}
		}
		b.subs.Store(&out)
	}
}

// WALSeq returns the sequence number of the last durable epoch (zero for a
// Batcher without WithDurability, or before the first mutating epoch when
// the log has never been checkpointed). Safe from any goroutine.
func (b *Batcher) WALSeq() uint64 {
	if b.dur == nil {
		return 0
	}
	return b.dur.log.LastSeq()
}

// AppliedSeq returns the durable seq of the last epoch whose mutations are
// fully applied and visible to every read tier. It trails WALSeq by at most
// the in-flight epoch (logged-but-not-yet-applied), which makes it the seq
// a read response may claim: sampled before a read, it never exceeds the
// state the read reflects. Safe from any goroutine.
func (b *Batcher) AppliedSeq() uint64 { return b.applied.Load() }

// WALFloor returns the WAL's checkpoint floor: the sequence number already
// captured by the checkpoint the log was last reset behind (zero if never
// reset, or without WithDurability). Records in the live log cover exactly
// (WALFloor, WALSeq]. Safe from any goroutine.
func (b *Batcher) WALFloor() uint64 {
	if b.dur == nil {
		return 0
	}
	return b.dur.log.BaseSeq()
}

// serviceCheckpoint runs on the dispatcher at the end of an epoch, when the
// graph is stable and every WAL record appended so far has been applied —
// so a snapshot of the live edge set captures exactly the log's prefix and
// the log can be truncated behind it.
//
// close(req.done) releases the Checkpoint caller, so it must stay behind
// the checkpoint.Write durability barrier.
//
//conn:dispatcher-only
//conn:ack-after-fsync
func (b *Batcher) serviceCheckpoint() {
	req := b.ckptReq.Swap(nil)
	if req == nil {
		return
	}
	seq := b.dur.log.LastSeq()
	edges := b.g.SpanningForest()
	edges = append(edges, b.g.NonTreeEdges()...)
	snap := checkpoint.Snapshot{Seq: seq, N: b.g.N(), Edges: toGraphEdges(edges)}
	path, err := checkpoint.Write(b.dur.dir, snap)
	if err == nil {
		// Prune prior checkpoints and count the new one only after the WAL
		// reset succeeds. If Reset fails, the directory must keep a usable
		// (checkpoint, log) pair: the older snapshots stay as fallbacks and
		// the log keeps every record, so Restore still recovers the full
		// acked history whichever checkpoint it manages to read. The new
		// snapshot file is left in place too — it is valid, just not yet
		// the log's floor.
		if err = b.dur.log.Reset(seq); err == nil {
			checkpoint.Prune(b.dur.dir, seq)
			b.dur.checkpoints.Add(1)
		} else {
			path = ""
		}
	}
	req.path, req.err = path, err
	close(req.done)
}

func toGraphEdges(es []Edge) []graph.Edge {
	out := make([]graph.Edge, len(es))
	for i, e := range es {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out
}

// Checkpoint durably snapshots the current edge set into the durability
// directory and truncates the WAL behind it, bounding restart replay time.
// It blocks until the snapshot is on disk and returns its file path. The
// snapshot is taken at an epoch boundary by the dispatcher itself, so it is
// transactionally consistent with the log: every operation acknowledged
// before Checkpoint returns is either in the snapshot or in the remaining
// WAL tail. Returns an error if the Batcher has no durability configured,
// and ErrClosed (never a panic) once Close has begun. Safe on any graph,
// including an edgeless one — the request rides a dispatcher nudge, not a
// vertex operation.
func (b *Batcher) Checkpoint() (string, error) {
	if b.dur == nil {
		return "", errors.New("conn: Checkpoint on a Batcher without WithDurability")
	}
	b.ckptMu.Lock()
	defer b.ckptMu.Unlock()
	req := &ckptRequest{done: make(chan struct{})}
	b.ckptReq.Store(req)
	// Dedicated dispatcher nudge: a flush barrier forces a drain, and the
	// dispatcher services checkpoint requests at the end of every drain —
	// even an empty one — so the wait below is bounded by one epoch without
	// smuggling a fake query through the pipeline (which would touch vertex
	// 0 and panic after Close instead of failing cleanly).
	if err := b.buf.Flush(); err != nil {
		// Close raced in. The request was published before the flush
		// attempt, so the dispatcher's final sweep may still have serviced
		// it; only if it can be retracted unserviced did the checkpoint
		// definitely not happen.
		if b.ckptReq.CompareAndSwap(req, nil) {
			return "", ErrClosed
		}
	}
	<-req.done
	return req.path, req.err
}

// execEpoch applies one drained epoch to the underlying graph and returns
// the results plus the epoch's durable commit position (the WAL seq the
// epoch's state reflects: its own record's seq for a mutating epoch, the
// last logged seq for a query-only one, zero without durability). It runs
// on the dispatcher goroutine only, so the single-writer contract of Graph
// holds. Insert and delete credit goes to the first staging of each edge in
// epoch order; queries run against the post-update state.
//
// Locking: only the mutating phase write-holds b.mu — ReadNow readers are
// excluded exactly while the structure changes. The epoch's own queries and
// the snapshot publish are read-only walks and run lock-free alongside
// ReadNow (read-read is safe under the core contract; no other writer can
// exist because this is the sole dispatcher).
//
//conn:dispatcher-only
func (b *Batcher) execEpoch(ops []coalesce.Op) ([]bool, uint64) {
	// Durability barrier: the epoch's updates hit the fsynced WAL before
	// the first structure mutation and before any future resolves, so a
	// caller that observes its commit can never lose the write to a crash.
	if b.dur != nil {
		b.logEpoch(ops)
	}
	// The epoch's commit position is sampled here, after this epoch's own
	// append and before any later epoch can log: exactly the seq a caller
	// needs for read-your-writes fencing, never a later writer's.
	epochSeq := b.WALSeq()

	res := make([]bool, len(ops))
	var insIdx, delIdx, qIdx []int
	for i, op := range ops {
		switch op.Kind {
		case coalesce.OpInsert:
			insIdx = append(insIdx, i)
		case coalesce.OpDelete:
			delIdx = append(delIdx, i)
		default:
			qIdx = append(qIdx, i)
		}
	}

	// touched collects the endpoints of applied updates that can actually
	// move a component label — the dirty set the snapshot publisher repairs
	// from. Credited updates that provably preserve the partition are
	// filtered out here so write-heavy epochs of intra-component inserts
	// and non-tree deletes skip snapshot work entirely:
	//   - an insert whose endpoints share a label in the published
	//     snapshot (which is exact for the pre-epoch graph: every
	//     label-changing epoch republishes) joins nothing;
	//   - a non-tree delete leaves the spanning forest intact, and any
	//     fragment a batch of deletions splits off is bounded by deleted
	//     TREE edges, whose endpoints it contains.
	var touched []int32

	// The insert pre-scan (dedup + presence filter) reads only pre-epoch
	// state, so it runs before the write lock — concurrent ReadNow readers
	// are not blocked by it.
	var insBatch []Edge
	if len(insIdx) > 0 {
		lbl := b.snap.Current() // pre-epoch labelling
		seen := make(map[uint64]struct{}, len(insIdx))
		insBatch = make([]Edge, 0, len(insIdx))
		for _, i := range insIdx {
			u, v := ops[i].U, ops[i].V
			if u == v {
				continue
			}
			k := graph.Edge{U: u, V: v}.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if !b.g.HasEdge(u, v) {
				res[i] = true
				insBatch = append(insBatch, Edge{U: u, V: v})
				if !lbl.Connected(u, v) {
					touched = append(touched, u, v)
				}
			}
		}
	}

	if len(insBatch) > 0 || len(delIdx) > 0 {
		// The write lock spans from the first structure mutation to the
		// last: ReadNow must never observe inserts applied but deletes
		// pending. The delete pre-scan has to sit inside the window — it
		// reads post-insert presence so an insert and delete of the same
		// edge in one epoch compose.
		b.mu.Lock()
		b.g.InsertEdges(insBatch)
		if len(delIdx) > 0 {
			seen := make(map[uint64]struct{}, len(delIdx))
			batch := make([]Edge, 0, len(delIdx))
			for _, i := range delIdx {
				u, v := ops[i].U, ops[i].V
				if u == v {
					continue
				}
				k := graph.Edge{U: u, V: v}.Key()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				// Tree-ness is read post-insert, pre-delete — exactly the
				// forest BatchDelete will sever.
				if present, tree := b.g.EdgeInfo(u, v); present {
					res[i] = true
					batch = append(batch, Edge{U: u, V: v})
					if tree {
						touched = append(touched, u, v)
					}
				}
			}
			b.g.DeleteEdges(batch)
		}
		b.mu.Unlock()
	}

	if len(qIdx) > 0 {
		qs := make([]Edge, len(qIdx))
		for j, i := range qIdx {
			qs[j] = Edge{U: ops[i].U, V: ops[i].V}
		}
		for j, ok := range b.g.ConnectedBatch(qs) {
			res[qIdx[j]] = ok
		}
	}

	// Publish before the dispatcher resolves the epoch's futures (our
	// caller, coalesce.drain, closes them after we return): once any caller
	// observes its commit, ReadRecent already reflects the epoch.
	b.snap.Publish(touched)

	if b.dur != nil {
		b.serviceCheckpoint()
	}

	if b.testHook != nil {
		b.testHook(ops, res)
	}
	// The epoch is fully applied and its snapshot published: readers that
	// sample AppliedSeq from here on may safely claim this position —
	// a claimed seq never exceeds the state a subsequent read reflects.
	b.applied.Store(epochSeq)
	return res, epochSeq
}

func (b *Batcher) check(u, v int32) {
	if err := b.checkRange(u, v); err != nil {
		panic(err.Error())
	}
}

func (b *Batcher) checkRange(u, v int32) error {
	if n := int32(b.g.N()); u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("conn: Batcher: vertex pair {%d, %d} out of range [0, %d)", u, v, n)
	}
	return nil
}

func (b *Batcher) one(k coalesce.Kind, u, v int32) bool {
	b.check(u, v)
	f, err := b.buf.Submit([]coalesce.Op{{Kind: k, U: u, V: v}})
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return f.Wait()[0]
}

func (b *Batcher) many(k coalesce.Kind, es []Edge) []bool {
	if len(es) == 0 {
		return nil
	}
	ops := make([]coalesce.Op, len(es))
	for i, e := range es {
		b.check(e.U, e.V)
		ops[i] = coalesce.Op{Kind: k, U: e.U, V: e.V}
	}
	f, err := b.buf.Submit(ops)
	if err != nil {
		panic("conn: Batcher used after Close")
	}
	return f.Wait()
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Insert adds the edge {u, v}, blocking until its epoch commits. Reports
// whether the edge was newly added (false if already present, a self-loop,
// or another operation in the same epoch added it first).
func (b *Batcher) Insert(u, v int32) bool { return b.one(coalesce.OpInsert, u, v) }

// Delete removes the edge {u, v}, blocking until its epoch commits. Reports
// whether the edge was removed (false if absent or another operation in the
// same epoch removed it first).
func (b *Batcher) Delete(u, v int32) bool { return b.one(coalesce.OpDelete, u, v) }

// Connected reports whether u and v are in the same component as of the end
// of the operation's epoch.
func (b *Batcher) Connected(u, v int32) bool { return b.one(coalesce.OpQuery, u, v) }

// InsertEdges stages a batch of insertions as one atomic group — all land
// in the same epoch — and returns the number credited to this call.
func (b *Batcher) InsertEdges(es []Edge) int {
	return countTrue(b.many(coalesce.OpInsert, es))
}

// DeleteEdges stages a batch of deletions as one atomic group and returns
// the number credited to this call.
func (b *Batcher) DeleteEdges(es []Edge) int {
	return countTrue(b.many(coalesce.OpDelete, es))
}

// ConnectedBatch answers k connectivity queries, all against the same
// post-epoch snapshot; result i corresponds to query pair i.
func (b *Batcher) ConnectedBatch(qs []Edge) []bool {
	return b.many(coalesce.OpQuery, qs)
}

// Do stages a mixed batch of insertions, deletions and queries as one
// atomic group — all land in the same epoch, applied in the epoch's usual
// order (inserts, then deletes, then queries) — and returns one result per
// operation, index-aligned. Unlike the single-kind methods it reports
// failure instead of panicking: an out-of-range vertex or unknown kind
// yields a descriptive error with nothing staged, and ErrClosed is returned
// once Close has begun. It is the entry point remote front-ends use: a
// network frame maps to one Do call, so a malformed or late frame can never
// crash the process hosting the Batcher.
func (b *Batcher) Do(ops []Op) ([]bool, error) {
	bits, _, err := b.DoSeq(ops)
	return bits, err
}

// DoSeq is Do plus the committed epoch's durable position: the WAL sequence
// number the post-epoch state reflects (the epoch's own record for a
// mutating group, the last logged seq for a query-only one, zero without
// WithDurability). It is exact — never a later writer's seq — which makes
// it the correct read-your-writes fence for replica-routed reads.
func (b *Batcher) DoSeq(ops []Op) ([]bool, uint64, error) {
	if b.closed.Load() {
		return nil, 0, ErrClosed
	}
	if len(ops) == 0 {
		return nil, b.WALSeq(), nil
	}
	cops := make([]coalesce.Op, len(ops))
	for i, op := range ops {
		if err := b.checkRange(op.U, op.V); err != nil {
			return nil, 0, err
		}
		switch op.Kind {
		case OpInsert:
			cops[i] = coalesce.Op{Kind: coalesce.OpInsert, U: op.U, V: op.V}
		case OpDelete:
			cops[i] = coalesce.Op{Kind: coalesce.OpDelete, U: op.U, V: op.V}
		case OpQuery:
			cops[i] = coalesce.Op{Kind: coalesce.OpQuery, U: op.U, V: op.V}
		default:
			return nil, 0, fmt.Errorf("conn: Batcher.Do: unknown op kind %d", op.Kind)
		}
	}
	f, err := b.buf.Submit(cops)
	if err != nil {
		return nil, 0, ErrClosed
	}
	return f.Wait(), f.Seq(), nil
}

// ReadNow reports whether u and v are currently connected — read-committed.
// It walks the live structure under a read lock that excludes only the
// mutating phase of epoch execution: no staging, no future, no coalescing
// window. The answer reflects every committed epoch and never a partially
// applied one, but is not ordered against operations still staged; a caller
// that needs its own prior writes visible should Flush first or use
// Connected. Panics once Close has begun.
func (b *Batcher) ReadNow(u, v int32) bool {
	b.check(u, v)
	b.mu.RLock()
	if b.closed.Load() {
		b.mu.RUnlock()
		panic("conn: Batcher used after Close")
	}
	ok := b.g.Connected(u, v)
	b.mu.RUnlock()
	return ok
}

// ReadNowBatch answers k read-committed connectivity queries against one
// consistent live state (the read lock is held across the whole batch).
func (b *Batcher) ReadNowBatch(qs []Edge) []bool {
	if len(qs) == 0 {
		return nil
	}
	for _, q := range qs {
		b.check(q.U, q.V)
	}
	b.mu.RLock()
	if b.closed.Load() {
		b.mu.RUnlock()
		panic("conn: Batcher used after Close")
	}
	out := b.g.ConnectedBatch(qs)
	b.mu.RUnlock()
	return out
}

// ReadRecent reports whether u and v were connected as of the last committed
// epoch that changed connectivity — bounded staleness, wait-free: two array
// loads against an immutable published labelling, never blocking on writers
// or other readers. Unlike other methods it remains usable after Close,
// answering from the final snapshot.
func (b *Batcher) ReadRecent(u, v int32) bool {
	b.check(u, v)
	return b.snap.Current().Connected(u, v)
}

// ReadRecentBatch answers k wait-free queries, all against the same
// published snapshot (a single labelling is loaded for the whole batch).
func (b *Batcher) ReadRecentBatch(qs []Edge) []bool {
	if len(qs) == 0 {
		return nil
	}
	l := b.snap.Current()
	out := make([]bool, len(qs))
	for i, q := range qs {
		b.check(q.U, q.V)
		out[i] = l.Connected(q.U, q.V)
	}
	return out
}

// RecentEpoch returns the publish counter of the snapshot ReadRecent is
// answering from; it increases by one per committed epoch that changed
// connectivity. Callers can use it to bound observed staleness.
func (b *Batcher) RecentEpoch() uint64 { return b.snap.Current().Epoch() }

// Flush forces an immediate epoch and blocks until every operation staged
// before the call has committed. Flush on a closed (or closing) Batcher is
// graceful — never a panic: Close's final sweep commits everything a racing
// Flush could have flushed, and Flush waits for that sweep before
// returning, so the barrier guarantee holds on both sides of the race.
func (b *Batcher) Flush() {
	if err := b.buf.Flush(); err != nil {
		// ErrClosed: Close has begun but its final drain may not have run
		// yet. Buffer.Close is idempotent and blocks until the dispatcher
		// (final sweep included) has exited — ride it instead of failing.
		b.buf.Close()
	}
}

// Close commits everything still staged and stops the dispatcher. After
// Close returns the underlying Graph is quiesced and may be used directly.
// Close is idempotent. Once Close has begun, update methods, Connected and
// ReadNow panic; Do and Checkpoint return ErrClosed; Flush is a no-op;
// ReadRecent keeps answering from the final snapshot.
//
// The returned error reports a failure to close the WAL file handle; the
// durable state itself is unaffected (every acknowledged epoch was fsynced
// before its future resolved), so callers that only care about data safety
// may ignore it, but it is no longer silently discarded.
func (b *Batcher) Close() error {
	b.closed.Store(true)
	b.buf.Close()
	var err error
	if b.dur != nil {
		// The dispatcher has exited; every acknowledged epoch is already
		// fsynced, so closing the log handle loses no data — but the
		// error still surfaces to the caller.
		if cerr := b.dur.log.Close(); cerr != nil {
			err = fmt.Errorf("conn: closing WAL: %w", cerr)
		}
	}
	// Empty critical section as a barrier: wait out any ReadNow that
	// acquired the read lock before the closed flag landed, so the Graph
	// is truly quiesced when we return.
	b.mu.Lock()
	//lint:ignore SA2001 the empty critical section IS the barrier
	b.mu.Unlock()
	return err
}

// BatcherStats are dispatcher counters: how much traffic was coalesced and
// how large the epochs got. AvgEpoch is the realized average batch size —
// the Δ of Theorem 1 under the observed traffic. SnapshotPublishes and
// SnapshotRebuilds count ReadRecent labelling publications and how many of
// them fell back from incremental repair to a full relabelling.
type BatcherStats struct {
	Epochs            int64
	Ops               int64
	MaxEpoch          int64
	SnapshotPublishes int64
	SnapshotRebuilds  int64

	// Durability counters (zero without WithDurability): WAL records are
	// mutating epochs — each one cost exactly one fsync; WALAppendTime is
	// the total wall time spent in those appends, the per-epoch durable
	// overhead e14 measures.
	WALRecords    int64
	WALBytes      int64
	WALAppendTime time.Duration
	Checkpoints   int64
}

// AvgEpoch returns the mean operations per committed epoch.
func (s BatcherStats) AvgEpoch() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Epochs)
}

// Stats returns coalescing counters accumulated since NewBatcher.
func (b *Batcher) Stats() BatcherStats {
	s := b.buf.Stats()
	sn := b.snap.Stats()
	out := BatcherStats{
		Epochs: s.Epochs, Ops: s.Ops, MaxEpoch: s.MaxEpoch,
		SnapshotPublishes: sn.Publishes, SnapshotRebuilds: sn.Rebuilds,
	}
	if b.dur != nil {
		out.WALRecords = b.dur.records.Load()
		out.WALBytes = b.dur.bytes.Load()
		out.WALAppendTime = time.Duration(b.dur.appendNanos.Load())
		out.Checkpoints = b.dur.checkpoints.Load()
	}
	return out
}
