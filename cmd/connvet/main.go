// Command connvet is the engine's contract checker: the internal/lint
// analyzer suite compiled into a binary that speaks cmd/go's (unpublished)
// vettool protocol, so the concurrency and durability contracts run under
// plain `go vet`:
//
//	go build -o /tmp/connvet ./cmd/connvet
//	go vet -vettool=/tmp/connvet ./...
//
// or, using the self-installing helper path:
//
//	go vet -vettool=$(go run ./cmd/connvet -print-path) ./...
//
// (-print-path copies the running binary to a stable location under the
// user cache dir and prints it, because a `go run` temporary would be gone
// before `go vet` re-invokes it.)
//
// Invoked with package patterns instead of a vet.cfg file, connvet re-execs
// `go vet -vettool=<itself>` for convenience:
//
//	go run ./cmd/connvet ./...
//
// Protocol notes (mirroring x/tools' unitchecker, reimplemented here on the
// standard library because this module carries no third-party deps):
// cmd/go probes `-V=full` for a tool build ID and `-flags` for supported
// analyzer flags, then invokes the tool once per package with a JSON config
// file argument. The tool typechecks the package from the export data cmd/go
// already produced (Config.PackageFile), reads per-dependency fact files
// (Config.PackageVetx), and must write its own facts to Config.VetxOutput.
// connvet's facts are the //conn: directive sets (lint.Facts), so contract
// annotations cross package boundaries. Packages outside this module are
// skipped wholesale: their vetx output is an empty fact set.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	vFlag := flag.String("V", "", "print version (cmd/go toolchain protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (cmd/go vet protocol)")
	printPath := flag.Bool("print-path", false, "install the binary to a stable path and print it")
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion()
		return
	case *flagsFlag:
		// No analyzer-specific flags; cmd/go requires a JSON list.
		fmt.Println("[]")
		return
	case *printPath:
		path, err := installStable()
		if err != nil {
			fatalf("connvet: %v", err)
		}
		fmt.Println(path)
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	// Convenience mode: behave like `go vet -vettool=<self> <args>`.
	os.Exit(runStandalone(args))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// printVersion emits the line cmd/go's toolID() parses: at least three
// fields, fields[1] == "version", and for a "devel" toolchain a final
// buildID= field. Hashing the executable makes the ID track the binary, so
// editing an analyzer invalidates cmd/go's vet cache.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			_ = f.Close()
		}
	}
	fmt.Printf("connvet version devel buildID=%s\n", id)
}

// installStable copies the running executable to a fixed per-user location
// and returns that path, so `$(go run ./cmd/connvet -print-path)` yields a
// binary that outlives the `go run` temporary.
func installStable() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	dir := filepath.Join(base, "connvet")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", err
	}
	dst := filepath.Join(dir, fmt.Sprintf("connvet-%s-%s", runtime.GOOS, runtime.GOARCH))
	src, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer src.Close()
	tmp, err := os.CreateTemp(dir, "connvet-*")
	if err != nil {
		return "", err
	}
	if _, err := io.Copy(tmp, src); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Chmod(0o755); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		_ = os.Remove(tmp.Name())
		return "", err
	}
	return dst, nil
}

func runStandalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fatalf("connvet: %v", err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fatalf("connvet: exec go vet: %v", err)
	}
	return 0
}

// vetConfig is the JSON cmd/go writes for each package (see
// cmd/go/internal/work.vetConfig). Field names must match exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("connvet: reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("connvet: parsing %s: %v", cfgPath, err)
	}

	if !isLocalPackage(&cfg) {
		// Dependencies outside this module carry no //conn: contracts;
		// publish an empty fact set and move on.
		if err := writeVetx(cfg.VetxOutput, lint.Facts{}); err != nil {
			fatalf("connvet: %v", err)
		}
		return 0
	}

	fset := token.NewFileSet()
	files, parseErr := parseFiles(fset, cfg.Dir, cfg.GoFiles)

	imported := make(lint.Facts)
	for _, vetxFile := range cfg.PackageVetx {
		facts, err := readVetx(vetxFile)
		if err != nil {
			fatalf("connvet: reading facts %s: %v", vetxFile, err)
		}
		imported.Merge(facts)
	}

	if parseErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg.VetxOutput, factsFromParse(fset, files, cfg.ImportPath, imported))
			return 0
		}
		fatalf("connvet: %v", parseErr)
	}

	if cfg.VetxOnly {
		// Directive facts need only syntax, not types: collect and publish
		// without the cost of a typecheck.
		if err := writeVetx(cfg.VetxOutput, factsFromParse(fset, files, cfg.ImportPath, imported)); err != nil {
			fatalf("connvet: %v", err)
		}
		return 0
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg.VetxOutput, factsFromParse(fset, files, cfg.ImportPath, imported))
			return 0
		}
		fatalf("connvet: typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, export, err := lint.RunPackage(lint.All(), fset, files, pkg, info, imported)
	if err != nil {
		fatalf("connvet: %v", err)
	}
	if err := writeVetx(cfg.VetxOutput, export); err != nil {
		fatalf("connvet: %v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// isLocalPackage reports whether the unit belongs to this module — the only
// code the contract analyzers apply to.
func isLocalPackage(cfg *vetConfig) bool {
	if cfg.ModulePath == "repro" {
		return true
	}
	return cfg.ImportPath == "repro" || strings.HasPrefix(cfg.ImportPath, "repro/")
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return files, err
		}
		files = append(files, f)
	}
	return files, nil
}

// factsFromParse is the typecheck-free fact path used for VetxOnly units:
// imported facts plus this package's own directives.
func factsFromParse(fset *token.FileSet, files []*ast.File, importPath string, imported lint.Facts) lint.Facts {
	prod := files[:0:0]
	for _, f := range files {
		if name := fset.Position(f.Package).Filename; !strings.HasSuffix(name, "_test.go") {
			prod = append(prod, f)
		}
	}
	dirs := lint.CollectDirectives(fset, prod)
	out := make(lint.Facts)
	out.Merge(imported)
	out.Merge(dirs.Facts(importPath))
	return out
}

func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(importPath)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := lint.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func buildArch() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}

func writeVetx(path string, facts lint.Facts) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(facts); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func readVetx(path string) (lint.Facts, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var facts lint.Facts
	if err := gob.NewDecoder(f).Decode(&facts); err != nil {
		if err == io.EOF {
			return lint.Facts{}, nil
		}
		return nil, err
	}
	return facts, nil
}
