package main

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/core"
	"repro/internal/ett"
	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/hdt"
	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/skiplist"
	"repro/internal/static"
	"repro/internal/treap"
	"repro/internal/unionfind"
)

// timeIt runs f once and returns the wall-clock duration.
func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// nsPer formats a per-item cost.
func nsPer(d time.Duration, items int) string {
	if items == 0 {
		return "-"
	}
	return fmt.Sprintf("%8.0f", float64(d.Nanoseconds())/float64(items))
}

// buildConn loads a Conn with the given edges in large batches.
func buildConn(n int, es []graph.Edge, alg core.Algorithm) *core.Conn {
	c := core.New(n, core.WithAlgorithm(alg))
	for _, b := range graphgen.Batches(es, 1<<16) {
		c.BatchInsert(b)
	}
	return c
}

// ---------------------------------------------------------------- E1

func runE1(cfg config) {
	n := cfg.size(1<<18, 1<<14)
	header("e1", "batch connectivity queries", "per-query cost falls as k grows: O(k lg(1+n/k)) total  [Thm 3]")
	es := graphgen.RandomSpanningTree(n, cfg.seed)
	c := buildConn(n, es, core.SearchInterleaved)
	fmt.Printf("n=%d (random spanning tree)\n", n)
	fmt.Printf("%10s %12s %10s\n", "k", "total", "ns/query")
	for k := 1; k <= n; k *= 8 {
		qs := graphgen.QueryBatch(n, k, cfg.seed+int64(k))
		reps := 1
		if k < 4096 {
			reps = 4096 / k // average tiny batches over repetitions
		}
		d := timeIt(func() {
			for r := 0; r < reps; r++ {
				c.BatchConnected(qs)
			}
		})
		fmt.Printf("%10d %12v %10s\n", k, (d / time.Duration(reps)).Round(time.Microsecond), nsPer(d, k*reps))
	}
}

// ---------------------------------------------------------------- E2

func runE2(cfg config) {
	n := cfg.size(1<<17, 1<<13)
	m := n
	header("e2", "batch insertions", "per-edge insert cost falls as k grows: O(k lg(1+n/k)) total  [Thm 4]")
	fmt.Printf("n=%d, inserting m=%d random edges in batches of k\n", n, m)
	fmt.Printf("%10s %12s %10s\n", "k", "total", "ns/edge")
	for _, k := range []int{16, 128, 1024, 8192, 65536} {
		if k > m {
			break
		}
		es := graphgen.RandomGraph(n, m, cfg.seed)
		c := core.New(n)
		batches := graphgen.Batches(es, k)
		d := timeIt(func() {
			for _, b := range batches {
				c.BatchInsert(b)
			}
		})
		fmt.Printf("%10d %12v %10s\n", k, d.Round(time.Millisecond), nsPer(d, m))
	}
}

// ---------------------------------------------------------------- E3

func runE3(cfg config) {
	n := cfg.size(1<<15, 1<<12)
	m := 4 * n
	header("e3", "batch deletions vs average batch size Δ",
		"amortized work/edge O(lg n · lg(1+n/Δ)): cost falls as Δ grows  [Thm 9, headline]")
	fmt.Printf("n=%d, m=%d random edges; delete ALL edges in batches of Δ\n", n, m)
	fmt.Printf("%10s %12s %10s %12s %12s %12s\n", "Δ", "total", "ns/edge", "pushdowns", "treepushes", "replaced")
	for _, delta := range []int{1, 8, 64, 512, 4096, 32768} {
		if delta > m {
			break
		}
		es := graphgen.RandomGraph(n, m, cfg.seed)
		c := buildConn(n, es, core.SearchInterleaved)
		graphgen.Shuffle(es, cfg.seed+int64(delta))
		batches := graphgen.Batches(es, delta)
		before := c.Stats()
		d := timeIt(func() {
			for _, b := range batches {
				c.BatchDelete(b)
			}
		})
		after := c.Stats()
		fmt.Printf("%10d %12v %10s %12d %12d %12d\n", delta, d.Round(time.Millisecond),
			nsPer(d, m), after.Pushdowns-before.Pushdowns, after.TreePushes-before.TreePushes,
			after.Replaced-before.Replaced)
	}
}

// ---------------------------------------------------------------- E4

func runE4(cfg config) {
	n := cfg.size(1<<14, 1<<11)
	m := 4 * n
	header("e4", "parallel batch-dynamic vs sequential HDT",
		"work-efficient w.r.t. HDT; asymptotically faster for large batches  [Thm 6/9]")
	fmt.Printf("n=%d, m=%d; delete all edges in batches of Δ (HDT processes them one at a time)\n", n, m)
	fmt.Printf("%10s %14s %14s %10s\n", "Δ", "batch-dynamic", "HDT", "speedup")
	for _, delta := range []int{1, 64, 1024, 16384} {
		if delta > m {
			break
		}
		es := graphgen.RandomGraph(n, m, cfg.seed)
		c := buildConn(n, es, core.SearchInterleaved)
		h := hdt.New(n)
		for _, e := range es {
			h.Insert(e.U, e.V)
		}
		graphgen.Shuffle(es, cfg.seed+int64(delta))
		batches := graphgen.Batches(es, delta)
		dDyn := timeIt(func() {
			for _, b := range batches {
				c.BatchDelete(b)
			}
		})
		dHDT := timeIt(func() {
			for _, e := range es {
				h.Delete(e.U, e.V)
			}
		})
		fmt.Printf("%10d %14v %14v %9.2fx\n", delta,
			dDyn.Round(time.Millisecond), dHDT.Round(time.Millisecond),
			float64(dHDT)/float64(dDyn))
	}
}

// ---------------------------------------------------------------- E5

func runE5(cfg config) {
	n := cfg.size(1<<15, 1<<12)
	m := 4 * n
	delta := 16384
	if delta > m {
		delta = m
	}
	header("e5", "speedup vs worker count P",
		"polylog depth ⇒ update throughput scales with workers")
	fmt.Printf("n=%d, m=%d, Δ=%d; delete all edges per worker setting\n", n, m, delta)
	fmt.Printf("%10s %12s %10s\n", "P", "total", "speedup")
	var base time.Duration
	for _, p := range []int{1, 2, 4, 8, 16, 24} {
		es := graphgen.RandomGraph(n, m, cfg.seed)
		c := buildConn(n, es, core.SearchInterleaved)
		graphgen.Shuffle(es, cfg.seed)
		batches := graphgen.Batches(es, delta)
		old := parallel.SetWorkers(p)
		d := timeIt(func() {
			for _, b := range batches {
				c.BatchDelete(b)
			}
		})
		parallel.SetWorkers(old)
		if p == 1 {
			base = d
		}
		fmt.Printf("%10d %12v %9.2fx\n", p, d.Round(time.Millisecond), float64(base)/float64(d))
	}
}

// ---------------------------------------------------------------- E6

func runE6(cfg config) {
	n := cfg.size(1<<17, 1<<13)
	header("e6", "batch-parallel Euler-tour-tree substrate",
		"k links / cuts / queries in O(k lg(1+n/k)) work  [Thm 2]")
	fmt.Printf("n=%d; per-op cost for batch links, cuts, connectivity queries\n", n)
	fmt.Printf("%10s %10s %10s %10s\n", "k", "link", "cut", "query")
	tree := graphgen.RandomSpanningTree(n, cfg.seed)
	for _, k := range []int{64, 1024, 16384, n / 4} {
		if k > n-1 {
			break
		}
		f := ett.New(n)
		f.BatchLink(tree[:n-1-k]) // leave k links to time
		rest := tree[n-1-k:]
		dLink := timeIt(func() { f.BatchLink(rest) })
		qs := graphgen.QueryBatch(n, k, cfg.seed)
		dQuery := timeIt(func() { f.BatchConnected(qs) })
		dCut := timeIt(func() { f.BatchCut(rest) })
		fmt.Printf("%10d %10s %10s %10s\n", k,
			nsPer(dLink, k), nsPer(dCut, k), nsPer(dQuery, k))
	}
}

// ---------------------------------------------------------------- E7

func runE7(cfg config) {
	n := cfg.size(1<<14, 1<<11)
	header("e7", "ablation: Algorithm 4 (simple) vs Algorithm 5 (interleaved)",
		"interleaved needs O(lg n) oracle rounds per level vs O(lg² n); fewer rounds, less re-examination")
	// Shatter-heavy workload: star + backbone path, delete all spokes.
	spokes := graphgen.Star(n)
	backbone := graphgen.RandomGraph(n, 2*n, cfg.seed)
	fmt.Printf("n=%d; star shatter + %d backbone edges; delete all %d spokes in one batch\n",
		n, len(backbone), len(spokes))
	fmt.Printf("%14s %12s %10s %10s %12s\n", "algorithm", "total", "rounds", "phases", "examined")
	for _, alg := range []struct {
		name string
		a    core.Algorithm
	}{{"simple", core.SearchSimple}, {"interleaved", core.SearchInterleaved}} {
		c := core.New(n, core.WithAlgorithm(alg.a))
		c.BatchInsert(spokes)
		c.BatchInsert(backbone)
		before := c.Stats()
		d := timeIt(func() { c.BatchDelete(spokes) })
		s := c.Stats()
		fmt.Printf("%14s %12v %10d %10d %12d\n", alg.name, d.Round(time.Millisecond),
			s.Rounds-before.Rounds, s.Phases-before.Phases, s.EdgesExamined-before.EdgesExamined)
	}
}

// ---------------------------------------------------------------- E8

func runE8(cfg config) {
	n := cfg.size(1<<16, 1<<13)
	m := 16 * n
	header("e8", "batch-dynamic vs static recompute",
		"static costs O(m+n) per batch regardless of Δ; dynamic wins for small batches  [§1]")
	fmt.Printf("n=%d, m=%d; per-batch cost of delete+query, batch size sweep\n", n, m)
	fmt.Printf("%10s %14s %14s %10s\n", "Δ", "dynamic", "static", "dyn/stat")
	for _, delta := range []int{1, 8, 64, 512, 4096, 32768} {
		rounds := 6
		// Each round deletes a fresh slice of delta edges; stop once the
		// sweep would run past the edge set (quick mode shrinks m).
		if rounds*delta > m {
			break
		}
		es := graphgen.RandomGraph(n, m, cfg.seed)
		c := buildConn(n, es, core.SearchInterleaved)
		st := static.New(n)
		st.BatchInsert(es)
		st.BatchConnected(graphgen.QueryBatch(n, 1, cfg.seed)) // settle
		qs := graphgen.QueryBatch(n, 256, cfg.seed)
		var dDyn, dStat time.Duration
		for r := 0; r < rounds; r++ {
			batch := es[r*delta : (r+1)*delta]
			dDyn += timeIt(func() {
				c.BatchDelete(batch)
				c.BatchConnected(qs)
			})
			dStat += timeIt(func() {
				st.BatchDelete(batch)
				st.BatchConnected(qs)
			})
		}
		fmt.Printf("%10d %14v %14v %9.2fx\n", delta,
			(dDyn / time.Duration(rounds)).Round(time.Microsecond),
			(dStat / time.Duration(rounds)).Round(time.Microsecond),
			float64(dDyn)/float64(dStat))
	}
}

// ---------------------------------------------------------------- E9

func runE9(cfg config) {
	n := cfg.size(1<<17, 1<<13)
	m := 2 * n
	header("e9", "insertion-only stream vs union-find baseline",
		"incremental union-find (Simsiri et al.) is the right tool when nothing is deleted; context for the fully-dynamic overhead")
	fmt.Printf("n=%d, m=%d random insertions in batches of 8192\n", n, m)
	es := graphgen.RandomGraph(n, m, cfg.seed)
	batches := graphgen.Batches(es, 8192)
	c := core.New(n)
	dCore := timeIt(func() {
		for _, b := range batches {
			c.BatchInsert(b)
		}
	})
	uf := unionfind.New(n)
	dUF := timeIt(func() {
		for _, e := range es {
			uf.Union(e.U, e.V)
		}
	})
	fmt.Printf("%18s %12s %10s\n", "structure", "total", "ns/edge")
	fmt.Printf("%18s %12v %10s\n", "batch-dynamic", dCore.Round(time.Millisecond), nsPer(dCore, m))
	fmt.Printf("%18s %12v %10s\n", "union-find", dUF.Round(time.Millisecond), nsPer(dUF, m))
	fmt.Printf("(union-find cannot delete; the gap is the price of full dynamism)\n")
}

// ---------------------------------------------------------------- E10

func runE10(cfg config) {
	n := cfg.size(1<<14, 1<<11)
	m := 4 * n
	header("e10", "level dynamics",
		"every edge descends ≤ lg n levels: total pushdowns bounded by m·lg n  [amortization]")
	es := graphgen.RandomGraph(n, m, cfg.seed)
	c := buildConn(n, es, core.SearchInterleaved)
	graphgen.Shuffle(es, cfg.seed)
	// Delete half the edges in small batches to force deep searches.
	for _, b := range graphgen.Batches(es[:m/2], 32) {
		c.BatchDelete(b)
	}
	s := c.Stats()
	lgn := 0
	for v := n - 1; v > 0; v >>= 1 {
		lgn++
	}
	bound := int64(m) * int64(lgn)
	fmt.Printf("n=%d, m=%d, deleted %d edges in batches of 32\n", n, m, m/2)
	fmt.Printf("non-tree pushdowns: %d, tree pushdowns: %d, bound m·lg n = %d (%.1f%% used)\n",
		s.Pushdowns, s.TreePushes, bound,
		100*float64(s.Pushdowns+s.TreePushes)/float64(bound))
	fmt.Printf("replacements: %d, search rounds: %d, level searches: %d\n",
		s.Replaced, s.Rounds, s.LevelSearches)
}

// ---------------------------------------------------------------- E11

func runE11(cfg config) {
	n := cfg.size(1<<17, 1<<13)
	ops := n / 4
	header("e11", "sequence substrate ablation: treap vs skip list",
		"both give O(lg n) expected split/join/rank; the paper uses the skip list, this library's ETT uses the treap")
	fmt.Printf("n=%d elements, %d random rotate (split+join+join) operations\n", n, ops)
	rng := func(seed int64) func() int64 {
		s := uint64(seed)
		return func() int64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int64(s % uint64(n))
		}
	}
	// Treap.
	var troot *treap.Node
	tnodes := make([]*treap.Node, n)
	for i := 0; i < n; i++ {
		tnodes[i] = treap.NewNode(treap.Value{Cnt: 1}, i)
		troot = treap.Join(troot, tnodes[i])
	}
	next := rng(cfg.seed)
	dTreap := timeIt(func() {
		for i := 0; i < ops; i++ {
			x := tnodes[next()]
			a, b := treap.SplitBefore(x)
			troot = treap.Join(b, a)
		}
	})
	// Skip list.
	sl := skiplist.NewList()
	snodes := make([]*skiplist.Node, n)
	for i := 0; i < n; i++ {
		snodes[i] = skiplist.NewNode(skiplist.Value{Cnt: 1}, i)
		skiplist.Append(sl, snodes[i])
	}
	next = rng(cfg.seed)
	dSkip := timeIt(func() {
		for i := 0; i < ops; i++ {
			x := snodes[next()]
			a, b := skiplist.SplitBefore(x)
			nl := skiplist.NewList()
			skiplist.Join(nl, b)
			skiplist.Join(nl, a)
			sl = nl
		}
	})
	// Rank queries.
	next = rng(cfg.seed + 1)
	dTreapIdx := timeIt(func() {
		for i := 0; i < ops; i++ {
			_ = treap.Index(tnodes[next()])
		}
	})
	next = rng(cfg.seed + 1)
	dSkipIdx := timeIt(func() {
		for i := 0; i < ops; i++ {
			_ = skiplist.Index(snodes[next()])
		}
	})
	fmt.Printf("%12s %14s %14s\n", "operation", "treap", "skip list")
	fmt.Printf("%12s %14s %14s\n", "rotate", nsPer(dTreap, ops), nsPer(dSkip, ops))
	fmt.Printf("%12s %14s %14s\n", "rank", nsPer(dTreapIdx, ops), nsPer(dSkipIdx, ops))
}

// ---------------------------------------------------------------- E12

func runE12(cfg config) {
	n := cfg.size(1<<16, 1<<12)
	opsTotal := 1 << 17
	if cfg.quick {
		opsTotal = 1 << 13
	}
	header("e12", "concurrent coalescing front-end (conn.Batcher)",
		"group commit grows the realized batch size Δ with clients and window; per-op cost falls as O(lg(1+n/Δ))  [Thm 1]")
	fmt.Printf("n=%d; closed-loop clients issue ≤%d mixed ops (40%% insert / 25%% delete / 35%% query)\n", n, opsTotal)
	fmt.Printf("%10s %10s %12s %12s %10s %10s %10s\n",
		"clients", "window", "total", "ops/sec", "epochs", "avgΔ", "maxΔ")
	for _, clients := range []int{4, 16, 64} {
		for _, window := range []time.Duration{100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
			g := conn.New(n)
			// Preload a sparse base graph so queries and deletes have
			// structure to work against.
			base := graphgen.RandomGraph(n, n/2, cfg.seed)
			out := make([]conn.Edge, len(base))
			for i, e := range base {
				out[i] = conn.Edge{U: e.U, V: e.V}
			}
			g.InsertEdges(out)
			b := conn.NewBatcher(g, conn.WithMaxDelay(window), conn.WithMaxBatch(1<<16))
			// Closed-loop clients bound each epoch to ~clients ops, so a
			// cell costs ≈ ops/clients windows of wall time. Cap the op
			// count so no cell spends more than ~2s just waiting out its
			// window (the throughput *rate* is unaffected).
			ops := opsTotal
			if maxOps := clients * int(2*time.Second/window); ops > maxOps {
				ops = maxOps
			}
			perClient := ops / clients
			var wg sync.WaitGroup
			d := timeIt(func() {
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
						for i := 0; i < perClient; i++ {
							u := int32(rng.Intn(n))
							v := int32(rng.Intn(n))
							switch r := rng.Intn(100); {
							case r < 40:
								b.Insert(u, v)
							case r < 65:
								b.Delete(u, v)
							default:
								b.Connected(u, v)
							}
						}
					}(c)
				}
				wg.Wait()
				b.Close()
			})
			s := b.Stats()
			fmt.Printf("%10d %10v %12d %12.0f %10d %10.1f %10d\n",
				clients, window, s.Ops, float64(s.Ops)/d.Seconds(),
				s.Epochs, s.AvgEpoch(), s.MaxEpoch)
		}
	}
	fmt.Printf("(closed-loop clients bound Δ by the number in flight; longer windows only pay off\n")
	fmt.Printf(" once enough concurrent callers keep the staging buffer fed)\n")
}

// ---------------------------------------------------------------- E14

func runE14(cfg config) {
	n := cfg.size(1<<15, 1<<12)
	opsTotal := 1 << 15
	if cfg.quick {
		opsTotal = 1 << 12
	}
	const clients = 16
	rec := newRecorder(cfg, "e14", "durable epochs: WAL group-commit overhead (WithDurability)",
		"one fsync per mutating epoch, amortized over the coalesced batch — per-op durability cost shrinks as coalescing grows the epochs")
	dir, err := os.MkdirTemp("", "benchconn-e14-*")
	if err != nil {
		fmt.Printf("skipping e14: %v\n", err)
		return
	}
	defer os.RemoveAll(dir)
	fmt.Printf("n=%d; %d closed-loop clients issue %d mixed ops (50%% insert / 30%% delete / 20%% query)\n", n, clients, opsTotal)
	fmt.Printf("%10s %10s %12s %10s %10s %12s %12s\n",
		"window", "durable", "ops/sec", "epochs", "fsyncs", "µs-fs/epoch", "walKB")
	for _, window := range []time.Duration{100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		var memRate float64
		for _, durable := range []bool{false, true} {
			g := conn.New(n)
			base := graphgen.RandomGraph(n, n/2, cfg.seed)
			out := make([]conn.Edge, len(base))
			for i, e := range base {
				out[i] = conn.Edge{U: e.U, V: e.V}
			}
			g.InsertEdges(out)
			opts := []conn.BatcherOption{conn.WithMaxDelay(window), conn.WithMaxBatch(1 << 16)}
			if durable {
				sub := filepath.Join(dir, fmt.Sprintf("w%v", window))
				os.RemoveAll(sub)
				opts = append(opts, conn.WithDurability(sub))
			}
			b := conn.NewBatcher(g, opts...)
			ops := opsTotal
			if maxOps := clients * int(2*time.Second/window); ops > maxOps {
				ops = maxOps
			}
			perClient := ops / clients
			var wg sync.WaitGroup
			d := timeIt(func() {
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
						for i := 0; i < perClient; i++ {
							u := int32(rng.Intn(n))
							v := int32(rng.Intn(n))
							switch r := rng.Intn(100); {
							case r < 50:
								b.Insert(u, v)
							case r < 80:
								b.Delete(u, v)
							default:
								b.Connected(u, v)
							}
						}
					}(c)
				}
				wg.Wait()
				b.Close()
			})
			s := b.Stats()
			rate := float64(s.Ops) / d.Seconds()
			perEpoch := "-"
			if s.WALRecords > 0 {
				perEpoch = fmt.Sprintf("%12.0f", float64(s.WALAppendTime.Microseconds())/float64(s.WALRecords))
			}
			fmt.Printf("%10v %10v %12.0f %10d %10d %12s %12d\n",
				window, durable, rate, s.Epochs, s.WALRecords, perEpoch, s.WALBytes/1024)
			metrics := map[string]any{
				"ops_per_sec": rate, "epochs": s.Epochs,
				"wal_records": s.WALRecords, "wal_bytes": s.WALBytes,
				"fsyncs": s.WALFsyncs,
			}
			if durable {
				if memRate > 0 {
					fmt.Printf("%10s durable/mem throughput ratio: %.2f\n", "", rate/memRate)
					metrics["durable_mem_ratio"] = rate / memRate
				}
			} else {
				memRate = rate
			}
			rec.row(map[string]any{"window": window.String(), "durable": durable}, metrics)
		}
	}
	rec.flush()
	fmt.Printf("(the fsync is paid once per mutating epoch before any caller unblocks; a wider\n")
	fmt.Printf(" window amortizes it over more coalesced operations — Theorem 1's batching\n")
	fmt.Printf(" argument applied to the disk)\n")
}

// ---------------------------------------------------------------- E18

func runE18(cfg config) {
	// n is kept small on purpose: this experiment measures the durability
	// pipeline (fsync scheduling and record encoding), and a large graph
	// would bury the fsync share of epoch cost under structure-mutation CPU.
	n := cfg.size(1<<13, 1<<12)
	opsTotal := 1 << 15
	if cfg.quick {
		opsTotal = 1 << 11
	}
	const (
		clients   = 128
		maxBatch  = 8
		window    = 50 * time.Microsecond
		groupWait = 2 * time.Millisecond
	)
	rec := newRecorder(cfg, "e18", "durability pipeline: WAL codec × group-commit fsync",
		"the v2 delta+varint codec shrinks bytes per fsync and WithGroupSync(k) amortizes the fsync over k epochs — durable throughput rises and acked still means fsynced; k=0 (adaptive) sizes the group from the fsync-latency EWMA: per-epoch syncs on a fast volume, wide groups on a slow one")
	dir, err := os.MkdirTemp("", "benchconn-e18-*")
	if err != nil {
		fmt.Printf("skipping e18: %v\n", err)
		return
	}
	defer os.RemoveAll(dir)
	// MaxBatch is deliberately small: a burst of client ops splits into many
	// small epochs instead of one big one, keeping several epochs in flight
	// between sync points — the regime group commit exists for (one fsync
	// per epoch would otherwise dominate the write path).
	fmt.Printf("n=%d; %d closed-loop clients issue %d mutations (60%% insert / 40%% delete)\n", n, clients, opsTotal)
	fmt.Printf("(MaxBatch=%d; coalescing window %v; group-commit ack bound %v)\n", maxBatch, window, groupWait)
	fmt.Printf("%6s %8s %12s %10s %12s %12s %12s %10s\n",
		"codec", "K", "ops/sec", "fsyncs", "bytes/fsync", "enc/rawKB", "p99-ack", "speedup")
	var base float64
	for _, codec := range []string{"v1", "v2"} {
		// k == 0 is the adaptive width: the scheduler picks K from the fsync
		// latency EWMA instead of a static knob (WithGroupSync(0, maxWait)).
		for _, k := range []int{1, 4, 16, 0} {
			sub := filepath.Join(dir, fmt.Sprintf("%s-k%d", codec, k))
			os.RemoveAll(sub)
			g := conn.New(n)
			base0 := graphgen.RandomGraph(n, n/2, cfg.seed)
			out := make([]conn.Edge, len(base0))
			for i, e := range base0 {
				out[i] = conn.Edge{U: e.U, V: e.V}
			}
			g.InsertEdges(out)
			opts := []conn.BatcherOption{
				conn.WithMaxDelay(window), conn.WithMaxBatch(maxBatch),
				conn.WithDurability(sub), conn.WithWALCodec(codec),
			}
			if k != 1 {
				opts = append(opts, conn.WithGroupSync(k, groupWait))
			}
			b := conn.NewBatcher(g, opts...)
			perClient := opsTotal / clients
			lats := make([][]time.Duration, clients)
			var wg sync.WaitGroup
			d := timeIt(func() {
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
						lat := make([]time.Duration, 0, perClient)
						for i := 0; i < perClient; i++ {
							u := int32(rng.Intn(n))
							v := int32(rng.Intn(n))
							t0 := time.Now()
							if rng.Intn(100) < 60 {
								b.Insert(u, v)
							} else {
								b.Delete(u, v)
							}
							lat = append(lat, time.Since(t0))
						}
						lats[c] = lat
					}(c)
				}
				wg.Wait()
				b.Close()
			})
			s := b.Stats()
			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			var p99 time.Duration
			if len(all) > 0 {
				p99 = all[len(all)*99/100]
			}
			rate := float64(s.Ops) / d.Seconds()
			fsyncs := s.WALFsyncs
			bytesPerFsync := float64(0)
			if fsyncs > 0 {
				bytesPerFsync = float64(s.WALBytes) / float64(fsyncs)
			}
			speedup := "-"
			if codec == "v1" && k == 1 {
				base = rate
			} else if base > 0 {
				speedup = fmt.Sprintf("%9.2fx", rate/base)
			}
			kLabel := fmt.Sprintf("%d", k)
			if k == 0 {
				// The adaptive row reports where the EWMA policy settled.
				kLabel = fmt.Sprintf("auto(%d)", s.GroupSyncWidth)
			}
			fmt.Printf("%6s %8s %12.0f %10d %12.0f %6d/%-5d %12v %10s\n",
				codec, kLabel, rate, fsyncs, bytesPerFsync,
				s.WALBytes/1024, s.WALRawBytes/1024, p99.Round(time.Microsecond), speedup)
			metrics := map[string]any{
				"ops_per_sec": rate, "epochs": s.Epochs,
				"wal_records": s.WALRecords, "wal_bytes": s.WALBytes,
				"wal_raw_bytes": s.WALRawBytes, "fsyncs": fsyncs,
				"fsyncs_saved": s.WALFsyncsSaved, "bytes_per_fsync": bytesPerFsync,
				"p99_ack_us": float64(p99.Nanoseconds()) / 1e3,
			}
			if k == 0 {
				metrics["group_sync_width"] = s.GroupSyncWidth
			}
			rec.row(
				map[string]any{"codec": codec, "group_sync_k": k},
				metrics)
		}
	}
	rec.flush()
	fmt.Printf("(bytes/fsync falls with the v2 codec — varint deltas in place of fixed-width\n")
	fmt.Printf(" pairs — and with K>1 one fsync covers up to K epochs; the p99 column is the\n")
	fmt.Printf(" acked latency ceiling the group-commit window trades for the amortization)\n")
}

// ---------------------------------------------------------------- E13

func runE13(cfg config) {
	n := cfg.size(1<<16, 1<<12)
	header("e13", "read tiers under writer load (conn.Batcher)",
		"queries split out of the write pipeline: ReadNow skips the coalescing window, ReadRecent is two array loads — read throughput decouples from epoch throughput")
	dur := 600 * time.Millisecond
	if cfg.quick {
		dur = 150 * time.Millisecond
	}
	const readerGoroutines = 4
	fmt.Printf("n=%d; %d reader goroutines per tier, %v per cell; writers insert/delete random edges\n", n, readerGoroutines, dur)
	fmt.Printf("(each row is one run: its write rate was measured under that tier's read load)\n")
	fmt.Printf("%10s %12s %14s %12s %12s\n",
		"writers", "tier", "reads/s", "writes/s", "publishes")
	tierName := []string{"Connected", "ReadNow", "ReadRecent"}
	for _, writers := range []int{0, 2, 8} {
		for tier := 0; tier < 3; tier++ {
			g := conn.New(n)
			base := graphgen.RandomGraph(n, n/2, cfg.seed)
			out := make([]conn.Edge, len(base))
			for i, e := range base {
				out[i] = conn.Edge{U: e.U, V: e.V}
			}
			g.InsertEdges(out)
			b := conn.NewBatcher(g, conn.WithMaxDelay(200*time.Microsecond), conn.WithMaxBatch(1<<14))

			stop := make(chan struct{})
			var wg sync.WaitGroup
			var writes atomic.Int64
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						u := int32(rng.Intn(n))
						v := int32(rng.Intn(n))
						if rng.Intn(3) == 0 {
							b.Delete(u, v)
						} else {
							b.Insert(u, v)
						}
						writes.Add(1)
					}
				}(w)
			}
			var reads atomic.Int64
			for r := 0; r < readerGoroutines; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(cfg.seed + 1000 + int64(r)))
					local := int64(0)
					for {
						select {
						case <-stop:
							reads.Add(local)
							return
						default:
						}
						u := int32(rng.Intn(n))
						v := int32(rng.Intn(n))
						switch tier {
						case 0:
							b.Connected(u, v)
						case 1:
							b.ReadNow(u, v)
						default:
							b.ReadRecent(u, v)
						}
						local++
						if local&1023 == 0 {
							// The lock-free tiers never block; yield so the
							// dispatcher and writers are not starved when
							// readers outnumber cores.
							runtime.Gosched()
						}
					}
				}(r)
			}
			time.Sleep(dur)
			close(stop)
			wg.Wait()
			fmt.Printf("%10d %12s %14.0f %12.0f %12d\n",
				writers, tierName[tier],
				float64(reads.Load())/dur.Seconds(),
				float64(writes.Load())/dur.Seconds(),
				b.Stats().SnapshotPublishes)
			b.Close()
		}
	}
	fmt.Printf("(Connected pays the coalescing window per query; ReadNow pays a read lock and a\n")
	fmt.Printf(" root walk; ReadRecent pays two array loads against the last published epoch)\n")
}

// ---------------------------------------------------------------- E16

func runE16(cfg config) {
	n := cfg.size(1<<14, 1<<11)
	dur := 400 * time.Millisecond
	if cfg.quick {
		dur = 120 * time.Millisecond
	}
	const readerGoroutines = 4
	header("e16", "replication: ReadRecent throughput vs replica count under writer load",
		"the WAL is a replayable epoch stream; shipping it to followers scales the bounded-stale read tier horizontally while writes stay on one primary")
	dataDir, err := os.MkdirTemp("", "benchconn-e16-*")
	if err != nil {
		fmt.Printf("skipping e16: %v\n", err)
		return
	}
	defer os.RemoveAll(dataDir)

	primary, err := server.New(server.Options{
		DataDir: dataDir, MaxDelay: 200 * time.Microsecond, MaxBatch: 1 << 14,
	})
	if err != nil {
		fmt.Printf("skipping e16: %v\n", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("skipping e16: %v\n", err)
		return
	}
	go primary.Serve(ln)
	defer primary.Shutdown()
	primaryAddr := ln.Addr().String()

	admin, err := client.Dial(primaryAddr)
	if err != nil {
		fmt.Printf("skipping e16: %v\n", err)
		return
	}
	defer admin.Close()
	if err := admin.Create("g", n, true); err != nil {
		fmt.Printf("skipping e16: %v\n", err)
		return
	}
	nsAdmin := admin.Namespace("g")
	base := graphgen.RandomGraph(n, n/2, cfg.seed)
	for _, b := range graphgen.Batches(base, 1<<12) {
		es := make([]conn.Edge, len(b))
		for i, e := range b {
			es[i] = conn.Edge{U: e.U, V: e.V}
		}
		if _, err := nsAdmin.InsertEdges(es); err != nil {
			fmt.Printf("skipping e16: preload: %v\n", err)
			return
		}
	}

	// waitApplied polls a replica until it has applied the primary seq the
	// admin client last observed.
	waitApplied := func(addr string) bool {
		target := admin.ObservedSeq("g")
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			cl, err := client.Dial(addr)
			if err == nil {
				st, err := cl.Namespace("g").Stats()
				cl.Close()
				if err == nil && st.AppliedSeq >= target {
					return true
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}

	fmt.Printf("n=%d; durable primary + R replica servers in-process; %d ReadRecent readers, %v per cell\n",
		n, readerGoroutines, dur)
	fmt.Printf("%10s %10s %14s %12s %12s %10s\n",
		"replicas", "writers", "reads/s", "writes/s", "shipped", "maxlag")
	for _, replicaCount := range []int{0, 1, 2} {
		var replicaSrvs []*server.Server
		var replicaAddrs []string
		ok := true
		for i := 0; i < replicaCount; i++ {
			r, err := server.New(server.Options{ReplicaOf: primaryAddr})
			if err != nil {
				fmt.Printf("skipping replicas=%d: %v\n", replicaCount, err)
				ok = false
				break
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Printf("skipping replicas=%d: %v\n", replicaCount, err)
				r.Shutdown()
				ok = false
				break
			}
			go r.Serve(rln)
			replicaSrvs = append(replicaSrvs, r)
			replicaAddrs = append(replicaAddrs, rln.Addr().String())
			if !waitApplied(replicaAddrs[i]) {
				fmt.Printf("skipping replicas=%d: replica never converged\n", replicaCount)
				ok = false
				break
			}
		}
		if ok {
			for _, writers := range []int{0, 2} {
				readCl, err := client.Dial(primaryAddr, client.WithReplicas(replicaAddrs...))
				if err != nil {
					fmt.Printf("skipping cell: %v\n", err)
					continue
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				var reads, writes atomic.Int64
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
						ns := admin.Namespace("g")
						for {
							select {
							case <-stop:
								return
							default:
							}
							u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
							if rng.Intn(3) == 0 {
								ns.Delete(u, v)
							} else {
								ns.Insert(u, v)
							}
							writes.Add(1)
							// Single-CPU CI: writers must not starve the
							// dispatcher or the replica apply loops.
							runtime.Gosched()
						}
					}(w)
				}
				for r := 0; r < readerGoroutines; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(cfg.seed + 100 + int64(r)))
						ns := readCl.Namespace("g")
						local := int64(0)
						for {
							select {
							case <-stop:
								reads.Add(local)
								return
							default:
							}
							if _, err := ns.ReadRecent(int32(rng.Intn(n)), int32(rng.Intn(n))); err == nil {
								local++
							}
							runtime.Gosched()
						}
					}(r)
				}
				time.Sleep(dur)
				close(stop)
				wg.Wait()
				st, _ := nsAdmin.Stats()
				fmt.Printf("%10d %10d %14.0f %12.0f %12d %10d\n",
					replicaCount, writers,
					float64(reads.Load())/dur.Seconds(),
					float64(writes.Load())/dur.Seconds(),
					st.LastShippedSeq, st.MaxFollowerLag)
				readCl.Close()
			}
		}
		for _, r := range replicaSrvs {
			r.Shutdown()
		}
	}
	fmt.Printf("(reads with bounded-staleness tolerance fan out over the replicas, fenced by the\n")
	fmt.Printf(" client's observed write seq; writes always hit the primary. On a multi-core host\n")
	fmt.Printf(" aggregate read throughput grows with replica count — a single-CPU container\n")
	fmt.Printf(" serializes primary, replicas and clients onto one core and understates it)\n")
}

// ---------------------------------------------------------------- E15

func runE15(cfg config) {
	n := cfg.size(1<<15, 1<<12)
	framesTotal := 1 << 10
	if cfg.quick {
		framesTotal = 1 << 7
	}
	const frameOps = 64
	rec := newRecorder(cfg, "e15", "network front-end: throughput vs connections vs pipeline depth",
		"in-flight frames block in the Batcher and coalesce into one epoch — network concurrency (conns × depth) grows Δ exactly like in-process concurrency")
	srv, err := server.New(server.Options{MaxDelay: time.Millisecond, MaxBatch: 1 << 16})
	if err != nil {
		fmt.Printf("skipping e15: %v\n", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("skipping e15: %v\n", err)
		return
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	addr := ln.Addr().String()

	admin, err := client.Dial(addr)
	if err != nil {
		fmt.Printf("skipping e15: %v\n", err)
		return
	}
	defer admin.Close()

	fmt.Printf("n=%d; loopback server; frames of %d mixed ops (60%% insert / 20%% delete / 20%% query)\n", n, frameOps)
	fmt.Printf("%8s %8s %12s %12s %10s %10s\n",
		"conns", "depth", "wire-ops", "ops/sec", "epochs", "avgΔ")
	cell := 0
	for _, conns := range []int{1, 2, 4} {
		for _, depth := range []int{1, 4, 16} {
			cell++
			nsName := fmt.Sprintf("bench%d", cell)
			if err := admin.Create(nsName, n, false); err != nil {
				fmt.Printf("skipping cell: %v\n", err)
				continue
			}
			cl, err := client.Dial(addr, client.WithConns(conns))
			if err != nil {
				fmt.Printf("skipping cell: %v\n", err)
				continue
			}
			// depth drivers per connection: the client round-robins frames
			// across its pool, so conns×depth concurrent callers keep about
			// `depth` frames in flight on each connection. Driver loops need
			// no explicit Gosched — every iteration blocks on a full wire
			// round trip, so the scheduler always gets the core back (the
			// e13 lesson applies to spinning readers, not blocking ones).
			drivers := conns * depth
			perDriver := framesTotal / drivers
			if perDriver == 0 {
				perDriver = 1
			}
			var wg sync.WaitGroup
			var opCount atomic.Int64
			d := timeIt(func() {
				for c := 0; c < drivers; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
						ns := cl.Namespace(nsName)
						group := make([]conn.Op, frameOps)
						for f := 0; f < perDriver; f++ {
							for i := range group {
								kind := conn.OpInsert
								switch x := rng.Intn(10); {
								case x < 2:
									kind = conn.OpDelete
								case x < 4:
									kind = conn.OpQuery
								}
								group[i] = conn.Op{Kind: kind,
									U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
							}
							if _, err := ns.Do(group); err != nil {
								fmt.Printf("driver error: %v\n", err)
								return
							}
							opCount.Add(int64(len(group)))
						}
					}(c)
				}
				wg.Wait()
			})
			st, err := cl.Namespace(nsName).Stats()
			if err != nil {
				fmt.Printf("stats: %v\n", err)
			}
			avg := "-"
			if st.Epochs > 0 {
				avg = fmt.Sprintf("%10.0f", float64(st.Ops)/float64(st.Epochs))
			}
			fmt.Printf("%8d %8d %12d %12.0f %10d %10s\n",
				conns, depth, opCount.Load(), float64(opCount.Load())/d.Seconds(),
				st.Epochs, avg)
			rec.row(
				map[string]any{"conns": conns, "depth": depth, "n": n},
				map[string]any{
					"ops": opCount.Load(), "seconds": d.Seconds(),
					"ops_per_sec": float64(opCount.Load()) / d.Seconds(),
					"epochs":      st.Epochs,
					"avg_epoch":   float64(st.Ops) / float64(max(st.Epochs, 1)),
				},
			)
			cl.Close()
			admin.Drop(nsName)
		}
	}
	fmt.Printf("(every in-flight frame is a blocked group in the Batcher; more connections and\n")
	fmt.Printf(" deeper pipelines mean more groups per epoch — the network analogue of e12's\n")
	fmt.Printf(" concurrent callers. Single-CPU containers understate the separation: client,\n")
	fmt.Printf(" server and dispatcher all share one core)\n")
	rec.flush()
}

// ---------------------------------------------------------------- E17

func runE17(cfg config) {
	n := cfg.size(1<<14, 1<<11)
	framesTotal := 1 << 11
	if cfg.quick {
		framesTotal = 1 << 8
	}
	const (
		frameOps = 32
		drivers  = 8
	)
	rec := newRecorder(cfg, "e17", "sharded writes: durable throughput vs partition count",
		"hash-partitioning the vertex space runs one epoch pipeline per shard — k WAL fsync streams overlap, so mostly-intra-shard write throughput rises with k")

	data, err := os.MkdirTemp("", "benchconn-e17-*")
	if err != nil {
		fmt.Printf("skipping e17: %v\n", err)
		return
	}
	defer os.RemoveAll(data)
	// Small epochs keep the workload fsync-bound: with MaxBatch capped, a
	// single engine commits its WAL serially while k shards commit k logs
	// concurrently — the separation under test. MaxDelay stays tiny so the
	// coalescing window is not the bottleneck.
	srv, err := server.New(server.Options{
		DataDir: data, MaxBatch: 64, MaxDelay: 100 * time.Microsecond,
	})
	if err != nil {
		fmt.Printf("skipping e17: %v\n", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("skipping e17: %v\n", err)
		return
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	addr := ln.Addr().String()

	admin, err := client.Dial(addr)
	if err != nil {
		fmt.Printf("skipping e17: %v\n", err)
		return
	}
	defer admin.Close()

	fmt.Printf("n=%d; durable loopback namespaces; %d drivers × frames of %d mutations\n",
		n, drivers, frameOps)
	fmt.Printf("(~95%% intra-shard edges, 70%% insert / 30%% delete, MaxBatch=64)\n")
	fmt.Printf("%8s %12s %12s %10s %10s %12s\n",
		"shards", "wire-ops", "ops/sec", "epochs", "walrecs", "speedup")
	var base float64
	for _, k := range []int{1, 2, 4} {
		nsName := fmt.Sprintf("shard%d", k)
		if err := admin.CreateSharded(nsName, n, true, k); err != nil {
			fmt.Printf("skipping k=%d: %v\n", k, err)
			continue
		}
		// Per-partition vertex pools so ~95% of generated edges stay
		// intra-shard: cross-shard edges ride the boundary engine and would
		// serialize there if they dominated.
		parts := make([][]int32, k)
		for u := int32(0); u < int32(n); u++ {
			s := client.Partition(u, k)
			parts[s] = append(parts[s], u)
		}
		cl, err := client.Dial(addr, client.WithConns(2))
		if err != nil {
			fmt.Printf("skipping k=%d: %v\n", k, err)
			continue
		}
		perDriver := framesTotal / drivers
		var wg sync.WaitGroup
		var opCount atomic.Int64
		d := timeIt(func() {
			for c := 0; c < drivers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
					ns := cl.Namespace(nsName)
					group := make([]conn.Op, frameOps)
					for f := 0; f < perDriver; f++ {
						for i := range group {
							kind := conn.OpInsert
							if rng.Intn(10) < 3 {
								kind = conn.OpDelete
							}
							var u, v int32
							if rng.Intn(100) < 95 {
								vs := parts[rng.Intn(k)]
								u, v = vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
							} else {
								u, v = int32(rng.Intn(n)), int32(rng.Intn(n))
							}
							group[i] = conn.Op{Kind: kind, U: u, V: v}
						}
						if _, err := ns.Do(group); err != nil {
							fmt.Printf("driver error: %v\n", err)
							return
						}
						opCount.Add(int64(len(group)))
					}
				}(c)
			}
			wg.Wait()
		})
		st, err := cl.Namespace(nsName).Stats()
		if err != nil {
			fmt.Printf("stats: %v\n", err)
		}
		opsSec := float64(opCount.Load()) / d.Seconds()
		if k == 1 {
			base = opsSec
		}
		speedup := "-"
		if base > 0 {
			speedup = fmt.Sprintf("%11.2fx", opsSec/base)
		}
		fmt.Printf("%8d %12d %12.0f %10d %10d %12s\n",
			k, opCount.Load(), opsSec, st.Epochs, st.WALRecords, speedup)
		rec.row(
			map[string]any{"shards": k, "n": n, "drivers": drivers, "frame_ops": frameOps},
			map[string]any{
				"ops": opCount.Load(), "seconds": d.Seconds(),
				"ops_per_sec": opsSec, "epochs": st.Epochs,
				"wal_records": st.WALRecords,
				"speedup_vs_1": func() float64 {
					if base > 0 {
						return opsSec / base
					}
					return 1
				}(),
			},
		)
		cl.Close()
		admin.Drop(nsName)
	}
	fmt.Printf("(every mutating epoch costs one fsync; a single engine pays them serially while\n")
	fmt.Printf(" k shard engines overlap k WAL streams — throughput scales until the CPU, not\n")
	fmt.Printf(" the log, is the bottleneck. Cross-shard edges ride the boundary engine)\n")
	rec.flush()
}
