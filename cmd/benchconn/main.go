// Benchconn regenerates the paper's evaluation. "Parallel Batch-Dynamic
// Graph Connectivity" (SPAA 2019) is a theory paper — its results are the
// cost bounds of Theorems 1-9, not measurement tables — so each experiment
// here measures the bound's empirical shape: how per-operation cost moves
// with batch size, input size, and worker count, and how the algorithm
// compares to the baselines the paper positions itself against (sequential
// HDT, static recompute, incremental union-find).
//
//	go run ./cmd/benchconn -exp all          # everything, default sizes
//	go run ./cmd/benchconn -exp e3 -n 65536  # one experiment, custom n
//	go run ./cmd/benchconn -quick            # smaller sizes for smoke runs
//
// Experiment index (see DESIGN.md §4 for the map to the paper):
//
//	e1  batch connectivity queries: work O(k lg(1+n/k))      [Theorem 3]
//	e2  batch insertions: work O(k lg(1+n/k))                [Theorem 4]
//	e3  batch deletions vs Δ: work O(lg n lg(1+n/Δ))/edge    [Theorem 9]
//	e4  parallel structure vs sequential HDT                 [Theorem 6]
//	e5  speedup vs worker count P                            [depth bounds]
//	e6  batch-parallel ETT substrate ops                     [Theorem 2]
//	e7  ablation: Algorithm 4 vs Algorithm 5                 [§3 vs §4]
//	e8  batch-dynamic vs static recompute crossover          [§1 motivation]
//	e9  insertion-only vs union-find baseline                [related work]
//	e10 level dynamics: pushdown totals vs the m·lg n bound  [analysis]
//	e11 sequence substrate ablation: treap vs skip list      [§2.1 substrate]
//	e12 concurrent coalescing front-end (conn.Batcher)       [Thm 1 under traffic]
//	e13 read tiers vs writer load (Connected/ReadNow/ReadRecent)  [read path]
//	e14 durable epochs: WAL group-commit overhead            [WithDurability]
//	e15 network front-end: conns × pipeline depth            [cmd/connserver]
//	e16 replication: read throughput vs replica count        [internal/repl]
//	e17 sharded writes: throughput vs partition count        [internal/shard]
//	e18 durability pipeline: WAL codec × group-commit fsync  [wal codecs, WithGroupSync]
//
// Experiments that sweep a parameter also emit a machine-readable
// BENCH_<experiment>.json result file (see -out) with one row per measured
// cell, so plots and regression checks need not scrape the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e18, comma separated, or 'all')")
	n := flag.Int("n", 0, "override vertex count (0 = per-experiment default)")
	quick := flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", ".", "directory for BENCH_<experiment>.json result files (empty = don't write)")
	flag.Parse()

	cfg := config{n: *n, quick: *quick, seed: *seed, outDir: *out}
	all := map[string]func(config){
		"e1": runE1, "e2": runE2, "e3": runE3, "e4": runE4, "e5": runE5,
		"e6": runE6, "e7": runE7, "e8": runE8, "e9": runE9, "e10": runE10,
		"e11": runE11, "e12": runE12, "e13": runE13, "e14": runE14, "e15": runE15,
		"e16": runE16, "e17": runE17, "e18": runE18,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18"}

	want := map[string]bool{}
	if *exp == "all" {
		for _, id := range order {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (want e1..e18)\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}
	for _, id := range order {
		if want[id] {
			all[id](cfg)
		}
	}
}

type config struct {
	n      int
	quick  bool
	seed   int64
	outDir string
}

// size picks the experiment's n: explicit -n wins, then quick/full defaults.
func (c config) size(full, quickN int) int {
	if c.n > 0 {
		return c.n
	}
	if c.quick {
		return quickN
	}
	return full
}

func header(id, title, claim string) {
	fmt.Printf("\n=== %s: %s ===\n", strings.ToUpper(id), title)
	fmt.Printf("claim: %s\n", claim)
}
