package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// benchRow is one measured cell of an experiment: the swept parameters and
// the metrics observed at that point.
type benchRow struct {
	Params  map[string]any `json:"params"`
	Metrics map[string]any `json:"metrics"`
}

// recorder accumulates an experiment's rows and writes them as a
// machine-readable BENCH_<experiment>.json next to the human-readable
// stdout tables, so plots and regression checks can consume the runs
// without scraping text.
type recorder struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Claim      string     `json:"claim"`
	Quick      bool       `json:"quick"`
	Seed       int64      `json:"seed"`
	Rows       []benchRow `json:"rows"`

	dir string
}

// newRecorder starts a result file for one experiment and prints the
// experiment header. Every experiment that records rows ends with flush().
func newRecorder(cfg config, id, title, claim string) *recorder {
	header(id, title, claim)
	return &recorder{
		Experiment: id, Title: title, Claim: claim,
		Quick: cfg.quick, Seed: cfg.seed, dir: cfg.outDir,
	}
}

// row records one measured cell.
func (r *recorder) row(params, metrics map[string]any) {
	r.Rows = append(r.Rows, benchRow{Params: params, Metrics: metrics})
}

// flush writes BENCH_<experiment>.json (pretty-printed, trailing newline)
// into the configured output directory. A -quick run writes
// BENCH_<experiment>.quick.json instead, so a smoke run can never
// overwrite — or be mistaken for — a full measurement. Failures are
// reported, not fatal — the stdout tables already carry the numbers.
func (r *recorder) flush() {
	if r.dir == "" || len(r.Rows) == 0 {
		return
	}
	name := fmt.Sprintf("BENCH_%s.json", r.Experiment)
	if r.Quick {
		name = fmt.Sprintf("BENCH_%s.quick.json", r.Experiment)
	}
	path := filepath.Join(r.dir, name)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchconn: encoding %s: %v\n", path, err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchconn: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("(wrote %s)\n", path)
}
