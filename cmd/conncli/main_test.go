package main

import (
	"strings"
	"testing"
)

func runScript(t *testing.T, script string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(strings.NewReader(script), &out)
	return out.String(), err
}

func TestBasicScript(t *testing.T) {
	got, err := runScript(t, `
# build a triangle and probe it
n 10
+ 0 1
+ 1 2
? 0 2
- 1 2
+ 0 2   # replacement path
? 1 2
components
size 0
`)
	if err != nil {
		t.Fatal(err)
	}
	want := "true\ntrue\n8\n3\n"
	if got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
}

func TestBatchingSemantics(t *testing.T) {
	// Insert and delete of the same edge in one pending window: deletes
	// apply first, so the edge survives.
	got, err := runScript(t, `
n 4
+ 0 1
flush
- 0 1
+ 0 1
? 0 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "true\n" {
		t.Fatalf("output %q", got)
	}
}

func TestStatsAndFlushAtEOF(t *testing.T) {
	got, err := runScript(t, `
n 5
+ 0 1
stats
+ 1 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "edges=1 inserts=1") {
		t.Fatalf("stats output %q", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		script string
		msg    string
	}{
		{"+ 0 1", "before 'n"},
		{"n 5\nn 6", "already declared"},
		{"n 0", "positive"},
		{"n 5\n+ 0 9", "out of range"},
		{"n 5\n+ 0", "missing argument"},
		{"n 5\n+ 0 x", "bad argument"},
		{"n 5\nbogus", "unknown command"},
	}
	for _, c := range cases {
		_, err := runScript(t, c.script)
		if err == nil || !strings.Contains(err.Error(), c.msg) {
			t.Fatalf("script %q: error %v, want containing %q", c.script, err, c.msg)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	got, err := runScript(t, "\n# comment only\nn 3\n\n+ 0 1 # trailing\n? 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if got != "true\n" {
		t.Fatalf("output %q", got)
	}
}
