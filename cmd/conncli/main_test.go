package main

import (
	"flag"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	conn "repro"
	"repro/internal/server"
)

var update = flag.Bool("update", false, "rewrite golden files with observed output")

func runScript(t *testing.T, script string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(strings.NewReader(script), &out, "", "", "default")
	return out.String(), err
}

func TestBasicScript(t *testing.T) {
	got, err := runScript(t, `
# build a triangle and probe it
n 10
+ 0 1
+ 1 2
? 0 2
- 1 2
+ 0 2   # replacement path
? 1 2
components
size 0
`)
	if err != nil {
		t.Fatal(err)
	}
	want := "true\ntrue\n8\n3\n"
	if got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
}

func TestBatchingSemantics(t *testing.T) {
	// Insert and delete of the same edge in one pending window: deletes
	// apply first, so the edge survives.
	got, err := runScript(t, `
n 4
+ 0 1
flush
- 0 1
+ 0 1
? 0 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "true\n" {
		t.Fatalf("output %q", got)
	}
}

func TestStatsAndFlushAtEOF(t *testing.T) {
	got, err := runScript(t, `
n 5
+ 0 1
stats
+ 1 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "edges=1 inserts=1") {
		t.Fatalf("stats output %q", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		script string
		msg    string
	}{
		{"+ 0 1", "before 'n"},
		{"n 5\nn 6", "already declared"},
		{"n 0", "positive"},
		{"n 5\n+ 0 9", "out of range"},
		{"n 5\n+ 0", "missing argument"},
		{"n 5\n+ 0 x", "bad argument"},
		{"n 5\nbogus", "unknown command"},
	}
	for _, c := range cases {
		_, err := runScript(t, c.script)
		if err == nil || !strings.Contains(err.Error(), c.msg) {
			t.Fatalf("script %q: error %v, want containing %q", c.script, err, c.msg)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	got, err := runScript(t, "\n# comment only\nn 3\n\n+ 0 1 # trailing\n? 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if got != "true\n" {
		t.Fatalf("output %q", got)
	}
}

// TestDurableGoldenScripts drives the full durable command loop — insert,
// delete, query, checkpoint, then a second session that restores the same
// -data directory — through stdin/stdout and compares each phase against
// its golden file. Regenerate with `go test ./cmd/conncli -run Golden -update`.
func TestDurableGoldenScripts(t *testing.T) {
	dataDir := t.TempDir()
	for _, phase := range []string{"durable_create", "durable_restore"} {
		script, err := os.ReadFile(filepath.Join("testdata", phase+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run(strings.NewReader(string(script)), &out, dataDir, "", "default"); err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		goldenPath := filepath.Join("testdata", phase+".golden")
		if *update {
			if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if out.String() != string(want) {
			t.Errorf("%s: output mismatch\n--- got ---\n%s--- want ---\n%s", phase, out.String(), want)
		}
	}
	// The WAL left behind by phase 2 must itself restore cleanly: the edge
	// added after the checkpoint lives only in the log tail.
	g, err := conn.Restore(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 || !g.Connected(2, 3) {
		t.Fatalf("final restore: edges=%d", g.NumEdges())
	}
}

// TestQueryGoldenScript drives the structural-query subcommands — khop,
// members, path, agg — against a local in-process graph and compares the
// output line-for-line. Regenerate with `go test ./cmd/conncli -run Golden -update`.
func TestQueryGoldenScript(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "query_local.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(strings.NewReader(string(script)), &out, "", "", "default"); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "query_local.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestCheckpointWithoutDataRejected(t *testing.T) {
	_, err := runScript(t, "n 4\ncheckpoint\n")
	if err == nil || !strings.Contains(err.Error(), "requires -data") {
		t.Fatalf("err = %v", err)
	}
}

func TestDurableFreshDirRequiresN(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run(strings.NewReader("? 0 1\n"), &out, dir, "", "default")
	if err == nil || !strings.Contains(err.Error(), "before 'n") {
		t.Fatalf("err = %v", err)
	}
}

func TestDurableRestoredDirRejectsN(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run(strings.NewReader("n 4\n+ 0 1\n"), &out, dir, "", "default"); err != nil {
		t.Fatal(err)
	}
	err := run(strings.NewReader("n 4\n"), &out, dir, "", "default")
	if err == nil || !strings.Contains(err.Error(), "already declared") {
		t.Fatalf("err = %v", err)
	}
}

// TestRemoteSession drives a live connserver through conncli's -addr mode:
// updates, queries, checkpoint, and the stats output with its replication
// block.
func TestRemoteSession(t *testing.T) {
	srv, err := server.New(server.Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	var out strings.Builder
	script := "n 16 durable\n+ 0 1\n+ 1 2\n? 0 2\n- 1 2\n? 0 2\ncheckpoint\nstats\n"
	if err := run(strings.NewReader(script), &out, "", ln.Addr().String(), "g"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "true\nfalse\nok\n") {
		t.Fatalf("remote query/checkpoint output:\n%s", got)
	}
	if !strings.Contains(got, "repl: subscribers=0") ||
		!strings.Contains(got, "wal: records=") {
		t.Fatalf("stats output missing wal/replication block:\n%s", got)
	}
	if !strings.Contains(got, "events: subscribers=0 delivered=0 dropped=0") {
		t.Fatalf("stats output missing event-hub block:\n%s", got)
	}

	// Local-only commands must fail loudly, not silently misreport.
	err = run(strings.NewReader("components\n"), &out, "", ln.Addr().String(), "g")
	if err == nil || !strings.Contains(err.Error(), "local-only") {
		t.Fatalf("remote components err = %v", err)
	}
}

// TestRemoteQueriesAndEvents drives the CmdQuery subcommands and a live
// watch/event subscription through -addr mode: the pair-watch must report
// the disconnection pushed by the server, with no polling in between.
func TestRemoteQueriesAndEvents(t *testing.T) {
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()

	var out strings.Builder
	script := `n 16
+ 0 1
+ 1 2
+ 2 3
khop 0 2
members 0
path 0 3
path 0 9
agg
watch 0 3
- 1 2
event
`
	if err := run(strings.NewReader(script), &out, "", ln.Addr().String(), "g"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := "0 1 2\n" + // khop 0 2
		"0 1 2 3\n" + // members 0
		"0 1 2 3\n" + // tree path 0->3
		"none\n" + // 0 and 9 disconnected
		"components=13 hist=[12 0 1]\n" + // {0..3} + 12 singletons
		"event pair-disconnected 0 3\n"
	if got != want {
		t.Fatalf("output:\n%s--- want ---\n%s", got, want)
	}

	// Stream commands are remote-only.
	for _, cmd := range []string{"watch 0 1", "event"} {
		var lout strings.Builder
		err := run(strings.NewReader("n 4\n"+cmd+"\n"), &lout, "", "", "default")
		if err == nil || !strings.Contains(err.Error(), "remote-only") {
			t.Fatalf("local %q err = %v", cmd, err)
		}
	}
}
