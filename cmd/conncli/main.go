// Conncli is a stream processor for dynamic connectivity: it reads a
// whitespace-separated command stream (file or stdin), applies updates in
// batches, and prints query answers. It is the shape of tool the paper's
// introduction motivates — ingesting bursts of graph changes while
// interleaving connectivity questions.
//
// Command language (one command per line; '#' starts a comment):
//
//	n <count>        declare the vertex universe (must come first)
//	+ <u> <v>        insert edge (buffered into the current batch)
//	- <u> <v>        delete edge (buffered)
//	? <u> <v>        connectivity query (flushes pending updates first)
//	flush            apply pending updates now
//	components       print the number of connected components
//	size <u>         print the size of u's component
//	stats            print internal counters
//
// Updates accumulate until a query/flush/EOF, then apply as two batches
// (deletions, then insertions), so a burst of '+'/'-' lines costs two
// parallel batch operations regardless of its length.
//
//	go run ./cmd/conncli workload.txt
//	generate-stream | go run ./cmd/conncli
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	conn "repro"
)

func main() {
	in := os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type session struct {
	g    *conn.Graph
	ins  []conn.Edge
	dels []conn.Edge
	out  io.Writer
}

func (s *session) flush() {
	if s.g == nil {
		return
	}
	if len(s.dels) > 0 {
		s.g.DeleteEdges(s.dels)
		s.dels = s.dels[:0]
	}
	if len(s.ins) > 0 {
		s.g.InsertEdges(s.ins)
		s.ins = s.ins[:0]
	}
}

func run(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	s := &session{out: out}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if err := s.exec(text); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	s.flush()
	return sc.Err()
}

func (s *session) exec(text string) error {
	fields := strings.Fields(text)
	cmd := fields[0]
	argN := func(i int) (int32, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("%s: missing argument %d", cmd, i)
		}
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return 0, fmt.Errorf("%s: bad argument %q", cmd, fields[i])
		}
		return int32(v), nil
	}
	if cmd != "n" && s.g == nil {
		return fmt.Errorf("%s before 'n <count>'", cmd)
	}
	switch cmd {
	case "n":
		v, err := argN(1)
		if err != nil {
			return err
		}
		if s.g != nil {
			return fmt.Errorf("universe already declared")
		}
		if v <= 0 {
			return fmt.Errorf("n must be positive")
		}
		s.g = conn.New(int(v))
	case "+", "-":
		u, err := argN(1)
		if err != nil {
			return err
		}
		v, err := argN(2)
		if err != nil {
			return err
		}
		if u < 0 || v < 0 || int(u) >= s.g.N() || int(v) >= s.g.N() {
			return fmt.Errorf("vertex out of range [0,%d)", s.g.N())
		}
		if cmd == "+" {
			s.ins = append(s.ins, conn.Edge{U: u, V: v})
		} else {
			s.dels = append(s.dels, conn.Edge{U: u, V: v})
		}
	case "?":
		u, err := argN(1)
		if err != nil {
			return err
		}
		v, err := argN(2)
		if err != nil {
			return err
		}
		s.flush()
		fmt.Fprintln(s.out, s.g.Connected(u, v))
	case "flush":
		s.flush()
	case "components":
		s.flush()
		fmt.Fprintln(s.out, s.g.NumComponents())
	case "size":
		u, err := argN(1)
		if err != nil {
			return err
		}
		s.flush()
		fmt.Fprintln(s.out, s.g.ComponentSize(u))
	case "stats":
		s.flush()
		st := s.g.Stats()
		fmt.Fprintf(s.out, "edges=%d inserts=%d deletes=%d replaced=%d pushdowns=%d\n",
			s.g.NumEdges(), st.Inserts, st.Deletes, st.Replaced, st.Pushdowns+st.TreePushes)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
