// Conncli is a stream processor for dynamic connectivity: it reads a
// whitespace-separated command stream (file or stdin), applies updates in
// batches, and prints query answers. It is the shape of tool the paper's
// introduction motivates — ingesting bursts of graph changes while
// interleaving connectivity questions.
//
// Command language (one command per line; '#' starts a comment):
//
//	n <count>        declare the vertex universe (must come first)
//	+ <u> <v>        insert edge (buffered into the current batch)
//	- <u> <v>        delete edge (buffered)
//	? <u> <v>        connectivity query (flushes pending updates first)
//	flush            apply pending updates now
//	components       print the number of connected components
//	size <u>         print the size of u's component
//	khop <u> <k>     print the vertices within k hops of u, ascending
//	members <u>      print the vertices of u's component, ascending
//	path <u> <v>     print a spanning-forest path u..v, or "none"
//	agg              print the component count and log2 size histogram
//	watch <u> <v>    subscribe to {u,v} connectivity events (-addr only)
//	watch comps      subscribe to component merge/split events (-addr only)
//	event            flush, then print the next subscription event (-addr only)
//	stats            print internal counters
//	checkpoint       durably snapshot the graph and truncate the WAL (-data only)
//
// Updates accumulate until a query/flush/EOF, then apply as two batches
// (deletions, then insertions), so a burst of '+'/'-' lines costs two
// parallel batch operations regardless of its length.
//
// With -data DIR the session is durable: every applied batch is fsynced to
// a write-ahead log in DIR before it is acknowledged, 'checkpoint' bounds
// the log, and a later invocation with the same -data restores the graph
// (checkpoint + WAL tail) before reading its command stream — in that case
// the universe is already declared and 'n' must be omitted. A durable
// session's 'stats' adds a WAL line (records, bytes, checkpoints, and the
// log's floor/last sequence numbers).
//
// With -addr HOST:PORT the same command stream drives a remote connserver
// namespace (-ns, default "default") through the client package instead of
// a local graph: 'n <count> [durable]' creates the namespace (omit it if it
// already exists), updates ride batched CmdBatch frames, '?' is a
// linearized query, the structural queries (khop/members/path/agg) ride
// CmdQuery frames, 'watch'/'event' drive a live CmdSubscribeEvents stream,
// and 'stats' prints the server's counters — including the replication
// block (connected subscribers, last shipped seq, max follower lag on a
// primary; applied seq on a replica), the event-hub block (subscribers,
// delivered and dropped event counts), and, for a sharded namespace, one
// line per shard engine with its epoch count and WAL seq/floor, boundary
// engine last. 'components' and 'size' are local-only (ComponentAggregate
// and ComponentSize cover them remotely); 'watch'/'event' are remote-only
// (events are pushed by a server's epoch pipeline).
//
//	go run ./cmd/conncli workload.txt
//	generate-stream | go run ./cmd/conncli
//	go run ./cmd/conncli -data /var/lib/conn workload.txt
//	go run ./cmd/conncli -addr localhost:7421 -ns social workload.txt
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	conn "repro"
	"repro/client"
	"repro/internal/query"
)

func main() {
	data := flag.String("data", "", "durability directory: restore from it at startup, WAL every batch into it")
	addr := flag.String("addr", "", "connserver address: drive a remote namespace instead of a local graph")
	ns := flag.String("ns", "default", "remote namespace name (with -addr)")
	flag.Parse()
	if *data != "" && *addr != "" {
		fmt.Fprintln(os.Stderr, "conncli: -data is local-only; a remote namespace's durability is the server's")
		os.Exit(2)
	}
	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, *data, *addr, *ns); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type session struct {
	g       *conn.Graph
	b       *conn.Batcher // non-nil iff the session is durable
	dataDir string

	rcl    *client.Client    // non-nil iff the session is remote (-addr)
	remote *client.Namespace // the driven remote namespace
	nsName string
	esub   *client.EventSub // live event subscription ('watch'); at most one

	ins  []conn.Edge
	dels []conn.Edge
	out  io.Writer
}

// flush applies pending updates: deletions first, then insertions. In a
// durable session each batch is one fsynced epoch through the Batcher; the
// driver is single-threaded, so between commands the dispatcher is idle and
// the Graph's read-only queries remain safe to call directly. In a remote
// session each batch is one CmdBatch frame, committed as one server epoch.
func (s *session) flush() error {
	if s.remote != nil {
		if len(s.dels) > 0 {
			if _, err := s.remote.DeleteEdges(s.dels); err != nil {
				return err
			}
			s.dels = s.dels[:0]
		}
		if len(s.ins) > 0 {
			if _, err := s.remote.InsertEdges(s.ins); err != nil {
				return err
			}
			s.ins = s.ins[:0]
		}
		return nil
	}
	if s.g == nil {
		return nil
	}
	if len(s.dels) > 0 {
		if s.b != nil {
			s.b.DeleteEdges(s.dels)
		} else {
			s.g.DeleteEdges(s.dels)
		}
		s.dels = s.dels[:0]
	}
	if len(s.ins) > 0 {
		if s.b != nil {
			s.b.InsertEdges(s.ins)
		} else {
			s.g.InsertEdges(s.ins)
		}
		s.ins = s.ins[:0]
	}
	return nil
}

// attach wires the freshly created or restored graph into a durable Batcher
// when the session has a data directory.
func (s *session) attach(g *conn.Graph) {
	s.g = g
	if s.dataDir != "" {
		s.b = conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(s.dataDir))
	}
}

func (s *session) close() {
	if s.b != nil {
		s.b.Close()
		s.b = nil
	}
	if s.esub != nil {
		s.esub.Close()
		s.esub = nil
	}
	if s.rcl != nil {
		s.rcl.Close()
		s.rcl = nil
	}
}

func run(in io.Reader, out io.Writer, dataDir, addr, nsName string) error {
	s := &session{out: out, dataDir: dataDir, nsName: nsName}
	defer s.close()
	if addr != "" {
		cl, err := client.Dial(addr)
		if err != nil {
			return err
		}
		s.rcl = cl
		s.remote = cl.Namespace(nsName)
	}
	if dataDir != "" {
		g, err := conn.Restore(dataDir)
		switch {
		case err == nil:
			s.attach(g)
		case errors.Is(err, conn.ErrNoDurableState):
			// Fresh directory: the script's 'n' command will create it.
		default:
			return err
		}
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if err := s.exec(text); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := s.flush(); err != nil {
		return err
	}
	return sc.Err()
}

func (s *session) exec(text string) error {
	fields := strings.Fields(text)
	cmd := fields[0]
	argN := func(i int) (int32, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("%s: missing argument %d", cmd, i)
		}
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return 0, fmt.Errorf("%s: bad argument %q", cmd, fields[i])
		}
		return int32(v), nil
	}
	if cmd != "n" && s.g == nil && s.remote == nil {
		return fmt.Errorf("%s before 'n <count>'", cmd)
	}
	switch cmd {
	case "n":
		v, err := argN(1)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("n must be positive")
		}
		if s.remote != nil {
			durable := false
			if len(fields) > 2 {
				if fields[2] != "durable" {
					return fmt.Errorf("n: unknown flag %q (want 'durable')", fields[2])
				}
				durable = true
			}
			return s.rcl.Create(s.nsName, int(v), durable)
		}
		if s.g != nil {
			return fmt.Errorf("universe already declared")
		}
		s.attach(conn.New(int(v)))
	case "+", "-":
		u, err := argN(1)
		if err != nil {
			return err
		}
		v, err := argN(2)
		if err != nil {
			return err
		}
		if s.g != nil && (u < 0 || v < 0 || int(u) >= s.g.N() || int(v) >= s.g.N()) {
			return fmt.Errorf("vertex out of range [0,%d)", s.g.N())
		}
		if cmd == "+" {
			s.ins = append(s.ins, conn.Edge{U: u, V: v})
		} else {
			s.dels = append(s.dels, conn.Edge{U: u, V: v})
		}
	case "?":
		u, err := argN(1)
		if err != nil {
			return err
		}
		v, err := argN(2)
		if err != nil {
			return err
		}
		if err := s.flush(); err != nil {
			return err
		}
		if s.remote != nil {
			ok, err := s.remote.Connected(u, v)
			if err != nil {
				return err
			}
			fmt.Fprintln(s.out, ok)
			return nil
		}
		fmt.Fprintln(s.out, s.g.Connected(u, v))
	case "flush":
		return s.flush()
	case "components":
		if s.remote != nil {
			return fmt.Errorf("components is local-only (the wire protocol serves connectivity queries)")
		}
		s.flush()
		fmt.Fprintln(s.out, s.g.NumComponents())
	case "size":
		u, err := argN(1)
		if err != nil {
			return err
		}
		if s.remote != nil {
			return fmt.Errorf("size is local-only (the wire protocol serves connectivity queries)")
		}
		s.flush()
		fmt.Fprintln(s.out, s.g.ComponentSize(u))
	case "khop":
		u, err := argN(1)
		if err != nil {
			return err
		}
		k, err := argN(2)
		if err != nil {
			return err
		}
		if k < 0 {
			return fmt.Errorf("khop: radius must be non-negative")
		}
		if err := s.flush(); err != nil {
			return err
		}
		var verts []int32
		if s.remote != nil {
			if verts, err = s.remote.KHop(u, uint32(k)); err != nil {
				return err
			}
		} else {
			verts = query.KHop(s.g.Neighbors, int32(s.g.N()), u, uint32(k))
		}
		fmt.Fprintln(s.out, joinVerts(verts))
	case "members":
		u, err := argN(1)
		if err != nil {
			return err
		}
		if err := s.flush(); err != nil {
			return err
		}
		var verts []int32
		if s.remote != nil {
			if verts, err = s.remote.ComponentMembers(u); err != nil {
				return err
			}
		} else {
			// ComponentVertices enumerates in Euler-tour order; the query
			// layer's contract (and the remote path) is ascending.
			verts = s.g.ComponentVertices(u)
			sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		}
		fmt.Fprintln(s.out, joinVerts(verts))
	case "path":
		u, err := argN(1)
		if err != nil {
			return err
		}
		v, err := argN(2)
		if err != nil {
			return err
		}
		if err := s.flush(); err != nil {
			return err
		}
		var path []int32
		var found bool
		if s.remote != nil {
			if path, found, err = s.remote.TreePath(u, v); err != nil {
				return err
			}
		} else {
			path, found = query.TreePath(s.g.TreeNeighbors, int32(s.g.N()), u, v)
		}
		if !found {
			fmt.Fprintln(s.out, "none")
			return nil
		}
		fmt.Fprintln(s.out, joinVerts(path))
	case "agg":
		if err := s.flush(); err != nil {
			return err
		}
		var count uint64
		var hist []uint64
		if s.remote != nil {
			var err error
			if count, hist, err = s.remote.ComponentAggregate(); err != nil {
				return err
			}
		} else {
			lbl := make([]int32, s.g.N())
			s.g.ComponentLabels(lbl)
			count, hist = query.Aggregate(lbl)
		}
		fmt.Fprintf(s.out, "components=%d hist=%v\n", count, hist)
	case "watch":
		if s.remote == nil {
			return fmt.Errorf("watch is remote-only (events are pushed by a server's epoch pipeline)")
		}
		if s.esub != nil {
			return fmt.Errorf("watch: a subscription is already open")
		}
		if err := s.flush(); err != nil {
			return err
		}
		if len(fields) == 2 && fields[1] == "comps" {
			sub, err := s.remote.SubscribeEvents(true, nil)
			if err != nil {
				return err
			}
			s.esub = sub
			return nil
		}
		u, err := argN(1)
		if err != nil {
			return err
		}
		v, err := argN(2)
		if err != nil {
			return err
		}
		sub, err := s.remote.SubscribeEvents(false, []conn.Edge{{U: u, V: v}})
		if err != nil {
			return err
		}
		s.esub = sub
	case "event":
		if s.remote == nil {
			return fmt.Errorf("event is remote-only (events are pushed by a server's epoch pipeline)")
		}
		if s.esub == nil {
			return fmt.Errorf("event before 'watch'")
		}
		if err := s.flush(); err != nil {
			return err
		}
		ev, ok := <-s.esub.C()
		if !ok {
			if err := s.esub.Err(); err != nil {
				return fmt.Errorf("event: %w", err)
			}
			return fmt.Errorf("event: subscription closed")
		}
		switch ev.Kind {
		case client.EventPairConnected, client.EventPairDisconnected:
			fmt.Fprintf(s.out, "event %s %d %d\n", ev.Kind, ev.U, ev.V)
		case client.EventMerge, client.EventSplit:
			fmt.Fprintf(s.out, "event %s label=%d others=%v\n", ev.Kind, ev.Label, ev.Others)
		default:
			fmt.Fprintf(s.out, "event %s\n", ev.Kind)
		}
	case "stats":
		if err := s.flush(); err != nil {
			return err
		}
		if s.remote != nil {
			st, err := s.remote.Stats()
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "epochs=%d ops=%d maxepoch=%d publishes=%d rebuilds=%d\n",
				st.Epochs, st.Ops, st.MaxEpoch, st.SnapshotPublishes, st.SnapshotRebuilds)
			fmt.Fprintf(s.out, "wal: records=%d bytes=%d raw_bytes=%d fsyncs=%d fsyncs_saved=%d\n",
				st.WALRecords, st.WALBytes, st.WALRawBytes, st.WALFsyncs, st.WALFsyncsSaved)
			fmt.Fprintf(s.out, "checkpoints: full=%d delta=%d\n",
				st.Checkpoints, st.CheckpointsDelta)
			fmt.Fprintf(s.out, "repl: subscribers=%d last_shipped=%d max_lag=%d applied=%d\n",
				st.Subscribers, st.LastShippedSeq, st.MaxFollowerLag, st.AppliedSeq)
			fmt.Fprintf(s.out, "events: subscribers=%d delivered=%d dropped=%d\n",
				st.EventSubscribers, st.EventsDelivered, st.EventsDropped)
			// A sharded namespace reports per-engine lines under the
			// aggregate: shards 0..k-1, then the boundary engine.
			for i, sh := range st.Shards {
				label := fmt.Sprintf("shard %d", i)
				if i == len(st.Shards)-1 {
					label = "boundary"
				}
				fmt.Fprintf(s.out, "%s: epochs=%d ops=%d wal: records=%d seq=%d floor=%d applied=%d\n",
					label, sh.Epochs, sh.Ops, sh.WALRecords, sh.WALSeq, sh.WALFloor, sh.AppliedSeq)
			}
			return nil
		}
		st := s.g.Stats()
		fmt.Fprintf(s.out, "edges=%d inserts=%d deletes=%d replaced=%d pushdowns=%d\n",
			s.g.NumEdges(), st.Inserts, st.Deletes, st.Replaced, st.Pushdowns+st.TreePushes)
		if s.b != nil {
			bs := s.b.Stats()
			fmt.Fprintf(s.out, "wal: records=%d bytes=%d raw_bytes=%d fsyncs=%d fsyncs_saved=%d floor=%d last=%d\n",
				bs.WALRecords, bs.WALBytes, bs.WALRawBytes, bs.WALFsyncs, bs.WALFsyncsSaved,
				s.b.WALFloor(), s.b.WALSeq())
			fmt.Fprintf(s.out, "checkpoints: full=%d delta=%d\n",
				bs.Checkpoints, bs.CheckpointsDelta)
		}
	case "checkpoint":
		if err := s.flush(); err != nil {
			return err
		}
		if s.remote != nil {
			if _, err := s.remote.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
			fmt.Fprintln(s.out, "ok")
			return nil
		}
		if s.b == nil {
			return fmt.Errorf("checkpoint requires -data")
		}
		if _, err := s.b.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintln(s.out, "ok")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// joinVerts renders a vertex list as space-separated ids, "-" when empty, so
// query output stays one line per command for the golden harness.
func joinVerts(vs []int32) string {
	if len(vs) == 0 {
		return "-"
	}
	var sb strings.Builder
	for i, v := range vs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}
