// Connserver is the network front-end for the batch-parallel connectivity
// library: a TCP server hosting multiple named graph namespaces, speaking
// the length-prefixed binary protocol in internal/wire. Clients (the public
// client package) keep many frames in flight per connection; every in-flight
// request blocks in its namespace's Batcher, so concurrent network traffic
// coalesces into the large epochs the paper's Theorem 1 rewards — the
// server is the piece that turns remote request streams into batch
// parallelism.
//
//	connserver -addr :7421                  # memory-only namespaces
//	connserver -addr :7421 -data /var/lib/conn
//	connserver -addr :7421 -data /var/lib/conn -shards 4
//	connserver -addr :7422 -replica-of primary:7421
//
// With -data, namespaces created durable live under <data>/<namespace>/
// (write-ahead log + checkpoints, exactly conn.WithDurability) and are
// restored on startup. SIGTERM and SIGINT trigger a graceful drain: stop
// accepting, answer every request already received, then flush and
// checkpoint every durable namespace before exit — acked writes survive,
// and restart replay is bounded by the final checkpoint.
//
// With -replica-of, the server is a read-only replica: it subscribes to the
// primary's per-namespace epoch streams (WAL shipping with checkpoint +
// log-tail catch-up), applies them locally, and serves the bounded-stale
// read tiers; mutating requests are answered with a redirect to the
// primary. Replicas reconnect with exponential backoff and keep serving
// their last applied state while the primary is down.
//
// With -shards k (k >= 2), namespaces created without an explicit shard
// count are hash-partitioned across k epoch pipelines: intra-shard edges
// commit — and fsync — in parallel per partition, cross-shard edges ride a
// boundary engine, and connectivity composes the per-shard labels through
// the boundary graph (internal/shard). Durable sharded namespaces keep one
// WAL and checkpoint stream per shard under <data>/<ns>/shard-<i>/.
//
// The durability pipeline is tunable: -wal-codec picks the record encoding
// for fresh logs (v1 raw, v2 delta+varint — existing logs keep the codec in
// their header), -group-sync K shares one fsync across up to K epochs with
// -group-wait bounding the added ack latency, and -ckpt-every M makes only
// every M-th checkpoint a full snapshot (the rest are incremental deltas).
// Acked writes are fsynced under every combination.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7421", "TCP listen address")
	data := flag.String("data", "", "data directory for durable namespaces (empty = memory only)")
	maxBatch := flag.Int("max-batch", 0, "epoch size target per namespace (0 = library default)")
	maxDelay := flag.Duration("max-delay", 0, "epoch coalescing window per namespace (0 = library default)")
	shards := flag.Int("shards", 0, "default hash partition count for new namespaces (0 or 1 = unsharded)")
	replicaOf := flag.String("replica-of", "", "primary connserver address to follow as a read-only replica (memory only)")
	walCodec := flag.String("wal-codec", "", "WAL record encoding for fresh logs: v1 (raw) or v2 (delta+varint); empty = v1")
	groupSync := flag.Int("group-sync", 0, "group-commit fsync: up to K epochs share one fsync (0 or 1 = fsync per epoch)")
	groupWait := flag.Duration("group-wait", 0, "max ack latency added by group-commit before the fsync fires anyway (0 = library default)")
	ckptEvery := flag.Int("ckpt-every", 0, "every M-th checkpoint is a full snapshot, the rest incremental deltas (0 or 1 = all full)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "connserver: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "connserver: ", log.LstdFlags)
	srv, err := server.New(server.Options{
		DataDir:          *data,
		MaxBatch:         *maxBatch,
		MaxDelay:         *maxDelay,
		DefaultShards:    *shards,
		ReplicaOf:        *replicaOf,
		WALCodec:         *walCodec,
		GroupSyncK:       *groupSync,
		GroupSyncMaxWait: *groupWait,
		CheckpointEvery:  *ckptEvery,
		Logf:             logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		sig := <-sigs
		logger.Printf("received %v; draining", sig)
		start := time.Now()
		srv.Shutdown()
		logger.Printf("drained in %v", time.Since(start).Round(time.Millisecond))
		close(done)
	}()

	if *replicaOf != "" {
		logger.Printf("listening on %s (read-only replica of %s)", *addr, *replicaOf)
	} else {
		logger.Printf("listening on %s (data=%q)", *addr, *data)
	}
	if err := srv.ListenAndServe(*addr); err != nil {
		logger.Fatal(err)
	}
	<-done // ListenAndServe returned because of the drain; let it finish
}
