// Command connchaos runs the whole-topology chaos harness from the command
// line: a sharded durable primary plus read replicas as child processes,
// randomized workloads through the real client, and a seeded fault schedule
// (SIGKILLs, torn WAL tails, dropped replication streams, connection
// resets), verified against union-find oracles built from acknowledged
// operations only.
//
//	go run ./cmd/connchaos -seed 1                      # default 3x2, 4s
//	go run ./cmd/connchaos -seed 7 -topology 4x3 -duration 30s
//	go run ./cmd/connchaos -seed 7 -schedule 'wal.open.torn-tail:torn@p=0.5'
//
// Every random decision — the workload, the kill plan, each fault site's
// fire pattern — derives from -seed, so a failing run prints the exact
// command that replays its scenario. Exit status 0 means every invariant
// held; 1 means a violation (the reason and the repro command go to
// stderr); 2 means the flags were unusable.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/topo"
)

func main() {
	// Child incarnations of this binary become servers before flag parsing:
	// the driver re-executes os.Args[0] with only the environment set.
	if topo.IsChild() {
		os.Exit(topo.ChildMain())
	}
	var (
		seed     = flag.Int64("seed", 1, "master seed for workload, kill plan and fault schedule")
		topology = flag.String("topology", "3x2", "shards × replicas, e.g. 3x2 (replicas may be 0)")
		duration = flag.Duration("duration", 4*time.Second, "length of the fault-injection phase")
		schedule = flag.String("schedule", "", "chaos schedule for the primary (default: built-in fault mix)")
		walCodec = flag.String("wal-codec", "", "primary WAL record encoding: v1 or v2 (empty = v1)")
		grpSync  = flag.Int("group-sync", 0, "primary group-commit fsync: K epochs per fsync (0 or 1 = per epoch)")
		grpWait  = flag.Duration("group-wait", 0, "primary group-commit ack-latency bound (0 = library default)")
		ckptEv   = flag.Int("ckpt-every", 0, "primary full checkpoint cadence; the rest are deltas (0 or 1 = all full)")
		verbose  = flag.Bool("v", false, "stream child server logs to stderr")
	)
	flag.Parse()
	shards, replicas, err := parseTopology(*topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connchaos:", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	var childLog io.Writer
	if *verbose {
		childLog = os.Stderr
	}
	cfg := topo.Config{
		Seed:            *seed,
		Shards:          shards,
		Replicas:        replicas,
		Duration:        *duration,
		Schedule:        *schedule,
		WALCodec:        *walCodec,
		GroupSyncK:      *grpSync,
		GroupSyncWait:   *grpWait,
		CheckpointEvery: *ckptEv,
		Logf:            logger.Printf,
		ChildLog:        childLog,
	}
	if err := topo.Run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "connchaos: FAIL\n%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("connchaos: ok — seed %d, %dx%d, %s: all invariants held\n",
		*seed, shards, replicas, *duration)
}

// parseTopology splits "KxR" into shard and replica counts. R = 0 is a
// primary-only topology (mapped to the Config's negative-means-none form).
func parseTopology(s string) (shards, replicas int, err error) {
	k, r, ok := strings.Cut(strings.ToLower(s), "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad -topology %q: want KxR, e.g. 3x2", s)
	}
	shards, err = strconv.Atoi(k)
	if err == nil {
		replicas, err = strconv.Atoi(r)
	}
	if err != nil || shards < 1 || replicas < 0 {
		return 0, 0, fmt.Errorf("bad -topology %q: want KxR with K ≥ 1, R ≥ 0", s)
	}
	if replicas == 0 {
		replicas = -1
	}
	return shards, replicas, nil
}
