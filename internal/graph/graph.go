// Package graph holds the shared vertex/edge types used across every
// subsystem: canonical undirected edges, packed 64-bit edge keys (for hashing
// into dictionaries and semisorts), and small helpers for edge batches.
package graph

// Vertex is a vertex identifier in [0, n).
type Vertex = int32

// Edge is an undirected edge. Callers may construct it in either orientation;
// Canon gives the canonical (min, max) form used as identity.
type Edge struct {
	U, V Vertex
}

// Canon returns the edge with endpoints ordered (smaller first).
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Key packs the canonical edge into a uint64 suitable for dictionaries.
func (e Edge) Key() uint64 {
	c := e.Canon()
	return uint64(uint32(c.U))<<32 | uint64(uint32(c.V))
}

// KeyDirected packs the edge as-is, preserving orientation.
func (e Edge) KeyDirected() uint64 {
	return uint64(uint32(e.U))<<32 | uint64(uint32(e.V))
}

// FromKey unpacks a canonical edge key.
func FromKey(k uint64) Edge {
	return Edge{Vertex(uint32(k >> 32)), Vertex(uint32(k))}
}

// Other returns the endpoint of e that is not x.
//
//conn:readonly
func (e Edge) Other(x Vertex) Vertex {
	if e.U == x {
		return e.V
	}
	return e.U
}

// IsLoop reports whether the edge is a self-loop.
func (e Edge) IsLoop() bool { return e.U == e.V }

// Keys maps a batch of edges to their canonical keys.
func Keys(es []Edge) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.Key()
	}
	return out
}

// Dedup returns the batch with duplicate (canonical) edges and self-loops
// removed, preserving first-occurrence order. O(k) expected time.
func Dedup(es []Edge) []Edge {
	if len(es) <= 16 {
		out := es[:0:0]
		for _, e := range es {
			if e.IsLoop() {
				continue
			}
			c := e.Canon()
			dup := false
			for _, o := range out {
				if o == c {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, c)
			}
		}
		return out
	}
	seen := make(map[uint64]struct{}, len(es))
	out := es[:0:0]
	for _, e := range es {
		if e.IsLoop() {
			continue
		}
		k := e.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, e.Canon())
	}
	return out
}
