package graph

import (
	"testing"
	"testing/quick"
)

func TestCanon(t *testing.T) {
	if (Edge{U: 7, V: 3}).Canon() != (Edge{U: 3, V: 7}) {
		t.Fatal("Canon did not order endpoints")
	}
	if (Edge{U: 3, V: 7}).Canon() != (Edge{U: 3, V: 7}) {
		t.Fatal("Canon changed an ordered edge")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		e := Edge{U: u, V: v}
		return FromKey(e.Key()) == e.Canon()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOrientationInvariant(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		return (Edge{U: u, V: v}).Key() == (Edge{U: v, V: u}).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDirectedPreservesOrientation(t *testing.T) {
	a := (Edge{U: 1, V: 2}).KeyDirected()
	b := (Edge{U: 2, V: 1}).KeyDirected()
	if a == b {
		t.Fatal("directed keys collide across orientations")
	}
}

func TestOtherAndLoop(t *testing.T) {
	e := Edge{U: 4, V: 9}
	if e.Other(4) != 9 || e.Other(9) != 4 {
		t.Fatal("Other wrong")
	}
	if e.IsLoop() || !(Edge{U: 5, V: 5}).IsLoop() {
		t.Fatal("IsLoop wrong")
	}
}

func TestKeysBatch(t *testing.T) {
	es := []Edge{{U: 2, V: 1}, {U: 3, V: 4}}
	ks := Keys(es)
	if len(ks) != 2 || ks[0] != es[0].Key() || ks[1] != es[1].Key() {
		t.Fatal("Keys wrong")
	}
}

func TestDedupSmallAndLargePaths(t *testing.T) {
	// Small (<=16): linear path.
	small := []Edge{{U: 1, V: 2}, {U: 2, V: 1}, {U: 3, V: 3}, {U: 4, V: 5}}
	got := Dedup(small)
	if len(got) != 2 || got[0] != (Edge{U: 1, V: 2}) || got[1] != (Edge{U: 4, V: 5}) {
		t.Fatalf("small Dedup = %v", got)
	}
	// Large (>16): map path; same semantics.
	var large []Edge
	for i := 0; i < 30; i++ {
		large = append(large, Edge{U: int32(i % 5), V: int32(i%5) + 1})
	}
	got = Dedup(large)
	if len(got) != 5 {
		t.Fatalf("large Dedup kept %d", len(got))
	}
	// First-occurrence order preserved.
	for i, e := range got {
		if e.U != int32(i) {
			t.Fatalf("order not preserved: %v", got)
		}
	}
}

func TestDedupPropertySetEquality(t *testing.T) {
	f := func(raw []uint8) bool {
		var es []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			es = append(es, Edge{U: int32(raw[i] % 8), V: int32(raw[i+1] % 8)})
		}
		out := Dedup(es)
		// No loops, no duplicates, canonical form.
		seen := map[uint64]bool{}
		for _, e := range out {
			if e.IsLoop() || e.U > e.V || seen[e.Key()] {
				return false
			}
			seen[e.Key()] = true
		}
		// Every non-loop input is represented.
		for _, e := range es {
			if !e.IsLoop() && !seen[e.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
