// Analyzer chaossite: mechanical enforcement of the fault-site registry
// contract (internal/chaos's package docs, PR 8). Fault injection is only
// auditable if the set of injection sites is closed: a schedule names sites
// by string, and a typo'd or unregistered site silently never fires. The
// contract has two halves:
//
//   - Call discipline: every call to a function annotated
//     //conn:fault-injector (chaos.Inject) must pass, as its site argument,
//     a named constant declared in the injector's own package whose name
//     starts with "Site". String literals, locals and computed expressions
//     are rejected — a site that exists only at one call site is
//     unregistrable.
//
//   - Registration discipline, inside the package declaring an injector:
//     every exported package-level "Site*" string constant must appear as a
//     key of the package's site table (a package-level map[string]string
//     composite literal), and every key of that table must be such a
//     constant. With both directions pinned, the Sites table IS the
//     registry, and schedule validation against it is exhaustive.
//
// The //conn:fault-injector annotation travels as an exported fact, so the
// call-discipline half reaches every dependent package (wal, engine, repl,
// server) without hardcoding the chaos package's import path.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChaosSite is the chaossite analyzer.
var ChaosSite = &Analyzer{
	Name: "chaossite",
	Doc:  "fault-injection sites must be named Site constants registered in the injector package's site table",
	Run:  runChaosSite,
}

// sitePrefix is the naming convention binding a constant to the registry.
const sitePrefix = "Site"

func runChaosSite(pass *Pass) error {
	for _, fd := range funcDeclsIn(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ref, ok := resolveCallee(pass.Info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if pass.Annotated(ref.PkgPath, ref.ID, DirFaultInjector) {
				checkSiteArg(pass, ref, call.Args[0])
			}
			return true
		})
	}
	if len(pass.Dirs.IDs(DirFaultInjector)) > 0 {
		checkSiteRegistry(pass)
	}
	return nil
}

// checkSiteArg requires the injector's site argument to be a Site constant
// of the injector's own package.
func checkSiteArg(pass *Pass, ref ResolvedRef, arg ast.Expr) {
	var obj types.Object
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[a]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[a.Sel]
	}
	c, ok := obj.(*types.Const)
	if !ok {
		pass.Reportf(arg.Pos(),
			"fault-injection site passed to //conn:fault-injector %s must be a named Site constant from %s, not an expression",
			ref.ID, ref.PkgPath)
		return
	}
	if objPkgPath(c) != ref.PkgPath || !strings.HasPrefix(c.Name(), sitePrefix) {
		pass.Reportf(arg.Pos(),
			"fault-injection site %s is not a Site constant declared in %s", c.Name(), ref.PkgPath)
	}
}

// checkSiteRegistry runs in the injector-declaring package: Site constants
// and site-table keys must agree exactly.
func checkSiteRegistry(pass *Pass) {
	// Every exported package-level Site* string constant, by declaration.
	siteConsts := make(map[string]*ast.Ident)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || !strings.HasPrefix(name.Name, sitePrefix) || !name.IsExported() {
						continue
					}
					if b, ok := c.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						siteConsts[name.Name] = name
					}
				}
			}
		}
	}

	// Every key of every package-level map[string]string composite literal —
	// the site table (there is exactly one in a well-formed package, but the
	// check tolerates several; agreement is what matters).
	registered := make(map[string]bool)
	tables := 0
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					lit, ok := val.(*ast.CompositeLit)
					if !ok || !isStringStringMap(pass, lit) {
						continue
					}
					tables++
					for _, el := range lit.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := ast.Unparen(kv.Key).(*ast.Ident)
						if !ok {
							pass.Reportf(kv.Key.Pos(),
								"site table key is not a named Site constant; register sites through their constants only")
							continue
						}
						c, isConst := pass.Info.Uses[key].(*types.Const)
						if !isConst || objPkgPath(c) != pass.Pkg.Path() ||
							!strings.HasPrefix(key.Name, sitePrefix) {
							pass.Reportf(key.Pos(),
								"site table key %s is not a Site constant of this package", key.Name)
							continue
						}
						registered[key.Name] = true
					}
				}
			}
		}
	}

	if tables == 0 {
		for _, fd := range funcDeclsIn(pass.Files) {
			if pass.Dirs.Has(DirFaultInjector, FuncID(fd)) {
				pass.Reportf(fd.Name.Pos(),
					"package declares //conn:fault-injector %s but no site table (package-level map[string]string literal)",
					FuncID(fd))
			}
		}
		return
	}
	for name, ident := range siteConsts {
		if !registered[name] {
			pass.Reportf(ident.Pos(),
				"site constant %s is not registered in the package's site table", name)
		}
	}
}

func isStringStringMap(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return false
	}
	kb, ok := m.Key().Underlying().(*types.Basic)
	if !ok || kb.Info()&types.IsString == 0 {
		return false
	}
	eb, ok := m.Elem().Underlying().(*types.Basic)
	return ok && eb.Info()&types.IsString != 0
}
