// Analyzer readonlyquery: mechanical enforcement of the read-only query
// contract (internal/core's package comment, PR 2). A method annotated
// //conn:readonly must not mutate anything reachable from its receiver:
// queries run concurrently against the live HDT structure with no lock, so
// a single stray write is a data race the type system cannot see.
//
// Checked, per annotated method body:
//
//   - no assignment, ++/--, delete, clear, close, or channel send whose
//     target is receiver-reachable (the receiver itself, any selector/
//     index/dereference chain rooted at it, any local holding a reference
//     type copied from such a chain, and reference-typed results of
//     receiver method calls);
//   - every method call on a receiver-reachable value must itself be
//     //conn:readonly — in this package or, via exported facts, in an
//     imported one. sync/atomic Load methods are the one blessed builtin.
//
// A type annotated //conn:readonly-queries additionally requires that every
// canonical query method it declares (Connected, ComponentID, EdgeInfo, …)
// carries //conn:readonly, so the contract's method list from the package
// docs cannot silently drift from what is checked.
//
// Known holes, accepted and documented: package-level functions taking
// receiver-derived arguments (treap's free functions are root walks proven
// read-only by their own -race suite), and writes through aliases laundered
// via such functions. The -race tests remain the semantic backstop; this
// analyzer pins the structure.
package lint

import (
	"go/ast"
	"go/types"
)

// ReadOnlyQuery is the readonlyquery analyzer.
var ReadOnlyQuery = &Analyzer{
	Name: "readonlyquery",
	Doc:  "methods under the read-only query contract must not mutate receiver-reachable state",
	Run:  runReadOnlyQuery,
}

// canonicalQueryMethods are the method names the read-only query contract
// covers wherever they appear on a //conn:readonly-queries type.
var canonicalQueryMethods = map[string]bool{
	"Connected":         true,
	"BatchConnected":    true,
	"ConnectedBatch":    true,
	"ComponentID":       true,
	"ComponentOf":       true,
	"ComponentSize":     true,
	"ComponentVertices": true,
	"ComponentLabels":   true,
	"Components":        true,
	"NumComponents":     true,
	"EdgeInfo":          true,
}

func runReadOnlyQuery(pass *Pass) error {
	for _, fd := range funcDeclsIn(pass.Files) {
		id := FuncID(fd)
		recv := recvTypeName(fd)
		if recv != "" && pass.Dirs.Has(DirReadonlyQueries, recv) &&
			canonicalQueryMethods[fd.Name.Name] && !pass.Dirs.Has(DirReadonly, id) {
			pass.Reportf(fd.Name.Pos(),
				"%s is a canonical query method of //conn:readonly-queries type %s and must be annotated //conn:readonly",
				id, recv)
			continue
		}
		if !pass.Dirs.Has(DirReadonly, id) {
			continue
		}
		checkReadonlyBody(pass, fd)
	}
	return nil
}

func checkReadonlyBody(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return // plain function or unnamed receiver: nothing receiver-reachable
	}
	recvObj := pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return
	}
	t := newTaint(pass, recvObj)
	t.propagate(fd.Body)

	id := FuncID(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				t.checkWrite(lhs, id)
			}
		case *ast.IncDecStmt:
			t.checkWrite(s.X, id)
		case *ast.SendStmt:
			if t.tainted(s.Chan) {
				pass.Reportf(s.Arrow, "//conn:readonly method %s sends on a receiver-reachable channel", id)
			}
		case *ast.CallExpr:
			t.checkCall(s, id)
		}
		return true
	})
}

// taint tracks which objects and expressions reach the receiver.
type taint struct {
	pass *Pass
	set  map[types.Object]bool
}

func newTaint(pass *Pass, recv types.Object) *taint {
	return &taint{pass: pass, set: map[types.Object]bool{recv: true}}
}

func (t *taint) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return t.set[t.pass.Info.ObjectOf(e)]
	case *ast.ParenExpr:
		return t.tainted(e.X)
	case *ast.SelectorExpr:
		// Field or method selection through a tainted base; a qualified
		// identifier (pkg.X) has no selection entry and is never tainted.
		if _, ok := t.pass.Info.Selections[e]; ok {
			return t.tainted(e.X)
		}
		return false
	case *ast.IndexExpr:
		return t.tainted(e.X)
	case *ast.StarExpr:
		return t.tainted(e.X)
	case *ast.SliceExpr:
		return t.tainted(e.X)
	case *ast.TypeAssertExpr:
		return t.tainted(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() == "&" && t.tainted(e.X)
	case *ast.CallExpr:
		// A conversion of a tainted value stays tainted; a method call on a
		// tainted receiver yields a tainted result if it returns references
		// into the structure.
		if len(e.Args) == 1 && t.isConversion(e) {
			return t.tainted(e.Args[0])
		}
		if se, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := t.pass.Info.Selections[se]; isMethod && t.tainted(se.X) {
				return t.refTyped(e)
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.tainted(el) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func (t *taint) isConversion(e *ast.CallExpr) bool {
	tv, ok := t.pass.Info.Types[e.Fun]
	return ok && tv.IsType()
}

// refTyped reports whether the expression's type can carry references into
// the structure (pointers, maps, slices, chans, funcs, interfaces, or
// aggregates containing them).
func (t *taint) refTyped(e ast.Expr) bool {
	tv, ok := t.pass.Info.Types[e]
	if !ok {
		return true // unknown: stay conservative
	}
	return typeCarriesRef(tv.Type, 0)
}

func typeCarriesRef(typ types.Type, depth int) bool {
	if depth > 8 {
		return true
	}
	switch tt := typ.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if typeCarriesRef(tt.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeCarriesRef(tt.Elem(), depth+1)
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			if typeCarriesRef(tt.At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// propagate folds assignment edges to a fixpoint: a local variable whose
// initializer (or any later assignment) is a receiver-reachable expression
// of reference type becomes receiver-reachable itself.
func (t *taint) propagate(body ast.Node) {
	type edge struct {
		dst types.Object
		src ast.Expr
	}
	var edges []edge
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := t.pass.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0] // multi-value: taint flows from the call as a whole
				}
				if rhs != nil {
					edges = append(edges, edge{obj, rhs})
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted container yields tainted elements.
			for _, v := range []ast.Expr{s.Key, s.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					if obj := t.pass.Info.ObjectOf(id); obj != nil {
						edges = append(edges, edge{obj, s.X})
					}
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if t.set[e.dst] {
				continue
			}
			// Only reference-typed locals keep the connection; a value copy
			// (plain struct of scalars, int, bool) severs it.
			if vt, ok := e.dst.(*types.Var); ok && !typeCarriesRef(vt.Type(), 0) {
				continue
			}
			if t.tainted(e.src) {
				t.set[e.dst] = true
				changed = true
			}
		}
	}
}

// checkWrite flags a write whose target is receiver-reachable. Rebinding a
// local identifier is not a write into the structure.
func (t *taint) checkWrite(lhs ast.Expr, methodID string) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// Rebinding a (possibly tainted) local: harmless.
	case *ast.SelectorExpr:
		if t.tainted(l.X) {
			t.pass.Reportf(l.Sel.Pos(),
				"//conn:readonly method %s writes receiver-reachable field %s", methodID, l.Sel.Name)
		}
	case *ast.IndexExpr:
		if t.tainted(l.X) {
			t.pass.Reportf(l.Lbrack,
				"//conn:readonly method %s writes into a receiver-reachable map or slice", methodID)
		}
	case *ast.StarExpr:
		if t.tainted(l.X) {
			t.pass.Reportf(l.Star,
				"//conn:readonly method %s writes through a receiver-reachable pointer", methodID)
		}
	}
}

// checkCall flags mutating builtins on receiver-reachable values and method
// calls whose callee is not itself covered by //conn:readonly.
func (t *taint) checkCall(call *ast.CallExpr, methodID string) {
	pass := t.pass
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "delete", "clear", "close":
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin &&
				len(call.Args) > 0 && t.tainted(call.Args[0]) {
				pass.Reportf(call.Pos(),
					"//conn:readonly method %s calls %s on a receiver-reachable value", methodID, id.Name)
			}
		}
		return
	}
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel, isSel := pass.Info.Selections[se]
	if !isSel || sel.Kind() != types.MethodVal || !t.tainted(se.X) {
		return
	}
	callee, _ := sel.Obj().(*types.Func)
	if callee == nil {
		return
	}
	pkgPath := objPkgPath(callee)
	calleeID := funcObjID(callee)
	if isBlessedStdMethod(pkgPath, callee) {
		return
	}
	if pass.Annotated(pkgPath, calleeID, DirReadonly) {
		return
	}
	pass.Reportf(se.Sel.Pos(),
		"//conn:readonly method %s calls %s.%s on a receiver-reachable value, but it is not //conn:readonly",
		methodID, pkgPath, calleeID)
}

// isBlessedStdMethod allows the standard-library methods a read-only walk
// may legitimately hit: atomic loads.
func isBlessedStdMethod(pkgPath string, fn *types.Func) bool {
	return pkgPath == "sync/atomic" && fn.Name() == "Load"
}
