package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint"
)

const directivesSrc = `// Package p is a directive-grammar probe.
//
//conn:decoders
package p

// T carries a type directive and an annotated field.
//
//conn:published
type T struct {
	// fn is dispatcher state.
	//
	//conn:dispatcher-only
	fn func()
}

// M is annotated; trailing prose after the name is allowed.
//
//conn:readonly the body is a pure read
func (t *T) M() {}

func spawn() {
	go run() //conn:dispatcher-entry — trailing form
	//conn:dispatcher-entry
	go run()
}

//conn:dispatcher-only
func run() {}
`

func parseDirectives(t *testing.T) (*token.FileSet, *ast.File, *lint.Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directivesSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, lint.CollectDirectives(fset, []*ast.File{f})
}

func TestCollectDirectives(t *testing.T) {
	_, _, d := parseDirectives(t)

	if !d.PackageLevel(lint.DirDecoders) {
		t.Error("package-level //conn:decoders not collected")
	}
	if !d.Has(lint.DirPublished, "T") {
		t.Error("type directive //conn:published T not collected")
	}
	if !d.Has(lint.DirDispatcherOnly, "T.fn") {
		t.Error("field directive //conn:dispatcher-only T.fn not collected")
	}
	if !d.Has(lint.DirReadonly, "T.M") {
		t.Error("method directive with trailing prose not collected")
	}
	if !d.Has(lint.DirDispatcherOnly, "run") {
		t.Error("function directive //conn:dispatcher-only run not collected")
	}
	if d.Has(lint.DirReadonly, "run") {
		t.Error("run spuriously marked //conn:readonly")
	}
}

func TestLineAnnotated(t *testing.T) {
	fset, f, d := parseDirectives(t)
	tf := fset.File(f.Pos())

	// Source lines are stable in the literal above: the trailing-comment
	// form sits on line 22, the own-line form annotates the go statement on
	// line 24, and line 21 (the func spawn() opener) carries nothing.
	for _, line := range []int{22, 24} {
		if !d.LineAnnotated(fset, tf.LineStart(line), lint.DirDispatcherEntry) {
			t.Errorf("line %d not recognized as //conn:dispatcher-entry", line)
		}
	}
	if d.LineAnnotated(fset, tf.LineStart(21), lint.DirDispatcherEntry) {
		t.Error("unannotated line spuriously dispatcher-entry")
	}
}

func TestFactsMergeHas(t *testing.T) {
	a := lint.Facts{"p": {"readonly": {"T.M"}}}
	b := lint.Facts{"p": {"readonly": {"T.N", "T.M"}}, "q": {"ack": {"f"}}}
	a.Merge(b)
	for _, probe := range []struct {
		pkg, dir, id string
		want         bool
	}{
		{"p", "readonly", "T.M", true},
		{"p", "readonly", "T.N", true},
		{"q", "ack", "f", true},
		{"q", "readonly", "f", false},
		{"r", "ack", "f", false},
	} {
		if got := a.Has(probe.pkg, probe.dir, probe.id); got != probe.want {
			t.Errorf("Has(%q,%q,%q) = %v, want %v", probe.pkg, probe.dir, probe.id, got, probe.want)
		}
	}
}
