// Analyzer syncerr: error hygiene on durable file paths. On the WAL and
// checkpoint write paths, a swallowed Close or Sync error is a durability
// hole — the kernel reports lost writes exactly there, and ignoring the
// return turns "fsync failed" into "data silently gone". In packages whose
// package comment carries //conn:durable-files, every call to a method
// named Close or Sync whose result includes an error must consume that
// error: a bare expression statement or a bare `defer f.Close()` is
// reported. Assigning to `_` is accepted as an explicit, reviewable
// acknowledgement that the error is intentionally dropped (e.g. the
// already-on-an-error-path cleanup close); the analyzer enforces that the
// drop is visible, not that it never happens.
package lint

import (
	"go/ast"
	"go/types"
)

// SyncErr is the syncerr analyzer.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "Close/Sync errors on durable file paths must be consumed or explicitly discarded",
	Run:  runSyncErr,
}

func runSyncErr(pass *Pass) error {
	if !pass.Dirs.PackageLevel(DirDurableFiles) {
		return nil
	}
	for _, fd := range funcDeclsIn(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDiscardedCloseSync(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDiscardedCloseSync(pass, s.Call, "defer ")
			case *ast.GoStmt:
				checkDiscardedCloseSync(pass, s.Call, "go ")
			}
			return true
		})
	}
	return nil
}

func checkDiscardedCloseSync(pass *Pass, call *ast.CallExpr, context string) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := se.Sel.Name
	if name != "Close" && name != "Sync" {
		return
	}
	sel, ok := pass.Info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !resultsIncludeError(sig.Results()) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s%s() error discarded in a //conn:durable-files package; handle it or assign to _ to acknowledge the drop",
		context, name)
}

func resultsIncludeError(res *types.Tuple) bool {
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
