// Fixture harness in the style of x/tools' analysistest, reimplemented on
// the standard library: each package under testdata/src is parsed,
// typechecked (fixture imports resolved recursively, the standard library
// from source), run through the full analyzer suite, and its diagnostics
// compared against `// want "regexp"` comments. Every rule has a violating
// fixture — which fails if the analyzer is neutered — and a compliant twin
// on the same page, which fails if the analyzer over-reports.
package lint_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixtureLoader typechecks packages under testdata/src. Fixture import
// paths are bare directory names ("factdep"); anything else is delegated
// to the source importer over GOROOT.
type fixtureLoader struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	// imported is the fact set visible to this package: the exported facts
	// of every fixture package it imports, transitively.
	imported lint.Facts
	// export is what this package publishes onward (imported + own).
	export lint.Facts
}

func newFixtureLoader() *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*fixturePkg),
	}
}

func fixtureDir(path string) (string, bool) {
	dir := filepath.Join("testdata", "src", path)
	st, err := os.Stat(dir)
	return dir, err == nil && st.IsDir()
}

// Import implements types.Importer over fixtures-first resolution.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if _, ok := fixtureDir(path); ok {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and typechecks one fixture package, memoized.
func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir, ok := fixtureDir(path)
	if !ok {
		return nil, fmt.Errorf("no fixture package %q", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}

	info := lint.NewInfo()
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %w", path, err)
	}

	imported := make(lint.Facts)
	for _, f := range files {
		for _, imp := range f.Imports {
			depPath := strings.Trim(imp.Path.Value, `"`)
			if _, ok := fixtureDir(depPath); !ok {
				continue
			}
			dep, err := l.load(depPath)
			if err != nil {
				return nil, err
			}
			imported.Merge(dep.export)
		}
	}
	export := make(lint.Facts)
	export.Merge(imported)
	export.Merge(lint.CollectDirectives(l.fset, files).Facts(path))

	fp := &fixturePkg{pkg: pkg, files: files, info: info, imported: imported, export: export}
	l.pkgs[path] = fp
	return fp, nil
}

// expectation is one `// want "regexp"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[1], err)
			}
			wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
		}
	}
	return wants
}

// runFixture loads the named fixture, runs the full suite, and matches the
// diagnostics one-to-one against the fixture's want comments.
func runFixture(t *testing.T, name string) lint.Facts {
	t.Helper()
	loader := newFixtureLoader()
	fp, err := loader.load(name)
	if err != nil {
		t.Fatal(err)
	}
	diags, export, err := lint.RunPackage(lint.All(), loader.fset, fp.files, fp.pkg, fp.info, fp.imported)
	if err != nil {
		t.Fatal(err)
	}

	dir, _ := fixtureDir(name)
	wants := collectWants(t, dir)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == filepath.Base(d.Pos.Filename) &&
				w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return export
}

func TestReadOnlyQueryFixture(t *testing.T)  { runFixture(t, "roq") }
func TestDispatcherOnlyFixture(t *testing.T) { runFixture(t, "dispo") }
func TestAckAfterFsyncFixture(t *testing.T)  { runFixture(t, "ackf") }
func TestAtomicPublishFixture(t *testing.T)  { runFixture(t, "atompub") }
func TestDecoderBoundsFixture(t *testing.T)  { runFixture(t, "decb") }
func TestSyncErrFixture(t *testing.T)        { runFixture(t, "sefix") }
func TestChaosSiteFixture(t *testing.T)      { runFixture(t, "chsite") }
func TestChaosRegistryFixture(t *testing.T)  { runFixture(t, "chreg") }

// TestCrossPackageFacts proves annotations travel: factuse's Connected is
// legal only because factdep's fact for Index.Len was imported, and the
// re-exported fact set carries both packages' annotations onward.
func TestCrossPackageFacts(t *testing.T) {
	export := runFixture(t, "factuse")
	if !export.Has("factdep", lint.DirReadonly, "Index.Len") {
		t.Errorf("factuse export is missing the transitive factdep Index.Len readonly fact")
	}
	if !export.Has("factuse", lint.DirReadonly, "View.Connected") {
		t.Errorf("factuse export is missing its own View.Connected readonly fact")
	}
}

// TestSuiteComplete pins the suite composition: a rule dropped from All()
// silently stops running under go vet; this makes the drop loud.
func TestSuiteComplete(t *testing.T) {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	want := []string{"ackafterfsync", "atomicpublish", "chaossite", "decoderbounds",
		"dispatcheronly", "readonlyquery", "syncerr"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("analyzer suite is %v, want %v", names, want)
	}
}
