// Analyzer atomicpublish: snapshot publication discipline. Query routing
// reads the label snapshot through an atomic.Pointer load; correctness
// depends on every value ever stored there being fully built and immutable
// (PR 2's copy-on-publish rule). The analyzer narrows who may store:
//
// a .Store or .Swap on an atomic.Pointer[T] where T is annotated
// //conn:published may appear only inside a function annotated
// //conn:publish-helper. Everything else — the dispatcher, tests' helpers,
// future subsystems — must go through the designated helper, which is where
// the immutable-build-then-publish sequencing lives.
//
// CompareAndSwap is treated like Store. Loads are unrestricted.
package lint

import (
	"go/ast"
	"go/types"
)

// AtomicPublish is the atomicpublish analyzer.
var AtomicPublish = &Analyzer{
	Name: "atomicpublish",
	Doc:  "atomic.Pointer stores of published snapshot types only via //conn:publish-helper functions",
	Run:  runAtomicPublish,
}

var publishStoreMethods = map[string]bool{
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
}

func runAtomicPublish(pass *Pass) error {
	for _, fd := range funcDeclsIn(pass.Files) {
		if pass.Dirs.Has(DirPublishHelper, FuncID(fd)) {
			continue
		}
		fid := FuncID(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !publishStoreMethods[se.Sel.Name] {
				return true
			}
			sel, ok := pass.Info.Selections[se]
			if !ok || sel.Kind() != types.MethodVal {
				return true
			}
			elemPkg, elemName, ok := atomicPointerElem(sel.Recv())
			if !ok || !pass.Annotated(elemPkg, elemName, DirPublished) {
				return true
			}
			pass.Reportf(se.Sel.Pos(),
				"raw %s of //conn:published type %s outside a //conn:publish-helper (in %s); use the designated publish helper",
				se.Sel.Name, elemName, fid)
			return true
		})
	}
	return nil
}

// atomicPointerElem, given a receiver type, reports the package path and
// name of T if the type is sync/atomic.Pointer[T] (possibly behind a
// pointer) and T is a named type.
func atomicPointerElem(recv types.Type) (pkgPath, name string, ok bool) {
	named := namedOf(recv)
	if named == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return "", "", false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return "", "", false
	}
	elem := namedOf(args.At(0))
	if elem == nil {
		return "", "", false
	}
	return objPkgPath(elem.Obj()), elem.Obj().Name(), true
}
