// Directive collection: the //conn: comment grammar and its mapping onto
// syntactic object IDs.
//
// # Directive grammar
//
// A directive is a comment line of the form `//conn:<name>` (no space after
// `//`, matching Go's convention for machine-readable directives). Where it
// may appear and what it marks:
//
//	//conn:readonly          func/method doc — the body must be mutation-free
//	                         with respect to the receiver (readonlyquery).
//	//conn:readonly-queries  type doc — the canonical query-method names on
//	                         this type MUST carry //conn:readonly.
//	//conn:dispatcher-only   func/method doc or struct field — owned by the
//	                         dispatcher goroutine (dispatcheronly).
//	//conn:dispatcher-entry  statement line (own line above, or trailing) —
//	                         this statement is the sanctioned hand-off of a
//	                         dispatcher-only function to its goroutine.
//	//conn:ack-after-fsync   func doc — ack calls inside must follow the
//	                         first durability barrier (ackafterfsync).
//	//conn:fsync-barrier     func/method doc or func-typed field — calling
//	                         it establishes the durability barrier.
//	//conn:ack               func/method doc or func-typed field — calling
//	                         it acknowledges an operation to a caller.
//	//conn:published         type doc — atomic.Pointer[T] of this type may
//	                         be Stored/Swapped only inside //conn:publish-helper
//	                         functions (atomicpublish).
//	//conn:publish-helper    func/method doc — may raw-Store published types.
//	//conn:decoders          package comment — decoderbounds applies to the
//	                         whole package.
//	//conn:validated-len     func/method doc — its integer result is a
//	                         hostile-input-validated element count.
//	//conn:durable-files     package comment — syncerr applies to the whole
//	                         package.
//	//conn:fault-injector    func doc — calls must pass a registered Site
//	                         constant of the declaring package (chaossite).
//
// # Object IDs
//
// Directives attach to syntactic declarations and are keyed by readable IDs
// so they can round-trip through fact files:
//
//	package function   FuncName
//	method             RecvType.Method   (pointer receivers undecorated)
//	struct field       StructType.field
//	type               TypeName
//
// IDs are package-relative; Facts qualifies them with the package path.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive names.
const (
	DirReadonly        = "readonly"
	DirReadonlyQueries = "readonly-queries"
	DirDispatcherOnly  = "dispatcher-only"
	DirDispatcherEntry = "dispatcher-entry"
	DirAckAfterFsync   = "ack-after-fsync"
	DirFsyncBarrier    = "fsync-barrier"
	DirAck             = "ack"
	DirPublished       = "published"
	DirPublishHelper   = "publish-helper"
	DirDecoders        = "decoders"
	DirValidatedLen    = "validated-len"
	DirDurableFiles    = "durable-files"
	DirFaultInjector   = "fault-injector"
)

// Directives is every //conn: annotation found in one package's production
// files.
type Directives struct {
	// byDirective maps directive name -> object ID set.
	byDirective map[string]map[string]bool
	// pkgLevel holds directives attached to a package clause.
	pkgLevel map[string]bool
	// lines maps "filename:line" -> set of statement-level directives
	// found on that source line (e.g. dispatcher-entry).
	lines map[string]map[string]bool
}

// Has reports whether id carries the directive.
func (d *Directives) Has(directive, id string) bool {
	return d.byDirective[directive][id]
}

// PackageLevel reports whether the package carries a package-level
// directive (on any file's package clause).
func (d *Directives) PackageLevel(directive string) bool {
	return d.pkgLevel[directive]
}

// IDs returns the object IDs annotated with directive, unordered.
func (d *Directives) IDs(directive string) []string {
	ids := make([]string, 0, len(d.byDirective[directive]))
	for id := range d.byDirective[directive] {
		ids = append(ids, id)
	}
	return ids
}

// Facts packages the directive set as the fact map a dependent package
// sees, qualified with the declaring package's import path.
func (d *Directives) Facts(pkgPath string) Facts {
	own := make(map[string][]string, len(d.byDirective))
	for directive, ids := range d.byDirective {
		sorted := make([]string, 0, len(ids))
		for id := range ids {
			sorted = append(sorted, id)
		}
		sort.Strings(sorted)
		own[directive] = sorted
	}
	return Facts{pkgPath: own}
}

// LineAnnotated reports whether the source line holding pos (or the line
// immediately above it) carries the statement-level directive.
func (d *Directives) LineAnnotated(fset *token.FileSet, pos token.Pos, directive string) bool {
	p := fset.Position(pos)
	if d.lines[lineKey(p.Filename, p.Line)][directive] {
		return true
	}
	return d.lines[lineKey(p.Filename, p.Line-1)][directive]
}

func lineKey(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// directivesIn extracts the //conn: directive names from a comment group.
func directivesIn(g *ast.CommentGroup) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		if name, ok := strings.CutPrefix(c.Text, "//conn:"); ok {
			name = strings.TrimSpace(name)
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			if name != "" {
				out = append(out, name)
			}
		}
	}
	return out
}

// recvTypeName returns the undecorated receiver type name of a method
// declaration ("" for a plain function).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// FuncID returns the object ID for a function declaration.
func FuncID(fd *ast.FuncDecl) string {
	if r := recvTypeName(fd); r != "" {
		return r + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// CollectDirectives scans a package's files for every //conn: annotation.
func CollectDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		byDirective: make(map[string]map[string]bool),
		pkgLevel:    make(map[string]bool),
		lines:       make(map[string]map[string]bool),
	}
	add := func(directive, id string) {
		set := d.byDirective[directive]
		if set == nil {
			set = make(map[string]bool)
			d.byDirective[directive] = set
		}
		set[id] = true
	}
	for _, f := range files {
		// Package-level: directives in the package clause's doc comment.
		for _, name := range directivesIn(f.Doc) {
			d.pkgLevel[name] = true
		}
		// Statement-level: every //conn: comment is indexed by its source
		// line so LineAnnotated can match statements.
		for _, g := range f.Comments {
			for _, c := range g.List {
				if names := directivesIn(&ast.CommentGroup{List: []*ast.Comment{c}}); len(names) > 0 {
					p := fset.Position(c.Pos())
					set := d.lines[lineKey(p.Filename, p.Line)]
					if set == nil {
						set = make(map[string]bool)
						d.lines[lineKey(p.Filename, p.Line)] = set
					}
					for _, name := range names {
						set[name] = true
					}
				}
			}
		}
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				for _, name := range directivesIn(dd.Doc) {
					add(name, FuncID(dd))
				}
			case *ast.GenDecl:
				for _, spec := range dd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(dd.Specs) == 1 {
						doc = dd.Doc
					}
					for _, name := range directivesIn(doc) {
						add(name, ts.Name.Name)
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						var names []string
						names = append(names, directivesIn(field.Doc)...)
						names = append(names, directivesIn(field.Comment)...)
						if len(names) == 0 {
							continue
						}
						for _, fn := range field.Names {
							for _, name := range names {
								add(name, ts.Name.Name+"."+fn.Name)
							}
						}
					}
				}
			}
		}
	}
	return d
}
