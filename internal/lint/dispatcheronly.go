// Analyzer dispatcheronly: enforcement of dispatcher-goroutine ownership.
// Epoch buffers, WAL sequence state, and subscriber callbacks are owned by
// the single dispatcher goroutine (the coalesce.Buffer run loop); touching
// them from any other goroutine is a data race. The analyzer makes that
// ownership a reference rule:
//
//   - an object annotated //conn:dispatcher-only (function, method, or
//     struct field) must not be referenced inside a `go` statement's
//     subtree — a spawned goroutine is by construction not the dispatcher —
//     unless the go statement's line is //conn:dispatcher-entry (the
//     statement that STARTS the dispatcher loop);
//   - a //conn:dispatcher-only function used as a value (stored into a
//     field, passed as an argument) escapes the dispatcher call graph, so
//     every such use must sit on a //conn:dispatcher-entry line, marking it
//     as the sanctioned hand-off that wires up the dispatcher (NewBuffer
//     receiving execEpoch, SubscribeEpochs receiving the repl tee);
//   - a direct call to a //conn:dispatcher-only function is legal only
//     from a function that is itself //conn:dispatcher-only (the call
//     graph stays closed) or on a //conn:dispatcher-entry line.
//
// Facts carry the annotations across packages, so batcher.go handing
// b.execEpoch to coalesce.NewBuffer is checked even though the buffer
// lives in another package.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DispatcherOnly is the dispatcheronly analyzer.
var DispatcherOnly = &Analyzer{
	Name: "dispatcheronly",
	Doc:  "//conn:dispatcher-only state must stay on the dispatcher goroutine",
	Run:  runDispatcherOnly,
}

func runDispatcherOnly(pass *Pass) error {
	for _, fd := range funcDeclsIn(pass.Files) {
		w := &dispatcherWalk{
			pass:               pass,
			callerIsDispatcher: pass.Dirs.Has(DirDispatcherOnly, FuncID(fd)),
			callees:            make(map[ast.Node]bool),
			selChildren:        make(map[*ast.Ident]bool),
		}
		ast.Inspect(fd.Body, w.visit)
	}
	return nil
}

type dispatcherWalk struct {
	pass               *Pass
	callerIsDispatcher bool
	// callees marks call-expression Fun nodes, so a call site is not also
	// reported as a value use of the function.
	callees map[ast.Node]bool
	// selChildren marks Sel identifiers already handled via their parent
	// SelectorExpr, so they are not re-resolved as bare identifiers.
	selChildren map[*ast.Ident]bool
}

// visit handles the preorder walk; parents are always seen before children,
// so callees/selChildren are populated before the child nodes arrive.
func (w *dispatcherWalk) visit(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.GoStmt:
		w.checkGoStmt(s)
		return false // subtree fully handled
	case *ast.CallExpr:
		w.callees[ast.Unparen(s.Fun)] = true
		w.checkCall(s)
	case *ast.SelectorExpr:
		w.selChildren[s.Sel] = true
		if !w.callees[s] {
			ref, ok := resolveSel(w.pass, s)
			w.checkValueUse(s.Sel.Pos(), ref, ok)
		}
	case *ast.Ident:
		if !w.callees[s] && !w.selChildren[s] {
			ref, ok := resolveIdent(w.pass, s)
			w.checkValueUse(s.Pos(), ref, ok)
		}
	}
	return true
}

// checkGoStmt flags any dispatcher-only reference inside a spawned
// goroutine.
func (w *dispatcherWalk) checkGoStmt(g *ast.GoStmt) {
	if w.pass.Dirs.LineAnnotated(w.pass.Fset, g.Go, DirDispatcherEntry) {
		return
	}
	seen := make(map[*ast.Ident]bool)
	ast.Inspect(g.Call, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			seen[e.Sel] = true
			ref, ok := resolveSel(w.pass, e)
			w.reportGoRef(e.Sel.Pos(), ref, ok)
		case *ast.Ident:
			if !seen[e] {
				ref, ok := resolveIdent(w.pass, e)
				w.reportGoRef(e.Pos(), ref, ok)
			}
		}
		return true
	})
}

func (w *dispatcherWalk) reportGoRef(pos token.Pos, ref ResolvedRef, ok bool) {
	if ok && w.pass.Annotated(ref.PkgPath, ref.ID, DirDispatcherOnly) {
		w.pass.Reportf(pos,
			"%s is //conn:dispatcher-only but is referenced inside a go statement", ref.ID)
	}
}

// checkCall flags a direct call to a dispatcher-only function or func-typed
// field from outside the dispatcher call graph.
func (w *dispatcherWalk) checkCall(call *ast.CallExpr) {
	ref, ok := resolveCallee(w.pass.Info, call)
	if !ok || !w.pass.Annotated(ref.PkgPath, ref.ID, DirDispatcherOnly) {
		return
	}
	if w.callerIsDispatcher {
		return
	}
	if w.pass.Dirs.LineAnnotated(w.pass.Fset, call.Pos(), DirDispatcherEntry) {
		return
	}
	w.pass.Reportf(call.Pos(),
		"call to //conn:dispatcher-only %s from a function that is not //conn:dispatcher-only", ref.ID)
}

// checkValueUse flags a dispatcher-only function (or func-typed field)
// escaping the dispatcher call graph as a value.
func (w *dispatcherWalk) checkValueUse(pos token.Pos, ref ResolvedRef, ok bool) {
	if !ok || !isFuncRef(ref) || !w.pass.Annotated(ref.PkgPath, ref.ID, DirDispatcherOnly) {
		return
	}
	if w.pass.Dirs.LineAnnotated(w.pass.Fset, pos, DirDispatcherEntry) {
		return
	}
	w.pass.Reportf(pos,
		"//conn:dispatcher-only %s escapes as a value; annotate the hand-off line //conn:dispatcher-entry if it wires up the dispatcher", ref.ID)
}

// isFuncRef reports whether the resolved object is a function or a
// func-typed variable — the shapes whose escape hands dispatcher code to a
// foreign goroutine.
func isFuncRef(ref ResolvedRef) bool {
	switch obj := ref.Obj.(type) {
	case *types.Func:
		return true
	case *types.Var:
		_, isFunc := obj.Type().Underlying().(*types.Signature)
		return isFunc
	}
	return false
}
