// Analyzer ackafterfsync: structural enforcement of acked ⇒ durable.
// The Batcher promises that by the time an operation's future resolves, the
// epoch containing it has been appended to the WAL and fsynced. The promise
// is easy to break silently — moving one close() a few lines up reorders
// acknowledgement before durability and no test fails until a crash does.
//
// Inside a function annotated //conn:ack-after-fsync, every acknowledgement
// must lexically follow the first durability barrier:
//
//   - barrier: a call to anything annotated //conn:fsync-barrier (the WAL
//     Append method, the coalesce exec hook that wraps it);
//   - ack: a close(...) builtin call (futures here are closed channels) or
//     a call to anything annotated //conn:ack (subscriber tees, respond
//     helpers).
//
// "Lexically follows" is position order within the function body — a
// deliberate simplification of dominance that is exact for the straight-
// line commit paths this engine uses, and errs toward reporting for
// branchy code (an ack in an early-return error path before the barrier is
// flagged; early error paths must fail futures via a non-ack helper or sit
// before any //conn:ack-after-fsync region). The analyzer also flags an
// annotated function that contains no barrier call at all: an ack-bearing
// function with no fsync cannot uphold the contract.
//
// Group-commit extension: a function annotated //conn:fsync-barrier that
// itself resolves acknowledgements — a group-sync scheduler's sync point,
// which fsyncs once and then releases every deferred future — gets the
// same ordering check implied, without needing //conn:ack-after-fsync. A
// barrier site promises "durable when I return"; if it also acks, those
// acks must follow its own inner barrier call (the underlying Sync).
// Barrier leaves with no acks in their bodies (the fsync primitives
// themselves) are exempt.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AckAfterFsync is the ackafterfsync analyzer.
var AckAfterFsync = &Analyzer{
	Name: "ackafterfsync",
	Doc:  "future resolution must follow the WAL append+fsync barrier",
	Run:  runAckAfterFsync,
}

func runAckAfterFsync(pass *Pass) error {
	for _, fd := range funcDeclsIn(pass.Files) {
		id := FuncID(fd)
		switch {
		case pass.Dirs.Has(DirAckAfterFsync, id):
			checkAckOrdering(pass, fd, DirAckAfterFsync)
		case pass.Dirs.Has(DirFsyncBarrier, id) && containsAck(pass, fd):
			// A barrier site that also resolves acknowledgements is a
			// group-commit sync point: the ordering check is implied.
			checkAckOrdering(pass, fd, DirFsyncBarrier)
		}
	}
	return nil
}

// containsAck reports whether the function body resolves any future: a
// close(...) builtin call or a call to anything annotated //conn:ack.
func containsAck(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
				if fun.Name == "close" {
					found = true
				}
				return true
			}
		}
		if ref, ok := resolveCallee(pass.Info, call); ok &&
			pass.Annotated(ref.PkgPath, ref.ID, DirAck) {
			found = true
		}
		return true
	})
	return found
}

func checkAckOrdering(pass *Pass, fd *ast.FuncDecl, dir string) {
	// First pass: find the position of the first barrier call.
	barrier := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ref, ok := resolveCallee(pass.Info, call); ok &&
			pass.Annotated(ref.PkgPath, ref.ID, DirFsyncBarrier) {
			if !barrier.IsValid() || call.Pos() < barrier {
				barrier = call.Pos()
			}
		}
		return true
	})

	id := FuncID(fd)
	if !barrier.IsValid() {
		if dir == DirFsyncBarrier {
			pass.Reportf(fd.Name.Pos(),
				"//conn:fsync-barrier function %s resolves acknowledgements but contains no inner //conn:fsync-barrier call", id)
		} else {
			pass.Reportf(fd.Name.Pos(),
				"//conn:ack-after-fsync function %s contains no //conn:fsync-barrier call", id)
		}
		return
	}

	// Second pass: every ack must sit after it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() >= barrier {
			return true
		}
		if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
				if fun.Name == "close" {
					pass.Reportf(call.Pos(),
						"//conn:%s function %s resolves a future (close) before the //conn:fsync-barrier call", dir, id)
				}
				return true
			}
		}
		if ref, ok := resolveCallee(pass.Info, call); ok &&
			pass.Annotated(ref.PkgPath, ref.ID, DirAck) {
			pass.Reportf(call.Pos(),
				"//conn:%s function %s calls //conn:ack %s before the //conn:fsync-barrier call", dir, id, ref.ID)
		}
		return true
	})
}
