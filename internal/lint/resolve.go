// Type-based resolution from use sites back to the object IDs directives
// attach to.
package lint

import (
	"go/ast"
	"go/types"
)

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// objPkgPath returns the declaring package path of obj ("" for builtins
// and other package-less objects).
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// funcObjID returns the directive object ID for a *types.Func:
// "Recv.Name" for methods, "Name" for package functions.
func funcObjID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// ResolvedRef identifies what a call or selector resolved to, in directive
// ID terms.
type ResolvedRef struct {
	PkgPath string
	ID      string
	Obj     types.Object
}

// resolveCallee resolves the callee of a call expression to a directive-
// addressable object: a package function, a method (on any value), or a
// func-typed struct field being invoked. Returns ok=false for calls
// through plain variables, builtins, conversions and other shapes that
// cannot carry directives.
func resolveCallee(info *types.Info, call *ast.CallExpr) (ResolvedRef, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return ResolvedRef{PkgPath: objPkgPath(fn), ID: funcObjID(fn), Obj: fn}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func: // method call
				return ResolvedRef{PkgPath: objPkgPath(obj), ID: funcObjID(obj), Obj: obj}, true
			case *types.Var: // call through a func-typed field
				if ref, ok := resolveFieldSel(info, fun); ok {
					return ref, true
				}
				return ResolvedRef{PkgPath: objPkgPath(obj), ID: obj.Name(), Obj: obj}, true
			}
		}
		// Qualified package function: pkg.F(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return ResolvedRef{PkgPath: objPkgPath(fn), ID: funcObjID(fn), Obj: fn}, true
		}
	}
	return ResolvedRef{}, false
}

// resolveIdent resolves a bare identifier use to a directive-addressable
// object: a function, or a package-level variable. Locals, types, labels
// and package names do not resolve.
func resolveIdent(pass *Pass, id *ast.Ident) (ResolvedRef, bool) {
	switch obj := pass.Info.Uses[id].(type) {
	case *types.Func:
		return ResolvedRef{PkgPath: objPkgPath(obj), ID: funcObjID(obj), Obj: obj}, true
	case *types.Var:
		if obj.IsField() {
			return ResolvedRef{}, false // needs selector context for the struct name
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return ResolvedRef{PkgPath: objPkgPath(obj), ID: obj.Name(), Obj: obj}, true
		}
	}
	return ResolvedRef{}, false
}

// resolveSel resolves a selector used as a value (not necessarily called):
// a method value, a struct field, or a qualified package function/variable.
func resolveSel(pass *Pass, se *ast.SelectorExpr) (ResolvedRef, bool) {
	if sel, ok := pass.Info.Selections[se]; ok {
		switch obj := sel.Obj().(type) {
		case *types.Func:
			return ResolvedRef{PkgPath: objPkgPath(obj), ID: funcObjID(obj), Obj: obj}, true
		case *types.Var:
			return resolveFieldSel(pass.Info, se)
		}
		return ResolvedRef{}, false
	}
	switch obj := pass.Info.Uses[se.Sel].(type) {
	case *types.Func:
		return ResolvedRef{PkgPath: objPkgPath(obj), ID: funcObjID(obj), Obj: obj}, true
	case *types.Var:
		return ResolvedRef{PkgPath: objPkgPath(obj), ID: obj.Name(), Obj: obj}, true
	}
	return ResolvedRef{}, false
}

// resolveFieldSel resolves a selector expression that names a struct field
// to its "Struct.field" directive ID, using the selection's receiver type
// for the struct name.
func resolveFieldSel(info *types.Info, se *ast.SelectorExpr) (ResolvedRef, bool) {
	sel, ok := info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return ResolvedRef{}, false
	}
	obj, ok := sel.Obj().(*types.Var)
	if !ok || !obj.IsField() {
		return ResolvedRef{}, false
	}
	// The receiver named type gives the struct the field was selected
	// through; for promoted fields this is the outermost type, which is
	// where a directive on the embedding would live. Fall back to walking
	// the selection index for the declaring struct.
	recv := namedOf(sel.Recv())
	if recv == nil {
		return ResolvedRef{}, false
	}
	// Walk the index path to the struct that declares the leaf field, so
	// the ID matches the declaration site's annotation.
	t := sel.Recv()
	name := recv.Obj().Name()
	idx := sel.Index()
	for i, fi := range idx {
		st, ok := derefStruct(t)
		if !ok {
			return ResolvedRef{}, false
		}
		f := st.Field(fi)
		if i == len(idx)-1 {
			return ResolvedRef{PkgPath: objPkgPath(obj), ID: name + "." + f.Name(), Obj: obj}, true
		}
		t = f.Type()
		if n := namedOf(t); n != nil {
			name = n.Obj().Name()
		}
	}
	return ResolvedRef{}, false
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			t = tt.Underlying()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Struct:
			return tt, true
		default:
			return nil, false
		}
	}
}

// funcDeclsIn returns every function declaration with a body across the
// pass's files, paired with the file holding it.
func funcDeclsIn(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
