// Package lint is a dependency-free static-analysis framework in the shape
// of golang.org/x/tools/go/analysis, built on the standard library's go/ast
// and go/types only (the module has no third-party dependencies, and the
// build environment does not assume network access). It hosts the connvet
// analyzer suite: seven analyzers that mechanically enforce the concurrency
// and durability contracts the engine otherwise states only in prose —
// the read-only query contract, dispatcher-goroutine ownership, the
// acked-implies-durable ordering, snapshot publication discipline, decoder
// allocation bounds, durable-file error hygiene, and the fault-site
// registry closed over by the chaos harness.
//
// The contracts are declared in the source with //conn: directive comments
// (see Directives) and verified per package by the analyzers. Annotations
// are exported as per-package facts so a contract crosses package
// boundaries: internal/core's Connected may call internal/ett's Connected
// because ett exports the method as //conn:readonly and the analyzer for
// core reads that fact.
//
// cmd/connvet compiles the suite into a `go vet -vettool` binary; CI runs
// it over ./... as a first-class gate. See DESIGN.md §8.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package, mirroring
// x/tools' analysis.Analyzer shape so the suite could migrate to the real
// framework if the dependency ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Dirs     *Directives
	Imported Facts

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether the object identified by (pkgPath, id) carries
// the directive, consulting the current package's directives or, for other
// packages, the imported facts.
func (p *Pass) Annotated(pkgPath, id, directive string) bool {
	if pkgPath == p.Pkg.Path() {
		return p.Dirs.Has(directive, id)
	}
	return p.Imported.Has(pkgPath, directive, id)
}

// All returns the full connvet analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ReadOnlyQuery,
		DispatcherOnly,
		AckAfterFsync,
		AtomicPublish,
		DecoderBounds,
		SyncErr,
		ChaosSite,
	}
}

// Facts is annotation data exported by already-analyzed packages:
// package path -> directive -> set of object IDs (see Directives for the
// ID grammar). The driver persists Facts through `go vet`'s vetx files and
// merges each package's own directives into what it re-exports, so facts
// reach transitive dependents.
type Facts map[string]map[string][]string

// Has reports whether the fact set marks (pkgPath, id) with directive.
func (f Facts) Has(pkgPath, directive, id string) bool {
	dirs, ok := f[pkgPath]
	if !ok {
		return false
	}
	for _, have := range dirs[directive] {
		if have == id {
			return true
		}
	}
	return false
}

// Merge folds other into f.
func (f Facts) Merge(other Facts) {
	for pkg, dirs := range other {
		cur, ok := f[pkg]
		if !ok {
			cur = make(map[string][]string)
			f[pkg] = cur
		}
		for d, ids := range dirs {
			cur[d] = mergeSorted(cur[d], ids)
		}
	}
}

// Export returns f plus the package's own directives, the fact set a
// dependent package should see.
func (p *Pass) Export() Facts {
	out := make(Facts, len(p.Imported)+1)
	out.Merge(p.Imported)
	out.Merge(p.Dirs.Facts(p.Pkg.Path()))
	return out
}

func mergeSorted(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// RunPackage runs every analyzer in suite over one type-checked package and
// returns the diagnostics sorted by position. Test files (*_test.go) are
// excluded from every analyzer: the contracts bind production code, while
// tests deliberately stress them from foreign goroutines (the -race suites
// are their enforcement).
func RunPackage(suite []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, imported Facts) ([]Diagnostic, Facts, error) {

	prod := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if name := fset.Position(f.Package).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}
	dirs := CollectDirectives(fset, prod)
	if imported == nil {
		imported = make(Facts)
	}

	var diags []Diagnostic
	var export Facts
	for _, a := range suite {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    prod,
			Pkg:      pkg,
			Info:     info,
			Dirs:     dirs,
			Imported: imported,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
		if export == nil {
			export = pass.Export()
		}
	}
	if export == nil { // empty suite
		pass := &Pass{Fset: fset, Files: prod, Pkg: pkg, Dirs: dirs, Imported: imported}
		export = pass.Export()
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, export, nil
}

// NewInfo returns a types.Info with every map the analyzers need populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
