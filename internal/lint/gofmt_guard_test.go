package lint_test

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteGofmtClean keeps the analyzer suite and its vettool front-end
// gofmt-clean: the lint job formats nothing, it only verifies, so a drifted
// file must fail here rather than bitrot silently.
func TestSuiteGofmtClean(t *testing.T) {
	for _, dir := range []string{".", filepath.Join("..", "..", "cmd", "connvet")} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			formatted, err := format.Source(src)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if !bytes.Equal(src, formatted) {
				t.Errorf("%s is not gofmt-clean; run gofmt -w", path)
			}
		}
	}
}
