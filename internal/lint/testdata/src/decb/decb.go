// Package decb exercises the decoderbounds analyzer: in a //conn:decoders
// package, every make size must be a constant, len/cap, a //conn:validated-len
// call result, arithmetic over those, or an identifier guarded by an
// explicit comparison before use.
//
//conn:decoders
package decb

// header models a decoded frame header carrying a raw wire integer.
type header struct {
	n uint32
}

// validCount re-validates the claimed element count against the bytes
// actually remaining.
//
//conn:validated-len
func (h *header) validCount(remaining int) int {
	n := int(h.n)
	if n < 0 || n > remaining {
		return 0
	}
	return n
}

func decodeBad(h *header) []uint64 {
	return make([]uint64, h.n) // want "make size in //conn:decoders package is not a validated count"
}

func decodeBadLocal(h *header) []uint64 {
	n := int(h.n)
	return make([]uint64, n) // want "not a validated count"
}

// decodeGuarded uses the explicit-guard idiom: the comparison dominates the
// make, so the allocation is bounded.
func decodeGuarded(h *header, payload []byte) []uint64 {
	n := int(h.n)
	if n < 0 || n > len(payload)/8 {
		return nil
	}
	return make([]uint64, n)
}

// decodeValidated sizes the allocation from a //conn:validated-len call.
func decodeValidated(h *header, payload []byte) []uint64 {
	return make([]uint64, 0, h.validCount(len(payload)/8))
}

// decodeConst allocates from len of memory already held.
func decodeConst(payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// uvarint models encoding/binary.Uvarint: a length read straight off the
// wire, exactly what a delta+varint codec's count fields are.
func uvarint(p []byte) (uint64, int) {
	if len(p) == 0 {
		return 0, 0
	}
	return uint64(p[0]), 1
}

// decodeVarintBad sizes an allocation from a raw varint count — a
// one-byte payload can claim 2^60 elements.
func decodeVarintBad(payload []byte) []uint64 {
	n, _ := uvarint(payload)
	return make([]uint64, n) // want "not a validated count"
}

// decodeVarintGuarded bounds the varint count against the bytes that
// could actually hold that many elements before allocating.
func decodeVarintGuarded(payload []byte) []uint64 {
	n, k := uvarint(payload)
	if k <= 0 || n > uint64(len(payload)-k) {
		return nil
	}
	return make([]uint64, n)
}
