// Package factdep exports //conn: annotations for the cross-package fact
// test: a dependent package may call Index.Len inside a //conn:readonly
// method only because this package exports the fact.
package factdep

// Index is queried concurrently by dependents.
type Index struct {
	n int
}

// Len is a safe concurrent read.
//
//conn:readonly
func (ix *Index) Len() int { return ix.n }

// Grow mutates and is deliberately unannotated.
func (ix *Index) Grow() { ix.n++ }
