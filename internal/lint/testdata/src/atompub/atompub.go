// Package atompub exercises the atomicpublish analyzer: a Store, Swap or
// CompareAndSwap on an atomic.Pointer of a //conn:published type may appear
// only inside a //conn:publish-helper function.
package atompub

import "sync/atomic"

// Snapshot is the published immutable value.
//
//conn:published
type Snapshot struct {
	labels []int
}

// Store routes readers to the current snapshot.
type Store struct {
	cur atomic.Pointer[Snapshot]
}

// publish is the designated store site.
//
//conn:publish-helper
func (s *Store) publish(v *Snapshot) {
	s.cur.Store(v)
}

func (s *Store) rawStore(v *Snapshot) {
	s.cur.Store(v) // want "raw Store of //conn:published type Snapshot"
}

func (s *Store) rawSwap(v *Snapshot) *Snapshot {
	return s.cur.Swap(v) // want "raw Swap of //conn:published type Snapshot"
}

// load is unrestricted: only stores are publication events.
func (s *Store) load() *Snapshot {
	return s.cur.Load()
}

// scratch is not published, so raw stores of it are fine anywhere.
type scratch struct{ n int }

func storeScratch(p *atomic.Pointer[scratch], v *scratch) {
	p.Store(v)
}
