// Package dispo exercises the dispatcheronly analyzer: go-statement
// references, direct calls from outside the dispatcher call graph, value
// escapes, and the //conn:dispatcher-entry sanctioned hand-off.
package dispo

// loop is the dispatcher body.
//
//conn:dispatcher-only
func loop(ch chan int) {
	for range ch {
		tick()
	}
}

// tick may only run on the dispatcher goroutine.
//
//conn:dispatcher-only
func tick() {}

func startBad(ch chan int) {
	go loop(ch) // want "referenced inside a go statement"
}

func callBad() {
	tick() // want "from a function that is not //conn:dispatcher-only"
}

func escapeBad() func() {
	return tick // want "escapes as a value"
}

func startGood(ch chan int) {
	go loop(ch) //conn:dispatcher-entry — this statement starts the dispatcher
}

func handoffGood(register func(func())) {
	register(tick) //conn:dispatcher-entry — wiring the dispatcher callback
}
