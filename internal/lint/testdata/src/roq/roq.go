// Package roq exercises the readonlyquery analyzer: receiver-reachable
// writes, mutating builtins, unannotated callees, alias laundering, and
// canonical-method coverage on //conn:readonly-queries types.
package roq

// Store is the violating query type: it declares a canonical query method
// without the //conn:readonly annotation.
//
//conn:readonly-queries
type Store struct {
	m map[int]int
	n int
}

// Connected is canonical on a //conn:readonly-queries type but lacks the
// //conn:readonly annotation.
func (s *Store) Connected(u, v int) bool { // want "canonical query method of //conn:readonly-queries type Store"
	return u == v
}

// Mutates writes a receiver field.
//
//conn:readonly
func (s *Store) Mutates() {
	s.n = 1 // want "writes receiver-reachable field n"
}

// MapWrite writes through a receiver-held map.
//
//conn:readonly
func (s *Store) MapWrite(k int) {
	s.m[k] = 1 // want "writes into a receiver-reachable map or slice"
}

// DeleteEntry calls a mutating builtin on receiver state.
//
//conn:readonly
func (s *Store) DeleteEntry(k int) {
	delete(s.m, k) // want "calls delete on a receiver-reachable value"
}

// CallsDirty calls an unannotated method on the receiver.
//
//conn:readonly
func (s *Store) CallsDirty() {
	s.dirty() // want "but it is not //conn:readonly"
}

func (s *Store) dirty() { s.n++ }

// Laundered copies the receiver's map into a local first; the alias is
// still receiver-reachable.
//
//conn:readonly
func (s *Store) Laundered(k int) {
	m := s.m
	m[k] = 2 // want "writes into a receiver-reachable map or slice"
}

// Good is the compliant twin: canonical methods annotated, bodies clean.
//
//conn:readonly-queries
type Good struct {
	m map[int]int
	n int
}

// Connected walks receiver state without mutating it.
//
//conn:readonly
func (g *Good) Connected(u, v int) bool {
	c := 0
	for k := range g.m {
		_ = k
		c++
	}
	return c >= 0 && u == v
}

// Reads copies a scalar out of the receiver; the value copy severs
// reachability, so mutating the local is fine.
//
//conn:readonly
func (g *Good) Reads() int {
	n := g.n
	n++
	return n + g.peek()
}

// peek is an annotated callee, so Reads may call it.
//
//conn:readonly
func (g *Good) peek() int { return g.n }
