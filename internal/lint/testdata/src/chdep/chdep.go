// Package chdep is a clean miniature of internal/chaos: an annotated
// injector, Site constants, and the site table registering all of them.
// Dependent fixtures import it to exercise the cross-package half of the
// chaossite rule through exported facts.
package chdep

// SiteAlpha is a registered injection site.
const SiteAlpha = "alpha.pre"

// SiteBeta is a registered injection site.
const SiteBeta = "beta.post"

// NotASite is a string constant that is deliberately not a Site.
const NotASite = "gamma.raw"

// Sites is the registry.
var Sites = map[string]string{
	SiteAlpha: "before alpha",
	SiteBeta:  "after beta",
}

// Inject is the fault point.
//
//conn:fault-injector
func Inject(site string) bool { return Sites[site] == "" }
