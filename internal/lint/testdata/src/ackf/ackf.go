// Package ackf exercises the ackafterfsync analyzer: acknowledgements
// (close of a future, //conn:ack calls) must lexically follow the first
// //conn:fsync-barrier call, and an annotated function must contain one.
package ackf

// appendAndSync is the durability barrier.
//
//conn:fsync-barrier
func appendAndSync() {}

// notify acknowledges an operation to a subscriber.
//
//conn:ack
func notify() {}

//conn:ack-after-fsync
func commitBad(done chan struct{}) {
	close(done) // want "resolves a future .close. before the //conn:fsync-barrier call"
	appendAndSync()
}

//conn:ack-after-fsync
func teeBad() {
	notify() // want "calls //conn:ack notify before the //conn:fsync-barrier call"
	appendAndSync()
}

//conn:ack-after-fsync
func noBarrier(done chan struct{}) { // want "contains no //conn:fsync-barrier call"
	_ = done
}

// commitGood is the compliant twin: barrier first, then ack, then resolve.
//
//conn:ack-after-fsync
func commitGood(done chan struct{}) {
	appendAndSync()
	notify()
	close(done)
}
