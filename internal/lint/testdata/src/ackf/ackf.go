// Package ackf exercises the ackafterfsync analyzer: acknowledgements
// (close of a future, //conn:ack calls) must lexically follow the first
// //conn:fsync-barrier call, and an annotated function must contain one.
package ackf

// appendAndSync is the durability barrier.
//
//conn:fsync-barrier
func appendAndSync() {}

// notify acknowledges an operation to a subscriber.
//
//conn:ack
func notify() {}

//conn:ack-after-fsync
func commitBad(done chan struct{}) {
	close(done) // want "resolves a future .close. before the //conn:fsync-barrier call"
	appendAndSync()
}

//conn:ack-after-fsync
func teeBad() {
	notify() // want "calls //conn:ack notify before the //conn:fsync-barrier call"
	appendAndSync()
}

//conn:ack-after-fsync
func noBarrier(done chan struct{}) { // want "contains no //conn:fsync-barrier call"
	_ = done
}

// commitGood is the compliant twin: barrier first, then ack, then resolve.
//
//conn:ack-after-fsync
func commitGood(done chan struct{}) {
	appendAndSync()
	notify()
	close(done)
}

// syncPointBad models a group-commit sync point gone wrong: a barrier site
// that releases a deferred future before its own inner barrier. The check
// is implied by //conn:fsync-barrier alone — no //conn:ack-after-fsync.
//
//conn:fsync-barrier
func syncPointBad(done chan struct{}) {
	close(done) // want "resolves a future .close. before the //conn:fsync-barrier call"
	appendAndSync()
}

// syncPointNoBarrier acks but never reaches a durability primitive: a
// barrier site that cannot uphold its own promise.
//
//conn:fsync-barrier
func syncPointNoBarrier(done chan struct{}) { // want "resolves acknowledgements but contains no inner //conn:fsync-barrier call"
	close(done)
}

// syncPointGood is the scheduler shape: one inner fsync, then the held-back
// tee and every deferred release.
//
//conn:fsync-barrier
func syncPointGood(pending []chan struct{}) {
	appendAndSync()
	notify()
	for _, done := range pending {
		close(done)
	}
}

// syncLeaf is a plain fsync primitive: no acks inside, so the implied
// check does not apply and no inner barrier is demanded.
//
//conn:fsync-barrier
func syncLeaf() {}
