// Package chsite exercises the call-discipline half of the chaossite
// analyzer: calls to an imported //conn:fault-injector must name their site
// with a Site constant from the injector's package.
package chsite

import "chdep"

// localSite shadows a registered value but is declared here, so passing it
// would bypass the registry.
const localSite = "alpha.pre"

func hookGood() {
	if chdep.Inject(chdep.SiteAlpha) {
		return
	}
	_ = chdep.Inject((chdep.SiteBeta)) // parenthesized constant: still fine
}

func hookLiteral() {
	_ = chdep.Inject("alpha.pre") // want "must be a named Site constant"
}

func hookLocalConst() {
	_ = chdep.Inject(localSite) // want "not a Site constant declared in chdep"
}

func hookForeignConst() {
	_ = chdep.Inject(chdep.NotASite) // want "not a Site constant declared in chdep"
}

func hookComputed(suffix string) {
	_ = chdep.Inject("alpha." + suffix) // want "must be a named Site constant"
}
