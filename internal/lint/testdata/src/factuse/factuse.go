// Package factuse consumes factdep's exported facts: the annotation on
// factdep.Index.Len crosses the package boundary, while the unannotated
// Grow is still rejected.
package factuse

import "factdep"

// View wraps a dependency's index.
//
//conn:readonly-queries
type View struct {
	ix *factdep.Index
}

// Connected may call Len because factdep exports it as //conn:readonly.
//
//conn:readonly
func (v *View) Connected(a, b int) bool {
	return v.ix.Len() >= 0 && a == b
}

// GrowBad calls a dependency method with no exported readonly fact.
//
//conn:readonly
func (v *View) GrowBad() {
	v.ix.Grow() // want "calls factdep.Index.Grow on a receiver-reachable value, but it is not //conn:readonly"
}
