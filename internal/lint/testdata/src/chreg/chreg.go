// Package chreg exercises the registration half of the chaossite analyzer:
// in a package declaring a //conn:fault-injector, Site constants and the
// site table must agree in both directions.
package chreg

// SiteOK is registered — no diagnostic.
const SiteOK = "ok.site"

const SiteOrphan = "orphan.site" // want "not registered in the package's site table"

// Sites is the registry; one key is a raw literal instead of a constant.
var Sites = map[string]string{
	SiteOK:        "fine",
	"smuggled.in": "raw literal key", // want "site table key is not a named Site constant"
}

// Inject is the fault point.
//
//conn:fault-injector
func Inject(site string) bool { return Sites[site] == "" }

func use() {
	_ = Inject(SiteOK)
}
