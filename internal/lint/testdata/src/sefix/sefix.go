// Package sefix exercises the syncerr analyzer: in a //conn:durable-files
// package, a bare Close or Sync whose error is discarded is reported;
// handling the error or assigning to _ is accepted.
//
//conn:durable-files
package sefix

// file models a durable handle whose Close and Sync report write-back
// errors.
type file struct{}

func (f *file) Close() error { return nil }
func (f *file) Sync() error  { return nil }

func writeBad(f *file) {
	f.Sync()  // want "Sync.. error discarded"
	f.Close() // want "Close.. error discarded"
}

func deferBad(f *file) {
	defer f.Close() // want "defer Close.. error discarded"
}

func goBad(f *file) {
	go f.Close() // want "go Close.. error discarded"
}

// writeGood is the compliant twin: the happy-path error is propagated and
// the error-path drop is an explicit, reviewable assignment to _.
func writeGood(f *file) error {
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
