// Analyzer decoderbounds: allocation totality in wire-facing decoders. A
// decoder that does `make([]T, n)` with n read straight off the wire turns
// a 5-byte hostile frame into a multi-gigabyte allocation. PR 4 introduced
// the validated-count idiom (wire's d.count, which bounds the claimed count
// by the bytes actually remaining); this analyzer makes the idiom
// mandatory in every package whose package comment carries //conn:decoders.
//
// In such packages, each size/capacity argument of a make call must be an
// expression whose value is visibly bounded:
//
//   - a constant (typed or untyped, including named constants);
//   - len(...) or cap(...) of anything — bounded by memory already held;
//   - a call to a function/method annotated //conn:validated-len;
//   - arithmetic over already-acceptable operands (n/9, validated+1, …);
//   - an identifier assigned from an acceptable expression, or one whose
//     enclosing function dominates the make with an explicit comparison of
//     that identifier against an acceptable bound (the hand-rolled
//     `if n > len(payload) { return err }` guard idiom).
//
// Anything else — most importantly a binary.LittleEndian.Uint32 result or
// a struct field populated by one — is reported.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DecoderBounds is the decoderbounds analyzer.
var DecoderBounds = &Analyzer{
	Name: "decoderbounds",
	Doc:  "decoder make() sizes must come from validated counts, never raw wire integers",
	Run:  runDecoderBounds,
}

func runDecoderBounds(pass *Pass) error {
	if !pass.Dirs.PackageLevel(DirDecoders) {
		return nil
	}
	for _, fd := range funcDeclsIn(pass.Files) {
		b := &boundsCheck{pass: pass, fn: fd}
		b.collect()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "make" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
				return true
			}
			for _, sizeArg := range call.Args[1:] {
				if !b.bounded(sizeArg, 0) {
					pass.Reportf(sizeArg.Pos(),
						"make size in //conn:decoders package is not a validated count; derive it from a //conn:validated-len call, len/cap, a constant, or guard it against one first")
				}
			}
			return true
		})
	}
	return nil
}

// boundsCheck evaluates make-size expressions within one function.
type boundsCheck struct {
	pass *Pass
	fn   *ast.FuncDecl
	// assigned maps objects to every expression assigned to them in the
	// function; an identifier is bounded if all its assignments are.
	assigned map[types.Object][]ast.Expr
	// guarded holds objects compared against a bounded expression at some
	// point lexically before their use (the explicit-guard idiom).
	guarded map[types.Object]token.Pos
}

func (b *boundsCheck) collect() {
	b.assigned = make(map[types.Object][]ast.Expr)
	b.guarded = make(map[types.Object]token.Pos)
	ast.Inspect(b.fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != len(s.Lhs) {
				return true // multi-value: conservatively unbounded
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := b.pass.Info.ObjectOf(id); obj != nil {
					b.assigned[obj] = append(b.assigned[obj], s.Rhs[i])
				}
			}
		case *ast.BinaryExpr:
			// A comparison of an identifier against anything acceptable
			// marks it guarded from this position on; the surrounding
			// if-statement is assumed to reject the bad range (the
			// decoder-guard idiom always returns an error).
			switch s.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
				b.markGuard(s.X, s.Y, s.OpPos)
				b.markGuard(s.Y, s.X, s.OpPos)
			}
		}
		return true
	})
}

func (b *boundsCheck) markGuard(idExpr, against ast.Expr, pos token.Pos) {
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return
	}
	obj := b.pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if cur, ok := b.guarded[obj]; !ok || pos < cur {
		b.guarded[obj] = pos
	}
}

// bounded reports whether e is an acceptable make-size expression.
func (b *boundsCheck) bounded(e ast.Expr, depth int) bool {
	if depth > 16 {
		return false
	}
	if tv, ok := b.pass.Info.Types[e]; ok && tv.Value != nil {
		return true // constant-folded
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return b.boundedIdent(e, depth)
	case *ast.BinaryExpr:
		return b.bounded(e.X, depth+1) && b.bounded(e.Y, depth+1)
	case *ast.CallExpr:
		return b.boundedCall(e, depth)
	case *ast.SelectorExpr:
		// Constant selectors were handled above; anything else (a struct
		// field holding a wire integer) is not visibly validated.
		return false
	default:
		return false
	}
}

func (b *boundsCheck) boundedIdent(id *ast.Ident, depth int) bool {
	obj := b.pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isConst := obj.(*types.Const); isConst {
		return true
	}
	if pos, ok := b.guarded[obj]; ok && pos < id.Pos() {
		return true
	}
	exprs := b.assigned[obj]
	if len(exprs) == 0 {
		return false
	}
	for _, rhs := range exprs {
		if !b.bounded(rhs, depth+1) {
			return false
		}
	}
	return true
}

func (b *boundsCheck) boundedCall(call *ast.CallExpr, depth int) bool {
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := b.pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "len", "cap", "min", "max":
				// len/cap are memory-bounded; min/max of bounded operands
				// would need all args checked — require it.
				if fun.Name == "min" || fun.Name == "max" {
					for _, a := range call.Args {
						if !b.bounded(a, depth+1) {
							return false
						}
					}
				}
				return true
			}
		}
	}
	if b.isIntConversion(call) {
		return b.bounded(call.Args[0], depth+1)
	}
	ref, ok := resolveCallee(b.pass.Info, call)
	if !ok {
		return false
	}
	return b.pass.Annotated(ref.PkgPath, ref.ID, DirValidatedLen)
}

func (b *boundsCheck) isIntConversion(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := b.pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}
