package query

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/engine"
)

// newEngine builds a memory-only engine with eager epochs over n vertices.
func newEngine(t *testing.T, n int) *engine.Engine {
	t.Helper()
	e, err := engine.New(core.New(n), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func apply(t *testing.T, e *engine.Engine, kind coalesce.Kind, edges [][2]int32) {
	t.Helper()
	ops := make([]coalesce.Op, len(edges))
	for i, ed := range edges {
		ops[i] = coalesce.Op{Kind: kind, U: ed[0], V: ed[1]}
	}
	if _, _, err := e.Apply(ops); err != nil {
		t.Fatal(err)
	}
}

func run(t *testing.T, e *engine.Engine, req Request) Result {
	t.Helper()
	res, err := Run(e, req)
	if err != nil {
		t.Fatalf("Run(%+v): %v", req, err)
	}
	return res
}

func TestRunKindsAgainstEngine(t *testing.T) {
	// Path 0-1-2-3, pair {4,5}, singletons 6..9.
	e := newEngine(t, 10)
	apply(t, e, coalesce.OpInsert, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {4, 5}})

	for _, lin := range []bool{false, true} {
		if got := run(t, e, Request{Kind: KindKHop, U: 0, K: 1, Linearized: lin}).Verts; !reflect.DeepEqual(got, []int32{0, 1}) {
			t.Fatalf("khop(0,1) lin=%v = %v", lin, got)
		}
		if got := run(t, e, Request{Kind: KindMembers, U: 2, Linearized: lin}).Verts; !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
			t.Fatalf("members(2) lin=%v = %v", lin, got)
		}
		if got := run(t, e, Request{Kind: KindSize, U: 4, Linearized: lin}).Size; got != 2 {
			t.Fatalf("size(4) lin=%v = %d", lin, got)
		}
		res := run(t, e, Request{Kind: KindPath, U: 0, V: 3, Linearized: lin})
		if !res.Found || !reflect.DeepEqual(res.Verts, []int32{0, 1, 2, 3}) {
			t.Fatalf("path(0,3) lin=%v = %v found=%v", lin, res.Verts, res.Found)
		}
		res = run(t, e, Request{Kind: KindPath, U: 0, V: 7, Linearized: lin})
		if res.Found {
			t.Fatalf("path(0,7) lin=%v found a path %v", lin, res.Verts)
		}
		res = run(t, e, Request{Kind: KindAggregate, Linearized: lin})
		// Components: one of 4, one of 2, four singletons.
		if res.Count != 6 || !reflect.DeepEqual(res.Hist, []uint64{4, 1, 1}) {
			t.Fatalf("aggregate lin=%v = count %d hist %v", lin, res.Count, res.Hist)
		}
	}
}

func TestRunKHopRadii(t *testing.T) {
	// A star: 0 at the center of 1..4, plus a tail 4-5.
	e := newEngine(t, 7)
	apply(t, e, coalesce.OpInsert, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}})
	cases := []struct {
		k    uint32
		want []int32
	}{
		{0, []int32{0}},
		{1, []int32{0, 1, 2, 3, 4}},
		{2, []int32{0, 1, 2, 3, 4, 5}},
		{99, []int32{0, 1, 2, 3, 4, 5}},
	}
	for _, c := range cases {
		if got := run(t, e, Request{Kind: KindKHop, U: 0, K: c.k}).Verts; !reflect.DeepEqual(got, c.want) {
			t.Fatalf("khop(0,%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	e := newEngine(t, 4)
	bad := []Request{
		{Kind: KindKHop, U: -1},
		{Kind: KindKHop, U: 4},
		{Kind: KindPath, U: 0, V: 4},
		{Kind: KindPath, U: 0, V: -1},
		{Kind: Kind(42)},
	}
	for _, req := range bad {
		if _, err := Run(e, req); err == nil {
			t.Fatalf("Run(%+v) accepted an invalid request", req)
		}
	}
	// Aggregate takes no vertex; out-of-range U must not matter.
	if _, err := Run(e, Request{Kind: KindAggregate, U: 99}); err != nil {
		t.Fatalf("aggregate rejected: %v", err)
	}
}

// TestRecentTierStaleness pins the two-tier contract: a recent label query
// is served wait-free from the last PUBLISHED labelling, while a linearized
// one flushes the pipeline and reads the live structure.
func TestRecentTierStaleness(t *testing.T) {
	e := newEngine(t, 4)
	apply(t, e, coalesce.OpInsert, [][2]int32{{0, 1}})
	// Apply acks after the epoch committed, which includes the publish — so
	// recent and linearized agree here.
	if got := run(t, e, Request{Kind: KindSize, U: 0}).Size; got != 2 {
		t.Fatalf("recent size = %d, want 2", got)
	}
	if got := run(t, e, Request{Kind: KindSize, U: 0, Linearized: true}).Size; got != 2 {
		t.Fatalf("linearized size = %d, want 2", got)
	}
	// Seq must be the applied frontier the answer reflects.
	if got := run(t, e, Request{Kind: KindSize, U: 0}).Seq; got != e.AppliedSeq() {
		t.Fatalf("seq = %d, want %d", got, e.AppliedSeq())
	}
}

func TestTreePathRandomDifferential(t *testing.T) {
	// Random forests: every returned path must be a real path over tree
	// edges with the right endpoints and no repeated vertex, and found must
	// exactly match connectivity.
	rng := rand.New(rand.NewSource(11))
	const n = 64
	e := newEngine(t, n)
	edges := make(map[[2]int32]bool)
	var batch [][2]int32
	for i := 0; i < 120; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		batch = append(batch, [2]int32{u, v})
		edges[[2]int32{u, v}] = true
	}
	apply(t, e, coalesce.OpInsert, batch)

	adj := func(u int32) []int32 {
		var out []int32
		for ed := range edges {
			if ed[0] == u {
				out = append(out, ed[1])
			} else if ed[1] == u {
				out = append(out, ed[0])
			}
		}
		return out
	}
	connected := func(u, v int32) bool {
		seen := map[int32]bool{u: true}
		stack := []int32{u}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj(x) {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return seen[v]
	}

	for i := 0; i < 200; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		res := run(t, e, Request{Kind: KindPath, U: u, V: v})
		want := connected(u, v)
		if res.Found != want {
			t.Fatalf("path(%d,%d) found=%v, oracle %v", u, v, res.Found, want)
		}
		if !res.Found {
			continue
		}
		p := res.Verts
		if p[0] != u || p[len(p)-1] != v {
			t.Fatalf("path(%d,%d) endpoints %v", u, v, p)
		}
		seen := map[int32]bool{}
		for j, x := range p {
			if seen[x] {
				t.Fatalf("path(%d,%d) repeats %d: %v", u, v, x, p)
			}
			seen[x] = true
			if j > 0 && !edges[canonEdge(p[j-1], x)] {
				t.Fatalf("path(%d,%d) uses non-edge %d-%d", u, v, p[j-1], x)
			}
		}
	}
}

func canonEdge(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func TestAggregateHistogram(t *testing.T) {
	// Sizes 1,1,2,4,8 → hist[0]=2, hist[1]=1, hist[2]=1, hist[3]=1.
	lbl := []int32{0, 1, 2, 2, 4, 4, 4, 4, 8, 8, 8, 8, 8, 8, 8, 8}
	count, hist := Aggregate(lbl)
	if count != 5 || !reflect.DeepEqual(hist, []uint64{2, 1, 1, 1}) {
		t.Fatalf("count=%d hist=%v", count, hist)
	}
}

func TestExportedHelpersMatchRun(t *testing.T) {
	e := newEngine(t, 8)
	apply(t, e, coalesce.OpInsert, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	var got []int32
	if err := e.Read(func(c *core.Conn) {
		got = KHop(c.Neighbors, 8, 1, 1)
	}); err != nil {
		t.Fatal(err)
	}
	want := run(t, e, Request{Kind: KindKHop, U: 1, K: 1}).Verts
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exported KHop %v, Run %v", got, want)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("KHop output not ascending: %v", got)
	}
}
