// Package query is the read-side query executor: it answers the structural
// questions the connectivity engine's state can already support but the
// Connected(u,v) predicate never surfaced — k-hop neighborhoods, component
// membership and size, tree paths over the spanning forest, and whole-graph
// aggregates (component count + size histogram).
//
// # Consistency tiers
//
// Every query runs in one of two modes, mirroring the engine's read tiers:
//
//   - Recent (default): label-shaped queries (members, size, aggregate) are
//     answered from the wait-free published snapshot (snapshot.Labels) — no
//     locks, no dispatcher, exactly the tier replicas serve read load from.
//     Structural traversals (k-hop, tree path) have no snapshot to walk, so
//     they run read-committed under the engine's read lock, which excludes
//     only the mutating phase of an epoch.
//   - Linearized: the executor first rides the dispatcher (Flush — a full
//     epoch barrier, so every operation staged before the query arrived has
//     committed), then executes against the live structure under the read
//     lock. The answer is ordered after all prior acknowledged writes.
//
// The returned Seq is the engine's applied durable position sampled before
// the read, so it never exceeds the state the answer reflects — the same
// fencing contract ReadRecent's replica routing relies on.
package query

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// Kind selects the query. Values are wire-stable.
type Kind uint8

const (
	// KindKHop returns the vertices within K hops of U (U included),
	// ascending.
	KindKHop Kind = iota
	// KindMembers returns the vertices of U's component, ascending, plus
	// its size.
	KindMembers
	// KindSize returns only the size of U's component.
	KindSize
	// KindPath returns a path of spanning-forest edges from U to V, as the
	// vertex sequence U..V in path order; Found is false when U and V are
	// disconnected.
	KindPath
	// KindAggregate returns the component count and the size histogram:
	// Hist[i] counts components whose size s satisfies 2^i <= s < 2^(i+1).
	KindAggregate
)

// String names the kind for CLI output and errors.
func (k Kind) String() string {
	switch k {
	case KindKHop:
		return "khop"
	case KindMembers:
		return "members"
	case KindSize:
		return "size"
	case KindPath:
		return "path"
	case KindAggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one query. U is the subject vertex (KHop/Members/Size/Path),
// V the path target, K the hop bound. Linearized selects the dispatcher-
// ordered tier.
type Request struct {
	Kind       Kind
	Linearized bool
	U, V       int32
	K          uint32
}

// Result is the uniform answer shape: every kind fills Seq and the fields
// it defines and leaves the rest zero.
type Result struct {
	Seq   uint64
	Found bool
	Size  uint64
	Count uint64
	Verts []int32
	Hist  []uint64
}

// Engine is the executor's view of one engine: the wait-free snapshot
// tier, the read-committed live-structure tier, and the dispatcher barrier.
// *engine.Engine implements it.
type Engine interface {
	N() int
	Recent() *snapshot.Labels
	Read(f func(c *core.Conn)) error
	Flush()
	AppliedSeq() uint64
}

// Run executes one query against e. An out-of-range vertex or unknown kind
// is an error with nothing executed; remote front-ends map it to a bad-
// request status.
func Run(e Engine, req Request) (Result, error) {
	n := int32(e.N())
	if err := Validate(req, n); err != nil {
		return Result{}, err
	}
	if req.Linearized {
		e.Flush()
	}
	switch req.Kind {
	case KindKHop:
		return runKHop(e, req)
	case KindPath:
		return runPath(e, req)
	}
	// Label-shaped queries: wait-free off the published snapshot in recent
	// mode, live labelling under the read lock when linearized.
	seq := e.AppliedSeq()
	lbl := make([]int32, n)
	if req.Linearized {
		if err := e.Read(func(c *core.Conn) { c.ComponentLabels(lbl) }); err != nil {
			return Result{}, err
		}
	} else {
		e.Recent().CopyTo(lbl)
	}
	res := Result{Seq: seq, Found: true}
	switch req.Kind {
	case KindMembers:
		m := lbl[req.U]
		for v, l := range lbl {
			if l == m {
				res.Verts = append(res.Verts, int32(v))
			}
		}
		res.Size = uint64(len(res.Verts))
	case KindSize:
		m := lbl[req.U]
		for _, l := range lbl {
			if l == m {
				res.Size++
			}
		}
	case KindAggregate:
		res.Count, res.Hist = Aggregate(lbl)
	}
	return res, nil
}

// Validate checks a request against the vertex universe [0, n). Exported so
// the sharded coordinator and the server can reject before fan-out.
func Validate(req Request, n int32) error {
	switch req.Kind {
	case KindKHop, KindMembers, KindSize, KindPath, KindAggregate:
	default:
		return fmt.Errorf("query: unknown kind %d", uint8(req.Kind))
	}
	needU := req.Kind != KindAggregate
	if needU && (req.U < 0 || req.U >= n) {
		return fmt.Errorf("query: vertex %d out of range [0, %d)", req.U, n)
	}
	if req.Kind == KindPath && (req.V < 0 || req.V >= n) {
		return fmt.Errorf("query: vertex %d out of range [0, %d)", req.V, n)
	}
	return nil
}

// Aggregate computes the component count and log2 size histogram of a
// min-vertex labelling. Shared by both tiers and the sharded scatter-gather
// path (which composes a global labelling first).
func Aggregate(lbl []int32) (count uint64, hist []uint64) {
	sizes := make(map[int32]uint64, 64)
	for _, l := range lbl {
		sizes[l]++
	}
	var h [33]uint64
	maxB := 0
	for _, s := range sizes {
		b := bits.Len64(s) - 1 // floor(log2(s))
		h[b]++
		if b > maxB {
			maxB = b
		}
	}
	return uint64(len(sizes)), append([]uint64(nil), h[:maxB+1]...)
}

// runKHop is the breadth-first k-hop traversal, read-committed against the
// live structure (the snapshot tier has labels, not adjacency).
func runKHop(e Engine, req Request) (Result, error) {
	seq := e.AppliedSeq()
	var verts []int32
	err := e.Read(func(c *core.Conn) {
		verts = khop(c.Neighbors, int32(e.N()), req.U, req.K)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Seq: seq, Found: true, Verts: verts, Size: uint64(len(verts))}, nil
}

// khop runs BFS to depth k over any neighbor enumerator and returns the
// visited set ascending. Factored out so the sharded coordinator can reuse
// it per-round across engines.
func khop(neighbors func(int32, []int32) []int32, n, u int32, k uint32) []int32 {
	visited := make([]bool, n)
	visited[u] = true
	frontier := []int32{u}
	out := []int32{u}
	var scratch []int32
	for d := uint32(0); d < k && len(frontier) > 0; d++ {
		var next []int32
		for _, v := range frontier {
			scratch = neighbors(v, scratch[:0])
			for _, w := range scratch {
				if !visited[w] {
					visited[w] = true
					next = append(next, w)
					out = append(out, w)
				}
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runPath extracts a U→V path of spanning-forest edges: BFS over tree
// neighbors, then parent-chain reconstruction. The forest spans every
// component, so a path exists iff U and V are connected.
func runPath(e Engine, req Request) (Result, error) {
	seq := e.AppliedSeq()
	var path []int32
	var found bool
	err := e.Read(func(c *core.Conn) {
		path, found = treePath(c.TreeNeighbors, int32(e.N()), req.U, req.V)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Seq: seq, Found: found, Verts: path, Size: uint64(len(path))}, nil
}

// treePath runs BFS from u toward v over any tree-neighbor enumerator and
// reconstructs the vertex sequence u..v. Exported to the coordinator via
// TreePath.
func treePath(neighbors func(int32, []int32) []int32, n, u, v int32) ([]int32, bool) {
	if u == v {
		return []int32{u}, true
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = u
	frontier := []int32{u}
	var scratch []int32
	for len(frontier) > 0 {
		var next []int32
		for _, x := range frontier {
			scratch = neighbors(x, scratch[:0])
			for _, w := range scratch {
				if parent[w] != -1 {
					continue
				}
				parent[w] = x
				if w == v {
					var path []int32
					for at := v; ; at = parent[at] {
						path = append(path, at)
						if at == u {
							break
						}
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path, true
				}
				next = append(next, w)
			}
		}
		frontier = next
	}
	return nil, false
}

// KHop runs the BFS primitive over a caller-supplied neighbor enumerator —
// the hook the sharded coordinator uses to make the traversal boundary-
// aware (its enumerator unions the neighbor lists of every engine owning
// the vertex, including the boundary engine).
func KHop(neighbors func(int32, []int32) []int32, n, u int32, k uint32) []int32 {
	return khop(neighbors, n, u, k)
}

// TreePath runs the tree-path primitive over a caller-supplied tree-
// neighbor enumerator; the union of per-engine spanning forests preserves
// the union graph's connectivity, so the sharded coordinator's composed
// enumerator still finds a path exactly when one exists.
func TreePath(neighbors func(int32, []int32) []int32, n, u, v int32) ([]int32, bool) {
	return treePath(neighbors, n, u, v)
}
