package static

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestBasic(t *testing.T) {
	c := New(5)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if !c.Connected(0, 2) || c.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	c.BatchDelete([]graph.Edge{{U: 1, V: 2}})
	if c.Connected(0, 2) {
		t.Fatal("delete not reflected")
	}
	if c.NumEdges() != 1 || c.N() != 5 {
		t.Fatalf("NumEdges=%d N=%d", c.NumEdges(), c.N())
	}
}

func TestIgnoresLoopsAndDups(t *testing.T) {
	c := New(3)
	c.BatchInsert([]graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}})
	if c.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", c.NumEdges())
	}
}

func TestComponentsLabels(t *testing.T) {
	c := New(6)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	lbl := c.Components()
	if lbl[0] != lbl[1] || lbl[2] != lbl[3] || lbl[0] == lbl[2] || lbl[4] == lbl[5] {
		t.Fatalf("labels wrong: %v", lbl)
	}
}

func TestRandomAgainstUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 64
	c := New(n)
	live := map[uint64]graph.Edge{}
	for step := 0; step < 50; step++ {
		var ins, del []graph.Edge
		for j := 0; j < 30; j++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			if u != v {
				ins = append(ins, graph.Edge{U: u, V: v}.Canon())
			}
		}
		c.BatchInsert(ins)
		for _, e := range ins {
			live[e.Key()] = e
		}
		for _, e := range live {
			if rng.Intn(4) == 0 {
				del = append(del, e)
			}
		}
		c.BatchDelete(del)
		for _, e := range del {
			delete(live, e.Key())
		}
		uf := unionfind.New(n)
		for _, e := range live {
			uf.Union(e.U, e.V)
		}
		qs := make([]graph.Edge, 0, 100)
		for q := 0; q < 100; q++ {
			qs = append(qs, graph.Edge{U: graph.Vertex(rng.Intn(n)), V: graph.Vertex(rng.Intn(n))})
		}
		got := c.BatchConnected(qs)
		for i, q := range qs {
			if got[i] != uf.Connected(q.U, q.V) {
				t.Fatalf("step %d: query %v wrong", step, q)
			}
		}
	}
}
