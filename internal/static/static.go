// Package static is the strawman comparator from the paper's introduction:
// a batch "dynamic" connectivity structure that stores the edge set and
// recomputes connected components from scratch (with a parallel union sweep)
// whenever connectivity is needed after an update. Its per-batch cost is
// O(m + n) regardless of batch size — the behaviour the paper's algorithm is
// designed to beat for small and medium batches.
package static

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// Conn is the recompute-per-batch connectivity structure.
type Conn struct {
	n      int
	edges  map[uint64]graph.Edge
	labels []int32
	dirty  bool
}

// New creates an empty graph on n vertices.
func New(n int) *Conn {
	return &Conn{n: n, edges: make(map[uint64]graph.Edge), dirty: true}
}

// N returns the vertex count.
func (c *Conn) N() int { return c.n }

// NumEdges returns the current edge count.
func (c *Conn) NumEdges() int { return len(c.edges) }

// BatchInsert adds edges (duplicates and loops ignored).
func (c *Conn) BatchInsert(es []graph.Edge) {
	for _, e := range es {
		if e.IsLoop() {
			continue
		}
		c.edges[e.Key()] = e.Canon()
	}
	c.dirty = true
}

// BatchDelete removes edges (absent edges ignored).
func (c *Conn) BatchDelete(es []graph.Edge) {
	for _, e := range es {
		delete(c.edges, e.Key())
	}
	c.dirty = true
}

// recompute rebuilds component labels with a parallel union sweep: O(m+n).
func (c *Conn) recompute() {
	uf := unionfind.NewConcurrent(c.n)
	es := make([]graph.Edge, 0, len(c.edges))
	for _, e := range c.edges {
		es = append(es, e)
	}
	parallel.For(len(es), 128, func(i int) {
		uf.Union(es[i].U, es[i].V)
	})
	c.labels = make([]int32, c.n)
	parallel.For(c.n, 4096, func(i int) {
		c.labels[i] = uf.Find(int32(i))
	})
	c.dirty = false
}

// BatchConnected answers k queries, recomputing first if the graph changed.
func (c *Conn) BatchConnected(qs []graph.Edge) []bool {
	if c.dirty {
		c.recompute()
	}
	out := make([]bool, len(qs))
	parallel.For(len(qs), 1024, func(i int) {
		out[i] = c.labels[qs[i].U] == c.labels[qs[i].V]
	})
	return out
}

// Connected answers one query.
func (c *Conn) Connected(u, v graph.Vertex) bool {
	return c.BatchConnected([]graph.Edge{{U: u, V: v}})[0]
}

// Components returns the current component label of every vertex.
func (c *Conn) Components() []int32 {
	if c.dirty {
		c.recompute()
	}
	out := make([]int32, c.n)
	copy(out, c.labels)
	return out
}
