package wire

import (
	"testing"

	"repro/internal/pubsub"
	"repro/internal/query"
)

// The wire package is dependency-free, so it mirrors the query and pubsub
// enum bounds as constants; this pins the mirrors to the real enums.
func TestEnumBoundsMatchPackages(t *testing.T) {
	if maxQueryKind != uint8(query.KindAggregate) {
		t.Fatalf("maxQueryKind = %d, query.KindAggregate = %d", maxQueryKind, query.KindAggregate)
	}
	if maxEventKind != uint8(pubsub.KindGap) {
		t.Fatalf("maxEventKind = %d, pubsub.KindGap = %d", maxEventKind, pubsub.KindGap)
	}
}
