// Package wire defines the binary protocol between cmd/connserver and the
// public client package: a dependency-free, length-prefixed frame format in
// the same idiom as internal/wal (little-endian integers, CRC32-Castagnoli
// over every payload, decoders that never panic on arbitrary bytes).
//
// Frame layout (both directions, all integers little-endian):
//
//	frame   : payloadLen uint32 | crc32c(payload) uint32 | payload
//	request : id uint64 | cmd uint8 | body
//	response: id uint64 | status uint8 | body
//
// Requests and responses are matched by id, not by position: a client may
// keep many frames in flight on one connection (pipelining) and the server
// answers each as its epoch commits. That is the whole point of the
// protocol — concurrent frames blocked in the Batcher coalesce into the
// large epochs Theorem 1 rewards, exactly as concurrent goroutines do in
// process.
//
// Bodies per command (strings are len uint16 | bytes; booleans are packed
// little-endian into ceil(k/8) bitmap bytes):
//
//	CmdBatch      : ns | nOps uint32 | (kind uint8 | u uint32 | v uint32)*
//	                → seq uint64 | nOps uint32 | bitmap  (one bit per op)
//	CmdReadNow    : ns | nPairs uint32 | (u uint32 | v uint32)*
//	                → seq uint64 | nPairs uint32 | bitmap
//	CmdReadRecent : like CmdReadNow
//	CmdCreate     : ns | n uint32 | flags uint8 | shards uint32  (FlagDurable;
//	                shards 0 or 1 = unsharded, k >= 2 = hash-partitioned)
//	                → empty
//	CmdDrop       : ns                               → empty
//	CmdList       : empty                            → count uint32 |
//	                (ns | n uint32 | flags uint8 | shards uint32)*
//	CmdStats      : ns                               → 17 uint64 counters |
//	                nShards uint32 | (6 uint64 per shard)*
//	CmdCheckpoint : ns                               → path string
//	CmdPing       : empty                            → empty
//	CmdSubscribe  : ns | fromSeq uint64 | shard uint32 → epoch stream (below)
//	CmdQuery      : ns | qkind uint8 | linearized uint8 | u uint32 | v uint32 |
//	                k uint32
//	                → seq uint64 | found uint8 | size uint64 | count uint64 |
//	                  nVerts uint32 | (v uint32)* | nHist uint32 | (uint64)*
//	CmdSubscribeEvents : ns | comps uint8 | nPairs uint32 | (u,v)*
//	                → event stream (below)
//
// A subscription against a sharded namespace names the shard engine to
// stream (0..k-1, or k for the boundary engine); against an unsharded
// namespace the shard field must be zero.
//
// CmdQuery's qkind selects a structural query (internal/query's Kind enum:
// k-hop, members, size, tree path, aggregate); linearized selects the fenced
// tier. CmdSubscribeEvents turns the connection into a one-way connectivity
// event stream: comps != 0 subscribes to component merge/split events, and
// each watch pair subscribes to that pair's connected/disconnected
// transitions. The server answers with StatusOK responses carrying event
// bodies (a hello event first, acknowledging the subscription), until the
// namespace goes away or either side closes the connection:
//
//	event : kind uint8 | epoch uint64 | seq uint64 | label uint32 |
//	        u uint32 | v uint32 | nOthers uint32 | (uint32)*
//
// The seq on batch and read-tier responses is the replication position the
// answer reflects: on a primary the last durable WAL seq, on a replica the
// last applied epoch seq (zero for memory-only namespaces). Clients use it
// for read-your-writes fencing when routing bounded-stale reads to replicas.
//
// CmdSubscribe turns the connection into a one-way epoch stream: the server
// keeps pushing StatusOK responses carrying the subscribe request's id, each
// with one of four stream bodies, until the subscriber falls too far behind,
// the namespace goes away, or either side closes the connection:
//
//	snapshot : seq uint64 | n uint32 | final uint8 | count uint32 | (u,v)*
//	delta    : seq uint64 | base uint64 | n uint32 |
//	           nAdd uint32 | add (u,v)* | nDel uint32 | del (u,v)*
//	epoch    : seq uint64 | nIns uint32 | ins (u,v)* | nDel uint32 | del (u,v)*
//	epochraw : seq uint64 | codec uint8 | len uint32 | bytes
//
// A snapshot tells the follower to discard its state and rebuild from the
// transferred edge set (split across consecutive frames sharing seq; the
// final flag marks the last chunk) — sent when the follower's resume point
// predates the primary's WAL floor. A delta frame may follow the snapshot:
// it advances the just-applied snapshot (which must be at seq base, with the
// same universe n) to seq by applying add then del — the primary's newest
// incremental checkpoint, shipped so catch-up replays less WAL. Epoch frames
// are the WAL records themselves, strictly sequential from the snapshot's
// (or resume point's) seq; the raw variant carries the record still in its
// WAL codec encoding (the version byte from the log header) so compressed
// records cross the wire without re-encoding — the follower decodes via the
// codec registry with prevSeq = seq-1.
//
// Error responses (Status != StatusOK) carry a message string instead of
// the command body. A StatusReadOnly error's message is the address of the
// primary the replica follows — a redirect, not free text.
//
//conn:decoders
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrame bounds a single frame's payload; a longer length prefix is
// treated as a protocol error rather than an allocation request.
const MaxFrame = 1 << 26

// frameLen is the byte length of the frame header (payloadLen + crc).
const frameLen = 4 + 4

// maxName bounds a namespace name on the wire; the server enforces its own
// (stricter) validity rules on top.
const maxName = 255

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame is returned by ReadFrame for any malformed frame: a bad length
// prefix, a checksum mismatch, or a truncated payload. The connection is
// unusable afterwards — framing has lost sync — and should be closed.
var ErrFrame = errors.New("wire: malformed frame")

// ErrDecode is returned for a CRC-clean payload that does not decode as a
// request or response.
var ErrDecode = errors.New("wire: malformed message")

// Cmd identifies a request type.
type Cmd uint8

const (
	CmdBatch Cmd = iota + 1
	CmdReadNow
	CmdReadRecent
	CmdCreate
	CmdDrop
	CmdList
	CmdStats
	CmdCheckpoint
	CmdPing
	CmdSubscribe
	CmdQuery
	CmdSubscribeEvents
)

// Status is a response's result code. Anything but StatusOK is an error and
// the response carries only a message.
type Status uint8

const (
	StatusOK Status = iota
	// StatusBadRequest: the request was understood but invalid (vertex out
	// of range, bad namespace name, durable namespace without a data dir).
	StatusBadRequest
	// StatusNotFound: the namespace does not exist.
	StatusNotFound
	// StatusExists: Create of a namespace that already exists.
	StatusExists
	// StatusDraining: the server is shutting down and refuses new work.
	StatusDraining
	// StatusInternal: the server failed to execute a valid request.
	StatusInternal
	// StatusReadOnly: the request mutates state but was sent to a read-only
	// replica; the message is the primary's address (a redirect).
	StatusReadOnly
)

// FlagDurable marks a namespace as write-ahead-logged under the server's
// data directory.
const FlagDurable uint8 = 1 << 0

// Kind labels one operation inside a CmdBatch frame. Values match the
// coalescing layer's ordering (insert, delete, query).
type Kind uint8

const (
	KindInsert Kind = iota
	KindDelete
	KindQuery
)

// Op is one operation of a CmdBatch request.
type Op struct {
	Kind Kind
	U, V int32
}

// Pair is one vertex pair of a read-tier request.
type Pair struct {
	U, V int32
}

// NSInfo describes one namespace in a CmdList response. Shards is the hash
// partition count for sharded namespaces; 0 means unsharded.
type NSInfo struct {
	Name    string
	N       int
	Durable bool
	Shards  int
}

// Stats is the fixed counter block of a CmdStats response — the subset of
// conn.BatcherStats that is meaningful across the wire, plus the
// replication counters the server layers on top.
type Stats struct {
	Epochs            uint64
	Ops               uint64
	MaxEpoch          uint64
	SnapshotPublishes uint64
	SnapshotRebuilds  uint64
	WALRecords        uint64
	WALBytes          uint64
	WALAppendNanos    uint64
	Checkpoints       uint64

	// Durability pipeline. WALRawBytes is the pre-codec size of everything
	// logged (compare with WALBytes for the codec's ratio); WALFsyncs and
	// WALFsyncsSaved split the record count into fsyncs issued vs fsyncs
	// absorbed by group commit; CheckpointsDelta counts incremental
	// checkpoints (Checkpoints counts fulls).
	WALRawBytes      uint64
	WALFsyncs        uint64
	WALFsyncsSaved   uint64
	CheckpointsDelta uint64

	// Replication. On a primary: connected epoch-stream subscribers, the
	// last epoch seq teed to them, and the largest per-subscriber lag in
	// epochs. On a replica, AppliedSeq is the last epoch applied from the
	// primary's stream (zero on a primary).
	Subscribers    uint64
	LastShippedSeq uint64
	MaxFollowerLag uint64
	AppliedSeq     uint64

	// Event hub. Connected CmdSubscribeEvents subscribers, events placed in
	// their buffers, and events discarded because a subscriber's buffer was
	// full (each drop run is later summarized to that subscriber by one gap
	// event).
	EventSubscribers uint64
	EventsDelivered  uint64
	EventsDropped    uint64

	// Shards is the per-engine breakdown of a sharded namespace, one entry
	// per shard engine plus a final entry for the boundary engine. Empty for
	// unsharded namespaces.
	Shards []ShardStats
}

// ShardStats is one engine's slice of a sharded namespace's counters.
type ShardStats struct {
	Epochs     uint64
	Ops        uint64
	WALRecords uint64
	WALSeq     uint64
	WALFloor   uint64
	AppliedSeq uint64
}

// isZero reports whether the stats block is empty, in which case a response
// carries no stats body at all.
func (s *Stats) isZero() bool {
	return len(s.Shards) == 0 && s.fields() == [20]uint64{}
}

const statsLen = 20 * 8
const shardStatsLen = 6 * 8

// Request is one decoded client frame. Fields beyond ID/Cmd are populated
// per command as documented in the package comment.
type Request struct {
	ID      uint64
	Cmd     Cmd
	NS      string
	Ops     []Op   // CmdBatch
	Pairs   []Pair // CmdReadNow / CmdReadRecent; CmdSubscribeEvents: watch pairs
	N       uint32 // CmdCreate
	Durable bool   // CmdCreate
	Shards  uint32 // CmdCreate: 0 or 1 = unsharded, k >= 2 = hash-partitioned; CmdSubscribe: shard engine selector
	FromSeq uint64 // CmdSubscribe: resume after this epoch seq

	// CmdQuery: the structural query (QKind is internal/query's Kind enum;
	// Linearized selects the fenced tier; U/V/K are its operands).
	QKind      uint8
	Linearized bool
	U, V       int32
	K          uint32

	// CmdSubscribeEvents: subscribe to component merge/split events (the
	// watch pairs ride in Pairs).
	Comps bool
}

// maxQueryKind bounds CmdQuery's QKind byte — the highest internal/query
// Kind value (KindAggregate). The wire package is dependency-free, so the
// bound is mirrored here; query_test cross-checks the two enums.
const maxQueryKind = 4

// maxEventKind bounds an event body's kind byte — the highest
// internal/pubsub Kind value (KindGap); mirrored like maxQueryKind.
const maxEventKind = 5

// SnapshotBody is one chunk of a full-state transfer on a subscription
// stream: the follower discards its state and rebuilds from the edges of
// consecutive chunks sharing Seq; Final marks the last chunk.
type SnapshotBody struct {
	Seq   uint64
	N     uint32
	Final bool
	Edges []Pair
}

// EpochBody is one shipped epoch on a subscription stream — a WAL record:
// the raw insert and delete batches the primary's dispatcher committed at
// Seq, in application order (inserts, then deletes).
type EpochBody struct {
	Seq uint64
	Ins []Pair
	Del []Pair
}

// EpochRawBody is one shipped epoch still in its WAL codec encoding: Enc is
// the record payload exactly as appended to the primary's log and Codec is
// the format version byte from the log header. The follower decodes through
// the codec registry with prevSeq = Seq-1 (delta codecs encode against the
// preceding record's seq). Compressed records thus cross the wire unchanged.
type EpochRawBody struct {
	Seq   uint64
	Codec uint8
	Enc   []byte
}

// DeltaBody is one incremental checkpoint shipped during catch-up: applied
// on top of a full snapshot at seq Base over universe N, the Add then Del
// edge batches advance the follower to Seq without replaying the WAL span
// the delta summarizes.
type DeltaBody struct {
	Seq  uint64
	Base uint64
	N    uint32
	Add  []Pair
	Del  []Pair
}

// QueryBody is a CmdQuery answer: which of Size/Count/Verts/Hist is
// meaningful depends on the request's QKind (internal/query's Result
// documents the mapping). Seq is the replication position the answer
// reflects, zero for sharded namespaces.
type QueryBody struct {
	Seq   uint64
	Found bool
	Size  uint64
	Count uint64
	Verts []int32
	Hist  []uint64
}

// EventBody is one connectivity event on a CmdSubscribeEvents stream —
// internal/pubsub's Event, field for field. Kind is pubsub's Kind enum;
// Label/U/V/Others are populated per kind.
type EventBody struct {
	Kind   uint8
	Epoch  uint64
	Seq    uint64
	Label  int32
	U, V   int32
	Others []int32
}

// Response is one decoded server frame. Msg is set iff Status != StatusOK;
// the other fields are populated per the request's command.
type Response struct {
	ID         uint64
	Status     Status
	Msg        string
	Bits       []bool        // CmdBatch / read tiers
	Seq        uint64        // CmdBatch / read tiers: replication position of the answer
	Namespaces []NSInfo      // CmdList
	Stats      Stats         // CmdStats
	Path       string        // CmdCheckpoint
	Snapshot   *SnapshotBody // CmdSubscribe stream: full-state chunk
	Delta      *DeltaBody    // CmdSubscribe stream: incremental checkpoint
	Epoch      *EpochBody    // CmdSubscribe stream: one shipped epoch
	EpochRaw   *EpochRawBody // CmdSubscribe stream: epoch in WAL codec form
	Query      *QueryBody    // CmdQuery
	Event      *EventBody    // CmdSubscribeEvents stream: one connectivity event
}

// ---------------------------------------------------------------- framing

// WriteFrame writes one length-prefixed, checksummed frame. The caller owns
// buffering and flushing (both endpoints wrap connections in bufio).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: payload of %d bytes exceeds MaxFrame", ErrFrame, len(payload))
	}
	var hdr [frameLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame and returns its verified payload. io.EOF at a
// frame boundary is returned as io.EOF; a partial header or payload becomes
// io.ErrUnexpectedEOF; length or checksum violations return ErrFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	if plen > MaxFrame {
		return nil, fmt.Errorf("%w: length prefix %d exceeds MaxFrame", ErrFrame, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrFrame)
	}
	return payload, nil
}

// ---------------------------------------------------------------- encoding

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendPairs(dst []byte, ps []Pair) []byte {
	for _, p := range ps {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.U))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.V))
	}
	return dst
}

func appendBitmap(dst []byte, bits []bool) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(bits)))
	var cur byte
	for i, b := range bits {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(bits)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// EncodeRequest serializes a request payload (not including the frame
// header; pass the result to WriteFrame).
func EncodeRequest(r *Request) ([]byte, error) {
	if len(r.NS) > maxName {
		return nil, fmt.Errorf("%w: namespace name of %d bytes", ErrDecode, len(r.NS))
	}
	buf := binary.LittleEndian.AppendUint64(make([]byte, 0, 64), r.ID)
	buf = append(buf, byte(r.Cmd))
	switch r.Cmd {
	case CmdBatch:
		buf = appendString(buf, r.NS)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Ops)))
		for _, op := range r.Ops {
			buf = append(buf, byte(op.Kind))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.V))
		}
	case CmdReadNow, CmdReadRecent:
		buf = appendString(buf, r.NS)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Pairs)))
		for _, p := range r.Pairs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p.V))
		}
	case CmdCreate:
		buf = appendString(buf, r.NS)
		buf = binary.LittleEndian.AppendUint32(buf, r.N)
		var flags uint8
		if r.Durable {
			flags |= FlagDurable
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint32(buf, r.Shards)
	case CmdDrop, CmdStats, CmdCheckpoint:
		buf = appendString(buf, r.NS)
	case CmdSubscribe:
		buf = appendString(buf, r.NS)
		buf = binary.LittleEndian.AppendUint64(buf, r.FromSeq)
		buf = binary.LittleEndian.AppendUint32(buf, r.Shards)
	case CmdQuery:
		if r.QKind > maxQueryKind {
			return nil, fmt.Errorf("%w: unknown query kind %d", ErrDecode, r.QKind)
		}
		buf = appendString(buf, r.NS)
		buf = append(buf, r.QKind)
		var lin uint8
		if r.Linearized {
			lin = 1
		}
		buf = append(buf, lin)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.V))
		buf = binary.LittleEndian.AppendUint32(buf, r.K)
	case CmdSubscribeEvents:
		buf = appendString(buf, r.NS)
		var comps uint8
		if r.Comps {
			comps = 1
		}
		buf = append(buf, comps)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Pairs)))
		buf = appendPairs(buf, r.Pairs)
	case CmdList, CmdPing:
		// no body
	default:
		return nil, fmt.Errorf("%w: unknown command %d", ErrDecode, r.Cmd)
	}
	return buf, nil
}

// EncodeResponse serializes a response payload.
func EncodeResponse(r *Response) ([]byte, error) {
	buf := binary.LittleEndian.AppendUint64(make([]byte, 0, 64), r.ID)
	buf = append(buf, byte(r.Status))
	if r.Status != StatusOK {
		if len(r.Msg) > 1<<15 {
			r.Msg = r.Msg[:1<<15]
		}
		return appendString(buf, r.Msg), nil
	}
	switch {
	case r.Bits != nil:
		buf = append(buf, bodyBits)
		buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
		buf = appendBitmap(buf, r.Bits)
	case r.Snapshot != nil:
		s := r.Snapshot
		buf = append(buf, bodySnapshot)
		buf = binary.LittleEndian.AppendUint64(buf, s.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, s.N)
		var final uint8
		if s.Final {
			final = 1
		}
		buf = append(buf, final)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Edges)))
		buf = appendPairs(buf, s.Edges)
	case r.Delta != nil:
		dl := r.Delta
		buf = append(buf, bodyDelta)
		buf = binary.LittleEndian.AppendUint64(buf, dl.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, dl.Base)
		buf = binary.LittleEndian.AppendUint32(buf, dl.N)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dl.Add)))
		buf = appendPairs(buf, dl.Add)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dl.Del)))
		buf = appendPairs(buf, dl.Del)
	case r.Epoch != nil:
		e := r.Epoch
		buf = append(buf, bodyEpoch)
		buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Ins)))
		buf = appendPairs(buf, e.Ins)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Del)))
		buf = appendPairs(buf, e.Del)
	case r.EpochRaw != nil:
		er := r.EpochRaw
		buf = append(buf, bodyEpochRaw)
		buf = binary.LittleEndian.AppendUint64(buf, er.Seq)
		buf = append(buf, er.Codec)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(er.Enc)))
		buf = append(buf, er.Enc...)
	case r.Query != nil:
		q := r.Query
		buf = append(buf, bodyQuery)
		buf = binary.LittleEndian.AppendUint64(buf, q.Seq)
		var found uint8
		if q.Found {
			found = 1
		}
		buf = append(buf, found)
		buf = binary.LittleEndian.AppendUint64(buf, q.Size)
		buf = binary.LittleEndian.AppendUint64(buf, q.Count)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.Verts)))
		for _, v := range q.Verts {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(q.Hist)))
		for _, h := range q.Hist {
			buf = binary.LittleEndian.AppendUint64(buf, h)
		}
	case r.Event != nil:
		ev := r.Event
		if ev.Kind > maxEventKind {
			return nil, fmt.Errorf("%w: unknown event kind %d", ErrDecode, ev.Kind)
		}
		buf = append(buf, bodyEvent)
		buf = append(buf, ev.Kind)
		buf = binary.LittleEndian.AppendUint64(buf, ev.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, ev.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Label))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.V))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ev.Others)))
		for _, o := range ev.Others {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
		}
	case r.Namespaces != nil:
		buf = append(buf, bodyList)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Namespaces)))
		for _, ns := range r.Namespaces {
			if len(ns.Name) > maxName {
				return nil, fmt.Errorf("%w: namespace name of %d bytes", ErrDecode, len(ns.Name))
			}
			buf = appendString(buf, ns.Name)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ns.N))
			var flags uint8
			if ns.Durable {
				flags |= FlagDurable
			}
			buf = append(buf, flags)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ns.Shards))
		}
	case r.Path != "":
		buf = append(buf, bodyPath)
		buf = appendString(buf, r.Path)
	case !r.Stats.isZero():
		buf = append(buf, bodyStats)
		for _, v := range r.Stats.fields() {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Stats.Shards)))
		for _, sh := range r.Stats.Shards {
			for _, v := range [6]uint64{sh.Epochs, sh.Ops, sh.WALRecords,
				sh.WALSeq, sh.WALFloor, sh.AppliedSeq} {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		}
	default:
		buf = append(buf, bodyEmpty)
	}
	return buf, nil
}

// Response body tags: the response encodes which body shape follows, so a
// response is decodable without remembering the request's command.
const (
	bodyEmpty byte = iota
	bodyBits
	bodyList
	bodyPath
	bodyStats
	bodySnapshot
	bodyEpoch
	bodyEpochRaw
	bodyDelta
	bodyQuery
	bodyEvent
)

func (s *Stats) fields() [20]uint64 {
	return [20]uint64{
		s.Epochs, s.Ops, s.MaxEpoch, s.SnapshotPublishes, s.SnapshotRebuilds,
		s.WALRecords, s.WALBytes, s.WALAppendNanos, s.Checkpoints,
		s.Subscribers, s.LastShippedSeq, s.MaxFollowerLag, s.AppliedSeq,
		s.WALRawBytes, s.WALFsyncs, s.WALFsyncsSaved, s.CheckpointsDelta,
		s.EventSubscribers, s.EventsDelivered, s.EventsDropped,
	}
}

func (s *Stats) setFields(f [20]uint64) {
	s.Epochs, s.Ops, s.MaxEpoch, s.SnapshotPublishes, s.SnapshotRebuilds,
		s.WALRecords, s.WALBytes, s.WALAppendNanos, s.Checkpoints =
		f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7], f[8]
	s.Subscribers, s.LastShippedSeq, s.MaxFollowerLag, s.AppliedSeq =
		f[9], f[10], f[11], f[12]
	s.WALRawBytes, s.WALFsyncs, s.WALFsyncsSaved, s.CheckpointsDelta =
		f[13], f[14], f[15], f[16]
	s.EventSubscribers, s.EventsDelivered, s.EventsDropped =
		f[17], f[18], f[19]
}

// ---------------------------------------------------------------- decoding

// reader is a bounds-checked cursor over a payload; every take reports
// failure instead of slicing out of range.
type reader struct {
	p  []byte
	ok bool
}

func (d *reader) bytes(n int) []byte {
	if !d.ok || n < 0 || len(d.p) < n {
		d.ok = false
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *reader) u8() uint8 {
	b := d.bytes(1)
	if !d.ok {
		return 0
	}
	return b[0]
}

func (d *reader) u16() uint16 {
	b := d.bytes(2)
	if !d.ok {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *reader) u32() uint32 {
	b := d.bytes(4)
	if !d.ok {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *reader) u64() uint64 {
	b := d.bytes(8)
	if !d.ok {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// flag reads a canonical boolean byte: 0 or 1 only — any other value would
// not re-encode byte-identically, so it fails the decode.
func (d *reader) flag() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.ok = false
		return false
	}
}

func (d *reader) str() string {
	n := int(d.u16())
	return string(d.bytes(n))
}

// name reads a namespace string, enforcing the same maxName bound the
// encoders apply — anything a decoder accepts must re-encode (the fuzz
// contract).
func (d *reader) name() string {
	n := int(d.u16())
	if n > maxName {
		d.ok = false
		return ""
	}
	return string(d.bytes(n))
}

// count reads a uint32 element count and validates it against the bytes
// remaining at perElem bytes each, so a hostile count cannot force a giant
// allocation.
//
//conn:validated-len
func (d *reader) count(perElem int) int {
	n := int(d.u32())
	if !d.ok || n < 0 || (perElem > 0 && n > len(d.p)/perElem) {
		d.ok = false
		return 0
	}
	return n
}

func (d *reader) bitmap() []bool {
	n := d.count(0)
	if !d.ok || n > 8*len(d.p) {
		d.ok = false
		return nil
	}
	raw := d.bytes((n + 7) / 8)
	if !d.ok {
		return nil
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return bits
}

// DecodeRequest parses a request payload. It never panics on arbitrary
// input; anything malformed returns ErrDecode.
func DecodeRequest(p []byte) (*Request, error) {
	d := &reader{p: p, ok: true}
	r := &Request{ID: d.u64(), Cmd: Cmd(d.u8())}
	switch r.Cmd {
	case CmdBatch:
		r.NS = d.name()
		n := d.count(9)
		if d.ok {
			r.Ops = make([]Op, n)
			for i := range r.Ops {
				r.Ops[i] = Op{Kind: Kind(d.u8()), U: int32(d.u32()), V: int32(d.u32())}
				if r.Ops[i].Kind > KindQuery {
					d.ok = false
				}
			}
		}
	case CmdReadNow, CmdReadRecent:
		r.NS = d.name()
		n := d.count(8)
		if d.ok {
			r.Pairs = make([]Pair, n)
			for i := range r.Pairs {
				r.Pairs[i] = Pair{U: int32(d.u32()), V: int32(d.u32())}
			}
		}
	case CmdCreate:
		r.NS = d.name()
		r.N = d.u32()
		r.Durable = d.u8()&FlagDurable != 0
		r.Shards = d.u32()
	case CmdDrop, CmdStats, CmdCheckpoint:
		r.NS = d.name()
	case CmdSubscribe:
		r.NS = d.name()
		r.FromSeq = d.u64()
		r.Shards = d.u32()
	case CmdQuery:
		r.NS = d.name()
		r.QKind = d.u8()
		if r.QKind > maxQueryKind {
			d.ok = false
		}
		r.Linearized = d.flag()
		r.U = int32(d.u32())
		r.V = int32(d.u32())
		r.K = d.u32()
	case CmdSubscribeEvents:
		r.NS = d.name()
		r.Comps = d.flag()
		r.Pairs = d.pairs(d.count(8))
	case CmdList, CmdPing:
		// no body
	default:
		return nil, fmt.Errorf("%w: unknown command %d", ErrDecode, r.Cmd)
	}
	if !d.ok || len(d.p) != 0 {
		return nil, fmt.Errorf("%w: bad %v request", ErrDecode, r.Cmd)
	}
	return r, nil
}

// pairs reads n vertex pairs. Callers hand it a d.count-validated n, but it
// re-checks against the remaining bytes so the bound is locally evident.
func (d *reader) pairs(n int) []Pair {
	if !d.ok {
		return nil
	}
	if n < 0 || n > len(d.p)/8 {
		d.ok = false
		return nil
	}
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{U: int32(d.u32()), V: int32(d.u32())}
	}
	if !d.ok {
		return nil
	}
	return ps
}

// verts reads n vertex ids; same locally-evident bound re-check as pairs.
func (d *reader) verts(n int) []int32 {
	if !d.ok {
		return nil
	}
	if n < 0 || n > len(d.p)/4 {
		d.ok = false
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.u32())
	}
	if !d.ok {
		return nil
	}
	return vs
}

// DecodeResponse parses a response payload. It never panics on arbitrary
// input; anything malformed returns ErrDecode.
func DecodeResponse(p []byte) (*Response, error) {
	d := &reader{p: p, ok: true}
	r := &Response{ID: d.u64(), Status: Status(d.u8())}
	if !d.ok || r.Status > StatusReadOnly {
		return nil, fmt.Errorf("%w: bad response status", ErrDecode)
	}
	if r.Status != StatusOK {
		r.Msg = d.str()
		if !d.ok || len(d.p) != 0 {
			return nil, fmt.Errorf("%w: bad error response", ErrDecode)
		}
		return r, nil
	}
	switch tag := d.u8(); tag {
	case bodyEmpty:
	case bodyBits:
		r.Seq = d.u64()
		r.Bits = d.bitmap()
		if r.Bits == nil && d.ok {
			r.Bits = []bool{} // distinguish "empty result" from "no body"
		}
	case bodySnapshot:
		s := &SnapshotBody{Seq: d.u64(), N: d.u32(), Final: false}
		switch d.u8() {
		case 0:
		case 1:
			s.Final = true
		default:
			d.ok = false // non-canonical flag byte would not re-encode
		}
		s.Edges = d.pairs(d.count(8))
		if d.ok {
			r.Snapshot = s
		}
	case bodyEpoch:
		// Each count immediately precedes its pairs, so both lists go
		// through the same hostile-count validation (d.count) the snapshot
		// body uses.
		e := &EpochBody{Seq: d.u64()}
		e.Ins = d.pairs(d.count(8))
		e.Del = d.pairs(d.count(8))
		if d.ok {
			r.Epoch = e
		}
	case bodyEpochRaw:
		er := &EpochRawBody{Seq: d.u64(), Codec: d.u8()}
		// The length prefix goes through the same remaining-bytes check as
		// element counts; the bytes are copied out of the payload so the
		// record may be retained past the frame buffer.
		er.Enc = append([]byte(nil), d.bytes(d.count(1))...)
		if d.ok {
			r.EpochRaw = er
		}
	case bodyDelta:
		dl := &DeltaBody{Seq: d.u64(), Base: d.u64(), N: d.u32()}
		dl.Add = d.pairs(d.count(8))
		dl.Del = d.pairs(d.count(8))
		if d.ok {
			r.Delta = dl
		}
	case bodyQuery:
		q := &QueryBody{Seq: d.u64(), Found: d.flag(), Size: d.u64(), Count: d.u64()}
		q.Verts = d.verts(d.count(4))
		if n := d.count(8); d.ok && n > 0 {
			q.Hist = make([]uint64, n)
			for i := range q.Hist {
				q.Hist[i] = d.u64()
			}
		}
		if d.ok {
			r.Query = q
		}
	case bodyEvent:
		ev := &EventBody{Kind: d.u8(), Epoch: d.u64(), Seq: d.u64(),
			Label: int32(d.u32()), U: int32(d.u32()), V: int32(d.u32())}
		if ev.Kind > maxEventKind {
			d.ok = false
		}
		ev.Others = d.verts(d.count(4))
		if d.ok {
			r.Event = ev
		}
	case bodyList:
		n := d.count(11)
		if d.ok {
			r.Namespaces = make([]NSInfo, n)
			for i := range r.Namespaces {
				name := d.name()
				nn := d.u32()
				flags := d.u8()
				shards := d.u32()
				r.Namespaces[i] = NSInfo{Name: name, N: int(nn),
					Durable: flags&FlagDurable != 0, Shards: int(shards)}
			}
		}
	case bodyPath:
		r.Path = d.str()
	case bodyStats:
		var f [20]uint64
		for i := range f {
			f[i] = d.u64()
		}
		r.Stats.setFields(f)
		if n := d.count(shardStatsLen); d.ok && n > 0 {
			r.Stats.Shards = make([]ShardStats, n)
			for i := range r.Stats.Shards {
				r.Stats.Shards[i] = ShardStats{
					Epochs: d.u64(), Ops: d.u64(), WALRecords: d.u64(),
					WALSeq: d.u64(), WALFloor: d.u64(), AppliedSeq: d.u64(),
				}
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown response body tag %d", ErrDecode, tag)
	}
	if !d.ok || len(d.p) != 0 {
		return nil, fmt.Errorf("%w: bad response body", ErrDecode)
	}
	return r, nil
}

// StatusError converts a non-OK response into a Go error; the client package
// wraps these for its callers. Returns nil for StatusOK.
func StatusError(r *Response) error {
	if r.Status == StatusOK {
		return nil
	}
	return fmt.Errorf("wire: %s: %s", statusName(r.Status), r.Msg)
}

func statusName(s Status) string {
	switch s {
	case StatusBadRequest:
		return "bad request"
	case StatusNotFound:
		return "namespace not found"
	case StatusExists:
		return "namespace exists"
	case StatusDraining:
		return "server draining"
	case StatusInternal:
		return "internal error"
	case StatusReadOnly:
		return "read-only replica"
	}
	return fmt.Sprintf("status %d", s)
}
