package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

func roundTripRequest(t *testing.T, r *Request) *Request {
	t.Helper()
	p, err := EncodeRequest(r)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, p); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Cmd: CmdPing},
		{ID: 2, Cmd: CmdList},
		{ID: 3, Cmd: CmdCreate, NS: "social", N: 1 << 20, Durable: true},
		{ID: 4, Cmd: CmdCreate, NS: "scratch", N: 16},
		{ID: 14, Cmd: CmdCreate, NS: "wide", N: 1 << 16, Durable: true, Shards: 4},
		{ID: 5, Cmd: CmdDrop, NS: "scratch"},
		{ID: 6, Cmd: CmdStats, NS: "social"},
		{ID: 7, Cmd: CmdCheckpoint, NS: "social"},
		{ID: 8, Cmd: CmdBatch, NS: "social", Ops: []Op{
			{Kind: KindInsert, U: 0, V: 1},
			{Kind: KindDelete, U: 7, V: 3},
			{Kind: KindQuery, U: 2, V: 2},
		}},
		{ID: 9, Cmd: CmdBatch, NS: "social", Ops: []Op{}},
		{ID: 10, Cmd: CmdReadNow, NS: "a", Pairs: []Pair{{1, 2}, {3, 4}}},
		{ID: 11, Cmd: CmdReadRecent, NS: "b", Pairs: []Pair{{0, 0}}},
		{ID: 12, Cmd: CmdSubscribe, NS: "social", FromSeq: 1 << 40},
		{ID: 13, Cmd: CmdSubscribe, NS: "g"},
		{ID: 17, Cmd: CmdSubscribe, NS: "wide", FromSeq: 7, Shards: 3},
		{ID: 18, Cmd: CmdQuery, NS: "social", QKind: 0, Linearized: true, U: 5, K: 3},
		{ID: 19, Cmd: CmdQuery, NS: "g", QKind: 3, U: 1, V: 9},
		{ID: 20, Cmd: CmdQuery, NS: "g", QKind: 4},
		{ID: 21, Cmd: CmdSubscribeEvents, NS: "g", Comps: true, Pairs: []Pair{{1, 2}, {3, 4}}},
		{ID: 22, Cmd: CmdSubscribeEvents, NS: "g"},
	}
	for _, r := range reqs {
		got := roundTripRequest(t, r)
		if got.ID != r.ID || got.Cmd != r.Cmd || got.NS != r.NS ||
			got.N != r.N || got.Durable != r.Durable || got.Shards != r.Shards ||
			got.FromSeq != r.FromSeq ||
			got.QKind != r.QKind || got.Linearized != r.Linearized ||
			got.U != r.U || got.V != r.V || got.K != r.K || got.Comps != r.Comps ||
			len(got.Ops) != len(r.Ops) || len(got.Pairs) != len(r.Pairs) {
			t.Fatalf("round trip mismatch: sent %+v, got %+v", r, got)
		}
		for i := range r.Ops {
			if got.Ops[i] != r.Ops[i] {
				t.Fatalf("op %d: sent %+v, got %+v", i, r.Ops[i], got.Ops[i])
			}
		}
		for i := range r.Pairs {
			if got.Pairs[i] != r.Pairs[i] {
				t.Fatalf("pair %d: sent %+v, got %+v", i, r.Pairs[i], got.Pairs[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusNotFound, Msg: "no such namespace"},
		{ID: 3, Status: StatusOK, Bits: []bool{true, false, true, true, false, false, true, false, true}},
		{ID: 4, Status: StatusOK, Bits: []bool{}},
		{ID: 5, Status: StatusOK, Namespaces: []NSInfo{
			{Name: "a", N: 10, Durable: true}, {Name: "b", N: 1 << 20},
			{Name: "c", N: 1 << 16, Durable: true, Shards: 8},
		}},
		{ID: 6, Status: StatusOK, Path: "/data/ns/checkpoint-0000000000000001.ckpt"},
		{ID: 7, Status: StatusOK, Stats: Stats{Epochs: 3, Ops: 100, MaxEpoch: 64,
			SnapshotPublishes: 2, SnapshotRebuilds: 1, WALRecords: 3, WALBytes: 4096,
			WALAppendNanos: 12345, Checkpoints: 1,
			Subscribers: 2, LastShippedSeq: 99, MaxFollowerLag: 4, AppliedSeq: 95,
			WALRawBytes: 8192, WALFsyncs: 2, WALFsyncsSaved: 1, CheckpointsDelta: 3}},
		{ID: 15, Status: StatusOK, Stats: Stats{Epochs: 9, Ops: 40, Shards: []ShardStats{
			{Epochs: 4, Ops: 22, WALRecords: 4, WALSeq: 4, WALFloor: 1, AppliedSeq: 4},
			{Epochs: 5, Ops: 18, WALRecords: 5, WALSeq: 5, WALFloor: 0, AppliedSeq: 5},
		}}},
		{ID: 16, Status: StatusOK, Stats: Stats{Shards: []ShardStats{{}}}},
		{ID: 8, Status: StatusDraining, Msg: "shutting down"},
		{ID: 9, Status: StatusReadOnly, Msg: "127.0.0.1:7421"},
		{ID: 10, Status: StatusOK, Bits: []bool{true, false}, Seq: 42},
		{ID: 11, Status: StatusOK, Snapshot: &SnapshotBody{
			Seq: 17, N: 1 << 20, Final: true, Edges: []Pair{{1, 2}, {3, 4}}}},
		{ID: 12, Status: StatusOK, Snapshot: &SnapshotBody{Seq: 17, N: 8, Edges: []Pair{}}},
		{ID: 13, Status: StatusOK, Epoch: &EpochBody{
			Seq: 18, Ins: []Pair{{5, 6}}, Del: []Pair{{7, 8}, {9, 10}}}},
		{ID: 14, Status: StatusOK, Epoch: &EpochBody{Seq: 19, Ins: []Pair{}, Del: []Pair{}}},
		{ID: 17, Status: StatusOK, EpochRaw: &EpochRawBody{
			Seq: 20, Codec: 2, Enc: []byte{0x14, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}}},
		{ID: 18, Status: StatusOK, Delta: &DeltaBody{
			Seq: 30, Base: 17, N: 64, Add: []Pair{{1, 2}, {3, 4}}, Del: []Pair{{5, 6}}}},
		{ID: 19, Status: StatusOK, Stats: Stats{
			EventSubscribers: 3, EventsDelivered: 120, EventsDropped: 7}},
		{ID: 20, Status: StatusOK, Query: &QueryBody{
			Seq: 44, Found: true, Size: 3, Verts: []int32{1, 2, 3}}},
		{ID: 21, Status: StatusOK, Query: &QueryBody{
			Seq: 45, Found: true, Count: 4, Verts: []int32{}, Hist: []uint64{2, 1, 1}}},
		{ID: 22, Status: StatusOK, Query: &QueryBody{Verts: []int32{}}},
		{ID: 23, Status: StatusOK, Event: &EventBody{
			Kind: 1, Epoch: 3, Seq: 9, Label: 0, U: 4, V: 5, Others: []int32{6, 7}}},
		{ID: 24, Status: StatusOK, Event: &EventBody{
			Kind: 5, Epoch: 8, Seq: 40, Label: -1, U: -1, V: -1, Others: []int32{}}},
	}
	for _, r := range resps {
		p, err := EncodeResponse(r)
		if err != nil {
			t.Fatalf("EncodeResponse: %v", err)
		}
		got, err := DecodeResponse(p)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", r, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip mismatch:\nsent %+v\ngot  %+v", r, got)
		}
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	p, err := EncodeRequest(&Request{ID: 9, Cmd: CmdBatch, NS: "x",
		Ops: []Op{{Kind: KindInsert, U: 1, V: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, p); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip every byte in turn: ReadFrame must either error or (if the flip
	// hit the length prefix making the frame short) report unexpected EOF —
	// never return a payload that then decodes as a different valid request.
	for i := range clean {
		dirty := append([]byte(nil), clean...)
		dirty[i] ^= 0x40
		payload, err := ReadFrame(bytes.NewReader(dirty))
		if err != nil {
			continue
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			continue
		}
		// A surviving decode must be byte-identical to the original request
		// (possible only if the flip canceled out, which XOR 0x40 cannot).
		if got.ID != 9 {
			t.Fatalf("flip at %d produced a silently different request: %+v", i, got)
		}
	}

	// Truncations: every proper prefix must fail cleanly.
	for i := 0; i < len(clean); i++ {
		if _, err := ReadFrame(bytes.NewReader(clean[:i])); err == nil {
			t.Fatalf("truncation to %d bytes did not error", i)
		}
	}
}

func TestReadFrameBoundsAllocation(t *testing.T) {
	var hdr [8]byte
	hdr[0] = 0xff
	hdr[1] = 0xff
	hdr[2] = 0xff
	hdr[3] = 0x7f // ~2G length prefix
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized length prefix: got %v, want ErrFrame", err)
	}
}

func TestDecodeHostileCounts(t *testing.T) {
	// A CmdBatch whose op count claims far more elements than the payload
	// holds must fail without allocating for the claimed count.
	p, err := EncodeRequest(&Request{ID: 1, Cmd: CmdBatch, NS: "x",
		Ops: []Op{{Kind: KindInsert, U: 1, V: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Op count sits after id(8) + cmd(1) + nsLen(2) + ns(1).
	off := 8 + 1 + 2 + 1
	p[off], p[off+1], p[off+2], p[off+3] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeRequest(p); err == nil {
		t.Fatal("hostile op count decoded successfully")
	}
}

func TestDecodeRejectsOversizedName(t *testing.T) {
	// A namespace string longer than maxName must be rejected by the
	// decoder, not just by the encoder — otherwise a decoded request could
	// fail to re-encode (the fuzz canonicality contract).
	var p []byte
	p = append(p, make([]byte, 8)...) // id
	p = append(p, byte(CmdDrop))
	p = append(p, 0x2c, 0x01) // nsLen = 300
	p = append(p, make([]byte, 300)...)
	if _, err := DecodeRequest(p); err == nil {
		t.Fatal("request with a 300-byte namespace decoded successfully")
	}
}

func TestDecodeRequestArbitraryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		DecodeRequest(b)  // must not panic
		DecodeResponse(b) // must not panic
	}
}

func TestDecodeRejectsNonCanonicalQueryBytes(t *testing.T) {
	// A query request whose kind byte exceeds the enum, or whose linearized
	// flag is neither 0 nor 1, must be rejected: an accepted value has to
	// re-encode byte-identically, and the encoder only emits canonical bytes.
	clean, err := EncodeRequest(&Request{ID: 1, Cmd: CmdQuery, NS: "g", QKind: 2, U: 3})
	if err != nil {
		t.Fatal(err)
	}
	off := 8 + 1 + 2 + 1 // id + cmd + nsLen + ns
	for _, mut := range []struct {
		name string
		at   int
		b    byte
	}{
		{"query kind out of range", off, maxQueryKind + 1},
		{"non-canonical linearized flag", off + 1, 2},
	} {
		dirty := append([]byte(nil), clean...)
		dirty[mut.at] = mut.b
		if _, err := DecodeRequest(dirty); err == nil {
			t.Fatalf("%s decoded successfully", mut.name)
		}
	}

	// Same for an event body's kind byte.
	ev, err := EncodeResponse(&Response{ID: 2, Status: StatusOK,
		Event: &EventBody{Kind: 1, Epoch: 1, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ev[8+1+1] = maxEventKind + 1 // id + status + tag
	if _, err := DecodeResponse(ev); err == nil {
		t.Fatal("event with out-of-range kind decoded successfully")
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized payload: got %v, want ErrFrame", err)
	}
}

// FuzzWireDecode exercises both decoders on arbitrary bytes: neither may
// panic, and anything either accepts must re-encode and re-decode to the
// same value (the same accept-implies-canonical contract the WAL and
// checkpoint fuzzers enforce).
func FuzzWireDecode(f *testing.F) {
	seed := []*Request{
		{ID: 1, Cmd: CmdPing},
		{ID: 2, Cmd: CmdCreate, NS: "ns", N: 100, Durable: true},
		{ID: 3, Cmd: CmdBatch, NS: "g", Ops: []Op{{KindInsert, 0, 1}, {KindQuery, 1, 2}}},
		{ID: 4, Cmd: CmdReadRecent, NS: "g", Pairs: []Pair{{5, 6}}},
		{ID: 5, Cmd: CmdSubscribe, NS: "g", FromSeq: 12},
	}
	for _, r := range seed {
		p, err := EncodeRequest(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	for _, r := range []*Response{
		{ID: 7, Status: StatusOK, Bits: []bool{true, false, true}, Seq: 9},
		{ID: 8, Status: StatusOK, Snapshot: &SnapshotBody{Seq: 3, N: 64, Final: true, Edges: []Pair{{1, 2}}}},
		{ID: 9, Status: StatusOK, Epoch: &EpochBody{Seq: 4, Ins: []Pair{{1, 2}}, Del: []Pair{{3, 4}}}},
		{ID: 10, Status: StatusOK, EpochRaw: &EpochRawBody{Seq: 5, Codec: 2, Enc: []byte{5, 0, 0, 0, 0, 0, 0, 0}}},
		{ID: 11, Status: StatusOK, Delta: &DeltaBody{Seq: 6, Base: 3, N: 32, Add: []Pair{{1, 2}}, Del: []Pair{{3, 4}}}},
	} {
		rp, err := EncodeResponse(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rp)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkCanonical(t, data)
	})
}

// checkCanonical is the shared accept-implies-canonical oracle: anything
// either decoder accepts must re-encode and re-decode to the same value.
func checkCanonical(t *testing.T, data []byte) {
	t.Helper()
	if req, err := DecodeRequest(data); err == nil {
		re, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		req2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("request not canonical: %+v vs %+v", req, req2)
		}
	}
	if resp, err := DecodeResponse(data); err == nil {
		re, err := EncodeResponse(resp)
		if err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
		resp2, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("re-encoded response failed to decode: %v", err)
		}
		if !reflect.DeepEqual(resp, resp2) {
			t.Fatalf("response not canonical: %+v vs %+v", resp, resp2)
		}
	}
}

// FuzzQueryWireDecode drives the same canonicality oracle from seeds in the
// query/event corner of the protocol: CmdQuery and CmdSubscribeEvents
// requests, query result bodies and event stream bodies, including the
// non-canonical-byte traps (flag bytes, enum bounds) the seeds sit next to.
func FuzzQueryWireDecode(f *testing.F) {
	for _, r := range []*Request{
		{ID: 1, Cmd: CmdQuery, NS: "g", QKind: 0, U: 3, K: 2},
		{ID: 2, Cmd: CmdQuery, NS: "g", QKind: 3, Linearized: true, U: 1, V: 7},
		{ID: 3, Cmd: CmdQuery, NS: "g", QKind: 4},
		{ID: 4, Cmd: CmdSubscribeEvents, NS: "g", Comps: true, Pairs: []Pair{{0, 5}}},
		{ID: 5, Cmd: CmdSubscribeEvents, NS: "g", Pairs: []Pair{}},
	} {
		p, err := EncodeRequest(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	for _, r := range []*Response{
		{ID: 6, Status: StatusOK, Query: &QueryBody{Seq: 9, Found: true, Size: 2, Verts: []int32{0, 5}}},
		{ID: 7, Status: StatusOK, Query: &QueryBody{Found: true, Count: 3, Verts: []int32{}, Hist: []uint64{1, 2}}},
		{ID: 8, Status: StatusOK, Event: &EventBody{Kind: 2, Epoch: 4, Seq: 11, Label: 0, U: 1, V: 2, Others: []int32{9}}},
		{ID: 9, Status: StatusOK, Event: &EventBody{Kind: 5, Epoch: 6, Seq: 12, Others: []int32{}}},
	} {
		p, err := EncodeResponse(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkCanonical(t, data)
	})
}
