package parallel

import (
	"sync/atomic"
	"testing"
)

func TestAutoGrainBounds(t *testing.T) {
	for _, c := range []struct {
		n, p int
	}{{1, 1}, {10, 24}, {1000, 24}, {100000, 24}, {10_000_000, 24}, {100, 1}} {
		g := autoGrain(c.n, c.p)
		if g < MinAutoGrain || g > DefaultGrain {
			t.Fatalf("autoGrain(%d,%d) = %d outside [%d,%d]", c.n, c.p, g, MinAutoGrain, DefaultGrain)
		}
	}
	// Large inputs should reach the cap so blocks stay numerous.
	if g := autoGrain(10_000_000, 4); g != DefaultGrain {
		t.Fatalf("autoGrain huge = %d, want %d", g, DefaultGrain)
	}
}

func TestForSmallInputsRunInline(t *testing.T) {
	// With n below the auto grain floor, the body must execute on the
	// calling goroutine (no spawn): verify by observing sequential order.
	var order []int
	For(100, 0, func(i int) { order = append(order, i) }) // data race iff parallel
	if len(order) != 100 {
		t.Fatalf("ran %d iterations", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestForRangeCounterPathCoversAll(t *testing.T) {
	// Force the shared-counter path: many blocks (> 4P).
	n := 1 << 20
	var sum atomic.Int64
	ForRange(n, 64, func(lo, hi int) {
		s := int64(0)
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		sum.Add(s)
	})
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForExplicitGrainOne(t *testing.T) {
	// Grain 1 with expensive bodies is the per-component pattern; all
	// indices must still run exactly once.
	n := 37
	hits := make([]atomic.Int32, n)
	For(n, 1, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestReduceAutoGrain(t *testing.T) {
	n := 1 << 18
	got := Reduce(n, 0, 0, func(i int) int { return 1 }, func(a, b int) int { return a + b })
	if got != n {
		t.Fatalf("Reduce = %d", got)
	}
}

func TestGroupBySmallFastPath(t *testing.T) {
	// n <= 24 takes the quadratic path; semantics must match the general
	// one: partition with first-occurrence group ordering.
	keys := []uint64{9, 9, 3, 9, 3, 7}
	gs := GroupBy(keys)
	if len(gs) != 3 {
		t.Fatalf("groups = %d", len(gs))
	}
	if gs[0].Key != 9 || len(gs[0].Indices) != 3 {
		t.Fatalf("first group wrong: %+v", gs[0])
	}
	if gs[1].Key != 3 || len(gs[1].Indices) != 2 {
		t.Fatalf("second group wrong: %+v", gs[1])
	}
	if gs[2].Key != 7 || len(gs[2].Indices) != 1 {
		t.Fatalf("third group wrong: %+v", gs[2])
	}
	total := 0
	for _, g := range gs {
		total += len(g.Indices)
	}
	if total != len(keys) {
		t.Fatal("fast path lost indices")
	}
}

func TestGroupByBoundaryAt24(t *testing.T) {
	// Exactly at and just above the fast-path cutoff.
	for _, n := range []int{24, 25} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i % 5)
		}
		gs := GroupBy(keys)
		if len(gs) != 5 {
			t.Fatalf("n=%d: groups = %d", n, len(gs))
		}
		seen := make([]bool, n)
		for _, g := range gs {
			for _, idx := range g.Indices {
				if seen[idx] || keys[idx] != g.Key {
					t.Fatalf("n=%d: bad index %d", n, idx)
				}
				seen[idx] = true
			}
		}
	}
}
