package parallel

import "math/bits"

// hash64 is a fixed xorshift-multiply mix (splitmix64 finalizer). The paper's
// semisort assumes a uniformly random hash on keys; splitmix64's avalanche
// behaviour is a standard practical stand-in.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash64 exposes the package's mixing function for callers that need a
// consistent hash (e.g. the parallel dictionary).
func Hash64(x uint64) uint64 { return hash64(x) }

// Group is one equivalence class produced by GroupBy: the common key and the
// indices (into the input) of the elements carrying it.
type Group struct {
	Key     uint64
	Indices []int
}

// GroupBy semisorts the inputs by key: it returns one Group per distinct key,
// each listing the input indices holding that key. Groups are in no
// particular order (semisorted, not sorted). O(n) expected work.
func GroupBy(keys []uint64) []Group {
	n := len(keys)
	if n == 0 {
		return nil
	}
	if n <= 24 {
		// Small-batch fast path: quadratic scan beats allocating the
		// bucket arrays (batch operations issue many tiny groupings).
		var groups []Group
		var used uint32
		for i := 0; i < n; i++ {
			if used&(1<<uint(i)) != 0 {
				continue
			}
			g := Group{Key: keys[i], Indices: []int{i}}
			for j := i + 1; j < n; j++ {
				if used&(1<<uint(j)) == 0 && keys[j] == keys[i] {
					g.Indices = append(g.Indices, j)
					used |= 1 << uint(j)
				}
			}
			groups = append(groups, g)
		}
		return groups
	}
	// Bucket count: next power of two >= 2n for low collision chains.
	nb := 1 << bits.Len(uint(2*n-1))
	mask := uint64(nb - 1)
	// Count per bucket.
	cnt := make([]int, nb+1)
	bkt := make([]int, n)
	for i := 0; i < n; i++ {
		b := int(hash64(keys[i]) & mask)
		bkt[i] = b
		cnt[b]++
	}
	off := make([]int, nb+1)
	acc := 0
	for b := 0; b < nb; b++ {
		off[b] = acc
		acc += cnt[b]
	}
	off[nb] = acc
	pos := make([]int, nb)
	copy(pos, off[:nb])
	order := make([]int, n)
	for i := 0; i < n; i++ {
		b := bkt[i]
		order[pos[b]] = i
		pos[b]++
	}
	// Within each bucket, split by exact key (buckets are tiny in
	// expectation, so a quadratic-in-bucket pass is linear overall).
	var groups []Group
	for b := 0; b < nb; b++ {
		lo, hi := off[b], off[b+1]
		if lo == hi {
			continue
		}
		for i := lo; i < hi; i++ {
			idx := order[i]
			if idx < 0 {
				continue
			}
			k := keys[idx]
			g := Group{Key: k, Indices: []int{idx}}
			for j := i + 1; j < hi; j++ {
				idx2 := order[j]
				if idx2 >= 0 && keys[idx2] == k {
					g.Indices = append(g.Indices, idx2)
					order[j] = -1
				}
			}
			groups = append(groups, g)
		}
	}
	return groups
}

// GroupByParallel is GroupBy with the counting and scattering phases run in
// parallel when n is large. Group discovery within buckets remains
// sequential per bucket but buckets are processed concurrently.
//
// The worker count and grain are snapshotted once on entry: benchmarks call
// SetWorkers concurrently, and the per-block output slots below must stay
// aligned with the block partition ForRange actually uses. ForRange
// guarantees block boundaries depend only on (nb, grain), so indexing by
// lo/grain gives every block its own slot — no two blocks ever share one.
func GroupByParallel(keys []uint64) []Group {
	n := len(keys)
	p := Workers()
	if n < 1<<14 || p <= 1 {
		return GroupBy(keys)
	}
	nb := 1 << bits.Len(uint(2*n-1))
	mask := uint64(nb - 1)
	bkt := make([]int, n)
	For(n, 4096, func(i int) { bkt[i] = int(hash64(keys[i]) & mask) })
	cnt := make([]int, nb+1)
	for i := 0; i < n; i++ {
		cnt[bkt[i]]++
	}
	off := make([]int, nb+1)
	acc := 0
	for b := 0; b < nb; b++ {
		off[b] = acc
		acc += cnt[b]
	}
	off[nb] = acc
	pos := make([]int, nb)
	copy(pos, off[:nb])
	order := make([]int, n)
	for i := 0; i < n; i++ {
		b := bkt[i]
		order[pos[b]] = i
		pos[b]++
	}
	grain := (nb + p - 1) / p
	perBlock := make([][]Group, (nb+grain-1)/grain)
	ForRange(nb, grain, func(lo, hi int) {
		var out []Group
		for b := lo; b < hi; b++ {
			l, h := off[b], off[b+1]
			for i := l; i < h; i++ {
				idx := order[i]
				if idx < 0 {
					continue
				}
				k := keys[idx]
				g := Group{Key: k, Indices: []int{idx}}
				for j := i + 1; j < h; j++ {
					idx2 := order[j]
					if idx2 >= 0 && keys[idx2] == k {
						g.Indices = append(g.Indices, idx2)
						order[j] = -1
					}
				}
				out = append(out, g)
			}
		}
		perBlock[lo/grain] = out
	})
	var groups []Group
	for _, g := range perBlock {
		groups = append(groups, g...)
	}
	return groups
}
