package parallel

// Scan computes the exclusive prefix sums of src under +, writing them into a
// new slice and returning the total. This is the classic two-pass Blelloch
// scan: per-block sums, a sequential scan over the (few) block sums, then a
// per-block local scan seeded with the block offset. O(n) work, O(lg n) depth
// for bounded block counts.
func Scan(src []int) ([]int, int) {
	n := len(src)
	out := make([]int, n)
	total := ScanInto(src, out)
	return out, total
}

// ScanInto is Scan writing into a caller-provided slice (src and dst may
// alias). Returns the total sum.
func ScanInto(src, dst []int) int {
	n := len(src)
	if n == 0 {
		return 0
	}
	p := Workers()
	grain := (n + p - 1) / p
	if grain < 2048 {
		grain = 2048
	}
	blocks := (n + grain - 1) / grain
	if blocks == 1 {
		acc := 0
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
		return acc
	}
	sums := make([]int, blocks)
	ForRange(n, grain, func(lo, hi int) {
		acc := 0
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[lo/grain] = acc
	})
	total := 0
	for b := 0; b < blocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	ForRange(n, grain, func(lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
	})
	return total
}

// Pack returns the elements of src whose flag is true, preserving order.
// O(n) work, O(lg n) depth.
func Pack[T any](src []T, flags []bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	ind := make([]int, n)
	For(n, 4096, func(i int) {
		if flags[i] {
			ind[i] = 1
		}
	})
	offs, total := Scan(ind)
	out := make([]T, total)
	For(n, 4096, func(i int) {
		if flags[i] {
			out[offs[i]] = src[i]
		}
	})
	return out
}

// Filter returns the elements of src satisfying pred, preserving order.
func Filter[T any](src []T, pred func(T) bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	flags := make([]bool, n)
	For(n, 2048, func(i int) { flags[i] = pred(src[i]) })
	return Pack(src, flags)
}

// PackIndex returns the indices i in [0, n) for which pred(i) holds.
func PackIndex(n int, pred func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	flags := make([]bool, n)
	For(n, 2048, func(i int) { flags[i] = pred(i) })
	idx := make([]int, n)
	For(n, 4096, func(i int) { idx[i] = i })
	return Pack(idx, flags)
}

// Map applies f to each element of src in parallel.
func Map[T, U any](src []T, f func(T) U) []U {
	out := make([]U, len(src))
	For(len(src), 0, func(i int) { out[i] = f(src[i]) })
	return out
}
