package parallel

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDoRunsBoth(t *testing.T) {
	var a, b atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatalf("Do did not run both branches: a=%v b=%v", a.Load(), b.Load())
	}
}

func TestDo3RunsAll(t *testing.T) {
	var n atomic.Int64
	Do3(func() { n.Add(1) }, func() { n.Add(1) }, func() { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("Do3 ran %d branches, want 3", n.Load())
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 5000, 123457} {
		hits := make([]int32, n)
		For(n, 13, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForRangePartition(t *testing.T) {
	n := 10000
	var covered [10000]int32
	ForRange(n, 37, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i := 0; i < n; i++ {
		if covered[i] != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i])
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 100000
	got := SumInt(n, func(i int) int { return i })
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("SumInt = %d, want %d", got, want)
	}
}

func TestMaxInt(t *testing.T) {
	vals := []int{3, 9, 2, 9, 1, -5}
	got := MaxInt(len(vals), -1<<62, func(i int) int { return vals[i] })
	if got != 9 {
		t.Fatalf("MaxInt = %d, want 9", got)
	}
	if got := MaxInt(0, -7, func(int) int { return 0 }); got != -7 {
		t.Fatalf("MaxInt empty = %d, want identity -7", got)
	}
}

func TestScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 2048, 2049, 100000} {
		src := make([]int, n)
		for i := range src {
			src[i] = rng.Intn(100)
		}
		out, total := Scan(src)
		acc := 0
		for i := 0; i < n; i++ {
			if out[i] != acc {
				t.Fatalf("n=%d Scan[%d]=%d want %d", n, i, out[i], acc)
			}
			acc += src[i]
		}
		if total != acc {
			t.Fatalf("n=%d total=%d want %d", n, total, acc)
		}
	}
}

func TestScanIntoAliased(t *testing.T) {
	src := []int{1, 2, 3, 4, 5}
	total := ScanInto(src, src)
	want := []int{0, 1, 3, 6, 10}
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}
	for i := range want {
		if src[i] != want[i] {
			t.Fatalf("aliased scan[%d] = %d, want %d", i, src[i], want[i])
		}
	}
}

func TestPackPreservesOrder(t *testing.T) {
	src := []int{10, 11, 12, 13, 14, 15}
	flags := []bool{true, false, true, false, false, true}
	got := Pack(src, flags)
	want := []int{10, 12, 15}
	if len(got) != len(want) {
		t.Fatalf("Pack len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pack[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFilterAndPackIndex(t *testing.T) {
	src := Tabulate(1000, func(i int) int { return i })
	evens := Filter(src, func(x int) bool { return x%2 == 0 })
	if len(evens) != 500 {
		t.Fatalf("Filter kept %d, want 500", len(evens))
	}
	for i, v := range evens {
		if v != 2*i {
			t.Fatalf("Filter[%d] = %d, want %d", i, v, 2*i)
		}
	}
	idx := PackIndex(100, func(i int) bool { return i >= 90 })
	if len(idx) != 10 || idx[0] != 90 || idx[9] != 99 {
		t.Fatalf("PackIndex wrong: %v", idx)
	}
}

func TestTabulateAndFillAndMap(t *testing.T) {
	s := Tabulate(100, func(i int) int { return i * i })
	if s[7] != 49 {
		t.Fatalf("Tabulate[7] = %d", s[7])
	}
	Fill(s, -1)
	for i, v := range s {
		if v != -1 {
			t.Fatalf("Fill[%d] = %d", i, v)
		}
	}
	m := Map([]int{1, 2, 3}, func(x int) int { return x + 1 })
	if m[0] != 2 || m[2] != 4 {
		t.Fatalf("Map wrong: %v", m)
	}
}

func TestSetWorkersRestores(t *testing.T) {
	old := SetWorkers(1)
	defer SetWorkers(old)
	if Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", Workers())
	}
	// Primitives still correct with one worker.
	if got := SumInt(1000, func(i int) int { return 1 }); got != 1000 {
		t.Fatalf("SumInt under P=1 = %d", got)
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers after reset = %d", Workers())
	}
}

func TestGroupByCollectsEqualKeys(t *testing.T) {
	keys := []uint64{5, 7, 5, 5, 9, 7}
	groups := GroupBy(keys)
	byKey := map[uint64][]int{}
	for _, g := range groups {
		if _, dup := byKey[g.Key]; dup {
			t.Fatalf("key %d appears in two groups", g.Key)
		}
		byKey[g.Key] = g.Indices
	}
	if len(byKey) != 3 {
		t.Fatalf("got %d groups, want 3", len(byKey))
	}
	sort.Ints(byKey[5])
	if len(byKey[5]) != 3 || byKey[5][0] != 0 || byKey[5][1] != 2 || byKey[5][2] != 3 {
		t.Fatalf("group for key 5 wrong: %v", byKey[5])
	}
}

func TestGroupByEmpty(t *testing.T) {
	if g := GroupBy(nil); g != nil {
		t.Fatalf("GroupBy(nil) = %v, want nil", g)
	}
}

func TestGroupByPropertyPartition(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r % 50)
		}
		groups := GroupByParallel(keys)
		seen := make([]bool, len(keys))
		for _, g := range groups {
			for _, idx := range g.Indices {
				if idx < 0 || idx >= len(keys) || seen[idx] || keys[idx] != g.Key {
					return false
				}
				seen[idx] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByParallelLarge(t *testing.T) {
	n := 1 << 15
	keys := make([]uint64, n)
	rng := rand.New(rand.NewSource(42))
	for i := range keys {
		keys[i] = uint64(rng.Intn(1000))
	}
	groups := GroupByParallel(keys)
	total := 0
	for _, g := range groups {
		total += len(g.Indices)
		for _, idx := range g.Indices {
			if keys[idx] != g.Key {
				t.Fatalf("index %d has key %d, group key %d", idx, keys[idx], g.Key)
			}
		}
	}
	if total != n {
		t.Fatalf("groups cover %d elements, want %d", total, n)
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("suspicious collision on tiny inputs")
	}
}
