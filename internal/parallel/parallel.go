// Package parallel provides the fork-join work-depth primitives that the
// paper's MT-RAM model assumes: parallel loops, binary fork-join, reductions,
// prefix sums, packing and semisorting. All primitives are implemented on top
// of goroutines with explicit grain control so that scheduling overhead is
// amortized against useful work (Go offers no fine-grained work stealing, so
// grain sizes substitute for it).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the fan-out of every parallel primitive in this package.
// It defaults to GOMAXPROCS and may be overridden (e.g. by scalability
// benchmarks) via SetWorkers.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetWorkers sets the global worker bound used by all parallel primitives and
// returns the previous value. Passing p <= 0 resets to GOMAXPROCS.
func SetWorkers(p int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int64(p)))
}

// Workers reports the current worker bound.
func Workers() int { return int(maxWorkers.Load()) }

// Do runs f and g as a binary fork-join: g executes on the current goroutine
// while f may execute concurrently. Both have completed when Do returns.
func Do(f, g func()) {
	if Workers() <= 1 {
		f()
		g()
		return
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	g()
	wg.Wait()
}

// Do3 runs three functions as a fork-join.
func Do3(f, g, h func()) {
	Do(f, func() { Do(g, h) })
}

// DefaultGrain caps the automatic block size used by For when the caller
// passes grain <= 0; MinAutoGrain floors it. The floor matters most: a
// goroutine spawn costs on the order of a microsecond, so blocks of cheap
// loop bodies must hold at least a few hundred iterations or scheduling
// dominates (this library issues many small batch operations per update).
// Callers whose bodies are individually expensive pass an explicit grain.
const (
	DefaultGrain = 2048
	MinAutoGrain = 256
)

func autoGrain(n, p int) int {
	g := n / (4 * p)
	if g < MinAutoGrain {
		g = MinAutoGrain
	}
	if g > DefaultGrain {
		g = DefaultGrain
	}
	return g
}

// For executes body(i) for every i in [0, n) with parallelism bounded by the
// worker count. Iterations are distributed in contiguous blocks of the given
// grain; grain <= 0 selects a grain automatically.
func For(n int, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) over a partition of [0, n) into contiguous
// blocks, in parallel. This is the primitive behind For; use it directly when
// the body can share per-block state.
//
// Two contracts callers rely on:
//   - Block boundaries are deterministic given (n, grain): block b covers
//     [b*grain, min(n, (b+1)*grain)), so lo is always a multiple of grain
//     and lo/grain indexes per-block state uniquely — even if SetWorkers
//     changes concurrently.
//   - At most Workers() (as read on entry) bodies run concurrently, the
//     calling goroutine included.
func ForRange(n int, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = autoGrain(n, p)
	}
	if p <= 1 || n <= grain {
		body(0, n)
		return
	}
	// A shared counter feeds blocks to at most p workers (the calling
	// goroutine is one of them), so peak concurrent bodies never exceed the
	// SetWorkers bound and idle workers steal remaining blocks — an
	// approximation of work stealing for irregular bodies.
	blocks := (n + grain - 1) / grain
	workers := p
	if workers > blocks {
		workers = blocks
	}
	var next atomic.Int64
	run := func() {
		for {
			b := int(next.Add(1)) - 1
			if b >= blocks {
				return
			}
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// Reduce combines f(i) for i in [0, n) under the associative operation op,
// starting from the identity value id.
func Reduce[T any](n int, grain int, id T, f func(i int) T, op func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	p := Workers()
	if grain <= 0 {
		grain = autoGrain(n, p)
	}
	blocks := (n + grain - 1) / grain
	if p <= 1 || blocks == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	partial := make([]T, blocks)
	ForRange(n, grain, func(lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		partial[lo/grain] = acc
	})
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// MaxInt returns the maximum of f(i) over [0, n), or lo if n == 0.
func MaxInt(n int, lo int, f func(i int) int) int {
	return Reduce(n, 0, lo, f, func(a, b int) int {
		if a >= b {
			return a
		}
		return b
	})
}

// SumInt returns the sum of f(i) over [0, n).
func SumInt(n int, f func(i int) int) int {
	return Reduce(n, 0, 0, f, func(a, b int) int { return a + b })
}

// Fill sets dst[i] = v for all i, in parallel.
func Fill[T any](dst []T, v T) {
	For(len(dst), 2048, func(i int) { dst[i] = v })
}

// Tabulate builds a slice of length n with element i equal to f(i).
func Tabulate[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, 0, func(i int) { out[i] = f(i) })
	return out
}
