package parallel

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForRangeRespectsWorkerBound pins the SetWorkers contract: at most
// Workers() loop bodies run concurrently, calling goroutine included. The
// block-count sweep covers the regimes the old implementation split on —
// blocks <= 4p formerly spawned blocks-1 goroutines, up to 4p-1 concurrent
// bodies.
func TestForRangeRespectsWorkerBound(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	const grain = 8
	for _, p := range []int{1, 2, 3, 4} {
		for _, blocks := range []int{1, 2, p + 1, 3 * p, 4 * p, 8 * p} {
			SetWorkers(p)
			n := blocks * grain
			var cur, peak atomic.Int64
			ForRange(n, grain, func(lo, hi int) {
				c := cur.Add(1)
				for {
					pk := peak.Load()
					if c <= pk || peak.CompareAndSwap(pk, c) {
						break
					}
				}
				// Hold the body open long enough for overlap to be
				// observable; the bound must hold regardless.
				time.Sleep(200 * time.Microsecond)
				cur.Add(-1)
			})
			if got := int(peak.Load()); got > p {
				t.Errorf("p=%d blocks=%d: peak concurrent bodies %d > Workers() %d",
					p, blocks, got, p)
			}
		}
	}
}

// TestForRangeCoversPartition checks every index is visited exactly once and
// that block boundaries sit at multiples of the grain (the contract
// GroupByParallel's per-block output slots rely on).
func TestForRangeCoversPartition(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	SetWorkers(4)
	const n, grain = 1003, 16
	visited := make([]atomic.Int32, n)
	ForRange(n, grain, func(lo, hi int) {
		if lo%grain != 0 {
			t.Errorf("block lo %d not a multiple of grain %d", lo, grain)
		}
		for i := lo; i < hi; i++ {
			visited[i].Add(1)
		}
	})
	for i := range visited {
		if got := visited[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

// normalizeGroups maps a grouping to a canonical form: key -> sorted indices.
// It also verifies each index appears exactly once across all groups and that
// every group's indices actually carry the group's key.
func normalizeGroups(t *testing.T, keys []uint64, groups []Group) map[uint64][]int {
	t.Helper()
	out := make(map[uint64][]int, len(groups))
	seen := make([]bool, len(keys))
	for _, g := range groups {
		if _, dup := out[g.Key]; dup {
			t.Fatalf("key %d appears in two groups", g.Key)
		}
		idx := append([]int(nil), g.Indices...)
		sort.Ints(idx)
		for _, i := range idx {
			if i < 0 || i >= len(keys) {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d grouped twice", i)
			}
			seen[i] = true
			if keys[i] != g.Key {
				t.Fatalf("index %d has key %d, grouped under %d", i, keys[i], g.Key)
			}
		}
		out[g.Key] = idx
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing from grouping", i)
		}
	}
	return out
}

func equalGroupings(a, b map[uint64][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ia := range a {
		ib, ok := b[k]
		if !ok || len(ia) != len(ib) {
			return false
		}
		for j := range ia {
			if ia[j] != ib[j] {
				return false
			}
		}
	}
	return true
}

func randomKeys(seed int64, n, keyRange int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		if rng.Intn(4) == 0 {
			// Occasionally spray wide keys so buckets see both long
			// duplicate chains and singletons.
			keys[i] = rng.Uint64() % uint64(16*keyRange+1)
		} else {
			keys[i] = uint64(rng.Intn(keyRange))
		}
	}
	return keys
}

// FuzzGroupByDifferential asserts GroupBy and GroupByParallel produce
// identical groupings (after normalization) on random key multisets. Seeds
// cover the n<=24 fast path, its boundary, the sequential bucket path, and
// sizes >= 1<<14 that take the parallel path; tiny keyRange makes duplicate
// chains long and bucket collisions frequent.
func FuzzGroupByDifferential(f *testing.F) {
	f.Add(int64(1), 0, 1)
	f.Add(int64(2), 7, 2)
	f.Add(int64(3), 24, 3) // fast-path upper boundary
	f.Add(int64(4), 25, 3) // first bucketed size
	f.Add(int64(5), 4096, 7)
	f.Add(int64(6), 1<<14, 50) // first parallel size
	f.Add(int64(7), 20000, 1)  // single hot key: one maximal bucket chain
	f.Add(int64(8), 20000, 997)
	f.Fuzz(func(t *testing.T, seed int64, n, keyRange int) {
		if n < 0 || n > 1<<16 {
			t.Skip()
		}
		if keyRange <= 0 {
			keyRange = 1
		}
		keys := randomKeys(seed, n, keyRange)
		seq := normalizeGroups(t, keys, GroupBy(keys))
		par := normalizeGroups(t, keys, GroupByParallel(keys))
		if !equalGroupings(seq, par) {
			t.Fatalf("GroupBy and GroupByParallel disagree (seed=%d n=%d keyRange=%d)",
				seed, n, keyRange)
		}
	})
}

// TestGroupByDifferentialRandom runs the differential check across a spread
// of sizes without requiring -fuzz (the fuzz target alone only replays its
// seed corpus under plain `go test`).
func TestGroupByDifferentialRandom(t *testing.T) {
	for _, tc := range []struct {
		n, keyRange int
	}{
		{1, 1}, {16, 3}, {24, 2}, {25, 2}, {100, 5}, {1000, 1},
		{1 << 14, 11}, {40000, 3}, {40000, 5000},
	} {
		for seed := int64(0); seed < 3; seed++ {
			keys := randomKeys(seed, tc.n, tc.keyRange)
			seq := normalizeGroups(t, keys, GroupBy(keys))
			par := normalizeGroups(t, keys, GroupByParallel(keys))
			if !equalGroupings(seq, par) {
				t.Fatalf("disagree at n=%d keyRange=%d seed=%d", tc.n, tc.keyRange, seed)
			}
		}
	}
}

// TestGroupByParallelSetWorkersRace flips the global worker bound while
// groupings are in flight — the scenario benchmarks create. Run with -race:
// the old writer-index computation re-read Workers() after sizing its output
// slots and could make two blocks append to one slice concurrently.
func TestGroupByParallelSetWorkersRace(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	keys := randomKeys(42, 1<<15, 300)
	want := normalizeGroups(t, keys, GroupBy(keys))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetWorkers(1 + i%8)
			runtime.Gosched()
		}
	}()
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for i := 0; i < iters; i++ {
		got := normalizeGroups(t, keys, GroupByParallel(keys))
		if !equalGroupings(want, got) {
			close(stop)
			wg.Wait()
			t.Fatalf("iteration %d: grouping diverged under SetWorkers churn", i)
		}
	}
	close(stop)
	wg.Wait()
}
