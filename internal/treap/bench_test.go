package treap

import (
	"math/rand"
	"testing"
)

func benchSequence(n int) (*Node, []*Node) {
	var root *Node
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(Value{Cnt: 1}, i)
		root = Join(root, nodes[i])
	}
	return root, nodes
}

func BenchmarkRotate(b *testing.B) {
	n := 1 << 16
	root, nodes := benchSequence(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := nodes[rng.Intn(n)]
		a, c := SplitBefore(x)
		root = Join(c, a)
	}
	_ = root
}

func BenchmarkIndex(b *testing.B) {
	n := 1 << 16
	_, nodes := benchSequence(n)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Index(nodes[rng.Intn(n)])
	}
}

func BenchmarkRoot(b *testing.B) {
	n := 1 << 16
	_, nodes := benchSequence(n)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Root(nodes[rng.Intn(n)])
	}
}

func BenchmarkAddVal(b *testing.B) {
	n := 1 << 16
	_, nodes := benchSequence(n)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddVal(nodes[rng.Intn(n)], Value{NonTree: 1})
	}
}
