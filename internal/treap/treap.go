// Package treap implements the augmented sequence structure underlying the
// batch-parallel Euler-tour trees: an ordered sequence with O(lg n) expected
// split, join, positional access and root-finding, and subtree aggregates
// (element count, vertex count, level-i tree-edge count, level-i non-tree
// edge count).
//
// The paper (following Tseng et al.) stores Euler tours in concurrent skip
// lists; we substitute a randomized treap with parent pointers. It has the
// same expected work bounds for every operation the connectivity algorithm
// uses, and the batch algorithms obtain their parallelism one level up, by
// processing distinct tours concurrently (see internal/ett). The treap keeps
// the sequence semantics simple and makes split/join — the operations Euler
// tour trees stress — straightforward to verify.
//
// # Read-only query contract
//
// Root, Agg, Len, Index, At, First, Collect, Walk, ID and CheckInvariants
// are pure root/child walks: they write no node field, keep no lazy state,
// and perform no rebalancing (a treap has no splaying or path compression
// to tempt them). Any number of goroutines may therefore run them
// concurrently with each other on the same treap, provided no mutation
// (NewNode on a shared pool aside, Join, SplitAt, SplitBefore, SetVal,
// AddVal, Remove, Free) is in flight. This is the foundation the
// concurrent read path builds on: conn.Batcher's ReadNow holds a read lock
// that excludes exactly the mutating epoch, nothing else. The contract is
// enforced by TestConcurrentReadOnlyQueries under -race.
package treap

import (
	"sync"
	"sync/atomic"
)

// Value is the augmented payload aggregated over subtrees.
type Value struct {
	Cnt     int64 // sequence elements (every node contributes 1)
	Size    int64 // vertices (vertex-loop nodes contribute 1, arcs 0)
	Tree    int64 // incident tree edges at the owning forest's level
	NonTree int64 // incident non-tree edges at the owning forest's level
}

// Add returns the component-wise sum of two Values.
func (v Value) Add(o Value) Value {
	return Value{
		Cnt:     v.Cnt + o.Cnt,
		Size:    v.Size + o.Size,
		Tree:    v.Tree + o.Tree,
		NonTree: v.NonTree + o.NonTree,
	}
}

// Node is one sequence element. Fields l, r, p form the treap; pri is the
// heap priority; Val is this element's own contribution and sum the
// aggregate over the node's subtree (including Val).
type Node struct {
	l, r, p *Node
	id      uint64
	pri     uint64
	Val     Value
	sum     Value
	// Data identifies the Euler-tour element this node represents; the
	// treap never inspects it.
	Data any
}

var idCtr atomic.Uint64

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nodePool recycles detached nodes: Euler-tour trees churn through two arc
// elements per link/cut, and the level structure performs O(m lg n) of those
// over its lifetime, so pooling removes the dominant allocation source.
var nodePool = sync.Pool{New: func() any { return new(Node) }}

// NewNode returns a fresh single-element sequence with the given value.
func NewNode(val Value, data any) *Node {
	id := idCtr.Add(1)
	n := nodePool.Get().(*Node)
	n.l, n.r, n.p = nil, nil, nil
	n.id, n.pri = id, mix(id)
	n.Val, n.sum = val, val
	n.Data = data
	return n
}

// Free returns a node to the allocation pool. The caller must guarantee the
// node is detached (removed from its sequence) and no longer referenced; the
// Euler-tour tree calls this for the arc elements discarded by a cut.
func Free(n *Node) {
	n.l, n.r, n.p = nil, nil, nil
	n.Data = nil
	nodePool.Put(n)
}

// ID returns the node's unique creation identifier, usable as a stable hash
// key (e.g. to group operations by tour root).
func (n *Node) ID() uint64 { return n.id }

func cnt(t *Node) int64 {
	if t == nil {
		return 0
	}
	return t.sum.Cnt
}

func sum(t *Node) Value {
	if t == nil {
		return Value{}
	}
	return t.sum
}

func update(t *Node) {
	t.sum = t.Val.Add(sum(t.l)).Add(sum(t.r))
}

// Root returns the root of the treap containing x. Two nodes are in the same
// sequence iff they have the same root, so the root serves as the sequence
// representative (invalidated by any split or join). Read-only: safe for
// concurrent callers under the package's query contract.
func Root(x *Node) *Node {
	for x.p != nil {
		x = x.p
	}
	return x
}

// Agg returns the aggregate over the whole sequence containing x. Read-only.
func Agg(x *Node) Value { return Root(x).sum }

// Len returns the number of elements in the sequence containing x.
func Len(x *Node) int64 { return Root(x).sum.Cnt }

// Join concatenates sequences a then b and returns the new root. Either may
// be nil. The inputs must be roots of distinct treaps.
func Join(a, b *Node) *Node {
	if a == nil {
		if b != nil {
			b.p = nil
		}
		return b
	}
	if b == nil {
		a.p = nil
		return a
	}
	if a.pri >= b.pri {
		nr := Join(a.r, b)
		a.r = nr
		nr.p = a
		update(a)
		a.p = nil
		return a
	}
	nl := Join(a, b.l)
	b.l = nl
	nl.p = b
	update(b)
	b.p = nil
	return b
}

// SplitAt splits the sequence rooted at t into its first k elements and the
// remainder, returning the two roots (either may be nil).
func SplitAt(t *Node, k int64) (*Node, *Node) {
	if t == nil {
		return nil, nil
	}
	lc := cnt(t.l)
	if k <= lc {
		lt := t.l
		if lt != nil {
			lt.p = nil
			t.l = nil
		}
		a, b := SplitAt(lt, k)
		t.l = b
		if b != nil {
			b.p = t
		}
		update(t)
		t.p = nil
		return a, t
	}
	rt := t.r
	if rt != nil {
		rt.p = nil
		t.r = nil
	}
	a, b := SplitAt(rt, k-lc-1)
	t.r = a
	if a != nil {
		a.p = t
	}
	update(t)
	t.p = nil
	return t, b
}

// Index returns the zero-based position of x within its sequence.
func Index(x *Node) int64 {
	idx := cnt(x.l)
	for cur := x; cur.p != nil; cur = cur.p {
		if cur.p.r == cur {
			idx += cnt(cur.p.l) + 1
		}
	}
	return idx
}

// At returns the i-th element (zero-based) of the sequence rooted at t, or
// nil if out of range.
func At(t *Node, i int64) *Node {
	if t == nil || i < 0 || i >= t.sum.Cnt {
		return nil
	}
	for {
		lc := cnt(t.l)
		switch {
		case i < lc:
			t = t.l
		case i == lc:
			return t
		default:
			i -= lc + 1
			t = t.r
		}
	}
}

// First returns the first element of the sequence rooted at t.
func First(t *Node) *Node {
	if t == nil {
		return nil
	}
	for t.l != nil {
		t = t.l
	}
	return t
}

// SplitBefore splits the sequence containing x so that x begins the second
// part; returns the roots (prefix, suffix-starting-at-x).
func SplitBefore(x *Node) (*Node, *Node) {
	r := Root(x)
	return SplitAt(r, Index(x))
}

// SetVal replaces x's own contribution and repairs aggregates up to the
// root. O(depth) = O(lg n) expected.
func SetVal(x *Node, v Value) {
	x.Val = v
	for cur := x; cur != nil; cur = cur.p {
		update(cur)
	}
}

// AddVal adds delta (component-wise) to x's own contribution.
func AddVal(x *Node, delta Value) {
	SetVal(x, x.Val.Add(delta))
}

// Remove deletes x from its sequence and returns the root of the remaining
// sequence (nil if x was the only element). x becomes a valid singleton.
func Remove(x *Node) *Node {
	pre, rest := SplitBefore(x)
	_, suf := SplitAt(rest, 1)
	x.l, x.r, x.p = nil, nil, nil
	update(x)
	return Join(pre, suf)
}

// Collect appends to out the in-order sequence elements x with proj(x.Val)>0
// until the accumulated projection reaches limit, skipping subtrees whose
// aggregate projection is zero. Returns the amount accumulated (possibly
// exceeding limit by the last element's contribution, or falling short if
// the sequence runs out). O(|out| + lg n) expected via aggregate pruning.
func Collect(t *Node, limit int64, proj func(Value) int64, out *[]*Node) int64 {
	if t == nil || limit <= 0 || proj(t.sum) == 0 {
		return 0
	}
	got := Collect(t.l, limit, proj, out)
	if got < limit {
		if v := proj(t.Val); v > 0 {
			*out = append(*out, t)
			got += v
		}
	}
	if got < limit {
		got += Collect(t.r, limit-got, proj, out)
	}
	return got
}

// Walk calls fn on every element of the sequence rooted at t, in order.
func Walk(t *Node, fn func(*Node)) {
	if t == nil {
		return
	}
	Walk(t.l, fn)
	fn(t)
	Walk(t.r, fn)
}

// CheckInvariants verifies heap order, parent pointers and aggregates of the
// whole treap rooted at t; it is exported for tests and returns the first
// violation found, or an empty string.
func CheckInvariants(t *Node) string {
	if t == nil {
		return ""
	}
	if t.p != nil {
		return "root has parent"
	}
	var rec func(n *Node) (Value, string)
	rec = func(n *Node) (Value, string) {
		if n == nil {
			return Value{}, ""
		}
		if n.l != nil {
			if n.l.p != n {
				return Value{}, "bad left parent pointer"
			}
			if n.l.pri > n.pri {
				return Value{}, "heap violation (left)"
			}
		}
		if n.r != nil {
			if n.r.p != n {
				return Value{}, "bad right parent pointer"
			}
			if n.r.pri > n.pri {
				return Value{}, "heap violation (right)"
			}
		}
		ls, err := rec(n.l)
		if err != "" {
			return Value{}, err
		}
		rs, err := rec(n.r)
		if err != "" {
			return Value{}, err
		}
		want := n.Val.Add(ls).Add(rs)
		if want != n.sum {
			return Value{}, "aggregate mismatch"
		}
		return want, ""
	}
	_, err := rec(t)
	return err
}
