package treap

import (
	"sync"
	"testing"
)

func TestFreeAndReuse(t *testing.T) {
	a := NewNode(Value{Cnt: 1}, "a")
	id1 := a.ID()
	Free(a)
	b := NewNode(Value{Cnt: 1, Size: 7}, "b")
	// Whether or not the allocation was recycled, the new node must be
	// fully reinitialized.
	if b.ID() == id1 {
		t.Fatal("recycled node kept its old id")
	}
	if b.l != nil || b.r != nil || b.p != nil {
		t.Fatal("recycled node has stale links")
	}
	if b.sum != b.Val || b.Val.Size != 7 {
		t.Fatalf("recycled node has stale value: %+v / %+v", b.Val, b.sum)
	}
	if b.Data != "b" {
		t.Fatal("recycled node has stale data")
	}
}

func TestFreeDetachedFromSequence(t *testing.T) {
	root := build(10)
	x := At(root, 5)
	root = Remove(x)
	Free(x)
	// The remaining sequence must be intact after the free.
	if Len(root) != 9 {
		t.Fatalf("Len = %d", Len(root))
	}
	if err := CheckInvariants(root); err != "" {
		t.Fatal(err)
	}
}

func TestConcurrentNewAndFree(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := NewNode(Value{Cnt: 1}, i)
				if n.Val.Cnt != 1 || n.p != nil {
					panic("bad node from pool")
				}
				Free(n)
			}
		}()
	}
	wg.Wait()
}

func TestIDsUniqueAcrossRecycling(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		n := NewNode(Value{Cnt: 1}, nil)
		if seen[n.ID()] {
			t.Fatalf("duplicate id %d at iteration %d", n.ID(), i)
		}
		seen[n.ID()] = true
		Free(n)
	}
}
