package treap

import (
	"sync"
	"testing"
)

// TestConcurrentReadOnlyQueries enforces the package's read-only query
// contract under -race: with no mutation in flight, any number of goroutines
// may run Root, Agg, Len, Index, At, First, Collect and Walk concurrently on
// the same treap. A write anywhere in those paths (lazy propagation,
// rebalancing, caching) would be flagged by the race detector.
func TestConcurrentReadOnlyQueries(t *testing.T) {
	const n = 4096
	nodes := make([]*Node, n)
	var root *Node
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(Value{Cnt: 1, Size: 1, Tree: int64(i % 3)}, i)
		root = Join(root, nodes[i])
	}
	wantAgg := Agg(root)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += goroutines {
				if Root(nodes[i]) != root {
					t.Errorf("Root(nodes[%d]) != root", i)
					return
				}
				if got := Agg(nodes[i]); got != wantAgg {
					t.Errorf("Agg(nodes[%d]) = %+v, want %+v", i, got, wantAgg)
					return
				}
				if got := Index(nodes[i]); got != int64(i) {
					t.Errorf("Index(nodes[%d]) = %d", i, got)
					return
				}
				if got := At(root, int64(i)); got != nodes[i] {
					t.Errorf("At(root, %d) wrong node", i)
					return
				}
				if Len(nodes[i]) != n {
					t.Errorf("Len = %d, want %d", Len(nodes[i]), n)
					return
				}
			}
			if First(root) != nodes[0] {
				t.Error("First(root) != nodes[0]")
			}
			var out []*Node
			Collect(root, 16, func(v Value) int64 { return v.Tree }, &out)
			for _, nd := range out {
				if nd.Val.Tree == 0 {
					t.Error("Collect returned a zero-projection node")
				}
			}
			count := 0
			Walk(root, func(*Node) { count++ })
			if count != n {
				t.Errorf("Walk visited %d nodes, want %d", count, n)
			}
			if msg := CheckInvariants(root); msg != "" {
				t.Errorf("CheckInvariants: %s", msg)
			}
		}(g)
	}
	wg.Wait()
}
