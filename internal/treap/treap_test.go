package treap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// build constructs a sequence whose elements carry Data = their build index
// and Size = that index (so aggregate checks catch reordering).
func build(n int) *Node {
	var root *Node
	for i := 0; i < n; i++ {
		nd := NewNode(Value{Cnt: 1, Size: int64(i)}, i)
		root = Join(root, nd)
	}
	return root
}

func contents(t *Node) []int {
	var out []int
	Walk(t, func(n *Node) { out = append(out, n.Data.(int)) })
	return out
}

func assertSeq(t *testing.T, root *Node, want []int) {
	t.Helper()
	got := contents(root)
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence[%d] = %d, want %d (%v)", i, got[i], want[i], want)
		}
	}
	if err := CheckInvariants(root); err != "" {
		t.Fatalf("invariants: %s", err)
	}
}

func TestJoinBuildsOrderedSequence(t *testing.T) {
	root := build(10)
	assertSeq(t, root, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if Len(root) != 10 {
		t.Fatalf("Len = %d", Len(root))
	}
}

func TestSplitAtEveryPosition(t *testing.T) {
	for k := int64(0); k <= 8; k++ {
		root := build(8)
		a, b := SplitAt(root, k)
		var want1, want2 []int
		for i := 0; i < 8; i++ {
			if int64(i) < k {
				want1 = append(want1, i)
			} else {
				want2 = append(want2, i)
			}
		}
		assertSeq(t, a, want1)
		assertSeq(t, b, want2)
		back := Join(a, b)
		assertSeq(t, back, []int{0, 1, 2, 3, 4, 5, 6, 7})
	}
}

func TestIndexAndAt(t *testing.T) {
	root := build(100)
	for i := int64(0); i < 100; i++ {
		nd := At(root, i)
		if nd == nil || nd.Data.(int) != int(i) {
			t.Fatalf("At(%d) wrong", i)
		}
		if Index(nd) != i {
			t.Fatalf("Index(At(%d)) = %d", i, Index(nd))
		}
	}
	if At(root, 100) != nil || At(root, -1) != nil {
		t.Fatal("At out of range should be nil")
	}
}

func TestRootSharedWithinSequence(t *testing.T) {
	root := build(50)
	r0 := Root(At(root, 0))
	for i := int64(1); i < 50; i++ {
		if Root(At(root, i)) != r0 {
			t.Fatalf("element %d has different root", i)
		}
	}
	a, b := SplitAt(root, 25)
	if Root(First(a)) == Root(First(b)) {
		t.Fatal("split halves share a root")
	}
}

func TestSplitBefore(t *testing.T) {
	root := build(10)
	x := At(root, 4)
	a, b := SplitBefore(x)
	assertSeq(t, a, []int{0, 1, 2, 3})
	assertSeq(t, b, []int{4, 5, 6, 7, 8, 9})
	if First(b) != x {
		t.Fatal("suffix does not start at x")
	}
}

func TestRemove(t *testing.T) {
	root := build(6)
	x := At(root, 3)
	rest := Remove(x)
	assertSeq(t, rest, []int{0, 1, 2, 4, 5})
	if x.p != nil || x.l != nil || x.r != nil {
		t.Fatal("removed node not detached")
	}
	if x.sum != x.Val {
		t.Fatal("removed node aggregate not reset")
	}
	// Removing the only element yields nil.
	single := NewNode(Value{Cnt: 1}, 0)
	if Remove(single) != nil {
		t.Fatal("removing a singleton should return nil")
	}
}

func TestSetValPropagates(t *testing.T) {
	root := build(20)
	before := Agg(First(root)).Size
	x := At(root, 7)
	SetVal(x, Value{Cnt: 1, Size: 1000})
	after := Agg(First(Root(x))).Size
	if after != before-7+1000 {
		t.Fatalf("aggregate after SetVal = %d, want %d", after, before-7+1000)
	}
	if err := CheckInvariants(Root(x)); err != "" {
		t.Fatalf("invariants: %s", err)
	}
}

func TestAddVal(t *testing.T) {
	root := build(5)
	x := At(root, 2)
	AddVal(x, Value{NonTree: 3})
	if Agg(x).NonTree != 3 {
		t.Fatalf("NonTree aggregate = %d", Agg(x).NonTree)
	}
	AddVal(x, Value{NonTree: -3})
	if Agg(x).NonTree != 0 {
		t.Fatalf("NonTree aggregate = %d after undo", Agg(x).NonTree)
	}
}

func TestCollectFindsMarkedNodes(t *testing.T) {
	root := build(100)
	// Mark nodes 10, 40, 70 with NonTree counts 2, 3, 4.
	marks := map[int]int64{10: 2, 40: 3, 70: 4}
	for idx, c := range marks {
		nd := At(root, int64(idx))
		AddVal(nd, Value{NonTree: c})
		root = Root(nd)
	}
	proj := func(v Value) int64 { return v.NonTree }
	var out []*Node
	got := Collect(root, 4, proj, &out)
	if got < 4 {
		t.Fatalf("Collect accumulated %d, want >= 4", got)
	}
	if len(out) != 2 || out[0].Data.(int) != 10 || out[1].Data.(int) != 40 {
		t.Fatalf("Collect chose wrong nodes: %v", out)
	}
	// Asking for more than available returns everything.
	out = nil
	got = Collect(root, 100, proj, &out)
	if got != 9 || len(out) != 3 {
		t.Fatalf("Collect(all) got %d over %d nodes", got, len(out))
	}
}

func TestCollectEmptyAndZeroLimit(t *testing.T) {
	root := build(10)
	proj := func(v Value) int64 { return v.NonTree }
	var out []*Node
	if got := Collect(root, 5, proj, &out); got != 0 || len(out) != 0 {
		t.Fatal("Collect on zero-projection tree should gather nothing")
	}
	if got := Collect(root, 0, proj, &out); got != 0 {
		t.Fatal("Collect with limit 0 should gather nothing")
	}
	if got := Collect(nil, 5, proj, &out); got != 0 {
		t.Fatal("Collect(nil) should gather nothing")
	}
}

// TestQuickSplitJoinModel drives random split/join/remove operations against
// a plain slice model.
func TestQuickSplitJoinModel(t *testing.T) {
	type op struct {
		Kind uint8
		Pos  uint16
	}
	f := func(ops []op) bool {
		model := []int{}
		var root *Node
		next := 0
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // append new element
				nd := NewNode(Value{Cnt: 1}, next)
				model = append(model, next)
				next++
				root = Join(root, nd)
			case 1: // split and rejoin swapped (rotate)
				if len(model) == 0 {
					continue
				}
				k := int64(int(o.Pos) % (len(model) + 1))
				a, b := SplitAt(root, k)
				root = Join(b, a)
				model = append(model[k:], model[:k]...)
			case 2: // remove element at pos
				if len(model) == 0 {
					continue
				}
				i := int(o.Pos) % len(model)
				nd := At(root, int64(i))
				root = Remove(nd)
				model = append(model[:i], model[i+1:]...)
			}
			if root == nil {
				if len(model) != 0 {
					return false
				}
				continue
			}
			if CheckInvariants(root) != "" {
				return false
			}
			got := contents(root)
			if len(got) != len(model) {
				return false
			}
			for i := range model {
				if got[i] != model[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedDepthLogarithmic(t *testing.T) {
	root := build(1 << 14)
	var maxDepth int
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if n == nil {
			return
		}
		if d > maxDepth {
			maxDepth = d
		}
		walk(n.l, d+1)
		walk(n.r, d+1)
	}
	walk(root, 1)
	// Expected depth ~ 3 lg n; fail only on gross degradation.
	if maxDepth > 9*14 {
		t.Fatalf("treap depth %d on 2^14 elements suggests broken priorities", maxDepth)
	}
}

func TestJoinNilCases(t *testing.T) {
	if Join(nil, nil) != nil {
		t.Fatal("Join(nil,nil) != nil")
	}
	n := NewNode(Value{Cnt: 1}, 0)
	if Join(n, nil) != n || Join(nil, n) != n {
		t.Fatal("Join with nil should return the other root")
	}
}

func TestLargeRandomSplitJoinStress(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	root := build(5000)
	for iter := 0; iter < 500; iter++ {
		k := rng.Int63n(Len(root) + 1)
		a, b := SplitAt(root, k)
		if rng.Intn(2) == 0 {
			root = Join(a, b)
		} else {
			root = Join(b, a)
		}
	}
	if Len(root) != 5000 {
		t.Fatalf("lost elements: %d", Len(root))
	}
	if err := CheckInvariants(root); err != "" {
		t.Fatalf("invariants: %s", err)
	}
}
