package repl

import (
	"bufio"
	"fmt"
	"net"
	"time"

	conn "repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Applier is the follower-side state a subscription stream applies into.
// Implementations are called from a single goroutine, in stream order.
type Applier interface {
	// AppliedSeq returns the seq of the last fully applied epoch (zero
	// before any), the resume point sent on (re)subscribe.
	AppliedSeq() uint64
	// Universe returns the vertex count of the current state — the bound
	// raw codec records are validated against when decoding epochraw
	// frames (a fresh snapshot replaces it).
	Universe() int
	// ApplySnapshot discards all current state and rebuilds from the
	// transferred edge set: the primary decided the follower's state is
	// unusable (behind the WAL floor, or diverged).
	ApplySnapshot(seq uint64, n int, edges []conn.Edge) error
	// ApplyEpoch applies one epoch atomically — inserts, then deletes — and
	// must make it visible to readers before returning.
	ApplyEpoch(seq uint64, ins, del []conn.Edge) error
}

// FollowerOptions tune RunFollower. The zero value selects the defaults.
type FollowerOptions struct {
	MinBackoff  time.Duration // first reconnect delay (default 50ms)
	MaxBackoff  time.Duration // backoff cap (default 2s)
	DialTimeout time.Duration // per-dial bound (default 5s)
	Logf        func(format string, args ...any)
}

func (o *FollowerOptions) defaults() {
	if o.MinBackoff <= 0 {
		o.MinBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// RunFollower replicates namespace ns from the primary at addr into a,
// reconnecting with exponential backoff (reset whenever a connection makes
// progress) and resuming each time from a.AppliedSeq() — so a reconnect
// after the primary's WAL floor moved past the follower simply re-runs
// catch-up, snapshot included. Returns when stop is closed. The loop never
// spins: it blocks in connection reads, in the Applier, or in the backoff
// sleep (no polling — safe on single-CPU hosts).
func RunFollower(stop <-chan struct{}, addr, ns string, a Applier, opts FollowerOptions) {
	opts.defaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bo := backoff.New(opts.MinBackoff, opts.MaxBackoff)
	for {
		select {
		case <-stop:
			return
		default:
		}
		progressed, err := streamOnce(stop, addr, ns, a, opts)
		select {
		case <-stop:
			return
		default:
		}
		if progressed {
			bo.Reset()
		}
		wait := bo.Next()
		logf("replica %s: stream from %s ended: %v; reconnecting in %v", ns, addr, err, wait)
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
	}
}

// streamOnce runs one subscription connection to completion: dial,
// subscribe from the current applied seq, apply frames until the stream
// breaks. progressed reports whether at least one frame was applied (used
// to reset the reconnect backoff).
func streamOnce(stop <-chan struct{}, addr, ns string, a Applier, opts FollowerOptions) (progressed bool, err error) {
	c, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return false, err
	}
	defer c.Close()
	// Sever the connection when stop closes, so a blocked read unblocks.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-stop:
			c.Close()
		case <-done:
		}
	}()

	payload, err := wire.EncodeRequest(&wire.Request{
		ID: 1, Cmd: wire.CmdSubscribe, NS: ns, FromSeq: a.AppliedSeq(),
	})
	if err != nil {
		return false, err
	}
	bw := bufio.NewWriter(c)
	if err := wire.WriteFrame(bw, payload); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}

	br := bufio.NewReaderSize(c, 1<<16)
	// Snapshot chunks sharing a seq accumulate here until the final one.
	var snapEdges []conn.Edge
	var snapSeq uint64
	snapActive := false
	for {
		p, err := wire.ReadFrame(br)
		if err != nil {
			return progressed, err
		}
		if flt := chaos.Inject(chaos.SiteReplFollowerConn); flt != nil {
			// Dropped subscription connection: the follower falls back to
			// RunFollower's backoff-and-resubscribe loop, resuming from its
			// applied seq — mid-snapshot, the partial accumulation is
			// simply discarded.
			return progressed, flt.Err()
		}
		resp, err := wire.DecodeResponse(p)
		if err != nil {
			return progressed, err
		}
		if resp.Status != wire.StatusOK {
			return progressed, wire.StatusError(resp)
		}
		switch {
		case resp.Snapshot != nil:
			s := resp.Snapshot
			if s.N == 0 || s.N > 1<<30 {
				return progressed, fmt.Errorf("repl: snapshot universe n=%d out of range", s.N)
			}
			if !snapActive || s.Seq != snapSeq {
				snapActive, snapSeq, snapEdges = true, s.Seq, snapEdges[:0]
			}
			for _, e := range s.Edges {
				if e.U < 0 || e.V < 0 || uint32(e.U) >= s.N || uint32(e.V) >= s.N {
					return progressed, fmt.Errorf("repl: snapshot edge {%d,%d} outside universe [0,%d)", e.U, e.V, s.N)
				}
				snapEdges = append(snapEdges, conn.Edge{U: e.U, V: e.V})
			}
			if s.Final {
				if err := a.ApplySnapshot(s.Seq, int(s.N), snapEdges); err != nil {
					return progressed, err
				}
				snapActive, snapEdges = false, nil
				progressed = true
			}
		case resp.Epoch != nil:
			e := resp.Epoch
			applied := a.AppliedSeq()
			if e.Seq <= applied {
				continue // catch-up / live overlap: already applied
			}
			if e.Seq != applied+1 {
				return progressed, fmt.Errorf("repl: epoch gap: applied through %d, stream sent %d", applied, e.Seq)
			}
			if err := a.ApplyEpoch(e.Seq, pairsToEdges(e.Ins), pairsToEdges(e.Del)); err != nil {
				return progressed, err
			}
			progressed = true
		case resp.EpochRaw != nil:
			// An epoch still in the primary log's codec encoding: decode
			// through the registry against the follower's universe, with
			// prevSeq = seq-1 (epoch seqs are dense, so the record's own
			// predecessor is always the previous stream position).
			er := resp.EpochRaw
			applied := a.AppliedSeq()
			if er.Seq <= applied {
				continue
			}
			if er.Seq != applied+1 {
				return progressed, fmt.Errorf("repl: epoch gap: applied through %d, stream sent %d", applied, er.Seq)
			}
			c, ok := wal.CodecByVersion(er.Codec)
			if !ok {
				return progressed, fmt.Errorf("repl: stream shipped unknown WAL codec version %d", er.Codec)
			}
			rec, err := c.Decode(er.Enc, a.Universe(), er.Seq-1)
			if err != nil {
				return progressed, fmt.Errorf("repl: undecodable raw epoch %d: %w", er.Seq, err)
			}
			if err := a.ApplyEpoch(rec.Seq, rec.Ins, rec.Del); err != nil {
				return progressed, err
			}
			progressed = true
		case resp.Delta != nil:
			// An incremental checkpoint riding behind the snapshot it chains
			// to: valid only when the follower sits exactly at its base.
			dl := resp.Delta
			applied := a.AppliedSeq()
			if dl.Seq <= applied {
				continue
			}
			if dl.Base != applied {
				return progressed, fmt.Errorf(
					"repl: delta checkpoint chains to seq %d but follower applied through %d", dl.Base, applied)
			}
			if int(dl.N) != a.Universe() {
				return progressed, fmt.Errorf(
					"repl: delta checkpoint universe n=%d does not match follower n=%d", dl.N, a.Universe())
			}
			if err := a.ApplyEpoch(dl.Seq, pairsToEdges(dl.Add), pairsToEdges(dl.Del)); err != nil {
				return progressed, err
			}
			progressed = true
		default:
			// Empty body: tolerated as a keep-alive.
		}
	}
}
