package repl

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	conn "repro"
	"repro/internal/wire"
)

// collector gathers stream frames and signals when a target seq arrives.
type collector struct {
	mu     sync.Mutex
	frames []Frame
	reach  chan struct{}
	target uint64
}

func newCollector(target uint64) *collector {
	return &collector{reach: make(chan struct{}), target: target}
}

func (c *collector) send(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, f)
	if f.Epoch != nil && f.Epoch.Seq >= c.target {
		select {
		case <-c.reach:
		default:
			close(c.reach)
		}
	}
	return nil
}

func (c *collector) snapshot() []Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Frame(nil), c.frames...)
}

// TestHubStreamsLiveEpochs: a subscriber from seq 0 on a never-checkpointed
// namespace receives every epoch, in order, with no snapshot.
func TestHubStreamsLiveEpochs(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	h := NewHub(b, dir, 64)
	defer h.Stop()

	const epochs = 16
	col := newCollector(epochs)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }()

	for i := 0; i < epochs; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	select {
	case <-col.reach:
	case err := <-done:
		t.Fatalf("stream ended early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not deliver all epochs")
	}
	h.Stop()
	if err := <-done; !errors.Is(err, ErrStopped) {
		t.Fatalf("Stream returned %v, want ErrStopped", err)
	}

	want := uint64(1)
	for _, f := range col.snapshot() {
		if f.Snapshot != nil {
			t.Fatal("unexpected snapshot frame on a zero-floor stream")
		}
		if f.Epoch.Seq != want {
			t.Fatalf("epoch seq %d out of order, want %d", f.Epoch.Seq, want)
		}
		want++
	}
	if want <= epochs {
		t.Fatalf("received %d epochs, want at least %d", want-1, epochs)
	}
}

// TestHubCatchUpAfterCheckpoint: a follower whose resume point predates the
// WAL floor gets a snapshot first, then the tail — and converges to the
// same state.
func TestHubCatchUpAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()

	for i := 0; i < 8; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	if _, err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		b.Insert(int32(i), int32(i+1))
	}

	h := NewHub(b, dir, 64)
	defer h.Stop()
	col := newCollector(12)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }() // fromSeq 0 < floor 8
	select {
	case <-col.reach:
	case err := <-done:
		t.Fatalf("stream ended early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("catch-up did not reach the log tail")
	}
	h.Stop()
	<-done

	frames := col.snapshot()
	if frames[0].Snapshot == nil {
		t.Fatal("first frame of below-floor catch-up is not a snapshot")
	}
	// Rebuild follower-style and compare against the primary graph.
	var fg *conn.Graph
	var snapEdges []conn.Edge
	applied := uint64(0)
	for _, f := range frames {
		switch {
		case f.Snapshot != nil:
			for _, p := range f.Snapshot.Edges {
				snapEdges = append(snapEdges, conn.Edge{U: p.U, V: p.V})
			}
			if f.Snapshot.Final {
				fg = conn.New(int(f.Snapshot.N))
				fg.InsertEdges(snapEdges)
				applied = f.Snapshot.Seq
			}
		case f.Epoch != nil:
			if f.Epoch.Seq <= applied {
				continue
			}
			if f.Epoch.Seq != applied+1 {
				t.Fatalf("epoch gap: applied %d, got %d", applied, f.Epoch.Seq)
			}
			ins := make([]conn.Edge, len(f.Epoch.Ins))
			for i, p := range f.Epoch.Ins {
				ins[i] = conn.Edge{U: p.U, V: p.V}
			}
			del := make([]conn.Edge, len(f.Epoch.Del))
			for i, p := range f.Epoch.Del {
				del[i] = conn.Edge{U: p.U, V: p.V}
			}
			fg.InsertEdges(ins)
			fg.DeleteEdges(del)
			applied = f.Epoch.Seq
		}
	}
	b.Flush()
	if applied < 12 {
		t.Fatalf("follower applied through %d, want ≥ 12", applied)
	}
	if fg.NumEdges() != 12 {
		t.Fatalf("follower has %d edges, want 12", fg.NumEdges())
	}
	for i := 0; i < 12; i++ {
		if !fg.HasEdge(int32(i), int32(i+1)) {
			t.Fatalf("follower missing edge {%d,%d}", i, i+1)
		}
	}
}

// TestHubDropsSlowFollower: a subscriber that cannot drain its buffer is
// dropped with ErrLagging instead of stalling the dispatcher.
func TestHubDropsSlowFollower(t *testing.T) {
	old := subscriberBuffer
	subscriberBuffer = 4
	defer func() { subscriberBuffer = old }()

	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	h := NewHub(b, dir, 64)
	defer h.Stop()

	block := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- h.Stream(0, func(Frame) error {
			once.Do(func() { close(started) })
			<-block // follower connection "wedged"
			return nil
		})
	}()

	b.Insert(0, 1) // first epoch: reaches the blocked send
	<-started
	// Overflow the 4-slot buffer while send is blocked.
	for i := 1; i < 8; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	close(block)
	select {
	case err := <-done:
		if !errors.Is(err, ErrLagging) {
			t.Fatalf("Stream returned %v, want ErrLagging", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow follower was not dropped")
	}
}

// oracleApplier is a follower-side Applier over a plain Graph, for tests.
type oracleApplier struct {
	mu      sync.Mutex
	g       *conn.Graph
	applied atomic.Uint64
	epochs  atomic.Int64
}

func (a *oracleApplier) AppliedSeq() uint64 { return a.applied.Load() }

func (a *oracleApplier) ApplySnapshot(seq uint64, n int, edges []conn.Edge) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := conn.New(n)
	g.InsertEdges(edges)
	a.g = g
	a.applied.Store(seq)
	return nil
}

func (a *oracleApplier) ApplyEpoch(seq uint64, ins, del []conn.Edge) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.g.InsertEdges(ins)
	a.g.DeleteEdges(del)
	a.applied.Store(seq)
	a.epochs.Add(1)
	return nil
}

// fakePrimary is a minimal wire server that serves scripted subscription
// streams, so follower behavior (resume point, reconnect, backoff) is
// testable without a real connserver.
type fakePrimary struct {
	ln       net.Listener
	mu       sync.Mutex
	resumes  []uint64 // FromSeq of each subscribe received
	sessions int
	serve    func(sess int, fromSeq uint64, send func(*wire.Response) error)
}

func newFakePrimary(t *testing.T) *fakePrimary {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePrimary{ln: ln}
	go p.loop()
	return p
}

func (p *fakePrimary) loop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(c)
	}
}

func (p *fakePrimary) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	req, err := wire.DecodeRequest(payload)
	if err != nil || req.Cmd != wire.CmdSubscribe {
		return
	}
	p.mu.Lock()
	p.resumes = append(p.resumes, req.FromSeq)
	sess := p.sessions
	p.sessions++
	serve := p.serve
	p.mu.Unlock()
	bw := bufio.NewWriter(c)
	send := func(resp *wire.Response) error {
		resp.ID = req.ID
		pl, err := wire.EncodeResponse(resp)
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(bw, pl); err != nil {
			return err
		}
		return bw.Flush()
	}
	if serve != nil {
		serve(sess, req.FromSeq, send)
	}
}

// TestFollowerAppliesAndResumes: the follower applies a stream, survives a
// mid-stream disconnect, and resubscribes from its last applied seq.
func TestFollowerAppliesAndResumes(t *testing.T) {
	p := newFakePrimary(t)
	defer p.ln.Close()

	epoch := func(seq uint64) *wire.Response {
		return &wire.Response{Epoch: &wire.EpochBody{
			Seq: seq, Ins: []wire.Pair{{U: int32(seq - 1), V: int32(seq)}},
		}}
	}
	p.mu.Lock()
	p.serve = func(sess int, fromSeq uint64, send func(*wire.Response) error) {
		switch sess {
		case 0:
			// Session 1: epochs 1..3, then hang up mid-stream.
			for s := uint64(1); s <= 3; s++ {
				if send(epoch(s)) != nil {
					return
				}
			}
		default:
			// Later sessions: continue from wherever the follower resumed.
			for s := fromSeq + 1; s <= 6; s++ {
				if send(epoch(s)) != nil {
					return
				}
			}
			// Keep the connection open so the follower blocks in read.
			time.Sleep(time.Hour)
		}
	}
	p.mu.Unlock()

	a := &oracleApplier{g: conn.New(64)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunFollower(stop, p.ln.Addr().String(), "g", a, FollowerOptions{
			MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for a.AppliedSeq() < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if a.AppliedSeq() != 6 {
		t.Fatalf("follower applied through %d, want 6", a.AppliedSeq())
	}
	for s := uint64(1); s <= 6; s++ {
		if !a.g.HasEdge(int32(s-1), int32(s)) {
			t.Fatalf("missing edge from epoch %d", s)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.resumes) < 2 {
		t.Fatalf("follower never reconnected: %d session(s)", len(p.resumes))
	}
	if p.resumes[0] != 0 {
		t.Fatalf("first subscribe resumed from %d, want 0", p.resumes[0])
	}
	if p.resumes[1] != 3 {
		t.Fatalf("reconnect resumed from %d, want 3 (last applied)", p.resumes[1])
	}
	if got := a.epochs.Load(); got != 6 {
		t.Fatalf("applied %d epochs, want exactly 6 (no duplicates)", got)
	}
}

// TestFollowerSnapshotReset: a snapshot frame replaces follower state
// wholesale, including chunked transfers.
func TestFollowerSnapshotReset(t *testing.T) {
	p := newFakePrimary(t)
	defer p.ln.Close()
	p.mu.Lock()
	p.serve = func(sess int, fromSeq uint64, send func(*wire.Response) error) {
		// Two chunks of one snapshot at seq 10, then one epoch.
		send(&wire.Response{Snapshot: &wire.SnapshotBody{
			Seq: 10, N: 32, Edges: []wire.Pair{{U: 1, V: 2}, {U: 2, V: 3}},
		}})
		send(&wire.Response{Snapshot: &wire.SnapshotBody{
			Seq: 10, N: 32, Final: true, Edges: []wire.Pair{{U: 5, V: 6}},
		}})
		send(&wire.Response{Epoch: &wire.EpochBody{Seq: 11, Ins: []wire.Pair{{U: 7, V: 8}}}})
		time.Sleep(time.Hour)
	}
	p.mu.Unlock()

	a := &oracleApplier{g: conn.New(4)} // wrong universe: snapshot must replace it
	a.g.InsertEdges([]conn.Edge{{U: 0, V: 1}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunFollower(stop, p.ln.Addr().String(), "g", a, FollowerOptions{
			MinBackoff: 5 * time.Millisecond,
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for a.AppliedSeq() < 11 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if a.AppliedSeq() != 11 {
		t.Fatalf("follower applied through %d, want 11", a.AppliedSeq())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.g.N() != 32 {
		t.Fatalf("snapshot did not replace the universe: n=%d", a.g.N())
	}
	for _, e := range []conn.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 5, V: 6}, {U: 7, V: 8}} {
		if !a.g.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge {%d,%d}", e.U, e.V)
		}
	}
	if a.g.HasEdge(0, 1) {
		t.Fatal("pre-snapshot state survived the reset")
	}
}

// TestHubStats: subscriber counts and shipped seqs are reported.
func TestHubStats(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	h := NewHub(b, dir, 64)
	defer h.Stop()

	if n, _, _ := h.Stats(); n != 0 {
		t.Fatalf("fresh hub reports %d subscribers", n)
	}
	col := newCollector(3)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }()
	for i := 0; i < 3; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	<-col.reach
	n, shipped, _ := h.Stats()
	if n != 1 {
		t.Fatalf("Stats subscribers = %d, want 1", n)
	}
	if shipped != 3 {
		t.Fatalf("Stats lastShipped = %d, want 3", shipped)
	}
	h.Stop()
	<-done
	if n, _, _ := h.Stats(); n != 0 {
		t.Fatalf("stopped hub reports %d subscribers", n)
	}
}
