package repl

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	conn "repro"
	"repro/internal/wal"
	"repro/internal/wire"
)

// collector gathers stream frames and signals when a target seq arrives.
type collector struct {
	mu     sync.Mutex
	frames []Frame
	reach  chan struct{}
	target uint64
}

func newCollector(target uint64) *collector {
	return &collector{reach: make(chan struct{}), target: target}
}

func (c *collector) send(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, f)
	var seq uint64
	switch {
	case f.Epoch != nil:
		seq = f.Epoch.Seq
	case f.EpochRaw != nil:
		seq = f.EpochRaw.Seq
	}
	if seq >= c.target {
		select {
		case <-c.reach:
		default:
			close(c.reach)
		}
	}
	return nil
}

func (c *collector) snapshot() []Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Frame(nil), c.frames...)
}

// retarget re-arms the reach signal for a higher seq and returns the new
// channel (safe while the stream is still delivering).
func (c *collector) retarget(target uint64) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.target = target
	c.reach = make(chan struct{})
	return c.reach
}

// TestHubStreamsLiveEpochs: a subscriber from seq 0 on a never-checkpointed
// namespace receives every epoch, in order, with no snapshot.
func TestHubStreamsLiveEpochs(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	h := NewHub(b, dir, 64)
	defer h.Stop()

	const epochs = 16
	col := newCollector(epochs)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }()

	for i := 0; i < epochs; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	select {
	case <-col.reach:
	case err := <-done:
		t.Fatalf("stream ended early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not deliver all epochs")
	}
	h.Stop()
	if err := <-done; !errors.Is(err, ErrStopped) {
		t.Fatalf("Stream returned %v, want ErrStopped", err)
	}

	want := uint64(1)
	for _, f := range col.snapshot() {
		if f.Snapshot != nil {
			t.Fatal("unexpected snapshot frame on a zero-floor stream")
		}
		if f.Epoch.Seq != want {
			t.Fatalf("epoch seq %d out of order, want %d", f.Epoch.Seq, want)
		}
		want++
	}
	if want <= epochs {
		t.Fatalf("received %d epochs, want at least %d", want-1, epochs)
	}
}

// TestHubCatchUpAfterCheckpoint: a follower whose resume point predates the
// WAL floor gets a snapshot first, then the tail — and converges to the
// same state.
func TestHubCatchUpAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()

	for i := 0; i < 8; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	if _, err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		b.Insert(int32(i), int32(i+1))
	}

	h := NewHub(b, dir, 64)
	defer h.Stop()
	col := newCollector(12)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }() // fromSeq 0 < floor 8
	select {
	case <-col.reach:
	case err := <-done:
		t.Fatalf("stream ended early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("catch-up did not reach the log tail")
	}
	h.Stop()
	<-done

	frames := col.snapshot()
	if frames[0].Snapshot == nil {
		t.Fatal("first frame of below-floor catch-up is not a snapshot")
	}
	// Rebuild follower-style and compare against the primary graph.
	var fg *conn.Graph
	var snapEdges []conn.Edge
	applied := uint64(0)
	for _, f := range frames {
		switch {
		case f.Snapshot != nil:
			for _, p := range f.Snapshot.Edges {
				snapEdges = append(snapEdges, conn.Edge{U: p.U, V: p.V})
			}
			if f.Snapshot.Final {
				fg = conn.New(int(f.Snapshot.N))
				fg.InsertEdges(snapEdges)
				applied = f.Snapshot.Seq
			}
		case f.Epoch != nil:
			if f.Epoch.Seq <= applied {
				continue
			}
			if f.Epoch.Seq != applied+1 {
				t.Fatalf("epoch gap: applied %d, got %d", applied, f.Epoch.Seq)
			}
			ins := make([]conn.Edge, len(f.Epoch.Ins))
			for i, p := range f.Epoch.Ins {
				ins[i] = conn.Edge{U: p.U, V: p.V}
			}
			del := make([]conn.Edge, len(f.Epoch.Del))
			for i, p := range f.Epoch.Del {
				del[i] = conn.Edge{U: p.U, V: p.V}
			}
			fg.InsertEdges(ins)
			fg.DeleteEdges(del)
			applied = f.Epoch.Seq
		}
	}
	b.Flush()
	if applied < 12 {
		t.Fatalf("follower applied through %d, want ≥ 12", applied)
	}
	if fg.NumEdges() != 12 {
		t.Fatalf("follower has %d edges, want 12", fg.NumEdges())
	}
	for i := 0; i < 12; i++ {
		if !fg.HasEdge(int32(i), int32(i+1)) {
			t.Fatalf("follower missing edge {%d,%d}", i, i+1)
		}
	}
}

// TestHubDropsSlowFollower: a subscriber that cannot drain its buffer is
// dropped with ErrLagging instead of stalling the dispatcher.
func TestHubDropsSlowFollower(t *testing.T) {
	old := subscriberBuffer
	subscriberBuffer = 4
	defer func() { subscriberBuffer = old }()

	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	h := NewHub(b, dir, 64)
	defer h.Stop()

	block := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- h.Stream(0, func(Frame) error {
			once.Do(func() { close(started) })
			<-block // follower connection "wedged"
			return nil
		})
	}()

	b.Insert(0, 1) // first epoch: reaches the blocked send
	<-started
	// Overflow the 4-slot buffer while send is blocked.
	for i := 1; i < 8; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	close(block)
	select {
	case err := <-done:
		if !errors.Is(err, ErrLagging) {
			t.Fatalf("Stream returned %v, want ErrLagging", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow follower was not dropped")
	}
}

// oracleApplier is a follower-side Applier over a plain Graph, for tests.
type oracleApplier struct {
	mu      sync.Mutex
	g       *conn.Graph
	applied atomic.Uint64
	epochs  atomic.Int64
}

func (a *oracleApplier) AppliedSeq() uint64 { return a.applied.Load() }

func (a *oracleApplier) Universe() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.g.N()
}

func (a *oracleApplier) ApplySnapshot(seq uint64, n int, edges []conn.Edge) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := conn.New(n)
	g.InsertEdges(edges)
	a.g = g
	a.applied.Store(seq)
	return nil
}

func (a *oracleApplier) ApplyEpoch(seq uint64, ins, del []conn.Edge) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.g.InsertEdges(ins)
	a.g.DeleteEdges(del)
	a.applied.Store(seq)
	a.epochs.Add(1)
	return nil
}

// fakePrimary is a minimal wire server that serves scripted subscription
// streams, so follower behavior (resume point, reconnect, backoff) is
// testable without a real connserver.
type fakePrimary struct {
	ln       net.Listener
	mu       sync.Mutex
	resumes  []uint64 // FromSeq of each subscribe received
	sessions int
	serve    func(sess int, fromSeq uint64, send func(*wire.Response) error)
}

func newFakePrimary(t *testing.T) *fakePrimary {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePrimary{ln: ln}
	go p.loop()
	return p
}

func (p *fakePrimary) loop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(c)
	}
}

func (p *fakePrimary) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	req, err := wire.DecodeRequest(payload)
	if err != nil || req.Cmd != wire.CmdSubscribe {
		return
	}
	p.mu.Lock()
	p.resumes = append(p.resumes, req.FromSeq)
	sess := p.sessions
	p.sessions++
	serve := p.serve
	p.mu.Unlock()
	bw := bufio.NewWriter(c)
	send := func(resp *wire.Response) error {
		resp.ID = req.ID
		pl, err := wire.EncodeResponse(resp)
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(bw, pl); err != nil {
			return err
		}
		return bw.Flush()
	}
	if serve != nil {
		serve(sess, req.FromSeq, send)
	}
}

// TestFollowerAppliesAndResumes: the follower applies a stream, survives a
// mid-stream disconnect, and resubscribes from its last applied seq.
func TestFollowerAppliesAndResumes(t *testing.T) {
	p := newFakePrimary(t)
	defer p.ln.Close()

	epoch := func(seq uint64) *wire.Response {
		return &wire.Response{Epoch: &wire.EpochBody{
			Seq: seq, Ins: []wire.Pair{{U: int32(seq - 1), V: int32(seq)}},
		}}
	}
	p.mu.Lock()
	p.serve = func(sess int, fromSeq uint64, send func(*wire.Response) error) {
		switch sess {
		case 0:
			// Session 1: epochs 1..3, then hang up mid-stream.
			for s := uint64(1); s <= 3; s++ {
				if send(epoch(s)) != nil {
					return
				}
			}
		default:
			// Later sessions: continue from wherever the follower resumed.
			for s := fromSeq + 1; s <= 6; s++ {
				if send(epoch(s)) != nil {
					return
				}
			}
			// Keep the connection open so the follower blocks in read.
			time.Sleep(time.Hour)
		}
	}
	p.mu.Unlock()

	a := &oracleApplier{g: conn.New(64)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunFollower(stop, p.ln.Addr().String(), "g", a, FollowerOptions{
			MinBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for a.AppliedSeq() < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if a.AppliedSeq() != 6 {
		t.Fatalf("follower applied through %d, want 6", a.AppliedSeq())
	}
	for s := uint64(1); s <= 6; s++ {
		if !a.g.HasEdge(int32(s-1), int32(s)) {
			t.Fatalf("missing edge from epoch %d", s)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.resumes) < 2 {
		t.Fatalf("follower never reconnected: %d session(s)", len(p.resumes))
	}
	if p.resumes[0] != 0 {
		t.Fatalf("first subscribe resumed from %d, want 0", p.resumes[0])
	}
	if p.resumes[1] != 3 {
		t.Fatalf("reconnect resumed from %d, want 3 (last applied)", p.resumes[1])
	}
	if got := a.epochs.Load(); got != 6 {
		t.Fatalf("applied %d epochs, want exactly 6 (no duplicates)", got)
	}
}

// TestFollowerSnapshotReset: a snapshot frame replaces follower state
// wholesale, including chunked transfers.
func TestFollowerSnapshotReset(t *testing.T) {
	p := newFakePrimary(t)
	defer p.ln.Close()
	p.mu.Lock()
	p.serve = func(sess int, fromSeq uint64, send func(*wire.Response) error) {
		// Two chunks of one snapshot at seq 10, then one epoch.
		send(&wire.Response{Snapshot: &wire.SnapshotBody{
			Seq: 10, N: 32, Edges: []wire.Pair{{U: 1, V: 2}, {U: 2, V: 3}},
		}})
		send(&wire.Response{Snapshot: &wire.SnapshotBody{
			Seq: 10, N: 32, Final: true, Edges: []wire.Pair{{U: 5, V: 6}},
		}})
		send(&wire.Response{Epoch: &wire.EpochBody{Seq: 11, Ins: []wire.Pair{{U: 7, V: 8}}}})
		time.Sleep(time.Hour)
	}
	p.mu.Unlock()

	a := &oracleApplier{g: conn.New(4)} // wrong universe: snapshot must replace it
	a.g.InsertEdges([]conn.Edge{{U: 0, V: 1}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunFollower(stop, p.ln.Addr().String(), "g", a, FollowerOptions{
			MinBackoff: 5 * time.Millisecond,
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for a.AppliedSeq() < 11 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if a.AppliedSeq() != 11 {
		t.Fatalf("follower applied through %d, want 11", a.AppliedSeq())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.g.N() != 32 {
		t.Fatalf("snapshot did not replace the universe: n=%d", a.g.N())
	}
	for _, e := range []conn.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 5, V: 6}, {U: 7, V: 8}} {
		if !a.g.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge {%d,%d}", e.U, e.V)
		}
	}
	if a.g.HasEdge(0, 1) {
		t.Fatal("pre-snapshot state survived the reset")
	}
}

// replayFrames rebuilds follower state from a captured frame sequence the
// way streamOnce would: snapshots replace, deltas chain to their base, raw
// epochs decode through the codec registry. It returns the rebuilt graph
// and the last applied seq.
func replayFrames(t *testing.T, frames []Frame) (*conn.Graph, uint64) {
	t.Helper()
	var fg *conn.Graph
	var snapEdges []conn.Edge
	applied := uint64(0)
	for _, f := range frames {
		switch {
		case f.Snapshot != nil:
			snapEdges = append(snapEdges, pairsToEdges(f.Snapshot.Edges)...)
			if f.Snapshot.Final {
				fg = conn.New(int(f.Snapshot.N))
				fg.InsertEdges(snapEdges)
				applied, snapEdges = f.Snapshot.Seq, nil
			}
		case f.Delta != nil:
			if f.Delta.Base != applied {
				t.Fatalf("delta chains to seq %d but follower applied through %d", f.Delta.Base, applied)
			}
			fg.InsertEdges(pairsToEdges(f.Delta.Add))
			fg.DeleteEdges(pairsToEdges(f.Delta.Del))
			applied = f.Delta.Seq
		case f.Epoch != nil:
			if f.Epoch.Seq <= applied {
				continue
			}
			if f.Epoch.Seq != applied+1 {
				t.Fatalf("epoch gap: applied %d, got %d", applied, f.Epoch.Seq)
			}
			fg.InsertEdges(pairsToEdges(f.Epoch.Ins))
			fg.DeleteEdges(pairsToEdges(f.Epoch.Del))
			applied = f.Epoch.Seq
		case f.EpochRaw != nil:
			er := f.EpochRaw
			if er.Seq <= applied {
				continue
			}
			if er.Seq != applied+1 {
				t.Fatalf("raw epoch gap: applied %d, got %d", applied, er.Seq)
			}
			c, ok := wal.CodecByVersion(er.Codec)
			if !ok {
				t.Fatalf("raw epoch shipped unknown codec version %d", er.Codec)
			}
			rec, err := c.Decode(er.Enc, fg.N(), er.Seq-1)
			if err != nil {
				t.Fatalf("raw epoch %d undecodable: %v", er.Seq, err)
			}
			fg.InsertEdges(rec.Ins)
			fg.DeleteEdges(rec.Del)
			applied = er.Seq
		}
	}
	return fg, applied
}

// TestHubShipsRawCodecAndChain: a v2 + group-sync primary ships compressed
// records unchanged (epochraw frames, live and catch-up) and below-floor
// catch-up ships the checkpoint chain — full snapshot, then the newest
// delta, then the WAL tail from the delta's seq — converging to the
// primary's exact state.
func TestHubShipsRawCodecAndChain(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir),
		conn.WithWALCodec("v2"), conn.WithGroupSync(4, 300*time.Microsecond),
		conn.WithCheckpointEvery(4))
	defer b.Close()

	for i := 0; i < 6; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	if _, err := b.Checkpoint(); err != nil { // full, moves the floor
		t.Fatal(err)
	}
	b.Insert(10, 11)
	b.Delete(0, 1)
	if _, err := b.Checkpoint(); err != nil { // delta chained to the full
		t.Fatal(err)
	}
	b.Insert(11, 12) // WAL tail past the delta

	h := NewHub(b, dir, 64)
	defer h.Stop()
	const lastCatchUp = 9
	col := newCollector(lastCatchUp)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }() // fromSeq 0 < floor
	select {
	case <-col.reach:
	case err := <-done:
		t.Fatalf("stream ended early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("catch-up did not reach the log tail")
	}
	// Live phase after catch-up: still shipped raw.
	liveReach := col.retarget(lastCatchUp + 1)
	b.Insert(12, 13)
	select {
	case <-liveReach:
	case <-time.After(10 * time.Second):
		t.Fatal("live epoch never arrived")
	}
	h.Stop()
	<-done

	frames := col.snapshot()
	var sawDelta, sawRaw, sawDecoded bool
	for _, f := range frames {
		sawDelta = sawDelta || f.Delta != nil
		sawRaw = sawRaw || f.EpochRaw != nil
		sawDecoded = sawDecoded || f.Epoch != nil
	}
	if !sawDelta {
		t.Fatal("below-floor catch-up never shipped the delta checkpoint")
	}
	if !sawRaw {
		t.Fatal("v2 primary never shipped a raw-codec epoch frame")
	}
	if sawDecoded {
		t.Fatal("v2 primary re-encoded an epoch as a decoded frame")
	}

	fg, applied := replayFrames(t, frames)
	b.Flush()
	if want := b.WALSeq(); applied != want {
		t.Fatalf("follower applied through %d, primary at %d", applied, want)
	}
	if fg.NumEdges() != g.NumEdges() {
		t.Fatalf("follower has %d edges, primary has %d", fg.NumEdges(), g.NumEdges())
	}
	for _, e := range []conn.Edge{{U: 10, V: 11}, {U: 11, V: 12}, {U: 12, V: 13}} {
		if !fg.HasEdge(e.U, e.V) {
			t.Fatalf("follower missing edge {%d,%d}", e.U, e.V)
		}
	}
	if fg.HasEdge(0, 1) {
		t.Fatal("delta-shipped deletion missing on the follower")
	}
}

// TestFollowerAppliesDeltaAndRawFrames drives streamOnce's delta and
// epochraw branches through a scripted primary: snapshot, chained delta,
// then a v2-encoded raw epoch — and verifies a delta whose base does not
// match the follower's position severs the stream instead of applying.
func TestFollowerAppliesDeltaAndRawFrames(t *testing.T) {
	p := newFakePrimary(t)
	defer p.ln.Close()

	v2, ok := wal.CodecByName("v2")
	if !ok {
		t.Fatal("v2 codec unregistered")
	}
	raw := v2.Encode(nil, wal.Record{Seq: 21, Ins: []conn.Edge{{U: 7, V: 8}}})
	p.mu.Lock()
	p.serve = func(sess int, fromSeq uint64, send func(*wire.Response) error) {
		if sess > 0 {
			time.Sleep(time.Hour) // no help for a severed stream: one shot
		}
		send(&wire.Response{Snapshot: &wire.SnapshotBody{
			Seq: 10, N: 32, Final: true, Edges: []wire.Pair{{U: 1, V: 2}, {U: 2, V: 3}},
		}})
		send(&wire.Response{Delta: &wire.DeltaBody{
			Seq: 20, Base: 10, N: 32,
			Add: []wire.Pair{{U: 5, V: 6}}, Del: []wire.Pair{{U: 2, V: 3}},
		}})
		send(&wire.Response{EpochRaw: &wire.EpochRawBody{Seq: 21, Codec: v2.Version(), Enc: raw}})
		// Mis-chained delta: Base 5 != applied 21. Must error, not apply.
		send(&wire.Response{Delta: &wire.DeltaBody{
			Seq: 30, Base: 5, N: 32, Add: []wire.Pair{{U: 9, V: 10}},
		}})
		time.Sleep(time.Hour)
	}
	p.mu.Unlock()

	a := &oracleApplier{g: conn.New(4)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunFollower(stop, p.ln.Addr().String(), "g", a, FollowerOptions{
			MinBackoff: 5 * time.Millisecond,
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for a.AppliedSeq() < 21 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Give the bad delta a moment to (wrongly) land before stopping.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if a.AppliedSeq() != 21 {
		t.Fatalf("follower applied through %d, want 21", a.AppliedSeq())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range []conn.Edge{{U: 1, V: 2}, {U: 5, V: 6}, {U: 7, V: 8}} {
		if !a.g.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge {%d,%d}", e.U, e.V)
		}
	}
	if a.g.HasEdge(2, 3) {
		t.Fatal("delta deletion not applied")
	}
	if a.g.HasEdge(9, 10) {
		t.Fatal("mis-chained delta was applied")
	}
}

// TestHubStats: subscriber counts and shipped seqs are reported.
func TestHubStats(t *testing.T) {
	dir := t.TempDir()
	g := conn.New(64)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0), conn.WithDurability(dir))
	defer b.Close()
	h := NewHub(b, dir, 64)
	defer h.Stop()

	if n, _, _ := h.Stats(); n != 0 {
		t.Fatalf("fresh hub reports %d subscribers", n)
	}
	col := newCollector(3)
	done := make(chan error, 1)
	go func() { done <- h.Stream(0, col.send) }()
	for i := 0; i < 3; i++ {
		b.Insert(int32(i), int32(i+1))
	}
	<-col.reach
	n, shipped, _ := h.Stats()
	if n != 1 {
		t.Fatalf("Stats subscribers = %d, want 1", n)
	}
	if shipped != 3 {
		t.Fatalf("Stats lastShipped = %d, want 3", shipped)
	}
	h.Stop()
	<-done
	if n, _, _ := h.Stats(); n != 0 {
		t.Fatalf("stopped hub reports %d subscribers", n)
	}
}
