// Package repl implements WAL-shipping replication for Batcher-backed
// namespaces, the read-scaling subsystem the epoch pipeline was built to
// enable: the durable dispatcher already serializes every mutation into a
// totally ordered, CRC-checked, replayable epoch stream (internal/wal), so
// scaling reads horizontally is a matter of shipping that stream to
// follower processes and letting them serve the bounded-stale read tiers.
//
// Primary side (Hub, one per durable namespace): a subscriber hook on the
// Batcher tees every fsynced epoch into per-follower buffers, and Stream
// serves one follower — catch-up first (the newest on-disk checkpoint
// chain, if the follower's resume point predates the WAL floor, then the
// WAL tail read from disk with a wal.Tail cursor), then the live buffer.
// Catch-up never blocks writers: it reads checkpoint and log files with
// independent descriptors while the dispatcher keeps appending — and it is
// bounded by the source's synced frontier (Source.SyncedSeq), so an
// appended-but-unsynced record under group-commit scheduling never reaches
// a follower before its fsync. Records logged under a non-raw WAL codec
// ship in their encoded form (wire epochraw frames) and the follower
// decodes them through the codec registry: compressed bytes cross the wire
// unchanged. A follower that cannot drain its buffer as fast as the
// primary commits is dropped (the dispatcher must never block on a slow
// follower); it reconnects and re-enters catch-up from its last applied
// seq.
//
// Follower side (RunFollower): dial the primary, subscribe from the last
// applied seq, apply each frame through an Applier (snapshots replace all
// state, epochs apply atomically in seq order), and reconnect with
// exponential backoff when the stream breaks — re-running catch-up
// automatically, because catch-up is just what the primary does with a
// stale resume point.
package repl

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	conn "repro"
	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/wal"
	"repro/internal/wire"
)

// subscriberBuffer is the per-follower live-epoch buffer: how far a
// follower may lag behind the dispatcher (in epochs) before the hub drops
// it back to catch-up. A variable so tests can force the overflow path.
var subscriberBuffer = 8192

// snapshotChunk bounds the edges per snapshot frame so a full-state
// transfer of a large graph never exceeds the wire's frame limit.
const snapshotChunk = 1 << 20

// ErrStopped is returned by Stream when the hub is stopped (namespace
// dropped or server draining).
var ErrStopped = errors.New("repl: hub stopped")

// ErrLagging is returned by Stream when the follower's live buffer
// overflowed: the follower must reconnect and re-run catch-up.
var ErrLagging = errors.New("repl: follower too slow, dropped from live stream")

// Source is the primary-side surface the Hub needs from a durable
// conn.Batcher: the epoch tee, the fsynced frontier bounding what may be
// shipped, and the truncation floor bounding what is still on disk.
type Source interface {
	SubscribeEpochs(fn func(conn.EpochRecord)) (cancel func())
	SyncedSeq() uint64
	WALFloor() uint64
}

// Frame is one element of a subscription stream: exactly one of Snapshot,
// Delta, Epoch and EpochRaw is set.
type Frame struct {
	Snapshot *wire.SnapshotBody
	Delta    *wire.DeltaBody
	Epoch    *wire.EpochBody
	EpochRaw *wire.EpochRawBody
}

// Hub is the primary-side replication fan-out for one durable namespace.
// Construct with NewHub; Stop it before closing the Batcher.
type Hub struct {
	src     Source
	dir     string
	walPath string
	n       int

	mu          sync.Mutex
	subs        map[*subscriber]struct{}
	stopped     bool
	lastShipped uint64

	cancel func()
}

// subscriber is one connected follower's live buffer.
type subscriber struct {
	ch      chan conn.EpochRecord
	dropped bool
	lagging bool
	sent    atomic.Uint64 // last seq handed to the follower's connection
}

// NewHub registers an epoch subscriber on src and returns a hub serving
// followers of the namespace whose durability directory is dir and whose
// vertex universe is n.
func NewHub(src Source, dir string, n int) *Hub {
	h := &Hub{
		src:     src,
		dir:     dir,
		walPath: filepath.Join(dir, "wal.log"),
		n:       n,
		subs:    make(map[*subscriber]struct{}),
	}
	h.cancel = src.SubscribeEpochs(h.tee) //conn:dispatcher-entry — tee runs on the source's dispatcher goroutine
	return h
}

// tee runs on the Batcher's dispatcher goroutine: fan the epoch out to
// every follower buffer without ever blocking — a follower whose buffer is
// full is dropped to catch-up instead.
//
//conn:dispatcher-only
func (h *Hub) tee(rec conn.EpochRecord) {
	h.mu.Lock()
	h.lastShipped = rec.Seq
	for s := range h.subs {
		select {
		case s.ch <- rec:
		default:
			s.lagging = true
			h.drop(s)
		}
	}
	h.mu.Unlock()
}

// drop removes a subscriber and closes its buffer. Caller holds h.mu.
func (h *Hub) drop(s *subscriber) {
	if s.dropped {
		return
	}
	s.dropped = true
	delete(h.subs, s)
	close(s.ch)
}

// Stop unregisters the Batcher hook and terminates every live stream. Safe
// to call more than once; Stream calls after Stop fail fast.
func (h *Hub) Stop() {
	h.mu.Lock()
	if !h.stopped {
		h.stopped = true
		for s := range h.subs {
			h.drop(s)
		}
	}
	h.mu.Unlock()
	h.cancel()
}

// Stats reports the hub's replication counters: connected subscribers, the
// last epoch seq teed to them, and the largest per-subscriber lag (in
// epochs) between that seq and what has actually been written to the
// follower's connection.
func (h *Hub) Stats() (subscribers int, lastShipped, maxLag uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		if sent := s.sent.Load(); h.lastShipped > sent && h.lastShipped-sent > maxLag {
			maxLag = h.lastShipped - sent
		}
	}
	return len(h.subs), h.lastShipped, maxLag
}

// Stream serves one follower that wants every epoch after fromSeq. send is
// called sequentially from this goroutine with catch-up frames first
// (snapshot chunks and disk-read WAL tail records, when needed), then live
// epochs, and blocks the stream while the follower's connection accepts the
// write — backpressure lands on the per-follower buffer, never on the
// dispatcher. Stream returns when send fails (connection gone), the hub is
// stopped, the follower lags past its buffer, or the on-disk state needed
// for catch-up cannot be read.
func (h *Hub) Stream(fromSeq uint64, send func(Frame) error) error {
	sub := &subscriber{ch: make(chan conn.EpochRecord, subscriberBuffer)}
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return ErrStopped
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.drop(sub)
		h.mu.Unlock()
	}()

	sent, err := h.catchUp(fromSeq, sub, send)
	if err != nil {
		return err
	}

	// Live phase: the buffer was registered before catch-up read a byte, so
	// together they cover every epoch — overlap is deduped by seq, and a gap
	// is impossible unless the log itself lost records mid-file.
	for rec := range sub.ch {
		if rec.Seq <= sent {
			continue
		}
		if rec.Seq != sent+1 {
			return fmt.Errorf("repl: stream gap: shipped through seq %d, next live epoch is %d", sent, rec.Seq)
		}
		if err := h.send(sub, send, liveFrame(rec)); err != nil {
			return err
		}
		sent = rec.Seq
	}
	if sub.lagging {
		return ErrLagging
	}
	return ErrStopped
}

// send forwards one frame and records the follower's progress for Stats.
func (h *Hub) send(sub *subscriber, send func(Frame) error, f Frame) error {
	if flt := chaos.Inject(chaos.SiteReplStreamSend); flt != nil {
		if flt.Action == chaos.ActDelay {
			// A stalled pump: the dispatcher keeps teeing into the live
			// buffer meanwhile, so a long enough stall overflows it into
			// ErrLagging — the slow-follower drop path.
			flt.Sleep()
		} else {
			return flt.Err() // stream severed mid-flight; follower reconnects
		}
	}
	if err := send(f); err != nil {
		return err
	}
	switch {
	case f.Epoch != nil:
		sub.sent.Store(f.Epoch.Seq)
	case f.EpochRaw != nil:
		sub.sent.Store(f.EpochRaw.Seq)
	case f.Delta != nil:
		sub.sent.Store(f.Delta.Seq)
	case f.Snapshot != nil:
		sub.sent.Store(f.Snapshot.Seq)
	}
	return nil
}

// catchUp brings a follower from fromSeq to the synced end of the on-disk
// log, returning the last seq shipped. If fromSeq predates the WAL floor
// (the bridging records were truncated behind a checkpoint) or lies beyond
// the primary's synced history (a diverged follower), the follower's state
// is unusable and catch-up first ships the checkpoint chain to rebuild
// from: the full snapshot in bounded chunks, then the newest delta chained
// to it (when one validates), so the WAL replay that follows starts at the
// delta's seq instead of the full's. The tail loop is bounded by the
// source's synced frontier on every step — an appended-but-unsynced
// record, one a crash could still take back, is never shipped.
func (h *Hub) catchUp(fromSeq uint64, sub *subscriber, send func(Frame) error) (uint64, error) {
	const retries = 3
	for attempt := 0; ; attempt++ {
		start := fromSeq
		floor, last := h.src.WALFloor(), h.src.SyncedSeq()
		if fromSeq < floor || fromSeq > last {
			snap, delta, err := h.loadChain(floor)
			if err != nil {
				return 0, err
			}
			if err := h.sendSnapshot(sub, send, snap); err != nil {
				return 0, err
			}
			start = snap.Seq
			if delta != nil {
				if err := h.send(sub, send, Frame{Delta: &wire.DeltaBody{
					Seq: delta.Seq, Base: delta.Base, N: uint32(delta.N),
					Add: graphToPairs(delta.Add), Del: graphToPairs(delta.Del),
				}}); err != nil {
					return 0, err
				}
				start = delta.Seq
			}
		}
		t, err := wal.OpenTail(h.walPath, start)
		if errors.Is(err, wal.ErrSeqGone) && attempt < retries {
			// A checkpoint reset moved the floor between the decision above
			// and opening the file; re-decide — the snapshot branch will now
			// cover the gap.
			fromSeq = start
			continue
		}
		if err != nil {
			return 0, err
		}
		defer t.Close()
		sent := start
		for {
			rec, raw, ok, err := t.NextBelow(h.src.SyncedSeq())
			if err != nil {
				return 0, err
			}
			if !ok {
				return sent, nil
			}
			if err := h.send(sub, send, tailFrame(t.Codec(), rec, raw)); err != nil {
				return 0, err
			}
			sent = rec.Seq
		}
	}
}

// loadChain returns the newest on-disk checkpoint chain — the full
// snapshot plus the newest delta checkpoint chained to it, nil when none
// validates — or an empty snapshot at seq zero when the log has never been
// checkpointed (floor == 0): the follower rebuilds from nothing and
// replays the whole log.
func (h *Hub) loadChain(floor uint64) (checkpoint.Snapshot, *checkpoint.Delta, error) {
	snap, delta, ok, err := checkpoint.Chain(h.dir)
	if err != nil {
		return checkpoint.Snapshot{}, nil, err
	}
	if !ok {
		if floor > 0 {
			return checkpoint.Snapshot{}, nil, fmt.Errorf(
				"repl: WAL floor is seq %d but no readable checkpoint covers it", floor)
		}
		return checkpoint.Snapshot{Seq: 0, N: h.n}, nil, nil
	}
	if snap.Seq < floor {
		return checkpoint.Snapshot{}, nil, fmt.Errorf(
			"repl: newest readable checkpoint is seq %d, below the WAL floor %d", snap.Seq, floor)
	}
	return snap, delta, nil
}

// sendSnapshot ships a full-state transfer in bounded chunks.
func (h *Hub) sendSnapshot(sub *subscriber, send func(Frame) error, snap checkpoint.Snapshot) error {
	edges := snap.Edges
	for {
		chunk := edges
		if len(chunk) > snapshotChunk {
			chunk = chunk[:snapshotChunk]
		}
		edges = edges[len(chunk):]
		body := &wire.SnapshotBody{
			Seq:   snap.Seq,
			N:     uint32(snap.N),
			Final: len(edges) == 0,
			Edges: make([]wire.Pair, len(chunk)),
		}
		for i, e := range chunk {
			body.Edges[i] = wire.Pair{U: e.U, V: e.V}
		}
		if flt := chaos.Inject(chaos.SiteReplSnapshotSend); flt != nil {
			// Snapshot stream cut mid-transfer: the follower never sees the
			// final chunk, discards the partial state and re-enters
			// catch-up from scratch on its next connection.
			return flt.Err()
		}
		if err := h.send(sub, send, Frame{Snapshot: body}); err != nil {
			return err
		}
		if len(edges) == 0 {
			return nil
		}
	}
}

// liveFrame converts one teed epoch record to its stream frame: a record
// logged under a non-raw codec ships in its encoded form (the dispatcher
// hands the tee the exact WAL payload, safe to retain); the raw v1 codec
// ships as a plain epoch body — byte-for-byte what re-encoding would
// produce, so old followers keep working against v1 primaries.
func liveFrame(rec conn.EpochRecord) Frame {
	if rec.Codec > 1 && rec.Enc != nil {
		return Frame{EpochRaw: &wire.EpochRawBody{Seq: rec.Seq, Codec: rec.Codec, Enc: rec.Enc}}
	}
	return Frame{Epoch: epochBody(rec)}
}

// tailFrame is liveFrame's disk-side twin for catch-up records read back
// through a wal.Tail cursor.
func tailFrame(codecVersion byte, rec wal.Record, raw []byte) Frame {
	if codecVersion > 1 && raw != nil {
		return Frame{EpochRaw: &wire.EpochRawBody{Seq: rec.Seq, Codec: codecVersion, Enc: raw}}
	}
	return Frame{Epoch: &wire.EpochBody{
		Seq: rec.Seq, Ins: graphToPairs(rec.Ins), Del: graphToPairs(rec.Del),
	}}
}

func epochBody(rec conn.EpochRecord) *wire.EpochBody {
	return &wire.EpochBody{Seq: rec.Seq, Ins: edgesToPairs(rec.Ins), Del: edgesToPairs(rec.Del)}
}

func edgesToPairs(es []conn.Edge) []wire.Pair {
	out := make([]wire.Pair, len(es))
	for i, e := range es {
		out[i] = wire.Pair{U: e.U, V: e.V}
	}
	return out
}

func graphToPairs(es []graph.Edge) []wire.Pair {
	out := make([]wire.Pair, len(es))
	for i, e := range es {
		out[i] = wire.Pair{U: e.U, V: e.V}
	}
	return out
}

// pairsToEdges converts wire pairs back to public edges.
func pairsToEdges(ps []wire.Pair) []conn.Edge {
	out := make([]conn.Edge, len(ps))
	for i, p := range ps {
		out[i] = conn.Edge{U: p.U, V: p.V}
	}
	return out
}
