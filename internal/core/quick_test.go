package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

// TestQuickCoreMatchesOracle drives arbitrary batched operation scripts
// (derived from raw fuzz bytes) through both algorithms and a union-find
// oracle, checking full-pairwise connectivity and structure invariants after
// every batch.
func TestQuickCoreMatchesOracle(t *testing.T) {
	n := 14
	type script struct {
		Ops []uint16
	}
	f := func(s script) bool {
		for _, alg := range []Algorithm{SearchSimple, SearchInterleaved} {
			c := New(n, WithAlgorithm(alg))
			live := map[uint64]graph.Edge{}
			var batch []graph.Edge
			del := false
			apply := func() bool {
				if del {
					c.BatchDelete(batch)
					for _, e := range batch {
						delete(live, e.Key())
					}
				} else {
					c.BatchInsert(batch)
					for _, e := range batch {
						live[e.Key()] = e
					}
				}
				batch = batch[:0]
				uf := unionfind.New(n)
				for _, e := range live {
					uf.Union(e.U, e.V)
				}
				for a := 0; a < n; a++ {
					for b := a + 1; b < n; b++ {
						if c.Connected(graph.Vertex(a), graph.Vertex(b)) !=
							uf.Connected(int32(a), int32(b)) {
							return false
						}
					}
				}
				return c.CheckInvariants() == nil
			}
			for _, op := range s.Ops {
				u := graph.Vertex(op % uint16(n))
				v := graph.Vertex((op >> 4) % uint16(n))
				if u == v {
					continue
				}
				batch = append(batch, graph.Edge{U: u, V: v}.Canon())
				if op>>12 == 0 { // flush roughly every 16th op
					if !apply() {
						return false
					}
					del = !del
				}
			}
			if !apply() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInvariantOneHolds property-tests Invariant 1 in isolation: after
// any operation sequence, no F_i component exceeds 2^i vertices.
func TestQuickInvariantOne(t *testing.T) {
	n := 20
	f := func(raw []uint16) bool {
		c := New(n)
		var ins, del []graph.Edge
		for i, op := range raw {
			u := graph.Vertex(op % uint16(n))
			v := graph.Vertex((op / uint16(n)) % uint16(n))
			if u == v {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			if i%3 == 2 {
				del = append(del, e)
			} else {
				ins = append(ins, e)
			}
		}
		c.BatchInsert(ins)
		c.BatchDelete(del)
		for i := int32(1); i <= c.top; i++ {
			bound := int64(1) << uint(i)
			for v := 0; v < n; v++ {
				if c.f[i].Size(graph.Vertex(v)) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNonTreeLevelUniqueness: every live edge is registered at exactly
// one level, in exactly one kind of list, with intact back-pointers — i.e.
// the adjacency store and the dictionary agree after arbitrary scripts.
func TestQuickEdgePlacementUnique(t *testing.T) {
	n := 16
	f := func(raw []uint16) bool {
		c := New(n)
		var ins []graph.Edge
		for _, op := range raw {
			u := graph.Vertex(op % uint16(n))
			v := graph.Vertex((op / uint16(n)) % uint16(n))
			if u != v {
				ins = append(ins, graph.Edge{U: u, V: v}.Canon())
			}
		}
		c.BatchInsert(ins)
		if len(ins) > 2 {
			c.BatchDelete(ins[:len(ins)/2])
		}
		for _, r := range c.liveRecs() {
			// The record must be findable in both endpoints' lists at its
			// level and kind.
			found := 0
			for _, x := range c.adj.All(r.E.U, r.Level, r.IsTree) {
				if x == r {
					found++
				}
			}
			for _, x := range c.adj.All(r.E.V, r.Level, r.IsTree) {
				if x == r {
					found++
				}
			}
			if found != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
