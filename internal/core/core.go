// Package core implements the paper's primary contribution: a parallel
// batch-dynamic connectivity structure supporting batches of edge
// insertions, deletions and connectivity queries over an n-vertex graph.
//
// The structure maintains the HDT level hierarchy — forests F_1 ⊆ ... ⊆ F_L,
// L = ceil(lg n), components of G_i bounded by 2^i — with batch-parallel
// Euler-tour trees per level (internal/ett) and the Appendix-8 adjacency
// arrays (internal/adjlist). Batch insertion is Algorithm 2; batch deletion
// is Algorithm 3 with the level search selectable between Algorithm 4
// (ParallelLevelSearch, round-reset doubling) and Algorithm 5
// (InterleavedLevelSearch, a single geometric search size per level and
// deferred pushes — the version achieving the improved
// O(lg n · lg(1+n/Δ)) amortized work bound).
//
// # Read-only query contract
//
// Connected, BatchConnected, ComponentOf, ComponentID, ComponentSize,
// ComponentVertices, Components, ComponentLabels, NumComponents, N, Top and
// Stats are pure reads: they bottom out in internal/ett's (and so
// internal/treap's) read-only root walks and touch none of the structure's
// mutable state. Any number of goroutines may run them concurrently with
// each other, provided no mutation (BatchInsert, BatchDelete) is in flight
// — this is what lets conn.Batcher serve queries outside the write
// pipeline. HasEdge and NumEdges additionally read the edge dictionary,
// which is phase-concurrent and safe for concurrent lookups under the same
// no-writer condition. Enforced under -race by
// TestConnConcurrentReadOnlyQueries.
package core

import (
	"repro/internal/adjlist"
	"repro/internal/ett"
	"repro/internal/graph"
	"repro/internal/hdt"
	"repro/internal/levelcheck"
	"repro/internal/parallel"
	"repro/internal/pdict"
	"repro/internal/spanning"
	"repro/internal/treap"
)

// Algorithm selects the level-search strategy used by BatchDelete.
type Algorithm int

const (
	// SearchInterleaved is Algorithm 5 (default): one geometrically
	// growing search size per level, deferred tree insertion and deferred
	// push-downs. O(lg^3 n) depth.
	SearchInterleaved Algorithm = iota
	// SearchSimple is Algorithm 4: the doubling search restarts every
	// round. O(lg^4 n) depth; kept for the paper's ablation.
	SearchSimple
)

// Stats counts work-proxy events, used by tests and the experiment harness.
type Stats struct {
	Inserts       int64 // edges actually inserted
	Deletes       int64 // edges actually deleted
	InsertBatches int64
	DeleteBatches int64
	Replaced      int64 // replacement edges promoted to tree edges
	Pushdowns     int64 // non-tree edge level decreases
	TreePushes    int64 // tree edge level decreases
	EdgesExamined int64 // non-tree edges inspected as candidates
	Rounds        int64 // level-search rounds
	Phases        int64 // doubling phases (Algorithm 4 inner iterations)
	LevelSearches int64 // ParallelLevelSearch / InterleavedLevelSearch calls
}

// Conn is the parallel batch-dynamic connectivity structure.
//
// The edge dictionary ED (the paper's parallel dictionary) is a
// phase-concurrent hash table mapping canonical edge keys to indices in the
// record arena, so membership filtering of whole batches runs in parallel.
//
//conn:readonly-queries
type Conn struct {
	n     int
	top   int32
	f     []*ett.Forest
	adj   *adjlist.Store
	edges *pdict.Dict    // canonical edge key -> arena index
	arena []*adjlist.Rec // live records; nil entries are free slots
	freed []uint64       // free arena indices
	alg   Algorithm
	stats Stats
}

// Option configures a Conn.
type Option func(*Conn)

// WithAlgorithm selects the deletion level-search algorithm.
func WithAlgorithm(a Algorithm) Option {
	return func(c *Conn) { c.alg = a }
}

// New creates an empty graph over n vertices.
func New(n int, opts ...Option) *Conn {
	l := hdt.Levels(n)
	c := &Conn{
		n:     n,
		top:   int32(l),
		f:     make([]*ett.Forest, l+1),
		adj:   adjlist.New(n, l+1),
		edges: pdict.New(64),
		alg:   SearchInterleaved,
	}
	for i := 1; i <= l; i++ {
		c.f[i] = ett.New(n)
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// N returns the vertex count.
//
//conn:readonly
func (c *Conn) N() int { return c.n }

// Top returns the number of levels L.
//
//conn:readonly
func (c *Conn) Top() int { return int(c.top) }

// NumEdges returns the number of edges currently present.
//
//conn:readonly
func (c *Conn) NumEdges() int { return c.edges.Len() }

// recFor returns the live record for a canonical edge key, or nil.
//
//conn:readonly
func (c *Conn) recFor(key uint64) *adjlist.Rec {
	idx, ok := c.edges.Get(key)
	if !ok {
		return nil
	}
	return c.arena[idx]
}

// addRecs registers new records under their canonical keys; the dictionary
// insertion is a parallel batch.
func (c *Conn) addRecs(keys []uint64, recs []*adjlist.Rec) {
	idxs := make([]uint64, len(recs))
	for i, r := range recs {
		var idx uint64
		if k := len(c.freed); k > 0 {
			idx = c.freed[k-1]
			c.freed = c.freed[:k-1]
		} else {
			idx = uint64(len(c.arena))
			c.arena = append(c.arena, nil)
		}
		c.arena[idx] = r
		idxs[i] = idx
	}
	c.edges.BatchInsert(keys, idxs)
}

// takeRecs removes the given keys from the dictionary, returning the records
// that were present. Lookup is a parallel batch; arena bookkeeping is
// sequential O(k).
func (c *Conn) takeRecs(keys []uint64) []*adjlist.Rec {
	idxs, ok := c.edges.BatchLookup(keys)
	var out []*adjlist.Rec
	var present []uint64
	for i, k := range keys {
		if !ok[i] {
			continue
		}
		out = append(out, c.arena[idxs[i]])
		c.arena[idxs[i]] = nil
		c.freed = append(c.freed, idxs[i])
		present = append(present, k)
	}
	c.edges.BatchDelete(present)
	return out
}

// liveRecs returns all live edge records (test/checker support).
func (c *Conn) liveRecs() []*adjlist.Rec {
	return parallel.Filter(c.arena, func(r *adjlist.Rec) bool { return r != nil })
}

// Stats returns accumulated counters.
//
//conn:readonly
func (c *Conn) Stats() Stats { return c.stats }

// HasEdge reports whether (u, v) is present.
//
//conn:readonly
func (c *Conn) HasEdge(u, v graph.Vertex) bool {
	return c.recFor(graph.Edge{U: u, V: v}.Key()) != nil
}

// EdgeInfo reports whether (u, v) is present and, if present, whether it is
// currently a spanning-forest (tree) edge — one dictionary lookup. Deleting
// a non-tree edge never changes connectivity; the snapshot publisher uses
// this to skip epochs that cannot move any component label. Read-only.
//
//conn:readonly
func (c *Conn) EdgeInfo(u, v graph.Vertex) (present, tree bool) {
	r := c.recFor(graph.Edge{U: u, V: v}.Key())
	if r == nil {
		return false, false
	}
	return true, r.IsTree
}

// Connected reports whether u and v are connected (single query).
//
//conn:readonly
func (c *Conn) Connected(u, v graph.Vertex) bool {
	return c.f[c.top].Connected(u, v)
}

// BatchConnected answers k connectivity queries in parallel (Algorithm 1):
// O(k lg(1+n/k)) expected work, O(lg n) depth.
//
//conn:readonly
func (c *Conn) BatchConnected(qs []graph.Edge) []bool {
	return c.f[c.top].BatchConnected(qs)
}

// ComponentOf returns an opaque component identifier for u, equal for two
// vertices iff they are connected. Invalidated by updates.
//
//conn:readonly
func (c *Conn) ComponentOf(u graph.Vertex) any {
	r := c.f[c.top].Rep(u)
	if r == nil {
		return u // isolated vertex: itself
	}
	return r
}

// Components returns a dense labelling: lbl[u] == lbl[v] iff connected.
//
//conn:readonly
func (c *Conn) Components() []int32 {
	lbl := make([]int32, c.n)
	next := int32(0)
	byRep := make(map[*treap.Node]int32)
	for u := 0; u < c.n; u++ {
		r := c.f[c.top].Rep(graph.Vertex(u))
		if r == nil {
			lbl[u] = next
			next++
			continue
		}
		id, ok := byRep[r]
		if !ok {
			id = next
			next++
			byRep[r] = id
		}
		lbl[u] = id
	}
	return lbl
}

// NumComponents returns the number of connected components.
//
//conn:readonly
func (c *Conn) NumComponents() int {
	lbl := c.Components()
	max := int32(-1)
	for _, l := range lbl {
		if l > max {
			max = l
		}
	}
	return int(max + 1)
}

// ComponentSize returns the number of vertices in u's connected component.
//
//conn:readonly
func (c *Conn) ComponentSize(u graph.Vertex) int64 {
	return c.f[c.top].Size(u)
}

// ComponentID returns a hashable component identifier for u: equal for two
// vertices iff they are connected, unique per component, invalidated by any
// update touching the component. Unlike ComponentOf it is a plain uint64
// (the top-forest representative's node id, or a synthetic id for untouched
// singletons), so callers can dedup components without pointer handles.
//
//conn:readonly
func (c *Conn) ComponentID(u graph.Vertex) uint64 {
	return repKey(c.f[c.top], u)
}

// ComponentVertices returns the vertices of u's connected component, in tour
// order (a vertex never linked at the top level is a singleton). O(component
// size). Read-only.
//
//conn:readonly
func (c *Conn) ComponentVertices(u graph.Vertex) []graph.Vertex {
	r := c.f[c.top].Rep(u)
	if r == nil {
		return []graph.Vertex{u}
	}
	return c.f[c.top].Vertices(r)
}

// ComponentLabels fills dst (length n) with the min-vertex labelling:
// dst[u] is the smallest vertex id in u's component, so dst[u] == dst[v]
// iff u and v are connected. Unlike Components' dense 0..k-1 numbering,
// these labels are canonical — a component keeps its label across updates
// that do not change its membership — which is what lets the snapshot read
// path (internal/snapshot) repair a labelling incrementally. Read-only.
//
//conn:readonly
func (c *Conn) ComponentLabels(dst []int32) {
	if len(dst) != c.n {
		panic("core: ComponentLabels: dst length != n")
	}
	byRep := make(map[*treap.Node]int32)
	for u := 0; u < c.n; u++ {
		r := c.f[c.top].Rep(graph.Vertex(u))
		if r == nil {
			dst[u] = int32(u)
			continue
		}
		// Ascending scan: the first vertex seen for a representative is the
		// component's minimum.
		m, ok := byRep[r]
		if !ok {
			m = int32(u)
			byRep[r] = m
		}
		dst[u] = m
	}
}

// Neighbors appends to dst the vertices currently adjacent to u (tree and
// non-tree edges, all levels). Each live edge contributes exactly one entry,
// so the result is duplicate-free. O(degree(u)); the query layer's k-hop
// traversal bottoms out here. Read-only.
//
//conn:readonly
func (c *Conn) Neighbors(u graph.Vertex, dst []graph.Vertex) []graph.Vertex {
	return c.adj.Neighbors(u, false, dst)
}

// TreeNeighbors appends to dst the vertices adjacent to u through
// spanning-forest (tree) edges, across all levels — u's neighborhood in
// F_top. Walking TreeNeighbors from any vertex reaches exactly its
// component, by a path of tree edges; the query layer's tree-path
// extraction runs a BFS over it. Read-only.
//
//conn:readonly
func (c *Conn) TreeNeighbors(u graph.Vertex, dst []graph.Vertex) []graph.Vertex {
	return c.adj.Neighbors(u, true, dst)
}

// SpanningForest returns the edges of the current spanning forest (the tree
// edges of F_top). The slice is freshly allocated; order is unspecified.
//
//conn:readonly
func (c *Conn) SpanningForest() []graph.Edge {
	recs := parallel.Filter(c.arena, func(r *adjlist.Rec) bool { return r != nil && r.IsTree })
	return parallel.Map(recs, func(r *adjlist.Rec) graph.Edge { return r.E })
}

// NonTreeEdges returns the live edges that are not part of the spanning
// forest; SpanningForest ∪ NonTreeEdges is the complete live edge set (the
// feed for durable checkpoints). The slice is freshly allocated; order is
// unspecified. Read-only.
//
//conn:readonly
func (c *Conn) NonTreeEdges() []graph.Edge {
	recs := parallel.Filter(c.arena, func(r *adjlist.Rec) bool { return r != nil && !r.IsTree })
	return parallel.Map(recs, func(r *adjlist.Rec) graph.Edge { return r.E })
}

// LevelHistogram returns, for each level 1..Top, the number of live edges
// currently assigned to it (index 0 unused). Diagnostic for the experiment
// harness: edges sink as deletions search for replacements.
//
//conn:readonly
func (c *Conn) LevelHistogram() []int64 {
	h := make([]int64, c.top+1)
	for _, r := range c.arena {
		if r != nil {
			h[r.Level]++
		}
	}
	return h
}

// repKey maps a vertex's representative at forest f to a hashable id; an
// untouched (singleton) vertex gets a unique synthetic key.
func repKey(f *ett.Forest, v graph.Vertex) uint64 {
	if r := f.Rep(v); r != nil {
		return r.ID()
	}
	return 1<<63 | uint64(uint32(v))
}

// applyDeltas repairs the augmented counters of the level forests after a
// batch adjacency mutation. Deltas are grouped by (forest, component) so
// that each treap is updated by exactly one goroutine.
func (c *Conn) applyDeltas(deltas []adjlist.Delta) {
	if len(deltas) == 0 {
		return
	}
	keys := make([]uint64, len(deltas))
	parallel.For(len(deltas), 512, func(i int) {
		d := deltas[i]
		if r := c.f[d.Level].Rep(d.V); r != nil {
			keys[i] = r.ID()
		} else {
			// Unique per (vertex, level): singleton trees.
			keys[i] = 1<<63 | uint64(uint32(d.V))<<6 | uint64(uint32(d.Level))
		}
	})
	groups := parallel.GroupByParallel(keys)
	parallel.For(len(groups), 0, func(gi int) {
		for _, idx := range groups[gi].Indices {
			d := deltas[idx]
			c.f[d.Level].AddCounts(d.V, d.Tree, d.NonTree)
		}
	})
}

// BatchInsert adds a batch of edges (Algorithm 2). Self-loops, duplicates
// within the batch, and edges already present are ignored. Returns the
// number of edges actually inserted. O(k lg(1+n/k)) expected work.
func (c *Conn) BatchInsert(es []graph.Edge) int {
	es = graph.Dedup(es)
	{
		keys := graph.Keys(es)
		_, present := c.edges.BatchLookup(keys) // parallel membership filter
		es = parallel.Pack(es, parallel.Map(present, func(p bool) bool { return !p }))
	}
	if len(es) == 0 {
		return 0
	}
	c.stats.InsertBatches++
	c.stats.Inserts += int64(len(es))
	// All new edges enter at the top level as non-tree edges.
	recs := make([]*adjlist.Rec, len(es))
	parallel.For(len(es), 1024, func(i int) {
		recs[i] = &adjlist.Rec{E: es[i], Level: c.top}
	})
	c.addRecs(graph.Keys(es), recs)
	deltas := c.adj.BatchInsert(recs)
	c.applyDeltas(deltas)
	// Contract components and compute a spanning forest of the batch over
	// the contracted graph; its edges increase connectivity.
	ftop := c.f[c.top]
	us := make([]uint64, len(es))
	vs := make([]uint64, len(es))
	parallel.For(len(es), 256, func(i int) {
		us[i] = repKey(ftop, es[i].U)
		vs[i] = repKey(ftop, es[i].V)
	})
	sf := spanning.Forest(us, vs)
	chosen := parallel.PackIndex(len(es), func(i int) bool { return sf.Chosen[i] })
	if len(chosen) > 0 {
		treeRecs := make([]*adjlist.Rec, len(chosen))
		treeEdges := make([]graph.Edge, len(chosen))
		for i, idx := range chosen {
			treeRecs[i] = recs[idx]
			treeEdges[i] = es[idx]
		}
		c.promote(treeRecs, c.top)
		ftop.BatchLink(treeEdges)
	}
	return len(es)
}

// promote converts the given non-tree records into tree records at the given
// level, updating adjacency lists and augmented counters. It does not touch
// the forests; the caller links the edges.
func (c *Conn) promote(recs []*adjlist.Rec, lvl int32) {
	for _, r := range recs {
		dbgTrace("promote", r, "")
	}
	d1 := c.adj.BatchDelete(recs)
	parallel.For(len(recs), 1024, func(i int) {
		recs[i].IsTree = true
		recs[i].Level = lvl
	})
	d2 := c.adj.BatchInsert(recs)
	c.applyDeltas(append(d1, d2...))
}

// CheckInvariants validates the complete level structure; for tests.
func (c *Conn) CheckInvariants() error {
	return levelcheck.Check(c.n, int(c.top), c.f, c.adj, c.liveRecs())
}
