package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/unionfind"
)

// TestDeepLevelDescent forces edges down many levels: a dense cluster whose
// tree edges are repeatedly deleted makes non-tree edges descend as failed
// replacement candidates. Afterwards every edge must still be at a level
// where its endpoints are G_level-connected (checked by CheckInvariants),
// and connectivity must match the oracle.
func TestDeepLevelDescent(t *testing.T) {
	for name, alg := range algs() {
		n := 64
		c := New(n, WithAlgorithm(alg))
		// Dense cluster on 16 vertices + sparse periphery.
		var cluster []graph.Edge
		for u := 0; u < 16; u++ {
			for v := u + 1; v < 16; v++ {
				cluster = append(cluster, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)})
			}
		}
		c.BatchInsert(cluster)
		rng := rand.New(rand.NewSource(3))
		for round := 0; round < 30; round++ {
			// Delete the current spanning forest edges of the cluster (the
			// tree edges), forcing replacement searches each round.
			var del []graph.Edge
			for _, e := range c.SpanningForest() {
				if e.U < 16 && e.V < 16 && rng.Intn(2) == 0 {
					del = append(del, e)
				}
			}
			c.BatchDelete(del)
			c.BatchInsert(del)
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
		}
		// The histogram should show edges below the top level.
		h := c.LevelHistogram()
		below := int64(0)
		for i := 1; i < len(h)-1; i++ {
			below += h[i]
		}
		if below == 0 {
			t.Logf("%s: warning: no edges descended (histogram %v)", name, h)
		}
	}
}

func TestGridStormAgainstOracle(t *testing.T) {
	for name, alg := range algs() {
		r, cdim := 12, 12
		n := r * cdim
		g := New(n, WithAlgorithm(alg))
		grid := graphgen.Grid(r, cdim)
		g.BatchInsert(grid)
		rng := rand.New(rand.NewSource(8))
		live := map[uint64]graph.Edge{}
		for _, e := range grid {
			live[e.Key()] = e
		}
		for storm := 0; storm < 10; storm++ {
			var dead []graph.Edge
			for _, e := range live {
				if rng.Intn(4) == 0 {
					dead = append(dead, e)
				}
			}
			g.BatchDelete(dead)
			for _, e := range dead {
				delete(live, e.Key())
			}
			uf := unionfind.New(n)
			for _, e := range live {
				uf.Union(e.U, e.V)
			}
			for q := 0; q < 300; q++ {
				a := graph.Vertex(rng.Intn(n))
				b := graph.Vertex(rng.Intn(n))
				if g.Connected(a, b) != uf.Connected(int32(a), int32(b)) {
					t.Fatalf("%s storm %d: query (%d,%d) wrong", name, storm, a, b)
				}
			}
			// Repair half the dead links.
			var repair []graph.Edge
			for i, e := range dead {
				if i%2 == 0 {
					repair = append(repair, e)
				}
			}
			g.BatchInsert(repair)
			for _, e := range repair {
				live[e.Key()] = e
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("%s storm %d: %v", name, storm, err)
			}
		}
	}
}

func TestSpanningForestIsValidCertificate(t *testing.T) {
	n := 128
	c := New(n)
	es := graphgen.RandomGraph(n, 300, 21)
	c.BatchInsert(es)
	c.BatchDelete(es[:100])
	sf := c.SpanningForest()
	// Forest must be acyclic and induce exactly the structure's components.
	uf := unionfind.New(n)
	for _, e := range sf {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("spanning forest contains a cycle at %v", e)
		}
	}
	full := unionfind.New(n)
	for _, e := range es[100:] {
		full.Union(e.U, e.V)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v += 7 {
			if uf.Connected(int32(u), int32(v)) != full.Connected(int32(u), int32(v)) {
				t.Fatalf("forest connectivity differs from graph at (%d,%d)", u, v)
			}
		}
	}
}

func TestComponentSizes(t *testing.T) {
	c := New(10)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	if c.ComponentSize(0) != 3 || c.ComponentSize(2) != 3 {
		t.Fatalf("ComponentSize of triangle-path = %d", c.ComponentSize(0))
	}
	if c.ComponentSize(3) != 2 || c.ComponentSize(9) != 1 {
		t.Fatal("ComponentSize wrong for pair/singleton")
	}
	// Sizes sum to n across distinct components.
	lbl := c.Components()
	seen := map[int32]bool{}
	total := int64(0)
	for u := 0; u < 10; u++ {
		if !seen[lbl[u]] {
			seen[lbl[u]] = true
			total += c.ComponentSize(graph.Vertex(u))
		}
	}
	if total != 10 {
		t.Fatalf("component sizes sum to %d", total)
	}
}

func TestLevelHistogramAccountsAllEdges(t *testing.T) {
	n := 64
	c := New(n)
	es := graphgen.RandomGraph(n, 200, 5)
	c.BatchInsert(es)
	c.BatchDelete(es[:80])
	h := c.LevelHistogram()
	var sum int64
	for _, v := range h {
		sum += v
	}
	if sum != int64(c.NumEdges()) {
		t.Fatalf("histogram sums to %d, NumEdges %d", sum, c.NumEdges())
	}
}

// TestPowerLawChurn exercises heavy-tailed degree distributions (hub
// vertices have huge adjacency lists at one level).
func TestPowerLawChurn(t *testing.T) {
	for name, alg := range algs() {
		n := 300
		es := graphgen.PowerLaw(n, 3, 9)
		c := New(n, WithAlgorithm(alg))
		c.BatchInsert(es)
		rng := rand.New(rand.NewSource(10))
		live := map[uint64]graph.Edge{}
		for _, e := range es {
			live[e.Key()] = e
		}
		for round := 0; round < 8; round++ {
			var del []graph.Edge
			for _, e := range live {
				if rng.Intn(3) == 0 {
					del = append(del, e)
				}
			}
			c.BatchDelete(del)
			for _, e := range del {
				delete(live, e.Key())
			}
			uf := unionfind.New(n)
			for _, e := range live {
				uf.Union(e.U, e.V)
			}
			for q := 0; q < 200; q++ {
				a := graph.Vertex(rng.Intn(n))
				b := graph.Vertex(rng.Intn(n))
				if c.Connected(a, b) != uf.Connected(int32(a), int32(b)) {
					t.Fatalf("%s round %d: query wrong", name, round)
				}
			}
			c.BatchInsert(del[:len(del)/2])
			for _, e := range del[:len(del)/2] {
				live[e.Key()] = e
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestAlternatingAlgorithmsSameAnswers runs the identical workload through
// both algorithms and cross-checks all query answers (they may maintain
// different internal levels but must agree on connectivity).
func TestAlternatingAlgorithmsSameAnswers(t *testing.T) {
	n := 96
	a := New(n, WithAlgorithm(SearchSimple))
	b := New(n, WithAlgorithm(SearchInterleaved))
	rng := rand.New(rand.NewSource(12))
	live := map[uint64]graph.Edge{}
	for step := 0; step < 25; step++ {
		var ins []graph.Edge
		for j := 0; j < 30; j++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			if u != v {
				ins = append(ins, graph.Edge{U: u, V: v}.Canon())
			}
		}
		a.BatchInsert(ins)
		b.BatchInsert(ins)
		for _, e := range ins {
			live[e.Key()] = e
		}
		var del []graph.Edge
		for _, e := range live {
			if rng.Intn(3) == 0 {
				del = append(del, e)
			}
		}
		a.BatchDelete(del)
		b.BatchDelete(del)
		for _, e := range del {
			delete(live, e.Key())
		}
		qs := graphgen.QueryBatch(n, 150, int64(step))
		ra := a.BatchConnected(qs)
		rb := b.BatchConnected(qs)
		for i := range qs {
			if ra[i] != rb[i] {
				t.Fatalf("step %d: algorithms disagree on %v", step, qs[i])
			}
		}
	}
}
