package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/adjlist"
	"repro/internal/ett"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/spanning"
	"repro/internal/treap"
)

// BatchDelete removes a batch of edges (Algorithm 3). Edges not present are
// ignored; returns the number actually deleted. Deleting tree edges triggers
// the level search (Algorithm 4 or 5 per the configured Algorithm),
// restoring a valid spanning forest hierarchy.
func (c *Conn) BatchDelete(es []graph.Edge) int {
	es = graph.Dedup(es)
	recs := c.takeRecs(graph.Keys(es))
	if len(recs) == 0 {
		return 0
	}
	c.stats.DeleteBatches++
	c.stats.Deletes += int64(len(recs))
	// Remove from adjacency lists and repair counters (forests untouched
	// yet, so delta grouping by component is stable).
	deltas := c.adj.BatchDelete(recs)
	c.applyDeltas(deltas)
	// Collect the deleted tree edges.
	treeRecs := parallel.Filter(recs, func(r *adjlist.Rec) bool { return r.IsTree })
	if len(treeRecs) == 0 {
		return len(recs)
	}
	// Cut each tree edge from F_{l(e)}..F_top. Forests are independent
	// structures, so levels run in parallel; BatchCut parallelizes across
	// tours within a level.
	minl := treeRecs[0].Level
	for _, r := range treeRecs {
		if r.Level < minl {
			minl = r.Level
		}
	}
	parallel.For(int(c.top)-int(minl)+1, 1, func(off int) {
		j := minl + int32(off)
		var cut []graph.Edge
		for _, r := range treeRecs {
			if r.Level <= j {
				cut = append(cut, r.E)
			}
		}
		c.f[j].BatchCut(cut)
	})
	// Witnesses: the endpoints of each deleted tree edge identify the
	// components requiring reconnection, starting at the edge's level.
	witnessesAt := make([][]graph.Vertex, c.top+1)
	for _, r := range treeRecs {
		witnessesAt[r.Level] = append(witnessesAt[r.Level], r.E.U, r.E.V)
	}
	var C []graph.Vertex
	var S []graph.Edge
	for i := minl; i <= c.top; i++ {
		C = append(C, witnessesAt[i]...)
		c.stats.LevelSearches++
		if c.alg == SearchSimple {
			C, S = c.searchSimple(i, C, S)
		} else {
			C, S = c.searchInterleaved(i, C, S)
		}
	}
	return len(recs)
}

// compInfo is one distinct disconnected piece at the current level.
type compInfo struct {
	w   graph.Vertex // witness vertex
	rep *treap.Node  // its F_i representative (stable while F_i is unmodified)
}

// dedupeComponents resolves witness vertices to distinct components of fi,
// dropping vertices sharing a representative. Vertices untouched at this
// level (nil rep) are singletons with no level-i edges; they are returned in
// the carry list to stay in D for higher levels.
func dedupeComponents(fi *ett.Forest, ws []graph.Vertex) (comps []compInfo, carry []graph.Vertex) {
	if len(ws) <= 24 {
		// Small-batch fast path: linear scans, no map allocation.
		for _, w := range ws {
			r := fi.Rep(w)
			if r == nil {
				dup := false
				for _, c := range carry {
					if c == w {
						dup = true
						break
					}
				}
				if !dup {
					carry = append(carry, w)
				}
				continue
			}
			dup := false
			for _, c := range comps {
				if c.rep == r {
					dup = true
					break
				}
			}
			if !dup {
				comps = append(comps, compInfo{w: w, rep: r})
			}
		}
		return comps, carry
	}
	seen := make(map[*treap.Node]bool, len(ws))
	seenV := make(map[graph.Vertex]bool)
	for _, w := range ws {
		r := fi.Rep(w)
		if r == nil {
			if !seenV[w] {
				seenV[w] = true
				carry = append(carry, w)
			}
			continue
		}
		if !seen[r] {
			seen[r] = true
			comps = append(comps, compInfo{w: w, rep: r})
		}
	}
	return comps, carry
}

// insertFoundForest inserts the tree edges discovered at lower levels into
// fi (line 2 of both search algorithms). Each S edge is inserted into each
// forest above its discovery level exactly once, because each level is
// visited once on the way up.
func (c *Conn) insertFoundForest(fi *ett.Forest, S []graph.Edge) {
	fi.BatchLink(S)
}

// pushTreeEdges moves every level-i tree edge of the given active components
// down to level i-1 (line 5). The adjacency moves and counter updates run in
// parallel per component (components are vertex-disjoint, and F_{i-1} trees
// are sub-components); the F_{i-1} links are applied sequentially afterwards
// because the ETT arc index is shared.
func (c *Conn) pushTreeEdges(i int32, comps []compInfo) {
	if len(comps) == 0 {
		return
	}
	fi, fim1 := c.f[i], c.f[i-1]
	perComp := make([][]graph.Edge, len(comps))
	parallel.For(len(comps), 1, func(ci int) {
		rep := comps[ci].rep
		slots := fi.FetchTreeSlots(rep, 1<<62)
		// Copy before mutating: All returns a view into the adjacency
		// array, which Delete rearranges in place.
		var collected []*adjlist.Rec
		for _, s := range slots {
			collected = append(collected, c.adj.All(s.V, i, true)...)
		}
		var mine []*adjlist.Rec
		for _, r := range collected {
			if r.Level == i { // skip records already moved via their other endpoint
				c.adj.Delete(r)
				r.Level = i - 1
				c.adj.Insert(r)
				mine = append(mine, r)
			}
		}
		var edges []graph.Edge
		for _, r := range mine {
			fi.AddCounts(r.E.U, -1, 0)
			fi.AddCounts(r.E.V, -1, 0)
			fim1.AddCounts(r.E.U, 1, 0)
			fim1.AddCounts(r.E.V, 1, 0)
			edges = append(edges, r.E)
			atomic.AddInt64(&c.stats.TreePushes, 1)
		}
		perComp[ci] = edges
	})
	if i > 1 {
		// Components are vertex-disjoint, so their F_{i-1} sub-forests
		// are too: link groups in parallel.
		fim1.BatchLinkDisjoint(perComp)
	} else {
		for _, edges := range perComp {
			if len(edges) > 0 {
				panic("core: tree edges pushed below level 1")
			}
		}
	}
}

// fetchCandidates returns the first `limit` level-i non-tree edge slots of
// the component with representative rep, deduplicated into distinct records
// in tour order. consumed reports how many slot entries were covered
// (== limit unless the component ran out).
func (c *Conn) fetchCandidates(fi *ett.Forest, i int32, rep *treap.Node, limit int64) (out []*adjlist.Rec, consumed int64) {
	if limit <= 0 {
		return nil, 0
	}
	slots := fi.FetchNonTreeSlots(rep, limit)
	for _, s := range slots {
		take := s.Cnt
		if consumed+take > limit {
			take = limit - consumed
		}
		for _, r := range c.adj.Fetch(s.V, i, false, int(take)) {
			consumed++
			out = append(out, r)
		}
		if consumed >= limit {
			break
		}
	}
	// An intra-component record can appear twice (once per endpoint slot).
	// Downstream consumers are duplicate-tolerant: the replacement scan is
	// order-based, and pushNonTree skips records already moved (level
	// guard), so no dedup map is needed on this hot path.
	return out, consumed
}

// pushNonTree moves the given non-tree records from level i to level i-1,
// updating adjacency lists and counters. Caller guarantees the records'
// endpoints all lie within one component owned by the calling goroutine.
//
// Soundness guard (implementation deviation from the paper's pseudocode): a
// record is only moved if its endpoints are connected in F_{i-1}. When
// pieces merge through a replacement edge — which lives at level i — an
// intra-component edge spanning the merge boundary is NOT connected one
// level down; pushing it would break the invariant that a level-j non-tree
// edge has endpoints connected in G_j, which later searches rely on (it is
// what lets a promoted replacement be linked into every forest above its
// level without creating cycles). Such edges simply remain at level i and
// may be re-examined; see DESIGN.md for the amortization note.
func (c *Conn) pushNonTree(i int32, recs []*adjlist.Rec) {
	if len(recs) == 0 {
		return
	}
	if i == 1 {
		panic("core: non-tree edges pushed below level 1")
	}
	fi, fim1 := c.f[i], c.f[i-1]
	pushed := int64(0)
	for _, r := range recs {
		if r.Level != i {
			continue // duplicate occurrence; already moved
		}
		if !fim1.Connected(r.E.U, r.E.V) {
			dbgTrace("pushNonTree-skip", r, "not connected below")
			continue
		}
		dbgTrace("pushNonTree", r, "")
		c.adj.Delete(r)
		fi.AddCounts(r.E.U, 0, -1)
		fi.AddCounts(r.E.V, 0, -1)
		r.Level = i - 1
		c.adj.Insert(r)
		fim1.AddCounts(r.E.U, 0, 1)
		fim1.AddCounts(r.E.V, 0, 1)
		pushed++
	}
	atomic.AddInt64(&c.stats.Pushdowns, pushed)
}

// searchSimple is ParallelLevelSearch (Algorithm 4): each round restarts a
// doubling search in every remaining active component, pushes failed
// candidates immediately, then commits a spanning forest of the found
// replacements. Returns the components for the next level (D) and the
// accumulated found tree edges (S).
func (c *Conn) searchSimple(i int32, L []graph.Vertex, S []graph.Edge) ([]graph.Vertex, []graph.Edge) {
	fi := c.f[i]
	c.insertFoundForest(fi, S)
	comps, carry := dedupeComponents(fi, L)
	half := int64(1) << uint(i-1)
	var D []graph.Vertex
	D = append(D, carry...)
	var active []compInfo
	for _, ci := range comps {
		if fi.RepSize(ci.rep) <= half {
			active = append(active, ci)
		} else {
			D = append(D, ci.w)
		}
	}
	if len(active) == 0 {
		return D, S
	}
	c.pushTreeEdges(i, active)
	guard := 0
	for len(active) > 0 {
		guard++
		if guard > 4*c.n+16 {
			panic(fmt.Sprintf("core: searchSimple(level %d) did not converge", i))
		}
		atomic.AddInt64(&c.stats.Rounds, 1)
		// Phase 1: doubling search per component, in parallel.
		found := make([]*adjlist.Rec, len(active))
		exhausted := make([]bool, len(active))
		parallel.For(len(active), 1, func(ci int) {
			found[ci], exhausted[ci] = c.doublingSearch(i, active[ci].rep)
		})
		// Phase 2: commit a spanning forest of the replacements.
		var R []*adjlist.Rec
		rseen := make(map[*adjlist.Rec]bool)
		for _, r := range found {
			if r != nil && !rseen[r] {
				rseen[r] = true
				R = append(R, r)
			}
		}
		var nextWitness []graph.Vertex
		for ci := range active {
			if exhausted[ci] {
				D = append(D, active[ci].w)
			} else {
				nextWitness = append(nextWitness, active[ci].w)
			}
		}
		if len(R) > 0 {
			us := make([]uint64, len(R))
			vs := make([]uint64, len(R))
			parallel.For(len(R), 256, func(k int) {
				us[k] = repKey(fi, R[k].E.U)
				vs[k] = repKey(fi, R[k].E.V)
			})
			sf := spanning.Forest(us, vs)
			var chosen []*adjlist.Rec
			var chosenEdges []graph.Edge
			for k := range R {
				if sf.Chosen[k] {
					chosen = append(chosen, R[k])
					chosenEdges = append(chosenEdges, R[k].E)
				}
			}
			c.promote(chosen, i)
			fi.BatchLink(chosenEdges)
			S = append(S, chosenEdges...)
			atomic.AddInt64(&c.stats.Replaced, int64(len(chosen)))
		}
		// Recompute surviving components against the updated forest.
		var nextActive []compInfo
		comps, carry = dedupeComponents(fi, nextWitness)
		D = append(D, carry...)
		for _, ci := range comps {
			if fi.RepSize(ci.rep) <= half {
				nextActive = append(nextActive, ci)
			} else {
				D = append(D, ci.w)
			}
		}
		active = nextActive
	}
	return D, S
}

// doublingSearch runs the per-component inner loop of Algorithm 4: phases of
// geometrically increasing candidate prefixes until a replacement edge is
// found or the component's level-i non-tree edges are exhausted. Failed
// candidates preceding the first replacement are pushed to level i-1
// immediately; on exhaustion everything is pushed. Returns the replacement
// record (nil if none) and whether the component is exhausted.
func (c *Conn) doublingSearch(i int32, rep *treap.Node) (*adjlist.Rec, bool) {
	fi := c.f[i]
	cmax := fi.RepNonTree(rep)
	if cmax == 0 {
		return nil, true
	}
	for w := 0; ; w++ {
		atomic.AddInt64(&c.stats.Phases, 1)
		csz := int64(1) << uint(min64(int64(w), 60))
		if csz > cmax {
			csz = cmax
		}
		ec, _ := c.fetchCandidates(fi, i, rep, csz)
		atomic.AddInt64(&c.stats.EdgesExamined, int64(len(ec)))
		for k, r := range ec {
			other := fi.Rep(r.E.U)
			if other == rep {
				other = fi.Rep(r.E.V)
			}
			if other != rep {
				// First replacement: push everything before it.
				dbgTrace("foundReplacement", r, "")
				c.pushNonTree(i, ec[:k])
				return r, false
			}
		}
		if csz == cmax {
			c.pushNonTree(i, ec)
			return nil, true
		}
	}
}

// debugEdge, when non-zero, traces one edge's level transitions (tests only).
var debugEdge uint64

func dbgTrace(where string, r *adjlist.Rec, extra string) {
	if debugEdge != 0 && r.E.Key() == debugEdge {
		fmt.Printf("TRACE %s: edge=%v level=%d tree=%v %s\n", where, r.E, r.Level, r.IsTree, extra)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
