package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/adjlist"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/spanning"
	"repro/internal/treap"
)

// superSet tracks the contracted supercomponents of Algorithm 5 (the map M):
// as replacement edges are committed, the F_i pieces they join are merged
// here — without touching F_i itself, whose components must stay stable for
// the duration of the level search. Sizes of supercomponents gate both the
// active-component check and the legality of pushing a round's edges down.
type superSet struct {
	byRep  map[*treap.Node]int32
	parent []int32
	size   []int64
}

func newSuperSet() *superSet {
	return &superSet{byRep: make(map[*treap.Node]int32)}
}

// find resolves a super index to its current root.
func (s *superSet) find(x int32) int32 {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// of returns (creating if needed) the super root of the F_i component with
// representative rep, whose vertex count is sz.
func (s *superSet) of(rep *treap.Node, sz int64) int32 {
	if idx, ok := s.byRep[rep]; ok {
		return s.find(idx)
	}
	idx := int32(len(s.parent))
	s.byRep[rep] = idx
	s.parent = append(s.parent, idx)
	s.size = append(s.size, sz)
	return idx
}

// union merges two super roots, summing sizes.
func (s *superSet) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	s.parent[rb] = ra
	s.size[ra] += s.size[rb]
}

// sizeOf returns the current size of x's supercomponent.
func (s *superSet) sizeOf(x int32) int64 { return s.size[s.find(x)] }

// searchInterleaved is InterleavedLevelSearch (Algorithm 5). One search size
// 2^r grows across ALL rounds of the level; tree-edge insertion into F_i and
// the push-down of examined edges are deferred to the end of the level.
// Components keep searching from their original (stable) F_i pieces until
// their supercomponent grows past 2^(i-1) or they run out of edges.
func (c *Conn) searchInterleaved(i int32, L []graph.Vertex, S []graph.Edge) ([]graph.Vertex, []graph.Edge) {
	fi := c.f[i]
	c.insertFoundForest(fi, S)
	comps, carry := dedupeComponents(fi, L)
	half := int64(1) << uint(i-1)
	var D []graph.Vertex
	D = append(D, carry...)
	var active []compInfo
	for _, ci := range comps {
		if fi.RepSize(ci.rep) <= half {
			active = append(active, ci)
		} else {
			D = append(D, ci.w)
		}
	}
	if len(active) == 0 {
		return D, S
	}
	c.pushTreeEdges(i, active)

	supers := newSuperSet()
	for _, ci := range active {
		supers.of(ci.rep, fi.RepSize(ci.rep))
	}
	var T []*adjlist.Rec // committed replacement records (deferred)
	chosenSet := make(map[*adjlist.Rec]bool)
	var EP []*adjlist.Rec // records removed from level i, pushed at the end
	inEP := make(map[*adjlist.Rec]bool)

	guard := 0
	for r := 0; len(active) > 0; r++ {
		guard++
		if guard > 4*c.n+64 {
			panic(fmt.Sprintf("core: searchInterleaved(level %d) did not converge", i))
		}
		atomic.AddInt64(&c.stats.Rounds, 1)
		sz := int64(1) << uint(min64(int64(r), 60))
		// Fetch candidates and classify replacements, per component in
		// parallel. F_i is never modified inside this loop, so the
		// representatives captured in `active` remain valid.
		type roundRes struct {
			ec        []*adjlist.Rec
			repl      []*adjlist.Rec
			exhausted bool
		}
		results := make([]roundRes, len(active))
		parallel.For(len(active), 1, func(ci int) {
			rep := active[ci].rep
			cmax := fi.RepNonTree(rep)
			if cmax == 0 {
				results[ci] = roundRes{exhausted: true}
				return
			}
			csz := min64(sz, cmax)
			ec, _ := c.fetchCandidates(fi, i, rep, csz)
			atomic.AddInt64(&c.stats.EdgesExamined, int64(len(ec)))
			var repl []*adjlist.Rec
			for _, rc := range ec {
				other := fi.Rep(rc.E.U)
				if other == rep {
					other = fi.Rep(rc.E.V)
				}
				if other != rep {
					repl = append(repl, rc)
				}
			}
			results[ci] = roundRes{ec: ec, repl: repl, exhausted: csz == cmax}
		})
		// Commit a spanning forest of this round's replacements over the
		// current supercomponents (lines 16-21).
		var R []*adjlist.Rec
		rseen := make(map[*adjlist.Rec]bool)
		for ci := range results {
			for _, rc := range results[ci].repl {
				if !rseen[rc] && !chosenSet[rc] {
					rseen[rc] = true
					R = append(R, rc)
				}
			}
		}
		if len(R) > 0 {
			us := make([]uint64, len(R))
			vs := make([]uint64, len(R))
			su := make([]int32, len(R))
			sv := make([]int32, len(R))
			for k, rc := range R {
				ru, rv := fi.Rep(rc.E.U), fi.Rep(rc.E.V)
				su[k] = supers.of(ru, fi.RepSize(ru))
				sv[k] = supers.of(rv, fi.RepSize(rv))
				us[k] = uint64(su[k])
				vs[k] = uint64(sv[k])
			}
			sf := spanning.Forest(us, vs)
			for k, rc := range R {
				if sf.Chosen[k] {
					chosenSet[rc] = true
					T = append(T, rc)
					supers.union(su[k], sv[k])
					atomic.AddInt64(&c.stats.Replaced, 1)
				}
			}
		}
		// Decide per component: keep searching (remove this round's
		// candidates from level i for the deferred push) or deactivate
		// (lines 22-31).
		var pushRound []*adjlist.Rec
		var nextActive []compInfo
		for ci := range active {
			res := results[ci]
			superSz := supers.sizeOf(supers.of(active[ci].rep, fi.RepSize(active[ci].rep)))
			if superSz <= half && !res.exhausted {
				for _, rc := range res.ec {
					if !inEP[rc] {
						inEP[rc] = true
						pushRound = append(pushRound, rc)
					}
				}
				nextActive = append(nextActive, active[ci])
			} else {
				D = append(D, active[ci].w)
			}
		}
		if len(pushRound) > 0 {
			if i == 1 {
				panic("core: interleaved push below level 1")
			}
			// Remove from level i now; the records enter level i-1 at
			// the end of the level. Counter repair groups by the
			// still-stable F_i components.
			deltas := c.adj.BatchDelete(pushRound)
			c.applyDeltas(deltas)
			EP = append(EP, pushRound...)
			atomic.AddInt64(&c.stats.Pushdowns, int64(len(pushRound)))
		}
		active = nextActive
	}

	// End of level (lines 33-35): land the pushed records on level i-1,
	// promote the committed replacements, and only now mutate the forests.
	if len(EP) > 0 {
		fim1 := c.f[i-1]
		// Chosen tree edges in EP enter F_{i-1} first, so the
		// connectivity guard below sees the merged structure.
		var treeEP, nonTreeEP []*adjlist.Rec
		for _, rc := range EP {
			if chosenSet[rc] {
				rc.IsTree = true
				rc.Level = i - 1
				treeEP = append(treeEP, rc)
			} else {
				nonTreeEP = append(nonTreeEP, rc)
			}
		}
		if len(treeEP) > 0 {
			deltas := c.adj.BatchInsert(treeEP)
			c.applyDeltas(deltas)
			var edges []graph.Edge
			for _, rc := range treeEP {
				edges = append(edges, rc.E)
			}
			fim1.BatchLink(edges)
		}
		// Soundness guard (see pushNonTree): a non-tree record may only
		// descend if its endpoints are connected in F_{i-1}; edges
		// spanning pieces whose connecting tree edge stayed at level i
		// would otherwise violate the level invariant. The rest return
		// to level i.
		if len(nonTreeEP) > 0 {
			ok := make([]bool, len(nonTreeEP))
			parallel.For(len(nonTreeEP), 64, func(k int) {
				ok[k] = fim1.Connected(nonTreeEP[k].E.U, nonTreeEP[k].E.V)
			})
			down := int64(0)
			for k, rc := range nonTreeEP {
				if ok[k] {
					rc.Level = i - 1
					down++
				} else {
					rc.Level = i
					atomic.AddInt64(&c.stats.Pushdowns, -1) // counted optimistically below
				}
			}
			deltas := c.adj.BatchInsert(nonTreeEP)
			c.applyDeltas(deltas)
			_ = down
		}
	}
	// Promote chosen records still living at level i (those whose finder
	// deactivated before pushing them).
	var atLevel []*adjlist.Rec
	var allTreeEdges []graph.Edge
	for _, rc := range T {
		allTreeEdges = append(allTreeEdges, rc.E)
		if !inEP[rc] {
			atLevel = append(atLevel, rc)
		}
	}
	c.promote(atLevel, i)
	fi.BatchLink(allTreeEdges)
	S = append(S, allTreeEdges...)
	return D, S
}
