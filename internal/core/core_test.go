package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

func algs() map[string]Algorithm {
	return map[string]Algorithm{"simple": SearchSimple, "interleaved": SearchInterleaved}
}

func oracleCheck(t *testing.T, c *Conn, live map[uint64]graph.Edge, tag string) {
	t.Helper()
	uf := unionfind.New(c.N())
	for _, e := range live {
		uf.Union(e.U, e.V)
	}
	n := c.N()
	var qs []graph.Edge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n && b < a+9; b++ {
			qs = append(qs, graph.Edge{U: graph.Vertex(a), V: graph.Vertex(b)})
		}
	}
	got := c.BatchConnected(qs)
	for i, q := range qs {
		want := uf.Connected(q.U, q.V)
		if got[i] != want {
			t.Fatalf("%s: Connected(%d,%d) = %v, want %v", tag, q.U, q.V, got[i], want)
		}
	}
}

func TestBatchInsertBasic(t *testing.T) {
	for name, alg := range algs() {
		c := New(6, WithAlgorithm(alg))
		got := c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
		if got != 3 {
			t.Fatalf("%s: inserted %d, want 3", name, got)
		}
		if !c.Connected(0, 2) || c.Connected(0, 3) || !c.Connected(3, 4) {
			t.Fatalf("%s: connectivity wrong after insert", name)
		}
		if c.NumEdges() != 3 {
			t.Fatalf("%s: NumEdges = %d", name, c.NumEdges())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBatchInsertDedupAndLoops(t *testing.T) {
	c := New(4)
	got := c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 2}, {U: 0, V: 1}})
	if got != 1 {
		t.Fatalf("inserted %d, want 1", got)
	}
	if got := c.BatchInsert([]graph.Edge{{U: 0, V: 1}}); got != 0 {
		t.Fatalf("re-insert accepted %d edges", got)
	}
}

func TestBatchInsertCycleEdges(t *testing.T) {
	c := New(3)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if c.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", c.NumEdges())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDeleteNonTree(t *testing.T) {
	for name, alg := range algs() {
		c := New(3, WithAlgorithm(alg))
		c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
		// One of the three is non-tree; delete it specifically by finding it.
		var nonTree graph.Edge
		for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}} {
			if r := c.recFor(e.Key()); !r.IsTree {
				nonTree = e
			}
		}
		if got := c.BatchDelete([]graph.Edge{nonTree}); got != 1 {
			t.Fatalf("%s: deleted %d", name, got)
		}
		if !c.Connected(0, 2) {
			t.Fatalf("%s: non-tree delete broke connectivity", name)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBatchDeleteWithReplacement(t *testing.T) {
	for name, alg := range algs() {
		c := New(4, WithAlgorithm(alg))
		c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
		c.BatchDelete([]graph.Edge{{U: 1, V: 2}})
		if !c.Connected(1, 2) {
			t.Fatalf("%s: replacement not found", name)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBatchDeleteDisconnects(t *testing.T) {
	for name, alg := range algs() {
		c := New(6, WithAlgorithm(alg))
		c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}})
		c.BatchDelete([]graph.Edge{{U: 1, V: 2}, {U: 4, V: 5}})
		if c.Connected(1, 2) || c.Connected(4, 5) || !c.Connected(0, 1) {
			t.Fatalf("%s: wrong connectivity after disconnecting batch", name)
		}
		if c.NumComponents() != 4 {
			t.Fatalf("%s: NumComponents = %d, want 4", name, c.NumComponents())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDeleteAbsentAndDup(t *testing.T) {
	c := New(4)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}})
	if got := c.BatchDelete([]graph.Edge{{U: 2, V: 3}}); got != 0 {
		t.Fatalf("deleted %d absent edges", got)
	}
	if got := c.BatchDelete([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}}); got != 1 {
		t.Fatalf("dup delete counted %d", got)
	}
}

func TestShatterStar(t *testing.T) {
	// Deleting all spokes of a star in one batch shatters one component
	// into n singletons — the many-pieces case the paper highlights.
	for name, alg := range algs() {
		n := 64
		c := New(n, WithAlgorithm(alg))
		var spokes []graph.Edge
		for v := 1; v < n; v++ {
			spokes = append(spokes, graph.Edge{U: 0, V: graph.Vertex(v)})
		}
		c.BatchInsert(spokes)
		if c.NumComponents() != 1 {
			t.Fatalf("%s: star not connected", name)
		}
		c.BatchDelete(spokes)
		if c.NumComponents() != n {
			t.Fatalf("%s: components = %d, want %d", name, c.NumComponents(), n)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestShatterStarWithBackbone(t *testing.T) {
	// Star plus a path through all leaves: deleting the spokes must fall
	// back to the path edges as replacements, keeping everything connected.
	for name, alg := range algs() {
		n := 48
		c := New(n, WithAlgorithm(alg))
		var spokes, path []graph.Edge
		for v := 1; v < n; v++ {
			spokes = append(spokes, graph.Edge{U: 0, V: graph.Vertex(v)})
		}
		for v := 2; v < n; v++ {
			path = append(path, graph.Edge{U: graph.Vertex(v - 1), V: graph.Vertex(v)})
		}
		c.BatchInsert(spokes)
		c.BatchInsert(path)
		c.BatchDelete(spokes[1:]) // keep spoke 0-1 so vertex 0 stays attached
		if c.NumComponents() != 1 {
			t.Fatalf("%s: components = %d, want 1", name, c.NumComponents())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestInsertDeleteSameBatchTwice(t *testing.T) {
	for name, alg := range algs() {
		c := New(10, WithAlgorithm(alg))
		batch := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}}
		for round := 0; round < 5; round++ {
			if got := c.BatchInsert(batch); got != len(batch) {
				t.Fatalf("%s round %d: inserted %d", name, round, got)
			}
			if got := c.BatchDelete(batch); got != len(batch) {
				t.Fatalf("%s round %d: deleted %d", name, round, got)
			}
			if c.NumEdges() != 0 || c.NumComponents() != 10 {
				t.Fatalf("%s round %d: residue", name, round)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRandomBatchesAgainstOracle(t *testing.T) {
	for name, alg := range algs() {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed))
			n := 48
			c := New(n, WithAlgorithm(alg))
			live := map[uint64]graph.Edge{}
			for step := 0; step < 40; step++ {
				if rng.Intn(3) != 0 || len(live) == 0 {
					// Insert a batch.
					k := 1 + rng.Intn(20)
					var batch []graph.Edge
					for j := 0; j < k; j++ {
						u := graph.Vertex(rng.Intn(n))
						v := graph.Vertex(rng.Intn(n))
						if u == v {
							continue
						}
						e := graph.Edge{U: u, V: v}.Canon()
						batch = append(batch, e)
					}
					c.BatchInsert(batch)
					for _, e := range batch {
						live[e.Key()] = e
					}
				} else {
					// Delete a random subset of live edges.
					var batch []graph.Edge
					for _, e := range live {
						if rng.Intn(3) == 0 {
							batch = append(batch, e)
						}
					}
					c.BatchDelete(batch)
					for _, e := range batch {
						delete(live, e.Key())
					}
				}
				oracleCheck(t, c, live, name)
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("%s seed %d step %d: %v", name, seed, step, err)
				}
			}
		}
	}
}

func TestLargeRandomChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for name, alg := range algs() {
		rng := rand.New(rand.NewSource(7))
		n := 256
		c := New(n, WithAlgorithm(alg))
		live := map[uint64]graph.Edge{}
		for step := 0; step < 30; step++ {
			k := 1 + rng.Intn(120)
			var ins []graph.Edge
			for j := 0; j < k; j++ {
				u := graph.Vertex(rng.Intn(n))
				v := graph.Vertex(rng.Intn(n))
				if u != v {
					ins = append(ins, graph.Edge{U: u, V: v}.Canon())
				}
			}
			c.BatchInsert(ins)
			for _, e := range ins {
				live[e.Key()] = e
			}
			var del []graph.Edge
			for _, e := range live {
				if rng.Intn(4) == 0 {
					del = append(del, e)
				}
			}
			c.BatchDelete(del)
			for _, e := range del {
				delete(live, e.Key())
			}
			// Full oracle comparison every few steps.
			if step%5 == 0 {
				uf := unionfind.New(n)
				for _, e := range live {
					uf.Union(e.U, e.V)
				}
				for q := 0; q < 500; q++ {
					a := graph.Vertex(rng.Intn(n))
					b := graph.Vertex(rng.Intn(n))
					if c.Connected(a, b) != uf.Connected(int32(a), int32(b)) {
						t.Fatalf("%s step %d: Connected(%d,%d) wrong", name, step, a, b)
					}
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("%s step %d: %v", name, step, err)
				}
			}
		}
	}
}

func TestComponentsLabelling(t *testing.T) {
	c := New(6)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	lbl := c.Components()
	if lbl[0] != lbl[1] || lbl[2] != lbl[3] {
		t.Fatal("components mislabelled")
	}
	if lbl[0] == lbl[2] || lbl[4] == lbl[5] || lbl[4] == lbl[0] {
		t.Fatal("distinct components share labels")
	}
	if c.NumComponents() != 4 {
		t.Fatalf("NumComponents = %d", c.NumComponents())
	}
	if c.ComponentOf(0) != c.ComponentOf(1) {
		t.Fatal("ComponentOf disagrees within component")
	}
	if c.ComponentOf(4) == c.ComponentOf(5) {
		t.Fatal("ComponentOf collides across singletons")
	}
}

func TestStatsProgression(t *testing.T) {
	c := New(16)
	c.BatchInsert([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	c.BatchDelete([]graph.Edge{{U: 0, V: 1}})
	s := c.Stats()
	if s.Inserts != 3 || s.Deletes != 1 || s.InsertBatches != 1 || s.DeleteBatches != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Replaced != 1 {
		t.Fatalf("expected a replacement, stats = %+v", s)
	}
}

func TestSingleVertexAndTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		c := New(n)
		if n >= 2 {
			c.BatchInsert([]graph.Edge{{U: 0, V: 1}})
			if !c.Connected(0, 1) {
				t.Fatalf("n=%d: not connected", n)
			}
			c.BatchDelete([]graph.Edge{{U: 0, V: 1}})
			if c.Connected(0, 1) {
				t.Fatalf("n=%d: still connected", n)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
