package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestRegressionMergedPiecePush reproduces (seed 2, n=48, Algorithm 4) the
// history that once pushed an edge spanning a replacement-merge boundary
// below the level of its connecting tree edge, breaking the level invariant.
// The fix gates every non-tree push on target-level connectivity; this test
// locks the behaviour in with per-step invariant checks.
func TestRegressionMergedPiecePush(t *testing.T) {
	for name, alg := range algs() {
		rng := rand.New(rand.NewSource(2))
		n := 48
		c := New(n, WithAlgorithm(alg))
		live := map[uint64]graph.Edge{}
		for step := 0; step < 40; step++ {
			var batch []graph.Edge
			if rng.Intn(3) != 0 || len(live) == 0 {
				k := 1 + rng.Intn(20)
				for j := 0; j < k; j++ {
					u := graph.Vertex(rng.Intn(n))
					v := graph.Vertex(rng.Intn(n))
					if u == v {
						continue
					}
					batch = append(batch, graph.Edge{U: u, V: v}.Canon())
				}
				c.BatchInsert(batch)
				for _, e := range batch {
					live[e.Key()] = e
				}
			} else {
				for _, e := range live {
					if rng.Intn(3) == 0 {
						batch = append(batch, e)
					}
				}
				c.BatchDelete(batch)
				for _, e := range batch {
					delete(live, e.Key())
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
		}
	}
}
