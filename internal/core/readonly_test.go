package core

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/unionfind"
)

// TestConnConcurrentReadOnlyQueries enforces the structure-wide read-only
// query contract under -race: after a quiesced mix of inserts and deletes,
// concurrent goroutines run every query entry point and check answers
// against a union-find oracle. A write anywhere on a query path — in core,
// ett, treap, adjlist or pdict lookups — would be flagged.
func TestConnConcurrentReadOnlyQueries(t *testing.T) {
	const n = 4096
	c := New(n)
	es := graphgen.RandomGraph(n, 2*n, 7)
	c.BatchInsert(es)
	c.BatchDelete(es[:n/2])
	live := es[n/2:]

	// The union-find oracle path-compresses on Find, so flatten it into an
	// immutable representative array before the concurrent phase.
	uf := unionfind.New(n)
	edgeSet := make(map[uint64]bool)
	for _, e := range live {
		uf.Union(e.U, e.V)
		edgeSet[e.Key()] = true
	}
	rep := make([]int32, n)
	for u := 0; u < n; u++ {
		rep[u] = uf.Find(int32(u))
	}
	oracle := func(u, v int) bool { return rep[u] == rep[v] }

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for u := g; u < n; u += goroutines {
				v := (u*31 + 17) % n
				if got, want := c.Connected(graph.Vertex(u), graph.Vertex(v)), oracle(u, v); got != want {
					t.Errorf("Connected(%d,%d) = %v, want %v", u, v, got, want)
					return
				}
				idU, idV := c.ComponentID(graph.Vertex(u)), c.ComponentID(graph.Vertex(v))
				if (idU == idV) != oracle(u, v) {
					t.Errorf("ComponentID(%d)==ComponentID(%d) disagrees with oracle", u, v)
					return
				}
				if c.ComponentSize(graph.Vertex(u)) != int64(len(c.ComponentVertices(graph.Vertex(u)))) {
					t.Errorf("ComponentSize(%d) != len(ComponentVertices)", u)
					return
				}
			}
			// Batch query slice, distinct per goroutine.
			qs := make([]graph.Edge, 64)
			for i := range qs {
				qs[i] = graph.Edge{U: graph.Vertex((g*64 + i) % n), V: graph.Vertex((g*64 + i*i) % n)}
			}
			for i, ok := range c.BatchConnected(qs) {
				if want := oracle(int(qs[i].U), int(qs[i].V)); ok != want {
					t.Errorf("BatchConnected[%d] = %v, want %v", i, ok, want)
					return
				}
			}
			lbl := make([]int32, n)
			c.ComponentLabels(lbl)
			for u := 0; u < n; u++ {
				if lbl[u] > int32(u) {
					t.Errorf("label %d of vertex %d exceeds min-vertex bound", lbl[u], u)
					return
				}
				if lbl[u] != lbl[lbl[u]] {
					t.Errorf("label of %d is %d but label of %d is %d (not canonical)",
						u, lbl[u], lbl[u], lbl[lbl[u]])
					return
				}
				v := (u * 131) % n
				if (lbl[u] == lbl[v]) != oracle(u, v) {
					t.Errorf("ComponentLabels disagrees with oracle on (%d,%d)", u, v)
					return
				}
			}
			for _, e := range live[:64] {
				if !c.HasEdge(e.U, e.V) {
					t.Errorf("HasEdge(%d,%d) = false for live edge", e.U, e.V)
					return
				}
			}
			if c.NumEdges() != len(edgeSet) {
				t.Errorf("NumEdges = %d, want %d", c.NumEdges(), len(edgeSet))
			}
		}(g)
	}
	wg.Wait()
}

// TestComponentLabelsCanonical pins the min-vertex labelling against
// Components' dense labelling on random graphs.
func TestComponentLabelsCanonical(t *testing.T) {
	for _, n := range []int{1, 5, 300} {
		c := New(n)
		if n > 1 {
			c.BatchInsert(graphgen.RandomGraph(n, n/2, int64(n)))
		}
		dense := c.Components()
		lbl := make([]int32, n)
		c.ComponentLabels(lbl)
		// Same partition.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v += 7 {
				if (dense[u] == dense[v]) != (lbl[u] == lbl[v]) {
					t.Fatalf("n=%d: partitions differ at (%d,%d)", n, u, v)
				}
			}
			if int(lbl[u]) > u {
				t.Fatalf("n=%d: lbl[%d] = %d is not the component minimum", n, u, lbl[u])
			}
		}
	}
}
