// Package pubsub is the connectivity-event hub: it turns the snapshot
// differ's labelling transitions (snapshot.Diff — exactly the epochs that
// changed the partition) into a stream of typed events — component merges,
// component splits, and watched-pair connected/disconnected flips — and
// fans them out to subscribers.
//
// # Delivery model
//
// Feed runs on the engine dispatcher (it is the engine's diff-subscriber
// callback), so it must never block: each subscriber owns a buffered
// channel, and an event that does not fit is dropped, counted, and replaced
// by a single KindGap event delivered as soon as the buffer drains —
// modeled on internal/repl's Hub, whose lagging followers are likewise
// never allowed to stall the write pipeline. A consumer that sees KindGap
// knows its view has a hole and must resynchronize from the read tier
// before trusting incremental state again.
//
// # Ordering
//
// Events of one transition are delivered contiguously and in deterministic
// order (merges by surviving label, then splits by splitting label, then
// pair flips in the subscriber's watch order), and transitions are
// delivered in epoch order — Feed is dispatcher-only, so transitions are
// naturally serialized. Events carry the publish epoch of the labelling
// after the transition and the epoch's durable WAL seq (zero without
// durability, and on sharded namespaces where the composed labelling has
// no single WAL position).
package pubsub

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/snapshot"
)

// Kind classifies one connectivity event.
type Kind uint8

const (
	// KindHello opens a remote event stream: it carries the epoch (and,
	// when meaningful, seq) of the labelling the stream's first transition
	// will be diffed against, so a subscriber can take a baseline read and
	// know exactly where incremental updates begin. The hub itself never
	// emits it; the server does, once, at subscribe time.
	KindHello Kind = iota
	// KindMerge: components Others merged into the component now labelled
	// Label (the minimum-vertex label of the union).
	KindMerge
	// KindSplit: the component labelled Label split; Others are the labels
	// of the resulting fragments (including Label itself when the fragment
	// containing the minimum vertex persists).
	KindSplit
	// KindPairConnected: the watched pair (U, V) became connected.
	KindPairConnected
	// KindPairDisconnected: the watched pair (U, V) became disconnected.
	KindPairDisconnected
	// KindGap: the subscriber's buffer overflowed and at least one event
	// was dropped; incremental state must be resynchronized.
	KindGap
)

// String names the kind for logs and CLI output.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindMerge:
		return "merge"
	case KindSplit:
		return "split"
	case KindPairConnected:
		return "connected"
	case KindPairDisconnected:
		return "disconnected"
	case KindGap:
		return "gap"
	default:
		return "unknown"
	}
}

// Event is one connectivity event. Label/Others are component labels
// (minimum vertex ids) for merge/split; U/V are the watched endpoints for
// pair events. Others is shared across subscribers and must not be mutated.
type Event struct {
	Kind   Kind
	Epoch  uint64 // publish counter of the labelling after the transition
	Seq    uint64 // durable WAL seq of the transition's epoch; 0 if unknown
	Label  int32
	U, V   int32
	Others []int32
}

// Pair is a watched vertex pair for connected/disconnected subscriptions.
type Pair struct{ U, V int32 }

// Derive decomposes one labelling transition into its component events.
// Labels are canonical minimum-vertex ids, which makes the decomposition
// exact with no extra state:
//
//   - a current label m absorbed an old component a iff some changed vertex
//     moved a→m; m itself is an origin too when it was already a label
//     before (prev[m] == m — vertex m, the minimum, always carries its own
//     component's label). Two or more origins ⇒ merge.
//   - an old label a fragmented iff its changed vertices now carry two or
//     more labels, or some moved away while the fragment holding vertex a
//     kept the label (cur[a] == a — possible with zero changed vertices in
//     that fragment, so survival is tested on the labelling, never on the
//     changed list). Two or more destinations ⇒ split.
//
// A same-epoch split-then-merge decomposes into one split and one merge.
// Events are ordered merges-then-splits, each ascending by label, so equal
// transitions derive equal streams (the differential oracle relies on it).
func Derive(d *snapshot.Diff, seq uint64) []Event {
	if d == nil || len(d.Changed) == 0 {
		return nil
	}
	epoch := d.Cur.Epoch()
	origins := make(map[int32]map[int32]struct{})
	dests := make(map[int32]map[int32]struct{})
	add := func(m map[int32]map[int32]struct{}, k, v int32) {
		s := m[k]
		if s == nil {
			s = make(map[int32]struct{}, 2)
			m[k] = s
		}
		s[v] = struct{}{}
	}
	for _, v := range d.Changed {
		old, now := d.Prev.Label(v), d.Cur.Label(v)
		add(origins, now, old)
		add(dests, old, now)
	}
	var out []Event
	for m, o := range origins {
		if d.Prev.Label(m) == m {
			o[m] = struct{}{}
		}
		if len(o) < 2 {
			continue
		}
		others := make([]int32, 0, len(o)-1)
		for a := range o {
			if a != m {
				others = append(others, a)
			}
		}
		sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
		out = append(out, Event{Kind: KindMerge, Epoch: epoch, Seq: seq, Label: m, Others: others})
	}
	for a, ds := range dests {
		if d.Cur.Label(a) == a {
			ds[a] = struct{}{}
		}
		if len(ds) < 2 {
			continue
		}
		frags := make([]int32, 0, len(ds))
		for b := range ds {
			frags = append(frags, b)
		}
		sort.Slice(frags, func(i, j int) bool { return frags[i] < frags[j] })
		out = append(out, Event{Kind: KindSplit, Epoch: epoch, Seq: seq, Label: a, Others: frags})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// SubscriberBuffer is the per-subscriber channel capacity. A variable so
// tests can shrink it to force overflow.
var SubscriberBuffer = 256

// Sub is one subscription. Receive events from C; Done is closed when the
// subscription ends (Cancel, or hub Close). The channel is never closed —
// select on Done to terminate.
type Sub struct {
	ch    chan Event
	done  chan struct{}
	pairs []Pair
	comps bool
	// gapped is set (under the hub lock) when a delivery was dropped; the
	// next Feed retries a single KindGap event before anything newer.
	gapped bool
}

// C returns the event channel.
func (s *Sub) C() <-chan Event { return s.ch }

// Done is closed when the subscription is cancelled or the hub closes.
func (s *Sub) Done() <-chan struct{} { return s.done }

// Hub fans labelling transitions out to subscribers as events.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Sub]struct{}
	closed bool

	delivered atomic.Int64
	dropped   atomic.Int64
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{subs: make(map[*Sub]struct{})} }

// Subscribe registers a subscriber. comps selects component merge/split
// events; pairs lists vertex pairs whose connected/disconnected flips to
// watch (the slice is retained; callers must not mutate it). Returns nil
// after Close.
func (h *Hub) Subscribe(comps bool, pairs []Pair) *Sub {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &Sub{
		ch:    make(chan Event, SubscriberBuffer),
		done:  make(chan struct{}),
		pairs: pairs,
		comps: comps,
	}
	h.subs[s] = struct{}{}
	return s
}

// Cancel removes the subscription and closes its Done channel. Idempotent.
func (h *Hub) Cancel(s *Sub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.done)
	}
}

// Feed incorporates one labelling transition: derives its component events
// once, evaluates each subscriber's watched pairs against the before/after
// labellings, and delivers without ever blocking — an event that does not
// fit a subscriber's buffer is dropped and counted, and the subscriber is
// owed a single KindGap. Runs on the engine dispatcher via the diff
// subscription; also safe from the sharded composer's serialized callback.
//
//conn:dispatcher-only
func (h *Hub) Feed(seq uint64, d *snapshot.Diff) {
	if d == nil || len(d.Changed) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return
	}
	var comp []Event
	derived := false
	epoch := d.Cur.Epoch()
	for s := range h.subs {
		if s.gapped {
			// One gap marker stands for any number of dropped events; it
			// must precede everything newer or the hole would be invisible.
			select {
			case s.ch <- Event{Kind: KindGap, Epoch: epoch, Seq: seq}:
				s.gapped = false
				h.delivered.Add(1)
			default:
				h.dropped.Add(int64(h.pending(s, d, &comp, &derived, seq)))
				continue
			}
		}
		if s.comps {
			if !derived {
				comp = Derive(d, seq)
				derived = true
			}
			for _, ev := range comp {
				h.send(s, ev)
			}
		}
		for _, p := range s.pairs {
			before := d.Prev.Connected(p.U, p.V)
			after := d.Cur.Connected(p.U, p.V)
			if before == after {
				continue
			}
			k := KindPairDisconnected
			if after {
				k = KindPairConnected
			}
			h.send(s, Event{Kind: k, Epoch: epoch, Seq: seq, U: p.U, V: p.V})
		}
	}
}

// pending counts the events this transition owes subscriber s — used to
// account drops when even the gap marker does not fit.
func (h *Hub) pending(s *Sub, d *snapshot.Diff, comp *[]Event, derived *bool, seq uint64) int {
	n := 0
	if s.comps {
		if !*derived {
			*comp = Derive(d, seq)
			*derived = true
		}
		n += len(*comp)
	}
	for _, p := range s.pairs {
		if d.Prev.Connected(p.U, p.V) != d.Cur.Connected(p.U, p.V) {
			n++
		}
	}
	return n
}

// send delivers one event to one subscriber, never blocking. Caller holds
// h.mu, which is what makes drop-marking race-free against Cancel.
func (h *Hub) send(s *Sub, ev Event) {
	select {
	case s.ch <- ev:
		h.delivered.Add(1)
	default:
		s.gapped = true
		h.dropped.Add(1)
	}
}

// Stats reports the live subscriber count and cumulative delivered/dropped
// event counters (conncli stats surfaces these next to the repl block).
func (h *Hub) Stats() (subscribers int, delivered, dropped int64) {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return n, h.delivered.Load(), h.dropped.Load()
}

// Close cancels every subscription and rejects future ones. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.done)
	}
}
