package pubsub

import (
	"reflect"
	"testing"

	"repro/internal/snapshot"
)

// mkDiff builds a labelling transition from two explicit labellings,
// computing Changed the way the differ defines it: every vertex whose label
// differs, exactly once.
func mkDiff(t *testing.T, prev, cur []int32) *snapshot.Diff {
	t.Helper()
	if len(prev) != len(cur) {
		t.Fatalf("labelling length mismatch: %d vs %d", len(prev), len(cur))
	}
	var changed []int32
	for v := range cur {
		if prev[v] != cur[v] {
			changed = append(changed, int32(v))
		}
	}
	return &snapshot.Diff{
		Prev:    snapshot.NewLabels(prev, 1),
		Cur:     snapshot.NewLabels(cur, 2),
		Changed: changed,
	}
}

func eventsEqual(t *testing.T, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Label != w.Label || g.U != w.U || g.V != w.V ||
			!reflect.DeepEqual(g.Others, w.Others) {
			t.Fatalf("event %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestDeriveMerge(t *testing.T) {
	// {0,1} and {2,3} and {4} merge into one component labelled 0.
	got := Derive(mkDiff(t,
		[]int32{0, 0, 2, 2, 4},
		[]int32{0, 0, 0, 0, 0}), 7)
	eventsEqual(t, got, []Event{
		{Kind: KindMerge, Label: 0, Others: []int32{2, 4}},
	})
	for _, ev := range got {
		if ev.Epoch != 2 || ev.Seq != 7 {
			t.Fatalf("event carries epoch=%d seq=%d, want 2/7", ev.Epoch, ev.Seq)
		}
	}
}

func TestDeriveSplitBothHalvesListed(t *testing.T) {
	// {0,1,2,3} splits into {0,1} and {2,3}: Others lists every fragment,
	// the surviving minimum-label half included.
	got := Derive(mkDiff(t,
		[]int32{0, 0, 0, 0},
		[]int32{0, 0, 2, 2}), 0)
	eventsEqual(t, got, []Event{
		{Kind: KindSplit, Label: 0, Others: []int32{0, 2}},
	})
}

func TestDeriveSplitSurvivorHasNoChangedVertices(t *testing.T) {
	// The differ edge case: {0,1,2} drops vertex 2 into its own component.
	// The half keeping the old min-vertex label has ZERO changed vertices —
	// survival must be detected on the labelling (Cur.Label(0) == 0), never
	// on the changed list, or the surviving fragment would go missing from
	// Others and the split would look like a wholesale relabel.
	d := mkDiff(t,
		[]int32{0, 0, 0},
		[]int32{0, 0, 2})
	if len(d.Changed) != 1 || d.Changed[0] != 2 {
		t.Fatalf("precondition: changed = %v, want [2]", d.Changed)
	}
	eventsEqual(t, Derive(d, 0), []Event{
		{Kind: KindSplit, Label: 0, Others: []int32{0, 2}},
	})
}

func TestDeriveVanishingLabelSplit(t *testing.T) {
	// {0,1} splits completely away from vertex 0's old label? Impossible for
	// min-vertex labels — but a relabel where the old label does NOT survive
	// happens when the min vertex's fragment merges elsewhere in the same
	// epoch. Component {2,3} splits AND {2} merges into {0}: old label 2's
	// destinations are {0, 3} and Cur.Label(2) != 2, so Others excludes 2.
	got := Derive(mkDiff(t,
		[]int32{0, 0, 2, 2},
		[]int32{0, 0, 0, 3}), 0)
	eventsEqual(t, got, []Event{
		{Kind: KindMerge, Label: 0, Others: []int32{2}},
		{Kind: KindSplit, Label: 2, Others: []int32{0, 3}},
	})
}

func TestDeriveMergesBeforeSplitsAscending(t *testing.T) {
	// Two disjoint merges and two disjoint splits in one epoch: delivery is
	// merges then splits, each ascending by label, so equal transitions
	// always derive byte-equal streams.
	got := Derive(mkDiff(t,
		[]int32{0, 1, 0, 1, 4, 4, 6, 6, 8, 9},
		[]int32{0, 0, 0, 0, 4, 5, 6, 7, 8, 8}), 0)
	eventsEqual(t, got, []Event{
		{Kind: KindMerge, Label: 0, Others: []int32{1}},
		{Kind: KindMerge, Label: 8, Others: []int32{9}},
		{Kind: KindSplit, Label: 4, Others: []int32{4, 5}},
		{Kind: KindSplit, Label: 6, Others: []int32{6, 7}},
	})
}

func TestDeriveEmpty(t *testing.T) {
	if got := Derive(nil, 0); got != nil {
		t.Fatalf("Derive(nil) = %v", got)
	}
	d := mkDiff(t, []int32{0, 0}, []int32{0, 0})
	if got := Derive(d, 0); got != nil {
		t.Fatalf("Derive(no change) = %v", got)
	}
}

func feed(h *Hub, t *testing.T, prev, cur []int32) {
	t.Helper()
	h.Feed(0, mkDiff(t, prev, cur))
}

func TestHubPairAndComponentDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	comp := h.Subscribe(true, nil)
	pair := h.Subscribe(false, []Pair{{U: 1, V: 3}, {U: 0, V: 1}})

	feed(h, t, []int32{0, 0, 2, 2}, []int32{0, 0, 0, 0}) // merge: 1-3 connect

	ev := <-comp.C()
	if ev.Kind != KindMerge || ev.Label != 0 {
		t.Fatalf("component subscriber got %+v", ev)
	}
	ev = <-pair.C()
	if ev.Kind != KindPairConnected || ev.U != 1 || ev.V != 3 {
		t.Fatalf("pair subscriber got %+v", ev)
	}
	select {
	case ev = <-pair.C():
		t.Fatalf("pair 0-1 did not flip but got %+v", ev)
	default:
	}

	feed(h, t, []int32{0, 0, 0, 0}, []int32{0, 0, 2, 2}) // split: 1-3 disconnect
	<-comp.C()
	ev = <-pair.C()
	if ev.Kind != KindPairDisconnected || ev.U != 1 || ev.V != 3 {
		t.Fatalf("pair subscriber got %+v after split", ev)
	}

	subs, delivered, dropped := h.Stats()
	if subs != 2 || delivered != 4 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 2/4/0", subs, delivered, dropped)
	}
}

func TestHubOverflowDropsAndGaps(t *testing.T) {
	old := SubscriberBuffer
	SubscriberBuffer = 2
	defer func() { SubscriberBuffer = old }()

	h := NewHub()
	defer h.Close()
	s := h.Subscribe(true, nil)

	// Three transitions into a 2-slot buffer nobody reads: the first two
	// fill it, the third is dropped and owed a single gap marker.
	feed(h, t, []int32{0, 1}, []int32{0, 0})
	feed(h, t, []int32{0, 0}, []int32{0, 1})
	feed(h, t, []int32{0, 1}, []int32{0, 0})

	if _, _, dropped := h.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if ev := <-s.C(); ev.Kind != KindMerge {
		t.Fatalf("first event %+v, want the buffered merge", ev)
	}
	if ev := <-s.C(); ev.Kind != KindSplit {
		t.Fatalf("second event %+v, want the buffered split", ev)
	}
	// The next transition must deliver the gap BEFORE its own events.
	feed(h, t, []int32{0, 0}, []int32{0, 1})
	if ev := <-s.C(); ev.Kind != KindGap {
		t.Fatalf("after overflow got %+v, want gap first", ev)
	}
	if ev := <-s.C(); ev.Kind != KindSplit {
		t.Fatalf("after gap got %+v, want the split", ev)
	}
}

func TestHubCancelAndClose(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(true, nil)
	b := h.Subscribe(true, nil)
	h.Cancel(a)
	select {
	case <-a.Done():
	default:
		t.Fatal("Cancel did not close Done")
	}
	h.Cancel(a) // idempotent
	feed(h, t, []int32{0, 1}, []int32{0, 0})
	if subs, _, _ := h.Stats(); subs != 1 {
		t.Fatalf("subscribers = %d after cancel", subs)
	}
	h.Close()
	select {
	case <-b.Done():
	default:
		t.Fatal("Close did not close Done")
	}
	if h.Subscribe(true, nil) != nil {
		t.Fatal("Subscribe after Close must return nil")
	}
	h.Close() // idempotent
}
