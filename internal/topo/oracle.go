package topo

import (
	"sync"

	conn "repro"
)

// oracle is the acked-operation log for one namespace: every batch the
// workload got acknowledged, in acknowledgement order per writer. Writers
// own disjoint vertex ranges, so their batches commute and one shared
// append-only log replays to the exact final state regardless of how the
// writers' acknowledgements interleaved.
type oracle struct {
	mu      sync.Mutex
	batches [][]conn.Op
}

func (o *oracle) append(ops []conn.Op) {
	cp := make([]conn.Op, len(ops))
	copy(cp, ops)
	o.mu.Lock()
	o.batches = append(o.batches, cp)
	o.mu.Unlock()
}

func (o *oracle) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.batches)
}

// edgeKey packs an undirected edge into one comparable value.
func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// finalEdges replays the acked batches into the surviving edge set. Within
// a batch the epoch semantics apply: inserts first, then deletes — exactly
// how the engine commits an atomic group.
func (o *oracle) finalEdges() map[uint64][2]int32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	edges := make(map[uint64][2]int32)
	for _, batch := range o.batches {
		for _, op := range batch {
			if op.Kind == conn.OpInsert && op.U != op.V {
				edges[edgeKey(op.U, op.V)] = [2]int32{op.U, op.V}
			}
		}
		for _, op := range batch {
			if op.Kind == conn.OpDelete {
				delete(edges, edgeKey(op.U, op.V))
			}
		}
	}
	return edges
}

// labels computes the connectivity labelling of the replayed edge set with
// a plain union-find — the ground truth every server state is swept
// against.
func (o *oracle) labels(n int) []int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range o.finalEdges() {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
		}
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = find(int32(i))
	}
	return out
}

// allPairs enumerates every unordered vertex pair of an n-universe.
func allPairs(n int) []conn.Edge {
	out := make([]conn.Edge, 0, n*(n-1)/2)
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			out = append(out, conn.Edge{U: u, V: v})
		}
	}
	return out
}
