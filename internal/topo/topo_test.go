package topo

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestMain doubles this test binary as the server child: the driver
// re-executes os.Args[0] with the role environment set, and those
// incarnations must become servers, not test runs.
func TestMain(m *testing.M) {
	if IsChild() {
		os.Exit(ChildMain())
	}
	os.Exit(m.Run())
}

// TestChaosTopology is the acceptance run from the issue: a seeded 3-shard
// × 2-replica topology under the default fault schedule — SIGKILLs
// mid-epoch, torn WAL tails on restart, dropped replication streams,
// connection resets — must end with all four invariants intact.
func TestChaosTopology(t *testing.T) {
	dur := 4 * time.Second
	if testing.Short() {
		dur = 1500 * time.Millisecond
	}
	err := Run(Config{
		Seed:     1,
		Shards:   3,
		Replicas: 2,
		Duration: dur,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChildEnvScrubs: a child's environment must carry exactly its own
// role and chaos settings — stale CONNCHAOS_* values inherited from the
// driver (itself possibly a child once) must not leak through, or a
// "clean" incarnation would respawn armed.
func TestChildEnvScrubs(t *testing.T) {
	t.Setenv(envRole, "stale-role")
	t.Setenv("CONNCHAOS_SCHED", "stale-sched")
	env := childEnv(rolePrimary, "addr:1", "/data", "", 7, "",
		durabilityKnobs{walCodec: "v2", groupSyncK: 8, groupWait: 2 * time.Millisecond, ckptEvery: 4})
	got := map[string]string{}
	for _, kv := range env {
		if k, v, ok := strings.Cut(kv, "="); ok && strings.HasPrefix(k, "CONNCHAOS_") {
			if _, dup := got[k]; dup {
				t.Fatalf("duplicate %s in child env", k)
			}
			got[k] = v
		}
	}
	if got[envRole] != rolePrimary || got[envData] != "/data" {
		t.Fatalf("role env wrong: %v", got)
	}
	if got[envWALCodec] != "v2" || got[envGroupSync] != "8" ||
		got[envGroupWait] != "2ms" || got[envCkptEvery] != "4" {
		t.Fatalf("durability knobs not forwarded: %v", got)
	}
	if _, ok := got["CONNCHAOS_SCHED"]; ok {
		t.Fatal("stale schedule leaked into a clean child's environment")
	}
}

// TestDefaultSchedulesParse pins the built-in schedules to the grammar —
// a child panics on a malformed schedule, which would take down every run.
func TestDefaultSchedulesParse(t *testing.T) {
	for _, sched := range []string{defaultPrimarySchedule, defaultReplicaSchedule} {
		if _, err := chaos.NewPlan(0, sched); err != nil {
			t.Fatalf("built-in schedule rejected: %v\n%s", err, sched)
		}
	}
}
