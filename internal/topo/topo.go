// Package topo is the whole-topology chaos harness: it stands up a real
// sharded durable primary plus read replicas as child processes of the
// current binary, drives randomized workloads through the public client,
// injects a seeded fault schedule (SIGKILLs mid-epoch, torn WAL tails on
// restart, dropped replication streams, reset connections, failed
// checkpoint truncations), and then proves four invariants against
// union-find oracles replayed from acknowledged operations only:
//
//  1. Durability — every acknowledged write survives crash-restore.
//  2. Connectivity — full pairwise connectivity equals the oracle replay.
//  3. Read-your-writes — replica-routed reads never regress behind the
//     client's observed seq fence (a replica claiming a seq ahead of the
//     state it serves surfaces as a probe timeout).
//  4. Shard agreement — the sharded namespace's composed answers equal an
//     unsharded oracle over the same acked operations.
//
// Everything random flows from one seed: the workload, the fault schedule
// (via internal/chaos, whose per-site fire pattern is a pure function of
// seed, site, and hit index), and the kill plan. Re-running with the same
// seed replays the same schedule; the OS-level interleaving of processes is
// of course not reproducible, which is exactly the point — the invariants
// must hold on every interleaving the schedule provokes.
package topo

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/chaos"
)

// Namespaces the harness drives. flat is durable, unsharded and replicated;
// grid is durable and hash-partitioned (the replica manager skips sharded
// namespaces, so grid is verified on the primary only).
const (
	nsFlat = "flat"
	nsGrid = "grid"
)

// universe is the vertex count of both namespaces. Small enough that the
// final sweep checks every one of the n(n-1)/2 pairs; the top two vertices
// are reserved for the read-your-writes probe.
const universe = 48

// defaultPrimarySchedule is the fault mix armed in every primary
// incarnation (planned kills and chaos-induced panics alike respawn with
// it). WAL append failures panic the engine — fail-stop — so the pre-fsync
// torn write and the post-fsync ack loss both crash the primary for real,
// and the torn-tail site corrupts some of the subsequent restores.
const defaultPrimarySchedule = chaos.SiteServerConnRead + ":drop@p=0.008;" +
	chaos.SiteServerConnWrite + ":drop@p=0.008;" +
	chaos.SiteServerAccept + ":delay=2ms@p=0.05;" +
	chaos.SiteReplStreamSend + ":delay=5ms@p=0.02;" +
	chaos.SiteReplStreamSend + ":drop@p=0.004;" +
	chaos.SiteReplSnapshotSend + ":drop@p=0.1,times=4;" +
	chaos.SiteEngineCheckpointReset + ":fail@nth=1;" +
	chaos.SiteWALAppendPostFsync + ":fail@nth=150;" +
	chaos.SiteWALAppendPreFsync + ":torn@after=60,p=0.05,times=1;" +
	chaos.SiteWALOpenTornTail + ":torn@p=0.4"

// defaultReplicaSchedule keeps replicas under mild connection chaos: the
// subscription stream drops and resubscribes, and served reads see resets.
const defaultReplicaSchedule = chaos.SiteReplFollowerConn + ":drop@p=0.01;" +
	chaos.SiteServerConnRead + ":drop@p=0.004;" +
	chaos.SiteServerConnWrite + ":drop@p=0.004"

// Config parameterizes one chaos run. The zero value of each field selects
// the default noted on it; Seed has no default — seed 0 is a real seed.
type Config struct {
	Seed     int64
	Shards   int           // grid namespace partition count (default 3)
	Replicas int           // read replica count (default 2; negative means none)
	Duration time.Duration // length of the fault-injection phase (default 4s)
	Schedule string        // overrides defaultPrimarySchedule when non-empty

	// Durability-pipeline knobs for the primary (zero values keep the
	// defaults: per-epoch fsync, v1 codec, full checkpoints). The harness
	// verifies the same invariants whatever the pipeline configuration —
	// acked means durable under group commit and compressed codecs too.
	WALCodec        string        // WAL record encoding ("v1", "v2")
	GroupSyncK      int           // > 1 enables group-commit fsync across K epochs
	GroupSyncWait   time.Duration // ack-latency bound for group commit
	CheckpointEvery int           // > 1 enables incremental delta checkpoints

	Logf     func(format string, args ...any)
	ChildLog io.Writer // child process stderr (default: discarded)
}

func (cfg Config) knobs() durabilityKnobs {
	return durabilityKnobs{
		walCodec:   cfg.WALCodec,
		groupSyncK: cfg.GroupSyncK,
		groupWait:  cfg.GroupSyncWait,
		ckptEvery:  cfg.CheckpointEvery,
	}
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	} else if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 4 * time.Second
	}
	return cfg
}

// repro is the exact command that replays this configuration.
func (cfg Config) repro() string {
	s := fmt.Sprintf("go run ./cmd/connchaos -seed %d -topology %dx%d -duration %s",
		cfg.Seed, cfg.Shards, cfg.Replicas, cfg.Duration)
	if cfg.Schedule != "" {
		s += fmt.Sprintf(" -schedule %q", cfg.Schedule)
	}
	if cfg.WALCodec != "" {
		s += " -wal-codec " + cfg.WALCodec
	}
	if cfg.GroupSyncK > 1 {
		s += fmt.Sprintf(" -group-sync %d", cfg.GroupSyncK)
	}
	if cfg.GroupSyncWait > 0 {
		s += fmt.Sprintf(" -group-wait %s", cfg.GroupSyncWait)
	}
	if cfg.CheckpointEvery > 1 {
		s += fmt.Sprintf(" -ckpt-every %d", cfg.CheckpointEvery)
	}
	return s
}

// driver is the shared state of one run: addresses, oracles, the stop
// signal, and the violation list every goroutine reports into.
type driver struct {
	cfg          Config
	n            int
	primaryAddr  string
	replicaAddrs []string
	flatOracle   *oracle
	gridOracle   *oracle
	stop         chan struct{}
	wg           sync.WaitGroup

	vmu        sync.Mutex
	violations []string
}

func (d *driver) violatef(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	d.vmu.Lock()
	d.violations = append(d.violations, msg)
	d.vmu.Unlock()
	if d.cfg.Logf != nil {
		d.cfg.Logf("connchaos: VIOLATION: %s", msg)
	}
}

func (d *driver) failed() []string {
	d.vmu.Lock()
	defer d.vmu.Unlock()
	return append([]string(nil), d.violations...)
}

// ------------------------------------------------------------- supervisor

// supervisor owns one child server process and respawns it whenever it
// dies — whether from a planned SIGKILL or a chaos-induced panic. The
// schedule field is re-read at every spawn, so swapping it (or clearing it)
// takes effect on the next incarnation.
type supervisor struct {
	name     string
	logf     func(format string, args ...any)
	childLog io.Writer

	mu       sync.Mutex
	cmd      *exec.Cmd
	stopped  bool
	schedule string
	seed     int64
	role     string
	addr     string
	data     string
	primary  string
	knobs    durabilityKnobs

	done chan struct{}
}

func (s *supervisor) start() {
	s.done = make(chan struct{})
	go s.loop()
}

func (s *supervisor) loop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		cmd := exec.Command(os.Args[0])
		cmd.Env = childEnv(s.role, s.addr, s.data, s.primary, s.seed, s.schedule, s.knobs)
		cmd.Stdout = s.childLog
		cmd.Stderr = s.childLog
		err := cmd.Start()
		if err == nil {
			s.cmd = cmd
		}
		s.mu.Unlock()
		if err != nil {
			s.logf("connchaos: %s: spawn: %v", s.name, err)
			return
		}
		_ = cmd.Wait()
		s.mu.Lock()
		s.cmd = nil
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			return
		}
		// Give the OS a beat to release the listen address before rebinding.
		time.Sleep(30 * time.Millisecond)
	}
}

// kill SIGKILLs the current incarnation; the loop respawns it. Nothing in
// the child gets to run shutdown code — that is the contract under test.
func (s *supervisor) kill() {
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}

// setSchedule changes the chaos schedule for future incarnations ("" runs
// them clean).
func (s *supervisor) setSchedule(sched string) {
	s.mu.Lock()
	s.schedule = sched
	s.mu.Unlock()
}

// stopAndWait kills the child for good and waits for the respawn loop to
// exit.
func (s *supervisor) stopAndWait() {
	s.mu.Lock()
	s.stopped = true
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
	<-s.done
}

// ------------------------------------------------------------- plumbing

func pickAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// waitPing blocks until the server at addr answers a ping — retrying
// through chaos-induced resets and restart windows.
func waitPing(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		c, err := client.Dial(addr, client.WithDialTimeout(500*time.Millisecond))
		if err == nil {
			err = c.Ping()
			c.Close()
			if err == nil {
				return nil
			}
		}
		last = err
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not serving after %v: %v", addr, timeout, last)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitApplied blocks until the replica at addr reports an applied seq of at
// least fence for ns. A freshly respawned replica takes a while to even
// rediscover the namespace; every error here just means "not yet".
func waitApplied(addr, ns string, fence uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastSeq uint64
	for {
		c, err := client.Dial(addr, client.WithDialTimeout(500*time.Millisecond))
		if err == nil {
			st, serr := c.Namespace(ns).Stats()
			c.Close()
			if serr == nil {
				lastSeq = st.AppliedSeq
				if lastSeq >= fence {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s: applied seq %d never reached fence %d within %v",
				addr, lastSeq, fence, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// ensure retries a namespace-create until it sticks. Under chaos the ack
// may be dropped after the create applied, so "already exists" is success.
func ensure(create func() error) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := create()
		if err == nil || errors.Is(err, client.ErrExists) {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ------------------------------------------------------------- final sweep

// wantBits evaluates the oracle labelling over a pair list.
func wantBits(labels []int32, pairs []conn.Edge) []bool {
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = labels[p.U] == labels[p.V]
	}
	return out
}

// sweep compares one server's connectivity answers against the oracle over
// every pair, chunked to keep frames bounded. read issues one chunk on the
// given tier. Mismatches become violations (capped, with a count).
func (d *driver) sweep(desc, addr, nsName string,
	read func(ns *client.Namespace, qs []conn.Edge) ([]bool, error),
	pairs []conn.Edge, want []bool) {
	c, err := client.Dial(addr, client.WithDialTimeout(2*time.Second))
	if err != nil {
		d.violatef("%s: dial for sweep: %v", desc, err)
		return
	}
	defer c.Close()
	ns := c.Namespace(nsName)
	const chunk = 256
	mismatches := 0
	for off := 0; off < len(pairs); off += chunk {
		qs := pairs[off:min(off+chunk, len(pairs))]
		var bits []bool
		for attempt := 0; ; attempt++ {
			bits, err = read(ns, qs)
			if err == nil || attempt == 4 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			d.violatef("%s: sweep read failed: %v", desc, err)
			return
		}
		if len(bits) != len(qs) {
			d.violatef("%s: sweep returned %d bits for %d pairs", desc, len(bits), len(qs))
			return
		}
		for i, got := range bits {
			if got != want[off+i] {
				if mismatches < 5 {
					p := pairs[off+i]
					d.violatef("%s: connected(%d,%d) = %v, oracle says %v", desc, p.U, p.V, got, want[off+i])
				}
				mismatches++
			}
		}
	}
	if mismatches > 5 {
		d.violatef("%s: %d pairwise mismatches total (first 5 shown)", desc, mismatches)
	}
}

// ------------------------------------------------------------- Run

// Run executes one seeded chaos scenario and returns nil only if every
// invariant held. The error message embeds the exact repro command.
func Run(cfg Config) error {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	childLog := cfg.ChildLog
	if childLog == nil {
		childLog = io.Discard
	}
	// Fail fast on a malformed schedule: children would panic on it.
	if cfg.Schedule != "" {
		if _, err := chaos.NewPlan(cfg.Seed, cfg.Schedule); err != nil {
			return err
		}
	}

	dataDir, err := os.MkdirTemp("", "connchaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	primaryAddr, err := pickAddr()
	if err != nil {
		return err
	}
	replicaAddrs := make([]string, cfg.Replicas)
	for i := range replicaAddrs {
		if replicaAddrs[i], err = pickAddr(); err != nil {
			return err
		}
	}

	d := &driver{
		cfg:          cfg,
		n:            universe,
		primaryAddr:  primaryAddr,
		replicaAddrs: replicaAddrs,
		flatOracle:   &oracle{},
		gridOracle:   &oracle{},
		stop:         make(chan struct{}),
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s\nrepro: %s", fmt.Sprintf(format, args...), cfg.repro())
	}

	primarySched := cfg.Schedule
	if primarySched == "" {
		primarySched = defaultPrimarySchedule
	}
	prim := &supervisor{
		name: "primary", logf: logf, childLog: childLog,
		role: rolePrimary, addr: primaryAddr, data: dataDir,
		seed: cfg.Seed, schedule: primarySched, knobs: cfg.knobs(),
	}
	prim.start()
	defer prim.stopAndWait()
	if err := waitPing(primaryAddr, 15*time.Second); err != nil {
		return fail("primary never came up: %v", err)
	}

	admin, err := client.Dial(primaryAddr, client.WithDialTimeout(2*time.Second))
	if err != nil {
		return fail("admin dial: %v", err)
	}
	if err := ensure(func() error { return admin.Create(nsFlat, universe, true) }); err != nil {
		admin.Close()
		return fail("create %s: %v", nsFlat, err)
	}
	if err := ensure(func() error { return admin.CreateSharded(nsGrid, universe, true, cfg.Shards) }); err != nil {
		admin.Close()
		return fail("create %s: %v", nsGrid, err)
	}
	admin.Close()

	reps := make([]*supervisor, cfg.Replicas)
	for i := range reps {
		reps[i] = &supervisor{
			name: fmt.Sprintf("replica%d", i), logf: logf, childLog: childLog,
			role: roleReplica, addr: replicaAddrs[i], primary: primaryAddr,
			// Distinct derived seeds so the replicas' fault patterns differ.
			seed: cfg.Seed + int64(i+1)*7919, schedule: defaultReplicaSchedule,
		}
		reps[i].start()
		defer reps[i].stopAndWait()
	}
	for i := range reps {
		if err := waitPing(replicaAddrs[i], 15*time.Second); err != nil {
			return fail("replica %d never came up: %v", i, err)
		}
	}

	// Workload: two writers per namespace over disjoint vertex ranges, the
	// read-your-writes probe on the reserved pair, and a checkpointer.
	rng := rand.New(rand.NewSource(cfg.Seed))
	half := int32(universe-2) / 2
	writers := []struct {
		ns     string
		lo, hi int32
		oc     *oracle
	}{
		{nsFlat, 0, half, d.flatOracle},
		{nsFlat, half, universe - 2, d.flatOracle},
		{nsGrid, 0, universe / 2, d.gridOracle},
		{nsGrid, universe / 2, universe, d.gridOracle},
	}
	for _, w := range writers {
		d.wg.Add(1)
		go d.runWriter(w.ns, w.lo, w.hi, rand.New(rand.NewSource(rng.Int63())), w.oc)
	}
	d.wg.Add(1)
	go d.runProbe()
	d.wg.Add(1)
	go d.runCheckpointer(cfg.Duration / 6)

	// Kill plan: fractions of the fault phase, drawn from the run seed.
	type event struct {
		at   time.Duration
		what string
		do   func()
	}
	var plan []event
	if len(reps) > 0 {
		plan = append(plan, event{cfg.Duration * 25 / 100, "SIGKILL replica 0", reps[0].kill})
	}
	plan = append(plan, event{cfg.Duration * 45 / 100, "SIGKILL primary mid-traffic", prim.kill})
	if len(reps) > 0 {
		last := len(reps) - 1
		plan = append(plan, event{cfg.Duration * 70 / 100,
			fmt.Sprintf("SIGKILL replica %d", last), reps[last].kill})
	}
	if rng.Intn(2) == 0 {
		plan = append(plan, event{cfg.Duration * 85 / 100, "second primary SIGKILL", prim.kill})
	}
	start := time.Now()
	for _, ev := range plan {
		if wait := ev.at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		logf("connchaos: t=%v %s", ev.at, ev.what)
		ev.do()
	}
	if rest := cfg.Duration - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}

	// Final phase: disarm everything, SIGKILL the whole topology mid-traffic
	// one last time, and let it come back clean — the respawned replicas
	// rediscover and catch up from scratch.
	logf("connchaos: fault phase over; disarming, final SIGKILL, verifying")
	prim.setSchedule("")
	prim.kill()
	for _, r := range reps {
		r.setSchedule("")
		r.kill()
	}
	if err := waitPing(primaryAddr, 20*time.Second); err != nil {
		return fail("primary never recovered for verification: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // post-recovery traffic against the clean topology
	close(d.stop)
	d.wg.Wait()

	// Fence: one last acked flat mutation pins the seq every replica must
	// reach before its state is judged. Insert-then-delete of the reserved
	// pair in one batch leaves the edge set unchanged; it still goes through
	// the oracle so replay stays exact even if the probe stopped mid-cycle.
	fc, err := client.Dial(primaryAddr, client.WithDialTimeout(2*time.Second))
	if err != nil {
		return fail("fence dial: %v", err)
	}
	fenceOps := []conn.Op{
		{Kind: conn.OpInsert, U: universe - 2, V: universe - 1},
		{Kind: conn.OpDelete, U: universe - 2, V: universe - 1},
	}
	if d.ackBatch(fc.Namespace(nsFlat), fenceOps) {
		d.flatOracle.append(fenceOps)
	}
	fence := fc.ObservedSeq(nsFlat)
	fc.Close()
	logf("connchaos: fence seq %d; %d flat / %d grid acked batches",
		fence, d.flatOracle.count(), d.gridOracle.count())

	for i, addr := range replicaAddrs {
		if err := waitApplied(addr, nsFlat, fence, 20*time.Second); err != nil {
			d.violatef("replica %d: %v", i, err)
		}
	}

	pairs := allPairs(universe)
	flatWant := wantBits(d.flatOracle.labels(universe), pairs)
	gridWant := wantBits(d.gridOracle.labels(universe), pairs)
	readNow := func(ns *client.Namespace, qs []conn.Edge) ([]bool, error) {
		return ns.ReadNowBatch(qs)
	}
	readRecent := func(ns *client.Namespace, qs []conn.Edge) ([]bool, error) {
		return ns.ReadRecentBatch(qs)
	}
	connected := func(ns *client.Namespace, qs []conn.Edge) ([]bool, error) {
		return ns.ConnectedBatch(qs)
	}
	d.sweep("primary "+nsFlat+" (ReadNow)", primaryAddr, nsFlat, readNow, pairs, flatWant)
	for i, addr := range replicaAddrs {
		d.sweep(fmt.Sprintf("replica %d %s (ReadRecent)", i, nsFlat), addr, nsFlat, readRecent, pairs, flatWant)
	}
	d.sweep("primary "+nsGrid+" (Connected, sharded)", primaryAddr, nsGrid, connected, pairs, gridWant)

	if v := d.failed(); len(v) > 0 {
		return fail("%d invariant violation(s):\n  %s", len(v), strings.Join(v, "\n  "))
	}
	logf("connchaos: all invariants held over %d pairs × %d states", len(pairs), 2+len(replicaAddrs))
	return nil
}
