package topo

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

// Child-process environment: the driver re-executes its own binary with
// these set, so the harness test binary and cmd/connchaos double as the
// server processes they supervise. Chaos arming rides the chaos package's
// own CONNCHAOS_SCHED / CONNCHAOS_SEED variables.
const (
	envRole    = "CONNCHAOS_ROLE"
	envAddr    = "CONNCHAOS_ADDR"
	envData    = "CONNCHAOS_DATA"
	envPrimary = "CONNCHAOS_PRIMARY"

	// Durability-pipeline knobs forwarded to primary children (see
	// server.Options); empty/zero values select the defaults.
	envWALCodec  = "CONNCHAOS_WAL_CODEC"
	envGroupSync = "CONNCHAOS_GROUP_SYNC"
	envGroupWait = "CONNCHAOS_GROUP_WAIT"
	envCkptEvery = "CONNCHAOS_CKPT_EVERY"

	rolePrimary = "primary"
	roleReplica = "replica"
)

// durabilityKnobs carries a Config's pipeline settings to primary children
// via the environment — the chaos run exercises the exact write path the
// knobs select, respawns included.
type durabilityKnobs struct {
	walCodec   string
	groupSyncK int
	groupWait  time.Duration
	ckptEvery  int
}

// IsChild reports whether this process was spawned by the topology driver
// as a server child. Binaries embedding the driver (cmd/connchaos, the
// topo test binary) must route to ChildMain before doing anything else.
func IsChild() bool { return os.Getenv(envRole) != "" }

// ChildMain runs one server child to completion and returns its exit code.
// The child serves until killed — the driver stops children exclusively
// with SIGKILL, the whole point being that nothing gets to shut down
// cleanly.
func ChildMain() int {
	role := os.Getenv(envRole)
	logger := log.New(os.Stderr, "connchaos/"+role+": ", 0)
	opts := server.Options{Logf: logger.Printf}
	switch role {
	case rolePrimary:
		opts.DataDir = os.Getenv(envData)
		// A short coalescing window keeps epochs small and frequent: more
		// WAL appends, more snapshot publishes, more seams for the armed
		// sites to fire in.
		opts.MaxDelay = 200 * time.Microsecond
		opts.WALCodec = os.Getenv(envWALCodec)
		if k, err := strconv.Atoi(os.Getenv(envGroupSync)); err == nil && k > 1 {
			opts.GroupSyncK = k
		}
		if w, err := time.ParseDuration(os.Getenv(envGroupWait)); err == nil && w > 0 {
			opts.GroupSyncMaxWait = w
		}
		if m, err := strconv.Atoi(os.Getenv(envCkptEvery)); err == nil && m > 1 {
			opts.CheckpointEvery = m
		}
	case roleReplica:
		opts.ReplicaOf = os.Getenv(envPrimary)
	default:
		logger.Printf("unknown role %q", role)
		return 2
	}
	srv, err := server.New(opts)
	if err != nil {
		logger.Printf("start: %v", err)
		return 1
	}
	if err := srv.ListenAndServe(os.Getenv(envAddr)); err != nil {
		logger.Printf("serve: %v", err)
		return 1
	}
	return 0
}

// childEnv builds a child's environment: the parent's, scrubbed of any
// CONNCHAOS_* values (the driver itself must never arm, and a stale
// schedule must not leak into an incarnation meant to run clean), plus the
// role settings and, when schedule is non-empty, the chaos arming pair.
func childEnv(role, addr, data, primary string, seed int64, schedule string, dur durabilityKnobs) []string {
	env := make([]string, 0, len(os.Environ())+10)
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, "CONNCHAOS_") {
			continue
		}
		env = append(env, kv)
	}
	env = append(env,
		envRole+"="+role, envAddr+"="+addr, envData+"="+data, envPrimary+"="+primary)
	if dur.walCodec != "" {
		env = append(env, envWALCodec+"="+dur.walCodec)
	}
	if dur.groupSyncK > 1 {
		env = append(env, fmt.Sprintf("%s=%d", envGroupSync, dur.groupSyncK))
	}
	if dur.groupWait > 0 {
		env = append(env, envGroupWait+"="+dur.groupWait.String())
	}
	if dur.ckptEvery > 1 {
		env = append(env, fmt.Sprintf("%s=%d", envCkptEvery, dur.ckptEvery))
	}
	if schedule != "" {
		env = append(env,
			chaos.EnvSchedule+"="+schedule,
			fmt.Sprintf("%s=%d", chaos.EnvSeed, seed))
	}
	return env
}
