package topo

import (
	"math/rand"
	"time"

	conn "repro"
	"repro/client"
)

// ackTimeout bounds how long a writer retries one batch before declaring
// the topology wedged. Generous: it must ride out a primary SIGKILL, the
// respawn, and a WAL replay.
const ackTimeout = 30 * time.Second

// ackBatch sends ops until the server acknowledges them, absorbing
// transport errors (the primary may be dead, restarting, or resetting
// connections). Consecutive retries of the same batch are idempotent, so an
// "applied but ack lost" outcome converges to the same final state as a
// clean ack. Reports false — after recording a violation — only if the
// batch cannot be acknowledged within ackTimeout.
func (d *driver) ackBatch(ns *client.Namespace, ops []conn.Op) bool {
	deadline := time.Now().Add(ackTimeout)
	for {
		if _, err := ns.Do(ops); err == nil {
			return true
		} else if time.Now().After(deadline) {
			d.violatef("writer on %q: batch unacknowledged after %v: %v", ns.Name(), ackTimeout, err)
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// genBatch builds 1–3 operations confined to [lo, hi), with at most one
// mutation per edge per batch: the oracle replays a batch as
// inserts-then-deletes, and keeping edges distinct within a batch makes
// that replay agree with every server-side application order.
func genBatch(rng *rand.Rand, lo, hi int32) []conn.Op {
	nops := 1 + rng.Intn(3)
	used := make(map[uint64]bool, nops)
	ops := make([]conn.Op, 0, nops)
	for len(ops) < nops {
		u := lo + rng.Int31n(hi-lo)
		v := lo + rng.Int31n(hi-lo)
		if u == v {
			continue
		}
		kind := conn.OpInsert
		switch x := rng.Intn(10); {
		case x < 3:
			kind = conn.OpDelete
		case x < 6:
			kind = conn.OpQuery
		}
		if kind != conn.OpQuery {
			if k := edgeKey(u, v); used[k] {
				continue
			} else {
				used[k] = true
			}
		}
		ops = append(ops, conn.Op{Kind: kind, U: u, V: v})
	}
	return ops
}

// runWriter drives one namespace with randomized batches over its private
// vertex range [lo, hi), retrying every batch to acknowledgement and
// logging acked batches into oc. Writers own disjoint ranges, so replaying
// each writer's acked batches in any interleaving yields the same final
// edge set — the oracle the final sweep compares against.
func (d *driver) runWriter(nsName string, lo, hi int32, rng *rand.Rand, oc *oracle) {
	defer d.wg.Done()
	c, err := client.Dial(d.primaryAddr, client.WithDialTimeout(2*time.Second))
	if err != nil {
		d.violatef("writer on %q: dial: %v", nsName, err)
		return
	}
	defer c.Close()
	ns := c.Namespace(nsName)
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		ops := genBatch(rng, lo, hi)
		if !d.ackBatch(ns, ops) {
			return
		}
		oc.append(ops)
	}
}

// runProbe is the read-your-writes invariant check: a dedicated client with
// replica routing mutates a reserved edge and requires ReadRecent to
// observe each acked mutation. The client fences replica answers on its
// observed seq, so a replica that claimed a seq ahead of the state it
// serves would feed the probe a stale bit that never corrects — surfacing
// as a probe timeout.
func (d *driver) runProbe() {
	defer d.wg.Done()
	c, err := client.Dial(d.primaryAddr,
		client.WithDialTimeout(2*time.Second),
		client.WithReplicas(d.replicaAddrs...))
	if err != nil {
		d.violatef("probe: dial: %v", err)
		return
	}
	defer c.Close()
	ns := c.Namespace(nsFlat)
	u, v := int32(d.n-2), int32(d.n-1)
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		// Each probe mutation is an acked single-op batch, logged into the
		// flat oracle like any writer batch — the reserved pair is the
		// probe's private vertex range.
		ins := []conn.Op{{Kind: conn.OpInsert, U: u, V: v}}
		if !d.ackBatch(ns, ins) {
			return
		}
		d.flatOracle.append(ins)
		if !d.awaitRecent(c, ns, u, v, true) {
			return
		}
		del := []conn.Op{{Kind: conn.OpDelete, U: u, V: v}}
		if !d.ackBatch(ns, del) {
			return
		}
		d.flatOracle.append(del)
		if !d.awaitRecent(c, ns, u, v, false) {
			return
		}
	}
}

// awaitRecent polls ReadRecent until the probe edge reads as want. Honest
// servers converge: a lagging replica is fenced off by the client and the
// primary republishes its snapshot every epoch. Only a server claiming a
// seq it has not actually applied can pin the answer stale — that is the
// timeout this reports as a violation. Aborts silently when the run stops.
func (d *driver) awaitRecent(c *client.Client, ns *client.Namespace, u, v int32, want bool) bool {
	deadline := time.Now().Add(ackTimeout)
	for {
		select {
		case <-d.stop:
			return false
		default:
		}
		got, err := ns.ReadRecent(u, v)
		if err == nil && got == want {
			return true
		}
		if time.Now().After(deadline) {
			d.violatef("probe: acked %s of {%d,%d} (fence seq %d) not visible via ReadRecent after %v (last: got=%v err=%v)",
				map[bool]string{true: "insert", false: "delete"}[want],
				u, v, c.ObservedSeq(nsFlat), ackTimeout, got, err)
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// runCheckpointer periodically checkpoints both namespaces, moving the WAL
// floor so a replica reconnecting after a long outage is forced through the
// snapshot catch-up path, and exercising the checkpoint-reset fault site.
// Errors are expected (the primary may be down, or chaos fails the reset)
// and ignored — checkpointing is an optimization, never a correctness
// dependency.
func (d *driver) runCheckpointer(every time.Duration) {
	defer d.wg.Done()
	c, err := client.Dial(d.primaryAddr, client.WithDialTimeout(2*time.Second))
	if err != nil {
		return
	}
	defer c.Close()
	flat, grid := c.Namespace(nsFlat), c.Namespace(nsGrid)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			_, _ = flat.Checkpoint()
			_, _ = grid.Checkpoint()
		}
	}
}
