// Package coalesce implements the group-commit machinery behind the public
// conn.Batcher: a mutex-sharded staging buffer that many goroutines append
// operations to, and a single dispatcher goroutine that drains the buffer
// into large epochs and executes each epoch with one call into the
// single-writer core.
//
// The point of the exercise is Theorem 1 of the paper: amortized work per
// deleted edge is O(lg n · lg(1+n/Δ)) where Δ is the average deletion batch
// size, and insert/query batches of size k cost O(k lg(1+n/k)) total — the
// structure gets cheaper per operation as batches grow. Individual user
// operations arriving concurrently are therefore worth holding back for a
// moment: the buffer coalesces them until either a size target (maxBatch) or
// a latency window (maxDelay) is hit, then commits the whole epoch at once.
//
// Life of an operation:
//
//	caller            shard              dispatcher
//	Submit(ops) ───▶ append group ──┐
//	Wait() blocks                   ├──▶ drain all shards ─▶ exec(epoch)
//	                 append group ──┘        │
//	Wait() returns ◀── res + close(done) ◀───┘
//
// The dispatcher is the only goroutine that calls exec, so the executor may
// use a structure that is not itself safe for concurrent use. Results fan
// back to callers through per-submission futures: exec returns one bool per
// operation, sliced back onto each submission's group.
package coalesce

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Kind labels a staged operation.
type Kind uint8

const (
	// OpInsert stages an edge insertion; its result reports whether the
	// edge was newly added (credited to the first staging in the epoch).
	OpInsert Kind = iota
	// OpDelete stages an edge deletion; its result reports whether the
	// edge was removed (credited to the first staging in the epoch).
	OpDelete
	// OpQuery stages a connectivity query evaluated on the epoch's
	// post-update state.
	OpQuery
)

// Op is one staged operation on an undirected vertex pair.
type Op struct {
	Kind Kind
	U, V int32
}

// ErrClosed is returned by Submit and Flush after Close.
var ErrClosed = errors.New("coalesce: buffer is closed")

// group is one caller submission: ops sharing a single future.
type group struct {
	ops  []Op
	res  []bool        // written by the dispatcher before done is closed
	seq  uint64        // executor-assigned commit position of the group's epoch
	done chan struct{} // closed once the group's epoch has committed
}

// shard is one stripe of the staging buffer, padded to its own cache line
// so submissions on different stripes do not false-share.
type shard struct {
	mu     sync.Mutex
	groups []*group
	_      [32]byte
}

// Stats counts dispatcher activity since the buffer was created.
type Stats struct {
	Epochs   int64 // committed epochs (empty drains are not counted)
	Ops      int64 // operations committed across all epochs
	MaxEpoch int64 // largest single epoch, in operations
}

// Buffer is a concurrent staging buffer with a group-commit dispatcher.
// Construct with NewBuffer; the zero value is not usable.
type Buffer struct {
	shards  []shard
	rr      atomic.Uint32 // round-robin shard selector
	staged  atomic.Int64  // ops staged but not yet drained
	force   atomic.Bool   // a Flush barrier wants an immediate drain
	closed  atomic.Bool
	kick    chan struct{} // wakes the dispatcher; capacity 1
	closing chan struct{}
	wg      sync.WaitGroup
	// exec commits one epoch. Calling it is the commit point the group
	// futures wait behind (in durable configurations it is the WAL
	// append+fsync), and only the dispatcher goroutine may invoke it.
	//
	//conn:dispatcher-only
	//conn:fsync-barrier
	exec func([]Op) ([]bool, uint64)
	// ack, when non-nil, intercepts the acknowledgement of each drained
	// epoch: instead of resolving the futures itself, the dispatcher hands
	// ack the epoch's commit position and a release function that unblocks
	// every caller in the drain. Whoever holds release MUST call it exactly
	// once, and only once the epoch is actually committed under the
	// executor's durability rules — a group-fsync scheduler uses this to
	// defer acknowledgement to the shared sync point. ack itself must not
	// block: it runs on the dispatcher goroutine.
	ack      func(seq uint64, release func())
	maxBatch int
	maxDelay time.Duration

	epochs   atomic.Int64
	ops      atomic.Int64
	maxEpoch atomic.Int64
}

// NewBuffer starts a buffer whose dispatcher drains staged operations into
// epochs and executes each epoch with exec, which receives the concatenated
// operations and must return one result per operation, in order, plus the
// epoch's commit position (an executor-defined sequence number, zero if it
// has none; fanned back to every group via Future.Seq). exec is only ever
// called from the dispatcher goroutine. A drain that collected only barrier
// groups (Flush with nothing staged) still calls exec with an empty op
// slice — executors with out-of-band epoch-boundary work rely on Flush as
// a dispatcher nudge.
//
// The dispatcher commits an epoch as soon as maxBatch operations are staged,
// or maxDelay after it first notices pending work, whichever comes first.
// maxDelay == 0 disables the window: the dispatcher drains as soon as it
// wakes, so epochs coalesce only what accumulates while an execution is in
// flight. shards <= 0 selects GOMAXPROCS stripes; maxBatch <= 0 selects a
// default of 8192.
func NewBuffer(shards, maxBatch int, maxDelay time.Duration, exec func(ops []Op) ([]bool, uint64)) *Buffer {
	return NewBufferAck(shards, maxBatch, maxDelay, exec, nil)
}

// NewBufferAck is NewBuffer with an acknowledgement interceptor: when ack is
// non-nil the dispatcher passes each drained epoch's commit position and
// release function to ack instead of resolving the futures itself (see the
// ack field). ack == nil restores the direct-release behaviour of NewBuffer.
func NewBufferAck(shards, maxBatch int, maxDelay time.Duration, exec func(ops []Op) ([]bool, uint64), ack func(seq uint64, release func())) *Buffer {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if maxBatch <= 0 {
		maxBatch = 8192
	}
	if maxDelay < 0 {
		maxDelay = 0
	}
	b := &Buffer{
		shards:   make([]shard, shards),
		kick:     make(chan struct{}, 1),
		closing:  make(chan struct{}),
		exec:     exec,
		ack:      ack,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
	}
	b.wg.Add(1)
	go b.run() //conn:dispatcher-entry — this statement creates the dispatcher goroutine
	return b
}

// Future resolves to the per-op results of one submission.
type Future struct{ g *group }

// Wait blocks until the submission's epoch has committed and returns the
// results, aligned index-for-index with the submitted operations.
func (f Future) Wait() []bool {
	<-f.g.done
	return f.g.res
}

// Seq returns the commit position the executor assigned to the group's
// epoch (zero if the executor has no sequence). Valid only after Wait.
func (f Future) Seq() uint64 {
	<-f.g.done
	return f.g.seq
}

// Submit stages ops as one atomic group — all land in the same epoch — and
// returns a future for their results. Safe for any number of concurrent
// callers. The ops slice is retained until the epoch commits; callers must
// not reuse it before Wait returns.
func (b *Buffer) Submit(ops []Op) (Future, error) {
	return b.submit(ops, false)
}

func (b *Buffer) submit(ops []Op, flush bool) (Future, error) {
	g := &group{ops: ops, done: make(chan struct{})}
	s := &b.shards[int(b.rr.Add(1))%len(b.shards)]
	s.mu.Lock()
	// The closed check lives inside the shard lock: the final drain also
	// takes every shard lock after closed is set, so a submission either
	// lands before that drain (and is committed by it) or observes closed.
	if b.closed.Load() {
		s.mu.Unlock()
		return Future{}, ErrClosed
	}
	s.groups = append(s.groups, g)
	b.staged.Add(int64(len(ops)))
	s.mu.Unlock()
	if flush {
		b.force.Store(true)
	}
	b.wake()
	return Future{g}, nil
}

// Flush forces an immediate drain and blocks until every operation staged
// before the call has committed.
func (b *Buffer) Flush() error {
	f, err := b.submit(nil, true)
	if err != nil {
		return err
	}
	f.Wait()
	return nil
}

// Close commits everything still staged, stops the dispatcher, and waits
// for it to exit. Close is idempotent; Submit after Close returns ErrClosed.
func (b *Buffer) Close() {
	if !b.closed.Swap(true) {
		close(b.closing)
	}
	b.wg.Wait()
}

// Pending reports the number of operations staged but not yet drained.
func (b *Buffer) Pending() int64 { return b.staged.Load() }

// Stats returns dispatcher counters.
func (b *Buffer) Stats() Stats {
	return Stats{
		Epochs:   b.epochs.Load(),
		Ops:      b.ops.Load(),
		MaxEpoch: b.maxEpoch.Load(),
	}
}

func (b *Buffer) wake() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

func (b *Buffer) isClosing() bool {
	select {
	case <-b.closing:
		return true
	default:
		return false
	}
}

// run is the dispatcher loop: sleep until work arrives, hold the coalescing
// window open, drain, execute, repeat.
//
//conn:dispatcher-only
func (b *Buffer) run() {
	defer b.wg.Done()
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	for {
		if b.staged.Load() == 0 && !b.force.Load() {
			select {
			case <-b.kick:
			case <-b.closing:
				// Final sweep: commit submissions that raced Close.
				b.drain()
				return
			}
		}
		// Work is pending. Hold the window open until the size target,
		// the latency deadline, a Flush barrier, or Close.
		if b.maxDelay > 0 && int(b.staged.Load()) < b.maxBatch &&
			!b.force.Load() && !b.isClosing() {
			timer.Reset(b.maxDelay)
		window:
			for int(b.staged.Load()) < b.maxBatch && !b.force.Load() {
				select {
				case <-b.kick:
				case <-timer.C:
					break window
				case <-b.closing:
					break window
				}
			}
			stopTimer(timer)
		}
		b.force.Store(false)
		b.drain()
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// drain collects every staged group, executes them as one epoch, fans the
// results back, and releases the blocked callers. The close of each group's
// done channel is the acknowledgement callers' Wait unblocks on, so it must
// stay after the exec call — acked means committed (and, with a durable
// executor, fsynced).
//
//conn:dispatcher-only
//conn:ack-after-fsync
func (b *Buffer) drain() {
	var groups []*group
	total := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		if len(s.groups) > 0 {
			groups = append(groups, s.groups...)
			s.groups = nil
		}
		s.mu.Unlock()
	}
	for _, g := range groups {
		total += len(g.ops)
	}
	b.staged.Add(int64(-total))
	if len(groups) > 0 {
		// exec runs even when every drained group is an empty barrier
		// (total == 0): a Flush is the dispatcher nudge that executors use
		// to service out-of-band requests (conn.Batcher checkpoints) at an
		// epoch boundary, so it must reach them. Empty drains are not
		// counted as epochs.
		ops := make([]Op, 0, total)
		for _, g := range groups {
			ops = append(ops, g.ops...)
		}
		res, seq := b.exec(ops)
		i := 0
		for _, g := range groups {
			// Full slice expression: callers may append to their result
			// slice, which must not grow into the next group's range.
			g.res = res[i : i+len(g.ops) : i+len(g.ops)]
			g.seq = seq
			i += len(g.ops)
		}
		if total > 0 {
			b.epochs.Add(1)
			b.ops.Add(int64(total))
			if t := int64(total); t > b.maxEpoch.Load() {
				b.maxEpoch.Store(t)
			}
		}
		// The acknowledgement: closing the done channels unblocks every
		// caller's Wait. With an ack interceptor installed the release is
		// handed over instead — the interceptor fires it at its own commit
		// point (the group fsync), never before.
		release := func() {
			for _, g := range groups {
				close(g.done)
			}
		}
		if b.ack != nil {
			b.ack(seq, release)
		} else {
			release()
		}
	}
}
