package coalesce

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoExec returns true for every op and counts invocations as the
// epoch's commit position.
func echoExec(calls *atomic.Int64) func([]Op) ([]bool, uint64) {
	return func(ops []Op) ([]bool, uint64) {
		n := calls.Add(1)
		res := make([]bool, len(ops))
		for i := range res {
			res[i] = true
		}
		return res, uint64(n)
	}
}

func TestSubmitWaitRoundTrip(t *testing.T) {
	var calls atomic.Int64
	b := NewBuffer(2, 4, time.Hour, echoExec(&calls))
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := b.Submit([]Op{{Kind: OpInsert, U: int32(i), V: int32(i + 1)}})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			res := f.Wait()
			if len(res) != 1 || !res[0] {
				t.Errorf("Wait = %v", res)
			}
			// All four ops land in the single epoch, whose exec invocation
			// count (echoExec's seq) is 1 — fanned back to every group.
			if seq := f.Seq(); seq != 1 {
				t.Errorf("Seq = %d, want 1", seq)
			}
		}(i)
	}
	wg.Wait()
	s := b.Stats()
	if s.Ops != 4 {
		t.Fatalf("Stats.Ops = %d, want 4", s.Ops)
	}
	// maxDelay is an hour and maxBatch is 4, so the dispatcher can only
	// have drained once all four ops were staged: exactly one epoch.
	if s.Epochs != 1 || s.MaxEpoch != 4 {
		t.Fatalf("Stats = %+v, want 1 epoch of 4 ops", s)
	}
}

func TestGroupIsAtomic(t *testing.T) {
	var calls atomic.Int64
	var epochSizes []int
	b := NewBuffer(1, 2, 0, func(ops []Op) ([]bool, uint64) {
		calls.Add(1)
		epochSizes = append(epochSizes, len(ops))
		return make([]bool, len(ops)), 0
	})
	// A 7-op group with maxBatch 2 must still commit as one epoch.
	ops := make([]Op, 7)
	f, err := b.Submit(ops)
	if err != nil {
		t.Fatal(err)
	}
	if res := f.Wait(); len(res) != 7 {
		t.Fatalf("len(res) = %d, want 7", len(res))
	}
	b.Close()
	if len(epochSizes) != 1 || epochSizes[0] != 7 {
		t.Fatalf("epoch sizes = %v, want [7]", epochSizes)
	}
}

func TestMaxDelayCommitsPartialEpoch(t *testing.T) {
	var calls atomic.Int64
	b := NewBuffer(1, 1<<30, 5*time.Millisecond, echoExec(&calls))
	defer b.Close()
	f, err := b.Submit([]Op{{Kind: OpQuery}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { f.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("op never committed: maxDelay window did not fire")
	}
}

func TestFlushForcesDrain(t *testing.T) {
	var calls atomic.Int64
	b := NewBuffer(4, 1<<30, time.Hour, echoExec(&calls))
	defer b.Close()
	f, err := b.Submit([]Op{{Kind: OpInsert, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Flush returned, so the earlier submission must have committed.
	select {
	case <-f.g.done:
	default:
		t.Fatal("Flush returned before the staged op committed")
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush", b.Pending())
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	var calls atomic.Int64
	b := NewBuffer(2, 1<<30, time.Hour, echoExec(&calls))
	f, err := b.Submit([]Op{{Kind: OpDelete, U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if res := f.Wait(); len(res) != 1 || !res[0] {
		t.Fatalf("op staged before Close resolved to %v", res)
	}
	if _, err := b.Submit([]Op{{}}); err != ErrClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if err := b.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: err = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestConcurrentHammer(t *testing.T) {
	const goroutines = 8
	const perG = 500
	var executed atomic.Int64
	b := NewBuffer(0, 64, 100*time.Microsecond, func(ops []Op) ([]bool, uint64) {
		executed.Add(int64(len(ops)))
		return make([]bool, len(ops)), 0
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var f Future
				var err error
				if i%10 == 0 {
					f, err = b.Submit(make([]Op, 3))
				} else {
					f, err = b.Submit([]Op{{U: int32(g), V: int32(i)}})
				}
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				f.Wait()
			}
		}(g)
	}
	wg.Wait()
	b.Close()
	want := int64(goroutines * (perG/10*3 + perG - perG/10))
	if got := executed.Load(); got != want {
		t.Fatalf("executed %d ops, want %d", got, want)
	}
	if s := b.Stats(); s.Ops != want {
		t.Fatalf("Stats.Ops = %d, want %d", s.Ops, want)
	}
}
