// Package server hosts multiple named connectivity graphs behind a TCP
// front-end speaking the internal/wire protocol. It is the network layer the
// batch-parallel structure has been waiting for: each namespace owns its own
// conn.Graph wrapped in a conn.Batcher, every connection may keep many
// frames in flight (one goroutine per in-flight request), and all of those
// blocked requests coalesce into the large epochs Theorem 1 rewards —
// network concurrency translates directly into batch size.
//
// Namespace lifecycle: Create instantiates a Graph+Batcher (durable
// namespaces live under <data>/<name>/ via conn.WithDurability and survive
// restarts — New restores every directory it finds); Drop quiesces the
// Batcher and, for durable namespaces, deletes the directory. Shutdown is
// the graceful drain: stop accepting, let every already-received request
// commit and answer, then flush and checkpoint each durable namespace
// before closing its Batcher.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	conn "repro"
	"repro/internal/chaos"
	"repro/internal/coalesce"
	"repro/internal/engine"
	"repro/internal/pubsub"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/wire"
)

// maxShards bounds a namespace's partition count: beyond this, per-shard
// dispatcher goroutines and fsync streams stop buying anything.
const maxShards = 256

// Options configures a Server. The zero value is a memory-only server with
// the Batcher's default coalescing parameters.
type Options struct {
	// DataDir, when non-empty, enables durable namespaces: namespace <ns>
	// keeps its WAL and checkpoints under DataDir/<ns>/, and New restores
	// every namespace directory found there.
	DataDir string

	// MaxBatch / MaxDelay are passed through to each namespace's Batcher
	// (zero selects the conn defaults).
	MaxBatch int
	MaxDelay time.Duration

	// WALCodec names the record encoding for freshly created WALs ("v1",
	// "v2"; empty = v1). Existing logs keep the codec in their header, so
	// changing this never invalidates restored namespaces. New rejects an
	// unknown name.
	WALCodec string

	// GroupSyncK, when > 1, enables group-commit fsync scheduling on every
	// durable namespace: up to K epochs share one fsync, bounded by
	// GroupSyncMaxWait (zero selects the conn default window). Acked
	// writes are still always fsynced before the ack.
	GroupSyncK       int
	GroupSyncMaxWait time.Duration

	// CheckpointEvery, when > 1, makes every M-th checkpoint a full
	// snapshot and the ones between incremental deltas against the last
	// full (see conn.WithCheckpointEvery).
	CheckpointEvery int

	// DefaultShards, when >= 2, hash-partitions every namespace created
	// without an explicit shard count across that many engines (the -shards
	// flag on connserver). A CmdCreate carrying its own shard count always
	// wins; 0 or 1 means unsharded.
	DefaultShards int

	// ReplicaOf, when non-empty, starts the server as a read-only replica
	// of the primary connserver at that address: every durable namespace on
	// the primary is followed via its epoch stream (see internal/repl) and
	// served locally through the read tiers; mutating requests are rejected
	// with a redirect to the primary. Replica mode is memory-only —
	// combining it with DataDir is an error.
	ReplicaOf string

	// Logf, when non-nil, receives one line per server-lifecycle event
	// (namespace restored, drain progress). Request traffic is not logged.
	Logf func(format string, args ...any)
}

// Server is a multi-namespace connectivity server. Construct with New,
// start with Serve (or ListenAndServe), stop with Shutdown.
type Server struct {
	opts Options

	mu         sync.RWMutex // guards namespaces
	namespaces map[string]*namespace

	ln       net.Listener
	lnMu     sync.Mutex
	draining atomic.Bool
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	subConns map[net.Conn]struct{} // conns owned by a subscription stream
	wg       sync.WaitGroup        // live connection handlers

	replMgr *replicaManager // non-nil iff Options.ReplicaOf is set
}

// namespace is one named graph: a Batcher over its own Graph, plus the
// request-vs-drop guard. Requests hold mu.RLock while talking to b; Drop
// and Shutdown take mu.Lock, so a namespace is closed only when no request
// is mid-flight on it — the Batcher's panic-on-closed paths are unreachable.
type namespace struct {
	name    string
	durable bool

	// readonly marks a replica-mode namespace: its state comes from the
	// primary's epoch stream, and mutating requests are redirected. The
	// follower's apply loop may swap g and b wholesale (snapshot catch-up),
	// which is why requests read them under mu like everything else.
	readonly bool
	// applied is the replica-side replication position: the seq of the last
	// epoch fully applied from the primary's stream.
	applied atomic.Uint64

	// hub, on a primary-side durable namespace, tees committed epochs to
	// subscribed followers and serves their catch-up (internal/repl).
	hub *repl.Hub

	// shardHubs, on a sharded durable namespace, holds one hub per shard
	// engine plus a final one for the boundary engine — each shard's epoch
	// stream is independently subscribable (CmdSubscribe's shard selector);
	// hub is nil.
	shardHubs []*repl.Hub

	// ehub fans connectivity events out to CmdSubscribeEvents streams. Every
	// primary-side namespace has one (nil on a replica — event subscriptions
	// redirect to the primary, whose epoch pipeline orders the events). The
	// hub is wired into the namespace's diff stream lazily, while at least
	// one subscriber exists (evRefs/evCancel under evMu), so an idle sharded
	// namespace never pays the per-epoch global label recompose.
	ehub     *pubsub.Hub
	evMu     sync.Mutex
	evRefs   int
	evCancel func()

	mu     sync.RWMutex
	closed bool
	g      *conn.Graph
	b      *conn.Batcher

	// sh replaces g/b on a sharded namespace: writes scatter across its
	// engines and reads compose through the boundary graph (internal/shard).
	// Sharded namespaces have no single replication position, so batch and
	// read responses carry Seq 0 (clients cannot fence replica reads on
	// them; the replica manager skips sharded namespaces entirely).
	sh *shard.Coordinator
}

// seq returns the namespace's replication position for read responses: the
// last fully applied epoch — on a primary the Batcher's applied seq (which
// trails WALSeq by at most the epoch being applied), on a replica the
// follower's applied seq; zero for a memory-only namespace. Sampled before
// a read it never exceeds the state the read reflects, the direction the
// client's staleness fence depends on. Callers hold ns.mu (either mode).
func (ns *namespace) seq() uint64 {
	if ns.readonly {
		return ns.applied.Load()
	}
	if ns.sh != nil {
		return 0 // no single-number position across k WAL streams
	}
	return ns.b.AppliedSeq()
}

// retainEvents wires the namespace's diff stream into its event hub when the
// first event subscriber arrives; releaseEvents unwires it when the last one
// leaves. Feed runs on the dispatcher (or, sharded, on the composing
// engine's dispatcher) and never blocks — subscriber buffers absorb or drop.
func (ns *namespace) retainEvents() {
	ns.evMu.Lock()
	defer ns.evMu.Unlock()
	ns.evRefs++
	if ns.evRefs > 1 {
		return
	}
	if ns.sh != nil {
		ns.evCancel = ns.sh.SubscribeDiffs(ns.ehub.Feed) //conn:dispatcher-entry
	} else {
		ns.evCancel = ns.b.SubscribeDiffs(ns.ehub.Feed) //conn:dispatcher-entry
	}
}

func (ns *namespace) releaseEvents() {
	ns.evMu.Lock()
	defer ns.evMu.Unlock()
	ns.evRefs--
	if ns.evRefs == 0 && ns.evCancel != nil {
		ns.evCancel()
		ns.evCancel = nil
	}
}

// New builds a server and, if opts.DataDir is set, restores every durable
// namespace directory found there.
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:       opts,
		namespaces: make(map[string]*namespace),
		conns:      make(map[net.Conn]struct{}),
		subConns:   make(map[net.Conn]struct{}),
	}
	if opts.WALCodec != "" {
		if _, ok := wal.CodecByName(opts.WALCodec); !ok {
			return nil, fmt.Errorf("server: unknown WAL codec %q", opts.WALCodec)
		}
	}
	if opts.ReplicaOf != "" {
		if opts.DataDir != "" {
			return nil, errors.New("server: replica mode is memory-only; -replica-of excludes -data")
		}
		s.startReplication()
		return s, nil
	}
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
		ents, err := os.ReadDir(opts.DataDir)
		if err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
		for _, e := range ents {
			if !e.IsDir() || !validName(e.Name()) {
				continue
			}
			name := e.Name()
			dir := filepath.Join(opts.DataDir, name)
			// A shard meta file marks a sharded namespace: restore every
			// shard engine (checkpoint + WAL tail each) under one coordinator.
			if k, n, found, err := shard.ReadMeta(dir); err != nil {
				return nil, fmt.Errorf("server: restore namespace %q: %w", name, err)
			} else if found {
				coord, err := shard.New(n, k, s.shardOpts(dir))
				if err != nil {
					return nil, fmt.Errorf("server: restore namespace %q: %w", name, err)
				}
				ns := &namespace{name: name, durable: true, sh: coord, ehub: pubsub.NewHub()}
				ns.shardHubs = newShardHubs(coord, dir)
				s.namespaces[name] = ns
				s.logf("restored sharded namespace %q (n=%d, %d shards)", name, n, k)
				continue
			}
			g, err := conn.Restore(dir)
			if errors.Is(err, conn.ErrNoDurableState) {
				continue // empty leftover directory; nothing to serve
			}
			if err != nil {
				return nil, fmt.Errorf("server: restore namespace %q: %w", name, err)
			}
			b, err := newBatcher(g, s.batcherOpts(dir))
			if err != nil {
				return nil, fmt.Errorf("server: namespace %q: %w", name, err)
			}
			ns := &namespace{name: name, durable: true, g: g, b: b, ehub: pubsub.NewHub()}
			ns.hub = repl.NewHub(b, dir, g.N())
			s.namespaces[name] = ns
			s.logf("restored namespace %q (n=%d, %d edges)", name, g.N(), g.NumEdges())
		}
	}
	return s, nil
}

func (s *Server) batcherOpts(durDir string) []conn.BatcherOption {
	var o []conn.BatcherOption
	if s.opts.MaxBatch > 0 {
		o = append(o, conn.WithMaxBatch(s.opts.MaxBatch))
	}
	if s.opts.MaxDelay > 0 {
		o = append(o, conn.WithMaxDelay(s.opts.MaxDelay))
	}
	if durDir != "" {
		o = append(o, conn.WithDurability(durDir))
		if s.opts.WALCodec != "" {
			o = append(o, conn.WithWALCodec(s.opts.WALCodec))
		}
		if s.opts.GroupSyncK > 1 {
			o = append(o, conn.WithGroupSync(s.opts.GroupSyncK, s.opts.GroupSyncMaxWait))
		}
		if s.opts.CheckpointEvery > 1 {
			o = append(o, conn.WithCheckpointEvery(s.opts.CheckpointEvery))
		}
	}
	return o
}

// shardOpts mirrors batcherOpts for a shard coordinator. The engine treats
// MaxDelay 0 as "commit immediately", so the conn default is restored here
// explicitly — a zero server option must mean the same thing on both paths.
func (s *Server) shardOpts(durDir string) shard.Options {
	o := shard.Options{
		MaxBatch:         s.opts.MaxBatch,
		MaxDelay:         s.opts.MaxDelay,
		DurDir:           durDir,
		GroupSyncK:       s.opts.GroupSyncK,
		GroupSyncMaxWait: s.opts.GroupSyncMaxWait,
		CheckpointEvery:  s.opts.CheckpointEvery,
	}
	if s.opts.WALCodec != "" {
		// Validated in New; resolve once so every shard engine shares it.
		o.WALCodec, _ = wal.CodecByName(s.opts.WALCodec)
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = engine.DefaultMaxDelay
	}
	return o
}

// newShardHubs builds one replication hub per shard engine (boundary engine
// last), each rooted in that engine's own durability directory so catch-up
// reads the right checkpoint and WAL. Only called for durable namespaces.
func newShardHubs(coord *shard.Coordinator, dir string) []*repl.Hub {
	engines := coord.Engines()
	hubs := make([]*repl.Hub, len(engines))
	for i, e := range engines {
		hubs[i] = repl.NewHub(e, filepath.Join(dir, shard.DirName(i, coord.Shards())), coord.N())
	}
	return hubs
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// validName reports whether a namespace name is acceptable: 1..128 bytes of
// [a-zA-Z0-9._-], not starting with '.' — safe as a directory name and free
// of path separators.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown closes it. It returns nil
// after a Shutdown-initiated stop, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if flt := chaos.Inject(chaos.SiteServerAccept); flt != nil {
			if flt.Action == chaos.ActDelay {
				flt.Sleep() // accept latency: queued dials wait it out
			} else {
				c.Close() // connection reset before a single frame is read
				continue
			}
		}
		s.connMu.Lock()
		// The draining check, registration, and wg.Add share the registry
		// lock: Shutdown sets draining before sweeping the registry under
		// this lock, so a conn that observes !draining here is registered
		// and counted before the sweep and the wg.Wait that follows it.
		if s.draining.Load() {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.connMu.Unlock()
		go s.handleConn(c)
	}
}

// Shutdown is the graceful drain: stop accepting, nudge every connection's
// read loop to stop at the next frame boundary, wait until each in-flight
// request has committed and its response has been written, then flush and
// checkpoint every durable namespace and quiesce all Batchers. Safe to call
// once; subsequent calls return immediately.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		return
	}
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	// Wake blocked readers without tearing down the connections: in-flight
	// requests still need their responses written.
	s.connMu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
	// Replication winds down before the connection wait: follower loops
	// (replica mode) must finish their in-flight apply before Batchers
	// close, and stopping the hubs terminates subscription streams, whose
	// pump goroutines the connection handlers are waiting on.
	if s.replMgr != nil {
		s.replMgr.stopAll()
	}
	s.mu.RLock()
	for _, ns := range s.namespaces {
		if ns.hub != nil {
			ns.hub.Stop()
		}
		for _, h := range ns.shardHubs {
			h.Stop()
		}
		if ns.ehub != nil {
			ns.ehub.Close() // wakes event pumps via their Done channels
		}
	}
	s.mu.RUnlock()
	// Sever subscription connections outright: their pumps are the one
	// place a handler can sit in a blocking TCP write to a peer that
	// stopped reading, and the read deadline above cannot wake those.
	// Ordinary in-flight responses are unaffected — only stream conns are
	// registered here.
	s.connMu.Lock()
	for c := range s.subConns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	s.logf("connections drained")

	s.mu.Lock()
	defer s.mu.Unlock()
	for name, ns := range s.namespaces {
		ns.mu.Lock()
		ns.closed = true
		ns.mu.Unlock()
		if ns.sh != nil {
			ns.sh.Flush()
			if ns.durable {
				if _, err := ns.sh.Checkpoint(); err != nil {
					s.logf("drain checkpoint of %q failed: %v", name, err)
				} else {
					s.logf("namespace %q checkpointed (all shards)", name)
				}
			}
			if err := ns.sh.Close(); err != nil {
				s.logf("closing sharded namespace %q: %v", name, err)
			}
			continue
		}
		ns.b.Flush()
		if ns.durable {
			if _, err := ns.b.Checkpoint(); err != nil {
				s.logf("drain checkpoint of %q failed: %v", name, err)
			} else {
				s.logf("namespace %q checkpointed", name)
			}
		}
		ns.b.Close()
	}
}

// connIO is a connection's buffered read and write halves.
type connIO struct {
	br *bufio.Reader
	bw *bufio.Writer
}

func newConnReader(c net.Conn) *connIO {
	return &connIO{
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// handleConn reads frames, dispatching each request to its own goroutine so
// a pipelined client's frames block in the Batcher concurrently — that is
// what coalesces them into one epoch. Responses are written as they
// complete, matched by request id, serialized by a per-connection lock.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()
	r := newConnReader(c)
	var (
		wmu   sync.Mutex
		reqWG sync.WaitGroup
	)
	write := func(resp *wire.Response) error {
		if flt := chaos.Inject(chaos.SiteServerConnWrite); flt != nil {
			if flt.Action == chaos.ActDelay {
				flt.Sleep() // response latency
			} else {
				// Reset under the response: the operation committed but the
				// acknowledgement is lost — the client sees a transport
				// error and must treat the outcome as unknown.
				c.Close()
				return flt.Err()
			}
		}
		payload, err := wire.EncodeResponse(resp)
		if err != nil {
			return nil // response of our own making failed to encode: drop it
		}
		wmu.Lock()
		defer wmu.Unlock()
		// Serialized writes, flushed per response: a pipelined client is
		// already decoupled from per-response latency.
		if err := wire.WriteFrame(r.bw, payload); err != nil {
			return err
		}
		return r.bw.Flush()
	}
	for {
		payload, err := wire.ReadFrame(r.br)
		if err != nil {
			break // EOF, drain deadline, or framing loss: stop reading
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			break // framing is fine but the peer is speaking garbage
		}
		if flt := chaos.Inject(chaos.SiteServerConnRead); flt != nil {
			if flt.Action == chaos.ActDelay {
				flt.Sleep() // request latency before dispatch
			} else {
				break // reset mid-request: in-flight responses still drain
			}
		}
		if s.draining.Load() {
			write(&wire.Response{ID: req.ID, Status: wire.StatusDraining,
				Msg: "server is draining"})
			continue
		}
		if req.Cmd == wire.CmdSubscribe || req.Cmd == wire.CmdSubscribeEvents {
			// A subscription owns the connection's write side for its
			// lifetime (frames from other pipelined requests still
			// interleave safely, but the stream ends by closing the
			// connection) — followers dial a dedicated connection per
			// subscription. The conn is registered so Shutdown can sever a
			// pump blocked in a TCP write to a stalled follower; the drain
			// must never wait on a peer that stopped reading.
			s.connMu.Lock()
			s.subConns[c] = struct{}{}
			s.connMu.Unlock()
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				if req.Cmd == wire.CmdSubscribe {
					s.subscribe(req, write)
				} else {
					s.subscribeEvents(req, write)
				}
				s.connMu.Lock()
				delete(s.subConns, c)
				s.connMu.Unlock()
				c.Close()
			}()
			continue
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			write(s.handle(req))
		}()
	}
	reqWG.Wait()
	wmu.Lock()
	r.bw.Flush()
	wmu.Unlock()
}

// subscribe serves one epoch-stream subscription: resolve the namespace's
// hub and pump its stream through the connection until the stream ends
// (follower gone, hub stopped, follower lagging). It runs on the request's
// goroutine; the caller closes the connection when it returns.
func (s *Server) subscribe(req *wire.Request, write func(*wire.Response) error) {
	fail := func(st wire.Status, format string, args ...any) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: fmt.Sprintf(format, args...)}
	}
	if s.opts.ReplicaOf != "" {
		write(fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf))
		return
	}
	ns, resp := s.lookup(req, fail)
	if resp != nil {
		write(resp)
		return
	}
	ns.mu.RLock()
	hub := ns.hub
	if ns.sh != nil {
		// Sharded namespaces stream per engine: the request names which one.
		if idx := int(req.Shards); idx < len(ns.shardHubs) {
			hub = ns.shardHubs[idx]
		} else if ns.shardHubs != nil {
			ns.mu.RUnlock()
			write(fail(wire.StatusBadRequest,
				"namespace %q: shard %d out of range [0, %d]",
				req.NS, req.Shards, len(ns.shardHubs)-1))
			return
		}
	} else if req.Shards != 0 {
		ns.mu.RUnlock()
		write(fail(wire.StatusBadRequest,
			"namespace %q is not sharded; subscribe with shard 0", req.NS))
		return
	}
	closed := ns.closed
	ns.mu.RUnlock()
	if closed || hub == nil {
		if closed {
			write(fail(wire.StatusNotFound, "namespace %q: dropped", req.NS))
		} else {
			write(fail(wire.StatusBadRequest,
				"namespace %q is not durable; only durable namespaces replicate", req.NS))
		}
		return
	}
	// The stream deliberately runs outside the namespace read-lock: Drop
	// and Shutdown stop the hub first, which terminates this pump before
	// the Batcher closes.
	err := hub.Stream(req.FromSeq, func(f repl.Frame) error {
		return write(&wire.Response{ID: req.ID, Snapshot: f.Snapshot,
			Delta: f.Delta, Epoch: f.Epoch, EpochRaw: f.EpochRaw})
	})
	if err != nil {
		// Best effort: tell a still-connected follower why the stream ended
		// (a lagging follower reconnects into catch-up).
		write(fail(wire.StatusInternal, "subscription ended: %v", err))
	}
}

// subscribeEvents serves one CmdSubscribeEvents stream: register the
// subscriber with the namespace's event hub, wire the hub into the diff
// stream (first subscriber only — retainEvents), acknowledge with a hello
// event, then pump the subscriber's buffer into the connection until the
// peer goes away or the namespace does. It runs on the request's goroutine;
// the caller closes the connection when it returns.
func (s *Server) subscribeEvents(req *wire.Request, write func(*wire.Response) error) {
	fail := func(st wire.Status, format string, args ...any) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: fmt.Sprintf(format, args...)}
	}
	if s.opts.ReplicaOf != "" {
		// A replica's follower may swap its whole graph during snapshot
		// catch-up — a labelling jump, not a stream of events. Events come
		// from the primary, whose epoch pipeline totally orders them.
		write(fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf))
		return
	}
	ns, resp := s.lookup(req, fail)
	if resp != nil {
		write(resp)
		return
	}
	ns.mu.RLock()
	closed := ns.closed
	var n int32
	if ns.sh != nil {
		n = int32(ns.sh.N())
	} else {
		n = int32(ns.g.N())
	}
	ns.mu.RUnlock()
	if closed {
		write(fail(wire.StatusNotFound, "namespace %q: dropped", req.NS))
		return
	}
	if !req.Comps && len(req.Pairs) == 0 {
		write(fail(wire.StatusBadRequest,
			"event subscription names no component events and no watch pairs"))
		return
	}
	pairs := make([]pubsub.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p.U < 0 || p.U >= n || p.V < 0 || p.V >= n {
			write(fail(wire.StatusBadRequest,
				"watch pair {%d, %d} out of range [0, %d)", p.U, p.V, n))
			return
		}
		pairs[i] = pubsub.Pair{U: p.U, V: p.V}
	}
	sub := ns.ehub.Subscribe(req.Comps, pairs)
	if sub == nil {
		write(fail(wire.StatusNotFound, "namespace %q: dropped", req.NS))
		return
	}
	defer ns.ehub.Cancel(sub)
	ns.retainEvents()
	defer ns.releaseEvents()
	// Hello first: it acknowledges the subscription, and every event that
	// follows reflects a transition that committed after it was sent.
	if write(&wire.Response{ID: req.ID,
		Event: &wire.EventBody{Kind: uint8(pubsub.KindHello)}}) != nil {
		return
	}
	for {
		select {
		case ev := <-sub.C():
			if write(eventResponse(req.ID, ev)) != nil {
				return
			}
		case <-sub.Done():
			// Hub closed: the namespace was dropped or the server is
			// draining. Best effort — the peer may already be gone.
			write(fail(wire.StatusNotFound, "namespace %q: dropped", req.NS))
			return
		}
	}
}

func eventResponse(id uint64, ev pubsub.Event) *wire.Response {
	return &wire.Response{ID: id, Event: &wire.EventBody{
		Kind: uint8(ev.Kind), Epoch: ev.Epoch, Seq: ev.Seq,
		Label: ev.Label, U: ev.U, V: ev.V, Others: ev.Others,
	}}
}

func queryResponse(id uint64, res query.Result) *wire.Response {
	return &wire.Response{ID: id, Query: &wire.QueryBody{
		Seq: res.Seq, Found: res.Found, Size: res.Size, Count: res.Count,
		Verts: res.Verts, Hist: res.Hist,
	}}
}

// handle executes one request. It runs on a per-request goroutine and may
// block for an epoch; returning the response is the acknowledgement.
func (s *Server) handle(req *wire.Request) *wire.Response {
	fail := func(st wire.Status, format string, args ...any) *wire.Response {
		return &wire.Response{ID: req.ID, Status: st, Msg: fmt.Sprintf(format, args...)}
	}
	switch req.Cmd {
	case wire.CmdPing:
		return &wire.Response{ID: req.ID}
	case wire.CmdCreate:
		if s.opts.ReplicaOf != "" {
			return fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf)
		}
		return s.create(req, fail)
	case wire.CmdDrop:
		if s.opts.ReplicaOf != "" {
			return fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf)
		}
		return s.drop(req, fail)
	case wire.CmdList:
		return s.list(req)
	}

	// Everything else targets an existing namespace. The read lock is held
	// across the whole operation: Drop/Shutdown close a Batcher only under
	// the write lock, so b is never closed mid-request.
	ns, resp := s.lookup(req, fail)
	if resp != nil {
		return resp
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	if ns.closed {
		return fail(wire.StatusNotFound, "namespace %q: dropped", req.NS)
	}
	switch req.Cmd {
	case wire.CmdBatch:
		if ns.sh != nil {
			// Sharded path: the coordinator routes each op to its partition's
			// engine (cross-shard edges to the boundary engine) and answers
			// queries after every mutation future resolves. Atomicity is per
			// engine; Seq is 0 — k WAL streams have no single position.
			cops := make([]coalesce.Op, len(req.Ops))
			for i, op := range req.Ops {
				cops[i] = coalesce.Op{Kind: coalesce.Kind(op.Kind), U: op.U, V: op.V}
			}
			bits, err := ns.sh.Apply(cops)
			if err != nil {
				return fail(wire.StatusBadRequest, "%v", err)
			}
			if bits == nil {
				bits = []bool{}
			}
			return &wire.Response{ID: req.ID, Bits: bits}
		}
		ops := make([]conn.Op, len(req.Ops))
		mutates := false
		for i, op := range req.Ops {
			ops[i] = conn.Op{Kind: conn.OpKind(op.Kind), U: op.U, V: op.V}
			mutates = mutates || op.Kind != wire.KindQuery
		}
		if mutates && ns.readonly {
			// Typed redirect: the message IS the primary's address, which the
			// client package lifts into a RedirectError.
			return fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf)
		}
		// A replica's batcher has no WAL, so its position is the applied
		// seq — sampled BEFORE executing: a reported seq must never exceed
		// the state the answer reflects, or it would defeat the client's
		// read-your-writes fence.
		seqBefore := ns.seq()
		bits, epochSeq, err := ns.b.DoSeq(ops)
		if err != nil {
			return fail(wire.StatusBadRequest, "%v", err)
		}
		if bits == nil {
			bits = []bool{}
		}
		if !ns.readonly {
			// On a primary DoSeq is exact (the committed epoch's own seq),
			// which keeps a writer's fence free of later writers' epochs.
			seqBefore = epochSeq
		}
		return &wire.Response{ID: req.ID, Bits: bits, Seq: seqBefore}
	case wire.CmdReadNow, wire.CmdReadRecent:
		nv := 0
		if ns.sh != nil {
			nv = ns.sh.N()
		} else {
			nv = ns.g.N()
		}
		n := int32(nv)
		qs := make([]conn.Edge, len(req.Pairs))
		for i, p := range req.Pairs {
			if p.U < 0 || p.U >= n || p.V < 0 || p.V >= n {
				return fail(wire.StatusBadRequest,
					"vertex pair {%d, %d} out of range [0, %d)", p.U, p.V, n)
			}
			qs[i] = conn.Edge{U: p.U, V: p.V}
		}
		if ns.sh != nil {
			// Both read tiers are served read-committed on a sharded
			// namespace: the scatter-gather composition is the same, and the
			// boundary index is already the "recent" structure.
			bits, err := ns.sh.ConnectedBatch(qs)
			if err != nil {
				return fail(wire.StatusInternal, "%v", err)
			}
			if bits == nil {
				bits = []bool{}
			}
			return &wire.Response{ID: req.ID, Bits: bits}
		}
		// Position sampled BEFORE the read: the answer may reflect a newer
		// state than it claims (harmlessly conservative), never an older
		// one — the direction the client's staleness fence depends on.
		seq := ns.seq()
		var bits []bool
		if req.Cmd == wire.CmdReadNow {
			bits = ns.b.ReadNowBatch(qs)
		} else {
			bits = ns.b.ReadRecentBatch(qs)
		}
		if bits == nil {
			bits = []bool{}
		}
		return &wire.Response{ID: req.ID, Bits: bits, Seq: seq}
	case wire.CmdQuery:
		qreq := query.Request{Kind: query.Kind(req.QKind), Linearized: req.Linearized,
			U: req.U, V: req.V, K: req.K}
		if ns.sh != nil {
			res, err := ns.sh.Query(qreq)
			if err != nil {
				return fail(wire.StatusBadRequest, "%v", err)
			}
			return queryResponse(req.ID, res)
		}
		if qreq.Linearized && ns.readonly {
			// A linearized query must observe every acknowledged write;
			// only the primary can promise that.
			return fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf)
		}
		// Replica position sampled BEFORE the read, like the read tiers: the
		// local engine's seq counts locally applied epochs, not primary
		// stream positions, so the follower's applied seq replaces it.
		seqBefore := ns.seq()
		res, err := ns.b.Query(qreq)
		if err != nil {
			return fail(wire.StatusBadRequest, "%v", err)
		}
		if ns.readonly {
			res.Seq = seqBefore
		}
		return queryResponse(req.ID, res)
	case wire.CmdStats:
		if ns.sh != nil {
			ws := shardedStats(ns)
			addEventStats(ns, &ws)
			return &wire.Response{ID: req.ID, Stats: ws}
		}
		st := ns.b.Stats()
		ws := wire.Stats{
			Epochs:            uint64(st.Epochs),
			Ops:               uint64(st.Ops),
			MaxEpoch:          uint64(st.MaxEpoch),
			SnapshotPublishes: uint64(st.SnapshotPublishes),
			SnapshotRebuilds:  uint64(st.SnapshotRebuilds),
			WALRecords:        uint64(st.WALRecords),
			WALBytes:          uint64(st.WALBytes),
			WALRawBytes:       uint64(st.WALRawBytes),
			WALFsyncs:         uint64(st.WALFsyncs),
			WALFsyncsSaved:    uint64(st.WALFsyncsSaved),
			WALAppendNanos:    uint64(st.WALAppendTime.Nanoseconds()),
			Checkpoints:       uint64(st.Checkpoints),
			CheckpointsDelta:  uint64(st.CheckpointsDelta),
			AppliedSeq:        ns.applied.Load(),
		}
		if ns.hub != nil {
			subs, shipped, lag := ns.hub.Stats()
			ws.Subscribers = uint64(subs)
			ws.LastShippedSeq = shipped
			ws.MaxFollowerLag = lag
		}
		addEventStats(ns, &ws)
		return &wire.Response{ID: req.ID, Stats: ws}
	case wire.CmdCheckpoint:
		if ns.readonly {
			return fail(wire.StatusReadOnly, "%s", s.opts.ReplicaOf)
		}
		if !ns.durable {
			return fail(wire.StatusBadRequest, "namespace %q is not durable", req.NS)
		}
		if ns.sh != nil {
			// Every shard engine checkpoints; the response names the
			// namespace's directory, which now holds one fresh checkpoint
			// per shard.
			if _, err := ns.sh.Checkpoint(); err != nil {
				return fail(wire.StatusInternal, "checkpoint: %v", err)
			}
			return &wire.Response{ID: req.ID, Path: filepath.Join(s.opts.DataDir, ns.name)}
		}
		path, err := ns.b.Checkpoint()
		if err != nil {
			return fail(wire.StatusInternal, "checkpoint: %v", err)
		}
		return &wire.Response{ID: req.ID, Path: path}
	}
	return fail(wire.StatusBadRequest, "unknown command %d", req.Cmd)
}

func (s *Server) lookup(req *wire.Request, fail failFunc) (*namespace, *wire.Response) {
	s.mu.RLock()
	ns, ok := s.namespaces[req.NS]
	s.mu.RUnlock()
	if !ok {
		return nil, fail(wire.StatusNotFound, "namespace %q does not exist", req.NS)
	}
	return ns, nil
}

type failFunc func(st wire.Status, format string, args ...any) *wire.Response

// addEventStats folds the namespace's event-hub counters into a stats
// response; a replica namespace has no hub and reports zeros.
func addEventStats(ns *namespace, ws *wire.Stats) {
	if ns.ehub == nil {
		return
	}
	subs, delivered, dropped := ns.ehub.Stats()
	ws.EventSubscribers = uint64(subs)
	ws.EventsDelivered = uint64(delivered)
	ws.EventsDropped = uint64(dropped)
}

// shardedStats aggregates a sharded namespace's counters across its engines
// and attaches the per-engine breakdown (shards 0..k-1, then the boundary
// engine). Caller holds ns.mu.
func shardedStats(ns *namespace) wire.Stats {
	var ws wire.Stats
	for _, es := range ns.sh.ShardStats() {
		st := es.Stats
		ws.Epochs += uint64(st.Epochs)
		ws.Ops += uint64(st.Ops)
		if m := uint64(st.MaxEpoch); m > ws.MaxEpoch {
			ws.MaxEpoch = m
		}
		ws.SnapshotPublishes += uint64(st.SnapshotPublishes)
		ws.SnapshotRebuilds += uint64(st.SnapshotRebuilds)
		ws.WALRecords += uint64(st.WALRecords)
		ws.WALBytes += uint64(st.WALBytes)
		ws.WALRawBytes += uint64(st.WALRawBytes)
		ws.WALFsyncs += uint64(st.WALFsyncs)
		ws.WALFsyncsSaved += uint64(st.WALFsyncsSaved)
		ws.WALAppendNanos += uint64(st.WALAppendTime.Nanoseconds())
		ws.Checkpoints += uint64(st.Checkpoints)
		ws.CheckpointsDelta += uint64(st.CheckpointsDelta)
		ws.Shards = append(ws.Shards, wire.ShardStats{
			Epochs:     uint64(st.Epochs),
			Ops:        uint64(st.Ops),
			WALRecords: uint64(st.WALRecords),
			WALSeq:     es.WALSeq,
			WALFloor:   es.WALFloor,
			AppliedSeq: es.AppliedSeq,
		})
	}
	for _, h := range ns.shardHubs {
		subs, shipped, lag := h.Stats()
		ws.Subscribers += uint64(subs)
		if shipped > ws.LastShippedSeq {
			ws.LastShippedSeq = shipped
		}
		if lag > ws.MaxFollowerLag {
			ws.MaxFollowerLag = lag
		}
	}
	return ws
}

func (s *Server) create(req *wire.Request, fail failFunc) *wire.Response {
	if !validName(req.NS) {
		return fail(wire.StatusBadRequest, "invalid namespace name %q", req.NS)
	}
	if req.N == 0 || req.N > 1<<30 {
		return fail(wire.StatusBadRequest, "vertex count %d out of range [1, 2^30]", req.N)
	}
	if req.Durable && s.opts.DataDir == "" {
		return fail(wire.StatusBadRequest, "durable namespaces need a server data directory")
	}
	shards := int(req.Shards)
	if shards == 0 {
		shards = s.opts.DefaultShards
	}
	if shards > maxShards {
		return fail(wire.StatusBadRequest, "shard count %d out of range [0, %d]", shards, maxShards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.namespaces[req.NS]; ok {
		return fail(wire.StatusExists, "namespace %q already exists", req.NS)
	}
	var dir string
	if req.Durable {
		dir = filepath.Join(s.opts.DataDir, req.NS)
		// Refuse to adopt a leftover durable directory under a fresh Create:
		// the caller asked for a new namespace, not whatever a previous
		// instance left behind (restart-restore happens in New; drop removes
		// the directory entirely, and both Create and Drop run under s.mu,
		// so a non-empty directory here really is leftover state). A cheap
		// existence probe only — never a full restore under the server lock.
		ents, err := os.ReadDir(dir)
		if err != nil && !os.IsNotExist(err) {
			return fail(wire.StatusInternal, "namespace %q directory: %v", req.NS, err)
		}
		if len(ents) > 0 {
			return fail(wire.StatusExists,
				"namespace %q has leftover durable state; restart the server to restore it or drop it", req.NS)
		}
	}
	if shards >= 2 {
		coord, err := shard.New(int(req.N), shards, s.shardOpts(dir))
		if err != nil {
			return fail(wire.StatusInternal, "create %q: %v", req.NS, err)
		}
		ns := &namespace{name: req.NS, durable: req.Durable, sh: coord, ehub: pubsub.NewHub()}
		if req.Durable {
			ns.shardHubs = newShardHubs(coord, dir)
		}
		s.namespaces[req.NS] = ns
		return &wire.Response{ID: req.ID}
	}
	g := conn.New(int(req.N))
	b, err := newBatcher(g, s.batcherOpts(dir))
	if err != nil {
		return fail(wire.StatusInternal, "create %q: %v", req.NS, err)
	}
	ns := &namespace{name: req.NS, durable: req.Durable, g: g, b: b, ehub: pubsub.NewHub()}
	if req.Durable {
		ns.hub = repl.NewHub(b, dir, g.N())
	}
	s.namespaces[req.NS] = ns
	return &wire.Response{ID: req.ID}
}

// newBatcher converts conn.NewBatcher's environmental panics (unwritable
// data subdirectory, WAL open failure) into errors: one tenant's bad
// directory must never take down the whole server.
func newBatcher(g *conn.Graph, opts []conn.BatcherOption) (b *conn.Batcher, err error) {
	defer func() {
		if r := recover(); r != nil {
			b, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return conn.NewBatcher(g, opts...), nil
}

func (s *Server) drop(req *wire.Request, fail failFunc) *wire.Response {
	// The whole drop — map removal, quiesce, and durable-state deletion —
	// runs under s.mu so a concurrent Create of the same name cannot
	// resurrect the directory while RemoveAll is sweeping it. Lock order
	// s.mu → ns.mu matches every request path (lookup releases s.mu before
	// taking ns.mu), and waiting out in-flight requests here is bounded by
	// one epoch per request.
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.namespaces[req.NS]
	if !ok {
		return fail(wire.StatusNotFound, "namespace %q does not exist", req.NS)
	}
	delete(s.namespaces, req.NS)
	// Terminate subscription streams first: their pumps run outside the
	// namespace lock and must not outlive the Batcher.
	if ns.hub != nil {
		ns.hub.Stop()
	}
	for _, h := range ns.shardHubs {
		h.Stop()
	}
	if ns.ehub != nil {
		ns.ehub.Close()
	}
	// The write lock waits out every in-flight request on this namespace;
	// new lookups already miss the map.
	ns.mu.Lock()
	ns.closed = true
	ns.mu.Unlock()
	if ns.sh != nil {
		if err := ns.sh.Close(); err != nil {
			s.logf("drop %q: closing coordinator: %v", req.NS, err)
		}
	} else {
		ns.b.Close()
	}
	if ns.durable {
		if err := os.RemoveAll(filepath.Join(s.opts.DataDir, ns.name)); err != nil {
			return fail(wire.StatusInternal, "drop %q: %v", req.NS, err)
		}
	}
	return &wire.Response{ID: req.ID}
}

func (s *Server) list(req *wire.Request) *wire.Response {
	s.mu.RLock()
	infos := make([]wire.NSInfo, 0, len(s.namespaces))
	for _, ns := range s.namespaces {
		// ns.g is read under the namespace lock: on a replica the follower's
		// snapshot catch-up swaps the graph wholesale (ApplySnapshot).
		ns.mu.RLock()
		var n, shards int
		if ns.sh != nil {
			n, shards = ns.sh.N(), ns.sh.Shards()
		} else {
			n = ns.g.N()
		}
		ns.mu.RUnlock()
		infos = append(infos, wire.NSInfo{Name: ns.name, N: n, Durable: ns.durable, Shards: shards})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return &wire.Response{ID: req.ID, Namespaces: infos}
}
