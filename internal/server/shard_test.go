package server

import (
	"math/rand"
	"testing"

	conn "repro"
	"repro/client"
	"repro/internal/unionfind"
)

// shardOracle mirrors a sharded namespace's batch semantics sequentially:
// inserts credit first staging, deletes run against the post-insert set,
// queries answer the post-update state.
type shardOracle struct {
	n     int
	edges map[[2]int32]bool
}

func newShardOracle(n int) *shardOracle {
	return &shardOracle{n: n, edges: map[[2]int32]bool{}}
}

func canon(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func (o *shardOracle) apply(ops []conn.Op) []bool {
	res := make([]bool, len(ops))
	for i, op := range ops {
		if op.Kind != conn.OpInsert || op.U == op.V {
			continue
		}
		if k := canon(op.U, op.V); !o.edges[k] {
			o.edges[k] = true
			res[i] = true
		}
	}
	for i, op := range ops {
		if op.Kind != conn.OpDelete || op.U == op.V {
			continue
		}
		if k := canon(op.U, op.V); o.edges[k] {
			delete(o.edges, k)
			res[i] = true
		}
	}
	var uf *unionfind.UF
	for i, op := range ops {
		if op.Kind != conn.OpQuery {
			continue
		}
		if uf == nil {
			uf = o.uf()
		}
		res[i] = uf.Connected(op.U, op.V)
	}
	return res
}

func (o *shardOracle) uf() *unionfind.UF {
	uf := unionfind.New(o.n)
	for k := range o.edges {
		uf.Union(k[0], k[1])
	}
	return uf
}

func randShardOps(rng *rand.Rand, n, count int) []conn.Op {
	ops := make([]conn.Op, count)
	for i := range ops {
		kind := conn.OpInsert
		switch r := rng.Intn(100); {
		case r < 45:
		case r < 75:
			kind = conn.OpDelete
		default:
			kind = conn.OpQuery
		}
		ops[i] = conn.Op{Kind: kind, U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return ops
}

// TestShardedLoopback drives a durable sharded namespace end to end over the
// wire: create with an explicit shard count, mixed randomized traffic
// checked against a sequential oracle (plain frames and partition-routed
// DoSharded frames), per-shard stats, a wire checkpoint, graceful drain,
// restart, and per-shard restore — every acked write visible afterwards.
func TestShardedLoopback(t *testing.T) {
	const (
		nVerts = 128
		shards = 4
	)
	rounds := 60
	if testing.Short() {
		rounds = 20
	}

	data := t.TempDir()
	s, addr, serveErr := start(t, Options{DataDir: data})

	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := cl.CreateSharded("social", nVerts, true, shards); err != nil {
		t.Fatalf("create sharded: %v", err)
	}

	infos, err := cl.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(infos) != 1 || infos[0].Shards != shards || !infos[0].Durable || infos[0].N != nVerts {
		t.Fatalf("list = %+v, want one durable namespace with %d shards", infos, shards)
	}

	ns := cl.Namespace("social")
	o := newShardOracle(nVerts)
	rng := newRng(4242)
	for r := 0; r < rounds; r++ {
		ops := randShardOps(rng, nVerts, 1+rng.Intn(24))
		var got []bool
		// Alternate the plain single-frame path with the client's
		// partition-routed path: both must agree with the oracle.
		if r%2 == 0 {
			got, err = ns.Do(ops)
		} else {
			got, err = ns.DoSharded(shards, ops)
		}
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		want := o.apply(ops)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("round %d op %d (%+v): got %v, oracle says %v",
					r, i, ops[i], got[i], want[i])
			}
		}
	}

	// Read tiers answer the same composition.
	uf := o.uf()
	var qs []conn.Edge
	for u := int32(0); u < nVerts; u += 3 {
		for v := u + 1; v < nVerts; v += 5 {
			qs = append(qs, conn.Edge{U: u, V: v})
		}
	}
	for _, tier := range []func([]conn.Edge) ([]bool, error){ns.ReadNowBatch, ns.ReadRecentBatch} {
		bits, err := tier(qs)
		if err != nil {
			t.Fatalf("read tier: %v", err)
		}
		for i, q := range qs {
			if want := uf.Connected(q.U, q.V); bits[i] != want {
				t.Fatalf("read {%d,%d}: got %v want %v", q.U, q.V, bits[i], want)
			}
		}
	}

	// Stats carry the per-shard breakdown: k shard engines + the boundary.
	st, err := ns.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(st.Shards) != shards+1 {
		t.Fatalf("stats has %d shard entries, want %d", len(st.Shards), shards+1)
	}
	var sumOps uint64
	for _, sh := range st.Shards {
		sumOps += sh.Ops
	}
	if sumOps == 0 || st.Ops != sumOps {
		t.Fatalf("aggregate ops %d != per-shard sum %d", st.Ops, sumOps)
	}

	// A wire checkpoint lands on every shard.
	if _, err := ns.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// More traffic after the checkpoint so restore replays WAL tails too.
	for r := 0; r < rounds/2; r++ {
		ops := randShardOps(rng, nVerts, 1+rng.Intn(12))
		got, err := ns.Do(ops)
		if err != nil {
			t.Fatalf("post-checkpoint round %d: %v", r, err)
		}
		want := o.apply(ops)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("post-checkpoint round %d op %d: got %v want %v", r, i, got[i], want[i])
			}
		}
	}

	cl.Close()
	s.Shutdown()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Restart: the shard meta file pins (k, n) and every shard restores from
	// its own checkpoint + WAL tail.
	s2, addr2, serveErr2 := start(t, Options{DataDir: data})
	cl2, err := client.Dial(addr2)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	infos, err = cl2.List()
	if err != nil {
		t.Fatalf("list after restart: %v", err)
	}
	if len(infos) != 1 || infos[0].Shards != shards {
		t.Fatalf("restored list = %+v, want sharded namespace back", infos)
	}
	ns2 := cl2.Namespace("social")
	uf = o.uf()
	var all []conn.Edge
	for u := int32(0); u < nVerts; u++ {
		for v := u + 1; v < nVerts; v++ {
			all = append(all, conn.Edge{U: u, V: v})
		}
	}
	bits, err := ns2.ReadNowBatch(all)
	if err != nil {
		t.Fatalf("read after restore: %v", err)
	}
	for i, q := range all {
		if want := uf.Connected(q.U, q.V); bits[i] != want {
			t.Fatalf("after restore {%d,%d}: got %v want %v", q.U, q.V, bits[i], want)
		}
	}
	cl2.Close()
	s2.Shutdown()
	<-serveErr2
}

// TestShardedDefaultAndDrop covers the -shards server default (Create
// without an explicit count inherits Options.DefaultShards) and the drop
// path for sharded namespaces (memory-only and durable).
func TestShardedDefaultAndDrop(t *testing.T) {
	data := t.TempDir()
	s, addr, serveErr := start(t, Options{DataDir: data, DefaultShards: 2})
	defer func() { s.Shutdown(); <-serveErr }()

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	// Plain Create inherits the server default.
	if err := cl.Create("a", 64, true); err != nil {
		t.Fatalf("create: %v", err)
	}
	// An explicit count overrides it; 1 means unsharded.
	if err := cl.CreateSharded("b", 64, false, 1); err != nil {
		t.Fatalf("create unsharded: %v", err)
	}
	infos, err := cl.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	byName := map[string]client.NamespaceInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if byName["a"].Shards != 2 {
		t.Fatalf("namespace a has %d shards, want server default 2", byName["a"].Shards)
	}
	if byName["b"].Shards != 0 {
		t.Fatalf("namespace b has %d shards, want unsharded", byName["b"].Shards)
	}

	nsA := cl.Namespace("a")
	if _, err := nsA.Insert(1, 2); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if ok, err := nsA.Connected(1, 2); err != nil || !ok {
		t.Fatalf("connected = %v, %v", ok, err)
	}
	for _, name := range []string{"a", "b"} {
		if err := cl.Drop(name); err != nil {
			t.Fatalf("drop %q: %v", name, err)
		}
	}
	if infos, err = cl.List(); err != nil || len(infos) != 0 {
		t.Fatalf("list after drops = %+v, %v", infos, err)
	}
}
