package server

import (
	"fmt"
	"sync"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/backoff"
	"repro/internal/repl"
)

// replicaManager owns a replica server's follower loops.
//
// Replica mode: a Server started with Options.ReplicaOf follows a primary
// connserver instead of owning its own write path. At startup the manager
// asks the primary for its namespace list and starts one follower loop per
// durable namespace; each loop subscribes to the primary's epoch stream and
// applies it through a local read-only Batcher, so the replica serves
// ReadNow / ReadRecent / query-only batches (and their snapshots) with the
// machinery completely unchanged. Mutating requests are rejected with
// StatusReadOnly carrying the primary's address — a redirect the client
// package surfaces as a typed error. Followers reconnect with exponential
// backoff and resume from their last applied seq; if the primary's WAL
// floor moved past that point, the stream re-runs catch-up (snapshot +
// tail) automatically, and while the primary is unreachable the replica
// keeps serving its last applied state — bounded-stale reads survive a
// primary outage.
type replicaManager struct {
	s       *Server
	primary string
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	mu        sync.Mutex
	followers map[string]*followerHandle
}

// followerHandle is one namespace's follower loop, individually stoppable
// so a namespace dropped on the primary can be retired without touching
// the others.
type followerHandle struct {
	stop chan struct{}
	once sync.Once
	done chan struct{}
}

func (f *followerHandle) halt() { f.once.Do(func() { close(f.stop) }) }

func (s *Server) startReplication() {
	m := &replicaManager{
		s: s, primary: s.opts.ReplicaOf,
		stop:      make(chan struct{}),
		followers: make(map[string]*followerHandle),
	}
	s.replMgr = m
	m.wg.Add(1)
	go m.run()
}

// stopAll terminates discovery and every follower loop and waits them out —
// called by Shutdown before any Batcher is closed, so no apply is mid-flight
// when the namespaces quiesce.
func (m *replicaManager) stopAll() {
	m.once.Do(func() { close(m.stop) })
	m.mu.Lock()
	for _, f := range m.followers {
		f.halt()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// run discovers the primary's durable namespaces and starts one follower
// per namespace — then keeps re-listing (exponential backoff while the
// primary is unreachable, a steady couple of seconds once it answers) so a
// namespace created on the primary after the replica came up starts
// replicating without a replica restart. startNamespace is idempotent, so
// re-listing known namespaces is a no-op; the follower loops themselves
// handle primary restarts.
func (m *replicaManager) run() {
	defer m.wg.Done()
	const relistEvery = 2 * time.Second
	bo := backoff.New(100*time.Millisecond, 3*time.Second)
	known := 0
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		wait := relistEvery
		infos, err := m.listPrimary()
		if err == nil {
			bo.Reset()
			want := make(map[string]bool, len(infos))
			for _, info := range infos {
				if info.Shards > 0 {
					// A sharded namespace has k+1 independent epoch streams
					// and no composed follower yet: a replica applying them
					// into one flat graph would answer cross-shard queries
					// with boundary edges mixed into shard-local state.
					// Skipped until a sharded follower composes per-shard
					// labels the way the primary's coordinator does.
					continue
				}
				if info.Durable {
					want[info.Name] = true
					m.startNamespace(info.Name, info.N)
				}
			}
			// Namespaces gone from a *successful* list were dropped on the
			// primary: retire them here too, or the replica would serve a
			// deleted namespace's last state forever while its follower
			// redials into StatusNotFound.
			m.mu.Lock()
			var gone []string
			for name := range m.followers {
				if !want[name] {
					gone = append(gone, name)
				}
			}
			m.mu.Unlock()
			for _, name := range gone {
				m.dropNamespace(name)
			}
			if len(want) != known {
				known = len(want)
				m.s.logf("replica: following %d durable namespace(s) from %s", known, m.primary)
			}
		} else {
			wait = bo.Next()
			m.s.logf("replica: cannot list namespaces on primary %s: %v (retrying in %v)",
				m.primary, err, wait)
		}
		select {
		case <-m.stop:
			return
		case <-time.After(wait):
		}
	}
}

func (m *replicaManager) listPrimary() ([]client.NamespaceInfo, error) {
	cl, err := client.Dial(m.primary, client.WithDialTimeout(2*time.Second))
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.List()
}

// startNamespace registers an empty read-only namespace and its follower
// loop. The namespace serves (empty) reads immediately; clients fence on
// the applied seq, so a not-yet-caught-up replica fails their staleness
// check and they fall back to the primary.
func (m *replicaManager) startNamespace(name string, n int) {
	m.s.mu.Lock()
	if _, ok := m.s.namespaces[name]; ok {
		m.s.mu.Unlock()
		return
	}
	g := conn.New(n)
	ns := &namespace{
		name: name, readonly: true,
		g: g, b: conn.NewBatcher(g, conn.WithMaxDelay(0)),
	}
	m.s.namespaces[name] = ns
	m.s.mu.Unlock()
	f := &followerHandle{stop: make(chan struct{}), done: make(chan struct{})}
	m.mu.Lock()
	m.followers[name] = f
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer close(f.done)
		repl.RunFollower(f.stop, m.primary, name, &nsApplier{ns: ns}, repl.FollowerOptions{
			Logf: m.s.opts.Logf,
		})
	}()
}

// dropNamespace retires one replicated namespace: stop its follower, wait
// out its in-flight apply, then quiesce and remove the local namespace —
// the replica-side mirror of the primary's drop.
func (m *replicaManager) dropNamespace(name string) {
	m.mu.Lock()
	f, ok := m.followers[name]
	if ok {
		delete(m.followers, name)
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	f.halt()
	<-f.done
	m.s.mu.Lock()
	ns, ok := m.s.namespaces[name]
	if ok {
		delete(m.s.namespaces, name)
	}
	m.s.mu.Unlock()
	if !ok {
		return
	}
	ns.mu.Lock()
	ns.closed = true
	ns.mu.Unlock()
	ns.b.Close()
	m.s.logf("replica: namespace %q was dropped on the primary; retired", name)
}

// nsApplier applies a subscription stream into one replica namespace.
type nsApplier struct {
	ns *namespace
}

func (a *nsApplier) AppliedSeq() uint64 { return a.ns.applied.Load() }

// Universe is the vertex bound raw codec records decode against; the
// namespace's graph is only ever swapped for one of the same universe
// (ApplySnapshot carries the primary's n).
func (a *nsApplier) Universe() int {
	a.ns.mu.RLock()
	defer a.ns.mu.RUnlock()
	return a.ns.g.N()
}

// ApplyEpoch applies one shipped epoch as one Batcher epoch: a single mixed
// Do (inserts, then deletes — the Batcher's epoch order matches the WAL's
// replay order), blocking until it commits, so readers observe primary
// epochs atomically and ReadRecent's snapshot republishes per epoch. The
// apply loop is a single goroutine issuing one blocking Do at a time — it
// waits on futures, never spins, so it cannot starve the dispatcher even on
// one CPU.
func (a *nsApplier) ApplyEpoch(seq uint64, ins, del []conn.Edge) error {
	ops := make([]conn.Op, 0, len(ins)+len(del))
	for _, e := range ins {
		ops = append(ops, conn.Op{Kind: conn.OpInsert, U: e.U, V: e.V})
	}
	for _, e := range del {
		ops = append(ops, conn.Op{Kind: conn.OpDelete, U: e.U, V: e.V})
	}
	a.ns.mu.RLock()
	b := a.ns.b
	a.ns.mu.RUnlock()
	if _, err := b.Do(ops); err != nil {
		return fmt.Errorf("apply epoch %d: %w", seq, err)
	}
	a.ns.applied.Store(seq)
	return nil
}

// ApplySnapshot rebuilds the namespace from a full-state transfer: a fresh
// Graph+Batcher is prepared off to the side and swapped in under the
// namespace write lock (waiting out in-flight readers), so requests always
// observe either the complete old state or the complete new one.
func (a *nsApplier) ApplySnapshot(seq uint64, n int, edges []conn.Edge) error {
	g := conn.New(n)
	g.InsertEdges(edges)
	b := conn.NewBatcher(g, conn.WithMaxDelay(0))
	a.ns.mu.Lock()
	oldB := a.ns.b
	a.ns.g, a.ns.b = g, b
	a.ns.applied.Store(seq)
	a.ns.mu.Unlock()
	oldB.Close()
	return nil
}
