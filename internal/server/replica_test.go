package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/graph"
	"repro/internal/repl"
	"repro/internal/unionfind"
)

// edgeOracle is a repl.Applier that mirrors the primary's committed epoch
// stream into a plain edge set — the independent reference the differential
// test replays into a union-find at every convergence point. It fails the
// test if the primary ever resets it with a snapshot: the test arranges its
// resume points so the oracle's history is always continuously derivable
// from the stream alone.
type edgeOracle struct {
	t       *testing.T
	mu      sync.Mutex
	n       int
	edges   map[uint64]graph.Edge
	applied atomic.Uint64
	snaps   atomic.Int64
}

func newEdgeOracle(t *testing.T, n int) *edgeOracle {
	return &edgeOracle{t: t, n: n, edges: make(map[uint64]graph.Edge)}
}

func (o *edgeOracle) AppliedSeq() uint64 { return o.applied.Load() }

func (o *edgeOracle) Universe() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

func (o *edgeOracle) ApplySnapshot(seq uint64, n int, edges []conn.Edge) error {
	o.snaps.Add(1)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.n = n
	o.edges = make(map[uint64]graph.Edge, len(edges))
	for _, e := range edges {
		ge := graph.Edge{U: e.U, V: e.V}
		o.edges[ge.Key()] = ge
	}
	o.applied.Store(seq)
	return nil
}

func (o *edgeOracle) ApplyEpoch(seq uint64, ins, del []conn.Edge) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range ins {
		if e.U == e.V {
			continue
		}
		ge := graph.Edge{U: e.U, V: e.V}
		o.edges[ge.Key()] = ge
	}
	for _, e := range del {
		ge := graph.Edge{U: e.U, V: e.V}
		delete(o.edges, ge.Key())
	}
	o.applied.Store(seq)
	return nil
}

// uf rebuilds a union-find from the oracle's current edge set.
func (o *edgeOracle) uf() *unionfind.UF {
	o.mu.Lock()
	defer o.mu.Unlock()
	u := unionfind.New(o.n)
	for _, e := range o.edges {
		u.Union(e.U, e.V)
	}
	return u
}

// waitSeq polls until get() >= seq or the deadline passes.
func waitSeq(t *testing.T, what string, seq uint64, get func() uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if get() >= seq {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s never reached seq %d (at %d)", what, seq, get())
}

// allPairs enumerates every unordered vertex pair of [0, n).
func allPairs(n int) []conn.Edge {
	var out []conn.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, conn.Edge{U: int32(i), V: int32(j)})
		}
	}
	return out
}

// replicaAppliedSeq reads a replica namespace's applied seq over the wire.
func replicaAppliedSeq(t *testing.T, addr, ns string) func() uint64 {
	return func() uint64 {
		cl, err := client.Dial(addr, client.WithDialTimeout(time.Second))
		if err != nil {
			return 0
		}
		defer cl.Close()
		st, err := cl.Namespace(ns).Stats()
		if err != nil {
			return 0
		}
		return st.AppliedSeq
	}
}

// TestReplicaDifferential is the end-to-end replication acceptance test: a
// randomized writer drives a durable primary namespace while (a) an oracle
// follower mirrors the epoch stream into an edge set and (b) a replica
// server follows over real TCP. At every convergence point the replica's
// full pairwise connectivity must equal both the primary's and a union-find
// rebuilt from the oracle's replayed prefix. Mid-stream the replica is
// killed and cold-restarted after the primary's WAL floor moved (forcing
// snapshot catch-up), and the primary itself is drained and restarted
// (forcing follower reconnect with resume).
func TestReplicaDifferential(t *testing.T) {
	const n = 96
	rng := newRng(7)
	dataDir := t.TempDir()

	// --- primary, on a fixed address so it can restart in place.
	primary, err := New(Options{DataDir: dataDir, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr := ln.Addr().String()
	go primary.Serve(ln)

	cl, err := client.Dial(primaryAddr, client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", n, true); err != nil {
		t.Fatal(err)
	}
	nsc := cl.Namespace("g")

	// --- oracle follower: a raw repl client mirroring the stream.
	oracle := newEdgeOracle(t, n)
	oracleStop := make(chan struct{})
	var oracleWG sync.WaitGroup
	oracleWG.Add(1)
	go func() {
		defer oracleWG.Done()
		repl.RunFollower(oracleStop, primaryAddr, "g", oracle, repl.FollowerOptions{
			MinBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
		})
	}()
	defer func() { close(oracleStop); oracleWG.Wait() }()

	// --- replica server.
	startReplica := func() (*Server, string) {
		r, err := New(Options{ReplicaOf: primaryAddr})
		if err != nil {
			t.Fatal(err)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go r.Serve(rln)
		return r, rln.Addr().String()
	}
	replica, replicaAddr := startReplica()

	// writeBurst applies k random mixed updates in small batches and returns
	// the primary seq the client observed for its last acknowledged write.
	// Transport errors are retried: a request in flight across the primary
	// restart fails by design (the client redials on next use), and blind
	// retry is safe here — updates are idempotent, and the oracle replays
	// whatever epochs actually committed.
	writeBurst := func(k int) uint64 {
		for i := 0; i < k; i += 8 {
			ops := make([]conn.Op, 0, 8)
			for j := 0; j < 8; j++ {
				kind := conn.OpInsert
				if rng.Intn(3) == 0 {
					kind = conn.OpDelete
				}
				ops = append(ops, conn.Op{Kind: kind,
					U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
			}
			var err error
			for attempt := 0; attempt < 100; attempt++ {
				if _, err = nsc.Do(ops); err == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err != nil {
				t.Fatalf("write burst: %v", err)
			}
		}
		return cl.ObservedSeq("g")
	}

	pairs := allPairs(n)
	// converge waits for oracle and replica to reach seq, then compares full
	// pairwise connectivity across primary, replica, and the oracle's
	// union-find replay.
	converge := func(phase string, seq uint64, replicaAddr string) {
		t.Helper()
		waitSeq(t, phase+": oracle", seq, oracle.AppliedSeq)
		waitSeq(t, phase+": replica", seq, replicaAppliedSeq(t, replicaAddr, "g"))
		rcl, err := client.Dial(replicaAddr)
		if err != nil {
			t.Fatalf("%s: dial replica: %v", phase, err)
		}
		defer rcl.Close()
		pBits, err := cl.Namespace("g").ReadNowBatch(pairs)
		if err != nil {
			t.Fatalf("%s: primary read: %v", phase, err)
		}
		rBits, err := rcl.Namespace("g").ReadNowBatch(pairs)
		if err != nil {
			t.Fatalf("%s: replica read: %v", phase, err)
		}
		u := oracle.uf()
		for i, p := range pairs {
			want := u.Connected(p.U, p.V)
			if pBits[i] != want {
				t.Fatalf("%s: primary disagrees with oracle on {%d,%d}: %v vs %v",
					phase, p.U, p.V, pBits[i], want)
			}
			if rBits[i] != want {
				t.Fatalf("%s: replica disagrees with oracle on {%d,%d}: %v vs %v",
					phase, p.U, p.V, rBits[i], want)
			}
		}
	}

	// Phase A: plain streaming replication.
	t.Log("phase A writes")
	seq := writeBurst(240)
	converge("phase A", seq, replicaAddr)

	// Phase B: kill the replica mid-traffic, checkpoint the primary so the
	// WAL floor moves past the replica's applied seq, keep writing, then
	// cold-restart the replica — catch-up must go through the snapshot path.
	replica.Shutdown()
	if _, err := nsc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	t.Log("phase B writes")
	seq = writeBurst(160)
	replica, replicaAddr = startReplica()
	converge("phase B", seq, replicaAddr)

	// Phase C: drain and restart the primary in place. Followers (replica
	// and oracle) must reconnect with backoff and resume; the drain
	// checkpoint moves the floor exactly to their applied seq, so resume is
	// a pure tail subscribe.
	waitSeq(t, "phase C: oracle pre-drain", seq, oracle.AppliedSeq)
	primary.Shutdown()
	primary, err = New(Options{DataDir: dataDir, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	go primary.Serve(ln2)
	defer primary.Shutdown()
	defer replica.Shutdown()

	t.Log("phase C writes")
	seq = writeBurst(160)
	converge("phase C", seq, replicaAddr)

	if oracle.snaps.Load() != 0 {
		t.Fatalf("oracle was reset by a snapshot %d time(s); its replay is no longer a pure epoch history",
			oracle.snaps.Load())
	}
}

// TestReplicaRedirectsWrites: mutations sent to a replica come back as a
// typed redirect carrying the primary's address; query-only batches and the
// read tiers are served.
func TestReplicaRedirectsWrites(t *testing.T) {
	dataDir := t.TempDir()
	primary, primaryAddr, _ := start(t, Options{DataDir: dataDir})
	defer primary.Shutdown()
	cl, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 32, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Namespace("g").Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	seq := cl.ObservedSeq("g")

	replica, replicaAddr, _ := start(t, Options{ReplicaOf: primaryAddr})
	defer replica.Shutdown()
	waitSeq(t, "replica", seq, replicaAppliedSeq(t, replicaAddr, "g"))

	rcl, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()

	_, err = rcl.Namespace("g").Insert(3, 4)
	var redirect *client.RedirectError
	if !errors.As(err, &redirect) {
		t.Fatalf("replica insert error = %v, want RedirectError", err)
	}
	if redirect.Primary != primaryAddr {
		t.Fatalf("redirect points at %q, want %q", redirect.Primary, primaryAddr)
	}
	if err := rcl.Create("h", 8, false); !errors.As(err, &redirect) {
		t.Fatalf("replica create error = %v, want RedirectError", err)
	}
	if err := rcl.Drop("g"); !errors.As(err, &redirect) {
		t.Fatalf("replica drop error = %v, want RedirectError", err)
	}
	if _, err := rcl.Namespace("g").Checkpoint(); !errors.As(err, &redirect) {
		t.Fatalf("replica checkpoint error = %v, want RedirectError", err)
	}

	// Reads are served locally, from replicated state.
	if ok, err := rcl.Namespace("g").ReadRecent(1, 2); err != nil || !ok {
		t.Fatalf("replica ReadRecent(1,2) = %v, %v; want true", ok, err)
	}
	if ok, err := rcl.Namespace("g").ReadNow(1, 2); err != nil || !ok {
		t.Fatalf("replica ReadNow(1,2) = %v, %v; want true", ok, err)
	}
	if bits, err := rcl.Namespace("g").ConnectedBatch([]conn.Edge{{U: 1, V: 2}}); err != nil || !bits[0] {
		t.Fatalf("replica query batch = %v, %v; want true", bits, err)
	}
}

// TestReplicaServesWhilePrimaryDown: a replica keeps answering bounded-stale
// reads from its last applied state after the primary dies, and catches up
// once the primary returns.
func TestReplicaServesWhilePrimaryDown(t *testing.T) {
	dataDir := t.TempDir()
	primary, err := New(Options{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr := ln.Addr().String()
	go primary.Serve(ln)

	cl, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("g", 32, true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Namespace("g").Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	seq := cl.ObservedSeq("g")

	replica, replicaAddr, _ := start(t, Options{ReplicaOf: primaryAddr})
	defer replica.Shutdown()
	waitSeq(t, "replica", seq, replicaAppliedSeq(t, replicaAddr, "g"))

	primary.Shutdown()
	cl.Close()

	rcl, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	for i := 0; i < 10; i++ {
		if ok, err := rcl.Namespace("g").ReadRecent(1, 2); err != nil || !ok {
			t.Fatalf("replica read with primary down = %v, %v; want true", ok, err)
		}
	}

	// Primary returns with more data; the replica reconnects and applies it.
	primary2, err := New(Options{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	go primary2.Serve(ln2)
	defer primary2.Shutdown()
	cl2, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Namespace("g").Insert(2, 3); err != nil {
		t.Fatal(err)
	}
	waitSeq(t, "replica catch-up", cl2.ObservedSeq("g"), replicaAppliedSeq(t, replicaAddr, "g"))
	if ok, err := rcl.Namespace("g").ReadRecent(1, 3); err != nil || !ok {
		t.Fatalf("replica read after primary return = %v, %v; want true", ok, err)
	}
}
