// Loopback end-to-end tests: a real TCP server, the public client package,
// pipelined batched traffic from multiple connections, graceful drain,
// restart, and restore. Runs in the race job — the server's whole point is
// concurrent frames coalescing into shared epochs.
package server

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	conn "repro"
	"repro/client"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// start runs a server on a loopback listener and returns it with its
// address and Serve's error channel.
func start(t *testing.T, opts Options) (*Server, string, chan error) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	return s, ln.Addr().String(), serveErr
}

// edgesOf enumerates a graph's full live edge set.
func edgesOf(g *conn.Graph) []conn.Edge {
	return append(g.SpanningForest(), g.NonTreeEdges()...)
}

// TestLoopbackEndToEnd is the acceptance scenario: two namespaces (one
// durable), pipelined batched traffic from 4 client connections with
// per-worker oracle mirrors, a wire checkpoint, post-checkpoint traffic,
// graceful drain, restart, and restore — every acked write visible.
func TestLoopbackEndToEnd(t *testing.T) {
	const (
		nVerts  = 256
		workers = 4
		span    = nVerts / workers
	)
	rounds := 20
	if testing.Short() {
		rounds = 6
	}

	data := t.TempDir()
	srv, addr, serveErr := start(t, Options{DataDir: data, MaxDelay: 200 * time.Microsecond})

	cl, err := client.Dial(addr, client.WithConns(workers))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := cl.Create("mem", nVerts, false); err != nil {
		t.Fatalf("Create mem: %v", err)
	}
	if err := cl.Create("dur", nVerts, true); err != nil {
		t.Fatalf("Create dur: %v", err)
	}

	// Per-(namespace, worker) oracle mirrors. Workers own disjoint vertex
	// ranges, so each mirror is exact for queries inside its range no matter
	// how the server's epochs interleave the workers' groups.
	names := []string{"mem", "dur"}
	mirrors := map[string][]*conn.Graph{}
	for _, name := range names {
		mirrors[name] = make([]*conn.Graph, workers)
		for w := 0; w < workers; w++ {
			mirrors[name][w] = conn.New(nVerts)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newRng(int64(w))
			lo := int32(w * span)
			pair := func() (int32, int32) {
				return lo + int32(rng.Intn(span)), lo + int32(rng.Intn(span))
			}
			for r := 0; r < rounds; r++ {
				for _, name := range names {
					ns := cl.Namespace(name)
					mirror := mirrors[name][w]
					var ops []conn.Op
					var ins, del []conn.Edge
					var queries []int // indices of query ops
					for i := 0; i < 24; i++ {
						u, v := pair()
						switch x := rng.Intn(100); {
						case x < 50:
							ops = append(ops, conn.Op{Kind: conn.OpInsert, U: u, V: v})
							ins = append(ins, conn.Edge{U: u, V: v})
						case x < 70:
							ops = append(ops, conn.Op{Kind: conn.OpDelete, U: u, V: v})
							del = append(del, conn.Edge{U: u, V: v})
						default:
							queries = append(queries, len(ops))
							ops = append(ops, conn.Op{Kind: conn.OpQuery, U: u, V: v})
						}
					}
					bits, err := ns.Do(ops)
					if err != nil {
						t.Errorf("worker %d: Do on %s: %v", w, name, err)
						return
					}
					if len(bits) != len(ops) {
						t.Errorf("worker %d: %d results for %d ops", w, len(bits), len(ops))
						return
					}
					// The group is atomic — one epoch applies inserts, then
					// deletes, then answers queries. Replay on the mirror and
					// check every query answer.
					mirror.InsertEdges(ins)
					mirror.DeleteEdges(del)
					for _, qi := range queries {
						want := mirror.Connected(ops[qi].U, ops[qi].V)
						if bits[qi] != want {
							t.Errorf("worker %d: query {%d,%d} on %s = %v, mirror says %v",
								w, ops[qi].U, ops[qi].V, name, bits[qi], want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: all three read tiers must agree with the mirrors.
	for _, name := range names {
		ns := cl.Namespace(name)
		rng := newRng(99)
		for w := 0; w < workers; w++ {
			lo := int32(w * span)
			var qs []conn.Edge
			for i := 0; i < 32; i++ {
				qs = append(qs, conn.Edge{U: lo + int32(rng.Intn(span)), V: lo + int32(rng.Intn(span))})
			}
			lin, err := ns.ConnectedBatch(qs)
			if err != nil {
				t.Fatalf("ConnectedBatch: %v", err)
			}
			now, err := ns.ReadNowBatch(qs)
			if err != nil {
				t.Fatalf("ReadNowBatch: %v", err)
			}
			recent, err := ns.ReadRecentBatch(qs)
			if err != nil {
				t.Fatalf("ReadRecentBatch: %v", err)
			}
			for i, q := range qs {
				want := mirrors[name][w].Connected(q.U, q.V)
				if lin[i] != want || now[i] != want || recent[i] != want {
					t.Fatalf("%s {%d,%d}: tiers (lin=%v now=%v recent=%v), mirror %v",
						name, q.U, q.V, lin[i], now[i], recent[i], want)
				}
			}
		}
	}

	// Stats over the wire: traffic committed, epochs coalesced multiple ops,
	// and the durable namespace paid WAL records.
	st, err := cl.Namespace("dur").Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Ops == 0 || st.Epochs == 0 || st.WALRecords == 0 {
		t.Fatalf("dur stats look dead: %+v", st)
	}
	if st.Ops < 2*st.Epochs {
		t.Errorf("no coalescing: %d ops over %d epochs", st.Ops, st.Epochs)
	}

	// Wire checkpoint, then more acked traffic so restart must replay a WAL
	// tail beyond the checkpoint.
	ckptPath, err := cl.Namespace("dur").Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint path: %v", err)
	}
	if _, err := cl.Namespace("mem").Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a memory-only namespace succeeded")
	}
	tail := []conn.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: span, V: span + 3}}
	if _, err := cl.Namespace("dur").InsertEdges(tail); err != nil {
		t.Fatalf("post-checkpoint inserts: %v", err)
	}
	mirrors["dur"][0].InsertEdges(tail[:2])
	mirrors["dur"][1].InsertEdges(tail[2:])

	// Namespace lifecycle: a scratch durable namespace, dropped, must vanish
	// from disk and from List.
	if err := cl.Create("scratch", 64, true); err != nil {
		t.Fatalf("Create scratch: %v", err)
	}
	if _, err := cl.Namespace("scratch").Insert(1, 2); err != nil {
		t.Fatalf("scratch insert: %v", err)
	}
	if err := cl.Drop("scratch"); err != nil {
		t.Fatalf("Drop scratch: %v", err)
	}
	if _, err := os.Stat(filepath.Join(data, "scratch")); !os.IsNotExist(err) {
		t.Fatalf("dropped durable namespace left state on disk: %v", err)
	}
	infos, err := cl.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "dur" || !infos[0].Durable ||
		infos[1].Name != "mem" || infos[1].Durable {
		t.Fatalf("List = %+v", infos)
	}

	// Graceful drain (what SIGTERM triggers in cmd/connserver).
	srv.Shutdown()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after Shutdown", err)
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("Ping succeeded after Shutdown")
	}

	// Restart from the data directory: only the durable namespace returns,
	// with every acked write visible.
	srv2, addr2, serveErr2 := start(t, Options{DataDir: data})
	srv2.mu.RLock()
	_, hasMem := srv2.namespaces["mem"]
	dur := srv2.namespaces["dur"]
	srv2.mu.RUnlock()
	if hasMem {
		t.Fatal("memory-only namespace survived restart")
	}
	if dur == nil {
		t.Fatal("durable namespace not restored")
	}
	var want int
	for w := 0; w < workers; w++ {
		m := mirrors["dur"][w]
		want += m.NumEdges()
		for _, e := range edgesOf(m) {
			if !dur.g.HasEdge(e.U, e.V) {
				t.Fatalf("restored graph missing acked edge {%d,%d}", e.U, e.V)
			}
		}
	}
	if got := dur.g.NumEdges(); got != want {
		t.Fatalf("restored graph has %d edges, acked state has %d", got, want)
	}

	// And it still serves: linearized answers over the wire match mirrors.
	cl2, err := client.Dial(addr2, client.WithConns(2))
	if err != nil {
		t.Fatalf("Dial after restart: %v", err)
	}
	defer cl2.Close()
	infos, err = cl2.List()
	if err != nil || len(infos) != 1 || infos[0].Name != "dur" {
		t.Fatalf("List after restart = %+v, %v", infos, err)
	}
	ns2 := cl2.Namespace("dur")
	rng := newRng(7)
	for w := 0; w < workers; w++ {
		lo := int32(w * span)
		for i := 0; i < 16; i++ {
			u, v := lo+int32(rng.Intn(span)), lo+int32(rng.Intn(span))
			got, err := ns2.Connected(u, v)
			if err != nil {
				t.Fatalf("Connected after restart: %v", err)
			}
			if want := mirrors["dur"][w].Connected(u, v); got != want {
				t.Fatalf("after restart {%d,%d} = %v, mirror says %v", u, v, got, want)
			}
		}
	}
	srv2.Shutdown()
	if err := <-serveErr2; err != nil {
		t.Fatalf("second Serve returned %v", err)
	}
}

// TestShutdownDuringTraffic drains the server while insert-only workers are
// mid-flight: no panic, every error is a clean rejection, and after restart
// every acked insert is visible (acked ⇒ durable, even through a drain).
func TestShutdownDuringTraffic(t *testing.T) {
	const (
		nVerts  = 256
		workers = 4
		span    = nVerts / workers
		warmup  = 5
	)
	data := t.TempDir()
	srv, addr, serveErr := start(t, Options{DataDir: data, MaxDelay: 500 * time.Microsecond})
	cl, err := client.Dial(addr, client.WithConns(workers))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Create("d", nVerts, true); err != nil {
		t.Fatalf("Create: %v", err)
	}

	acked := make([][]conn.Edge, workers)
	var warm, done sync.WaitGroup
	warm.Add(workers)
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			warmed := false
			ns := cl.Namespace("d")
			rng := newRng(int64(100 + w))
			lo := int32(w * span)
			for round := 0; ; round++ {
				batch := make([]conn.Edge, 8)
				for i := range batch {
					batch[i] = conn.Edge{U: lo + int32(rng.Intn(span)), V: lo + int32(rng.Intn(span))}
				}
				if _, err := ns.InsertEdges(batch); err != nil {
					// Drain reached us: the batch was not acknowledged.
					if !warmed {
						warm.Done()
					}
					return
				}
				acked[w] = append(acked[w], batch...)
				if round == warmup {
					warmed = true
					warm.Done()
				}
			}
		}(w)
	}
	warm.Wait()
	srv.Shutdown()
	done.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v", err)
	}

	srv2, err := New(Options{DataDir: data})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	srv2.mu.RLock()
	d := srv2.namespaces["d"]
	srv2.mu.RUnlock()
	if d == nil {
		t.Fatal("namespace not restored")
	}
	for w := 0; w < workers; w++ {
		for _, e := range acked[w] {
			if e.U != e.V && !d.g.HasEdge(e.U, e.V) {
				t.Fatalf("acked edge {%d,%d} lost across drain+restart", e.U, e.V)
			}
		}
	}
	srv2.Shutdown()
}

// TestNamespaceAdmin covers the admin surface's error paths; after every
// rejection the server must still answer.
func TestNamespaceAdmin(t *testing.T) {
	srv, addr, serveErr := start(t, Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	if infos, err := cl.List(); err != nil || len(infos) != 0 {
		t.Fatalf("fresh List = %+v, %v", infos, err)
	}
	for _, bad := range []string{"", "a/b", "..", ".hidden", "x y", "dir\\x"} {
		if err := cl.Create(bad, 16, false); err == nil {
			t.Fatalf("Create(%q) succeeded", bad)
		}
	}
	if err := cl.Create("d", 16, true); err == nil {
		t.Fatal("durable Create without a data dir succeeded")
	}
	if err := cl.Create("g", 0, false); err == nil {
		t.Fatal("Create with n=0 succeeded")
	}
	if err := cl.Create("g", 16, false); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := cl.Create("g", 16, false); !errors.Is(err, client.ErrExists) {
		t.Fatalf("duplicate Create: %v, want ErrExists", err)
	}
	if _, err := cl.Namespace("nope").Insert(0, 1); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Insert on unknown namespace: %v, want ErrNotFound", err)
	}
	if _, err := cl.Namespace("g").Insert(0, 99); err == nil {
		t.Fatal("out-of-range insert succeeded")
	}
	if _, err := cl.Namespace("g").ReadNow(-1, 3); err == nil {
		t.Fatal("out-of-range ReadNow succeeded")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("server unhealthy after rejections: %v", err)
	}
	if ok, err := cl.Namespace("g").Insert(0, 1); err != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, err)
	}
	if _, err := cl.Namespace("g").Checkpoint(); err == nil {
		t.Fatal("Checkpoint on non-durable namespace succeeded")
	}
	if err := cl.Drop("g"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := cl.Drop("g"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("double Drop: %v, want ErrNotFound", err)
	}
	srv.Shutdown()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}
