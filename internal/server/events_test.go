// Differential tests for the live event stream: a union-find oracle replays
// every batch, recomputes the canonical min-vertex labelling, and the pushed
// event stream must match the oracle's partition changes — exactly, event
// for event, on an unsharded namespace (one batch = one epoch = one
// transition), and by cumulative pair-state and component-count agreement on
// a sharded one (a multi-shard batch legitimately surfaces as several
// composed transitions through intermediate states).
//
// Synchronization uses the stream's own ordering guarantee: a beacon edge
// between two sentinel vertices is toggled after each batch, and because
// transitions are delivered in commit order — and the beacon pair is last in
// the watch order — seeing the beacon flip means the round's events have all
// arrived.
package server

import (
	"sort"
	"testing"
	"time"

	conn "repro"
	"repro/client"
	"repro/internal/pubsub"
	"repro/internal/snapshot"
	"repro/internal/unionfind"
)

// evOracle is the replayed ground truth: a plain edge set with canonical
// min-vertex labellings computed from scratch by union-find.
type evOracle struct {
	n     int
	edges map[[2]int32]bool
}

func newEvOracle(n int) *evOracle {
	return &evOracle{n: n, edges: make(map[[2]int32]bool)}
}

func ekey(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func (o *evOracle) apply(insert bool, es []conn.Edge) {
	for _, e := range es {
		if insert {
			o.edges[ekey(e.U, e.V)] = true
		} else {
			delete(o.edges, ekey(e.U, e.V))
		}
	}
}

// labels recomputes the full min-vertex labelling. Ascending scan makes the
// first vertex seen per root the component minimum.
func (o *evOracle) labels() []int32 {
	uf := unionfind.New(o.n)
	for e := range o.edges {
		uf.Union(e[0], e[1])
	}
	lbl := make([]int32, o.n)
	min := make(map[int32]int32, o.n)
	for v := int32(0); v < int32(o.n); v++ {
		r := uf.Find(v)
		m, ok := min[r]
		if !ok {
			m = v
			min[r] = v
		}
		lbl[v] = m
	}
	return lbl
}

func countComponents(lbl []int32) uint64 {
	seen := make(map[int32]struct{}, len(lbl))
	for _, l := range lbl {
		seen[l] = struct{}{}
	}
	return uint64(len(seen))
}

// expectEvents derives the exact event stream one labelling transition owes
// a subscriber watching `watch` with component events on — pubsub.Derive
// for the merges/splits (the oracle and the server share the derivation,
// which is the point: the SERVER's labellings come from the live structure,
// the oracle's from scratch replay; equal streams mean equal partitions)
// followed by pair flips in watch order.
func expectEvents(prev, cur []int32, watch []conn.Edge) []client.Event {
	var changed []int32
	for v := range cur {
		if prev[v] != cur[v] {
			changed = append(changed, int32(v))
		}
	}
	var out []client.Event
	if len(changed) > 0 {
		d := &snapshot.Diff{
			Prev:    snapshot.NewLabels(prev, 0),
			Cur:     snapshot.NewLabels(cur, 0),
			Changed: changed,
		}
		for _, ev := range pubsub.Derive(d, 0) {
			out = append(out, client.Event{Kind: client.EventKind(ev.Kind),
				Label: ev.Label, Others: ev.Others})
		}
	}
	for _, p := range watch {
		before := prev[p.U] == prev[p.V]
		after := cur[p.U] == cur[p.V]
		if before == after {
			continue
		}
		k := client.EventPairDisconnected
		if after {
			k = client.EventPairConnected
		}
		out = append(out, client.Event{Kind: k, U: p.U, V: p.V})
	}
	return out
}

func sameEvent(a, b client.Event) bool {
	if a.Kind != b.Kind || a.Label != b.Label || a.U != b.U || a.V != b.V ||
		len(a.Others) != len(b.Others) {
		return false
	}
	for i := range a.Others {
		if a.Others[i] != b.Others[i] {
			return false
		}
	}
	return true
}

func TestEventStreamDifferentialUnsharded(t *testing.T) {
	testEventStreamDifferential(t, 0)
}

func TestEventStreamDifferentialSharded(t *testing.T) {
	testEventStreamDifferential(t, 3)
}

func testEventStreamDifferential(t *testing.T, shards int) {
	const (
		nFabric = 48
		rounds  = 40
	)
	n := nFabric + 2 // two sentinels carry the beacon
	s0, s1 := int32(nFabric), int32(nFabric+1)

	srv, addr, _ := start(t, Options{DataDir: t.TempDir()})
	defer srv.Shutdown()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if shards > 0 {
		err = cl.CreateSharded("g", n, false, shards)
	} else {
		err = cl.Create("g", n, false)
	}
	if err != nil {
		t.Fatal(err)
	}
	ns := cl.Namespace("g")

	rng := newRng(421)
	var watch []conn.Edge
	for len(watch) < 8 {
		u, v := int32(rng.Intn(nFabric)), int32(rng.Intn(nFabric))
		if u != v {
			watch = append(watch, conn.Edge{U: u, V: v})
		}
	}
	watch = append(watch, conn.Edge{U: s0, V: s1}) // beacon LAST in watch order

	sub, err := ns.SubscribeEvents(true, watch)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	oracle := newEvOracle(n)
	prevLbl := oracle.labels()
	believed := make(map[[2]int32]bool, len(watch))
	for _, p := range watch {
		believed[ekey(p.U, p.V)] = prevLbl[p.U] == prevLbl[p.V]
	}
	beacon := []conn.Edge{{U: s0, V: s1}}
	beaconUp := false

	for round := 0; round < rounds; round++ {
		// One random batch: all-insert or all-delete (mixed batches have
		// server-defined intra-epoch order; the oracle stays agnostic).
		insert := len(oracle.edges) == 0 || rng.Intn(2) == 0
		var batch []conn.Edge
		if insert {
			for i := 0; i < 1+rng.Intn(16); i++ {
				u, v := int32(rng.Intn(nFabric)), int32(rng.Intn(nFabric))
				if u != v {
					batch = append(batch, conn.Edge{U: u, V: v})
				}
			}
		} else {
			// Deterministic victim selection (map order would make failures
			// unreproducible): sort the live set, sample by index. The beacon
			// edge is never a victim — only the end-of-round toggle may flip
			// the beacon pair, or the flip-is-last barrier breaks.
			live := make([][2]int32, 0, len(oracle.edges))
			for e := range oracle.edges {
				if e[0] >= int32(nFabric) {
					continue
				}
				live = append(live, e)
			}
			sort.Slice(live, func(i, j int) bool {
				if live[i][0] != live[j][0] {
					return live[i][0] < live[j][0]
				}
				return live[i][1] < live[j][1]
			})
			quota := 1 + rng.Intn(12)
			for i := 0; i < quota && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				batch = append(batch, conn.Edge{U: live[j][0], V: live[j][1]})
				live = append(live[:j], live[j+1:]...)
			}
		}
		if insert {
			_, err = ns.InsertEdges(batch)
		} else {
			_, err = ns.DeleteEdges(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
		oracle.apply(insert, batch)
		midLbl := oracle.labels()

		// Beacon toggle: committed strictly after the batch, so its pair
		// flip — last in watch order — is the round's final event.
		if beaconUp {
			_, err = ns.DeleteEdges(beacon)
		} else {
			_, err = ns.InsertEdges(beacon)
		}
		if err != nil {
			t.Fatal(err)
		}
		oracle.apply(!beaconUp, beacon)
		beaconUp = !beaconUp
		curLbl := oracle.labels()

		var got []client.Event
		for {
			ev, ok := <-sub.C()
			if !ok {
				t.Fatalf("round %d: stream closed: %v", round, sub.Err())
			}
			if ev.Kind == client.EventGap {
				t.Fatalf("round %d: gap on an attentive subscriber", round)
			}
			if ev.Kind == client.EventPairConnected || ev.Kind == client.EventPairDisconnected {
				believed[ekey(ev.U, ev.V)] = ev.Kind == client.EventPairConnected
			}
			got = append(got, ev)
			if (ev.Kind == client.EventPairConnected || ev.Kind == client.EventPairDisconnected) &&
				ev.U == s0 && ev.V == s1 {
				break
			}
		}

		// Cumulative checks, both topologies: every watched pair's believed
		// state equals the oracle's, and the served component count agrees.
		for _, p := range watch {
			want := curLbl[p.U] == curLbl[p.V]
			if believed[ekey(p.U, p.V)] != want {
				t.Fatalf("round %d: pair {%d,%d} believed %v, oracle %v",
					round, p.U, p.V, believed[ekey(p.U, p.V)], want)
			}
		}
		count, _, err := ns.ComponentAggregate()
		if err != nil {
			t.Fatal(err)
		}
		if want := countComponents(curLbl); count != want {
			t.Fatalf("round %d: served %d components, oracle %d", round, count, want)
		}

		// Exact stream equality on the unsharded path: one batch is one
		// epoch is one transition, so the round's stream is the batch's
		// transition followed by the beacon's.
		if shards == 0 {
			want := append(expectEvents(prevLbl, midLbl, watch),
				expectEvents(midLbl, curLbl, watch)...)
			if len(got) != len(want) {
				t.Fatalf("round %d: %d events %v, want %d %v",
					round, len(got), got, len(want), want)
			}
			for i := range got {
				if !sameEvent(got[i], want[i]) {
					t.Fatalf("round %d event %d: got %+v, want %+v",
						round, i, got[i], want[i])
				}
			}
		}
		prevLbl = curLbl
	}
}

// TestEventSubscriptionLifecycle covers the wire-path plumbing around the
// stream itself: stats surface the live subscriber and delivery counters,
// and a closed subscription detaches server-side (the refcounted hub wiring
// releases once the pump notices the dead connection).
func TestEventSubscriptionLifecycle(t *testing.T) {
	srv, addr, _ := start(t, Options{DataDir: t.TempDir()})
	defer srv.Shutdown()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create("g", 64, false); err != nil {
		t.Fatal(err)
	}
	ns := cl.Namespace("g")

	// Subscribing with nothing requested is a client error, not a stream.
	if _, err := ns.SubscribeEvents(false, nil); err == nil {
		t.Fatal("empty subscription accepted")
	}
	// Out-of-range watch vertices are rejected before the hub is touched.
	if _, err := ns.SubscribeEvents(false, []conn.Edge{{U: 0, V: 64}}); err == nil {
		t.Fatal("out-of-range watch pair accepted")
	}

	sub, err := ns.SubscribeEvents(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if ev := <-sub.C(); ev.Kind != client.EventMerge {
		t.Fatalf("got %+v, want the merge", ev)
	}
	st, err := ns.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.EventSubscribers != 1 || st.EventsDelivered == 0 {
		t.Fatalf("stats = %d subscribers / %d delivered, want 1 / >0",
			st.EventSubscribers, st.EventsDelivered)
	}

	// Close the stream; the server only notices on its next write, so keep
	// generating transitions until the subscriber count drains.
	sub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := ns.Delete(0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := ns.Insert(0, 1); err != nil {
			t.Fatal(err)
		}
		st, err = ns.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.EventSubscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber never detached: %d live", st.EventSubscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
