package skiplist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func build(n int) (*List, []*Node) {
	l := NewList()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(Value{Cnt: 1, Size: int64(i)}, i)
		Append(l, nodes[i])
	}
	return l, nodes
}

func contents(l *List) []int {
	var out []int
	for t := l.head[0].r; t != nil; t = t.r {
		out = append(out, t.owner.Data.(int))
	}
	return out
}

// checkSums verifies every tower aggregate in the list from scratch.
func checkSums(t *testing.T, l *List) {
	t.Helper()
	for h := 0; h < MaxHeight; h++ {
		start := &l.head[h]
		for tw := start; tw != nil; tw = tw.r {
			var want Value
			if h == 0 {
				if tw.owner != nil {
					want = tw.owner.Val
				}
			} else {
				var stop *tower
				if tw.r != nil {
					stop = tw.r.d
				}
				for c := tw.d; c != stop && c != nil; c = c.r {
					want = want.Add(c.sum)
				}
			}
			if tw.sum != want {
				t.Fatalf("height %d tower (owner %v) sum %+v want %+v", h+1, tw.owner, tw.sum, want)
			}
		}
	}
}

func assertSeq(t *testing.T, l *List, want []int) {
	t.Helper()
	got := contents(l)
	if len(got) != len(want) {
		t.Fatalf("len %d want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq[%d]=%d want %d (%v)", i, got[i], want[i], want)
		}
	}
	if l.Len() != int64(len(want)) {
		t.Fatalf("Len=%d want %d", l.Len(), len(want))
	}
	checkSums(t, l)
}

func TestAppendAndOrder(t *testing.T) {
	l, _ := build(10)
	assertSeq(t, l, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if l.Agg().Size != 45 {
		t.Fatalf("Agg.Size = %d", l.Agg().Size)
	}
}

func TestEmptyList(t *testing.T) {
	l := NewList()
	if l.Len() != 0 || l.First() != nil || (l.Agg() != Value{}) {
		t.Fatal("empty list misbehaves")
	}
	checkSums(t, l)
}

func TestIndexAndAt(t *testing.T) {
	l, nodes := build(200)
	for i := 0; i < 200; i++ {
		if Index(nodes[i]) != int64(i) {
			t.Fatalf("Index(node %d) = %d", i, Index(nodes[i]))
		}
		if got := l.At(int64(i)); got != nodes[i] {
			t.Fatalf("At(%d) wrong", i)
		}
	}
	if l.At(-1) != nil || l.At(200) != nil {
		t.Fatal("At out of range should be nil")
	}
}

func TestListOf(t *testing.T) {
	l, nodes := build(64)
	for _, nd := range nodes {
		if ListOf(nd) != l {
			t.Fatal("ListOf wrong")
		}
	}
}

func TestJoinTwoLists(t *testing.T) {
	a, _ := build(5)
	b := NewList()
	for i := 5; i < 9; i++ {
		Append(b, NewNode(Value{Cnt: 1, Size: int64(i)}, i))
	}
	Join(a, b)
	assertSeq(t, a, []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	assertSeq(t, b, nil)
	if b.Len() != 0 {
		t.Fatal("b not emptied")
	}
}

func TestJoinWithEmpty(t *testing.T) {
	a, _ := build(3)
	Join(a, NewList())
	assertSeq(t, a, []int{0, 1, 2})
	e := NewList()
	Join(e, a)
	assertSeq(t, e, []int{0, 1, 2})
	assertSeq(t, a, nil)
}

func TestSplitBeforeEveryPosition(t *testing.T) {
	for k := 0; k < 12; k++ {
		l, nodes := build(12)
		a, b := l, l
		if k < 12 {
			a, b = SplitBefore(nodes[k])
		}
		var w1, w2 []int
		for i := 0; i < 12; i++ {
			if i < k {
				w1 = append(w1, i)
			} else {
				w2 = append(w2, i)
			}
		}
		assertSeq(t, a, w1)
		assertSeq(t, b, w2)
		Join(a, b)
		assertSeq(t, a, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	}
}

func TestSetValAndAddVal(t *testing.T) {
	l, nodes := build(50)
	SetVal(nodes[20], Value{Cnt: 1, Size: 1000})
	if l.Agg().Size != 45*49/2+1000-20+190 { // recompute: sum 0..49 = 1225; -20 +1000
		// simpler direct check below
	}
	want := int64(0)
	for i := 0; i < 50; i++ {
		if i == 20 {
			want += 1000
		} else {
			want += int64(i)
		}
	}
	if l.Agg().Size != want {
		t.Fatalf("Agg.Size = %d want %d", l.Agg().Size, want)
	}
	AddVal(nodes[3], Value{NonTree: 7})
	if l.Agg().NonTree != 7 {
		t.Fatalf("Agg.NonTree = %d", l.Agg().NonTree)
	}
	checkSums(t, l)
}

func TestCollect(t *testing.T) {
	l, nodes := build(300)
	AddVal(nodes[10], Value{NonTree: 2})
	AddVal(nodes[150], Value{NonTree: 3})
	AddVal(nodes[299], Value{NonTree: 4})
	proj := func(v Value) int64 { return v.NonTree }
	var out []*Node
	got := l.Collect(4, proj, &out)
	if got < 4 || len(out) != 2 || out[0] != nodes[10] || out[1] != nodes[150] {
		t.Fatalf("Collect got %d over %d nodes", got, len(out))
	}
	out = nil
	if got := l.Collect(100, proj, &out); got != 9 || len(out) != 3 {
		t.Fatalf("Collect(all) got %d over %d", got, len(out))
	}
	out = nil
	if got := l.Collect(0, proj, &out); got != 0 {
		t.Fatal("Collect(0) should gather nothing")
	}
}

func TestQuickModelSplitJoin(t *testing.T) {
	type op struct {
		Kind uint8
		Pos  uint16
	}
	f := func(ops []op) bool {
		model := []int{}
		l := NewList()
		byVal := map[int]*Node{}
		next := 0
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // append
				nd := NewNode(Value{Cnt: 1}, next)
				byVal[next] = nd
				model = append(model, next)
				next++
				Append(l, nd)
			case 1: // rotate: split at pos, rejoin swapped
				if len(model) == 0 {
					continue
				}
				k := int(o.Pos) % len(model)
				if k == 0 {
					continue
				}
				a, b := SplitBefore(byVal[model[k]])
				nl := NewList()
				Join(nl, b)
				Join(nl, a)
				l = nl
				model = append(model[k:], model[:k]...)
			case 2: // split off suffix and rejoin (identity, exercises seams)
				if len(model) == 0 {
					continue
				}
				k := int(o.Pos) % len(model)
				a, b := SplitBefore(byVal[model[k]])
				Join(a, b)
				l = a
			}
			got := contents(l)
			if len(got) != len(model) {
				return false
			}
			for i := range model {
				if got[i] != model[i] {
					return false
				}
			}
			if l.Len() != int64(len(model)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomStressWithSumChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l, nodes := build(2000)
	for iter := 0; iter < 300; iter++ {
		k := rng.Intn(len(nodes))
		if k == 0 {
			continue
		}
		a, b := SplitBefore(nodes[k])
		if rng.Intn(2) == 0 {
			Join(a, b)
			l = a
		} else {
			nl := NewList()
			Join(nl, b)
			Join(nl, a)
			l = nl
			// rotate the reference order
			nodes = append(nodes[k:], nodes[:k]...)
		}
		if l.Len() != 2000 {
			t.Fatalf("iter %d: lost elements (%d)", iter, l.Len())
		}
	}
	checkSums(t, l)
	// Index consistency after heavy churn.
	for i, nd := range nodes {
		if Index(nd) != int64(i) {
			t.Fatalf("Index(%d) = %d after churn", i, Index(nd))
		}
		if ListOf(nd) != l {
			t.Fatal("ListOf wrong after churn")
		}
	}
}
