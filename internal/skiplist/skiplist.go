// Package skiplist implements the augmented skip-list sequence structure
// that the paper's batch-parallel Euler-tour trees are built on (Tseng,
// Dhulipala, Blelloch, ALENEX 2019): an ordered sequence supporting O(lg n)
// expected join, split, representative (list-head) lookup, positional
// access, point updates, and aggregate-guided prefix collection.
//
// Each list has a sentinel head holding a full-height tower; elements carry
// geometric-height towers linked left/right per level and up/down within a
// tower. A tower at height h is augmented with the aggregate of the elements
// in [tower, next tower at height h), so list totals sit in the head's top
// tower and rank/collect queries descend by aggregate.
//
// The repository's Euler-tour trees use the sequence treap
// (internal/treap); this package exists to reproduce the paper's actual
// substrate and to measure the two against each other (experiment E11 in
// cmd/benchconn). Both expose the same sequence semantics.
package skiplist

import "sync/atomic"

// MaxHeight bounds tower heights; 2^32 elements is far beyond any workload
// here.
const MaxHeight = 32

// Value is the augmented payload aggregated over ranges (mirrors
// treap.Value).
type Value struct {
	Cnt     int64
	Size    int64
	Tree    int64
	NonTree int64
}

// Add returns the component-wise sum.
func (v Value) Add(o Value) Value {
	return Value{v.Cnt + o.Cnt, v.Size + o.Size, v.Tree + o.Tree, v.NonTree + o.NonTree}
}

// tower is one (element, height) grid cell.
type tower struct {
	l, r, u, d *tower
	owner      *Node // nil for head towers
	list       *List // set on head towers only
	sum        Value // aggregate over [this, next tower at this height)
}

// Node is one sequence element.
type Node struct {
	Val    Value
	Data   any
	towers []tower // [0] is height 1
}

// List is a sequence of Nodes.
type List struct {
	head [MaxHeight]tower
	n    int64
}

var idCtr atomic.Uint64

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// height draws a geometric height in [1, MaxHeight] from the node id hash.
func height(id uint64) int {
	h := 1
	x := mix(id)
	for x&1 == 1 && h < MaxHeight {
		h++
		x >>= 1
	}
	return h
}

// NewNode creates an unattached element with the given value.
func NewNode(val Value, data any) *Node {
	h := height(idCtr.Add(1))
	n := &Node{Val: val, Data: data, towers: make([]tower, h)}
	for i := range n.towers {
		n.towers[i].owner = n
		if i > 0 {
			n.towers[i].d = &n.towers[i-1]
			n.towers[i-1].u = &n.towers[i]
		}
	}
	n.towers[0].sum = val
	return n
}

// NewList creates an empty list.
func NewList() *List {
	l := &List{}
	for i := range l.head {
		l.head[i].list = l
		if i > 0 {
			l.head[i].d = &l.head[i-1]
			l.head[i-1].u = &l.head[i]
		}
	}
	return l
}

// Len returns the number of elements.
func (l *List) Len() int64 { return l.n }

// Agg returns the aggregate over the whole list.
func (l *List) Agg() Value { return l.head[MaxHeight-1].sum }

// First returns the first element, or nil if empty.
func (l *List) First() *Node {
	t := l.head[0].r
	if t == nil {
		return nil
	}
	return t.owner
}

// ListOf returns the list containing x: climb up when possible, else left,
// until the head is reached. O(lg n) expected.
func ListOf(x *Node) *List {
	t := &x.towers[len(x.towers)-1]
	for t.owner != nil {
		if t.u != nil {
			t = t.u
		} else {
			t = t.l
		}
	}
	for t.u != nil {
		t = t.u
	}
	return t.list
}

// fix recomputes t.sum from the level below (or from the owner's Val at
// height 1). The children of t at height h are the towers from t.d rightward
// up to (t.r).d exclusive.
func fix(t *tower, h int) {
	if h == 0 {
		if t.owner != nil {
			t.sum = t.owner.Val
		} else {
			t.sum = Value{}
		}
		return
	}
	var stop *tower
	if t.r != nil {
		stop = t.r.d
	}
	acc := Value{}
	for c := t.d; c != stop; c = c.r {
		acc = acc.Add(c.sum)
		if c.r == nil {
			break
		}
	}
	t.sum = acc
}

// fixPath recomputes aggregates along the covering-tower chain of t (at
// grid height index h0) up to the head's top tower. The covering tower at
// height h+1 is found by walking left at height h until a tower with an up
// pointer.
func fixPath(t *tower, h0 int) {
	h := h0
	fix(t, h)
	for {
		for t.u == nil {
			if t.l == nil {
				return // above the head's top: impossible, heads are full height
			}
			t = t.l
		}
		t = t.u
		h++
		fix(t, h)
		if t.owner == nil && t.u == nil {
			return
		}
	}
}

// Append adds an unattached node at the end of the list. O(lg n) expected.
func Append(l *List, x *Node) {
	// Rightmost path gives the tail tower per height.
	t := &l.head[MaxHeight-1]
	tails := make([]*tower, MaxHeight)
	for h := MaxHeight - 1; ; h-- {
		for t.r != nil {
			t = t.r
		}
		tails[h] = t
		if h == 0 {
			break
		}
		t = t.d
	}
	for h := 0; h < len(x.towers); h++ {
		x.towers[h].l = tails[h]
		x.towers[h].r = nil
		tails[h].r = &x.towers[h]
	}
	l.n++
	fixPath(&x.towers[0], 0)
}

// Join moves every element of b onto the end of a and returns a. b becomes
// empty. O(lg n) expected: splice per height at a's tail path, then repair
// aggregates along that path.
func Join(a, b *List) *List {
	if b.n == 0 {
		return a
	}
	// Tails of a per height, computed before any relinking.
	var tails [MaxHeight]*tower
	t := &a.head[MaxHeight-1]
	for h := MaxHeight - 1; ; h-- {
		for t.r != nil {
			t = t.r
		}
		tails[h] = t
		if h == 0 {
			break
		}
		t = t.d
	}
	for h := 0; h < MaxHeight; h++ {
		first := b.head[h].r
		if first != nil {
			tails[h].r = first
			first.l = tails[h]
		}
		b.head[h].r = nil
		b.head[h].sum = Value{}
	}
	a.n += b.n
	b.n = 0
	// tails[h] is exactly the covering chain of a's last element, i.e. the
	// set of towers whose ranges grew; repair bottom-up.
	fixPath(tails[0], 0)
	return a
}

// SplitBefore cuts the list containing x so that x begins a fresh list.
// Returns (prefix list, suffix list). O(lg n) expected.
func SplitBefore(x *Node) (*List, *List) {
	a := ListOf(x)
	bsz := a.n - Index(x)
	b := NewList()
	left0 := x.towers[0].l // last prefix tower at height 1 (possibly a head)
	// s walks the first at-or-after-x tower per height; relink each height.
	s := &x.towers[0]
	for h := 0; h < MaxHeight && s != nil; h++ {
		s.l.r = nil // truncate prefix
		b.head[h].r = s
		s.l = &b.head[h]
		// First tall tower at or after s gives the next height's seam.
		var up *tower
		for c := s; c != nil; c = c.r {
			if c.u != nil {
				up = c.u
				break
			}
		}
		s = up
	}
	a.n -= bsz
	b.n = bsz
	// Repair a along the covering chain of its new last element: this chain
	// passes through every prefix tower whose range was truncated,
	// including heads taller than the suffix.
	fixPath(left0, 0)
	// Repair b's head towers bottom-up (element towers inside b kept their
	// ranges).
	for h := 0; h < MaxHeight; h++ {
		fix(&b.head[h], h)
	}
	return a, b
}

// Index returns x's zero-based position: the classic backward climb, summing
// the aggregates of every tower passed on a leftward step.
func Index(x *Node) int64 {
	t := &x.towers[0]
	acc := int64(0)
	for t.owner != nil {
		if t.u != nil {
			t = t.u
			continue
		}
		t = t.l
		acc += t.sum.Cnt
	}
	return acc
}

// At returns the i-th element (zero-based), or nil if out of range: descend
// from the head's top tower by aggregate counts. `before` tracks the number
// of elements strictly before the current tower's range (head towers
// contribute zero to their own count, so the arithmetic is uniform).
func (l *List) At(i int64) *Node {
	if i < 0 || i >= l.n {
		return nil
	}
	t := &l.head[MaxHeight-1]
	before := int64(0)
	for {
		for t.r != nil && before+t.sum.Cnt <= i {
			before += t.sum.Cnt
			t = t.r
		}
		if t.d == nil {
			return t.owner
		}
		t = t.d
	}
}

// SetVal updates x's value and repairs aggregates along its covering chain.
func SetVal(x *Node, v Value) {
	x.Val = v
	fixPath(&x.towers[0], 0)
}

// AddVal adds delta to x's value.
func AddVal(x *Node, delta Value) {
	SetVal(x, x.Val.Add(delta))
}

// Collect appends elements with proj(Val) > 0, in order, until the
// accumulated projection reaches limit, pruning zero-aggregate ranges by
// descending the tower grid. Returns the accumulated amount.
func (l *List) Collect(limit int64, proj func(Value) int64, out *[]*Node) int64 {
	got := int64(0)
	var walk func(t *tower, h int, stop *tower)
	walk = func(t *tower, h int, stop *tower) {
		for c := t; c != stop && c != nil && got < limit; c = c.r {
			if proj(c.sum) == 0 {
				continue
			}
			if h == 0 {
				if c.owner != nil {
					if v := proj(c.owner.Val); v > 0 {
						*out = append(*out, c.owner)
						got += v
					}
				}
				continue
			}
			var cstop *tower
			if c.r != nil {
				cstop = c.r.d
			}
			walk(c.d, h-1, cstop)
		}
	}
	walk(&l.head[MaxHeight-1], MaxHeight-1, nil)
	return got
}
