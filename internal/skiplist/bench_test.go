package skiplist

import (
	"math/rand"
	"testing"
)

func benchList(n int) (*List, []*Node) {
	l := NewList()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(Value{Cnt: 1}, i)
		Append(l, nodes[i])
	}
	return l, nodes
}

func BenchmarkRotate(b *testing.B) {
	n := 1 << 16
	l, nodes := benchList(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := nodes[rng.Intn(n-1)+1]
		a, c := SplitBefore(x)
		nl := NewList()
		Join(nl, c)
		Join(nl, a)
		l = nl
	}
	_ = l
}

func BenchmarkIndex(b *testing.B) {
	n := 1 << 16
	_, nodes := benchList(n)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Index(nodes[rng.Intn(n)])
	}
}

func BenchmarkListOf(b *testing.B) {
	n := 1 << 16
	_, nodes := benchList(n)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ListOf(nodes[rng.Intn(n)])
	}
}

func BenchmarkAddVal(b *testing.B) {
	n := 1 << 16
	_, nodes := benchList(n)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddVal(nodes[rng.Intn(n)], Value{NonTree: 1})
	}
}
