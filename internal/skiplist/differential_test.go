package skiplist

import (
	"testing"
	"testing/quick"

	"repro/internal/treap"
)

// TestDifferentialAgainstTreap drives identical operation scripts through
// both sequence substrates and requires identical observable behaviour:
// sequence order, lengths, aggregates, ranks and collect results. This is
// the strongest evidence the two structures are interchangeable, which is
// what justifies the treap substitution documented in DESIGN.md §3.
func TestDifferentialAgainstTreap(t *testing.T) {
	type op struct {
		Kind uint8
		Pos  uint16
		Amt  uint8
	}
	f := func(ops []op) bool {
		sl := NewList()
		var tr *treap.Node
		var sNodes []*Node
		var tNodes []*treap.Node
		next := 0
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // append
				sn := NewNode(Value{Cnt: 1}, next)
				tn := treap.NewNode(treap.Value{Cnt: 1}, next)
				Append(sl, sn)
				tr = treap.Join(tr, tn)
				sNodes = append(sNodes, sn)
				tNodes = append(tNodes, tn)
				next++
			case 1: // rotate at position
				if len(sNodes) < 2 {
					continue
				}
				k := 1 + int(o.Pos)%(len(sNodes)-1)
				// Identify the node at rank k in CURRENT order via the
				// treap, then split both structures before it.
				tn := treap.At(tr, int64(k))
				sn := sl.At(int64(k))
				if tn.Data.(int) != sn.Data.(int) {
					return false // order diverged
				}
				ta, tb := treap.SplitBefore(tn)
				tr = treap.Join(tb, ta)
				sa, sb := SplitBefore(sn)
				nl := NewList()
				Join(nl, sb)
				Join(nl, sa)
				sl = nl
			case 2: // point update
				if len(sNodes) == 0 {
					continue
				}
				i := int(o.Pos) % len(sNodes)
				delta := int64(o.Amt % 5)
				AddVal(sNodes[i], Value{NonTree: delta})
				treap.AddVal(tNodes[i], treap.Value{NonTree: delta})
			case 3: // rank check of a random node
				if len(sNodes) == 0 {
					continue
				}
				i := int(o.Pos) % len(sNodes)
				if Index(sNodes[i]) != treap.Index(tNodes[i]) {
					return false
				}
			}
			// Aggregates must agree at every step.
			var ta treap.Value
			if tr != nil {
				ta = treap.Agg(tr)
			}
			sa := sl.Agg()
			if sa.Cnt != ta.Cnt || sa.NonTree != ta.NonTree {
				return false
			}
		}
		// Final order comparison.
		if tr == nil {
			return sl.Len() == 0
		}
		i := int64(0)
		ok := true
		treap.Walk(tr, func(n *treap.Node) {
			sn := sl.At(i)
			if sn == nil || sn.Data.(int) != n.Data.(int) {
				ok = false
			}
			i++
		})
		if !ok || i != sl.Len() {
			return false
		}
		// Collect must find the same marked nodes in the same order.
		proj := func(v Value) int64 { return v.NonTree }
		tproj := func(v treap.Value) int64 { return v.NonTree }
		var sOut []*Node
		var tOut []*treap.Node
		sGot := sl.Collect(1<<60, proj, &sOut)
		tGot := treap.Collect(tr, 1<<60, tproj, &tOut)
		if sGot != tGot || len(sOut) != len(tOut) {
			return false
		}
		for j := range sOut {
			if sOut[j].Data.(int) != tOut[j].Data.(int) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
