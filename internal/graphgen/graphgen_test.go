package graphgen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

func connected(n int, es []graph.Edge) bool {
	uf := unionfind.New(n)
	for _, e := range es {
		uf.Union(e.U, e.V)
	}
	return uf.Components() == 1
}

func noDupsOrLoops(t *testing.T, es []graph.Edge) {
	t.Helper()
	seen := map[uint64]bool{}
	for _, e := range es {
		if e.IsLoop() {
			t.Fatalf("self-loop %v", e)
		}
		if seen[e.Key()] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e.Key()] = true
	}
}

func TestPathRingStarTree(t *testing.T) {
	n := 33
	if es := Path(n); len(es) != n-1 || !connected(n, es) {
		t.Fatal("Path wrong")
	}
	if es := Ring(n); len(es) != n || !connected(n, es) {
		t.Fatal("Ring wrong")
	}
	if es := Star(n); len(es) != n-1 || !connected(n, es) {
		t.Fatal("Star wrong")
	}
	if es := BinaryTree(n); len(es) != n-1 || !connected(n, es) {
		t.Fatal("BinaryTree wrong")
	}
	noDupsOrLoops(t, Ring(n))
}

func TestGrid(t *testing.T) {
	r, c := 5, 7
	es := Grid(r, c)
	want := r*(c-1) + c*(r-1)
	if len(es) != want {
		t.Fatalf("Grid edges = %d, want %d", len(es), want)
	}
	if !connected(r*c, es) {
		t.Fatal("grid not connected")
	}
	noDupsOrLoops(t, es)
}

func TestRandomGraphProperties(t *testing.T) {
	n, m := 100, 300
	es := RandomGraph(n, m, 42)
	if len(es) != m {
		t.Fatalf("RandomGraph produced %d edges", len(es))
	}
	noDupsOrLoops(t, es)
	// Determinism.
	es2 := RandomGraph(n, m, 42)
	for i := range es {
		if es[i] != es2[i] {
			t.Fatal("RandomGraph not deterministic in seed")
		}
	}
	es3 := RandomGraph(n, m, 43)
	same := true
	for i := range es {
		if es[i] != es3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomSpanningTree(t *testing.T) {
	n := 200
	es := RandomSpanningTree(n, 7)
	if len(es) != n-1 || !connected(n, es) {
		t.Fatal("RandomSpanningTree not a spanning tree")
	}
	// Acyclicity via union-find.
	uf := unionfind.New(n)
	for _, e := range es {
		if !uf.Union(e.U, e.V) {
			t.Fatal("spanning tree contains a cycle")
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	n := 500
	es := PowerLaw(n, 3, 5)
	noDupsOrLoops(t, es)
	deg := make([]int, n)
	for _, e := range es {
		deg[e.U]++
		deg[e.V]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Heavy tail: the max degree should far exceed the mean.
	mean := 2 * len(es) / n
	if maxDeg < 3*mean {
		t.Fatalf("max degree %d vs mean %d: no heavy tail", maxDeg, mean)
	}
}

func TestBatchesPartition(t *testing.T) {
	es := Path(10)
	bs := Batches(es, 4)
	if len(bs) != 3 || len(bs[0]) != 4 || len(bs[2]) != 1 {
		t.Fatalf("Batches shapes wrong: %d groups", len(bs))
	}
	total := 0
	for _, b := range bs {
		total += len(b)
	}
	if total != len(es) {
		t.Fatal("Batches lost edges")
	}
	if got := Batches(es, 0); len(got) != len(es) {
		t.Fatal("Batches(0) should fall back to size 1")
	}
}

func TestQueryBatchAndShuffle(t *testing.T) {
	qs := QueryBatch(50, 20, 3)
	if len(qs) != 20 {
		t.Fatalf("QueryBatch len = %d", len(qs))
	}
	for _, q := range qs {
		if q.U < 0 || q.U >= 50 || q.V < 0 || q.V >= 50 {
			t.Fatalf("query out of range: %v", q)
		}
	}
	es := Path(100)
	orig := make([]graph.Edge, len(es))
	copy(orig, es)
	Shuffle(es, 9)
	moved := 0
	for i := range es {
		if es[i] != orig[i] {
			moved++
		}
	}
	if moved < len(es)/2 {
		t.Fatal("Shuffle barely permuted")
	}
}

func TestMixedWorkloadScript(t *testing.T) {
	w := MixedWorkload(64, 100, 25, 10, 3, 16, 1)
	ins, del, qry := 0, 0, 0
	for _, op := range w.Ops {
		switch op.Kind {
		case OpInsert:
			ins += len(op.Edges)
		case OpDelete:
			del += len(op.Edges)
		case OpQuery:
			qry += len(op.Edges)
		}
	}
	if del != 3*10 {
		t.Fatalf("deletes = %d", del)
	}
	if qry != 3*16 {
		t.Fatalf("queries = %d", qry)
	}
	if ins != 100+del { // base graph + re-inserts
		t.Fatalf("inserts = %d", ins)
	}
}
