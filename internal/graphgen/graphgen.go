// Package graphgen generates the synthetic graphs and batch-update streams
// used by the example applications, tests and the experiment harness:
// Erdős–Rényi graphs, paths, rings, stars, grids, binary trees, and
// preferential-attachment (power-law) graphs, plus batched insert/delete
// schedules over them. All generators are deterministic in their seed.
package graphgen

import (
	"math/rand"

	"repro/internal/graph"
)

// Path returns the n-1 edges of a path 0-1-...-n-1.
func Path(n int) []graph.Edge {
	es := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{U: graph.Vertex(i - 1), V: graph.Vertex(i)})
	}
	return es
}

// Ring returns the n edges of a cycle over n vertices.
func Ring(n int) []graph.Edge {
	es := Path(n)
	return append(es, graph.Edge{U: graph.Vertex(n - 1), V: 0})
}

// Star returns n-1 spokes around center 0.
func Star(n int) []graph.Edge {
	es := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{U: 0, V: graph.Vertex(i)})
	}
	return es
}

// BinaryTree returns the edges of a complete binary tree over n vertices
// (vertex i has parent (i-1)/2).
func BinaryTree(n int) []graph.Edge {
	es := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{U: graph.Vertex((i - 1) / 2), V: graph.Vertex(i)})
	}
	return es
}

// Grid returns the edges of an r x c grid (n = r*c vertices, row-major).
func Grid(r, c int) []graph.Edge {
	var es []graph.Edge
	at := func(i, j int) graph.Vertex { return graph.Vertex(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				es = append(es, graph.Edge{U: at(i, j), V: at(i, j+1)})
			}
			if i+1 < r {
				es = append(es, graph.Edge{U: at(i, j), V: at(i+1, j)})
			}
		}
	}
	return es
}

// RandomGraph returns m distinct random edges over n vertices (Erdős–Rényi
// G(n, m) without duplicates or loops).
func RandomGraph(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, m)
	es := make([]graph.Edge, 0, m)
	for len(es) < m {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if seen[e.Key()] {
			continue
		}
		seen[e.Key()] = true
		es = append(es, e)
	}
	return es
}

// RandomSpanningTree returns n-1 edges of a uniform-attachment random tree:
// vertex i attaches to a uniformly random earlier vertex.
func RandomSpanningTree(n int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	es := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{U: graph.Vertex(rng.Intn(i)), V: graph.Vertex(i)})
	}
	return es
}

// PowerLaw returns a preferential-attachment graph: each new vertex adds
// deg edges to endpoints sampled proportionally to current degree (the
// Barabási–Albert process), yielding the heavy-tailed degree distributions
// of social and web graphs.
func PowerLaw(n, deg int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	var es []graph.Edge
	var endpoints []graph.Vertex // degree-weighted sampling pool
	seen := make(map[uint64]bool)
	for i := 1; i < n; i++ {
		v := graph.Vertex(i)
		tries := 0
		added := 0
		for added < deg && tries < 4*deg+8 {
			tries++
			var u graph.Vertex
			if len(endpoints) == 0 {
				u = graph.Vertex(rng.Intn(i))
			} else if rng.Intn(4) == 0 {
				u = graph.Vertex(rng.Intn(i)) // uniform mixing keeps graph connected-ish
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if u == v {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			if seen[e.Key()] {
				continue
			}
			seen[e.Key()] = true
			es = append(es, e)
			endpoints = append(endpoints, u, v)
			added++
		}
	}
	return es
}

// Shuffle permutes the edges in place, deterministically in seed.
func Shuffle(es []graph.Edge, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
}

// Batches splits edges into consecutive batches of the given size (the last
// may be smaller).
func Batches(es []graph.Edge, size int) [][]graph.Edge {
	if size <= 0 {
		size = 1
	}
	var out [][]graph.Edge
	for lo := 0; lo < len(es); lo += size {
		hi := lo + size
		if hi > len(es) {
			hi = len(es)
		}
		out = append(out, es[lo:hi])
	}
	return out
}

// QueryBatch returns k random vertex pairs for connectivity queries.
func QueryBatch(n, k int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]graph.Edge, k)
	for i := range qs {
		qs[i] = graph.Edge{U: graph.Vertex(rng.Intn(n)), V: graph.Vertex(rng.Intn(n))}
	}
	return qs
}

// Workload is a scripted sequence of batched operations.
type Workload struct {
	Ops []Op
}

// OpKind discriminates workload operations.
type OpKind int

// Workload operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpQuery
)

// Op is one batched operation.
type Op struct {
	Kind  OpKind
	Edges []graph.Edge
}

// MixedWorkload builds a deterministic stream over a base random graph:
// insert the graph in batches of ins, then alternate delete/re-insert
// batches of del edges for rounds rounds, issuing q queries after each.
func MixedWorkload(n, m, ins, del, rounds, q int, seed int64) Workload {
	base := RandomGraph(n, m, seed)
	var w Workload
	for _, b := range Batches(base, ins) {
		w.Ops = append(w.Ops, Op{Kind: OpInsert, Edges: b})
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for r := 0; r < rounds; r++ {
		lo := rng.Intn(max(1, len(base)-del))
		hi := min(len(base), lo+del)
		batch := base[lo:hi]
		w.Ops = append(w.Ops, Op{Kind: OpDelete, Edges: batch})
		if q > 0 {
			w.Ops = append(w.Ops, Op{Kind: OpQuery, Edges: QueryBatch(n, q, seed+int64(r))})
		}
		w.Ops = append(w.Ops, Op{Kind: OpInsert, Edges: batch})
	}
	return w
}
