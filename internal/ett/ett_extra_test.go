package ett

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

func TestBatchLinkDisjointParallelGroups(t *testing.T) {
	// 64 disjoint paths, linked as 64 groups in one parallel call.
	groups, length := 64, 16
	n := groups * length
	f := New(n)
	batch := make([][]graph.Edge, groups)
	for g := 0; g < groups; g++ {
		base := graph.Vertex(g * length)
		for i := 1; i < length; i++ {
			batch[g] = append(batch[g], graph.Edge{U: base + graph.Vertex(i-1), V: base + graph.Vertex(i)})
		}
	}
	f.BatchLinkDisjoint(batch)
	if f.NumEdges() != groups*(length-1) {
		t.Fatalf("NumEdges = %d", f.NumEdges())
	}
	for g := 0; g < groups; g++ {
		base := graph.Vertex(g * length)
		if !f.Connected(base, base+graph.Vertex(length-1)) {
			t.Fatalf("group %d not linked", g)
		}
		if g > 0 && f.Connected(base, 0) {
			t.Fatalf("groups %d and 0 merged", g)
		}
		if f.Size(base) != int64(length) {
			t.Fatalf("group %d size %d", g, f.Size(base))
		}
	}
}

func TestBatchLinkDisjointCycleDetection(t *testing.T) {
	f := New(4)
	f.Link(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("cycle within a group should panic")
		}
	}()
	f.BatchLinkDisjoint([][]graph.Edge{{{U: 1, V: 0}}})
}

func TestNumEdgesTracksLinkCut(t *testing.T) {
	f := New(8)
	f.Link(0, 1)
	f.Link(1, 2)
	if f.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", f.NumEdges())
	}
	f.Cut(0, 1)
	if f.NumEdges() != 1 {
		t.Fatalf("NumEdges after cut = %d", f.NumEdges())
	}
	f.BatchCut([]graph.Edge{{U: 1, V: 2}})
	if f.NumEdges() != 0 {
		t.Fatalf("NumEdges after batch cut = %d", f.NumEdges())
	}
}

func TestConcurrentQueriesDuringNoMutation(t *testing.T) {
	n := 1 << 12
	f := New(n)
	for i := 1; i < n; i++ {
		f.Link(graph.Vertex(rand.New(rand.NewSource(int64(i))).Intn(i)), graph.Vertex(i))
	}
	// Heavy parallel read traffic must be safe and consistent.
	qs := make([]graph.Edge, 1<<14)
	rng := rand.New(rand.NewSource(9))
	for i := range qs {
		qs[i] = graph.Edge{U: graph.Vertex(rng.Intn(n)), V: graph.Vertex(rng.Intn(n))}
	}
	res := f.BatchConnected(qs)
	for i := range res {
		if !res[i] {
			t.Fatalf("single tree: query %d false", i)
		}
	}
	reps := f.BatchFindRep(parallel.Tabulate(n, func(i int) graph.Vertex { return graph.Vertex(i) }))
	for i := 1; i < n; i++ {
		if reps[i] != reps[0] {
			t.Fatalf("rep mismatch at %d", i)
		}
	}
}

func TestFetchSlotsTourOrderStability(t *testing.T) {
	// Slots must come back in tour order so the doubling search's "first
	// csz edges" is deterministic between fetches with no interleaved
	// mutation.
	n := 32
	f := New(n)
	for i := 1; i < n; i++ {
		f.Link(graph.Vertex(i-1), graph.Vertex(i))
	}
	rng := rand.New(rand.NewSource(4))
	for v := 0; v < n; v++ {
		f.AddCounts(graph.Vertex(v), 0, int64(rng.Intn(3)))
	}
	rep := f.Rep(0)
	a := f.FetchNonTreeSlots(rep, 10)
	b := f.FetchNonTreeSlots(rep, 10)
	if len(a) != len(b) {
		t.Fatalf("fetch lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fetch not stable at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Prefix property: fetching more extends, not reorders.
	c := f.FetchNonTreeSlots(rep, 20)
	if len(c) < len(a) {
		t.Fatal("larger fetch returned fewer slots")
	}
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("larger fetch reordered prefix at %d", i)
		}
	}
}

func TestSetCountsIdempotent(t *testing.T) {
	f := New(4)
	f.AddCounts(2, 3, 5)
	f.SetCounts(2, 1, 1)
	tr, nt := f.Counts(2)
	if tr != 1 || nt != 1 {
		t.Fatalf("Counts = %d,%d", tr, nt)
	}
	if f.CompTree(2) != 1 || f.CompNonTree(2) != 1 {
		t.Fatal("component aggregates wrong after SetCounts")
	}
}

func TestRepInvalidationAcrossLinkCut(t *testing.T) {
	f := New(4)
	f.Link(0, 1)
	r1 := f.Rep(0)
	f.Link(2, 3)
	f.Link(1, 2)
	r2 := f.Rep(0)
	if f.Rep(3) != r2 {
		t.Fatal("all vertices must share the merged rep")
	}
	_ = r1 // old rep may or may not coincide; only current equality matters
	f.Cut(1, 2)
	if f.Rep(0) == f.Rep(2) {
		t.Fatal("reps equal after cut")
	}
}
