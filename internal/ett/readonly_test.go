package ett

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestForestConcurrentReadOnlyQueries enforces the read-only query contract
// under -race: with no mutation in flight, concurrent goroutines hammer
// every query method on a forest of several non-trivial components plus
// never-touched singletons, and answers must match a sequentially computed
// oracle. Any write on a query path (including lazy loop-element creation,
// which the contract forbids) is flagged by the race detector.
func TestForestConcurrentReadOnlyQueries(t *testing.T) {
	const n = 2048
	f := New(n)
	// Components: a path over [0,512), a star at 512 over [512,1024), and
	// vertices [1024,2048) left untouched (nil-rep singletons).
	var es []graph.Edge
	for u := 1; u < 512; u++ {
		es = append(es, graph.Edge{U: graph.Vertex(u - 1), V: graph.Vertex(u)})
	}
	for u := 513; u < 1024; u++ {
		es = append(es, graph.Edge{U: 512, V: graph.Vertex(u)})
	}
	f.BatchLink(es)
	f.AddCounts(5, 2, 3)
	f.AddCounts(600, 1, 4)

	comp := func(u int) int {
		switch {
		case u < 512:
			return 0
		case u < 1024:
			return 1
		default:
			return u // untouched singletons
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for u := g; u < n; u += goroutines {
				v := (u*7 + 13) % n
				want := comp(u) == comp(v)
				if got := f.Connected(graph.Vertex(u), graph.Vertex(v)); got != want {
					t.Errorf("Connected(%d,%d) = %v, want %v", u, v, got, want)
					return
				}
				var wantSize int64 = 512
				if u >= 1024 {
					wantSize = 1
				}
				if got := f.Size(graph.Vertex(u)); got != wantSize {
					t.Errorf("Size(%d) = %d, want %d", u, got, wantSize)
					return
				}
				r := f.Rep(graph.Vertex(u))
				if (r == nil) != (u >= 1024) {
					t.Errorf("Rep(%d) nil-ness wrong", u)
					return
				}
				if r != nil && f.RepSize(r) != wantSize {
					t.Errorf("RepSize(Rep(%d)) = %d", u, f.RepSize(r))
					return
				}
			}
			// Component-aggregate and slot queries on the path component.
			if got := f.CompTree(5); got != 2 {
				t.Errorf("CompTree(5) = %d, want 2", got)
			}
			if got := f.CompNonTree(100); got != 3 {
				t.Errorf("CompNonTree(100) = %d, want 3", got)
			}
			slots := f.FetchNonTreeSlots(f.Rep(0), 3)
			if len(slots) != 1 || slots[0].V != 5 || slots[0].Cnt != 3 {
				t.Errorf("FetchNonTreeSlots = %v", slots)
			}
			if got := len(f.Vertices(f.Rep(512))); got != 512 {
				t.Errorf("Vertices(star) = %d vertices, want 512", got)
			}
			qs := []graph.Edge{{U: 0, V: 511}, {U: 0, V: 512}, {U: 1024, V: 1025}}
			ans := f.BatchConnected(qs)
			if !ans[0] || ans[1] || ans[2] {
				t.Errorf("BatchConnected = %v, want [true false false]", ans)
			}
			reps := f.BatchFindRep([]graph.Vertex{3, 300, 1500})
			if reps[0] != reps[1] || reps[0] == nil || reps[2] != nil {
				t.Error("BatchFindRep inconsistent")
			}
			tr, ntr := f.Counts(600)
			if tr != 1 || ntr != 4 {
				t.Errorf("Counts(600) = %d,%d, want 1,4", tr, ntr)
			}
			if !f.HasEdge(512, 600) || f.HasEdge(0, 2) {
				t.Error("HasEdge wrong")
			}
		}(g)
	}
	wg.Wait()
}
