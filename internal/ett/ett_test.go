package ett

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// dsu is a reference union-find used as the connectivity oracle.
type dsu struct{ p []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{p}
}
func (d *dsu) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}
func (d *dsu) union(a, b int) { d.p[d.find(a)] = d.find(b) }

func TestSingletons(t *testing.T) {
	f := New(5)
	for u := graph.Vertex(0); u < 5; u++ {
		if f.Size(u) != 1 {
			t.Fatalf("Size(%d) = %d", u, f.Size(u))
		}
		for v := graph.Vertex(0); v < 5; v++ {
			if (u == v) != f.Connected(u, v) {
				t.Fatalf("Connected(%d,%d) wrong", u, v)
			}
		}
	}
	if f.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d", f.NumEdges())
	}
}

func TestLinkCutRoundTrip(t *testing.T) {
	f := New(4)
	f.Link(0, 1)
	if !f.Connected(0, 1) || f.Connected(0, 2) {
		t.Fatal("link 0-1 wrong")
	}
	if f.Size(0) != 2 || f.Size(2) != 1 {
		t.Fatal("sizes wrong after link")
	}
	f.Link(2, 3)
	f.Link(1, 2)
	if !f.Connected(0, 3) || f.Size(3) != 4 {
		t.Fatal("path 0-1-2-3 not connected")
	}
	f.Cut(1, 2)
	if f.Connected(0, 2) || !f.Connected(0, 1) || !f.Connected(2, 3) {
		t.Fatal("cut 1-2 wrong")
	}
	if f.Size(0) != 2 || f.Size(2) != 2 {
		t.Fatal("sizes wrong after cut")
	}
	f.Cut(0, 1)
	f.Cut(2, 3)
	for u := graph.Vertex(0); u < 4; u++ {
		if f.Size(u) != 1 {
			t.Fatalf("Size(%d) = %d after all cuts", u, f.Size(u))
		}
	}
}

func TestLinkCycleDetection(t *testing.T) {
	f := New(3)
	f.Link(0, 1)
	f.Link(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Link creating a cycle should panic")
		}
	}()
	f.Link(0, 2)
}

func TestCutAbsentPanics(t *testing.T) {
	f := New(3)
	f.Link(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Cut of absent edge should panic")
		}
	}()
	f.Cut(1, 2)
}

func TestCutEitherOrientation(t *testing.T) {
	f := New(2)
	f.Link(0, 1)
	f.Cut(1, 0) // reverse orientation must work
	if f.Connected(0, 1) {
		t.Fatal("cut by reversed orientation failed")
	}
}

func TestRepStableWithinComponent(t *testing.T) {
	f := New(6)
	f.Link(0, 1)
	f.Link(1, 2)
	f.Link(3, 4)
	r0 := f.Rep(0)
	if f.Rep(1) != r0 || f.Rep(2) != r0 {
		t.Fatal("component members disagree on rep")
	}
	if f.Rep(3) == r0 || f.Rep(5) == r0 {
		t.Fatal("distinct components share rep")
	}
	if f.RepSize(r0) != 3 {
		t.Fatalf("RepSize = %d", f.RepSize(r0))
	}
}

func TestAugmentedCounts(t *testing.T) {
	f := New(5)
	f.Link(0, 1)
	f.Link(1, 2)
	f.AddCounts(0, 0, 2) // two non-tree edges at vertex 0
	f.AddCounts(2, 1, 1)
	if f.CompNonTree(1) != 3 {
		t.Fatalf("CompNonTree = %d", f.CompNonTree(1))
	}
	if f.CompTree(1) != 1 {
		t.Fatalf("CompTree = %d", f.CompTree(1))
	}
	// Counts travel with the component under cuts.
	f.Cut(1, 2)
	if f.CompNonTree(0) != 2 || f.CompNonTree(2) != 1 {
		t.Fatalf("counts after cut: %d / %d", f.CompNonTree(0), f.CompNonTree(2))
	}
	tr, nt := f.Counts(2)
	if tr != 1 || nt != 1 {
		t.Fatalf("Counts(2) = %d,%d", tr, nt)
	}
	f.SetCounts(2, 0, 0)
	if f.CompNonTree(2) != 0 || f.CompTree(2) != 0 {
		t.Fatal("SetCounts did not clear")
	}
}

func TestFetchSlots(t *testing.T) {
	f := New(10)
	for v := graph.Vertex(1); v < 6; v++ {
		f.Link(v-1, v) // path 0..5
	}
	f.AddCounts(1, 0, 3)
	f.AddCounts(4, 0, 2)
	f.AddCounts(5, 2, 0)
	rep := f.Rep(0)
	slots := f.FetchNonTreeSlots(rep, 4)
	total := int64(0)
	for _, s := range slots {
		total += s.Cnt
		if s.V != 1 && s.V != 4 {
			t.Fatalf("unexpected slot vertex %d", s.V)
		}
	}
	if total < 4 {
		t.Fatalf("slots covered %d, want >= 4", total)
	}
	// Requesting more than available returns everything.
	slots = f.FetchNonTreeSlots(rep, 100)
	total = 0
	for _, s := range slots {
		total += s.Cnt
	}
	if total != 5 {
		t.Fatalf("total non-tree slots = %d, want 5", total)
	}
	ts := f.FetchTreeSlots(rep, 100)
	if len(ts) != 1 || ts[0].V != 5 || ts[0].Cnt != 2 {
		t.Fatalf("tree slots = %v", ts)
	}
	if got := f.FetchNonTreeSlots(rep, 0); got != nil {
		t.Fatal("limit 0 should fetch nothing")
	}
}

func TestVerticesEnumeratesComponent(t *testing.T) {
	f := New(6)
	f.Link(2, 4)
	f.Link(4, 0)
	vs := f.Vertices(f.Rep(2))
	if len(vs) != 3 {
		t.Fatalf("Vertices = %v", vs)
	}
	seen := map[graph.Vertex]bool{}
	for _, v := range vs {
		seen[v] = true
	}
	if !seen[0] || !seen[2] || !seen[4] {
		t.Fatalf("Vertices = %v", vs)
	}
}

func TestBatchConnectedAndFindRep(t *testing.T) {
	f := New(8)
	f.BatchLink([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 5}})
	got := f.BatchConnected([]graph.Edge{{U: 0, V: 2}, {U: 0, V: 4}, {U: 4, V: 5}, {U: 6, V: 7}})
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BatchConnected[%d] = %v", i, got[i])
		}
	}
	reps := f.BatchFindRep([]graph.Vertex{0, 1, 2, 4, 6})
	if reps[0] != reps[1] || reps[1] != reps[2] {
		t.Fatal("reps of one component differ")
	}
	if reps[0] == reps[3] || reps[3] == reps[4] {
		t.Fatal("reps of distinct components collide")
	}
}

func TestBatchCutParallelAcrossTrees(t *testing.T) {
	// Many disjoint paths; batch-cut one edge from each.
	trees, length := 32, 8
	n := trees * length
	f := New(n)
	var cuts []graph.Edge
	for tr := 0; tr < trees; tr++ {
		base := graph.Vertex(tr * length)
		for i := 1; i < length; i++ {
			f.Link(base+graph.Vertex(i-1), base+graph.Vertex(i))
		}
		cuts = append(cuts, graph.Edge{U: base + 3, V: base + 4})
	}
	f.BatchCut(cuts)
	for tr := 0; tr < trees; tr++ {
		base := graph.Vertex(tr * length)
		if f.Connected(base+3, base+4) {
			t.Fatalf("tree %d not cut", tr)
		}
		if !f.Connected(base, base+3) || !f.Connected(base+4, base+7) {
			t.Fatalf("tree %d halves broken", tr)
		}
		if f.Size(base) != 4 || f.Size(base+4) != 4 {
			t.Fatalf("tree %d sizes wrong", tr)
		}
	}
}

func TestBatchCutManyInSameTree(t *testing.T) {
	n := 64
	f := New(n)
	for i := 1; i < n; i++ {
		f.Link(graph.Vertex(i-1), graph.Vertex(i))
	}
	var cuts []graph.Edge
	for i := 8; i < n; i += 8 {
		cuts = append(cuts, graph.Edge{U: graph.Vertex(i - 1), V: graph.Vertex(i)})
	}
	f.BatchCut(cuts)
	for i := 0; i < n; i += 8 {
		base := graph.Vertex(i)
		if f.Size(base) != 8 {
			t.Fatalf("segment at %d has size %d", i, f.Size(base))
		}
	}
}

func TestRandomLinkCutAgainstDSU(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 60
	for trial := 0; trial < 20; trial++ {
		f := New(n)
		var live []graph.Edge
		for step := 0; step < 200; step++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				u := graph.Vertex(rng.Intn(n))
				v := graph.Vertex(rng.Intn(n))
				if u != v && !f.Connected(u, v) {
					f.Link(u, v)
					live = append(live, graph.Edge{U: u, V: v})
				}
			} else {
				i := rng.Intn(len(live))
				e := live[i]
				f.Cut(e.U, e.V)
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Oracle: rebuild connectivity from surviving edges.
		d := newDSU(n)
		for _, e := range live {
			d.union(int(e.U), int(e.V))
		}
		for q := 0; q < 200; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			want := d.find(u) == d.find(v)
			if got := f.Connected(graph.Vertex(u), graph.Vertex(v)); got != want {
				t.Fatalf("trial %d: Connected(%d,%d) = %v, want %v", trial, u, v, got, want)
			}
		}
		// Sizes must sum to n. Untouched vertices report a nil rep and
		// are singletons.
		sum := int64(0)
		reps := map[any]bool{}
		for u := 0; u < n; u++ {
			r := f.Rep(graph.Vertex(u))
			if r == nil {
				sum++
				continue
			}
			if !reps[r] {
				reps[r] = true
				sum += f.RepSize(r)
			}
		}
		if sum != int64(n) {
			t.Fatalf("component sizes sum to %d, want %d", sum, n)
		}
	}
}

func TestQuickForestMatchesDSU(t *testing.T) {
	type op struct {
		U, V uint8
	}
	f := func(ops []op) bool {
		n := 24
		fo := New(n)
		var live []graph.Edge
		for _, o := range ops {
			u := graph.Vertex(int(o.U) % n)
			v := graph.Vertex(int(o.V) % n)
			if u == v {
				continue
			}
			if fo.HasEdge(u, v) {
				fo.Cut(u, v)
				for i, e := range live {
					if e.Key() == (graph.Edge{U: u, V: v}).Key() {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			} else if !fo.Connected(u, v) {
				fo.Link(u, v)
				live = append(live, graph.Edge{U: u, V: v}.Canon())
			}
		}
		d := newDSU(n)
		for _, e := range live {
			d.union(int(e.U), int(e.V))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if fo.Connected(graph.Vertex(u), graph.Vertex(v)) != (d.find(u) == d.find(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestAugCountsSurviveRestructuring(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	f := New(n)
	want := make([]int64, n)
	var live []graph.Edge
	for step := 0; step < 400; step++ {
		switch rng.Intn(3) {
		case 0:
			u := graph.Vertex(rng.Intn(n))
			delta := int64(rng.Intn(3))
			f.AddCounts(u, 0, delta)
			want[u] += delta
		case 1:
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			if u != v && !f.Connected(u, v) {
				f.Link(u, v)
				live = append(live, graph.Edge{U: u, V: v})
			}
		case 2:
			if len(live) > 0 {
				i := rng.Intn(len(live))
				f.Cut(live[i].U, live[i].V)
				live = append(live[:i], live[i+1:]...)
			}
		}
	}
	// Per-component sums must equal the sum of per-vertex wants.
	comps := map[any][]graph.Vertex{}
	for u := 0; u < n; u++ {
		r := f.Rep(graph.Vertex(u))
		comps[r] = append(comps[r], graph.Vertex(u))
	}
	for r, vs := range comps {
		var sum int64
		for _, v := range vs {
			sum += want[v]
		}
		if got := f.CompNonTree(vs[0]); got != sum {
			t.Fatalf("component %v: CompNonTree = %d, want %d", r, got, sum)
		}
	}
}
