// Package ett implements batch-parallel Euler-tour trees (Tseng, Dhulipala,
// Blelloch, ALENEX 2019): a forest of n vertices under batches of links,
// cuts, connectivity and representative queries, with per-component
// augmented counters (vertex count, level-i tree-edge count, level-i
// non-tree-edge count) and the fetch/push-down primitives of the paper's
// Appendix 9.
//
// Each tree's Euler tour is a sequence holding one loop element per vertex
// and two arc elements per tree edge; the sequence lives in an augmented
// treap (internal/treap). Queries are embarrassingly parallel (read-only
// root walks). Batch mutations obtain parallelism by grouping operations by
// tour: cuts on distinct trees run concurrently, links are applied as
// sequential O(lg n) splices within each merge chain.
//
// # Read-only query contract
//
// Rep, Connected, Size, RepSize, RepTree, RepNonTree, Counts, CompTree,
// CompNonTree, FetchTreeSlots, FetchNonTreeSlots, Vertices, BatchConnected
// and BatchFindRep never create loop elements (they read f.verts directly
// rather than through vert) and bottom out in internal/treap's read-only
// walks, so any number of goroutines may run them concurrently with each
// other — just not concurrently with a mutation (Link, Cut, the batch
// variants, AddCounts, SetCounts). HasEdge is also safe concurrently (the
// arc index is mutex-sharded). The contract is enforced under -race by
// TestForestConcurrentReadOnlyQueries.
package ett

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/treap"
)

// arc identifies a directed tree-edge element in some tour.
type arc struct {
	from, to graph.Vertex
}

// Forest is a batch-dynamic forest over vertices [0, n).
//
// Vertex loop elements are created lazily on first mutation touching the
// vertex: a connectivity structure keeps lg n forests over the same vertex
// set and most vertices never participate below the top level, so eager
// allocation would waste O(n lg n) nodes. A vertex with no element is a
// singleton whose representative is reported as nil (see Rep).
//
//conn:readonly-queries
type Forest struct {
	n     int
	verts []*treap.Node // vertex loop elements; nil until first touch
	arcs  [arcShards]arcShard
	edges int // tree edge count
}

// arcShards shards the directed-arc index so that links touching disjoint
// tours (e.g. tree pushes of vertex-disjoint components) can proceed in
// parallel, contending only on short shard-local critical sections.
const arcShards = 64

type arcShard struct {
	mu sync.Mutex
	m  map[uint64]*treap.Node
}

// New creates a forest of n singleton vertices.
func New(n int) *Forest {
	f := &Forest{n: n, verts: make([]*treap.Node, n)}
	for i := range f.arcs {
		f.arcs[i].m = make(map[uint64]*treap.Node, 4)
	}
	return f
}

func (f *Forest) shard(k uint64) *arcShard {
	return &f.arcs[parallel.Hash64(k)&(arcShards-1)]
}

func (f *Forest) arcPut(k uint64, nd *treap.Node) {
	s := f.shard(k)
	s.mu.Lock()
	s.m[k] = nd
	s.mu.Unlock()
}

func (f *Forest) arcGet(k uint64) *treap.Node {
	s := f.shard(k)
	s.mu.Lock()
	nd := s.m[k]
	s.mu.Unlock()
	return nd
}

func (f *Forest) arcDel(k uint64) {
	s := f.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// vert returns u's loop element, creating it on first touch. Mutating paths
// only; concurrent callers must not share a vertex (batch operations group
// by vertex or by tour, which guarantees this).
func (f *Forest) vert(u graph.Vertex) *treap.Node {
	nd := f.verts[u]
	if nd == nil {
		nd = treap.NewNode(treap.Value{Cnt: 1, Size: 1}, u)
		f.verts[u] = nd
	}
	return nd
}

// N returns the number of vertices.
//
//conn:readonly
func (f *Forest) N() int { return f.n }

func arcKey(u, v graph.Vertex) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Rep returns the representative of u's component: the treap root. It is
// equal for two vertices iff they are connected, and is invalidated by any
// link or cut touching the component. A vertex that has never been touched
// at this level is a singleton and reports a nil representative — two nil
// reps do NOT imply connectivity; use Connected for queries. Read-only:
// safe for concurrent callers under the package's query contract.
//
//conn:readonly
func (f *Forest) Rep(u graph.Vertex) *treap.Node {
	nd := f.verts[u]
	if nd == nil {
		return nil
	}
	return treap.Root(nd)
}

// Connected reports whether u and v lie in the same tree. Read-only: safe
// for concurrent callers under the package's query contract.
//
//conn:readonly
func (f *Forest) Connected(u, v graph.Vertex) bool {
	if u == v {
		return true
	}
	ru, rv := f.Rep(u), f.Rep(v)
	if ru == nil || rv == nil {
		return false
	}
	return ru == rv
}

// Size returns the number of vertices in u's component.
//
//conn:readonly
func (f *Forest) Size(u graph.Vertex) int64 {
	nd := f.verts[u]
	if nd == nil {
		return 1
	}
	return treap.Agg(nd).Size
}

// RepSize returns the vertex count of the component with representative r.
//
//conn:readonly
func (f *Forest) RepSize(r *treap.Node) int64 { return treap.Agg(r).Size }

// RepNonTree returns the total non-tree-edge endpoint count of the component
// with representative r.
//
//conn:readonly
func (f *Forest) RepNonTree(r *treap.Node) int64 { return treap.Agg(r).NonTree }

// RepTree returns the total level-i tree-edge endpoint count of the
// component with representative r.
//
//conn:readonly
func (f *Forest) RepTree(r *treap.Node) int64 { return treap.Agg(r).Tree }

// HasEdge reports whether tree edge (u,v) is present.
func (f *Forest) HasEdge(u, v graph.Vertex) bool {
	return f.arcGet(arcKey(u, v)) != nil
}

// NumEdges returns the number of tree edges in the forest. Not synchronized
// with in-flight batch mutations.
//
//conn:readonly
func (f *Forest) NumEdges() int { return f.edges }

// reroot rotates u's tour so that u's loop element is first, returning the
// new root.
func (f *Forest) reroot(u graph.Vertex) *treap.Node {
	x := f.vert(u)
	a, b := treap.SplitBefore(x)
	return treap.Join(b, a)
}

// Link adds tree edge (u, v). The endpoints must lie in different trees;
// Link panics otherwise (the connectivity algorithm guarantees acyclicity,
// so a violation is a bug upstream).
func (f *Forest) Link(u, v graph.Vertex) {
	if f.Connected(u, v) {
		panic(fmt.Sprintf("ett: Link(%d,%d) would create a cycle", u, v))
	}
	tu := f.reroot(u)
	tv := f.reroot(v)
	au := treap.NewNode(treap.Value{Cnt: 1}, arc{u, v})
	av := treap.NewNode(treap.Value{Cnt: 1}, arc{v, u})
	f.arcPut(arcKey(u, v), au)
	f.arcPut(arcKey(v, u), av)
	f.edges++
	// Tour: [u ... ] (u,v) [v ...] (v,u)
	treap.Join(treap.Join(tu, au), treap.Join(tv, av))
}

// Cut removes tree edge (u, v); panics if absent.
func (f *Forest) Cut(u, v graph.Vertex) {
	au, av := f.takeArcs(u, v)
	cutArcs(au, av)
}

// takeArcs removes the two directed arc elements of edge (u,v) from the
// sharded arc index and returns them. The batch path still takes all arcs
// before fanning out the treap surgery so that grouping sees a consistent
// view.
func (f *Forest) takeArcs(u, v graph.Vertex) (au, av *treap.Node) {
	au = f.arcGet(arcKey(u, v))
	av = f.arcGet(arcKey(v, u))
	if au == nil || av == nil {
		panic(fmt.Sprintf("ett: Cut(%d,%d) of absent edge", u, v))
	}
	f.arcDel(arcKey(u, v))
	f.arcDel(arcKey(v, u))
	f.edges--
	return au, av
}

// cutArcs performs the tour surgery removing the two arc elements and
// recycles them into the treap node pool.
func cutArcs(au, av *treap.Node) {
	defer treap.Free(au)
	defer treap.Free(av)
	i1 := treap.Index(au)
	i2 := treap.Index(av)
	first := au
	if i1 > i2 {
		first = av
		i1, i2 = i2, i1
	}
	root := treap.Root(first)
	pre, rest := treap.SplitAt(root, i1)
	mid, suf := treap.SplitAt(rest, i2-i1+1)
	// mid = first ++ inner ++ second; strip the two arc elements.
	_, mid = treap.SplitAt(mid, 1)
	n := treap.Value{}
	if mid != nil {
		n = treap.Agg(treap.First(mid))
	}
	inner, _ := treap.SplitAt(mid, n.Cnt-1)
	_ = inner // inner is the detached subtree's tour (its own root now)
	treap.Join(pre, suf)
}

// AddCounts adjusts vertex u's augmented tree/non-tree edge counters (the
// number of level-i incident edges, where i is the level of this forest).
func (f *Forest) AddCounts(u graph.Vertex, dTree, dNonTree int64) {
	treap.AddVal(f.vert(u), treap.Value{Tree: dTree, NonTree: dNonTree})
}

// SetCounts overwrites u's augmented counters.
func (f *Forest) SetCounts(u graph.Vertex, tree, nonTree int64) {
	nd := f.vert(u)
	v := nd.Val
	treap.SetVal(nd, treap.Value{Cnt: v.Cnt, Size: v.Size, Tree: tree, NonTree: nonTree})
}

// Counts returns u's own (not component) counters.
// Counts returns u's element counters (level-i tree / non-tree endpoint
// counts).
//
//conn:readonly
func (f *Forest) Counts(u graph.Vertex) (tree, nonTree int64) {
	nd := f.verts[u]
	if nd == nil {
		return 0, 0
	}
	return nd.Val.Tree, nd.Val.NonTree
}

// CompNonTree returns the total non-tree-edge endpoint count in u's
// component (each intra-component edge is counted at both endpoints).
//
//conn:readonly
func (f *Forest) CompNonTree(u graph.Vertex) int64 {
	nd := f.verts[u]
	if nd == nil {
		return 0
	}
	return treap.Agg(nd).NonTree
}

// CompTree returns the total level-i tree-edge endpoint count in u's
// component.
//
//conn:readonly
func (f *Forest) CompTree(u graph.Vertex) int64 {
	nd := f.verts[u]
	if nd == nil {
		return 0
	}
	return treap.Agg(nd).Tree
}

// VertexSlot is one vertex holding cnt > 0 incident edges of the requested
// kind, in tour order.
type VertexSlot struct {
	V   graph.Vertex
	Cnt int64
}

func collect(rep *treap.Node, limit int64, proj func(treap.Value) int64) []VertexSlot {
	if rep == nil || limit <= 0 {
		return nil
	}
	var nodes []*treap.Node
	treap.Collect(rep, limit, proj, &nodes)
	out := make([]VertexSlot, 0, len(nodes))
	for _, nd := range nodes {
		if v, ok := nd.Data.(graph.Vertex); ok {
			out = append(out, VertexSlot{V: v, Cnt: proj(nd.Val)})
		}
	}
	return out
}

// FetchNonTreeSlots returns, in tour order, vertices of the component with
// representative rep carrying non-tree edges, until at least limit edge
// endpoints are covered (or the component is exhausted). O(result + lg n).
//
//conn:readonly
func (f *Forest) FetchNonTreeSlots(rep *treap.Node, limit int64) []VertexSlot {
	return collect(rep, limit, func(v treap.Value) int64 { return v.NonTree })
}

// FetchTreeSlots is FetchNonTreeSlots for level-i tree-edge counters.
//
//conn:readonly
func (f *Forest) FetchTreeSlots(rep *treap.Node, limit int64) []VertexSlot {
	return collect(rep, limit, func(v treap.Value) int64 { return v.Tree })
}

// Vertices returns all vertices of the component with representative rep, in
// tour order. O(component size).
//
//conn:readonly
func (f *Forest) Vertices(rep *treap.Node) []graph.Vertex {
	var out []graph.Vertex
	treap.Walk(rep, func(n *treap.Node) {
		if v, ok := n.Data.(graph.Vertex); ok {
			out = append(out, v)
		}
	})
	return out
}

// BatchConnected answers k connectivity queries in parallel.
//
//conn:readonly
func (f *Forest) BatchConnected(qs []graph.Edge) []bool {
	out := make([]bool, len(qs))
	parallel.For(len(qs), 64, func(i int) {
		out[i] = f.Connected(qs[i].U, qs[i].V)
	})
	return out
}

// BatchFindRep returns the representative of each queried vertex, in
// parallel.
//
//conn:readonly
func (f *Forest) BatchFindRep(vs []graph.Vertex) []*treap.Node {
	out := make([]*treap.Node, len(vs))
	parallel.For(len(vs), 64, func(i int) {
		out[i] = f.Rep(vs[i])
	})
	return out
}

// BatchLink inserts the given tree edges. The batch must be acyclic with
// respect to the current forest (panics otherwise). Links are applied
// sequentially — merging tours is an inherently chained operation in this
// representation — but each costs only O(lg n) expected.
func (f *Forest) BatchLink(es []graph.Edge) {
	for _, e := range es {
		f.Link(e.U, e.V)
	}
}

// BatchLinkDisjoint inserts groups of tree edges where the caller guarantees
// that distinct groups touch vertex-disjoint sets of tours (e.g. the level
// search pushing each component's tree edges down: components are
// vertex-disjoint and so are their sub-forests one level below). Groups run
// in parallel; edges within a group are spliced sequentially. The arc index
// is sharded, so concurrent registrations do not contend structurally.
func (f *Forest) BatchLinkDisjoint(groups [][]graph.Edge) {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total == 0 {
		return
	}
	var edges int64
	parallel.For(len(groups), 1, func(gi int) {
		for _, e := range groups[gi] {
			if f.Connected(e.U, e.V) {
				panic(fmt.Sprintf("ett: BatchLinkDisjoint(%d,%d) would create a cycle", e.U, e.V))
			}
			tu := f.reroot(e.U)
			tv := f.reroot(e.V)
			au := treap.NewNode(treap.Value{Cnt: 1}, arc{e.U, e.V})
			av := treap.NewNode(treap.Value{Cnt: 1}, arc{e.V, e.U})
			f.arcPut(arcKey(e.U, e.V), au)
			f.arcPut(arcKey(e.V, e.U), av)
			treap.Join(treap.Join(tu, au), treap.Join(tv, av))
		}
		// Tally outside the hot loop: f.edges is not atomic.
	})
	for _, g := range groups {
		edges += int64(len(g))
	}
	f.edges += int(edges)
}

// BatchCut removes the given tree edges. Cuts on distinct trees run in
// parallel; cuts sharing a tree are applied sequentially within its group.
func (f *Forest) BatchCut(es []graph.Edge) {
	if len(es) == 0 {
		return
	}
	if len(es) == 1 {
		f.Cut(es[0].U, es[0].V)
		return
	}
	// Take all arc nodes out of the index sequentially (map writes), then
	// group the treap surgery by current tour root: all arcs of one tree
	// share a root, and cutting never moves nodes between distinct
	// original trees, so the groups are closed under the mutations they
	// perform and can run concurrently.
	aus := make([]*treap.Node, len(es))
	avs := make([]*treap.Node, len(es))
	for i, e := range es {
		aus[i], avs[i] = f.takeArcs(e.U, e.V)
	}
	keys := make([]uint64, len(es))
	parallel.For(len(es), 256, func(i int) {
		keys[i] = treap.Root(aus[i]).ID()
	})
	groups := parallel.GroupByParallel(keys)
	parallel.For(len(groups), 8, func(gi int) {
		for _, idx := range groups[gi].Indices {
			cutArcs(aus[idx], avs[idx])
		}
	})
}
