package pdict

import "testing"

func BenchmarkBatchInsert(b *testing.B) {
	k := 1 << 14
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = uint64(i*2 + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := New(k)
		b.StartTimer()
		d.BatchInsert(keys, nil)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/key")
}

func BenchmarkBatchLookup(b *testing.B) {
	k := 1 << 14
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = uint64(i*2 + 1)
	}
	d := New(k)
	d.BatchInsert(keys, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BatchLookup(keys)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/key")
}

func BenchmarkBatchDeleteReinsert(b *testing.B) {
	k := 1 << 14
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = uint64(i*2 + 1)
	}
	d := New(k)
	d.BatchInsert(keys, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BatchDelete(keys)
		d.BatchInsert(keys, nil)
	}
}
