package pdict

import (
	"sync"
	"testing"
)

// TestConcurrentReadOnlyQueries enforces the package's read-only query
// contract under -race: with no batch mutation in flight, any number of
// goroutines may run BatchLookup, Get, Contains, Len and Keys concurrently
// on the same dictionary — each of those is itself internally parallel, so
// this also exercises nested fork-join readers. The core relies on this
// during Batcher epochs: HasEdge/EdgeInfo pre-scans and checkpoint edge
// enumeration probe the dictionary while ReadNow readers walk the
// structure. A write anywhere in the lookup path (tombstone compaction,
// slot repair, cached hashes) would be flagged by the race detector.
func TestConcurrentReadOnlyQueries(t *testing.T) {
	const present = 4096
	d := New(present)
	keys := make([]uint64, present)
	vals := make([]uint64, present)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 1
		vals[i] = uint64(i)
	}
	d.BatchInsert(keys, vals)
	// Mix in absent probes, including keys adjacent to present hashes.
	probes := make([]uint64, 0, 2*present)
	wantOK := make([]bool, 0, 2*present)
	for i := range keys {
		probes = append(probes, keys[i], keys[i]+1)
		wantOK = append(wantOK, true, false)
	}

	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vs, ok := d.BatchLookup(probes)
			for i := range probes {
				if ok[i] != wantOK[i] {
					t.Errorf("BatchLookup(%#x) present=%v, want %v", probes[i], ok[i], wantOK[i])
					return
				}
				if ok[i] && vs[i] != uint64(i/2) {
					t.Errorf("BatchLookup(%#x) = %d, want %d", probes[i], vs[i], i/2)
					return
				}
			}
			for i := g; i < present; i += goroutines {
				if v, ok := d.Get(keys[i]); !ok || v != vals[i] {
					t.Errorf("Get(%#x) = %d,%v", keys[i], v, ok)
					return
				}
				if d.Contains(keys[i] + 1) {
					t.Errorf("Contains(%#x) = true for absent key", keys[i]+1)
					return
				}
			}
			if got := d.Len(); got != present {
				t.Errorf("Len = %d, want %d", got, present)
			}
			if got := len(d.Keys()); got != present {
				t.Errorf("Keys len = %d, want %d", got, present)
			}
		}(g)
	}
	wg.Wait()
}
