package pdict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	d := New(4)
	d.Put(1, 100)
	d.Put(2, 200)
	if v, ok := d.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if v, ok := d.Get(2); !ok || v != 200 {
		t.Fatalf("Get(2) = %d,%v", v, ok)
	}
	if _, ok := d.Get(3); ok {
		t.Fatal("Get(3) should be absent")
	}
	if !d.Delete(1) {
		t.Fatal("Delete(1) should report present")
	}
	if d.Delete(1) {
		t.Fatal("Delete(1) twice should report absent")
	}
	if _, ok := d.Get(1); ok {
		t.Fatal("key 1 survived delete")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestOverwriteSameKey(t *testing.T) {
	d := New(4)
	d.Put(7, 1)
	d.Put(7, 2)
	if v, _ := d.Get(7); v != 2 {
		t.Fatalf("overwrite failed, got %d", v)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", d.Len())
	}
}

func TestBatchInsertLookupDelete(t *testing.T) {
	n := 10000
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = uint64(i)
	}
	d := New(16)
	d.BatchInsert(keys, vals)
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	got, ok := d.BatchLookup(keys)
	for i := range keys {
		if !ok[i] || got[i] != vals[i] {
			t.Fatalf("lookup[%d] = %d,%v want %d", i, got[i], ok[i], vals[i])
		}
	}
	d.BatchDelete(keys[:n/2])
	if d.Len() != n/2 {
		t.Fatalf("Len after half delete = %d, want %d", d.Len(), n/2)
	}
	_, ok = d.BatchLookup(keys)
	for i := 0; i < n/2; i++ {
		if ok[i] {
			t.Fatalf("deleted key %d still present", keys[i])
		}
	}
	for i := n / 2; i < n; i++ {
		if !ok[i] {
			t.Fatalf("surviving key %d missing", keys[i])
		}
	}
}

func TestReuseTombstones(t *testing.T) {
	d := New(8)
	for round := 0; round < 50; round++ {
		keys := []uint64{1, 2, 3, 4, 5}
		d.BatchInsert(keys, nil)
		d.BatchDelete(keys)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after churn, want 0", d.Len())
	}
	d.Put(9, 9)
	if v, ok := d.Get(9); !ok || v != 9 {
		t.Fatal("insert after churn failed")
	}
}

func TestGrowthPreservesContents(t *testing.T) {
	d := New(8)
	for i := 0; i < 5000; i++ {
		d.Put(uint64(i), uint64(i*2))
	}
	for i := 0; i < 5000; i++ {
		if v, ok := d.Get(uint64(i)); !ok || v != uint64(i*2) {
			t.Fatalf("key %d lost or wrong after growth: %d,%v", i, v, ok)
		}
	}
}

func TestKeysEnumeration(t *testing.T) {
	d := New(8)
	want := map[uint64]bool{10: true, 20: true, 30: true}
	for k := range want {
		d.Put(k, 0)
	}
	d.Put(40, 0)
	d.Delete(40)
	got := d.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys len = %d, want %d (%v)", len(got), len(want), got)
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %d", k)
		}
	}
}

func TestDuplicateKeysInBatch(t *testing.T) {
	d := New(4)
	keys := []uint64{5, 5, 5, 5}
	vals := []uint64{1, 2, 3, 4}
	d.BatchInsert(keys, vals)
	if d.Len() != 1 {
		t.Fatalf("Len = %d with duplicate batch, want 1", d.Len())
	}
	v, ok := d.Get(5)
	if !ok || v < 1 || v > 4 {
		t.Fatalf("value %d not from batch", v)
	}
}

func TestQuickMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New(4)
		ref := map[uint64]uint64{}
		for i, raw := range ops {
			k := uint64(raw % 64)
			switch i % 3 {
			case 0, 1:
				d.Put(k, uint64(i))
				ref[k] = uint64(i)
			case 2:
				d.Delete(k)
				delete(ref, k)
			}
		}
		if d.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := d.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentBatchInsertStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 15
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(n / 2)) // many duplicates
	}
	d := New(64)
	d.BatchInsert(keys, nil)
	distinct := map[uint64]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	if d.Len() != len(distinct) {
		t.Fatalf("Len = %d, want %d distinct", d.Len(), len(distinct))
	}
}
