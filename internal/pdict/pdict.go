// Package pdict implements the parallel dictionary substrate the paper
// assumes (Gil, Matias, Vishkin): batch insert, batch delete and batch lookup
// over hashed keys in linear work and low depth. The implementation is a
// phase-concurrent open-addressing hash table (Shun–Blelloch style): within a
// batch all operations are of one kind, so slots are claimed with
// compare-and-swap and no locks are needed.
package pdict

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/parallel"
)

const (
	emptyKey   = ^uint64(0)     // slot never used
	deadKey    = ^uint64(0) - 1 // slot tombstoned
	maxLoadNum = 1              // resize when size > cap * 1/2
	maxLoadDen = 2
)

// Dict is a set/map from uint64 keys (excluding the two reserved sentinel
// values) to uint64 values. All Batch* methods are internally parallel; a
// Dict must not be mutated concurrently by multiple batches.
type Dict struct {
	keys []atomic.Uint64
	vals []atomic.Uint64
	size atomic.Int64
	dead atomic.Int64 // tombstoned slots, reclaimed on rehash
	mask uint64
}

// New creates a dictionary sized for about capacity elements.
func New(capacity int) *Dict {
	if capacity < 8 {
		capacity = 8
	}
	n := 1 << bits.Len(uint(2*capacity-1))
	d := &Dict{
		keys: make([]atomic.Uint64, n),
		vals: make([]atomic.Uint64, n),
		mask: uint64(n - 1),
	}
	for i := range d.keys {
		d.keys[i].Store(emptyKey)
	}
	return d
}

// Len reports the number of live keys.
//
//conn:readonly
func (d *Dict) Len() int { return int(d.size.Load()) }

//conn:readonly
func (d *Dict) slot(k uint64) uint64 { return parallel.Hash64(k) & d.mask }

// insertOne claims a slot for k, setting its value to v. Returns true if the
// key was newly inserted, false if it already existed (value overwritten).
// Only empty slots are claimed — tombstones are skipped, never reused — so a
// key can occupy at most one slot even under concurrent duplicate inserts
// (the chain-terminating empty slot is a unique claim point per chain).
func (d *Dict) insertOne(k, v uint64) bool {
	i := d.slot(k)
	for {
		cur := d.keys[i].Load()
		switch cur {
		case k:
			d.vals[i].Store(v)
			return false
		case emptyKey:
			if d.keys[i].CompareAndSwap(emptyKey, k) {
				d.vals[i].Store(v)
				d.size.Add(1)
				return true
			}
			continue // retry same slot: someone raced us
		default: // other key or tombstone: keep probing
			i = (i + 1) & d.mask
		}
	}
}

// lookupOne returns the value for k and whether it is present.
//
//conn:readonly
func (d *Dict) lookupOne(k uint64) (uint64, bool) {
	i := d.slot(k)
	for {
		cur := d.keys[i].Load()
		if cur == k {
			return d.vals[i].Load(), true
		}
		if cur == emptyKey {
			return 0, false
		}
		i = (i + 1) & d.mask
	}
}

// deleteOne tombstones k. Returns whether the key was present.
func (d *Dict) deleteOne(k uint64) bool {
	i := d.slot(k)
	for {
		cur := d.keys[i].Load()
		if cur == k {
			if d.keys[i].CompareAndSwap(k, deadKey) {
				d.size.Add(-1)
				d.dead.Add(1)
				return true
			}
			continue
		}
		if cur == emptyKey {
			return false
		}
		i = (i + 1) & d.mask
	}
}

func (d *Dict) maybeGrow(incoming int) {
	need := int(d.size.Load()) + incoming
	occupied := need + int(d.dead.Load())
	if occupied*maxLoadDen <= len(d.keys)*maxLoadNum {
		return
	}
	oldKeys, oldVals := d.keys, d.vals
	n := 1 << bits.Len(uint(2*need*maxLoadDen/maxLoadNum-1))
	d.keys = make([]atomic.Uint64, n)
	d.vals = make([]atomic.Uint64, n)
	d.mask = uint64(n - 1)
	d.size.Store(0)
	d.dead.Store(0)
	for i := range d.keys {
		d.keys[i].Store(emptyKey)
	}
	parallel.For(len(oldKeys), 1024, func(i int) {
		k := oldKeys[i].Load()
		if k != emptyKey && k != deadKey {
			d.insertOne(k, oldVals[i].Load())
		}
	})
}

// BatchInsert inserts all keys with their corresponding values (val[i] for
// key[i]; vals may be nil for set semantics). Duplicate keys within a batch
// resolve to one of the batch's values.
func (d *Dict) BatchInsert(keys []uint64, vals []uint64) {
	d.maybeGrow(len(keys))
	parallel.For(len(keys), 256, func(i int) {
		var v uint64
		if vals != nil {
			v = vals[i]
		}
		d.insertOne(keys[i], v)
	})
}

// BatchDelete removes all keys; absent keys are ignored.
func (d *Dict) BatchDelete(keys []uint64) {
	parallel.For(len(keys), 256, func(i int) {
		d.deleteOne(keys[i])
	})
}

// BatchLookup returns, for each key, its value and presence flag.
func (d *Dict) BatchLookup(keys []uint64) ([]uint64, []bool) {
	vals := make([]uint64, len(keys))
	ok := make([]bool, len(keys))
	parallel.For(len(keys), 256, func(i int) {
		vals[i], ok[i] = d.lookupOne(keys[i])
	})
	return vals, ok
}

// Contains reports presence of a single key.
//
//conn:readonly
func (d *Dict) Contains(k uint64) bool {
	_, ok := d.lookupOne(k)
	return ok
}

// Get returns the value for a single key.
//
//conn:readonly
func (d *Dict) Get(k uint64) (uint64, bool) { return d.lookupOne(k) }

// Put inserts a single key/value.
func (d *Dict) Put(k, v uint64) {
	d.maybeGrow(1)
	d.insertOne(k, v)
}

// Delete removes a single key.
func (d *Dict) Delete(k uint64) bool { return d.deleteOne(k) }

// Keys returns all live keys in unspecified order.
//
//conn:readonly
func (d *Dict) Keys() []uint64 {
	flags := make([]bool, len(d.keys))
	raw := make([]uint64, len(d.keys))
	parallel.For(len(d.keys), 1024, func(i int) {
		k := d.keys[i].Load()
		raw[i] = k
		flags[i] = k != emptyKey && k != deadKey
	})
	return parallel.Pack(raw, flags)
}
