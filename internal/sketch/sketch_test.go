package sketch

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/unionfind"
)

func TestCellRecoverSingle(t *testing.T) {
	var c cell
	key := (graph.Edge{U: 3, V: 9}).Key()
	c.add(key, 1)
	got, ok := c.recover()
	if !ok || got != key {
		t.Fatalf("recover = %v,%v", got, ok)
	}
	c.add(key, -1) // the other endpoint joins the set: edge becomes internal
	if _, ok := c.recover(); ok {
		t.Fatal("cancelled cell recovered an edge")
	}
}

func TestCellRejectsMultiple(t *testing.T) {
	var c cell
	c.add((graph.Edge{U: 1, V: 2}).Key(), 1)
	c.add((graph.Edge{U: 3, V: 4}).Key(), 1)
	if _, ok := c.recover(); ok {
		t.Fatal("two-edge cell recovered")
	}
	// Three edges summing to count 1 must be rejected by the checksum.
	c.add((graph.Edge{U: 5, V: 6}).Key(), -1)
	if _, ok := c.recover(); ok {
		t.Fatal("three-edge count-1 cell recovered (checksum hole)")
	}
}

func TestSketchRecoverAfterMerge(t *testing.T) {
	// Component {0,1} with internal edge (0,1) and one outgoing edge (1,5):
	// the merged sketch must recover only (1,5).
	s0 := NewSketch(8)
	s1 := NewSketch(8)
	in := (graph.Edge{U: 0, V: 1}).Key()
	out := (graph.Edge{U: 1, V: 5}).Key()
	s0.Update(in, 1)
	s1.Update(in, -1)
	s1.Update(out, 1)
	s0.Merge(s1)
	e, ok := s0.Recover()
	if !ok || e.Key() != out {
		t.Fatalf("Recover = %v,%v; want the outgoing edge", e, ok)
	}
}

func TestGraphComponentsMatchUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		n := 40 + rng.Intn(60)
		m := rng.Intn(3 * n)
		g := NewGraph(n, 12)
		uf := unionfind.New(n)
		es := graphgen.RandomGraph(n, m+1, int64(trial))
		for _, e := range es {
			g.Insert(e.U, e.V)
			uf.Union(e.U, e.V)
		}
		lbl, spanning := g.Components()
		for q := 0; q < 500; q++ {
			a := int32(rng.Intn(n))
			b := int32(rng.Intn(n))
			if (lbl[a] == lbl[b]) != uf.Connected(a, b) {
				t.Fatalf("trial %d: labels disagree on (%d,%d)", trial, a, b)
			}
		}
		// The recovered spanning edges must be real edges forming a forest.
		check := unionfind.New(n)
		for _, e := range spanning {
			if !check.Union(e.U, e.V) {
				t.Fatalf("trial %d: spanning certificate has a cycle", trial)
			}
			found := false
			for _, x := range es {
				if x.Key() == e.Key() {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: recovered non-existent edge %v", trial, e)
			}
		}
	}
}

func TestGraphDynamicDeletions(t *testing.T) {
	// The linear-sketch property: delete = XOR again. Build, delete half,
	// verify components against the surviving edge set.
	rng := rand.New(rand.NewSource(7))
	n := 80
	g := NewGraph(n, 12)
	es := graphgen.RandomGraph(n, 160, 9)
	for _, e := range es {
		g.Insert(e.U, e.V)
	}
	for _, e := range es[:80] {
		g.Delete(e.U, e.V)
	}
	uf := unionfind.New(n)
	for _, e := range es[80:] {
		uf.Union(e.U, e.V)
	}
	lbl, _ := g.Components()
	for q := 0; q < 1000; q++ {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		if (lbl[a] == lbl[b]) != uf.Connected(a, b) {
			t.Fatalf("labels disagree on (%d,%d) after deletions", a, b)
		}
	}
	if g.NumEdges() != 80 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestInsertDeleteIdempotence(t *testing.T) {
	g := NewGraph(4, 8)
	if !g.Insert(0, 1) || g.Insert(1, 0) || g.Insert(2, 2) {
		t.Fatal("insert semantics wrong")
	}
	if !g.Delete(0, 1) || g.Delete(0, 1) {
		t.Fatal("delete semantics wrong")
	}
	// Fully cancelled sketches: everything is a singleton again.
	lbl, spanning := g.Components()
	if len(spanning) != 0 {
		t.Fatalf("spanning edges from empty graph: %v", spanning)
	}
	seen := map[int32]bool{}
	for _, l := range lbl {
		if seen[l] {
			t.Fatal("empty graph has merged components")
		}
		seen[l] = true
	}
}

func TestConnectedWrapper(t *testing.T) {
	g := NewGraph(6, 12)
	g.Insert(0, 1)
	g.Insert(1, 2)
	g.Insert(4, 5)
	if !g.Connected(0, 2) || g.Connected(0, 4) || !g.Connected(4, 5) {
		t.Fatal("Connected wrong")
	}
}

func TestLargeSparseGraph(t *testing.T) {
	// A path: worst case for Borůvka rounds (long merge chains).
	n := 512
	g := NewGraph(n, 12)
	for _, e := range graphgen.Path(n) {
		g.Insert(e.U, e.V)
	}
	lbl, spanning := g.Components()
	for v := 1; v < n; v++ {
		if lbl[v] != lbl[0] {
			t.Fatalf("path vertex %d not merged", v)
		}
	}
	if len(spanning) != n-1 {
		t.Fatalf("spanning forest has %d edges, want %d", len(spanning), n-1)
	}
}
