// Package sketch implements linear graph sketches — the XOR cutset
// sketches of Ahn–Guha–McGregor that underlie the Kapron–King–Mountjoy
// Monte-Carlo dynamic connectivity algorithm. The paper's discussion (§6)
// names a parallel batch-dynamic KKM structure as the natural follow-up to
// its deterministic-amortized approach; this package builds the substrate
// that follow-up needs and a sketch-based connected-components routine on
// top of it.
//
// A vertex sketch is a vector of (level, repetition) cells; each edge is
// hashed into a geometric level per repetition and XORed into the cells of
// both endpoints. XOR-merging the sketches of a vertex set S yields a
// sketch of the cut (S, V\S): intra-S edges cancel. A cell containing
// exactly one edge "recovers" it, which a Borůvka loop uses to find
// outgoing edges of every component simultaneously — connected components
// from sketches alone, O(polylog) recovery per component per round, with
// high probability.
package sketch

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// Levels is the number of geometric sampling levels; level ℓ keeps an edge
// with probability 2^-ℓ, so some level isolates ~1 edge of any cut of any
// size up to 2^Levels.
const Levels = 34

// cell accumulates XORs of edge keys plus a checksum and a counter. The
// counter lets the common cases (0 or 1 edges) be detected exactly; the
// checksum guards against XOR collisions of ≥2 edges masquerading as one.
type cell struct {
	keyXOR uint64
	ckXOR  uint64
	count  int64
}

// add folds one endpoint occurrence of an edge into the cell. sign is +1
// for the canonical U endpoint and -1 for V: when the sketches of a vertex
// set are merged, an intra-set edge contributes +1 and -1 and cancels from
// the counter exactly as its key cancels from the XOR, so a pure cut cell's
// |count| equals nothing but crossing-edge imbalance and a single crossing
// edge shows |count| == 1.
func (c *cell) add(key uint64, sign int64) {
	c.keyXOR ^= key
	c.ckXOR ^= checksum(key)
	c.count += sign
}

func (c *cell) merge(o *cell) {
	c.keyXOR ^= o.keyXOR
	c.ckXOR ^= o.ckXOR
	c.count += o.count
}

// recover returns the single edge key in the cell when the evidence says
// exactly one crossing edge is present: |count| == 1 and the checksum
// relation of a single key holds (multiple surviving edges would need a
// 2^-64 collision to fake it).
func (c *cell) recover() (uint64, bool) {
	if c.count != 1 && c.count != -1 {
		return 0, false
	}
	if c.ckXOR != checksum(c.keyXOR) {
		return 0, false
	}
	return c.keyXOR, true
}

func checksum(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// level hashes an (edge, repetition) pair to a geometric level in
// [0, Levels): level ℓ with probability 2^-(ℓ+1).
func level(key uint64, rep int) int {
	h := parallel.Hash64(key ^ (uint64(rep)+1)*0x9e3779b97f4a7c15)
	l := 0
	for h&1 == 1 && l < Levels-1 {
		l++
		h >>= 1
	}
	return l
}

// Sketch is the per-vertex (or per-component, after merging) structure:
// reps × Levels cells.
type Sketch struct {
	reps  int
	cells []cell // reps*Levels, row-major by repetition
}

// NewSketch creates an empty sketch with the given number of independent
// repetitions (more repetitions, higher recovery probability per round).
func NewSketch(reps int) *Sketch {
	return &Sketch{reps: reps, cells: make([]cell, reps*Levels)}
}

// Update folds one endpoint occurrence of an edge in or out: the structure
// is linear, so insertion and deletion are the same XOR; sign (+1 for the
// canonical U endpoint, -1 for V) keeps the counters cut-exact.
func (s *Sketch) Update(key uint64, sign int64) {
	for r := 0; r < s.reps; r++ {
		s.cells[r*Levels+level(key, r)].add(key, sign)
	}
}

// Merge folds o into s (cut sketch of the union, intra-edges cancel).
func (s *Sketch) Merge(o *Sketch) {
	for i := range s.cells {
		s.cells[i].merge(&o.cells[i])
	}
}

// Recover returns some edge crossing the cut this sketch represents, if any
// cell isolates one.
func (s *Sketch) Recover() (graph.Edge, bool) {
	for i := range s.cells {
		if key, ok := s.cells[i].recover(); ok {
			return graph.FromKey(key), true
		}
	}
	return graph.Edge{}, false
}

// Clone deep-copies the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{reps: s.reps, cells: make([]cell, len(s.cells))}
	copy(c.cells, s.cells)
	return c
}

// Graph maintains one sketch per vertex under edge insertions and
// deletions, and answers connected-components queries from the sketches
// alone. This is the substrate a batch-dynamic KKM structure samples from.
type Graph struct {
	n     int
	reps  int
	vs    []*Sketch
	edges map[uint64]bool
}

// NewGraph creates an empty sketched graph on n vertices. reps independent
// repetitions per sketch (8–16 is plenty for the sizes tested here).
func NewGraph(n, reps int) *Graph {
	g := &Graph{n: n, reps: reps, vs: make([]*Sketch, n), edges: make(map[uint64]bool)}
	parallel.For(n, 256, func(i int) { g.vs[i] = NewSketch(reps) })
	return g
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// NumEdges returns the live edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Insert adds edge (u,v); duplicates and loops are ignored. O(reps) per
// endpoint.
func (g *Graph) Insert(u, v graph.Vertex) bool {
	e := graph.Edge{U: u, V: v}.Canon()
	if e.IsLoop() || g.edges[e.Key()] {
		return false
	}
	g.edges[e.Key()] = true
	g.vs[e.U].Update(e.Key(), 1)
	g.vs[e.V].Update(e.Key(), -1)
	return true
}

// Delete removes edge (u,v) if present — the same XOR, by linearity.
func (g *Graph) Delete(u, v graph.Vertex) bool {
	e := graph.Edge{U: u, V: v}.Canon()
	if !g.edges[e.Key()] {
		return false
	}
	delete(g.edges, e.Key())
	// XOR linearity: removing is re-adding with the counter negated.
	g.vs[e.U].Update(e.Key(), -1)
	g.vs[e.V].Update(e.Key(), 1)
	return true
}

// Components computes connected-component labels from the sketches with a
// Borůvka loop: every round, each component recovers one outgoing edge from
// its merged cut sketch and contracts along all recovered edges. Monte
// Carlo: with the default repetitions the labels are correct w.h.p.; the
// spanning edges returned certify every merge performed.
func (g *Graph) Components() ([]int32, []graph.Edge) {
	uf := unionfind.New(g.n)
	// Working sketches: one per current component root.
	work := make(map[int32]*Sketch, g.n)
	for v := 0; v < g.n; v++ {
		work[int32(v)] = g.vs[v].Clone()
	}
	var spanning []graph.Edge
	for round := 0; round < 2*Levels && len(work) > 1; round++ {
		type found struct{ e graph.Edge }
		var hits []found
		for root, sk := range work {
			_ = root
			if e, ok := sk.Recover(); ok {
				hits = append(hits, found{e})
			}
		}
		merged := false
		for _, h := range hits {
			ru, rv := uf.Find(h.e.U), uf.Find(h.e.V)
			if ru == rv {
				continue // stale recovery after an earlier merge this round
			}
			uf.Union(ru, rv)
			spanning = append(spanning, h.e)
			nr := uf.Find(ru)
			or := ru
			if nr == ru {
				or = rv
			}
			work[nr].Merge(work[or])
			delete(work, or)
			merged = true
		}
		if !merged {
			break // no component can recover an edge: done (or failed whp-small)
		}
	}
	labels := make([]int32, g.n)
	for v := 0; v < g.n; v++ {
		labels[v] = uf.Find(int32(v))
	}
	return labels, spanning
}

// Connected answers one query by computing components (this substrate is
// for offline/batch use; a full KKM structure would maintain a forest).
func (g *Graph) Connected(u, v graph.Vertex) bool {
	lbl, _ := g.Components()
	return lbl[u] == lbl[v]
}
