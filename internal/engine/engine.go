// Package engine is the dispatcher-owned epoch pipeline extracted from the
// public Batcher: coalesce drain → WAL append+fsync → epoch execution →
// snapshot publish → epoch-subscriber tee → checkpoint service. One Engine
// owns one single-writer core.Conn and is the only goroutine that mutates
// it; any number of goroutines submit operations through the coalescing
// buffer and block on futures.
//
// The package exists so that a front-end can host N of these: the public
// conn.Batcher wraps exactly one Engine (unchanged API), and internal/shard
// composes several — one per vertex partition plus one for the boundary
// graph — into a sharded connectivity service. Every concurrency and
// durability contract the Batcher used to carry lives here now, enforced by
// the //conn: directives (see internal/lint): the epoch pipeline is
// dispatcher-only, futures resolve only after the WAL fsync barrier, the
// snapshot labelling is published immutably, and durable file errors are
// never silently dropped.
//
//conn:durable-files
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Default coalescing parameters: commit an epoch once 8192 operations have
// accumulated, or 500µs after work first arrives, whichever is first.
const (
	DefaultMaxBatch = 8192
	DefaultMaxDelay = 500 * time.Microsecond
)

// DefaultGroupSyncMaxWait bounds how long a group-commit fsync may be
// deferred waiting for more epochs when GroupSyncK > 1 and no explicit
// window was configured.
const DefaultGroupSyncMaxWait = 2 * time.Millisecond

// WALFileName is the write-ahead log's file name inside a durability
// directory.
const WALFileName = "wal.log"

// ErrClosed is returned by the Engine's error-returning methods once Close
// has begun.
var ErrClosed = errors.New("engine: closed")

// Options configure an Engine. The zero value selects the defaults.
type Options struct {
	// MaxBatch is the epoch size target: the dispatcher commits as soon as
	// this many operations are staged. <= 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxDelay bounds how long an operation may wait for its epoch; 0
	// commits eagerly.
	MaxDelay time.Duration
	// Shards is the number of staging-buffer stripes (contention control;
	// <= 0 selects GOMAXPROCS).
	Shards int
	// SnapshotThreshold tunes the ReadRecent labelling's incremental-repair
	// budget; <= 0 selects max(1024, n/4).
	SnapshotThreshold int
	// DurDir, when non-empty, enables the durable write pipeline: each
	// mutating epoch is appended to DurDir/wal.log and fsynced before it is
	// applied or acknowledged.
	DurDir string
	// WALCodec selects the record encoding for freshly created (or reset)
	// WAL files; nil selects the v1 fixed-width codec. An existing log's
	// header always wins until the next checkpoint resets the file — see
	// wal.OpenWithCodec.
	WALCodec wal.Codec
	// GroupSyncK > 1 enables group-commit fsync scheduling: up to K
	// mutating epochs share one fsync, and their callers stay blocked until
	// the shared sync point (acked still means fsynced). <= 1 keeps the
	// per-epoch fsync.
	GroupSyncK int
	// GroupSyncMaxWait bounds the acknowledgement latency grouping may add:
	// the sync point fires at most this long after the first unsynced
	// epoch, even if the group never reaches K. <= 0 selects
	// DefaultGroupSyncMaxWait. Ignored unless grouping is enabled.
	GroupSyncMaxWait time.Duration
	// GroupSyncAdaptive enables group-commit with an adaptive width: the
	// scheduler picks K from an EWMA of observed fsync latency (slow disks
	// group more, fast disks converge to per-epoch) instead of the static
	// GroupSyncK knob, keeping the amortized fsync cost per epoch below a
	// fixed fraction of GroupSyncMaxWait. GroupSyncK is ignored when set.
	GroupSyncAdaptive bool
	// CheckpointEvery makes every M-th checkpoint a full snapshot and the
	// ones between incremental deltas against the last full (the WAL is
	// only truncated at fulls, so a damaged delta can always fall back).
	// <= 1 keeps every checkpoint full.
	CheckpointEvery int
	// Hook, when non-nil, observes each committed epoch (concatenated ops
	// and their results) from the dispatcher goroutine. Tests use it to
	// replay epochs against an oracle.
	Hook func(ops []coalesce.Op, res []bool)
}

// EpochRecord is one durable mutating epoch as observed by an epoch
// subscriber: the WAL sequence number and the raw coalesced insert and
// delete batches, in application order. Replaying Ins then Del through the
// batch operations reproduces the epoch exactly (duplicates, present
// inserts and absent deletes are ignored at every layer). The slices are
// shared across subscribers and must not be mutated.
type EpochRecord struct {
	Seq uint64
	Ins []graph.Edge
	Del []graph.Edge
	// Codec and Enc carry the record's on-disk encoding (the WAL codec
	// version byte and the exact payload bytes appended to the log), so the
	// replication hub can ship compressed records to followers without
	// re-encoding. Enc is freshly allocated per epoch and safe to retain.
	Codec byte
	Enc   []byte
}

// epochSub is one registered epoch subscriber.
type epochSub struct {
	// fn observes a durable epoch; calling it exposes the epoch to the
	// outside world, so it counts as an acknowledgement.
	//
	//conn:ack
	fn func(EpochRecord)
}

// diffSub is one registered snapshot-diff subscriber (SubscribeDiffs).
type diffSub struct {
	// fn observes a partition-changing epoch's labelling transition, on the
	// dispatcher goroutine, with the epoch's durable seq. It must not block.
	//
	//conn:dispatcher-only
	fn func(seq uint64, d *snapshot.Diff)
}

// durability is the dispatcher-owned durable-write state.
type durability struct {
	dir string
	log *wal.Log

	// Counters are written by the write pipeline (dispatcher, or the group
	// scheduler's sync point) but read by Stats from any goroutine.
	records     atomic.Int64
	bytes       atomic.Int64
	rawBytes    atomic.Int64 // fixed-width size of the same records: the compression baseline
	appendNanos atomic.Int64
	fsyncsSaved atomic.Int64 // epochs that shared a group fsync instead of paying their own
	checkpoints atomic.Int64 // full snapshots
	deltas      atomic.Int64 // incremental (delta) checkpoints
}

// ckptRequest is one pending Checkpoint call.
type ckptRequest struct {
	done chan struct{}
	path string
	err  error
}

// Engine runs the epoch pipeline for one core.Conn. All methods are safe
// from any goroutine; the structure itself is mutated only by the dispatcher
// goroutine the coalescing buffer starts.
type Engine struct {
	c   *core.Conn
	buf *coalesce.Buffer

	// mu orders the dispatcher's structure mutations against read-committed
	// readers: execEpoch write-holds it around the insert/delete phase,
	// ReadNow read-holds it around live-structure walks. Queries never
	// block queries — the read-only contract makes concurrent readers safe
	// — so the lock only serializes readers against the mutating slice of
	// each epoch.
	mu sync.RWMutex

	// snap is the epoch-published component labelling behind ReadRecent.
	snap *snapshot.Store

	// dur, when non-nil, is the durability pipeline: the dispatcher appends
	// each mutating epoch to the WAL and fsyncs before touching the
	// structure, so an acknowledged write is a durable write.
	dur *durability

	// gs, when non-nil, is the group-commit fsync scheduler (GroupSyncK>1):
	// logEpoch appends without syncing, acknowledgements detour through the
	// coalesce ack hook into its queue, and the shared sync point resolves
	// them.
	gs *groupSync

	// ckptReq hands a checkpoint request to the dispatcher, which services
	// it at the end of an epoch — the one point where the graph is stable
	// and every appended WAL record has been applied.
	ckptReq atomic.Pointer[ckptRequest]
	ckptMu  sync.Mutex // serializes Checkpoint callers

	// Checkpoint-chain policy state, dispatcher-owned: every ckptEvery-th
	// checkpoint is a full snapshot; between fulls, serviceCheckpoint
	// writes deltas diffed against baseEdges (the edge set of the last full
	// written this process lifetime, keyed by Edge.Key). baseEdges == nil
	// forces the next checkpoint full — the state after restart or a
	// failed full.
	ckptEvery int
	sinceFull int
	baseSeq   uint64
	baseEdges map[uint64]graph.Edge

	closed atomic.Bool

	// applied is the durable seq of the last fully applied (and snapshot-
	// published) epoch — what AppliedSeq reports. It trails WALSeq by the
	// width of one epoch's apply phase: a record is logged first, applied
	// after.
	applied atomic.Uint64

	// subs is the copy-on-write list of epoch subscribers (SubscribeEpochs):
	// the durable dispatcher path tees each fsynced epoch to every entry.
	subsMu sync.Mutex
	subs   atomic.Pointer[[]*epochSub]

	// diffSubs is the copy-on-write list of snapshot-diff subscribers
	// (SubscribeDiffs): execEpoch tees each partition-changing labelling
	// transition — the connectivity event feed.
	diffSubsMu sync.Mutex
	diffSubs   atomic.Pointer[[]*diffSub]

	hook func(ops []coalesce.Op, res []bool)
}

// New wraps c in an epoch pipeline and starts its dispatcher. The caller
// owns c's lifecycle; the Engine only requires that nothing else touches c
// until Close returns. If o.DurDir is set, c must already reflect the
// durable state in that directory — either the directory is fresh, or c
// came from Restore.
func New(c *core.Conn, o Options) (*Engine, error) {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	e := &Engine{c: c, hook: o.Hook, ckptEvery: o.CheckpointEvery}
	if o.DurDir != "" {
		if err := os.MkdirAll(o.DurDir, 0o755); err != nil {
			return nil, err
		}
		wc := o.WALCodec
		if wc == nil {
			wc = wal.CodecV1
		}
		log, err := wal.OpenWithCodec(filepath.Join(o.DurDir, WALFileName), c.N(), wc)
		if err != nil {
			return nil, err
		}
		e.dur = &durability{dir: o.DurDir, log: log}
		// The durability contract says c already reflects the durable state
		// in the directory (fresh, or from Restore, which replays the full
		// log), so the applied position starts at the log's end, not zero.
		e.applied.Store(log.LastSeq())
		if o.GroupSyncAdaptive || o.GroupSyncK > 1 {
			e.gs = newGroupSync(e, o.GroupSyncK, o.GroupSyncMaxWait, o.GroupSyncAdaptive)
		}
	}
	// core.Conn implements snapshot.Source (ComponentID / ComponentSize /
	// ComponentVertices / ComponentLabels are read-only queries); the store
	// computes the initial labelling from the structure's current state.
	e.snap = snapshot.NewStore(c.N(), o.SnapshotThreshold, c)
	var ack func(seq uint64, release func())
	if e.gs != nil {
		// Acknowledgements detour through the sync scheduler: the
		// dispatcher hands over each epoch's release instead of resolving
		// futures, and the group fsync fires them.
		ack = e.gs.enqueue
	}
	e.buf = coalesce.NewBufferAck(o.Shards, o.MaxBatch, o.MaxDelay, e.execEpoch, ack) //conn:dispatcher-entry — hands execEpoch to the dispatcher goroutine
	return e, nil
}

// N returns the vertex count of the underlying structure.
func (e *Engine) N() int { return e.c.N() }

// Durable reports whether the Engine was created with a durability
// directory.
func (e *Engine) Durable() bool { return e.dur != nil }

// Closed reports whether Close has begun.
func (e *Engine) Closed() bool { return e.closed.Load() }

// Pending returns the number of staged-but-uncommitted operations.
func (e *Engine) Pending() int64 { return e.buf.Pending() }

// Submit stages ops as one atomic group and returns the future that
// resolves when their epoch commits. The caller must have validated vertex
// ranges; Submit fails only once Close has begun.
func (e *Engine) Submit(ops []coalesce.Op) (coalesce.Future, error) {
	f, err := e.buf.Submit(ops)
	if err != nil {
		return coalesce.Future{}, ErrClosed
	}
	return f, nil
}

// Apply stages ops as one atomic group, blocks until the epoch containing
// them commits, and returns the per-op results plus the epoch's durable
// commit position (see DoSeq on the public Batcher for the seq contract).
func (e *Engine) Apply(ops []coalesce.Op) ([]bool, uint64, error) {
	if len(ops) == 0 {
		return nil, e.WALSeq(), nil
	}
	f, err := e.Submit(ops)
	if err != nil {
		return nil, 0, err
	}
	return f.Wait(), f.Seq(), nil
}

// logEpoch makes an epoch's updates durable before any of them is applied
// or acknowledged: it collects the raw coalesced insert and delete batches
// (self-loops dropped — they are no-ops at every layer) and appends them as
// one WAL record in the log's codec. Replaying the raw batches through the
// batch operations reproduces the epoch exactly, because those operations
// ignore duplicates, already-present inserts and absent deletes — the same
// filtering execEpoch's credit pre-scans perform.
//
// Per-epoch mode (no group scheduler) syncs inline and tees the record to
// epoch subscribers here; the tee is an acknowledgement path (the
// replication Hub ships the record to followers), so it must stay behind
// the Sync barrier. Group mode stops at the append: the sync, the tee and
// the callers' acknowledgements all move to the scheduler's sync point
// (groupsync.go), which preserves the same order — fsync first, world
// after.
//
//conn:dispatcher-only
//conn:ack-after-fsync
func (e *Engine) logEpoch(ops []coalesce.Op) {
	var ins, del []graph.Edge
	for _, op := range ops {
		if op.U == op.V {
			continue
		}
		switch op.Kind {
		case coalesce.OpInsert:
			ins = append(ins, graph.Edge{U: op.U, V: op.V})
		case coalesce.OpDelete:
			del = append(del, graph.Edge{U: op.U, V: op.V})
		}
	}
	if len(ins) == 0 && len(del) == 0 {
		return // query-only epoch: nothing to make durable
	}
	rec := wal.Record{Seq: e.dur.log.LastSeq() + 1, Ins: ins, Del: del}
	t0 := time.Now()
	nbytes, payload, err := e.dur.log.AppendRecord(rec)
	if err != nil {
		panic(fmt.Sprintf("engine: durable pipeline cannot append to WAL: %v", err))
	}
	if e.gs == nil {
		if err := e.dur.log.Sync(); err != nil {
			panic(fmt.Sprintf("engine: durable pipeline cannot sync WAL: %v", err))
		}
	}
	e.dur.appendNanos.Add(time.Since(t0).Nanoseconds())
	e.dur.records.Add(1)
	e.dur.bytes.Add(int64(nbytes))
	e.dur.rawBytes.Add(int64(wal.RawSize(rec)))
	er := EpochRecord{Seq: rec.Seq, Ins: ins, Del: del,
		Codec: e.dur.log.Codec().Version(), Enc: payload}
	if e.gs != nil {
		// Group mode: the record is appended but NOT yet durable. Park it
		// with the scheduler; the sync point tees it once the shared fsync
		// covers it.
		e.gs.noteEpoch(er)
		return
	}
	// Replication tee: the record is durable, so subscribers (the Hub
	// shipping epochs to followers) may see it now — before the epoch is
	// applied or acknowledged, exactly the ordering the WAL itself gets.
	if subs := e.subs.Load(); subs != nil && len(*subs) > 0 {
		for _, s := range *subs {
			s.fn(er)
		}
	}
}

// SubscribeEpochs registers fn as an epoch subscriber: the dispatcher calls
// it for every mutating epoch, on the dispatcher goroutine, after the
// epoch's WAL record is fsynced and before the epoch is applied or any
// caller's future resolves. fn must not block — a slow consumer must buffer
// or drop on its own side of the hand-off, never stall the write pipeline.
// Only durable Engines emit epochs; on a memory-only Engine the
// subscription is registered but never fires. The returned cancel function
// removes the subscription and is idempotent.
func (e *Engine) SubscribeEpochs(fn func(EpochRecord)) (cancel func()) {
	sub := &epochSub{fn: fn}
	e.subsMu.Lock()
	var cur []*epochSub
	if p := e.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*epochSub, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sub
	e.subs.Store(&next)
	e.subsMu.Unlock()
	return func() {
		e.subsMu.Lock()
		defer e.subsMu.Unlock()
		p := e.subs.Load()
		if p == nil {
			return
		}
		out := make([]*epochSub, 0, len(*p))
		for _, s := range *p {
			if s != sub {
				out = append(out, s)
			}
		}
		e.subs.Store(&out)
	}
}

// SubscribeDiffs registers fn as a snapshot-diff subscriber: the dispatcher
// calls it for every epoch that changed the connectivity partition, on the
// dispatcher goroutine, after the new labelling is published and before any
// caller's future resolves. seq is the epoch's durable WAL position (zero
// without durability). fn must not block — internal/pubsub's Hub.Feed, the
// intended consumer, buffers per subscriber and drops on overflow. Unlike
// SubscribeEpochs this fires on memory-only engines too: events are a
// property of the partition, not of the log. The returned cancel removes
// the subscription and is idempotent.
func (e *Engine) SubscribeDiffs(fn func(seq uint64, d *snapshot.Diff)) (cancel func()) {
	sub := &diffSub{fn: fn} //conn:dispatcher-entry — hands the diff tee to the dispatcher goroutine
	e.diffSubsMu.Lock()
	var cur []*diffSub
	if p := e.diffSubs.Load(); p != nil {
		cur = *p
	}
	next := make([]*diffSub, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sub
	e.diffSubs.Store(&next)
	e.diffSubsMu.Unlock()
	return func() {
		e.diffSubsMu.Lock()
		defer e.diffSubsMu.Unlock()
		p := e.diffSubs.Load()
		if p == nil {
			return
		}
		out := make([]*diffSub, 0, len(*p))
		for _, s := range *p {
			if s != sub {
				out = append(out, s)
			}
		}
		e.diffSubs.Store(&out)
	}
}

// WALSeq returns the sequence number of the last durable epoch (zero
// without durability, or before the first mutating epoch when the log has
// never been checkpointed). Safe from any goroutine.
func (e *Engine) WALSeq() uint64 {
	if e.dur == nil {
		return 0
	}
	return e.dur.log.LastSeq()
}

// SyncedSeq returns the WAL's synced frontier: the highest sequence number
// covered by a completed fsync (equal to WALSeq except inside an open group-
// commit window; zero without durability). Replication ships only records at
// or below it. Safe from any goroutine.
func (e *Engine) SyncedSeq() uint64 {
	if e.dur == nil {
		return 0
	}
	return e.dur.log.SyncedSeq()
}

// AppliedSeq returns the durable seq of the last epoch whose mutations are
// fully applied and visible to every read tier. It trails WALSeq by at most
// the in-flight epoch (logged-but-not-yet-applied), which makes it the seq
// a read response may claim: sampled before a read, it never exceeds the
// state the read reflects. Safe from any goroutine.
func (e *Engine) AppliedSeq() uint64 { return e.applied.Load() }

// WALFloor returns the WAL's checkpoint floor: the sequence number already
// captured by the checkpoint the log was last reset behind (zero if never
// reset, or without durability). Records in the live log cover exactly
// (WALFloor, WALSeq]. Safe from any goroutine.
func (e *Engine) WALFloor() uint64 {
	if e.dur == nil {
		return 0
	}
	return e.dur.log.BaseSeq()
}

// serviceCheckpoint runs on the dispatcher at the end of an epoch, when the
// graph is stable and every WAL record appended so far has been applied —
// so a snapshot of the live edge set captures exactly the log's prefix and
// the log can be truncated behind it.
//
// close(req.done) releases the Checkpoint caller, so it must stay behind
// the checkpoint.Write durability barrier.
//
//conn:dispatcher-only
func (e *Engine) serviceCheckpoint() {
	req := e.ckptReq.Swap(nil)
	if req == nil {
		return
	}
	if e.gs != nil {
		// The sync point doubles as the checkpoint barrier: pending epochs
		// are fsynced, teed and acknowledged first, and gs.mu is held
		// across the checkpoint so the maxWait timer cannot race a Sync
		// against the WAL reset's file swap.
		e.gs.barrier(func() { e.runCheckpoint(req) })
		return
	}
	e.runCheckpoint(req)
}

// runCheckpoint writes one checkpoint — a full snapshot, or an incremental
// delta against the last full when the CheckpointEvery policy says so. Only
// a full truncates the WAL; a delta leaves the log alone, which is what
// makes the chain safe: if the delta file is later found damaged, restore
// falls back to the full snapshot plus a complete WAL replay, losing
// nothing. close(req.done) releases the Checkpoint caller, so it must stay
// behind the durable write barriers.
//
//conn:dispatcher-only
//conn:ack-after-fsync
func (e *Engine) runCheckpoint(req *ckptRequest) {
	seq := e.dur.log.LastSeq()
	edges := e.c.SpanningForest()
	edges = append(edges, e.c.NonTreeEdges()...)

	if e.ckptEvery > 1 && e.baseEdges != nil && e.sinceFull < e.ckptEvery-1 {
		// Delta turn: diff the live edge set against the last full
		// snapshot. edges is spanning forest first, then non-tree edges, so
		// Add inherits that order.
		cur := make(map[uint64]graph.Edge, len(edges))
		var add []graph.Edge
		for _, ed := range edges {
			k := ed.Key()
			cur[k] = ed
			if _, ok := e.baseEdges[k]; !ok {
				add = append(add, ed)
			}
		}
		var del []graph.Edge
		for k, ed := range e.baseEdges {
			if _, ok := cur[k]; !ok {
				del = append(del, ed)
			}
		}
		d := checkpoint.Delta{Seq: seq, Base: e.baseSeq, N: e.c.N(), Add: add, Del: del}
		var path string
		var err error
		if flt := chaos.Inject(chaos.SiteEngineDeltaCheckpoint); flt != nil && flt.Action != chaos.ActDelay {
			// The delta write fails; the chain keeps its previous link and
			// the WAL (untouched by deltas) still covers everything.
			err = flt.Err()
		} else {
			path, err = checkpoint.WriteDelta(e.dur.dir, d)
		}
		if err == nil {
			e.sinceFull++
			e.dur.deltas.Add(1)
		}
		req.path, req.err = path, err
		close(req.done)
		return
	}

	snap := checkpoint.Snapshot{Seq: seq, N: e.c.N(), Edges: edges}
	path, err := checkpoint.Write(e.dur.dir, snap)
	if err == nil {
		// The full snapshot is durable: it is the newest full on disk, so
		// it becomes the delta base whatever happens to the reset below
		// (Chain only accepts deltas whose Base names the newest readable
		// full).
		e.sinceFull = 0
		e.baseSeq = seq
		base := make(map[uint64]graph.Edge, len(edges))
		for _, ed := range edges {
			base[ed.Key()] = ed
		}
		e.baseEdges = base
		// Prune prior checkpoints and count the new one only after the WAL
		// reset succeeds. If Reset fails, the directory must keep a usable
		// (checkpoint, log) pair: the older snapshots stay as fallbacks and
		// the log keeps every record, so Restore still recovers the full
		// acked history whichever checkpoint it manages to read. The new
		// snapshot file is left in place too — it is valid, just not yet
		// the log's floor.
		if err = e.resetLog(seq); err == nil {
			checkpoint.Prune(e.dur.dir, seq)
			checkpoint.PruneDeltas(e.dur.dir, seq)
			e.dur.checkpoints.Add(1)
		} else {
			path = ""
		}
	}
	req.path, req.err = path, err
	close(req.done)
}

// resetLog truncates the WAL behind the durable checkpoint at seq. The
// chaos site models the truncation failing (a disk error between the
// checkpoint write and the log reset): serviceCheckpoint's fallback must
// keep the older checkpoints and the full log so Restore still recovers the
// complete acked history.
func (e *Engine) resetLog(seq uint64) error {
	if flt := chaos.Inject(chaos.SiteEngineCheckpointReset); flt != nil {
		return flt.Err()
	}
	return e.dur.log.Reset(seq)
}

// Checkpoint durably snapshots the current edge set into the durability
// directory and truncates the WAL behind it, bounding restart replay time.
// It blocks until the snapshot is on disk and returns its file path. The
// snapshot is taken at an epoch boundary by the dispatcher itself, so it is
// transactionally consistent with the log: every operation acknowledged
// before Checkpoint returns is either in the snapshot or in the remaining
// WAL tail. Returns an error on an Engine without durability, and ErrClosed
// (never a panic) once Close has begun.
func (e *Engine) Checkpoint() (string, error) {
	if e.dur == nil {
		return "", errors.New("engine: Checkpoint without durability")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	req := &ckptRequest{done: make(chan struct{})}
	e.ckptReq.Store(req)
	// Dedicated dispatcher nudge: a flush barrier forces a drain, and the
	// dispatcher services checkpoint requests at the end of every drain —
	// even an empty one — so the wait below is bounded by one epoch without
	// smuggling a fake query through the pipeline (which would touch vertex
	// 0 and panic after Close instead of failing cleanly).
	if err := e.buf.Flush(); err != nil {
		// Close raced in. The request was published before the flush
		// attempt, so the dispatcher's final sweep may still have serviced
		// it; only if it can be retracted unserviced did the checkpoint
		// definitely not happen.
		if e.ckptReq.CompareAndSwap(req, nil) {
			return "", ErrClosed
		}
	}
	<-req.done
	return req.path, req.err
}

// execEpoch applies one drained epoch to the underlying structure and
// returns the results plus the epoch's durable commit position (the WAL seq
// the epoch's state reflects: its own record's seq for a mutating epoch,
// the last logged seq for a query-only one, zero without durability). It
// runs on the dispatcher goroutine only, so the single-writer contract of
// core.Conn holds. Insert and delete credit goes to the first staging of
// each edge in epoch order; queries run against the post-update state.
//
// Locking: only the mutating phase write-holds e.mu — ReadNow readers are
// excluded exactly while the structure changes. The epoch's own queries and
// the snapshot publish are read-only walks and run lock-free alongside
// ReadNow (read-read is safe under the core contract; no other writer can
// exist because this is the sole dispatcher).
//
//conn:dispatcher-only
func (e *Engine) execEpoch(ops []coalesce.Op) ([]bool, uint64) {
	// Durability barrier: the epoch's updates hit the fsynced WAL before
	// the first structure mutation and before any future resolves, so a
	// caller that observes its commit can never lose the write to a crash.
	if e.dur != nil {
		e.logEpoch(ops)
	}
	// The epoch's commit position is sampled here, after this epoch's own
	// append and before any later epoch can log: exactly the seq a caller
	// needs for read-your-writes fencing, never a later writer's.
	epochSeq := e.WALSeq()

	res := make([]bool, len(ops))
	var insIdx, delIdx, qIdx []int
	for i, op := range ops {
		switch op.Kind {
		case coalesce.OpInsert:
			insIdx = append(insIdx, i)
		case coalesce.OpDelete:
			delIdx = append(delIdx, i)
		default:
			qIdx = append(qIdx, i)
		}
	}

	// touched collects the endpoints of applied updates that can actually
	// move a component label — the dirty set the snapshot publisher repairs
	// from. Credited updates that provably preserve the partition are
	// filtered out here so write-heavy epochs of intra-component inserts
	// and non-tree deletes skip snapshot work entirely:
	//   - an insert whose endpoints share a label in the published
	//     snapshot (which is exact for the pre-epoch graph: every
	//     label-changing epoch republishes) joins nothing;
	//   - a non-tree delete leaves the spanning forest intact, and any
	//     fragment a batch of deletions splits off is bounded by deleted
	//     TREE edges, whose endpoints it contains.
	var touched []int32

	// The insert pre-scan (dedup + presence filter) reads only pre-epoch
	// state, so it runs before the write lock — concurrent ReadNow readers
	// are not blocked by it.
	var insBatch []graph.Edge
	if len(insIdx) > 0 {
		lbl := e.snap.Current() // pre-epoch labelling
		seen := make(map[uint64]struct{}, len(insIdx))
		insBatch = make([]graph.Edge, 0, len(insIdx))
		for _, i := range insIdx {
			u, v := ops[i].U, ops[i].V
			if u == v {
				continue
			}
			k := graph.Edge{U: u, V: v}.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if !e.c.HasEdge(u, v) {
				res[i] = true
				insBatch = append(insBatch, graph.Edge{U: u, V: v})
				if !lbl.Connected(u, v) {
					touched = append(touched, u, v)
				}
			}
		}
	}

	if len(insBatch) > 0 || len(delIdx) > 0 {
		// The write lock spans from the first structure mutation to the
		// last: ReadNow must never observe inserts applied but deletes
		// pending. The delete pre-scan has to sit inside the window — it
		// reads post-insert presence so an insert and delete of the same
		// edge in one epoch compose.
		e.mu.Lock()
		e.c.BatchInsert(insBatch)
		if len(delIdx) > 0 {
			seen := make(map[uint64]struct{}, len(delIdx))
			batch := make([]graph.Edge, 0, len(delIdx))
			for _, i := range delIdx {
				u, v := ops[i].U, ops[i].V
				if u == v {
					continue
				}
				k := graph.Edge{U: u, V: v}.Key()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				// Tree-ness is read post-insert, pre-delete — exactly the
				// forest BatchDelete will sever.
				if present, tree := e.c.EdgeInfo(u, v); present {
					res[i] = true
					batch = append(batch, graph.Edge{U: u, V: v})
					if tree {
						touched = append(touched, u, v)
					}
				}
			}
			e.c.BatchDelete(batch)
		}
		e.mu.Unlock()
	}

	if len(qIdx) > 0 {
		qs := make([]graph.Edge, len(qIdx))
		for j, i := range qIdx {
			qs[j] = graph.Edge{U: ops[i].U, V: ops[i].V}
		}
		for j, ok := range e.c.BatchConnected(qs) {
			res[qIdx[j]] = ok
		}
	}

	// Publish before the dispatcher resolves the epoch's futures (our
	// caller, coalesce.drain, closes them after we return): once any caller
	// observes its commit, ReadRecent already reflects the epoch. A non-nil
	// diff means this epoch changed the partition; tee the transition to
	// the connectivity-event subscribers (internal/pubsub's hub) — still on
	// the dispatcher, still before any future resolves, so a caller that
	// observes its commit can also already observe its events.
	if d := e.snap.Publish(touched); d != nil {
		if subs := e.diffSubs.Load(); subs != nil && len(*subs) > 0 {
			for _, s := range *subs {
				s.fn(epochSeq, d)
			}
		}
	}

	if e.dur != nil {
		e.serviceCheckpoint()
	}

	if e.hook != nil {
		e.hook(ops, res)
	}
	// The epoch is fully applied and its snapshot published: readers that
	// sample AppliedSeq from here on may safely claim this position —
	// a claimed seq never exceeds the state a subsequent read reflects.
	e.applied.Store(epochSeq)
	return res, epochSeq
}

// ReadNow reports whether u and v are currently connected — read-committed.
// It walks the live structure under a read lock that excludes only the
// mutating phase of epoch execution. Returns ErrClosed once Close has
// begun.
func (e *Engine) ReadNow(u, v int32) (bool, error) {
	e.mu.RLock()
	if e.closed.Load() {
		e.mu.RUnlock()
		return false, ErrClosed
	}
	ok := e.c.Connected(u, v)
	e.mu.RUnlock()
	return ok, nil
}

// ReadNowBatch answers k read-committed connectivity queries against one
// consistent live state (the read lock is held across the whole batch).
func (e *Engine) ReadNowBatch(qs []graph.Edge) ([]bool, error) {
	e.mu.RLock()
	if e.closed.Load() {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	out := e.c.BatchConnected(qs)
	e.mu.RUnlock()
	return out, nil
}

// Read runs f against the live structure under the read-committed lock:
// f may use any read-only query of core.Conn and must not retain the
// pointer. The shard coordinator uses it to sample component ids and
// enumerate edge sets consistently. Returns ErrClosed once Close has begun.
func (e *Engine) Read(f func(c *core.Conn)) error {
	e.mu.RLock()
	if e.closed.Load() {
		e.mu.RUnlock()
		return ErrClosed
	}
	f(e.c)
	e.mu.RUnlock()
	return nil
}

// Recent returns the current published component labelling — the wait-free
// ReadRecent tier. Usable even after Close (answers from the final
// snapshot).
func (e *Engine) Recent() *snapshot.Labels { return e.snap.Current() }

// Flush forces an immediate epoch and blocks until every operation staged
// before the call has committed. Flush on a closed (or closing) Engine is
// graceful — never an error: Close's final sweep commits everything a
// racing Flush could have flushed, and Flush waits for that sweep before
// returning, so the barrier guarantee holds on both sides of the race.
func (e *Engine) Flush() {
	if err := e.buf.Flush(); err != nil {
		// ErrClosed: Close has begun but its final drain may not have run
		// yet. Buffer.Close is idempotent and blocks until the dispatcher
		// (final sweep included) has exited — ride it instead of failing.
		e.buf.Close()
	}
}

// Close commits everything still staged and stops the dispatcher. After
// Close returns the underlying core.Conn is quiesced and may be used
// directly. Close is idempotent. The returned error reports a failure to
// close the WAL file handle; the durable state itself is unaffected (every
// acknowledged epoch was fsynced before its future resolved).
func (e *Engine) Close() error {
	e.closed.Store(true)
	e.buf.Close()
	if e.gs != nil {
		// The dispatcher has exited; one final sync point makes the tail
		// group durable and releases any caller still parked on it, before
		// the log handle goes away.
		e.gs.close()
	}
	var err error
	if e.dur != nil {
		// The dispatcher has exited; every acknowledged epoch is already
		// fsynced, so closing the log handle loses no data — but the
		// error still surfaces to the caller.
		err = e.dur.log.Close()
	}
	// Empty critical section as a barrier: wait out any ReadNow that
	// acquired the read lock before the closed flag landed, so the
	// structure is truly quiesced when we return.
	e.mu.Lock()
	//lint:ignore SA2001 the empty critical section IS the barrier
	e.mu.Unlock()
	return err
}

// Stats are dispatcher counters: how much traffic was coalesced and how
// large the epochs got. AvgEpoch is the realized average batch size — the Δ
// of Theorem 1 under the observed traffic. SnapshotPublishes and
// SnapshotRebuilds count ReadRecent labelling publications and how many of
// them fell back from incremental repair to a full relabelling.
type Stats struct {
	Epochs            int64
	Ops               int64
	MaxEpoch          int64
	SnapshotPublishes int64
	SnapshotRebuilds  int64

	// Durability counters (zero without durability): WAL records are
	// mutating epochs; WALFsyncs is how many fsyncs they actually cost
	// (equal to WALRecords per-epoch, fewer under group-commit) and
	// WALFsyncsSaved the difference attributable to grouping. WALBytes is
	// the encoded bytes appended, WALRawBytes what the same records would
	// have cost fixed-width — the codec's compression baseline.
	// WALAppendTime is the total wall time spent in appends, the per-epoch
	// durable overhead benchconn e14 measures. Checkpoints counts full
	// snapshots, CheckpointsDelta incremental deltas.
	WALRecords       int64
	WALBytes         int64
	WALRawBytes      int64
	WALFsyncs        int64
	WALFsyncsSaved   int64
	WALAppendTime    time.Duration
	Checkpoints      int64
	CheckpointsDelta int64

	// GroupSyncWidth is the group-commit scheduler's current width target:
	// the configured K for a static width, the EWMA-chosen K under
	// GroupSyncAdaptive, zero when grouping is off.
	GroupSyncWidth int64
}

// AvgEpoch returns the mean operations per committed epoch.
func (s Stats) AvgEpoch() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Epochs)
}

// Stats returns pipeline counters accumulated since New.
func (e *Engine) Stats() Stats {
	s := e.buf.Stats()
	sn := e.snap.Stats()
	out := Stats{
		Epochs: s.Epochs, Ops: s.Ops, MaxEpoch: s.MaxEpoch,
		SnapshotPublishes: sn.Publishes, SnapshotRebuilds: sn.Rebuilds,
	}
	if e.dur != nil {
		out.WALRecords = e.dur.records.Load()
		out.WALBytes = e.dur.bytes.Load()
		out.WALRawBytes = e.dur.rawBytes.Load()
		out.WALFsyncs = int64(e.dur.log.Fsyncs())
		out.WALFsyncsSaved = e.dur.fsyncsSaved.Load()
		out.WALAppendTime = time.Duration(e.dur.appendNanos.Load())
		out.Checkpoints = e.dur.checkpoints.Load()
		out.CheckpointsDelta = e.dur.deltas.Load()
		if e.gs != nil {
			out.GroupSyncWidth = int64(e.gs.width())
		}
	}
	return out
}
