package engine

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// oracle mirrors the epoch semantics sequentially: inserts credit first
// staging, deletes run against the post-insert set, queries answer the
// epoch's post-update state.
type oracle struct {
	n     int
	edges map[[2]int32]bool
}

func newOracle(n int) *oracle { return &oracle{n: n, edges: map[[2]int32]bool{}} }

func canon(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func (o *oracle) apply(ops []coalesce.Op) []bool {
	res := make([]bool, len(ops))
	for i, op := range ops {
		if op.Kind != coalesce.OpInsert || op.U == op.V {
			continue
		}
		if k := canon(op.U, op.V); !o.edges[k] {
			o.edges[k] = true
			res[i] = true
		}
	}
	for i, op := range ops {
		if op.Kind != coalesce.OpDelete || op.U == op.V {
			continue
		}
		if k := canon(op.U, op.V); o.edges[k] {
			delete(o.edges, k)
			res[i] = true
		}
	}
	var uf *unionfind.UF
	for i, op := range ops {
		if op.Kind != coalesce.OpQuery {
			continue
		}
		if uf == nil {
			uf = o.uf()
		}
		res[i] = uf.Connected(op.U, op.V)
	}
	return res
}

func (o *oracle) uf() *unionfind.UF {
	uf := unionfind.New(o.n)
	for k := range o.edges {
		uf.Union(k[0], k[1])
	}
	return uf
}

func randOps(rng *rand.Rand, n, count int) []coalesce.Op {
	ops := make([]coalesce.Op, count)
	for i := range ops {
		kind := coalesce.OpInsert
		switch r := rng.Intn(100); {
		case r < 45:
		case r < 75:
			kind = coalesce.OpDelete
		default:
			kind = coalesce.OpQuery
		}
		ops[i] = coalesce.Op{Kind: kind, U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return ops
}

// checkAllPairs compares the engine's read-committed answers for every
// vertex pair against the oracle.
func checkAllPairs(t *testing.T, e *Engine, o *oracle) {
	t.Helper()
	uf := o.uf()
	var qs []graph.Edge
	for u := int32(0); u < int32(o.n); u++ {
		for v := u + 1; v < int32(o.n); v++ {
			qs = append(qs, graph.Edge{U: u, V: v})
		}
	}
	bits, err := e.ReadNowBatch(qs)
	if err != nil {
		t.Fatalf("ReadNowBatch: %v", err)
	}
	for i, q := range qs {
		if want := uf.Connected(q.U, q.V); bits[i] != want {
			t.Fatalf("pair {%d,%d}: got %v, oracle says %v", q.U, q.V, bits[i], want)
		}
	}
}

// TestEngineEpochPipeline drives a memory engine through randomized mixed
// batches against a sequential oracle and checks every read path — Apply
// results, ReadNow/ReadNowBatch, the Read callback, the wait-free Recent
// labelling — plus the pipeline counters.
func TestEngineEpochPipeline(t *testing.T) {
	const n = 96
	rounds := 80
	if testing.Short() {
		rounds = 25
	}
	e, err := New(core.New(n), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() { _ = e.Close() }()
	if e.N() != n || e.Durable() || e.Closed() {
		t.Fatalf("fresh engine: N=%d durable=%v closed=%v", e.N(), e.Durable(), e.Closed())
	}

	o := newOracle(n)
	rng := rand.New(rand.NewSource(7))
	var total int64
	for r := 0; r < rounds; r++ {
		ops := randOps(rng, n, 1+rng.Intn(24))
		total += int64(len(ops))
		got, _, err := e.Apply(ops)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		want := o.apply(ops)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("round %d op %d (%+v): got %v, oracle says %v",
					r, i, ops[i], got[i], want[i])
			}
		}
	}

	checkAllPairs(t, e, o)
	uf := o.uf()
	for u := int32(0); u < n; u += 7 {
		v := (u + 13) % n
		if ok, err := e.ReadNow(u, v); err != nil || ok != uf.Connected(u, v) {
			t.Fatalf("ReadNow(%d,%d) = %v, %v; want %v", u, v, ok, err, uf.Connected(u, v))
		}
	}
	if err := e.Read(func(c *core.Conn) {
		if got := c.Connected(0, 1); got != uf.Connected(0, 1) {
			t.Errorf("Read callback Connected(0,1) = %v, want %v", got, uf.Connected(0, 1))
		}
	}); err != nil {
		t.Fatalf("Read: %v", err)
	}

	// The published labelling reflects the last connectivity-changing epoch;
	// the engine is quiescent, so it must agree with the oracle exactly.
	e.Flush()
	lbl := e.Recent()
	if lbl == nil || lbl.Len() != n {
		t.Fatalf("Recent() = %v", lbl)
	}
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if lbl.Connected(u, v) != uf.Connected(u, v) {
				t.Fatalf("recent {%d,%d}: got %v want %v", u, v, lbl.Connected(u, v), uf.Connected(u, v))
			}
		}
	}

	st := e.Stats()
	if st.Epochs == 0 || st.Ops != total || st.MaxEpoch == 0 || st.AvgEpoch() <= 0 {
		t.Fatalf("stats = %+v after %d ops", st, total)
	}
	if st.WALRecords != 0 || st.Checkpoints != 0 {
		t.Fatalf("memory engine has durability counters: %+v", st)
	}

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := e.Apply(randOps(rng, n, 4)); err != ErrClosed {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if _, err := e.ReadNow(0, 1); err != ErrClosed {
		t.Fatalf("ReadNow after Close = %v, want ErrClosed", err)
	}
	// The wait-free tier keeps answering from the final snapshot.
	if got := e.Recent().Connected(0, 1); got != uf.Connected(0, 1) {
		t.Fatalf("Recent after Close: got %v want %v", got, uf.Connected(0, 1))
	}
}

// TestEngineDurableRestore exercises the durable pipeline end to end: WAL
// append + epoch subscription tee, a mid-stream checkpoint with WAL
// truncation, restore (checkpoint + WAL tail) into a fresh engine, and the
// epoch-record replay contract (replaying Ins then Del reproduces the
// state).
func TestEngineDurableRestore(t *testing.T) {
	const n = 64
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	dir := t.TempDir()
	e, err := New(core.New(n), Options{DurDir: dir, MaxDelay: 0})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !e.Durable() {
		t.Fatal("engine with DurDir is not durable")
	}

	var mu sync.Mutex
	var shipped []EpochRecord
	cancel := e.SubscribeEpochs(func(rec EpochRecord) {
		mu.Lock()
		shipped = append(shipped, rec)
		mu.Unlock()
	})
	defer cancel()

	o := newOracle(n)
	rng := rand.New(rand.NewSource(11))
	run := func(eng *Engine, count int) {
		t.Helper()
		for r := 0; r < count; r++ {
			ops := randOps(rng, n, 1+rng.Intn(16))
			got, _, err := eng.Apply(ops)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			want := o.apply(ops)
			for i := range ops {
				if got[i] != want[i] {
					t.Fatalf("op %d (%+v): got %v, oracle says %v", i, ops[i], got[i], want[i])
				}
			}
		}
	}

	run(e, rounds)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Traffic after the checkpoint so restore replays a WAL tail too.
	run(e, rounds/2)
	e.Flush()

	seq, floor, applied := e.WALSeq(), e.WALFloor(), e.AppliedSeq()
	if applied != seq {
		t.Fatalf("quiescent engine: applied seq %d != WAL seq %d", applied, seq)
	}
	if floor == 0 || floor > seq+1 {
		t.Fatalf("WAL floor %d not raised by checkpoint (seq %d)", floor, seq)
	}
	st := e.Stats()
	if st.WALRecords == 0 || st.WALBytes == 0 || st.Checkpoints != 1 {
		t.Fatalf("durability stats = %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The subscription saw every mutating epoch since it was registered:
	// replaying each record's Ins then Del must reproduce the final state.
	mu.Lock()
	records := append([]EpochRecord(nil), shipped...)
	mu.Unlock()
	if len(records) == 0 {
		t.Fatal("no epoch records shipped")
	}
	replayed := core.New(n)
	last := uint64(0)
	for _, rec := range records {
		if rec.Seq <= last {
			t.Fatalf("epoch seqs not strictly increasing: %d after %d", rec.Seq, last)
		}
		last = rec.Seq
		replayed.BatchInsert(rec.Ins)
		replayed.BatchDelete(rec.Del)
	}
	uf := o.uf()
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if replayed.Connected(u, v) != uf.Connected(u, v) {
				t.Fatalf("replay {%d,%d}: got %v want %v", u, v, replayed.Connected(u, v), uf.Connected(u, v))
			}
		}
	}

	// Restore = newest checkpoint + WAL tail; every acked write is back.
	c, err := Restore(dir, func(n int) *core.Conn { return core.New(n) })
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	e2, err := New(c, Options{DurDir: dir, MaxDelay: 0})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = e2.Close() }()
	if got := e2.WALSeq(); got != seq {
		t.Fatalf("restored WAL seq = %d, want %d", got, seq)
	}
	checkAllPairs(t, e2, o)

	// The restored engine keeps accepting (and logging) traffic.
	run(e2, 5)
	checkAllPairs(t, e2, o)
}
