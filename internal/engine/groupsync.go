// Group-fsync scheduling: the sync point that lets up to K epochs share one
// fsync without weakening the durability contract.
//
// Without grouping, logEpoch appends AND fsyncs every mutating epoch — one
// fsync per epoch, the latency floor of the durable write path. With
// WithGroupSync(k, maxWait), logEpoch only appends; the epoch's callers stay
// blocked (coalesce hands their release function to the scheduler instead of
// resolving futures) and the epoch's replication tee is held back, until the
// scheduler's sync point fires: after k epochs accumulate, or maxWait after
// the first unsynced epoch, whichever is first. The sync point runs exactly
// one fsync, advances the WAL's synced frontier, tees the now-durable epochs
// to subscribers in order, and releases every pending acknowledgement.
//
// The invariant is unchanged: acked ⇒ fsynced. Only the batching of the
// fsync moved — callers trade up to maxWait of acknowledgement latency for
// a 1/k fsync amortization. A crash mid-group loses only epochs whose
// callers were still blocked, which the recovery contract already allows.
//
// The width can also be adaptive (WithGroupSync(0, maxWait)): instead of a
// static K, the scheduler tracks an EWMA of observed fsync latency and
// picks K so one fsync amortized over the group costs each epoch at most
// maxWait/8 — fast volumes converge to per-epoch fsyncs, slow ones widen
// the group, and nothing has to be tuned per deployment.
package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
)

// pendingAck is one epoch's deferred acknowledgement: the commit position
// its callers wait on, and the release that unblocks them.
type pendingAck struct {
	seq uint64
	// release resolves the epoch's futures; calling it acknowledges the
	// epoch to its callers.
	//
	//conn:ack
	release func()
}

// Adaptive-width policy constants: the scheduler keeps the amortized fsync
// cost per epoch below maxWait/adaptiveBudgetDiv by targeting
// K = ceil(ewmaFsync / budget), clamped to [1, adaptiveMaxK]. A fast disk
// (fsync ≪ budget) converges to K=1 — per-epoch latency, nothing grouped —
// while a slow disk widens the group until the per-epoch share of one fsync
// fits the budget again.
const (
	adaptiveBudgetDiv = 8
	adaptiveMaxK      = 64
)

// groupSync is the group-commit fsync scheduler. The dispatcher feeds it
// appended-but-unsynced epochs (noteEpoch) and deferred acknowledgements
// (enqueue); the sync point runs on whichever goroutine reaches it first —
// the dispatcher hitting the K-epoch target or a checkpoint, or the maxWait
// timer. mu orders the two; everything below it is mu-protected.
type groupSync struct {
	e        *Engine
	maxWait  time.Duration
	adaptive bool

	mu       sync.Mutex
	k        int           // current width target; fixed unless adaptive
	ewma     time.Duration // EWMA of observed fsync latency (adaptive only)
	recs     []EpochRecord // appended, unsynced: teed to subscribers at the sync point
	acks     []pendingAck  // deferred acknowledgements, FIFO
	unsynced int           // epochs appended since the last sync
	timer    *time.Timer   // fires the sync point maxWait after the first unsynced epoch
	armed    bool          // timer is counting down
	closed   bool
}

func newGroupSync(e *Engine, k int, maxWait time.Duration, adaptive bool) *groupSync {
	if maxWait <= 0 {
		maxWait = DefaultGroupSyncMaxWait
	}
	if adaptive {
		// Start ungrouped; the first observed fsyncs teach the EWMA how
		// expensive the barrier actually is on this volume.
		k = 1
	}
	return &groupSync{e: e, k: k, maxWait: maxWait, adaptive: adaptive}
}

// width reports the current group-width target (for Stats; the adaptive
// policy moves it between fsyncs).
func (gs *groupSync) width() int {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.k
}

// retarget folds one observed fsync latency into the EWMA and re-picks the
// width target. Caller holds gs.mu; no-op for a static width.
func (gs *groupSync) retarget(obs time.Duration) {
	if !gs.adaptive {
		return
	}
	if gs.ewma == 0 {
		gs.ewma = obs
	} else {
		gs.ewma = (7*gs.ewma + obs) / 8
	}
	budget := gs.maxWait / adaptiveBudgetDiv
	if budget <= 0 {
		budget = 1
	}
	k := int((gs.ewma + budget - 1) / budget)
	if k < 1 {
		k = 1
	}
	if k > adaptiveMaxK {
		k = adaptiveMaxK
	}
	gs.k = k
}

// noteEpoch registers one appended-but-unsynced epoch. Called by the
// dispatcher from logEpoch, after wal.Log.AppendRecord and instead of the
// per-epoch Sync. Reaching the K-epoch target fires the sync point inline
// (on the dispatcher); otherwise the maxWait timer is armed so the epoch's
// acknowledgement latency stays bounded.
func (gs *groupSync) noteEpoch(er EpochRecord) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	gs.recs = append(gs.recs, er)
	gs.unsynced++
	if gs.unsynced >= gs.k {
		gs.syncLocked()
		return
	}
	if !gs.armed {
		gs.armed = true
		if gs.timer == nil {
			gs.timer = time.AfterFunc(gs.maxWait, gs.onTimer)
		} else {
			gs.timer.Reset(gs.maxWait)
		}
	}
}

// enqueue defers one epoch's acknowledgement to the sync point. Called by
// the dispatcher (via the coalesce ack hook) after the epoch executed. An
// epoch already below the synced frontier — the timer fired between append
// and execution, or the epoch was query-only against synced state — is
// released immediately.
func (gs *groupSync) enqueue(seq uint64, release func()) {
	gs.mu.Lock()
	if gs.closed || seq <= gs.e.dur.log.SyncedSeq() {
		gs.mu.Unlock()
		release()
		return
	}
	gs.acks = append(gs.acks, pendingAck{seq: seq, release: release})
	gs.mu.Unlock()
}

// onTimer is the maxWait deadline: the group is synced even if it never
// reached K epochs, bounding every caller's acknowledgement latency.
func (gs *groupSync) onTimer() {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed || gs.unsynced == 0 {
		return
	}
	gs.syncLocked()
}

// syncLocked is THE sync point: one fsync makes every appended epoch
// durable, then — and only then — the held-back replication tee and the
// deferred acknowledgements run. Caller holds gs.mu. The tee and the
// releases must stay behind the Sync call: both expose the epochs to the
// outside world. As a barrier site that itself resolves acknowledgements,
// connvet's ackafterfsync implies the ordering check here even without
// the explicit annotation — both are kept for the reader.
//
//conn:fsync-barrier
//conn:ack-after-fsync
func (gs *groupSync) syncLocked() {
	if flt := chaos.Inject(chaos.SiteEngineGroupSync); flt != nil {
		// Delay stretches the grouping window; Fail is a crash at the worst
		// instant — a whole group appended, nothing synced, every caller
		// still blocked. Fail-stop, exactly like an append failure: a
		// durability guarantee that cannot be honored is never degraded.
		flt.Sleep()
		if flt.Action != chaos.ActDelay {
			panic(fmt.Sprintf("engine: group-sync point failed: %v", flt.Err()))
		}
	}
	t0 := time.Now()
	if err := gs.e.dur.log.Sync(); err != nil {
		panic(fmt.Sprintf("engine: durable pipeline cannot sync WAL: %v", err))
	}
	gs.retarget(time.Since(t0))
	gs.armed = false
	if gs.timer != nil {
		gs.timer.Stop()
	}
	if gs.unsynced > 1 {
		gs.e.dur.fsyncsSaved.Add(int64(gs.unsynced - 1))
	}
	gs.unsynced = 0
	// Replication tee, in epoch order: the records are durable now, so
	// subscribers (the Hub shipping to followers) may see them — the same
	// point the per-epoch path tees at, just batched.
	if subs := gs.e.subs.Load(); subs != nil && len(*subs) > 0 {
		for _, er := range gs.recs {
			for _, s := range *subs {
				s.fn(er)
			}
		}
	}
	gs.recs = nil
	// Deferred acknowledgements, FIFO. Every queued seq is covered: the
	// frontier just advanced to the last appended record.
	for _, a := range gs.acks {
		a.release()
	}
	gs.acks = nil
}

// barrier runs fn with the scheduler quiesced: pending epochs synced, acks
// released, and gs.mu held across fn so the timer goroutine cannot run a
// concurrent Sync while fn (a checkpoint's WAL reset) swaps the log file.
func (gs *groupSync) barrier(fn func()) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.unsynced > 0 {
		gs.syncLocked()
	}
	fn()
}

// close syncs whatever is still pending — the dispatcher has exited, so no
// new epochs can arrive — releases every caller, and stops the timer.
func (gs *groupSync) close() {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.unsynced > 0 {
		gs.syncLocked()
	}
	gs.closed = true
	if gs.timer != nil {
		gs.timer.Stop()
	}
}
