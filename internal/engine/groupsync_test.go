package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/coalesce"
	"repro/internal/core"
)

// TestAdaptiveRetargetPolicy pins the width policy in isolation: K tracks
// ceil(ewma/budget) with budget = maxWait/8, clamped to [1, adaptiveMaxK],
// and the EWMA weighs history 7:1 against each new observation.
func TestAdaptiveRetargetPolicy(t *testing.T) {
	gs := &groupSync{maxWait: 80 * time.Millisecond, adaptive: true, k: 1}
	budget := gs.maxWait / adaptiveBudgetDiv // 10ms

	// A fast barrier stays ungrouped.
	gs.retarget(5 * time.Millisecond)
	if gs.ewma != 5*time.Millisecond || gs.k != 1 {
		t.Fatalf("after 5ms: ewma=%v k=%d, want 5ms/1", gs.ewma, gs.k)
	}
	// A slow barrier widens the group as the EWMA converges: constant 40ms
	// observations must settle at K = ceil(40ms/10ms) = 4.
	for i := 0; i < 100; i++ {
		gs.retarget(40 * time.Millisecond)
	}
	if want := int((40*time.Millisecond + budget - 1) / budget); gs.k != want {
		t.Fatalf("converged k = %d, want %d (ewma %v)", gs.k, want, gs.ewma)
	}
	// A pathological barrier clamps at the cap instead of unbounded widths.
	for i := 0; i < 100; i++ {
		gs.retarget(10 * time.Second)
	}
	if gs.k != adaptiveMaxK {
		t.Fatalf("clamped k = %d, want %d", gs.k, adaptiveMaxK)
	}
	// Recovery: the EWMA forgets, K comes back down to 1.
	for i := 0; i < 200; i++ {
		gs.retarget(time.Millisecond)
	}
	if gs.k != 1 {
		t.Fatalf("recovered k = %d (ewma %v), want 1", gs.k, gs.ewma)
	}
}

func TestRetargetNoopWhenStatic(t *testing.T) {
	gs := &groupSync{maxWait: 80 * time.Millisecond, k: 8}
	gs.retarget(10 * time.Second)
	if gs.k != 8 || gs.ewma != 0 {
		t.Fatalf("static scheduler retargeted: k=%d ewma=%v", gs.k, gs.ewma)
	}
}

// TestAdaptiveGroupSyncEndToEnd runs a durable engine with the adaptive
// width under concurrent writers: every acknowledged epoch must be below
// the synced frontier (acked ⇒ fsynced, the invariant grouping is not
// allowed to weaken), and the advertised width must stay in policy range.
func TestAdaptiveGroupSyncEndToEnd(t *testing.T) {
	const n = 128
	e, err := New(core.New(n), Options{
		DurDir:            t.TempDir(),
		GroupSyncAdaptive: true,
		GroupSyncMaxWait:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int32(w * (n / 4))
			for i := 0; i < 40; i++ {
				u := base + int32(i%31)
				ops := []coalesce.Op{{Kind: coalesce.OpInsert, U: u, V: u + 1}}
				if i%3 == 2 {
					ops[0].Kind = coalesce.OpDelete
				}
				_, seq, err := e.Apply(ops)
				if err != nil {
					t.Error(err)
					return
				}
				if synced := e.SyncedSeq(); seq > 0 && synced < seq {
					t.Errorf("acked epoch %d above synced frontier %d", seq, synced)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.GroupSyncWidth < 1 || st.GroupSyncWidth > adaptiveMaxK {
		t.Fatalf("advertised width %d outside [1,%d]", st.GroupSyncWidth, adaptiveMaxK)
	}
	if st.WALFsyncs == 0 {
		t.Fatal("no fsyncs recorded on a durable adaptive engine")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
