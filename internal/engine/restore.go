// Crash recovery: rebuild a core.Conn from a durability directory — newest
// valid checkpoint plus a replay of the WAL tail. This is the read side of
// the write pipeline in engine.go; the public conn.Restore and the shard
// coordinator's per-shard restore both delegate here.
//
// The recovery invariant (proven by the conn package's crash-recovery
// harness): after a crash at ANY instant, Restore yields exactly the state
// of some prefix of the committed epoch sequence that includes every epoch
// whose caller was unblocked — acked ⇒ replayed. Epochs that were logged
// but not yet acknowledged may or may not survive (both outcomes are
// correct: the caller never saw a commit); torn partial records are
// detected by CRC and discarded.

package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/wal"
)

// ErrNoDurableState is returned by Restore when the directory holds neither
// a checkpoint nor a write-ahead log.
var ErrNoDurableState = errors.New("no durable state in directory")

// Restore rebuilds a structure from a durability directory previously
// written by a durable Engine: it loads the newest checkpoint chain that
// validates — the newest readable full snapshot plus the newest delta
// checkpoint chained to it, falling back to the full snapshot alone when no
// delta validates (see checkpoint.LoadChain) — then replays the
// write-ahead log's tail — records with sequence numbers past the chain —
// in commit order. Deltas never truncate the WAL, so the fallback is
// lossless: the log still covers everything since the full snapshot. A
// torn WAL tail from a crash mid-append (or mid-group under group-commit
// scheduling) is detected by CRC and ignored, exactly as the durability
// contract allows: the torn epoch never acknowledged.
//
// mk constructs the empty structure for the vertex count recorded in the
// durable state (callers use it to apply algorithm options). The returned
// structure is ready to be wrapped in a new durable Engine on the same
// directory; the log continues where it left off. Errors are returned
// unwrapped (no directory context) — callers add their own.
func Restore(dir string, mk func(n int) *core.Conn) (*core.Conn, error) {
	snap, haveSnap, err := checkpoint.LoadChain(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, WALFileName))
	haveWAL := err == nil
	if haveWAL {
		// Read-only handle: a close failure cannot lose data, but the
		// drop is acknowledged rather than silent.
		defer func() { _ = f.Close() }()
		// A file shorter than the header (crash during initial creation)
		// can hold no record; treat it as absent rather than corrupt.
		if st, err := f.Stat(); err != nil {
			return nil, err
		} else if st.Size() < wal.HeaderLen {
			haveWAL = false
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if !haveSnap && !haveWAL {
		return nil, fmt.Errorf("%w: %s", ErrNoDurableState, dir)
	}

	// Cross-check the WAL header against the checkpoint BEFORE building or
	// replaying anything: the universes must agree, and the log's
	// checkpoint floor must be covered by the snapshot we managed to load —
	// a floor above it means the records proving the gap were truncated
	// away after a checkpoint we can no longer read, i.e. data loss that
	// must surface as an error, not as a silently shrunken graph.
	n := snap.N
	if haveWAL {
		walN, baseSeq, err := wal.ReadHeader(f)
		if err != nil {
			return nil, err
		}
		if haveSnap && walN != snap.N {
			return nil, fmt.Errorf("checkpoint has n=%d but WAL has n=%d", snap.N, walN)
		}
		if !haveSnap && baseSeq > 0 {
			return nil, fmt.Errorf("WAL was truncated at a checkpoint (seq %d) but no readable checkpoint remains", baseSeq)
		}
		if haveSnap && baseSeq > snap.Seq {
			return nil, fmt.Errorf("WAL floor is seq %d but the newest readable checkpoint is seq %d", baseSeq, snap.Seq)
		}
		n = walN
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
	}

	c := mk(n)
	if haveSnap {
		c.BatchInsert(snap.Edges)
	}
	if haveWAL {
		replay := func(r wal.Record) error {
			if haveSnap && r.Seq <= snap.Seq {
				// Already captured by the checkpoint: the crash happened
				// after the snapshot was durable but before the log was
				// truncated.
				return nil
			}
			c.BatchInsert(r.Ins)
			c.BatchDelete(r.Del)
			return nil
		}
		if _, err := wal.Scan(f, replay); err != nil {
			return nil, err
		}
	}
	return c, nil
}
