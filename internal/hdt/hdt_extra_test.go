package hdt

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
)

func TestEdgesDescendLevels(t *testing.T) {
	// Two cliques joined by a bridge: deleting the bridge searches the
	// smaller clique, whose intra-clique non-tree edges are all failed
	// candidates — each must be pushed down a level (the charging
	// mechanism in action).
	n := 16
	c := New(n)
	for u := 0; u < 6; u++ { // clique A: 0..5
		for v := u + 1; v < 6; v++ {
			c.Insert(graph.Vertex(u), graph.Vertex(v))
		}
	}
	for u := 6; u < 16; u++ { // clique B: 6..15
		for v := u + 1; v < 16; v++ {
			c.Insert(graph.Vertex(u), graph.Vertex(v))
		}
	}
	c.Insert(2, 9) // the bridge (a tree edge: it connected the cliques)
	if !c.Connected(0, 15) {
		t.Fatal("bridge did not connect the cliques")
	}
	c.Delete(2, 9)
	if c.Connected(0, 15) {
		t.Fatal("bridge deletion must disconnect")
	}
	s := c.Stats()
	if s.Pushdowns == 0 {
		t.Fatalf("no pushdowns while exhausting clique A's candidates: %+v", s)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkBoundedByBudget(t *testing.T) {
	// Total level decreases never exceed (inserted edges) × L.
	n := 128
	c := New(n)
	es := graphgen.RandomGraph(n, 512, 3)
	for _, e := range es {
		c.Insert(e.U, e.V)
	}
	graphgen.Shuffle(es, 4)
	for _, e := range es {
		c.Delete(e.U, e.V)
	}
	s := c.Stats()
	budget := s.Inserts * int64(Levels(n))
	if s.Pushdowns+s.TreePushes > budget {
		t.Fatalf("pushes %d exceed budget %d", s.Pushdowns+s.TreePushes, budget)
	}
	if c.NumEdges() != 0 {
		t.Fatalf("residual edges: %d", c.NumEdges())
	}
}

func TestGridWorkload(t *testing.T) {
	r, cols := 8, 8
	n := r * cols
	c := New(n)
	for _, e := range graphgen.Grid(r, cols) {
		c.Insert(e.U, e.V)
	}
	// Cut all but one of the horizontal links crossing the column-3/4
	// seam: the grid must stay connected through the survivor.
	for i := 1; i < r; i++ {
		c.Delete(graph.Vertex(i*cols+3), graph.Vertex(i*cols+4))
	}
	if !c.Connected(0, graph.Vertex(n-1)) {
		t.Fatal("grid disconnected while one seam link survives")
	}
	// Cut the survivor: the grid bisects into columns [0..3] and [4..7].
	c.Delete(3, 4)
	if c.Connected(0, 4) {
		t.Fatal("seam fully cut but blocks still connected")
	}
	if !c.Connected(0, 3) || !c.Connected(4, graph.Vertex(n-1)) {
		t.Fatal("blocks internally disconnected")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLongSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(42))
	n := 96
	c := New(n)
	live := map[uint64]graph.Edge{}
	for step := 0; step < 6000; step++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if _, ok := live[e.Key()]; ok {
			c.Delete(u, v)
			delete(live, e.Key())
		} else {
			c.Insert(u, v)
			live[e.Key()] = e
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != len(live) {
		t.Fatalf("edge count drifted: %d vs %d", c.NumEdges(), len(live))
	}
}
