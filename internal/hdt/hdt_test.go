package hdt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestLevels(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Levels(n); got != want {
			t.Fatalf("Levels(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestInsertQueryBasic(t *testing.T) {
	c := New(5)
	if !c.Insert(0, 1) || !c.Insert(1, 2) {
		t.Fatal("inserts failed")
	}
	if c.Insert(0, 1) || c.Insert(1, 0) {
		t.Fatal("duplicate insert accepted")
	}
	if c.Insert(3, 3) {
		t.Fatal("self-loop accepted")
	}
	if !c.Connected(0, 2) || c.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if c.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", c.NumEdges())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonTreeEdge(t *testing.T) {
	c := New(3)
	c.Insert(0, 1)
	c.Insert(1, 2)
	c.Insert(0, 2) // closes a cycle: non-tree
	if !c.Delete(0, 2) {
		t.Fatal("delete failed")
	}
	if !c.Connected(0, 2) {
		t.Fatal("deleting non-tree edge changed connectivity")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTreeEdgeWithReplacement(t *testing.T) {
	c := New(4)
	c.Insert(0, 1)
	c.Insert(1, 2)
	c.Insert(2, 3)
	c.Insert(0, 3) // cycle closer
	if !c.Delete(1, 2) {
		t.Fatal("delete failed")
	}
	if !c.Connected(1, 2) {
		t.Fatal("replacement edge not found")
	}
	if c.Stats().Replaced != 1 {
		t.Fatalf("Replaced = %d", c.Stats().Replaced)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTreeEdgeNoReplacement(t *testing.T) {
	c := New(4)
	c.Insert(0, 1)
	c.Insert(2, 3)
	c.Delete(0, 1)
	if c.Connected(0, 1) {
		t.Fatal("still connected after bridge removal")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAbsent(t *testing.T) {
	c := New(3)
	if c.Delete(0, 1) {
		t.Fatal("deleting absent edge returned true")
	}
}

func TestCycleChurn(t *testing.T) {
	// Repeatedly break a ring and verify a replacement keeps it connected.
	n := 16
	c := New(n)
	for i := 0; i < n; i++ {
		c.Insert(graph.Vertex(i), graph.Vertex((i+1)%n))
	}
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 12; round++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex((int(u) + 1) % n)
		if !c.HasEdge(u, v) {
			continue
		}
		c.Delete(u, v)
		if !c.Connected(u, v) {
			t.Fatalf("round %d: ring disconnected after single deletion", round)
		}
		c.Insert(u, v)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestRandomAgainstOracle drives random insert/delete/query traffic and
// compares against recomputed union-find connectivity after every step.
func TestRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 32
	c := New(n)
	live := map[uint64]graph.Edge{}
	for step := 0; step < 1200; step++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if _, ok := live[e.Key()]; ok && rng.Intn(2) == 0 {
			c.Delete(u, v)
			delete(live, e.Key())
		} else if !ok {
			c.Insert(u, v)
			live[e.Key()] = e
		}
		if step%50 == 0 {
			uf := unionfind.New(n)
			for _, le := range live {
				uf.Union(le.U, le.V)
			}
			for q := 0; q < 40; q++ {
				a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
				want := uf.Connected(a, b)
				if got := c.Connected(graph.Vertex(a), graph.Vertex(b)); got != want {
					t.Fatalf("step %d: Connected(%d,%d)=%v want %v", step, a, b, got, want)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func TestQuickSmallGraphs(t *testing.T) {
	type op struct{ U, V, Del uint8 }
	f := func(ops []op) bool {
		n := 12
		c := New(n)
		live := map[uint64]graph.Edge{}
		for _, o := range ops {
			u := graph.Vertex(int(o.U) % n)
			v := graph.Vertex(int(o.V) % n)
			if u == v {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			if o.Del%2 == 0 {
				c.Insert(u, v)
				live[e.Key()] = e
			} else {
				c.Delete(u, v)
				delete(live, e.Key())
			}
		}
		uf := unionfind.New(n)
		for _, e := range live {
			uf.Union(e.U, e.V)
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if c.Connected(graph.Vertex(a), graph.Vertex(b)) != uf.Connected(int32(a), int32(b)) {
					return false
				}
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := New(8)
	c.Insert(0, 1)
	c.Insert(1, 2)
	c.Insert(0, 2)
	c.Delete(0, 1)
	s := c.Stats()
	if s.Inserts != 3 || s.Deletes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Replaced != 1 {
		t.Fatalf("expected one replacement, stats = %+v", s)
	}
}

func TestDenseThenDismantle(t *testing.T) {
	// Complete graph on 10 vertices, then delete every edge; connectivity
	// must degrade exactly when the last path disappears.
	n := 10
	c := New(n)
	var all []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			e := graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)}
			c.Insert(e.U, e.V)
			all = append(all, e)
		}
	}
	rng := rand.New(rand.NewSource(4))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	uf := func(rem []graph.Edge) *unionfind.UF {
		u := unionfind.New(n)
		for _, e := range rem {
			u.Union(e.U, e.V)
		}
		return u
	}
	for i, e := range all {
		c.Delete(e.U, e.V)
		rem := all[i+1:]
		oracle := uf(rem)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if c.Connected(graph.Vertex(a), graph.Vertex(b)) != oracle.Connected(int32(a), int32(b)) {
					t.Fatalf("after %d deletions: connectivity(%d,%d) wrong", i+1, a, b)
				}
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
