// Package hdt implements the classic sequential dynamic-connectivity
// algorithm of Holm, de Lichtenberg and Thorup (J.ACM 2001) — the algorithm
// the paper parallelizes and measures itself against. It reuses the same
// Euler-tour-tree and adjacency substrates as the parallel structure, driven
// strictly one edge at a time: O(lg^2 n) amortized per update, O(lg n) per
// query.
//
// Levels are numbered 1..L with L = ceil(lg2 n); G_i contains the edges of
// level <= i, F_i is its spanning forest, and components of G_i have at most
// 2^i vertices (Invariant 1). F_L is a minimum spanning forest with respect
// to edge levels (Invariant 2).
package hdt

import (
	"math/bits"

	"repro/internal/adjlist"
	"repro/internal/ett"
	"repro/internal/graph"
	"repro/internal/levelcheck"
)

// Stats counts the work-proxy events used by the experiment harness.
type Stats struct {
	Inserts    int64
	Deletes    int64
	Replaced   int64 // successful replacement edges found
	Pushdowns  int64 // edge level decreases
	EdgesSeen  int64 // non-tree edges examined as candidates
	TreePushes int64 // tree-edge level decreases
}

// Conn is the sequential HDT dynamic connectivity structure.
type Conn struct {
	n     int
	top   int32 // L
	f     []*ett.Forest
	adj   *adjlist.Store
	edges map[uint64]*adjlist.Rec
	stats Stats
}

// Levels returns L for an n-vertex structure: ceil(lg2 n), at least 1.
func Levels(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// New creates an empty graph over n vertices.
func New(n int) *Conn {
	l := Levels(n)
	c := &Conn{
		n:     n,
		top:   int32(l),
		f:     make([]*ett.Forest, l+1),
		adj:   adjlist.New(n, l+1),
		edges: make(map[uint64]*adjlist.Rec),
	}
	for i := 1; i <= l; i++ {
		c.f[i] = ett.New(n)
	}
	return c
}

// N returns the vertex count.
func (c *Conn) N() int { return c.n }

// NumEdges returns the number of edges currently in the graph.
func (c *Conn) NumEdges() int { return len(c.edges) }

// Stats returns accumulated work counters.
func (c *Conn) Stats() Stats { return c.stats }

// Connected reports whether u and v are connected.
func (c *Conn) Connected(u, v graph.Vertex) bool {
	return c.f[c.top].Connected(u, v)
}

// HasEdge reports whether edge (u,v) is present.
func (c *Conn) HasEdge(u, v graph.Vertex) bool {
	_, ok := c.edges[graph.Edge{U: u, V: v}.Key()]
	return ok
}

// Insert adds edge (u, v) at the top level; returns false for self-loops
// and duplicates.
func (c *Conn) Insert(u, v graph.Vertex) bool {
	e := graph.Edge{U: u, V: v}.Canon()
	if e.IsLoop() {
		return false
	}
	if _, dup := c.edges[e.Key()]; dup {
		return false
	}
	c.stats.Inserts++
	r := &adjlist.Rec{E: e, Level: c.top}
	if !c.f[c.top].Connected(e.U, e.V) {
		r.IsTree = true
		c.f[c.top].Link(e.U, e.V)
		c.f[c.top].AddCounts(e.U, 1, 0)
		c.f[c.top].AddCounts(e.V, 1, 0)
	} else {
		c.f[c.top].AddCounts(e.U, 0, 1)
		c.f[c.top].AddCounts(e.V, 0, 1)
	}
	c.adj.Insert(r)
	c.edges[e.Key()] = r
	return true
}

// Delete removes edge (u, v); returns false if absent. If a tree edge is
// removed, the HDT replacement search runs, possibly reconnecting the two
// halves with a former non-tree edge.
func (c *Conn) Delete(u, v graph.Vertex) bool {
	e := graph.Edge{U: u, V: v}.Canon()
	r, ok := c.edges[e.Key()]
	if !ok {
		return false
	}
	c.stats.Deletes++
	delete(c.edges, e.Key())
	c.adj.Delete(r)
	lvl := r.Level
	if !r.IsTree {
		c.f[lvl].AddCounts(e.U, 0, -1)
		c.f[lvl].AddCounts(e.V, 0, -1)
		return true
	}
	c.f[lvl].AddCounts(e.U, -1, 0)
	c.f[lvl].AddCounts(e.V, -1, 0)
	for i := lvl; i <= c.top; i++ {
		c.f[i].Cut(e.U, e.V)
	}
	c.replace(e.U, e.V, lvl)
	return true
}

// replace searches levels lvl..top for an edge reconnecting the components
// of u and v, applying the HDT level-decrease charging scheme.
func (c *Conn) replace(u, v graph.Vertex, lvl int32) {
	for i := lvl; i <= c.top; i++ {
		// Search the smaller side.
		w := u
		if c.f[i].Size(v) < c.f[i].Size(u) {
			w = v
		}
		c.pushTreeEdges(w, i)
		if c.scanNonTree(w, i) {
			return
		}
	}
}

// pushTreeEdges moves every level-i tree edge of w's component down to level
// i-1 (legal because the searched side has size <= 2^(i-1)).
func (c *Conn) pushTreeEdges(w graph.Vertex, i int32) {
	rep := c.f[i].Rep(w)
	if rep == nil {
		return
	}
	slots := c.f[i].FetchTreeSlots(rep, 1<<62)
	var recs []*adjlist.Rec
	for _, s := range slots {
		recs = append(recs, c.adj.All(s.V, i, true)...)
	}
	for _, r := range recs {
		if r.Level != i { // already moved via its other endpoint
			continue
		}
		c.adj.Delete(r)
		r.Level = i - 1
		c.adj.Insert(r)
		c.f[i].AddCounts(r.E.U, -1, 0)
		c.f[i].AddCounts(r.E.V, -1, 0)
		c.f[i-1].AddCounts(r.E.U, 1, 0)
		c.f[i-1].AddCounts(r.E.V, 1, 0)
		c.f[i-1].Link(r.E.U, r.E.V)
		c.stats.TreePushes++
	}
}

// scanNonTree examines the level-i non-tree edges of w's component one at a
// time. A replacement is promoted to a tree edge at level i and linked into
// F_i..F_L; every unsuccessful candidate is pushed to level i-1. Returns
// whether a replacement was found.
func (c *Conn) scanNonTree(w graph.Vertex, i int32) bool {
	rep := c.f[i].Rep(w)
	if rep == nil {
		return false
	}
	for c.f[i].CompNonTree(w) > 0 {
		slots := c.f[i].FetchNonTreeSlots(rep, 1)
		if len(slots) == 0 {
			break
		}
		x := slots[0].V
		recs := c.adj.Fetch(x, i, false, 1)
		if len(recs) == 0 {
			break
		}
		r := recs[0]
		y := r.E.Other(x)
		c.stats.EdgesSeen++
		if c.f[i].Rep(y) != rep {
			// Replacement: promote to a tree edge at level i.
			c.adj.Delete(r)
			c.f[i].AddCounts(r.E.U, 0, -1)
			c.f[i].AddCounts(r.E.V, 0, -1)
			r.IsTree = true
			c.adj.Insert(r)
			c.f[i].AddCounts(r.E.U, 1, 0)
			c.f[i].AddCounts(r.E.V, 1, 0)
			for j := i; j <= c.top; j++ {
				c.f[j].Link(r.E.U, r.E.V)
			}
			c.stats.Replaced++
			return true
		}
		// Not a replacement: push to level i-1.
		c.adj.Delete(r)
		c.f[i].AddCounts(r.E.U, 0, -1)
		c.f[i].AddCounts(r.E.V, 0, -1)
		r.Level = i - 1
		c.adj.Insert(r)
		c.f[i-1].AddCounts(r.E.U, 0, 1)
		c.f[i-1].AddCounts(r.E.V, 0, 1)
		c.stats.Pushdowns++
	}
	return false
}

// CheckInvariants verifies the two HDT invariants plus structural agreement
// between the forests, the adjacency store and the edge dictionary. For
// tests; O(n lg n + m).
func (c *Conn) CheckInvariants() error {
	recs := make([]*adjlist.Rec, 0, len(c.edges))
	for _, r := range c.edges {
		recs = append(recs, r)
	}
	return levelcheck.Check(c.n, int(c.top), c.f, c.adj, recs)
}
